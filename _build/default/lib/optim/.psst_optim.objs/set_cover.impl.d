lib/optim/set_cover.ml: Array Float List Psst_util
