lib/pgm/jtree.mli: Factor Psst_util
