(** Scatter-gather router over shard workers (DESIGN.md §14).

    Fronts N {!Psst_server} workers — each serving one shard of a
    {!Psst_shard} deployment — behind the same wire protocol a plain
    worker speaks, so {!Psst_client} and [psst client] work against a
    router unchanged. Per request the router sends the query to every
    worker first, then gathers, so the shards execute concurrently.

    Merging: T-PS answers are the sorted union of the per-shard answer
    lists with pruning counters summed and flags OR'd; top-k lists merge
    threshold-aware ({!Psst_shard.merge_topk}). Because every per-graph
    verdict is computed under PRNG streams keyed on the global graph id,
    the merged replies are bit-identical to a monolithic server's — the
    differential tests pin this at several shard counts.

    Degradation ladder per worker and request (DESIGN.md §12):

    - transport break / per-shard timeout → reconnect and retry, up to
      [retries] times;
    - still unreachable (or the worker rejected with a retryable error):
      when [local_fallback] yields the shard's database, answer that
      shard from its PMI bounds ({!Query.run_bounds_only}) and flag the
      merged answer [degraded] — a superset of the exact answer whose
      healthy shards are still exact;
    - otherwise the request fails with one clean retryable
      [Unavailable].

    Top-k never falls back to bounds (a ranking missing one shard's
    graphs is wrong, not degraded): a dead worker fails the request
    cleanly. A worker's non-retryable error ([Malformed], [Deadline],
    [Internal]) is propagated to the client as-is.

    Replica awareness (DESIGN.md §17): each shard's entry in [workers]
    is a replica group — slot 0 the primary, the rest standbys kept in
    sync by delta-stream replication. Requests go to the shard's
    preferred replica: the primary while it is believed alive, else the
    freshest live replica (highest observed ingest epoch). A transport
    failure marks the replica dead and the same request's retry already
    goes to the next-best one — restoring {e exact} answers where a
    dead single-replica shard could only degrade to bounds. The
    heartbeat poller ([heartbeat_ms] > 0) probes [Get_health] per
    replica on a jittered cadence; it revives recovered replicas,
    triggers failback to the primary, and feeds the
    [router.{failover,failback,replica_lag}] metrics.

    [Get_health] answers with the router's own counters plus one
    {!Psst_proto.worker_health} slot per replica (protocol version >= 4;
    the [rid]/[worker_epoch]/[primary] triple is v6) — probing them is
    itself a liveness poll; [Ping] and [Get_stats] are answered locally.
    The ["router.scatter"] chaos site lets tests make a worker appear
    faulted or slow from the router's side without touching the worker
    process. *)

type config = {
  endpoint : Psst_proto.endpoint;  (** where the router listens *)
  workers : Psst_proto.endpoint array array;
      (** one replica group per shard, indexed by shard id then replica
          id; slot 0 is the shard's primary *)
  shard_timeout_ms : float;
      (** per-worker connect and call timeout; [0.] blocks indefinitely *)
  retries : int;  (** reconnect-and-resend attempts per worker per request *)
  heartbeat_ms : float;
      (** liveness-poll cadence; [0.] (default) disables the poller —
          failover then relies on request-path failures alone and a dead
          primary is only revived by a [Get_health] probe *)
  local_fallback : (int -> Query.database option) option;
      (** [lookup sid] returns the shard's database for the bounds-only
          fallback ([None] = shard not locally available). Typically
          backed by lazy {!Psst_shard.load_shard} calls; consulted only
          when a worker is down, from the reader thread of the failing
          request. *)
}

(** [workers] endpoints as single-replica groups, no timeouts, 1 retry,
    no heartbeat poller, no local fallback. *)
val default_config :
  endpoint:Psst_proto.endpoint -> workers:Psst_proto.endpoint list -> config

type t

(** [start config] binds the endpoint and spawns the serving threads.
    Workers are dialled lazily per reader thread, so a router starts
    (and answers [Get_health] with [reachable = false] slots) before its
    workers do. Raises [Invalid_argument] on an empty worker list. *)
val start : config -> t

(** The bound endpoint — for [Tcp (host, 0)] this carries the actual
    kernel-assigned port. *)
val endpoint : t -> Psst_proto.endpoint

(** Graceful drain: admission closes (late requests get a retryable
    [Shutdown] reply), requests already executing finish their scatter,
    then connections close and threads join. Idempotent. *)
val stop : t -> unit

(** True once {!stop} has completed. *)
val stopped : t -> bool

(** Replies sent since {!start} (error replies included). *)
val served : t -> int

(** In-process health snapshot: probes every replica of every shard once
    (bounded by [shard_timeout_ms]) and aggregates the roster, exactly as
    the [Get_health] RPC does. Probes double as liveness polls — they
    update the failover tables as a heartbeat cycle would. *)
val health : t -> Psst_proto.health
