(* Differential suite for the cross-query verification cache (Qcache):
   cached and cold runs must be bit-identical — same answer sets, same
   pruning counters, same SSP values — across randomized query sequences
   with repeats, at 1 and 4 domains, through run / run_batch / Topk.run,
   across database mutation (add_graphs invalidates) and a save → load →
   query round trip (physical-identity invalidation means a freshly
   loaded database never sees stale embeddings). *)

module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 400 }
let fast_smp = { Verify.default_config with tau = 0.3 }

let make_db seed n =
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
        max_vertices = 10; motif_edges = 3 }
  in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  (ds, db)

let base_config =
  { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Smp fast_smp }

(* A sequence with deliberate repeats and near-duplicates: repeats are
   what a warm cache actually serves. *)
let query_sequence rng ds ~count =
  let distinct =
    List.init (max 2 (count / 2)) (fun _ ->
        fst (Generator.extract_query rng ds ~edges:3))
  in
  let arr = Array.of_list distinct in
  List.init count (fun i ->
      if i < Array.length arr then arr.(i)
      else arr.(Prng.int rng (Array.length arr)))

(* Everything in an outcome except wall-clock times must match bitwise. *)
let check_outcome msg (a : Query.outcome) (b : Query.outcome) =
  Alcotest.(check (list int)) (msg ^ ": answers") a.Query.answers b.Query.answers;
  let counts (o : Query.outcome) =
    let s = o.Query.stats in
    ( s.relaxed_count, s.relaxed_truncated, s.structural_candidates,
      s.prob_candidates, s.accepted_by_bounds, s.pruned_by_bounds,
      s.degraded_candidates )
  in
  Alcotest.(check bool) (msg ^ ": counters") true (counts a = counts b)

let counter_value name = Psst_obs.counter_value (Psst_obs.counter name)

let test_run_differential () =
  let ds, db = make_db 4201 16 in
  let qs = query_sequence (Prng.make 7) ds ~count:10 in
  let adaptive_cfg =
    { base_config with
      verifier = `Smp { fast_smp with Verify.adaptive = true } }
  in
  List.iter
    (fun domains ->
      List.iter
        (fun (cname, config) ->
          let cold = List.map (fun q -> Query.run ~domains db q config) qs in
          let cache = Qcache.create () in
          let hits_before = counter_value "cache.hit" in
          let warm =
            List.map (fun q -> Query.run ~domains ~cache db q config) qs
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%dd: repeats hit the cache" cname domains)
            true
            (counter_value "cache.hit" > hits_before);
          List.iteri
            (fun i (a, b) ->
              check_outcome
                (Printf.sprintf "%s/%dd: query %d" cname domains i) a b)
            (List.combine cold warm);
          (* A second pass over the same sequence is fully warm and must
             still be bit-identical. *)
          let warm2 =
            List.map (fun q -> Query.run ~domains ~cache db q config) qs
          in
          List.iteri
            (fun i (a, b) ->
              check_outcome
                (Printf.sprintf "%s/%dd: warm pass, query %d" cname domains i)
                a b)
            (List.combine cold warm2))
        [ ("smp", base_config); ("exact", { base_config with verifier = `Exact });
          ("adaptive", adaptive_cfg) ])
    [ 1; 4 ]

let test_run_batch_differential () =
  let ds, db = make_db 4211 14 in
  let qs = query_sequence (Prng.make 11) ds ~count:8 in
  List.iter
    (fun domains ->
      let cold = Query.run_batch ~domains db qs base_config in
      let cache = Qcache.create () in
      let warm = Query.run_batch ~domains ~cache db qs base_config in
      List.iteri
        (fun i (a, b) ->
          check_outcome (Printf.sprintf "batch/%dd: query %d" domains i) a b)
        (List.combine cold warm);
      (* Cached batch answers also match per-query runs (the documented
         run_batch invariant survives the cache). *)
      List.iteri
        (fun i (q, b) ->
          check_outcome
            (Printf.sprintf "batch/%dd vs run: query %d" domains i)
            (Query.run db q base_config) b)
        (List.combine qs warm))
    [ 1; 4 ]

let test_topk_differential () =
  let ds, db = make_db 4221 16 in
  let qs = query_sequence (Prng.make 13) ds ~count:6 in
  let bits (h : Topk.hit) = (h.Topk.graph, Int64.bits_of_float h.Topk.ssp) in
  let cold = List.map (fun q -> Topk.run db q ~k:3 base_config) qs in
  let cache = Qcache.create () in
  let warm = List.map (fun q -> Topk.run ~cache db q ~k:3 base_config) qs in
  List.iteri
    (fun i ((a : Topk.outcome), (b : Topk.outcome)) ->
      Alcotest.(check (list (pair int int64)))
        (Printf.sprintf "topk: query %d hits bit-identical" i)
        (List.map bits a.Topk.hits) (List.map bits b.Topk.hits);
      Alcotest.(check int)
        (Printf.sprintf "topk: query %d verified count" i)
        a.Topk.stats.verified b.Topk.stats.verified)
    (List.combine cold warm)

let test_invalidation_after_add_graphs () =
  let ds, db = make_db 4231 12 in
  let qs = query_sequence (Prng.make 17) ds ~count:6 in
  let cache = Qcache.create () in
  (* Warm the cache thoroughly against the original database. *)
  List.iter (fun q -> ignore (Query.run ~cache db q base_config)) qs;
  Alcotest.(check bool) "cache holds entries" true (Qcache.entries cache > 0);
  let extra, _ = make_db 4232 3 in
  let db2 = Query.add_graphs db extra.Generator.graphs in
  let flushes_before = counter_value "cache.flush" in
  let cold2 = List.map (fun q -> Query.run db2 q base_config) qs in
  let warm2 = List.map (fun q -> Query.run ~cache db2 q base_config) qs in
  Alcotest.(check bool) "arming against the grown database flushed" true
    (counter_value "cache.flush" > flushes_before);
  List.iteri
    (fun i (a, b) ->
      check_outcome (Printf.sprintf "post-add_graphs: query %d" i) a b)
    (List.combine cold2 warm2)

let with_tmp f =
  let path = Filename.temp_file "psst_cache" ".store" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let test_save_load_roundtrip () =
  let ds, db = make_db 4241 12 in
  let qs = query_sequence (Prng.make 19) ds ~count:6 in
  let cache = Qcache.create () in
  (* Warm against the in-memory database, then reload from disk and keep
     using the same cache: the loaded database is a fresh physical value,
     so the scope must flush rather than serve stale embeddings. *)
  let before = List.map (fun q -> Query.run ~cache db q base_config) qs in
  with_tmp (fun path ->
      Query.save_database path db;
      let loaded = Query.load_database path in
      let after = List.map (fun q -> Query.run ~cache loaded q base_config) qs in
      List.iteri
        (fun i (a, b) ->
          check_outcome (Printf.sprintf "save/load: query %d" i) a b)
        (List.combine before after);
      (* And cached-on-loaded equals cold-on-loaded. *)
      List.iteri
        (fun i (q, b) ->
          check_outcome
            (Printf.sprintf "save/load cold: query %d" i)
            (Query.run loaded q base_config) b)
        (List.combine qs after))

let test_eviction_is_bounded () =
  (* A tiny cache must keep answers identical while evicting. *)
  let ds, db = make_db 4251 12 in
  let qs = query_sequence (Prng.make 23) ds ~count:8 in
  let cache = Qcache.create ~query_cap:2 ~value_cap:8 () in
  let evicts_before = counter_value "cache.evict" in
  let cold = List.map (fun q -> Query.run db q base_config) qs in
  let warm = List.map (fun q -> Query.run ~cache db q base_config) qs in
  List.iteri
    (fun i (a, b) ->
      check_outcome (Printf.sprintf "tiny cache: query %d" i) a b)
    (List.combine cold warm);
  Alcotest.(check bool) "tiny cache evicted" true
    (counter_value "cache.evict" > evicts_before);
  Alcotest.(check bool) "value tables stay within bound" true
    (Qcache.entries cache <= 2 * 2 + 3 * 8)

let test_invalid_caps_rejected () =
  (* Caps below 1 would make the FIFO eviction loop spin forever on the
     first insert; create must reject them up front. *)
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "query_cap 0" (fun () -> Qcache.create ~query_cap:0 ());
  expect_invalid "value_cap 0" (fun () -> Qcache.create ~value_cap:0 ());
  expect_invalid "negative caps" (fun () ->
      Qcache.create ~query_cap:(-1) ~value_cap:(-8) ())

let test_flush_drops_entries () =
  let ds, db = make_db 4261 10 in
  let qs = query_sequence (Prng.make 29) ds ~count:4 in
  let cache = Qcache.create () in
  let before = List.map (fun q -> Query.run ~cache db q base_config) qs in
  Alcotest.(check bool) "entries present before flush" true
    (Qcache.entries cache > 0);
  Qcache.flush cache;
  Alcotest.(check int) "flush empties every table" 0 (Qcache.entries cache);
  let after = List.map (fun q -> Query.run ~cache db q base_config) qs in
  List.iteri
    (fun i (a, b) -> check_outcome (Printf.sprintf "post-flush: query %d" i) a b)
    (List.combine before after)

let suite =
  [
    Alcotest.test_case "run: cached ≡ cold (1 and 4 domains)" `Slow
      test_run_differential;
    Alcotest.test_case "invalid caps rejected" `Quick test_invalid_caps_rejected;
    Alcotest.test_case "flush drops all entries; answers stay fresh" `Quick
      test_flush_drops_entries;
    Alcotest.test_case "run_batch: cached ≡ cold" `Slow
      test_run_batch_differential;
    Alcotest.test_case "topk: cached ≡ cold (bitwise SSPs)" `Quick
      test_topk_differential;
    Alcotest.test_case "add_graphs invalidates; answers stay fresh" `Quick
      test_invalidation_after_add_graphs;
    Alcotest.test_case "save → load → query sees no stale entries" `Quick
      test_save_load_roundtrip;
    Alcotest.test_case "bounded eviction preserves answers" `Quick
      test_eviction_is_bounded;
  ]
