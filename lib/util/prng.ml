type t = Random.State.t

let make seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66 |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b |]

(* SplitMix-style finalizer; the constants are 60-bit truncations of the
   usual 64-bit ones (OCaml ints are 63-bit). *)
let mix z =
  let z = (z lxor (z lsr 30)) * 0xbf58476d1ce4e5 in
  let z = (z lxor (z lsr 27)) * 0x94d049bb133111 in
  z lxor (z lsr 31)

let stream ~seed i =
  let a = mix (seed + (i * 0x9e3779b97f4a7c)) in
  let b = mix (a lxor (i + 0x7f4a7c15)) in
  Random.State.make [| seed; i; a; b |]

let int t n = Random.State.int t n
let float t x = Random.State.float t x

let bernoulli t p = Random.State.float t 1.0 < p

let categorical t weights =
  let total = Array.fold_left (fun acc w -> acc +. Float.max w 0.) 0. weights in
  if total <= 0. then invalid_arg "Prng.categorical: non-positive weights";
  let x = Random.State.float t total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. Float.max weights.(i) 0. in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(Random.State.int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  (* Partial Fisher-Yates over an index array. *)
  let idx = Array.init n (fun i -> i) in
  let out = ref [] in
  for i = 0 to k - 1 do
    let j = i + Random.State.int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp;
    out := idx.(i) :: !out
  done;
  !out

(* Marsaglia-Tsang gamma sampling for shape >= 1, with the boost trick for
   shape < 1. *)
let rec gamma t shape =
  if shape < 1. then
    let u = Random.State.float t 1.0 in
    gamma t (shape +. 1.) *. (u ** (1. /. shape))
  else
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec loop () =
      let x = gaussian t ~mu:0. ~sigma:1. in
      let v = (1. +. (c *. x)) ** 3. in
      if v <= 0. then loop ()
      else
        let u = Random.State.float t 1.0 in
        if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then d *. v
        else loop ()
    in
    loop ()

and gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = Random.State.float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = Random.State.float t 1.0 in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let beta t ~a ~b =
  let x = gamma t a and y = gamma t b in
  x /. (x +. y)

let exponential t lambda =
  let rec nonzero () =
    let u = Random.State.float t 1.0 in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. lambda
