lib/optim/qp.mli: Psst_util
