(** Randomized rounding of the relaxed QP solution — paper Algorithm 2.

    Each set is picked independently with probability [x*_i], repeated for
    [2 ln |U|] rounds; Theorem 5: all elements are covered with probability
    at least [1 - 1/|U|]. We optionally repair an uncovered outcome with a
    greedy completion so downstream bounds always rest on a genuine cover. *)

type t = {
  chosen : int list;  (** selected set indices, ascending *)
  covered : bool;  (** true when the selection covers the universe *)
  repaired : bool;  (** true when the greedy completion had to kick in *)
}

(** [round rng inst ~x] — plain Algorithm 2 (no repair). *)
val round : Psst_util.Prng.t -> Qp.instance -> x:float array -> t

(** [round_repaired rng inst ~x] — Algorithm 2, then greedily add the
    missing coverage (sets with best wL gain per uncovered element). The
    result covers whenever the instance is coverable. *)
val round_repaired : Psst_util.Prng.t -> Qp.instance -> x:float array -> t
