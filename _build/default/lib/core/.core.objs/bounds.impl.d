lib/core/bounds.ml: Array Embedding Float Lgraph List Mwc Pgraph Psst_util Transversal Velim Vf2
