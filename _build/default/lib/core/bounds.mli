(** Lower and upper bounds on the subgraph-isomorphism probability
    Pr(f ⊆iso g) — paper §4.1, the payload of the PMI index.

    - [LowerB] (Eq 10-17): pick a maximum-weight clique of pairwise
      edge-disjoint embeddings in the disjointness graph [fG], with node
      weights [-ln (1 - Pr(Bfi | COR))]; then
      [LowerB = 1 - exp (-clique weight)]. [Pr(Bfi | COR)] — the chance
      embedding [i] survives given that all embeddings overlapping it fail —
      is estimated by the paper's Monte-Carlo ratio (Algorithm 3), or
      computed exactly when the embedding overlaps nothing.
    - [UpperB] (Eq 18-20): same construction over minimal embedding cuts
      (computed by {!Transversal.minimal_hitting_sets}); node weights
      [-ln (1 - Pr(Bci | COM))]; [UpperB = exp (-clique weight)].

    Alongside the paper's bounds we compute {e certified} variants that
    hold without any independence assumption (used for accept decisions,
    see DESIGN.md §3):

    - [lower_safe = max_i Pr(Bfi)] (exact, one conjunction per embedding);
    - [upper_safe = min_i (1 - Pr(Bci))] (exact, one negated conjunction
      per cut). *)

type config = {
  emb_cap : int;  (** distinct embeddings enumerated per (f, g) *)
  cut_cap : int;  (** minimal cuts enumerated per (f, g) *)
  mc_samples : int;  (** Monte-Carlo samples for Algorithm 3 *)
  clique_budget : int;  (** branch-and-bound node budget for fG *)
  tightest : bool;
      (** true (default): maximum-weight-clique selection of the disjoint
          embedding / cut family — the paper's OPT-SIPBound. false: plain
          first-fit maximal family — the paper's SIPBound baseline. *)
  seed : int;  (** PRNG seed: bound computation is deterministic *)
}

val default_config : config

type t = {
  lower : float;  (** the paper's LowerB(f) *)
  upper : float;  (** the paper's UpperB(f) *)
  lower_safe : float;  (** certified lower bound *)
  upper_safe : float;  (** certified upper bound *)
  embeddings : int;  (** |Ef| found (capped) *)
  cuts : int;  (** |Ec| found (capped) *)
}

(** [compute config ?pool g f] — both bound pairs for feature [f] against
    probabilistic graph [g]. Exact short-circuits: no embedding -> all 0;
    some embedding made only of certain edges -> all 1.

    [pool]: pre-sampled possible worlds (present-edge masks) reused for
    every Monte-Carlo ratio; {!Pmi.build} samples one pool per graph so the
    sampling cost is paid once per graph instead of once per matrix
    entry. When absent, [mc_samples] fresh worlds are drawn. *)
val compute : config -> ?pool:Psst_util.Bitset.t array -> Pgraph.t -> Lgraph.t -> t

(** [sample_pool config g] — [mc_samples] worlds for reuse in {!compute}. *)
val sample_pool : config -> Pgraph.t -> Psst_util.Bitset.t array

(** [estimate_conditional rng g ~num ~den ~samples] — Algorithm 3's ratio
    estimator: sample possible worlds and return [#num / #den] where the
    predicates receive the world's present-edge mask. Returns [None] when
    the denominator never fires. Exposed for tests. *)
val estimate_conditional :
  Psst_util.Prng.t ->
  Pgraph.t ->
  num:(Psst_util.Bitset.t -> bool) ->
  den:(Psst_util.Bitset.t -> bool) ->
  samples:int ->
  float option
