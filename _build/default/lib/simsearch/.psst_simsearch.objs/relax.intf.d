lib/simsearch/relax.mli: Lgraph
