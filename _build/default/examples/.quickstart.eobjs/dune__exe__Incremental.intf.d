examples/incremental.mli:
