module Prng = Psst_util.Prng
module Iset = Set.Make (Int)

type node = {
  factor : Factor.t;
  parent : int; (* -1 for roots *)
  sep : int list; (* scope ∩ parent scope *)
}

type t = { nodes : node array; vars : int list }

let build factors =
  let arr = Array.of_list factors in
  let n = Array.length arr in
  let scopes = Array.map (fun f -> Iset.of_list (Array.to_list (Factor.vars f))) arr in
  let covered = ref Iset.empty in
  let nodes =
    Array.init n (fun k ->
        let scope = scopes.(k) in
        let old_vars = Iset.inter scope !covered in
        covered := Iset.union !covered scope;
        if Iset.is_empty old_vars then { factor = arr.(k); parent = -1; sep = [] }
        else begin
          (* Find one earlier factor containing all old vars. *)
          let rec find j =
            if j < 0 then
              invalid_arg
                "Jtree.build: running intersection violated (shared vars span \
                 several earlier factors)"
            else if Iset.subset old_vars scopes.(j) then j
            else find (j - 1)
          in
          let parent = find (k - 1) in
          { factor = arr.(k); parent; sep = Iset.elements old_vars }
        end)
  in
  { nodes; vars = Iset.elements !covered }

let variables t = t.vars

(* Condition every factor on the evidence, then do an upward pass computing,
   for each node, the message to its parent: the marginal onto the
   separator of (conditioned factor × child messages). *)
let upward t evidence =
  let n = Array.length t.nodes in
  let cond f =
    List.fold_left (fun f (v, b) -> Factor.condition f v b) f evidence
  in
  let reduced = Array.map (fun node -> cond node.factor) t.nodes in
  let messages = Array.make n None in
  (* children appear after parents in the order, so walk backwards. *)
  let incoming = Array.make n [] in
  for k = n - 1 downto 0 do
    let belief =
      Factor.multiply_all (reduced.(k) :: incoming.(k))
    in
    let node = t.nodes.(k) in
    if node.parent >= 0 then begin
      let evid_vars = List.map fst evidence in
      let sep = List.filter (fun v -> not (List.mem v evid_vars)) node.sep in
      let msg = Factor.marginal_onto belief sep in
      incoming.(node.parent) <- msg :: incoming.(node.parent);
      messages.(k) <- Some msg
    end
    else messages.(k) <- Some (Factor.marginal_onto belief [])
  done;
  (reduced, incoming, messages)

let root_prob t messages =
  (* Roots hold scalar messages; independent components multiply. *)
  Array.to_list t.nodes
  |> List.mapi (fun k node -> (k, node))
  |> List.fold_left
       (fun acc (k, node) ->
         if node.parent >= 0 then acc
         else
           match messages.(k) with
           | Some m -> acc *. Factor.value m 0
           | None -> acc)
       1.

let evidence_prob t evidence =
  let _, _, messages = upward t evidence in
  root_prob t messages

(* The evidence-conditioned, fully message-passed beliefs. The whole
   upward pass (conditioning + message products) depends only on the
   evidence, not on any sample, so the Karp–Luby loop pays it once per
   event instead of once per draw; [sample_calibrated] consumes exactly
   the PRNG draws [sample_posterior] does on the same beliefs, keeping
   seeded runs bit-identical. *)
type calibrated = {
  c_evidence : (int * bool) list;
  c_beliefs : Factor.t array;  (* per node: reduced × incoming messages *)
  c_prob : float;  (* Pr(evidence) *)
}

let calibrate t evidence =
  let reduced, incoming, messages = upward t evidence in
  let beliefs =
    Array.mapi (fun k r -> Factor.multiply_all (r :: incoming.(k))) reduced
  in
  { c_evidence = evidence; c_beliefs = beliefs; c_prob = root_prob t messages }

let calibrated_prob cal = cal.c_prob

let sample_calibrated rng t cal =
  let n = Array.length t.nodes in
  let assign = Hashtbl.create 32 in
  List.iter (fun (v, b) -> Hashtbl.replace assign v b) cal.c_evidence;
  let ok = ref true in
  for k = 0 to n - 1 do
    if !ok then begin
      (* Clamp variables already sampled at ancestors (separator vars). *)
      let belief =
        Array.fold_left
          (fun f v ->
            match Hashtbl.find_opt assign v with
            | Some b -> Factor.condition f v b
            | None -> f)
          cal.c_beliefs.(k)
          (Factor.vars cal.c_beliefs.(k))
      in
      if Array.length (Factor.vars belief) > 0 then begin
        if Factor.total belief <= 0. then ok := false
        else
          let belief = Factor.normalize belief in
          List.iter (fun (v, b) -> Hashtbl.replace assign v b) (Factor.sample rng belief)
      end
      else if Factor.value belief 0 <= 0. then ok := false
    end
  done;
  if not !ok then None
  else begin
    let lookup v = match Hashtbl.find_opt assign v with Some b -> b | None -> false in
    Some (lookup, Hashtbl.fold (fun v b acc -> (v, b) :: acc) assign [])
  end

let sample_posterior rng t ~evidence = sample_calibrated rng t (calibrate t evidence)
