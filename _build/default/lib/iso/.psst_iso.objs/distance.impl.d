lib/iso/distance.ml: Lgraph Mcs Vf2
