lib/core/verify.mli: Lgraph Pgraph Psst_util
