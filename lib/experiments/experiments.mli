(** Reproduction harness for every figure of the paper's evaluation (§6).

    Each [figN] function regenerates the corresponding figure's series at a
    configurable scale and prints the same rows the paper plots. The
    defaults are CI-friendly scaled-down versions of the paper's setup
    (see DESIGN.md §4/§5 for the mapping); [scale] multiplies the database
    and workload sizes.

    Paper parameter grid: probability threshold ε in 0.3..0.7 (default
    0.5), subgraph distance δ in 2..6 scaled to 1..4 here (default 2),
    query size q50..q250 scaled to 4..12 edges (default 8), feature
    parameters maxL / α / β / γ defaulting to 0.15 (maxL scaled to edges). *)

type scale = {
  db_size : int;  (** graphs in the corpus *)
  queries_per_point : int;  (** queries averaged per x-value *)
  seed : int;
}

val default_scale : scale

(** A tiny scale for smoke tests (fast, minutes for the full suite). *)
val quick_scale : scale

(** The corpus parameters behind Fig 9-14 at the given scale, and the
    feature-mining parameters every figure indexes with — exposed so
    external harnesses (e.g. [bench/main.exe store]) can reproduce the
    exact Fig 9 workload. *)
val dataset_params : scale -> Generator.params

val mining_params : Selection.params

(** Fig 9: verification time (a) and SMP quality (b) vs query size. *)
val fig9 : ?scale:scale -> Format.formatter -> unit

(** Fig 10: candidate size (a) and pruning time (b) vs probability
    threshold ε — Structure / SSPBound / OPT-SSPBound. *)
val fig10 : ?scale:scale -> Format.formatter -> unit

(** Fig 11: candidate size (a) and pruning time (b) vs distance threshold
    δ — Structure / SIPBound / OPT-SIPBound. *)
val fig11 : ?scale:scale -> Format.formatter -> unit

(** Fig 12: feature-generation parameters — (a) candidates vs maxL,
    (b) candidates vs α, (c) index build time vs β, (d) index size vs γ. *)
val fig12 : ?scale:scale -> Format.formatter -> unit

(** Fig 13: total query processing time vs database size — PMI vs Exact. *)
val fig13 : ?scale:scale -> Format.formatter -> unit

(** Fig 14: answer quality, correlated vs independent model, vs ε. *)
val fig14 : ?scale:scale -> Format.formatter -> unit

(** Ablations of the design choices DESIGN.md calls out:

    - A1 {b SIP bound quality} — mean interval width and soundness-violation
      rate against the exact SIP, for the paper's bounds with the tightest
      (max-weight-clique) family, the paper's bounds with a first-fit
      family, and the certified bounds;
    - A2 {b Usim assembly} — greedy set cover vs the random pick, mean
      upper-bound value and prune rate;
    - A3 {b SMP accuracy/time vs tau} — estimator error against exact SSP
      as the Monte-Carlo accuracy knob moves;
    - A4 {b VF2 vs Ullmann} — matcher running times on the query workload. *)
val ablations : ?scale:scale -> Format.formatter -> unit

(** Domain sweep (1/2/4/8) over the Fig 9 corpus and query distribution:
    runs the same batch through {!Query.run_batch} at each pool size,
    reporting batch wall time, end-to-end speedup vs 1 domain, the
    verification phase's cpu/wall parallelism, and whether every answer
    set is identical to the sequential run (it must be — the per-candidate
    PRNG streams make parallel execution bit-identical). *)
val parallel : ?scale:scale -> Format.formatter -> unit

(** Run every figure in order. *)
val all : ?scale:scale -> Format.formatter -> unit
