lib/util/prng.ml: Array Float Random
