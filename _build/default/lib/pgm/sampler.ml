module Prng = Psst_util.Prng

let sample rng factors =
  let assign = Hashtbl.create 32 in
  List.iter
    (fun f ->
      let f' =
        Array.fold_left
          (fun f v ->
            match Hashtbl.find_opt assign v with
            | Some b -> Factor.condition f v b
            | None -> f)
          f (Factor.vars f)
      in
      if Array.length (Factor.vars f') > 0 then begin
        let f' = Factor.normalize f' in
        List.iter (fun (v, b) -> Hashtbl.replace assign v b) (Factor.sample rng f')
      end)
    factors;
  let lookup v = match Hashtbl.find_opt assign v with Some b -> b | None -> false in
  (lookup, Hashtbl.fold (fun v b acc -> (v, b) :: acc) assign [])

let sample_conditioned rng factors evidence =
  let assign = Hashtbl.create 32 in
  List.iter (fun (v, b) -> Hashtbl.replace assign v b) evidence;
  let ok = ref true in
  List.iter
    (fun f ->
      if !ok then begin
        let f' =
          Array.fold_left
            (fun f v ->
              match Hashtbl.find_opt assign v with
              | Some b -> Factor.condition f v b
              | None -> f)
            f (Factor.vars f)
        in
        if Array.length (Factor.vars f') > 0 then begin
          if Factor.total f' <= 0. then ok := false
          else
            let f' = Factor.normalize f' in
            List.iter (fun (v, b) -> Hashtbl.replace assign v b) (Factor.sample rng f')
        end
        else if Factor.value f' 0 <= 0. then ok := false
      end)
    factors;
  if not !ok then None
  else
    let lookup v = match Hashtbl.find_opt assign v with Some b -> b | None -> false in
    Some (lookup, Hashtbl.fold (fun v b acc -> (v, b) :: acc) assign [])

let is_chain_consistent ~eps factors =
  let covered = Hashtbl.create 32 in
  List.for_all
    (fun f ->
      let vars = Factor.vars f in
      let old_vars = Array.to_list vars |> List.filter (Hashtbl.mem covered) in
      let new_vars =
        Array.to_list vars |> List.filter (fun v -> not (Hashtbl.mem covered v))
      in
      Array.iter (fun v -> Hashtbl.replace covered v ()) vars;
      (* Each assignment of the old vars must induce a sub-table over the new
         vars summing to 1 (or to 0 for impossible evidence — we require 1
         so that forward sampling never dead-ends). *)
      let reduced = Factor.marginal_onto f old_vars in
      ignore new_vars;
      let ok = ref true in
      Factor.iter_assignments reduced (fun _ total ->
          if Float.abs (total -. 1.) > eps then ok := false);
      !ok)
    factors
