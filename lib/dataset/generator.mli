(** Synthetic STRING-like probabilistic PPI corpus (paper §6; see
    DESIGN.md §4 for the substitution rationale).

    Each graph belongs to an {e organism}; organisms share a structural
    motif and a biased label distribution, so a query extracted from one
    organism's graph preferentially matches that organism — the basis of
    the Fig 14 classification experiment. Graphs may additionally carry a
    grafted copy of a {e foreign} organism's motif: structural noise whose
    edges are negatively correlated, the probabilistic analogue of
    spurious interactions.

    Edge existence probabilities are Beta-distributed; neighbor-edge JPTs
    tilt the independent product with an Ising-style agreement coupling
    (positive inside the own motif, negative in foreign grafts — see
    DESIGN.md §4 for why this replaces the paper's max-of-neighbors
    normalisation) and are folded into the chain-consistent factorisation
    required by {!Pgraph.make} (running-intersection order: one factor per
    vertex of a BFS traversal, conditioned on the parent's attachment
    edge). *)

type params = {
  num_graphs : int;
  num_organisms : int;
  min_vertices : int;
  max_vertices : int;
  extra_edge_ratio : float;  (** extra edges per vertex beyond the tree *)
  num_vertex_labels : int;  (** COG-category stand-ins *)
  num_edge_labels : int;
  mean_edge_prob : float;  (** paper: 0.383 *)
  motif_edges : int;  (** organism motif size *)
  max_new_edges_per_factor : int;  (** JPT scope control *)
  coupling_motif : float;  (** Ising tilt inside the own motif (> 0) *)
  coupling_noise : float;  (** Ising tilt inside foreign grafts (< 0) *)
  foreign_motif_prob : float;  (** chance of grafting a foreign motif *)
  seed : int;
}

val default_params : params

type t = {
  graphs : Pgraph.t array;
  organisms : int array;  (** graph id -> organism id *)
  motifs : Lgraph.t array;  (** organism id -> its motif *)
  grafts : int option array;
      (** graph id -> organism whose motif was grafted in, if any *)
  params : params;
}

val generate : params -> t

(** [extract_query rng t ~edges] grows a random connected edge-subgraph of
    that size from a random skeleton; returns it with the source graph's
    organism. With [from_motif] the walk is confined to the source graph's
    motif copy, so the query probes structure shared by every member of
    the organism (the Fig 14 setting). Raises [Invalid_argument] when
    [edges] exceeds every eligible graph. *)
val extract_query :
  ?from_motif:bool -> Psst_util.Prng.t -> t -> edges:int -> Lgraph.t * int

(** All graph ids of one organism (the Fig 14 ground truth). *)
val organism_members : t -> int -> int list

(** [independent_db t] — every graph converted to the independent-edge
    model with identical marginals (the IND competitor). *)
val independent_db : t -> Pgraph.t array

(** {1 Persistence (DESIGN.md §9)}

    A whole corpus — graphs, organism assignment, motifs, grafts and the
    generation parameters — as one [Dataset]-kind {!Psst_store} file, so
    experiment ground truths survive across processes. *)

val save_binary : string -> t -> unit

(** Raises [Psst_store.Store_error] on corruption, truncation, version or
    kind mismatch, or inconsistent array lengths. *)
val load_binary : string -> t
