(** Embeddings of a pattern in a target graph (paper Def 5).

    An embedding records the injective vertex map and, crucially for the
    probabilistic machinery, the set of target {e edge ids} it uses: bounds
    on subgraph-isomorphism probability are built from edge-disjoint
    embeddings. *)

type t = {
  vmap : int array;  (** pattern vertex -> target vertex *)
  edges : Psst_util.Bitset.t;  (** target edge ids used by the embedding *)
}

(** Two embeddings are edge-disjoint when they share no target edge. *)
val edge_disjoint : t -> t -> bool

val overlaps : t -> t -> bool

(** Equality as subgraphs of the target, i.e. same edge set. *)
val same_edges : t -> t -> bool

val pp : Format.formatter -> t -> unit
