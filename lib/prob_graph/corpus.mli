(** A random-access collection of probabilistic graphs — the graph side
    of a {!Query.database} (DESIGN.md §15).

    Two backings answer the same interface: an eager array (built
    in-memory or decoded by the classic loader) and a zero-copy view over
    the ["graphs"] payload of a memory-mapped flat store image, which
    decodes graphs {e lazily, on first access}, so loading a database
    does O(1) work per graph and a query only pays decode cost for the
    graphs it actually touches (structural survivors and verification
    candidates). Decoded graphs are memoized under a mutex, so concurrent
    readers are safe and every access after the first is a plain array
    read.

    Skeletons are projections of the decoded graph ([Pgraph.skeleton] is
    a field read), so they share the same laziness and cache. *)

type t

(** {1 Construction} *)

val of_array : Pgraph.t array -> t

(** [of_mapped m ~section ~offsets] — lazy view over section [section] of
    the mapping [m]. [offsets] holds [n + 1] boundaries into the payload:
    graph [i] occupies bytes [offsets.(i) .. offsets.(i+1) - 1], and the
    prefix [0 .. offsets.(0) - 1] must decode as the element count [n]
    (the payload is byte-identical to the classic
    [put_array encode_binary] encoding — same fingerprint, same eager
    decode). Validates the boundary monotonicity and the count prefix
    eagerly ({!Psst_store.Store_error} on any anomaly); the per-graph
    payloads are validated when first decoded. *)
val of_mapped : Psst_store.mapped -> section:string -> offsets:int array -> t

(** {1 Access} *)

val length : t -> int

(** [get t i] — graph [i], decoding and caching it first if the backing
    is mapped. Raises [Psst_store.Store_error] if the stored bytes are
    malformed (including a region not exactly consumed by the decode —
    a lying offsets table is caught here). [Invalid_argument] when out of
    range. *)
val get : t -> int -> Pgraph.t

(** [skeleton t i] = [Pgraph.skeleton (get t i)]. *)
val skeleton : t -> int -> Lgraph.t

(** {1 Bulk operations (force the lazy backing)} *)

(** [to_array t] decodes every graph and returns the full array. The
    result is cached, so repeated calls are cheap; offline consumers
    (save, shard splitting, salvage rebuild) use this. *)
val to_array : t -> Pgraph.t array

(** [sub t ~base ~count] — an eager corpus over the contiguous slice. *)
val sub : t -> base:int -> count:int -> t

(** [materialise t] — an eager corpus with the same graphs. A no-op on an
    eager backing; a mapped backing decodes every graph (reusing the ones
    already memoised) and drops the mapping dependence, so the result
    stays valid even after the underlying file changes or the mapping is
    released. Raises [Psst_store.Store_error] if any stored graph is
    malformed — materialising never silently truncates. *)
val materialise : t -> t

(** [append t gs] — an eager corpus holding [t]'s graphs followed by
    [gs]. A mapped [t] is {!materialise}d first (the append itself never
    reads the mapping lazily), so continuous ingest on an mmap-served
    database is safe: the appended corpus and its {!fingerprint} are
    identical to appending to the eager load of the same image. *)
val append : t -> Pgraph.t array -> t

(** {1 Identity} *)

(** [fingerprint t] — {!Pgraph_io.db_fingerprint} of the graphs. For a
    mapped corpus this is one streaming CRC pass over the raw payload (no
    decode, no copy): the payload is byte-identical to the encoding the
    fingerprint is defined over. *)
val fingerprint : t -> int32
