lib/pgm/jtree.ml: Array Factor Hashtbl Int List Psst_util Set
