lib/pgm/velim.ml: Array Factor Int List Option Set
