let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "pgraph\n";
  let gc = Pgraph.skeleton t in
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "v %d\n" l))
    (Lgraph.vertex_labels gc);
  Array.iter
    (fun (e : Lgraph.edge) ->
      Buffer.add_string buf (Printf.sprintf "e %d %d %d\n" e.u e.v e.label))
    (Lgraph.edges gc);
  List.iter
    (fun f ->
      let vars =
        Factor.vars f |> Array.to_list |> List.map string_of_int
        |> String.concat ","
      in
      Buffer.add_string buf (Printf.sprintf "factor %s" vars);
      Factor.iter_assignments f (fun _ p ->
          Buffer.add_string buf (Printf.sprintf " %.17g" p));
      Buffer.add_char buf '\n')
    (Pgraph.factors t);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* --- JPT row validation ---

   [Pgraph.make] checks chain consistency with a 1e-6 tolerance, so a
   conditional row summing to, say, 1 + 5e-7 used to be accepted here and
   only misbehaved later in [Exact] (world probabilities summing past 1).
   Both parsers therefore reject over-unity rows up front, with a message
   naming the factor and the offending row. *)

let jpt_row_eps = 1e-9

let validate_factor_rows ~fail factors =
  let covered = Hashtbl.create 16 in
  List.iteri
    (fun i f ->
      let vars = Factor.vars f in
      let old_vars =
        Array.to_list vars |> List.filter (Hashtbl.mem covered)
      in
      (* Summing the new variables out leaves, per conditioning assignment,
         that row's total probability mass. *)
      let row_totals = Factor.marginal_onto f old_vars in
      Factor.iter_assignments row_totals (fun row total ->
          if total > 1. +. jpt_row_eps then
            fail
              (Printf.sprintf
                 "factor %d over edges {%s}: conditional row %d has \
                  probabilities summing to %.17g > 1"
                 i
                 (Array.to_list vars |> List.map string_of_int
                 |> String.concat ",")
                 row total));
      Array.iter (fun v -> Hashtbl.replace covered v ()) vars)
    factors

type parse_state = {
  mutable vlabels : int list; (* reversed *)
  mutable edges : (int * int * int) list; (* reversed *)
  mutable factors : Factor.t list; (* reversed *)
}

let parse_factor line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | "factor" :: vars :: probs ->
    let vars =
      String.split_on_char ',' vars
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string |> Array.of_list
    in
    let data = Array.of_list (List.map float_of_string probs) in
    Factor.create vars data
  | _ -> invalid_arg ("Pgraph_io: bad factor line: " ^ line)

let of_lines lines =
  let st = { vlabels = []; edges = []; factors = [] } in
  let finished = ref false in
  List.iter
    (fun line ->
      if not !finished then
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [] | [ "pgraph" ] -> ()
        | [ "v"; l ] -> st.vlabels <- int_of_string l :: st.vlabels
        | [ "e"; u; v; l ] ->
          st.edges <-
            (int_of_string u, int_of_string v, int_of_string l) :: st.edges
        | "factor" :: _ -> st.factors <- parse_factor line :: st.factors
        | [ "end" ] -> finished := true
        | w :: _ when String.length w > 0 && w.[0] = '#' -> ()
        | _ -> invalid_arg ("Pgraph_io: bad line: " ^ line))
    lines;
  let skeleton =
    Lgraph.create
      ~vlabels:(Array.of_list (List.rev st.vlabels))
      ~edges:(List.rev st.edges)
  in
  let factors = List.rev st.factors in
  validate_factor_rows ~fail:(fun msg -> invalid_arg ("Pgraph_io: " ^ msg)) factors;
  Pgraph.make skeleton factors

let of_string s = of_lines (String.split_on_char '\n' s)

let write_many oc graphs =
  Array.iter (fun g -> output_string oc (to_string g)) graphs

let read_many ic =
  let graphs = ref [] in
  let current = ref [] in
  (try
     while true do
       let line = input_line ic in
       let trimmed = String.trim line in
       current := trimmed :: !current;
       if trimmed = "end" then begin
         graphs := of_lines (List.rev !current) :: !graphs;
         current := []
       end
     done
   with End_of_file ->
     if List.exists (fun l -> l <> "") !current then
       invalid_arg "Pgraph_io.read_many: trailing partial graph");
  Array.of_list (List.rev !graphs)

let save path graphs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_many oc graphs)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_many ic)

(* --- binary codec --- *)

module S = Psst_store

let encode_factor e f =
  let vars = Factor.vars f in
  S.put_int_list e (Array.to_list vars);
  Factor.iter_assignments f (fun _ p -> S.put_f64 e p)

let decode_factor d =
  let vars = S.get_int_list d in
  let k = List.length vars in
  if k > Factor.max_vars then
    S.error "factor scope of %d variables exceeds the %d-variable cap" k
      Factor.max_vars;
  let data = Array.init (1 lsl k) (fun _ -> 0.) in
  for i = 0 to Array.length data - 1 do
    data.(i) <- S.get_f64 d
  done;
  S.checked (fun () -> Factor.create (Array.of_list vars) data)

let encode_binary e g =
  S.put_lgraph e (Pgraph.skeleton g);
  S.put_list e encode_factor (Pgraph.factors g)

let decode_binary d =
  let skeleton = S.get_lgraph d in
  let factors = S.get_list d decode_factor in
  validate_factor_rows ~fail:(fun msg -> S.error "Pgraph_io: %s" msg) factors;
  S.checked (fun () -> Pgraph.make skeleton factors)

let save_binary path graphs =
  let meta = S.encoder () in
  S.put_i64 meta (Array.length graphs);
  let body = S.encoder () in
  S.put_array body encode_binary graphs;
  S.write_file path ~kind:S.Pgdb [ S.section "meta" meta; S.section "graphs" body ]

let load_binary path =
  let sections = S.read_file path ~kind:S.Pgdb in
  let count = S.decode_section sections "meta" S.get_nat in
  let graphs = S.decode_section sections "graphs" (fun d -> S.get_array d decode_binary) in
  if Array.length graphs <> count then
    S.error "graph count mismatch: meta says %d, payload holds %d" count
      (Array.length graphs);
  graphs

let load_auto path =
  if S.is_store_file path then load_binary path else load path

let db_fingerprint graphs =
  let e = S.encoder () in
  S.put_array e encode_binary graphs;
  Psst_util.Crc32.digest (S.contents e)
