(* Dynamic-update correctness: incremental insertion must keep the
   feature support lists in sync with the new columns (the supports drive
   the column rebuild after a save/load round trip — a stale support
   silently drops the graph from the index), and the batched insertion
   paths must be observationally identical to the sequential folds. *)

module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 200 }
let mining = { Selection.default_params with max_edges = 2; beta = 0.2 }

let dataset seed n =
  Generator.generate
    { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
      max_vertices = 10; motif_edges = 3 }

(* Index the first [base] graphs; the rest are the arrival stream. *)
let split_db seed ~base ~extra =
  let ds = dataset seed (base + extra) in
  let db =
    Query.index_database ~mining ~bounds:fast_bounds
      (Array.sub ds.Generator.graphs 0 base)
  in
  (ds, db, Array.sub ds.Generator.graphs base extra)

let supports db =
  List.map (fun (f : Selection.feature) -> f.support) db.Query.features

let test_add_graph_syncs_supports () =
  let _, db, extra = split_db 101 ~base:8 ~extra:1 in
  let g = extra.(0) in
  let gi = Corpus.length db.Query.graphs in
  let db' = Query.add_graph db g in
  let gc = Pgraph.skeleton g in
  List.iter
    (fun (f : Selection.feature) ->
      let occurs = Vf2.exists f.graph gc in
      Alcotest.(check bool)
        "new graph in support iff the feature occurs in it" occurs
        (List.mem gi f.support))
    db'.Query.features;
  (* The database copy and the PMI's own copy must agree. *)
  Alcotest.(check bool) "db features = pmi features" true
    (supports db'
    = List.map
        (fun (f : Selection.feature) -> f.support)
        (Array.to_list (Pmi.features db'.Query.pmi)))

let test_supports_stay_sorted_unique () =
  let _, db, extra = split_db 103 ~base:6 ~extra:4 in
  let db' = Query.add_graphs db extra in
  List.iter
    (fun support ->
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
        | _ -> true
      in
      Alcotest.(check bool) "support sorted, no duplicates" true
        (strictly_increasing support))
    (supports db')

(* The original defect: after add_graph -> save -> load, the reloaded
   index had no trace of the new graph in any support list, so it was
   invisible to the structural filter rebuilt from those features. *)
let test_add_then_roundtrip_preserves_index () =
  let ds, db, extra = split_db 107 ~base:8 ~extra:1 in
  let db' = Query.add_graph db extra.(0) in
  let path = Filename.temp_file "psst_dynamic" ".pgdb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Query.save_database path db';
      let loaded = Query.load_database path in
      Alcotest.(check int) "graph count survives" 9
        (Corpus.length loaded.Query.graphs);
      Alcotest.(check bool) "supports survive" true
        (supports db' = supports loaded);
      Alcotest.(check int) "pmi sees every graph" 9
        (Pmi.num_graphs loaded.Query.pmi);
      (* Bit-identical answers, fresh vs reloaded. *)
      let rng = Prng.make 113 in
      let config =
        { Query.default_config with epsilon = 0.4; delta = 1;
          verifier = `Exact }
      in
      for _ = 1 to 3 do
        let q, _ = Generator.extract_query rng ds ~edges:4 in
        let a = Query.run db' q config and b = Query.run loaded q config in
        Alcotest.(check (list int)) "answers identical" a.Query.answers
          b.Query.answers;
        Alcotest.(check int) "same structural candidates"
          a.Query.stats.structural_candidates
          b.Query.stats.structural_candidates;
        Alcotest.(check int) "same accepted" a.Query.stats.accepted_by_bounds
          b.Query.stats.accepted_by_bounds;
        Alcotest.(check int) "same pruned" a.Query.stats.pruned_by_bounds
          b.Query.stats.pruned_by_bounds
      done)

let test_batch_equals_sequential () =
  let ds, db, extra = split_db 109 ~base:6 ~extra:4 in
  let seq = Array.fold_left Query.add_graph db extra in
  let batch = Query.add_graphs db extra in
  Alcotest.(check bool) "supports equal" true (supports seq = supports batch);
  Alcotest.(check bool) "structural counts equal" true
    (Structural.counts seq.Query.structural
    = Structural.counts batch.Query.structural);
  let nf = Pmi.num_features seq.Query.pmi in
  let ng = Corpus.length seq.Query.graphs in
  Alcotest.(check int) "pmi num_graphs" ng (Pmi.num_graphs batch.Query.pmi);
  for fi = 0 to nf - 1 do
    for gi = 0 to ng - 1 do
      let a = Pmi.lookup seq.Query.pmi ~feature:fi ~graph:gi in
      let b = Pmi.lookup batch.Query.pmi ~feature:fi ~graph:gi in
      if a <> b then Alcotest.failf "entry (%d, %d) differs" fi gi
    done
  done;
  let rng = Prng.make 127 in
  let config =
    { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Exact }
  in
  for _ = 1 to 3 do
    let q, _ = Generator.extract_query rng ds ~edges:4 in
    Alcotest.(check (list int)) "answers identical"
      (Query.run seq q config).Query.answers
      (Query.run batch q config).Query.answers
  done

let test_empty_batch_is_identity () =
  let _, db, _ = split_db 111 ~base:5 ~extra:1 in
  let db' = Query.add_graphs db [||] in
  Alcotest.(check int) "no graphs added" (Corpus.length db.Query.graphs)
    (Corpus.length db'.Query.graphs);
  Alcotest.(check bool) "supports untouched" true (supports db = supports db')

let suite =
  [
    Alcotest.test_case "add_graph syncs supports" `Slow
      test_add_graph_syncs_supports;
    Alcotest.test_case "supports stay sorted" `Slow
      test_supports_stay_sorted_unique;
    Alcotest.test_case "add + save/load round trip" `Slow
      test_add_then_roundtrip_preserves_index;
    Alcotest.test_case "batch = sequential adds" `Slow
      test_batch_equals_sequential;
    Alcotest.test_case "empty batch is identity" `Quick
      test_empty_batch_is_identity;
  ]
