module Proto = Psst_proto

exception Client_error of string

let client_error fmt = Printf.ksprintf (fun s -> raise (Client_error s)) fmt

type t = {
  endpoint : Proto.endpoint;
  connect_timeout_ms : float;  (* 0. = block indefinitely *)
  call_timeout_ms : float;  (* 0. = block indefinitely *)
  mutable fd : Unix.file_descr;
}

let resolve endpoint =
  match endpoint with
  | Proto.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Proto.Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> client_error "%s: unknown host" host)
    in
    (Unix.PF_INET, Unix.ADDR_INET (inet, port))

(* Non-blocking connect + select so an unreachable or black-holed endpoint
   surfaces as a clean Client_error after [timeout_ms] instead of blocking
   the caller for the kernel's (minutes-long) TCP timeout. *)
let connect_fd endpoint timeout_ms =
  let domain, addr = resolve endpoint in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  try
    (if timeout_ms <= 0. then Unix.connect fd addr
     else begin
       Unix.set_nonblock fd;
       (match Unix.connect fd addr with
       | () -> ()
       | exception
           Unix.Unix_error
             ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
         let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.) in
         let rec wait () =
           let left = deadline -. Unix.gettimeofday () in
           if left <= 0. then
             client_error "connect to %s timed out after %.0f ms"
               (Proto.endpoint_to_string endpoint)
               timeout_ms;
           match Unix.select [] [ fd ] [ fd ] left with
           | _, [], [] -> wait ()
           | _ -> ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
         in
         wait ();
         (* The socket is writable on success AND on failure; SO_ERROR
            tells them apart. *)
         (match Unix.getsockopt_error fd with
         | None -> ()
         | Some err ->
           client_error "connect to %s failed: %s"
             (Proto.endpoint_to_string endpoint)
             (Unix.error_message err)));
       Unix.clear_nonblock fd
     end);
    fd
  with
  | Client_error _ as e ->
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
    raise e
  | Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
    client_error "connect to %s failed: %s"
      (Proto.endpoint_to_string endpoint)
      (Unix.error_message err)

let connect ?(connect_timeout_ms = 0.) ?(call_timeout_ms = 0.) endpoint =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let fd = connect_fd endpoint connect_timeout_ms in
  { endpoint; connect_timeout_ms; call_timeout_ms; fd }

let close c = try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

let reconnect c =
  close c;
  c.fd <- connect_fd c.endpoint c.connect_timeout_ms

let deadline c =
  if c.call_timeout_ms > 0. then
    Some (Unix.gettimeofday () +. (c.call_timeout_ms /. 1000.))
  else None

let send_raw c bytes = Proto.write_frame_fd ?deadline:(deadline c) c.fd bytes
let send c req = send_raw c (Proto.encode_request req)
let read_reply c = Proto.read_reply_fd ?deadline:(deadline c) c.fd
let half_close c = Unix.shutdown c.fd Unix.SHUTDOWN_SEND
let descriptor c = c.fd

let rpc c req =
  send c req;
  read_reply c

let ping c =
  match rpc c Proto.Ping with
  | Proto.Pong -> ()
  | _ -> raise (Client_error "ping: unexpected reply")

let stats_json c =
  match rpc c Proto.Get_stats with
  | Proto.Stats_json j -> j
  | _ -> raise (Client_error "stats: unexpected reply")

let health c =
  match rpc c Proto.Get_health with
  | Proto.Health_reply h -> h
  | _ -> raise (Client_error "health: unexpected reply")

let set_tenant c name =
  if name = "" then raise (Client_error "set_tenant: tenant name is empty");
  match rpc c (Proto.Set_tenant name) with
  | Proto.Pong -> ()
  | Proto.Error_reply { message; _ } ->
    client_error "set_tenant: server rejected %S: %s" name message
  | _ -> raise (Client_error "set_tenant: unexpected reply")

(* Auto-generated idempotency tokens: one prefix per process (pid +
   start time), one suffix per batch. Unique across every client that
   could retry against the same server, with no coordination. *)
let token_counter = Atomic.make 0

let token_prefix =
  lazy (Printf.sprintf "%d.%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))

let fresh_token () =
  Printf.sprintf "%s.%d" (Lazy.force token_prefix)
    (Atomic.fetch_and_add token_counter 1)

let add_graphs ?(id = 0) ?token c graphs =
  let token = match token with Some t -> t | None -> fresh_token () in
  match rpc c (Proto.Add_graphs { id; token; graphs }) with
  | Proto.Ingest_ack { id = rid; epoch; base; count } ->
    if rid <> id then raise (Client_error "add_graphs: reply id mismatch");
    Ok { Psst_ingest.epoch; base; count }
  | Proto.Error_reply { id = rid; code; message } ->
    if rid <> id then raise (Client_error "add_graphs: reply id mismatch");
    Error (code, message)
  | _ -> raise (Client_error "add_graphs: unexpected reply")

(* Capped exponential backoff with a deterministic jitter (a PRNG here
   would make load-driver runs unrepeatable); returns seconds. *)
let backoff_delay backoff_ms attempt =
  let base = backoff_ms *. (2. ** float_of_int attempt) in
  let capped = Float.min base 2000. in
  let jitter = 0.75 +. (0.5 *. float_of_int (attempt * 7919 mod 997) /. 997.) in
  capped *. jitter /. 1000.

let run_all ?(max_retries = 0) ?(backoff_ms = 50.) c queries config =
  let queries = Array.of_list queries in
  let n = Array.length queries in
  let out : Proto.reply option array = Array.make n None in
  let pending () =
    let l = ref [] in
    for id = n - 1 downto 0 do
      if out.(id) = None then l := id :: !l
    done;
    !l
  in
  let attempt = ref 0 in
  let rec go () =
    match pending () with
    | [] -> ()
    | todo ->
      (* Pipeline every unanswered id, then collect. Server answers are
         deterministic per (db, query, config), so resending after a
         transport break cannot change a result — at worst the server
         computes an answer twice. *)
      let transport_ok =
        try
          List.iter
            (fun id -> send c (Proto.Run { id; query = queries.(id); config }))
            todo;
          let remaining = ref (List.length todo) in
          while !remaining > 0 do
            let reply = read_reply c in
            let id =
              match reply with
              | Proto.Answer { id; _ } | Proto.Error_reply { id; _ } -> id
              | Proto.Pong | Proto.Topk_answer _ | Proto.Stats_json _
              | Proto.Health_reply _ | Proto.Ingest_ack _ | Proto.Delta_frame _
                ->
                raise (Client_error "run_all: unexpected reply kind")
            in
            if id < 0 || id >= n then
              raise (Client_error "run_all: reply id out of range");
            if out.(id) <> None then
              raise (Client_error "run_all: duplicate reply id");
            out.(id) <- Some reply;
            decr remaining
          done;
          true
        with
        | End_of_file | Proto.Proto_error _ | Proto.Timed_out
        | Unix.Unix_error (_, _, _)
        | Sys_error _
        | Psst_fault.Injected _ ->
          false
      in
      (* Retryable error replies (queue full, shutdown, unavailable) are
         resubmitted while retries remain; past the budget they stay in
         their slot for the caller to see. *)
      let retryable_cleared =
        if !attempt < max_retries then begin
          let any = ref false in
          Array.iteri
            (fun id r ->
              match r with
              | Some (Proto.Error_reply { code; _ })
                when Proto.error_code_retryable code ->
                out.(id) <- None;
                any := true
              | _ -> ())
            out;
          !any
        end
        else false
      in
      if (not transport_ok) || retryable_cleared then begin
        if !attempt >= max_retries then
          client_error
            "run_all: connection to %s failed with %d of %d replies missing \
             and no retries left (%d attempts)"
            (Proto.endpoint_to_string c.endpoint)
            (List.length (pending ()))
            n (!attempt + 1);
        Unix.sleepf (backoff_delay backoff_ms !attempt);
        incr attempt;
        if not transport_ok then reconnect c;
        go ()
      end
  in
  go ();
  Array.map
    (function
      | Some r -> r
      | None -> raise (Client_error "run_all: missing reply"))
    out
