(** Probabilistic pruning (paper §3): bounds on the subgraph-similarity
    probability assembled from PMI entries, and the prune / accept /
    verify decision.

    For a graph [g], relaxed query set [U = {rq1..rqa}] and the PMI column
    [Dg]:

    - {b Usim} (Pruning 1, Thm 3): each feature [fj ⊆iso rqi] defines a
      set [sj = {rqi : fj ⊆iso rqi}] weighted [UpperB fj]; any cover of
      [U] gives [Pr(q ⊆sim g) <= sum of weights] — minimised greedily
      (Algorithm 1). Relaxed queries covered by no feature contribute a
      trivial 1.0. Features absent from [gc] carry the paper's ⟨0⟩ entry:
      their SIP is exactly 0.
    - {b Lsim} (Pruning 2, Thm 4): sets [si = {rqj : rqj ⊆iso fi}] with
      pair weights [(LowerB fi, UpperB fi)]; a cover [C] gives the paper's
      bound [sum wL - (sum wU)^2] — maximised through the relaxed QP and
      randomized rounding (Def 11, Algorithm 2). A certified variant
      built from the safe PMI bounds drives the accept decision
      (DESIGN.md §3).

    [Random_pick] reproduces the paper's SSPBound baseline (one arbitrary
    feasible feature per relaxed query); [Optimized] is OPT-SSPBound.

    [certified] (default true) selects the certified bound pair of every
    PMI entry, making Pruning 1 free of false dismissals and Pruning 2
    free of false accepts under arbitrary edge correlation. With
    [certified:false] the paper's own bounds are used verbatim — tighter,
    but their Eq 16/19 conditional-independence step can be violated by
    positively correlated JPTs (see DESIGN.md §3); the experiment arms use
    this faithful mode. *)

type mode = Random_pick | Optimized

(** Query-side state shared by every candidate graph: which features embed
    in which relaxed queries and vice versa. Computing it once per query
    factors the subgraph-isomorphism tests out of the per-graph loop. *)
type prepared

(** [prepare pmi ~relaxed] — [relaxed] must be non-empty. *)
val prepare : Pmi.t -> relaxed:Lgraph.t list -> prepared

type result = {
  usim : float;  (** upper bound on SSP, clamped to [0,1] *)
  lsim : float;  (** the paper's lower bound (may be negative) *)
  lsim_safe : float;  (** certified lower bound (may be negative) *)
  decision : [ `Pruned | `Accepted | `Candidate ];
}

(** [evaluate rng pmi prepared ~graph ~epsilon ~mode] — bounds + decision
    for one candidate graph. *)
val evaluate :
  ?certified:bool ->
  Psst_util.Prng.t ->
  Pmi.t ->
  prepared ->
  graph:int ->
  epsilon:float ->
  mode:mode ->
  result

(** The two bound computations, exposed for tests and experiments. *)

val usim :
  ?certified:bool ->
  Psst_util.Prng.t ->
  Pmi.t ->
  prepared ->
  graph:int ->
  mode:mode ->
  float

val lsim :
  ?certified:bool ->
  Psst_util.Prng.t ->
  Pmi.t ->
  prepared ->
  graph:int ->
  mode:mode ->
  float * float
(** (paper bound, certified bound) *)
