lib/prob_graph/pgraph.mli: Factor Format Jtree Lgraph Psst_util
