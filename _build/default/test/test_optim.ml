module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

let bs n l = Bitset.of_list n l

(* --- Set cover (Algorithm 1) --- *)

let test_cover_paper_example () =
  (* Paper Example 3: U = {rq1,rq2,rq3}; s1={rq1,rq2} w=0.4,
     s2={rq2,rq3} w=0.1, s3={rq1,rq3} w=0.5. Tightest Usim = 0.5 via
     s1+s2. *)
  let sets = [| (bs 3 [ 0; 1 ], 0.4); (bs 3 [ 1; 2 ], 0.1); (bs 3 [ 0; 2 ], 0.5) |] in
  let r = Set_cover.greedy ~universe:3 sets in
  Tgen.check_close "paper Usim = 0.5" 0.5 r.weight;
  Alcotest.(check bool) "covered" true (Bitset.is_empty r.uncovered)

let test_cover_uncoverable () =
  let sets = [| (bs 3 [ 0 ], 0.2) |] in
  let r = Set_cover.greedy ~universe:3 sets in
  Alcotest.(check (list int)) "uncovered elements" [ 1; 2 ]
    (Bitset.elements r.uncovered);
  Tgen.check_close "partial weight" 0.2 r.weight

let test_cover_prefers_cheap () =
  let sets = [| (bs 2 [ 0; 1 ], 1.0); (bs 2 [ 0 ], 0.05); (bs 2 [ 1 ], 0.05) |] in
  let r = Set_cover.greedy ~universe:2 sets in
  Tgen.check_close "two cheap sets" 0.1 r.weight

let prop_cover_covers =
  QCheck.Test.make ~name:"greedy cover covers all coverable elements" ~count:150
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 3) in
      let universe = 2 + Prng.int rng 8 in
      let k = 1 + Prng.int rng 6 in
      let sets =
        Array.init k (fun _ ->
            let size = 1 + Prng.int rng universe in
            ( Bitset.of_list universe
                (Prng.sample_without_replacement rng size universe),
              Prng.float rng 1.0 ))
      in
      let r = Set_cover.greedy ~universe sets in
      let covered = Bitset.create universe in
      List.iter (fun i -> Bitset.union_into covered (fst sets.(i))) r.chosen;
      Bitset.union_into covered r.uncovered;
      Bitset.cardinal covered = universe)

(* --- QP (Def 11) --- *)

let paper_lsim_instance () =
  (* Paper Example 4: s1={rq1} (wL=0.28,wU=0.36), s2={rq1,rq2,rq3}
     (wL=0.08,wU=0.15). Only s2 covers, so any feasible C contains s2. *)
  {
    Qp.universe = 3;
    sets = [| (bs 3 [ 0 ], 0.28, 0.36); (bs 3 [ 0; 1; 2 ], 0.08, 0.15) |];
  }

let test_qp_objective () =
  let inst = paper_lsim_instance () in
  (* C = {s2}: 0.08 - 0.15^2 = 0.0575; C = {s1,s2}: 0.36 - 0.51^2 = 0.0999 *)
  Tgen.check_close ~eps:1e-9 "single set" (0.08 -. (0.15 *. 0.15))
    (Qp.integer_objective inst ~chosen:[ 1 ]);
  Tgen.check_close ~eps:1e-9 "both sets" (0.36 -. (0.51 *. 0.51))
    (Qp.integer_objective inst ~chosen:[ 0; 1 ])

let test_qp_objective_safe () =
  let inst = paper_lsim_instance () in
  (* safe: 0.28+0.08 - min(0.36,0.15) = 0.21 *)
  Tgen.check_close ~eps:1e-9 "safe objective" 0.21
    (Qp.integer_objective_safe inst ~chosen:[ 0; 1 ]);
  Tgen.check_close ~eps:1e-9 "safe singleton" 0.08
    (Qp.integer_objective_safe inst ~chosen:[ 1 ])

let test_qp_solve_feasible () =
  let inst = paper_lsim_instance () in
  let sol = Qp.solve inst in
  Alcotest.(check bool) "feasible" true sol.feasible;
  (* The relaxed optimum dominates every integer solution. *)
  Alcotest.(check bool) "dominates integer" true
    (sol.objective >= Qp.integer_objective inst ~chosen:[ 0; 1 ] -. 1e-6);
  Alcotest.(check bool) "dominates singleton" true
    (sol.objective >= Qp.integer_objective inst ~chosen:[ 1 ] -. 1e-6)

let test_qp_coverage_check () =
  let inst = paper_lsim_instance () in
  Alcotest.(check bool) "all ones feasible" true
    (Qp.coverage inst [| 1.; 1. |]);
  Alcotest.(check bool) "s1 only infeasible" false
    (Qp.coverage inst [| 1.; 0. |])

let prop_qp_relaxation_dominates =
  QCheck.Test.make
    ~name:"relaxed QP dominates all integer covers" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 31) in
      let universe = 2 + Prng.int rng 4 in
      let k = 2 + Prng.int rng 4 in
      let sets =
        Array.init k (fun _ ->
            let size = 1 + Prng.int rng universe in
            ( Bitset.of_list universe
                (Prng.sample_without_replacement rng size universe),
              Prng.float rng 0.5,
              Prng.float rng 0.5 ))
      in
      (* Ensure coverability: add the full set. *)
      let sets =
        Array.append sets
          [| (Bitset.full universe, Prng.float rng 0.5, Prng.float rng 0.5) |]
      in
      let inst = { Qp.universe; sets } in
      let sol = Qp.solve inst in
      (* Enumerate all feasible integer covers and compare. *)
      let n = Array.length sets in
      let ok = ref true in
      for mask = 1 to (1 lsl n) - 1 do
        let chosen =
          List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n (fun i -> i))
        in
        let covered = Bitset.create universe in
        List.iter
          (fun i -> Bitset.union_into covered (let s, _, _ = sets.(i) in s))
          chosen;
        if Bitset.cardinal covered = universe then
          if Qp.integer_objective inst ~chosen > sol.objective +. 1e-4 then
            ok := false
      done;
      !ok)

(* --- Rounding (Algorithm 2) --- *)

let prop_rounding_repaired_covers =
  QCheck.Test.make ~name:"repaired rounding always covers" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 41) in
      let universe = 2 + Prng.int rng 5 in
      let k = 1 + Prng.int rng 5 in
      let sets =
        Array.init k (fun _ ->
            let size = 1 + Prng.int rng universe in
            ( Bitset.of_list universe
                (Prng.sample_without_replacement rng size universe),
              Prng.float rng 0.5,
              Prng.float rng 0.5 ))
      in
      let sets = Array.append sets [| (Bitset.full universe, 0.1, 0.1) |] in
      let inst = { Qp.universe; sets } in
      let x = Array.map (fun _ -> Prng.float rng 1.0) sets in
      let r = Rounding.round_repaired rng inst ~x in
      r.covered)

let test_rounding_theorem5_rate () =
  (* With the optimal fractional solution, uncovered outcomes should be
     rare (Thm 5: >= 1 - 1/|U|). Empirically check a generous margin. *)
  let inst = paper_lsim_instance () in
  let sol = Qp.solve inst in
  let rng = Prng.make 99 in
  let fails = ref 0 in
  let n = 400 in
  for _ = 1 to n do
    let r = Rounding.round rng inst ~x:sol.x in
    if not r.covered then incr fails
  done;
  Alcotest.(check bool) "mostly covered" true
    (float_of_int !fails /. float_of_int n < 0.34)

let prop_rounding_chosen_sorted_unique =
  QCheck.Test.make ~name:"rounding output is sorted set of indices" ~count:50
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 53) in
      let inst = paper_lsim_instance () in
      let x = [| Prng.float rng 1.0; Prng.float rng 1.0 |] in
      let r = Rounding.round_repaired rng inst ~x in
      let sorted = List.sort_uniq compare r.chosen in
      sorted = r.chosen
      && List.for_all (fun i -> i >= 0 && i < Array.length inst.Qp.sets) r.chosen)

let suite =
  [
    Alcotest.test_case "cover: paper example 3" `Quick test_cover_paper_example;
    Alcotest.test_case "cover: uncoverable" `Quick test_cover_uncoverable;
    Alcotest.test_case "cover: prefers cheap" `Quick test_cover_prefers_cheap;
    QCheck_alcotest.to_alcotest prop_cover_covers;
    Alcotest.test_case "qp: integer objective" `Quick test_qp_objective;
    Alcotest.test_case "qp: safe objective" `Quick test_qp_objective_safe;
    Alcotest.test_case "qp: solve feasible" `Quick test_qp_solve_feasible;
    Alcotest.test_case "qp: coverage check" `Quick test_qp_coverage_check;
    QCheck_alcotest.to_alcotest prop_qp_relaxation_dominates;
    QCheck_alcotest.to_alcotest prop_rounding_repaired_covers;
    Alcotest.test_case "rounding: Thm 5 rate" `Quick test_rounding_theorem5_rate;
    QCheck_alcotest.to_alcotest prop_rounding_chosen_sorted_unique;
  ]
