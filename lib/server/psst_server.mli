(** Resident query server (DESIGN.md §11, §16).

    Loads a database once and answers {!Psst_proto} requests over a
    Unix-domain or TCP socket for the life of the process — the
    index-resident serving model the succinct-index literature assumes
    (no per-query process start, mining, or PMI build).

    Execution model: one accept thread, one lightweight reader thread per
    connection, a single batcher thread that owns the domain pool, and
    (when ingest is enabled) one {!Psst_ingest} writer thread. Readers
    admit [Run]/[Run_topk] requests into bounded per-tenant queues
    (explicit backpressure: a full queue or tenant quota yields a
    retryable [`Queue_full`] error reply, never an unbounded buffer); the
    batcher drains the queues round-robin across tenants in micro-batches
    and executes them with {!Query.run_batch_on} on the shared pool, so
    concurrent requests interleave across domains while each answer stays
    bit-identical to an offline {!Query.run}. [Ping]/[Get_stats]/
    [Set_tenant] are answered inline by the reader and never queue.

    Snapshot-consistent ingest: the served database is an epoch-numbered
    immutable {!Psst_ingest.snapshot} behind an atomic reference. Each
    request captures the snapshot at admission, so a query admitted
    before an [Add_graphs] batch was applied never observes the new
    graphs, and every answer is bit-identical to an offline run against
    that epoch's database. The ingest writer is the only mutator; when a
    delta {!Psst_ingest.chain} is supplied, each batch is persisted
    before its epoch is published.

    Multi-tenancy: a connection runs as tenant ["default"] until it sends
    [Set_tenant]. Admission quotas ([tenant_quota]) bound each tenant's
    queued queries and queued ingest graphs, the batcher takes one job
    per tenant per rota turn (a saturating tenant gets an equal share of
    batch slots, never the whole batch), and per-tenant
    [server.tenant.<name>.{admitted,served,rejected,ingested}] counters
    appear in [Get_stats].

    Deadlines bound queue wait: a request that has already waited longer
    than [deadline_ms] when the batcher pops it is answered with a
    [`Deadline`] error instead of being executed (verification is not
    preempted once started).

    Shutdown ({!stop}) is a graceful drain: admission closes (late
    arrivals get a retryable [`Shutdown`] error), every already-queued
    request is answered, every admitted ingest batch is applied,
    persisted and acknowledged, then connections are closed and the pool
    is released. A malformed frame on a connection produces one
    [`Malformed`] error reply and a ["proto"] warning event, then closes
    that connection; the server itself keeps serving. *)

type config = {
  endpoint : Psst_proto.endpoint;
  domains : int;  (** domain-pool size for verification fan-out *)
  queue_cap : int;  (** admission queue bound across tenants (backpressure) *)
  deadline_ms : float;  (** max queue wait; [0.] disables deadlines *)
  verify_budget_ms : float;
      (** per-batch verification budget (DESIGN.md §12): candidates whose
          verification would start after the budget elapses are answered
          from their PMI bounds and the reply is flagged [degraded] — a
          superset-safe answer under overload instead of an ever-growing
          latency tail. [0.] disables budgets (exact answers always). *)
  batch_max : int;  (** micro-batch size cap *)
  trace_cap : int;  (** per-query traces retained for [--stats-json] *)
  cache_cap : int;
      (** cross-query verification cache ({!Qcache}) value-table bound;
          [0] disables the cache. Cached answers are bit-identical to
          cold ones (the cache memoises deterministic artifacts only) and
          the cache self-invalidates when the database changes — an
          ingest epoch swap flushes it automatically — so the only
          trade-off is memory. *)
  ingest_queue_cap : int;
      (** bound on graphs queued for ingest across tenants; [0] disables
          ingest entirely ([Add_graphs] is answered [Unavailable]). *)
  tenant_quota : int;
      (** per-tenant bound on queued queries and queued ingest graphs;
          [0] disables quotas. Exceeding it yields a retryable
          [`Queue_full`] reply metered on the tenant's [rejected]
          counter. *)
  writable : bool;
      (** [false] starts the server as a read-only standby: [Add_graphs]
          is rejected with a retryable [Unavailable] (the replication
          stream is the process's only mutator) until promotion flips it
          with {!set_writable}. Queries are served normally at the
          applied epoch. *)
}

(** Unix socket, 1 domain, queue of 128, no deadline, no verification
    budget, batches of 32, 256 traces, cache of 16384 entries, ingest
    queue of 1024 graphs, no tenant quota, writable. *)
val default_config : Psst_proto.endpoint -> config

(** {1 The replication seam (DESIGN.md §17)}

    Implemented by [Psst_replica] and injected into {!start}, so the
    server stays below the replica layer in the library graph. *)

(** One connection's live subscription: the reader thread forwards the
    peer's [Replica_ack]s to [sub_ack] and calls [sub_close] (idempotent)
    when the connection dies, however it dies. *)
type subscription = { sub_ack : seq:int -> unit; sub_close : unit -> unit }

type publisher = {
  pub_publish : Psst_ingest.publish;
      (** handed to the ingest writer: blocks each batch's ack until the
          live subscribers acked its seq (semi-synchronous replication) *)
  pub_subscribe :
    from_seq:int ->
    send:(Psst_proto.reply -> bool) ->
    (subscription, string) Result.t;
      (** called by the reader on [Subscribe]: [send] writes one frame on
          the subscriber's connection and reports whether it left the
          socket. [Error msg] is answered as a retryable [Unavailable]. *)
}

type t

(** [start ?chain ?publisher config db] binds the endpoint and spawns the
    serving threads. [db] becomes epoch 0; [chain] (from
    {!Psst_ingest.load}) arms incremental delta persistence for ingested
    batches — omit it to serve a memory-only database (ingest still
    works, but does not survive the process). [publisher] arms
    replication: [Subscribe] connections stream delta frames and the
    ingest ack gate waits for standby acks. Raises [Unix.Unix_error]
    when the endpoint cannot be bound. SIGPIPE is set to ignore (a
    client hanging up mid-reply must not kill the process). *)
val start :
  ?chain:Psst_ingest.chain ->
  ?publisher:publisher ->
  config ->
  Query.database ->
  t

(** The bound endpoint — for [Tcp (host, 0)] this carries the actual
    kernel-assigned port. *)
val endpoint : t -> Psst_proto.endpoint

(** Graceful drain as described above. Idempotent; blocks until every
    queued request is answered, the ingest writer has drained, and all
    threads have joined. *)
val stop : t -> unit

(** True once {!stop} has completed. *)
val stopped : t -> bool

(** Most recent per-query traces (oldest first, at most [trace_cap]). *)
val traces : t -> Psst_obs.Trace.t list

(** Requests answered since {!start} (including error replies). *)
val served : t -> int

(** The current epoch's database / epoch number (in-process view of the
    atomic snapshot; tests diff this against offline reference runs). *)
val database : t -> Query.database

val epoch : t -> int

(** The atomic snapshot reference the server reads from. A standby's
    replication loop swaps new epochs in through it (via
    {!Psst_ingest.apply_replicated}); nothing else may mutate it. *)
val snapshot_ref : t -> Psst_ingest.snapshot Atomic.t

(** Whether [Add_graphs] is currently accepted (see [config.writable]). *)
val writable : t -> bool

(** Promotion switch: [set_writable t true] turns a standby into a
    writable primary. The caller must stop the replication loop first —
    the ingest writer and the replication stream must never mutate
    concurrently. *)
val set_writable : t -> bool -> unit

(** The snapshot the [Get_health] RPC answers from (also available
    in-process, e.g. for tests and supervisors). *)
val health : t -> Psst_proto.health
