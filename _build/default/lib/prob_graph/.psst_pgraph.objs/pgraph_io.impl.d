lib/prob_graph/pgraph_io.ml: Array Buffer Factor Fun Lgraph List Pgraph Printf String
