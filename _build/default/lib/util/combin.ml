let rec combinations k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
      let with_x = List.map (fun c -> x :: c) (combinations (k - 1) rest) in
      with_x @ combinations k rest

let iter_combinations k l f =
  let rec go k l acc =
    if k = 0 then f (List.rev acc)
    else
      match l with
      | [] -> ()
      | x :: rest ->
        go (k - 1) rest (x :: acc);
        go k rest acc
  in
  go k l []

let cartesian lls =
  List.fold_right
    (fun l acc -> List.concat_map (fun x -> List.map (fun rest -> x :: rest) acc) l)
    lls [ [] ]

let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
    let without = subsets rest in
    List.map (fun s -> x :: s) without @ without

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let binomial n k =
  if k < 0 || k > n then 0
  else
    let k = min k (n - k) in
    let rec go acc i = if i > k then acc else go (acc * (n - k + i) / i) (i + 1) in
    go 1 1
