(* Benchmark entry point.

   Usage: main.exe [fig9|fig10|fig11|fig12|fig13|fig14|ablation|parallel|store|obs|serve|shard|chaos|ingest|replica|verify|micro|all] [--quick]

   Each figN target regenerates the corresponding figure of the paper's
   evaluation section (§6) at a scaled-down workload (see DESIGN.md §4-5 and
   EXPERIMENTS.md); [store] measures the persistent index (cold PMI build
   vs. load-from-disk, DESIGN.md §9) and emits machine-readable
   BENCH_store.json; [micro] runs Bechamel micro-benchmarks of the kernel
   operations. No argument runs everything. *)

open Bechamel

(* Flat mmap-ready image vs eager decode at scale (DESIGN.md §15): index a
   large synthetic corpus once, persist it in both layouts, then measure
   time-to-first-query (load + one query, the cold-start metric a worker
   restart pays) for the eager decode of the classic layout against the
   zero-copy mapping of the flat one. The mmap-backed database must answer
   bit-identically to the eager one on every probe query. Full runs use
   10^4 graphs; --quick scales down to stay inside the CI time budget. *)
let store_flat ~scale ppf =
  Format.fprintf ppf
    "@.=== Store: flat mmap image vs eager decode (%s scale) ===@."
    (if scale.Experiments.db_size >= 120 then "10k graphs" else "quick");
  let n = if scale.Experiments.db_size >= 120 then 10_000 else 1_000 in
  (* [max_edges = 3] mines a feature-rich index — the regime where the
     O(features x graphs) eager decode dominates cold start; cheap bound
     knobs keep the one-off single-core build tractable. *)
  let params =
    {
      (Experiments.dataset_params scale) with
      Generator.num_graphs = n;
    }
  in
  let ds = Generator.generate params in
  let graphs = ds.Generator.graphs in
  let mining = { Selection.default_params with Selection.max_edges = 3 } in
  let bounds =
    {
      Bounds.default_config with
      Bounds.mc_samples = 16;
      emb_cap = 4;
      cut_cap = 8;
      clique_budget = 1_000;
    }
  in
  let domains = max 1 (Domain.recommended_domain_count () - 1) in
  let db, t_index =
    Psst_util.Timer.time (fun () ->
        Query.index_database ~mining ~bounds ~domains graphs)
  in
  Format.fprintf ppf
    "indexed %d graphs in %.1f s (%d features, %d filled PMI entries, %d \
     domains)@."
    n t_index
    (List.length db.Query.features)
    (Pmi.filled_entries db.Query.pmi)
    domains;
  let eager_path = Filename.temp_file "psst_bench_eager" ".db" in
  let flat_path = Filename.temp_file "psst_bench_flat" ".db" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ eager_path; flat_path ])
    (fun () ->
      Query.save_database eager_path db;
      Query.save_database ~flat:true flat_path db;
      let file_bytes p =
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> in_channel_length ic)
      in
      let eager_bytes = file_bytes eager_path in
      let flat_bytes = file_bytes flat_path in
      let rng = Psst_util.Prng.make (scale.Experiments.seed + 777) in
      let nq = max 3 (min 4 scale.Experiments.queries_per_point) in
      let queries =
        List.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:8))
      in
      let config = Query.default_config in
      let first = List.hd queries in
      (* Time-to-first-query: loader + one answered query, cold. The first
         query runs at a selective threshold (the regime a cold server
         actually faces — the index prunes nearly everything and the lazy
         corpus decodes only the few survivors); the differential probe
         below still exercises the default, heavier config. A full major
         collection first keeps one loader's garbage from being charged to
         the other's clock. *)
      let first_config = { config with Query.delta = 0; epsilon = 0.9 } in
      let ttfq loader =
        Gc.full_major ();
        let ldb, t_load = Psst_util.Timer.time loader in
        let _, t_q =
          Psst_util.Timer.time (fun () -> Query.run ldb first first_config)
        in
        (ldb, t_load, t_load +. t_q)
      in
      let mmap_db, t_load_mmap, ttfq_mmap =
        ttfq (fun () -> Query.load_database ~mmap:true flat_path)
      in
      let eager_db, t_load_eager, ttfq_eager =
        ttfq (fun () -> Query.load_database eager_path)
      in
      let probe ldb =
        List.map
          (fun q ->
            let o = Query.run ldb q config in
            ( o.Query.answers,
              o.Query.stats.structural_candidates,
              o.Query.stats.prob_candidates,
              o.Query.stats.accepted_by_bounds,
              o.Query.stats.pruned_by_bounds ))
          queries
      in
      let identical = probe eager_db = probe mmap_db in
      let speedup = if ttfq_mmap > 0. then ttfq_eager /. ttfq_mmap else infinity in
      Format.fprintf ppf
        "@[<v>eager file           %d bytes@,\
         flat file            %d bytes (%.1f bytes/graph)@,\
         eager load           %.3f s@,\
         mmap load            %.3f s@,\
         TTFQ eager           %.3f s@,\
         TTFQ mmap            %.3f s@,\
         TTFQ speedup         %.1fx@,\
         answers identical    %b (%d queries)@]@."
        eager_bytes flat_bytes
        (float_of_int flat_bytes /. float_of_int n)
        t_load_eager t_load_mmap ttfq_eager ttfq_mmap speedup identical nq;
      let json =
        Printf.sprintf
          "  \"flat\": {\n\
          \    \"db_size\": %d,\n\
          \    \"features\": %d,\n\
          \    \"filled_entries\": %d,\n\
          \    \"index_build_s\": %.3f,\n\
          \    \"eager_file_bytes\": %d,\n\
          \    \"flat_file_bytes\": %d,\n\
          \    \"flat_bytes_per_graph\": %.1f,\n\
          \    \"eager_load_s\": %.6f,\n\
          \    \"mmap_load_s\": %.6f,\n\
          \    \"ttfq_eager_s\": %.6f,\n\
          \    \"ttfq_mmap_s\": %.6f,\n\
          \    \"ttfq_speedup\": %.2f,\n\
          \    \"queries\": %d,\n\
          \    \"identical_answers\": %b\n\
          \  }"
          n
          (List.length db.Query.features)
          (Pmi.filled_entries db.Query.pmi)
          t_index eager_bytes flat_bytes
          (float_of_int flat_bytes /. float_of_int n)
          t_load_eager t_load_mmap ttfq_eager ttfq_mmap speedup nq identical
      in
      (json, identical))

(* Cold PMI build vs. load-from-disk on the Fig 9 workload. The loaded
   index must answer bit-identically (same answers, same pruning counters),
   so the comparison also doubles as an end-to-end determinism check. *)
let store ~scale ppf =
  Format.fprintf ppf
    "@.=== Store: cold index build vs load-from-disk (Fig 9 workload) ===@.";
  let ds = Generator.generate (Experiments.dataset_params scale) in
  let graphs = ds.Generator.graphs in
  let skeletons = Array.map Pgraph.skeleton graphs in
  let features, t_mine =
    Psst_util.Timer.time (fun () ->
        Selection.select skeletons Experiments.mining_params)
  in
  let pmi, t_cold = Psst_util.Timer.time (fun () -> Pmi.build graphs features) in
  let path = Filename.temp_file "psst_bench" ".pmi" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let () = Pmi.save path ~db:graphs pmi in
      let bytes =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> in_channel_length ic)
      in
      let loaded, t_load =
        Psst_util.Timer.time (fun () -> Pmi.load path ~db:graphs)
      in
      let structural = Structural.build skeletons features ~emb_cap:64 in
      let mk pmi =
        { Query.graphs = Corpus.of_array graphs; features; structural; pmi; base = 0 }
      in
      let db_fresh = mk pmi and db_loaded = mk loaded in
      let rng = Psst_util.Prng.make (scale.Experiments.seed + 777) in
      let nq = max 4 scale.Experiments.queries_per_point in
      let queries =
        List.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:8))
      in
      let config = Query.default_config in
      let identical =
        List.for_all
          (fun q ->
            let a = Query.run db_fresh q config in
            let b = Query.run db_loaded q config in
            a.Query.answers = b.Query.answers
            && a.stats.relaxed_count = b.stats.relaxed_count
            && a.stats.structural_candidates = b.stats.structural_candidates
            && a.stats.prob_candidates = b.stats.prob_candidates
            && a.stats.accepted_by_bounds = b.stats.accepted_by_bounds
            && a.stats.pruned_by_bounds = b.stats.pruned_by_bounds)
          queries
      in
      let speedup = if t_load > 0. then t_cold /. t_load else infinity in
      Format.fprintf ppf
        "@[<v>db size            %d graphs@,\
         features           %d@,\
         filled entries     %d@,\
         mining             %.3f s@,\
         cold Pmi.build     %.3f s@,\
         load from disk     %.3f s@,\
         speedup            %.1fx@,\
         index file         %d bytes@,\
         answers identical  %b (%d queries)@]@."
        (Array.length graphs) (List.length features)
        (Pmi.filled_entries pmi) t_mine t_cold t_load speedup bytes identical nq;
      (* Tentpole phase: flat mmap image vs eager decode at scale. *)
      let flat_json, flat_identical = store_flat ~scale ppf in
      let oc = open_out "BENCH_store.json" in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Printf.fprintf oc
            "{\n\
            \  \"workload\": \"fig9\",\n\
            \  \"db_size\": %d,\n\
            \  \"features\": %d,\n\
            \  \"filled_entries\": %d,\n\
            \  \"mine_s\": %.6f,\n\
            \  \"cold_build_s\": %.6f,\n\
            \  \"load_s\": %.6f,\n\
            \  \"speedup\": %.2f,\n\
            \  \"file_bytes\": %d,\n\
            \  \"queries\": %d,\n\
            \  \"identical_answers\": %b,\n\
             %s\n\
             }\n"
            (Array.length graphs) (List.length features)
            (Pmi.filled_entries pmi) t_mine t_cold t_load speedup bytes nq
            identical flat_json);
      Format.fprintf ppf "wrote BENCH_store.json@.";
      if not (identical && flat_identical) then exit 1)

(* Observability overhead on the Fig 9 workload: the same query batch
   with the metrics layer disabled and enabled must produce bit-identical
   answers, and the enabled run must stay within the 5% overhead budget
   (DESIGN.md §10). Also measures batched incremental insertion
   ([Query.add_graphs]) against the sequential [add_graph] fold. *)
let obs ~scale ppf =
  Format.fprintf ppf
    "@.=== Obs: metrics overhead + batched insertion (Fig 9 workload) ===@.";
  let ds = Generator.generate (Experiments.dataset_params scale) in
  let graphs = ds.Generator.graphs in
  let skeletons = Array.map Pgraph.skeleton graphs in
  let features = Selection.select skeletons Experiments.mining_params in
  let structural = Structural.build skeletons features ~emb_cap:64 in
  let pmi = Pmi.build graphs features in
  let db = { Query.graphs = Corpus.of_array graphs; features; structural; pmi; base = 0 } in
  let rng = Psst_util.Prng.make (scale.Experiments.seed + 777) in
  let nq = max 8 (2 * scale.Experiments.queries_per_point) in
  let queries =
    List.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:8))
  in
  let config = Query.default_config in
  let run_batch () =
    List.map (fun q -> (Query.run db q config).Query.answers) queries
  in
  ignore (run_batch ());
  (* Best of three: the comparison is against scheduler noise, not means. *)
  let best_of f =
    let best = ref infinity and out = ref [] in
    for _ = 1 to 3 do
      let r, t = Psst_util.Timer.time f in
      if t < !best then best := t;
      out := r
    done;
    (!out, !best)
  in
  Psst_obs.set_enabled false;
  let answers_off, t_off = best_of run_batch in
  Psst_obs.set_enabled true;
  Psst_obs.reset ();
  let answers_on, t_on = best_of run_batch in
  let identical = answers_off = answers_on in
  let overhead_pct =
    if t_off > 0. then (t_on -. t_off) /. t_off *. 100. else 0.
  in
  (* Incremental insertion: sequential fold vs one batch. *)
  let extra =
    (Generator.generate
       {
         (Experiments.dataset_params scale) with
         Generator.num_graphs = 16;
         seed = scale.Experiments.seed + 42;
       })
      .Generator.graphs
  in
  let (_ : Query.database), t_add_seq =
    Psst_util.Timer.time (fun () -> Array.fold_left Query.add_graph db extra)
  in
  let (_ : Query.database), t_add_batch =
    Psst_util.Timer.time (fun () -> Query.add_graphs db extra)
  in
  let add_speedup =
    if t_add_batch > 0. then t_add_seq /. t_add_batch else infinity
  in
  Format.fprintf ppf
    "@[<v>db size             %d graphs@,\
     queries             %d@,\
     batch, metrics off  %.3f s@,\
     batch, metrics on   %.3f s@,\
     overhead            %.2f %%@,\
     answers identical   %b@,\
     add 16 sequential   %.3f s@,\
     add 16 batched      %.3f s@,\
     batch speedup       %.2fx@]@."
    (Array.length graphs) nq t_off t_on overhead_pct identical t_add_seq
    t_add_batch add_speedup;
  let oc = open_out "BENCH_obs.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"workload\": \"fig9\",\n\
        \  \"db_size\": %d,\n\
        \  \"queries\": %d,\n\
        \  \"run_off_s\": %.6f,\n\
        \  \"run_on_s\": %.6f,\n\
        \  \"overhead_pct\": %.3f,\n\
        \  \"identical_answers\": %b,\n\
        \  \"add_graphs\": %d,\n\
        \  \"add_seq_s\": %.6f,\n\
        \  \"add_batch_s\": %.6f,\n\
        \  \"add_speedup\": %.2f,\n\
        \  \"metrics\": %s}\n"
        (Array.length graphs) nq t_off t_on overhead_pct identical
        (Array.length extra) t_add_seq t_add_batch add_speedup
        (Psst_obs.to_json_string ()));
  Format.fprintf ppf "wrote BENCH_obs.json@.";
  if not identical then exit 1

(* Server load driver: sweep client concurrency over the Fig 9 workload
   against an in-process Psst_server, measuring throughput and exact
   client-side p50/p95/p99 latency per concurrency level, then an overload
   phase (tiny queue, tight deadline) that exercises the backpressure and
   deadline paths so their counters appear in the embedded registry dump.
   Served answers are checked bit-identical to offline Query.run. *)
let serve ~scale ppf =
  Format.fprintf ppf
    "@.=== Serve: concurrency sweep + overload (Fig 9 workload) ===@.";
  let ds = Generator.generate (Experiments.dataset_params scale) in
  let graphs = ds.Generator.graphs in
  let skeletons = Array.map Pgraph.skeleton graphs in
  let features = Selection.select skeletons Experiments.mining_params in
  let structural = Structural.build skeletons features ~emb_cap:64 in
  let pmi = Pmi.build graphs features in
  let db = { Query.graphs = Corpus.of_array graphs; features; structural; pmi; base = 0 } in
  let rng = Psst_util.Prng.make (scale.Experiments.seed + 777) in
  let nq = max 4 scale.Experiments.queries_per_point in
  let queries =
    Array.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:8))
  in
  let config = Query.default_config in
  let offline =
    Array.map (fun q -> (Query.run db q config).Query.answers) queries
  in
  let sock = Filename.temp_file "psst_serve" ".sock" in
  let endpoint = Psst_proto.Unix_socket sock in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then nan
    else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
  in
  let identical = ref true in
  (* One client thread: [count] requests round-robin over the workload,
     returning per-request latencies and the error-reply count. *)
  let client_thread start count =
    let c = Psst_client.connect endpoint in
    Fun.protect
      ~finally:(fun () -> Psst_client.close c)
      (fun () ->
        let lats = Array.make count 0. in
        let errors = ref 0 in
        for j = 0 to count - 1 do
          let qi = (start + j) mod nq in
          let t0 = Unix.gettimeofday () in
          (match
             Psst_client.rpc c
               (Psst_proto.Run { id = j; query = queries.(qi); config })
           with
          | Psst_proto.Answer { answers; _ } ->
            if answers <> offline.(qi) then identical := false
          | Psst_proto.Error_reply _ -> incr errors
          | _ -> incr errors);
          lats.(j) <- Unix.gettimeofday () -. t0
        done;
        (lats, !errors))
  in
  let sweep_rows =
    let srv =
      Psst_server.start
        {
          (Psst_server.default_config endpoint) with
          Psst_server.domains = 4;
          queue_cap = 1024;
        }
        db
    in
    Fun.protect
      ~finally:(fun () -> Psst_server.stop srv)
      (fun () ->
        List.map
          (fun clients ->
            let per_client = max 4 nq in
            let total = clients * per_client in
            (* Thread.join discards results; collect via a mutex'd cell. *)
            let results = ref [] and rm = Mutex.create () in
            let t0 = Unix.gettimeofday () in
            let threads =
              List.init clients (fun i ->
                  Thread.create
                    (fun () ->
                      let r = client_thread (i * per_client) per_client in
                      Mutex.lock rm;
                      results := r :: !results;
                      Mutex.unlock rm)
                    ())
            in
            let wall =
              List.iter Thread.join threads;
              Unix.gettimeofday () -. t0
            in
            let lats =
              List.concat_map (fun (l, _) -> Array.to_list l) !results
              |> Array.of_list
            in
            Array.sort compare lats;
            let errors = List.fold_left (fun a (_, e) -> a + e) 0 !results in
            let row =
              ( clients,
                total,
                wall,
                float_of_int total /. wall,
                1000. *. percentile lats 0.50,
                1000. *. percentile lats 0.95,
                1000. *. percentile lats 0.99,
                errors )
            in
            let c, t, w, thr, p50, p95, p99, e = row in
            Format.fprintf ppf
              "clients %2d  requests %4d  wall %6.2f s  %7.1f req/s  \
               p50 %7.2f ms  p95 %7.2f ms  p99 %7.2f ms  errors %d@."
              c t w thr p50 p95 p99 e;
            row)
          [ 1; 2; 4; 8 ])
  in
  (* Overload: queue of 2 and a 1 ms queue-wait deadline under an 8-client
     burst forces queue-full rejections and deadline misses. *)
  let overload =
    let srv =
      Psst_server.start
        {
          (Psst_server.default_config endpoint) with
          Psst_server.domains = 1;
          queue_cap = 2;
          deadline_ms = 1.;
          batch_max = 2;
        }
        db
    in
    Fun.protect
      ~finally:(fun () -> Psst_server.stop srv)
      (fun () ->
        let ok = ref 0 and full = ref 0 and deadline = ref 0 and other = ref 0 in
        let m = Mutex.create () in
        let burst () =
          let c = Psst_client.connect endpoint in
          Fun.protect
            ~finally:(fun () -> Psst_client.close c)
            (fun () ->
              for j = 0 to (2 * nq) - 1 do
                match
                  Psst_client.rpc c
                    (Psst_proto.Run
                       { id = j; query = queries.(j mod nq); config })
                with
                | Psst_proto.Answer _ ->
                  Mutex.lock m; incr ok; Mutex.unlock m
                | Psst_proto.Error_reply { code = Psst_proto.Queue_full; _ } ->
                  Mutex.lock m; incr full; Mutex.unlock m
                | Psst_proto.Error_reply { code = Psst_proto.Deadline; _ } ->
                  Mutex.lock m; incr deadline; Mutex.unlock m
                | _ -> Mutex.lock m; incr other; Mutex.unlock m
              done)
        in
        let threads = List.init 8 (fun _ -> Thread.create burst ()) in
        List.iter Thread.join threads;
        Format.fprintf ppf
          "overload (queue 2, deadline 1 ms): %d ok, %d queue-full, \
           %d deadline, %d other@."
          !ok !full !deadline !other;
        (!ok, !full, !deadline, !other))
  in
  (try Sys.remove sock with Sys_error _ -> ());
  Format.fprintf ppf "answers identical  %b@." !identical;
  let oc = open_out "BENCH_serve.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let ok, full, deadline, other = overload in
      Printf.fprintf oc
        "{\n  \"workload\": \"fig9\",\n  \"db_size\": %d,\n  \"distinct_queries\": %d,\n  \"sweep\": [\n"
        (Array.length graphs) nq;
      List.iteri
        (fun i (c, t, w, thr, p50, p95, p99, e) ->
          Printf.fprintf oc
            "    {\"clients\": %d, \"requests\": %d, \"wall_s\": %.6f, \
             \"throughput_rps\": %.2f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
             \"p99_ms\": %.3f, \"errors\": %d}%s\n"
            c t w thr p50 p95 p99 e
            (if i < List.length sweep_rows - 1 then "," else ""))
        sweep_rows;
      Printf.fprintf oc
        "  ],\n  \"overload\": {\"ok\": %d, \"queue_full\": %d, \
         \"deadline\": %d, \"other\": %d},\n  \"identical_answers\": %b,\n  \
         \"metrics\": %s}\n"
        ok full deadline other !identical
        (Psst_obs.to_json_string ()));
  Format.fprintf ppf "wrote BENCH_serve.json@.";
  if not !identical then exit 1

(* Scatter-gather sharding: the Fig 9 serving workload against a router
   fronting 1/2/4/8 in-process shard workers (DESIGN.md §14). Every routed
   reply — answer set AND pruning counters — must be bit-identical to the
   offline monolithic run at every shard count. A final faulted phase stops
   one of two workers with the local bounds fallback armed: its shard's
   answers degrade to a flagged superset while the healthy shard stays
   exact, and no request fails. *)
let shard_bench ~scale ppf =
  Format.fprintf ppf
    "@.=== Shard: scatter-gather router sweep (Fig 9 workload) ===@.";
  let ds = Generator.generate (Experiments.dataset_params scale) in
  let graphs = ds.Generator.graphs in
  let skeletons = Array.map Pgraph.skeleton graphs in
  let features = Selection.select skeletons Experiments.mining_params in
  let structural = Structural.build skeletons features ~emb_cap:64 in
  let pmi = Pmi.build graphs features in
  let db = { Query.graphs = Corpus.of_array graphs; features; structural; pmi; base = 0 } in
  let n = Array.length graphs in
  let rng = Psst_util.Prng.make (scale.Experiments.seed + 777) in
  let nq = max 4 scale.Experiments.queries_per_point in
  let queries =
    Array.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:8))
  in
  let config = Query.default_config in
  let offline =
    Array.map
      (fun q ->
        let r = Query.run db q config in
        (r.Query.answers, Psst_proto.stats_of_query r.Query.stats))
      queries
  in
  let percentile sorted q =
    let m = Array.length sorted in
    if m = 0 then nan
    else sorted.(min (m - 1) (int_of_float (ceil (q *. float_of_int m)) - 1))
  in
  let clients = 4 in
  let identical = ref true in
  (* One fleet: [shards] workers, each serving one slice of [db] behind a
     router. Calls [body router_endpoint parts] with the fleet up. *)
  let with_fleet shards ~fallback body =
    let plan = Psst_shard.plan_even ~parts:shards ~total:n in
    let parts =
      List.map
        (fun (base, count) -> Psst_shard.sub_database db ~base ~count)
        plan
    in
    let socks =
      List.map (fun _ -> Filename.temp_file "psst_shard_w" ".sock") parts
    in
    let rsock = Filename.temp_file "psst_shard_r" ".sock" in
    let endpoints = List.map (fun s -> Psst_proto.Unix_socket s) socks in
    let workers =
      List.map2
        (fun ep part ->
          Psst_server.start
            {
              (Psst_server.default_config ep) with
              Psst_server.domains = 1;
              queue_cap = 1024;
            }
            part)
        endpoints parts
    in
    let parts_arr = Array.of_list parts in
    let router =
      Psst_router.start
        {
          (Psst_router.default_config
             ~endpoint:(Psst_proto.Unix_socket rsock)
             ~workers:endpoints)
          with
          Psst_router.local_fallback =
            (if fallback then
               Some
                 (fun sid ->
                   if sid >= 0 && sid < Array.length parts_arr then
                     Some parts_arr.(sid)
                   else None)
             else None);
        }
    in
    Fun.protect
      ~finally:(fun () ->
        Psst_router.stop router;
        List.iter Psst_server.stop workers;
        List.iter
          (fun s -> try Sys.remove s with Sys_error _ -> ())
          (rsock :: socks))
      (fun () -> body (Psst_router.endpoint router) (Array.of_list workers))
  in
  (* [count] requests round-robin over the workload through [ep]; each
     reply's answers and counters are checked against the offline run. *)
  let client_thread ep start count =
    let c = Psst_client.connect ep in
    Fun.protect
      ~finally:(fun () -> Psst_client.close c)
      (fun () ->
        let lats = Array.make count 0. in
        let errors = ref 0 in
        for j = 0 to count - 1 do
          let qi = (start + j) mod nq in
          let t0 = Unix.gettimeofday () in
          (match
             Psst_client.rpc c
               (Psst_proto.Run { id = j; query = queries.(qi); config })
           with
          | Psst_proto.Answer { answers; stats; _ } ->
            if (answers, stats) <> offline.(qi) then identical := false
          | _ -> incr errors);
          lats.(j) <- Unix.gettimeofday () -. t0
        done;
        (lats, !errors))
  in
  let sweep_rows =
    List.map
      (fun shards ->
        with_fleet shards ~fallback:false (fun rep workers ->
            let per_client = max 4 nq in
            let total = clients * per_client in
            let results = ref [] and rm = Mutex.create () in
            let t0 = Unix.gettimeofday () in
            let threads =
              List.init clients (fun i ->
                  Thread.create
                    (fun () ->
                      let r = client_thread rep (i * per_client) per_client in
                      Mutex.lock rm;
                      results := r :: !results;
                      Mutex.unlock rm)
                    ())
            in
            let wall =
              List.iter Thread.join threads;
              Unix.gettimeofday () -. t0
            in
            let lats =
              List.concat_map (fun (l, _) -> Array.to_list l) !results
              |> Array.of_list
            in
            Array.sort compare lats;
            let errors = List.fold_left (fun a (_, e) -> a + e) 0 !results in
            let row =
              ( shards,
                Array.length workers,
                total,
                wall,
                float_of_int total /. wall,
                1000. *. percentile lats 0.50,
                1000. *. percentile lats 0.99,
                errors )
            in
            let s, w, t, wl, thr, p50, p99, e = row in
            Format.fprintf ppf
              "shards %2d  workers %2d  requests %4d  wall %6.2f s  \
               %7.1f req/s  p50 %7.2f ms  p99 %7.2f ms  errors %d@."
              s w t wl thr p50 p99 e;
            row))
      [ 1; 2; 4; 8 ]
  in
  (* Faulted phase: 2 shards, worker 0 stopped, bounds fallback armed. *)
  let faulted =
    with_fleet 2 ~fallback:true (fun rep workers ->
        let b1 =
          match Psst_shard.plan_even ~parts:2 ~total:n with
          | _ :: (base, _) :: _ -> base
          | _ -> n
        in
        Psst_server.stop workers.(0);
        let c = Psst_client.connect rep in
        Fun.protect
          ~finally:(fun () -> Psst_client.close c)
          (fun () ->
            let degraded = ref 0
            and superset = ref true
            and healthy_exact = ref true
            and errors = ref 0 in
            for j = 0 to nq - 1 do
              match
                Psst_client.rpc c
                  (Psst_proto.Run { id = j; query = queries.(j); config })
              with
              | Psst_proto.Answer { answers; stats; _ } ->
                let off, _ = offline.(j) in
                if stats.Psst_proto.degraded then incr degraded;
                if not (List.for_all (fun g -> List.mem g answers) off) then
                  superset := false;
                let high = List.filter (fun g -> g >= b1) in
                if high answers <> high off then healthy_exact := false
              | _ -> incr errors
            done;
            (!degraded, !superset, !healthy_exact, !errors)))
  in
  let f_degraded, f_superset, f_healthy, f_errors = faulted in
  Format.fprintf ppf
    "faulted (2 shards, worker 0 down): %d/%d degraded replies, superset %b, \
     healthy shard exact %b, errors %d@."
    f_degraded nq f_superset f_healthy f_errors;
  Format.fprintf ppf "answers identical  %b@." !identical;
  let faulted_ok = f_superset && f_healthy && f_errors = 0 in
  let oc = open_out "BENCH_shard.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"workload\": \"fig9\",\n\
        \  \"db_size\": %d,\n\
        \  \"distinct_queries\": %d,\n\
        \  \"clients\": %d,\n\
        \  \"sweep\": [\n"
        n nq clients;
      List.iteri
        (fun i (s, w, t, wl, thr, p50, p99, e) ->
          Printf.fprintf oc
            "    {\"shards\": %d, \"workers\": %d, \"requests\": %d, \
             \"wall_s\": %.6f, \"throughput_rps\": %.2f, \"p50_ms\": %.3f, \
             \"p99_ms\": %.3f, \"errors\": %d}%s\n"
            s w t wl thr p50 p99 e
            (if i < List.length sweep_rows - 1 then "," else ""))
        sweep_rows;
      Printf.fprintf oc
        "  ],\n\
        \  \"faulted\": {\"shards\": 2, \"requests\": %d, \
         \"degraded_replies\": %d, \"superset_held\": %b, \
         \"healthy_shard_exact\": %b, \"errors\": %d},\n\
        \  \"identical_answers\": %b\n\
         }\n"
        nq f_degraded f_superset f_healthy f_errors !identical);
  Format.fprintf ppf "wrote BENCH_shard.json@.";
  if not (!identical && faulted_ok) then exit 1

(* Chaos load: the Fig 9 serving workload twice — faults disarmed, then
   armed (lossy sockets, a flaky batcher, rare verification faults) with a
   per-batch verification budget. Measures what degradation costs
   (throughput, p99) and what it buys (no hangs, no crashes, no silently
   wrong answers): every armed-phase reply must be exact, a flagged
   degraded superset, or a retryable error the client absorbed. *)
let chaos ~scale ppf =
  Format.fprintf ppf
    "@.=== Chaos: serving under injected faults (Fig 9 workload) ===@.";
  let ds = Generator.generate (Experiments.dataset_params scale) in
  let graphs = ds.Generator.graphs in
  let skeletons = Array.map Pgraph.skeleton graphs in
  let features = Selection.select skeletons Experiments.mining_params in
  let structural = Structural.build skeletons features ~emb_cap:64 in
  let pmi = Pmi.build graphs features in
  let db = { Query.graphs = Corpus.of_array graphs; features; structural; pmi; base = 0 } in
  let rng = Psst_util.Prng.make (scale.Experiments.seed + 777) in
  let nq = max 4 scale.Experiments.queries_per_point in
  let queries =
    Array.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:8))
  in
  let config = Query.default_config in
  let offline =
    Array.map (fun q -> (Query.run db q config).Query.answers) queries
  in
  let sock = Filename.temp_file "psst_chaos" ".sock" in
  let endpoint = Psst_proto.Unix_socket sock in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then nan
    else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
  in
  let c_degraded = Psst_obs.counter "server.degraded" in
  let c_retries = Psst_obs.counter "server.retries" in
  let clients = 4 and per_client = 2 * nq in
  let violations = ref [] and vm = Mutex.create () in
  let phase ~label ~faults =
    let srv =
      Psst_server.start
        {
          (Psst_server.default_config endpoint) with
          Psst_server.domains = 2;
          queue_cap = 1024;
          verify_budget_ms = (if faults then 50. else 0.);
        }
        db
    in
    let d0 = Psst_obs.counter_value c_degraded
    and r0 = Psst_obs.counter_value c_retries in
    Fun.protect
      ~finally:(fun () -> Psst_server.stop srv)
      (fun () ->
        if faults then
          Psst_fault.arm ~seed:20120805
            [
              ("proto.read", Psst_fault.Partial_io, 0.1);
              ("proto.write", Psst_fault.Partial_io, 0.1);
              ("server.batch", Psst_fault.Fail, 0.25);
              ("verify.sample", Psst_fault.Fail, 0.002);
            ];
        Fun.protect ~finally:Psst_fault.disarm (fun () ->
            let results = ref [] and rm = Mutex.create () in
            (* One request per run_all call: the client's reconnect and
               retry logic absorbs transport faults and retryable errors,
               and each call gives one end-to-end latency sample. *)
            let client_thread start =
              let c =
                Psst_client.connect ~connect_timeout_ms:5000.
                  ~call_timeout_ms:10000. endpoint
              in
              Fun.protect
                ~finally:(fun () -> Psst_client.close c)
                (fun () ->
                  let lats = Array.make per_client 0. in
                  let exact = ref 0 and degraded = ref 0 and errors = ref 0 in
                  for j = 0 to per_client - 1 do
                    let qi = (start + j) mod nq in
                    let t0 = Unix.gettimeofday () in
                    (match
                       Psst_client.run_all ~max_retries:8 ~backoff_ms:5. c
                         [ queries.(qi) ] config
                     with
                    | [| Psst_proto.Answer { answers; stats; _ } |] ->
                      if stats.Psst_proto.degraded then begin
                        incr degraded;
                        if
                          not
                            (List.for_all
                               (fun a -> List.mem a answers)
                               offline.(qi))
                        then begin
                          Mutex.lock vm;
                          violations :=
                            Printf.sprintf
                              "query %d: degraded answer not a superset" qi
                            :: !violations;
                          Mutex.unlock vm
                        end
                      end
                      else begin
                        incr exact;
                        if answers <> offline.(qi) then begin
                          Mutex.lock vm;
                          violations :=
                            Printf.sprintf
                              "query %d: unflagged answer differs from \
                               offline"
                              qi
                            :: !violations;
                          Mutex.unlock vm
                        end
                      end
                    | [| Psst_proto.Error_reply { code; _ } |] ->
                      (* Non-retryable would mean the invariant broke;
                         retryable ones surviving max_retries are counted
                         but acceptable under sustained faults. *)
                      incr errors;
                      if not (Psst_proto.error_code_retryable code) then begin
                        Mutex.lock vm;
                        violations :=
                          Printf.sprintf "query %d: non-retryable error %s" qi
                            (Psst_proto.error_code_name code)
                          :: !violations;
                        Mutex.unlock vm
                      end
                    | _ | (exception Psst_client.Client_error _) ->
                      incr errors);
                    lats.(j) <- Unix.gettimeofday () -. t0
                  done;
                  Mutex.lock rm;
                  results := (lats, !exact, !degraded, !errors) :: !results;
                  Mutex.unlock rm)
            in
            let t0 = Unix.gettimeofday () in
            let threads =
              List.init clients (fun i ->
                  Thread.create (fun () -> client_thread (i * per_client)) ())
            in
            List.iter Thread.join threads;
            let wall = Unix.gettimeofday () -. t0 in
            let lats =
              List.concat_map (fun (l, _, _, _) -> Array.to_list l) !results
              |> Array.of_list
            in
            Array.sort compare lats;
            let sum f = List.fold_left (fun a r -> a + f r) 0 !results in
            let exact = sum (fun (_, e, _, _) -> e)
            and degraded = sum (fun (_, _, d, _) -> d)
            and errors = sum (fun (_, _, _, e) -> e) in
            let total = clients * per_client in
            let row =
              ( label,
                total,
                wall,
                float_of_int total /. wall,
                1000. *. percentile lats 0.50,
                1000. *. percentile lats 0.99,
                exact,
                degraded,
                errors,
                Psst_obs.counter_value c_degraded - d0,
                Psst_obs.counter_value c_retries - r0 )
            in
            let ( l, t, w, thr, p50, p99, ex, dg, er, srv_dg, srv_rt ) = row in
            Format.fprintf ppf
              "%-10s requests %4d  wall %6.2f s  %7.1f req/s  p50 %7.2f ms  \
               p99 %7.2f ms  exact %d  degraded %d  errors %d  \
               (server: %d degraded, %d retryable rejections)@."
              l t w thr p50 p99 ex dg er srv_dg srv_rt;
            row))
  in
  let baseline = phase ~label:"faults-off" ~faults:false in
  let faulted = phase ~label:"faults-on" ~faults:true in
  (* Ingest-during-fault phase (DESIGN.md §16): a fresh server with delta
     persistence armed, store.write and server.batch faults injected, and
     one feeder connection pushing Add_graphs batches while the query
     clients run. The database grows mid-flight, so exactness is pinned
     with the restricted-id invariant: per-candidate PRNG streams are
     keyed by global id, so every answer restricted to the original ids
     [< N] must equal the offline run on the base database — exactly when
     unflagged, as a superset when degraded. A failed delta write must
     surface as a retryable rejection the feeder absorbs, never as a lost
     ack or a torn base file. *)
  let ingest_faulted, ingest_stats =
    let n_base = Array.length graphs in
    let base_path = Filename.temp_file "psst_chaos" ".pgdb" in
    Query.save_database base_path db;
    let db0, chain = Psst_ingest.load base_path in
    let pool =
      (Generator.generate
         { Generator.default_params with num_graphs = 60;
           seed = scale.Experiments.seed + 4242 })
        .Generator.graphs
    in
    let srv =
      Psst_server.start ~chain
        {
          (Psst_server.default_config endpoint) with
          Psst_server.domains = 2;
          queue_cap = 1024;
          verify_budget_ms = 50.;
        }
        db0
    in
    let d0 = Psst_obs.counter_value c_degraded
    and r0 = Psst_obs.counter_value c_retries in
    Fun.protect
      ~finally:(fun () ->
        Psst_server.stop srv;
        ignore (Psst_ingest.clear_deltas base_path);
        try Sys.remove base_path with Sys_error _ -> ())
      (fun () ->
        Psst_fault.arm ~seed:20120806
          [
            ("store.write", Psst_fault.Partial_io, 0.2);
            ("server.batch", Psst_fault.Fail, 0.25);
          ];
        Fun.protect ~finally:Psst_fault.disarm (fun () ->
            let stop_feed = Atomic.make false in
            let ingested = ref 0 and ing_ok = ref 0 and ing_rej = ref 0 in
            let feeder =
              Thread.create
                (fun () ->
                  let c =
                    Psst_client.connect ~connect_timeout_ms:5000.
                      ~call_timeout_ms:10000. endpoint
                  in
                  Fun.protect
                    ~finally:(fun () -> Psst_client.close c)
                    (fun () ->
                      let k = ref 0 in
                      (* At least 8 batches even if the query clients
                         finish first, so some survive the 0.2-probability
                         write fault and at least one epoch applies. *)
                      while (not (Atomic.get stop_feed)) || !k < 8 do
                        let b = Array.sub pool (!k mod 6 * 10) 10 in
                        incr k;
                        (match Psst_client.add_graphs c b with
                        | Ok r ->
                          ingested := !ingested + r.Psst_ingest.count;
                          incr ing_ok
                        | Error (code, _) ->
                          incr ing_rej;
                          if not (Psst_proto.error_code_retryable code)
                          then begin
                            Mutex.lock vm;
                            violations :=
                              Printf.sprintf
                                "ingest: non-retryable rejection %s"
                                (Psst_proto.error_code_name code)
                              :: !violations;
                            Mutex.unlock vm
                          end);
                        Thread.delay 0.002
                      done))
                ()
            in
            let results = ref [] and rm = Mutex.create () in
            let client_thread start =
              let c =
                Psst_client.connect ~connect_timeout_ms:5000.
                  ~call_timeout_ms:10000. endpoint
              in
              Fun.protect
                ~finally:(fun () -> Psst_client.close c)
                (fun () ->
                  let lats = Array.make per_client 0. in
                  let exact = ref 0 and degraded = ref 0 and errors = ref 0 in
                  for j = 0 to per_client - 1 do
                    let qi = (start + j) mod nq in
                    let t0 = Unix.gettimeofday () in
                    (match
                       Psst_client.run_all ~max_retries:8 ~backoff_ms:5. c
                         [ queries.(qi) ] config
                     with
                    | [| Psst_proto.Answer { answers; stats; _ } |] ->
                      let restricted =
                        List.filter (fun a -> a < n_base) answers
                      in
                      if stats.Psst_proto.degraded then begin
                        incr degraded;
                        if
                          not
                            (List.for_all
                               (fun a -> List.mem a restricted)
                               offline.(qi))
                        then begin
                          Mutex.lock vm;
                          violations :=
                            Printf.sprintf
                              "ingest query %d: degraded answer not a \
                               superset on ids < %d"
                              qi n_base
                            :: !violations;
                          Mutex.unlock vm
                        end
                      end
                      else begin
                        incr exact;
                        if restricted <> offline.(qi) then begin
                          Mutex.lock vm;
                          violations :=
                            Printf.sprintf
                              "ingest query %d: unflagged answer differs \
                               from offline on ids < %d"
                              qi n_base
                            :: !violations;
                          Mutex.unlock vm
                        end
                      end
                    | [| Psst_proto.Error_reply { code; _ } |] ->
                      incr errors;
                      if not (Psst_proto.error_code_retryable code)
                      then begin
                        Mutex.lock vm;
                        violations :=
                          Printf.sprintf
                            "ingest query %d: non-retryable error %s" qi
                            (Psst_proto.error_code_name code)
                          :: !violations;
                        Mutex.unlock vm
                      end
                    | _ | (exception Psst_client.Client_error _) ->
                      incr errors);
                    lats.(j) <- Unix.gettimeofday () -. t0
                  done;
                  Mutex.lock rm;
                  results := (lats, !exact, !degraded, !errors) :: !results;
                  Mutex.unlock rm)
            in
            let t0 = Unix.gettimeofday () in
            let threads =
              List.init clients (fun i ->
                  Thread.create (fun () -> client_thread (i * per_client)) ())
            in
            List.iter Thread.join threads;
            Atomic.set stop_feed true;
            Thread.join feeder;
            let wall = Unix.gettimeofday () -. t0 in
            let lats =
              List.concat_map (fun (l, _, _, _) -> Array.to_list l) !results
              |> Array.of_list
            in
            Array.sort compare lats;
            let sum f = List.fold_left (fun a r -> a + f r) 0 !results in
            let exact = sum (fun (_, e, _, _) -> e)
            and degraded = sum (fun (_, _, d, _) -> d)
            and errors = sum (fun (_, _, _, e) -> e) in
            let total = clients * per_client in
            let epochs = Psst_server.epoch srv in
            if epochs = 0 then begin
              Mutex.lock vm;
              violations := "ingest: no batch was ever applied" :: !violations;
              Mutex.unlock vm
            end;
            let row =
              ( "ingest-faults",
                total,
                wall,
                float_of_int total /. wall,
                1000. *. percentile lats 0.50,
                1000. *. percentile lats 0.99,
                exact,
                degraded,
                errors,
                Psst_obs.counter_value c_degraded - d0,
                Psst_obs.counter_value c_retries - r0 )
            in
            let l, t, w, thr, p50, p99, ex, dg, er, srv_dg, srv_rt = row in
            Format.fprintf ppf
              "%-10s requests %4d  wall %6.2f s  %7.1f req/s  p50 %7.2f ms  \
               p99 %7.2f ms  exact %d  degraded %d  errors %d  \
               (server: %d degraded, %d retryable rejections)@."
              l t w thr p50 p99 ex dg er srv_dg srv_rt;
            Format.fprintf ppf
              "ingest under faults: %d graphs applied across %d epochs \
               (%d acked batches, %d retryable rejections)@."
              !ingested epochs !ing_ok !ing_rej;
            (row, (!ingested, !ing_ok, !ing_rej, epochs))))
  in
  let rows = [ baseline; faulted; ingest_faulted ] in
  (try Sys.remove sock with Sys_error _ -> ());
  let ok = !violations = [] in
  List.iter (fun v -> Format.fprintf ppf "VIOLATION: %s@." v) !violations;
  Format.fprintf ppf "chaos invariant held  %b@." ok;
  let oc = open_out "BENCH_chaos.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"workload\": \"fig9\",\n  \"db_size\": %d,\n  \
         \"distinct_queries\": %d,\n  \"fault_seed\": 20120805,\n  \
         \"phases\": [\n"
        (Array.length graphs) nq;
      List.iteri
        (fun i (l, t, w, thr, p50, p99, ex, dg, er, srv_dg, srv_rt) ->
          Printf.fprintf oc
            "    {\"label\": %S, \"requests\": %d, \"wall_s\": %.6f, \
             \"throughput_rps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
             \"exact\": %d, \"degraded\": %d, \"errors\": %d, \
             \"server_degraded\": %d, \"server_retryable\": %d}%s\n"
            l t w thr p50 p99 ex dg er srv_dg srv_rt
            (if i < List.length rows - 1 then "," else ""))
        rows;
      let ing_graphs, ing_ok, ing_rej, ing_epochs = ingest_stats in
      Printf.fprintf oc
        "  ],\n  \"ingest\": {\"graphs\": %d, \"acked_batches\": %d, \
         \"rejected_batches\": %d, \"epochs\": %d},\n  \
         \"invariant_held\": %b,\n  \"metrics\": %s}\n"
        ing_graphs ing_ok ing_rej ing_epochs ok
        (Psst_obs.to_json_string ()));
  Format.fprintf ppf "wrote BENCH_chaos.json@.";
  if not ok then exit 1

(* Continuous ingest (DESIGN.md §16): the Fig 9 serving workload with a
   live Add_graphs feed. A query-only "light" tenant is measured solo,
   then again while a "heavy" tenant pushes ingest batches against its
   tenant quota and runs its own queries — the round-robin admission
   scheduler should keep the two tenants' query service comparable, and
   the quota should absorb the heavy tenant's oversized batches as clean
   retryable rejections metered per tenant. Reported: ingest throughput
   (graphs/s), the light tenant's p50/p99 drift solo → concurrent, and
   the fairness ratio between the tenants' query throughputs. Hard
   invariants (exit 1): every answer on the growing database, restricted
   to the original ids [< N], is identical to the offline run on the
   base database (per-candidate PRNG streams are keyed by global id, so
   appending graphs never changes an existing graph's verdict); every
   rejection is a retryable error; at least one batch applied and at
   least one oversized batch bounced. *)
let ingest_bench ~scale ppf =
  Format.fprintf ppf
    "@.=== Ingest: live Add_graphs under a two-tenant load (Fig 9 \
     workload) ===@.";
  let ds = Generator.generate (Experiments.dataset_params scale) in
  let graphs = ds.Generator.graphs in
  let n_base = Array.length graphs in
  let skeletons = Array.map Pgraph.skeleton graphs in
  let features = Selection.select skeletons Experiments.mining_params in
  let structural = Structural.build skeletons features ~emb_cap:64 in
  let pmi = Pmi.build graphs features in
  let db =
    { Query.graphs = Corpus.of_array graphs; features; structural; pmi;
      base = 0 }
  in
  let rng = Psst_util.Prng.make (scale.Experiments.seed + 777) in
  let nq = max 4 scale.Experiments.queries_per_point in
  let queries =
    Array.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:8))
  in
  let config = Query.default_config in
  let offline =
    Array.map (fun q -> (Query.run db q config).Query.answers) queries
  in
  let pool =
    (Generator.generate
       { Generator.default_params with num_graphs = 96;
         seed = scale.Experiments.seed + 4242 })
      .Generator.graphs
  in
  let quota = 24 in
  let sock = Filename.temp_file "psst_ingest" ".sock" in
  let endpoint = Psst_proto.Unix_socket sock in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then nan
    else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
  in
  let violations = ref [] and vm = Mutex.create () in
  let violation fmt =
    Printf.ksprintf
      (fun s ->
        Mutex.lock vm;
        violations := s :: !violations;
        Mutex.unlock vm)
      fmt
  in
  let per_client = 2 * nq in
  (* One tenant's query loop: [per_client] synchronous requests
     round-robin over the workload, each answer checked with the
     restricted-id invariant; rejections must be retryable. *)
  let query_loop tenant start =
    let c = Psst_client.connect endpoint in
    Fun.protect
      ~finally:(fun () -> Psst_client.close c)
      (fun () ->
        Psst_client.set_tenant c tenant;
        let lats = Array.make per_client 0. in
        let answered = ref 0 and rejected = ref 0 in
        let t0 = Unix.gettimeofday () in
        for j = 0 to per_client - 1 do
          let qi = (start + j) mod nq in
          let s = Unix.gettimeofday () in
          (match
             Psst_client.rpc c
               (Psst_proto.Run { id = j; query = queries.(qi); config })
           with
          | Psst_proto.Answer { answers; stats; _ } ->
            incr answered;
            let restricted = List.filter (fun a -> a < n_base) answers in
            if stats.Psst_proto.degraded then begin
              if
                not
                  (List.for_all (fun a -> List.mem a restricted) offline.(qi))
              then
                violation
                  "tenant %s query %d: degraded answer not a superset on \
                   ids < %d"
                  tenant qi n_base
            end
            else if restricted <> offline.(qi) then
              violation
                "tenant %s query %d: answer differs from offline on ids < %d"
                tenant qi n_base
          | Psst_proto.Error_reply { code; _ } ->
            incr rejected;
            if not (Psst_proto.error_code_retryable code) then
              violation "tenant %s query %d: non-retryable error %s" tenant
                qi
                (Psst_proto.error_code_name code)
          | _ -> violation "tenant %s query %d: unexpected reply kind" tenant qi);
          lats.(j) <- Unix.gettimeofday () -. s
        done;
        let wall = Unix.gettimeofday () -. t0 in
        Array.sort compare lats;
        (wall, lats, !answered, !rejected))
  in
  let phase_row label (wall, lats, answered, rejected) =
    let row =
      ( label,
        per_client,
        wall,
        float_of_int answered /. wall,
        1000. *. percentile lats 0.50,
        1000. *. percentile lats 0.99,
        answered,
        rejected )
    in
    let l, t, w, thr, p50, p99, a, r = row in
    Format.fprintf ppf
      "%-17s requests %4d  wall %6.2f s  %7.1f req/s  p50 %7.2f ms  \
       p99 %7.2f ms  answered %d  rejected %d@."
      l t w thr p50 p99 a r;
    row
  in
  let with_server f =
    let srv =
      Psst_server.start
        {
          (Psst_server.default_config endpoint) with
          Psst_server.domains = 2;
          queue_cap = 1024;
          ingest_queue_cap = 1024;
          tenant_quota = quota;
        }
        db
    in
    Fun.protect ~finally:(fun () -> Psst_server.stop srv) (fun () -> f srv)
  in
  (* Phase 1: the light tenant alone — the latency baseline. *)
  let solo =
    with_server (fun _ -> phase_row "light-solo" (query_loop "light" 0))
  in
  (* Phase 2: fresh server (epochs reset); the heavy tenant ingests and
     queries while the light tenant reruns the phase-1 workload. *)
  let light, heavy, ingest_stats =
    with_server (fun srv ->
        let stop_feed = Atomic.make false in
        let ingested = ref 0 and acked = ref 0 and rejected_b = ref 0 in
        let feed_wall = ref 1e-9 in
        let feeder =
          Thread.create
            (fun () ->
              let c = Psst_client.connect endpoint in
              Fun.protect
                ~finally:(fun () -> Psst_client.close c)
                (fun () ->
                  Psst_client.set_tenant c "heavy";
                  let t0 = Unix.gettimeofday () in
                  let k = ref 0 in
                  (* At least 8 batches even if the query clients finish
                     first; every fourth exceeds the tenant quota on
                     purpose and must bounce as a clean retryable
                     rejection metered on the heavy tenant. *)
                  while (not (Atomic.get stop_feed)) || !k < 8 do
                    let b =
                      if !k mod 4 = 3 then Array.sub pool 0 (quota + 8)
                      else Array.sub pool (!k mod 8 * 8) 8
                    in
                    incr k;
                    (match Psst_client.add_graphs c b with
                    | Ok r ->
                      ingested := !ingested + r.Psst_ingest.count;
                      incr acked
                    | Error (code, msg) ->
                      incr rejected_b;
                      if not (Psst_proto.error_code_retryable code) then
                        violation "ingest: non-retryable rejection %s (%s)"
                          (Psst_proto.error_code_name code)
                          msg);
                    Thread.delay 0.001
                  done;
                  feed_wall := Unix.gettimeofday () -. t0))
            ()
        in
        let results = Array.make 2 None in
        let qthreads =
          List.map
            (fun (tenant, start, slot) ->
              Thread.create
                (fun () -> results.(slot) <- Some (query_loop tenant start))
                ())
            [ ("light", 0, 0); ("heavy", nq / 2, 1) ]
        in
        List.iter Thread.join qthreads;
        Atomic.set stop_feed true;
        Thread.join feeder;
        let epochs = Psst_server.epoch srv in
        let light = phase_row "light-concurrent" (Option.get results.(0)) in
        let heavy = phase_row "heavy-concurrent" (Option.get results.(1)) in
        Format.fprintf ppf
          "ingest: %d graphs in %d batches across %d epochs \
           (%.1f graphs/s), %d rejected batches@."
          !ingested !acked epochs
          (float_of_int !ingested /. !feed_wall)
          !rejected_b;
        if epochs = 0 then violation "ingest: no batch was ever applied";
        if !rejected_b = 0 then
          violation "ingest: oversized batches were never rejected";
        let heavy_rejected =
          Psst_obs.counter_value
            (Psst_obs.counter "server.tenant.heavy.rejected")
        in
        if heavy_rejected < !rejected_b then
          violation
            "ingest: %d rejections but server.tenant.heavy.rejected = %d"
            !rejected_b heavy_rejected;
        (light, heavy, (!ingested, !acked, !rejected_b, epochs, !feed_wall)))
  in
  (try Sys.remove sock with Sys_error _ -> ());
  let ok = !violations = [] in
  List.iter (fun v -> Format.fprintf ppf "VIOLATION: %s@." v) !violations;
  let thr_of (_, _, _, t, _, _, _, _) = t in
  let p99_of (_, _, _, _, _, p, _, _) = p in
  let fairness =
    let a = thr_of light and b = thr_of heavy in
    if a = 0. || b = 0. then 0. else min a b /. max a b
  in
  let drift = p99_of light /. p99_of solo in
  Format.fprintf ppf
    "fairness (light/heavy query throughput) %.2f   light p99 drift \
     solo -> concurrent %.2fx@."
    fairness drift;
  Format.fprintf ppf "ingest invariants held  %b@." ok;
  let oc = open_out "BENCH_ingest.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let row_json (l, t, w, thr, p50, p99, a, r) =
        Printf.sprintf
          "{\"label\": %S, \"requests\": %d, \"wall_s\": %.6f, \
           \"throughput_rps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
           \"answered\": %d, \"rejected\": %d}"
          l t w thr p50 p99 a r
      in
      let g, ab, rb, ep, fw = ingest_stats in
      Printf.fprintf oc
        "{\n  \"workload\": \"fig9\",\n  \"db_size\": %d,\n  \
         \"distinct_queries\": %d,\n  \"tenant_quota\": %d,\n  \
         \"solo\": %s,\n  \"light_concurrent\": %s,\n  \
         \"heavy_concurrent\": %s,\n  \"ingest\": {\"graphs\": %d, \
         \"acked_batches\": %d, \"rejected_batches\": %d, \"epochs\": %d, \
         \"graphs_per_s\": %.2f},\n  \"fairness_ratio\": %.4f,\n  \
         \"light_p99_drift\": %.4f,\n  \"invariant_held\": %b,\n  \
         \"metrics\": %s}\n"
        n_base nq quota (row_json solo) (row_json light) (row_json heavy) g
        ab rb ep
        (float_of_int g /. fw)
        fairness drift ok
        (Psst_obs.to_json_string ()));
  Format.fprintf ppf "wrote BENCH_ingest.json@.";
  if not ok then exit 1

(* Replication (DESIGN.md §17): what semi-synchronous durability costs
   and what failover buys. Phase 1 feeds Add_graphs batches to a
   standalone chain server — the ack latency baseline. Phase 2 repeats
   the feed against a primary whose every ack is gated on a live standby
   having persisted the delta, sampling replica lag (primary seq minus
   standby applied seq) throughout; the delta chains must end
   byte-identical. Phase 3 routes a query load through a replica-aware
   router, kills the primary mid-load and measures the blackout until
   the standby answers exactly, then promotes the standby and verifies
   it accepts writes where the primary left off — no acked batch lost.
   Violated invariants exit non-zero. *)
let replica_bench ~scale ppf =
  Format.fprintf ppf
    "@.=== Replication: ack gating, replica lag, failover blackout ===@.";
  let ds = Generator.generate (Experiments.dataset_params scale) in
  let graphs = ds.Generator.graphs in
  let skeletons = Array.map Pgraph.skeleton graphs in
  let features = Selection.select skeletons Experiments.mining_params in
  let structural = Structural.build skeletons features ~emb_cap:64 in
  let pmi = Pmi.build graphs features in
  let db0 =
    { Query.graphs = Corpus.of_array graphs; features; structural; pmi;
      base = 0 }
  in
  let rng = Psst_util.Prng.make (scale.Experiments.seed + 17) in
  let nq = max 4 scale.Experiments.queries_per_point in
  let queries =
    Array.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:8))
  in
  let config = Query.default_config in
  let nbatch = 10 and bsize = 6 in
  let pool =
    (Generator.generate
       { Generator.default_params with num_graphs = nbatch * bsize;
         seed = scale.Experiments.seed + 9999 })
      .Generator.graphs
  in
  let batches = Array.init nbatch (fun i -> Array.sub pool (i * bsize) bsize) in
  let db_final = Array.fold_left Query.add_graphs db0 batches in
  let offline =
    Array.map (fun q -> (Query.run db_final q config).Query.answers) queries
  in
  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then nan
    else sorted.(min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))
  in
  let violations = ref [] and vm = Mutex.create () in
  let violation fmt =
    Printf.ksprintf
      (fun s ->
        Mutex.lock vm;
        violations := s :: !violations;
        Mutex.unlock vm)
      fmt
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let remove_store path =
    (try Sys.remove path with Sys_error _ -> ());
    for seq = 1 to nbatch + 4 do
      try Sys.remove (Psst_ingest.delta_path path seq) with Sys_error _ -> ()
    done
  in
  let fresh_sock () = Filename.temp_file "psst_replica" ".sock" in
  let counter_of name = Psst_obs.counter_value (Psst_obs.counter name) in
  (* Feed the batch sequence through one client, retrying retryable
     rejections (ack-gate timeouts) under the batch's idempotency token;
     the measured latency is first-send to final ack. *)
  let feed label endpoint =
    let c = Psst_client.connect endpoint in
    Fun.protect
      ~finally:(fun () -> Psst_client.close c)
      (fun () ->
        let lats = Array.make nbatch 0. in
        let t0 = Unix.gettimeofday () in
        Array.iteri
          (fun i b ->
            let token = Printf.sprintf "%s-batch-%d" label i in
            let s = Unix.gettimeofday () in
            let rec go attempts =
              match Psst_client.add_graphs ~token c b with
              | Ok r ->
                if r.Psst_ingest.epoch <> i + 1 then
                  violation "%s: batch %d acked at epoch %d" label i
                    r.Psst_ingest.epoch
              | Error (code, msg) ->
                if not (Psst_proto.error_code_retryable code) then
                  violation "%s: batch %d non-retryable rejection %s (%s)"
                    label i
                    (Psst_proto.error_code_name code)
                    msg
                else if attempts >= 200 then
                  violation "%s: batch %d never acked (%s)" label i msg
                else begin
                  Thread.delay 0.01;
                  go (attempts + 1)
                end
            in
            go 0;
            lats.(i) <- Unix.gettimeofday () -. s)
          batches;
        let wall = Unix.gettimeofday () -. t0 in
        Array.sort compare lats;
        (wall, lats))
  in
  let ack_row label (wall, lats) =
    let row =
      ( label,
        nbatch,
        wall,
        float_of_int nbatch /. wall,
        1000. *. percentile lats 0.50,
        1000. *. percentile lats 0.99 )
    in
    let l, n, w, thr, p50, p99 = row in
    Format.fprintf ppf
      "%-18s batches %3d  wall %6.2f s  %7.1f acks/s  ack p50 %7.2f ms  \
       ack p99 %7.2f ms@."
      l n w thr p50 p99;
    row
  in
  (* Phase 1: standalone ack latency baseline. *)
  let standalone =
    let path = Filename.temp_file "psst_replica_solo" ".psst" in
    Fun.protect ~finally:(fun () -> remove_store path) @@ fun () ->
    Query.save_database path db0;
    let pdb, chain = Psst_ingest.load path in
    let sock = fresh_sock () in
    let srv =
      Psst_server.start ~chain
        { (Psst_server.default_config (Psst_proto.Unix_socket sock)) with
          Psst_server.domains = 1 }
        pdb
    in
    Fun.protect ~finally:(fun () ->
        Psst_server.stop srv;
        try Sys.remove sock with Sys_error _ -> ())
    @@ fun () -> ack_row "standalone" (feed "solo" (Psst_proto.Unix_socket sock))
  in
  (* Phases 2-3: a primary/standby pair behind a replica-aware router. *)
  let ppath = Filename.temp_file "psst_replica_p" ".psst" in
  let spath = Filename.temp_file "psst_replica_s" ".psst" in
  Fun.protect ~finally:(fun () ->
      remove_store ppath;
      remove_store spath)
  @@ fun () ->
  Query.save_database ppath db0;
  let oc = open_out_bin spath in
  output_string oc (read_file ppath);
  close_out oc;
  let pdb, pchain = Psst_ingest.load ppath in
  let sdb, schain = Psst_ingest.load spath in
  let hub = Psst_replica.hub pchain in
  let psock = fresh_sock () and ssock = fresh_sock () and rsock = fresh_sock () in
  let pep = Psst_proto.Unix_socket psock
  and sep = Psst_proto.Unix_socket ssock in
  let psrv =
    Psst_server.start ~chain:pchain ~publisher:(Psst_replica.publisher hub)
      { (Psst_server.default_config pep) with Psst_server.domains = 1 }
      pdb
  in
  let ssrv =
    Psst_server.start ~chain:schain
      { (Psst_server.default_config sep) with Psst_server.domains = 1;
        writable = false }
      sdb
  in
  let standby =
    Psst_replica.start_standby ~primary:pep ~chain:schain
      (Psst_server.snapshot_ref ssrv)
  in
  let router =
    Psst_router.start
      { (Psst_router.default_config ~endpoint:(Psst_proto.Unix_socket rsock)
           ~workers:[ pep ])
        with
        Psst_router.workers = [| [| pep; sep |] |];
        retries = 2;
        shard_timeout_ms = 5000. }
  in
  Fun.protect ~finally:(fun () ->
      Psst_router.stop router;
      (if not (Psst_server.stopped psrv) then Psst_server.stop psrv);
      Psst_replica.stop_hub hub;
      Psst_server.stop ssrv;
      List.iter
        (fun s -> try Sys.remove s with Sys_error _ -> ())
        [ psock; ssock; rsock ])
  @@ fun () ->
  (* Wait for the subscription so every measured ack is really gated. *)
  let subs0 = counter_of "replica.subscribes" in
  let deadline = Unix.gettimeofday () +. 30. in
  while
    counter_of "replica.subscribes" <= subs0
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.005
  done;
  if counter_of "replica.subscribes" <= subs0 then
    violation "replicated: standby never subscribed";
  (* Phase 2: replicated feed with a lag sampler. *)
  let stop_sampler = Atomic.make false in
  let max_lag = ref 0 and lag_samples = ref 0 in
  let sampler =
    Thread.create
      (fun () ->
        while not (Atomic.get stop_sampler) do
          let lag =
            pchain.Psst_ingest.next_seq - 1 - Psst_replica.applied_seq standby
          in
          if lag > !max_lag then max_lag := lag;
          incr lag_samples;
          Thread.delay 0.002
        done)
      ()
  in
  let replicated = ack_row "replicated" (feed "rep" pep) in
  let deadline = Unix.gettimeofday () +. 30. in
  while
    Psst_replica.applied_seq standby < nbatch
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.005
  done;
  Atomic.set stop_sampler true;
  Thread.join sampler;
  if Psst_replica.applied_seq standby < nbatch then
    violation "replicated: standby converged to seq %d of %d"
      (Psst_replica.applied_seq standby)
      nbatch;
  if read_file ppath <> read_file spath then
    violation "replicated: base stores differ";
  for seq = 1 to nbatch do
    if
      read_file (Psst_ingest.delta_path ppath seq)
      <> read_file (Psst_ingest.delta_path spath seq)
    then violation "replicated: delta %d differs between chains" seq
  done;
  Format.fprintf ppf
    "replica lag: max %d deltas over %d samples; chains byte-identical  %b@."
    !max_lag !lag_samples
    (!violations = []);
  (* Phase 3: routed query load, failover, promotion. *)
  let query_round label c =
    let lats = Array.make (2 * nq) 0. in
    let t0 = Unix.gettimeofday () in
    for j = 0 to (2 * nq) - 1 do
      let qi = j mod nq in
      let s = Unix.gettimeofday () in
      (match
         Psst_client.rpc c
           (Psst_proto.Run { id = j; query = queries.(qi); config })
       with
      | Psst_proto.Answer { answers; stats; _ } ->
        if stats.Psst_proto.degraded then
          violation "%s query %d: degraded answer" label qi
        else if answers <> offline.(qi) then
          violation "%s query %d: answer differs from offline" label qi
      | Psst_proto.Error_reply { code; message; _ } ->
        violation "%s query %d: error %s (%s)" label qi
          (Psst_proto.error_code_name code)
          message
      | _ -> violation "%s query %d: unexpected reply kind" label qi);
      lats.(j) <- Unix.gettimeofday () -. s
    done;
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lats;
    let row =
      ( label,
        2 * nq,
        wall,
        float_of_int (2 * nq) /. wall,
        1000. *. percentile lats 0.50,
        1000. *. percentile lats 0.99 )
    in
    let l, n, w, thr, p50, p99 = row in
    Format.fprintf ppf
      "%-18s requests %3d  wall %6.2f s  %7.1f req/s  p50 %7.2f ms  \
       p99 %7.2f ms@."
      l n w thr p50 p99;
    row
  in
  let failovers0 = counter_of "router.failover" in
  let c = Psst_client.connect (Psst_router.endpoint router) in
  let healthy, blackout_ms, failover =
    Fun.protect
      ~finally:(fun () -> Psst_client.close c)
      (fun () ->
        let healthy = query_round "routed-healthy" c in
        (* Kill the primary; the blackout is the gap until the router
           serves an exact answer from the standby. *)
        let t_kill = Unix.gettimeofday () in
        Psst_server.stop psrv;
        Psst_replica.stop_hub hub;
        let rec first_exact attempts =
          match
            Psst_client.rpc c
              (Psst_proto.Run { id = 9000 + attempts; query = queries.(0);
                                config })
          with
          | Psst_proto.Answer { answers; stats; _ }
            when (not stats.Psst_proto.degraded) && answers = offline.(0) ->
            Unix.gettimeofday () -. t_kill
          | _ when attempts < 400 ->
            Thread.delay 0.01;
            first_exact (attempts + 1)
          | _ ->
            violation "failover: no exact answer after primary death";
            Unix.gettimeofday () -. t_kill
        in
        let blackout_ms = 1000. *. first_exact 0 in
        let failover = query_round "routed-failover" c in
        (healthy, blackout_ms, failover))
  in
  if counter_of "router.failover" <= failovers0 then
    violation "failover: router.failover counter did not grow";
  Format.fprintf ppf "failover blackout %.2f ms@." blackout_ms;
  (* Promotion: the survivor accepts writes where the primary left off. *)
  Psst_replica.promote standby ssrv;
  let extra =
    (Generator.generate
       { Generator.default_params with num_graphs = bsize;
         seed = scale.Experiments.seed + 31337 })
      .Generator.graphs
  in
  let c = Psst_client.connect sep in
  Fun.protect
    ~finally:(fun () -> Psst_client.close c)
    (fun () ->
      match Psst_client.add_graphs ~token:"promoted-extra" c extra with
      | Ok r ->
        if r.Psst_ingest.epoch <> nbatch + 1 then
          violation "promotion: extra batch acked at epoch %d, expected %d"
            r.Psst_ingest.epoch (nbatch + 1)
      | Error (_, msg) -> violation "promotion: write rejected: %s" msg);
  if schain.Psst_ingest.next_seq <> nbatch + 2 then
    violation "promotion: survivor chain at seq %d, expected %d"
      schain.Psst_ingest.next_seq (nbatch + 2);
  let ok = !violations = [] in
  List.iter (fun v -> Format.fprintf ppf "VIOLATION: %s@." v) !violations;
  Format.fprintf ppf "replication invariants held  %b@." ok;
  let oc = open_out "BENCH_replica.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let row_json (l, n, w, thr, p50, p99) =
        Printf.sprintf
          "{\"label\": %S, \"requests\": %d, \"wall_s\": %.6f, \
           \"throughput_rps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}"
          l n w thr p50 p99
      in
      Printf.fprintf oc
        "{\n  \"db_size\": %d,\n  \"batches\": %d,\n  \"batch_size\": %d,\n  \
         \"distinct_queries\": %d,\n  \"standalone_ingest\": %s,\n  \
         \"replicated_ingest\": %s,\n  \"replica_lag\": {\"max_deltas\": %d, \
         \"samples\": %d},\n  \"routed_healthy\": %s,\n  \
         \"routed_failover\": %s,\n  \"failover_blackout_ms\": %.3f,\n  \
         \"invariant_held\": %b,\n  \"metrics\": %s}\n"
        (Array.length graphs) nbatch bsize nq (row_json standalone)
        (row_json replicated) !max_lag !lag_samples (row_json healthy)
        (row_json failover) blackout_ms ok
        (Psst_obs.to_json_string ()));
  Format.fprintf ppf "wrote BENCH_replica.json@.";
  if not ok then exit 1

(* Verification hot path on the Fig 9 workload: the same repeated query
   sequence cold (no cache), with the cross-query cache armed, and with
   the cache plus adaptive-precision sampling (DESIGN.md §13). Reports
   per-query latency percentiles, Karp–Luby samples per candidate and
   cache hit rates; asserts the cached run is bit-identical to the cold
   one (same answers, same pruning counters) — the cache's hard
   invariant — and exits non-zero if it is not. *)
let verify_bench ~scale ppf =
  Format.fprintf ppf
    "@.=== Verify: cold vs warm-cache vs adaptive (Fig 9 workload) ===@.";
  let ds = Generator.generate (Experiments.dataset_params scale) in
  let graphs = ds.Generator.graphs in
  let skeletons = Array.map Pgraph.skeleton graphs in
  let features = Selection.select skeletons Experiments.mining_params in
  let structural = Structural.build skeletons features ~emb_cap:64 in
  let pmi = Pmi.build graphs features in
  let db = { Query.graphs = Corpus.of_array graphs; features; structural; pmi; base = 0 } in
  let rng = Psst_util.Prng.make (scale.Experiments.seed + 777) in
  let nq = max 4 scale.Experiments.queries_per_point in
  let rounds = 3 in
  let distinct =
    List.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:8))
  in
  (* The serving pattern the cache exists for: the same queries coming
     back — round 1 is compulsory misses, rounds 2..r are warm. *)
  let sequence = List.concat (List.init rounds (fun _ -> distinct)) in
  let smp_cfg =
    match Query.default_config.Query.verifier with
    | `Smp c -> c
    | `Exact -> Verify.default_config
  in
  let adaptive_config =
    { Query.default_config with
      verifier = `Smp { smp_cfg with Verify.adaptive = true } }
  in
  let c_samples = Psst_obs.counter "verify.smp_samples" in
  let c_hit = Psst_obs.counter "cache.hit" in
  let c_miss = Psst_obs.counter "cache.miss" in
  let c_early = Psst_obs.counter "verify.early_stop" in
  let percentile sorted q =
    match Array.length sorted with
    | 0 -> nan
    | n -> sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))
  in
  let run_variant ?cache config =
    let samples0 = Psst_obs.counter_value c_samples
    and hit0 = Psst_obs.counter_value c_hit
    and miss0 = Psst_obs.counter_value c_miss
    and early0 = Psst_obs.counter_value c_early in
    let results =
      List.map
        (fun q ->
          let out, t =
            Psst_util.Timer.time (fun () -> Query.run ?cache db q config)
          in
          (out, t))
        sequence
    in
    let outs = List.map fst results in
    let lats = List.map snd results in
    let candidates =
      List.fold_left
        (fun acc (o : Query.outcome) -> acc + o.Query.stats.prob_candidates)
        0 outs
    in
    let warm_lats =
      (* Rounds 2..r only: the steady-state latency a resident server
         sees once the working set is cached. *)
      List.filteri (fun i _ -> i >= nq) lats
    in
    let sorted l =
      let a = Array.of_list l in
      Array.sort compare a;
      a
    in
    let all = sorted lats and warm = sorted warm_lats in
    let hits = Psst_obs.counter_value c_hit - hit0
    and misses = Psst_obs.counter_value c_miss - miss0 in
    ( outs,
      ( percentile all 0.50, percentile all 0.95, percentile all 0.99,
        percentile warm 0.50,
        (let s = Psst_obs.counter_value c_samples - samples0 in
         if candidates = 0 then 0. else float_of_int s /. float_of_int candidates),
        (if hits + misses = 0 then 0.
         else float_of_int hits /. float_of_int (hits + misses)),
        Psst_obs.counter_value c_early - early0 ) )
  in
  let cold_outs, cold_row = run_variant Query.default_config in
  let warm_outs, warm_row =
    run_variant ~cache:(Qcache.create ()) Query.default_config
  in
  let adap_outs, adap_row =
    run_variant ~cache:(Qcache.create ()) adaptive_config
  in
  let identical =
    List.for_all2
      (fun (a : Query.outcome) (b : Query.outcome) ->
        a.Query.answers = b.Query.answers
        && a.stats.relaxed_count = b.stats.relaxed_count
        && a.stats.structural_candidates = b.stats.structural_candidates
        && a.stats.prob_candidates = b.stats.prob_candidates
        && a.stats.accepted_by_bounds = b.stats.accepted_by_bounds
        && a.stats.pruned_by_bounds = b.stats.pruned_by_bounds)
      cold_outs warm_outs
  in
  let same_answers =
    List.for_all2
      (fun (a : Query.outcome) (b : Query.outcome) ->
        a.Query.answers = b.Query.answers)
      cold_outs adap_outs
  in
  (* Adaptive sampling's decision-safety contract: a candidate whose exact
     SSP is well clear of ε (beyond the estimator's 3·τ noise floor, the
     same exemption the differential test suite uses) must never flip
     between the fixed-budget and adaptive runs. Borderline candidates —
     |exact − ε| ≤ 3·τ — may legitimately land on either side, so flipped
     answers are classified by their exact SSP: borderline flips are
     reported, a clear flip is a real estimator bug and fails the bench. *)
  let flip_pairs =
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    List.iteri
      (fun i ((a : Query.outcome), (b : Query.outcome)) ->
        let sym =
          List.filter
            (fun g -> not (List.mem g b.Query.answers))
            a.Query.answers
          @ List.filter
              (fun g -> not (List.mem g a.Query.answers))
              b.Query.answers
        in
        List.iter
          (fun gid ->
            let key = (i mod nq, gid) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              out := (List.nth sequence i, gid) :: !out
            end)
          sym)
      (List.combine cold_outs adap_outs);
    List.rev !out
  in
  let qcfg = Query.default_config in
  let borderline_flips, clear_flips =
    List.partition
      (fun (q, gid) ->
        let relaxed, _ =
          Relax.relaxed_set ~cap:qcfg.Query.relax_cap q ~delta:qcfg.Query.delta
        in
        let exact = Verify.exact graphs.(gid) relaxed in
        Float.abs (exact -. qcfg.Query.epsilon) <= 3. *. smp_cfg.Verify.tau)
      flip_pairs
  in
  let decision_safe = clear_flips = [] in
  let p50_of (p50, _, _, _, _, _, _) = p50
  and warm50_of (_, _, _, w, _, _, _) = w in
  let speedup_warm =
    if warm50_of warm_row > 0. then p50_of cold_row /. warm50_of warm_row
    else infinity
  in
  let speedup_adaptive =
    if warm50_of adap_row > 0. then p50_of cold_row /. warm50_of adap_row
    else infinity
  in
  let pr label (p50, p95, p99, w50, spc, hr, early) =
    Format.fprintf ppf
      "%-10s p50 %8.2f ms  p95 %8.2f ms  p99 %8.2f ms  warm-p50 %8.2f ms  \
       samples/cand %8.1f  hit-rate %5.1f%%  early-stops %d@."
      label (1000. *. p50) (1000. *. p95) (1000. *. p99) (1000. *. w50) spc
      (100. *. hr) early
  in
  pr "cold" cold_row;
  pr "warm" warm_row;
  pr "adaptive" adap_row;
  Format.fprintf ppf
    "speedup (cold p50 / warm p50)      %8.1fx@,\
     speedup (cold p50 / adaptive p50)  %8.1fx@,\
     answers identical (cold = warm)    %b@,\
     answer sets match (cold = adaptive) %b@,\
     adaptive flips: %d borderline (|exact SSP − ε| ≤ 3τ, legitimate), \
     %d clear (decision-safety violations)@."
    speedup_warm speedup_adaptive identical same_answers
    (List.length borderline_flips)
    (List.length clear_flips);
  List.iter
    (fun (_, gid) ->
      Format.fprintf ppf "CLEAR FLIP: graph %d (exact SSP well clear of ε)@."
        gid)
    clear_flips;
  let oc = open_out "BENCH_verify.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let row label (p50, p95, p99, w50, spc, hr, early) last =
        Printf.sprintf
          "    { \"variant\": %S, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
           \"p99_ms\": %.3f, \"warm_p50_ms\": %.3f, \
           \"samples_per_candidate\": %.2f, \"hit_rate\": %.4f, \
           \"early_stops\": %d }%s\n"
          label (1000. *. p50) (1000. *. p95) (1000. *. p99) (1000. *. w50)
          spc hr early
          (if last then "" else ",")
      in
      Printf.fprintf oc
        "{\n\
        \  \"workload\": \"fig9\",\n\
        \  \"db_size\": %d,\n\
        \  \"distinct_queries\": %d,\n\
        \  \"rounds\": %d,\n\
        \  \"variants\": [\n\
         %s%s%s  ],\n\
        \  \"speedup_warm_p50\": %.2f,\n\
        \  \"speedup_adaptive_p50\": %.2f,\n\
        \  \"identical_answers\": %b,\n\
        \  \"adaptive_same_answer_sets\": %b,\n\
        \  \"adaptive_borderline_flips\": %d,\n\
        \  \"adaptive_clear_flips\": %d,\n\
        \  \"adaptive_decision_safe\": %b\n\
         }\n"
        (Array.length graphs) nq rounds
        (row "cold" cold_row false)
        (row "warm" warm_row false)
        (row "adaptive" adap_row true)
        speedup_warm speedup_adaptive identical same_answers
        (List.length borderline_flips)
        (List.length clear_flips)
        decision_safe);
  Format.fprintf ppf "wrote BENCH_verify.json@.";
  if not (identical && decision_safe) then exit 1

let micro ppf =
  Format.fprintf ppf "@.=== Micro-benchmarks (Bechamel, ns/run) ===@.";
  let scale = { Experiments.quick_scale with db_size = 20 } in
  let ds =
    Generator.generate
      {
        Generator.default_params with
        num_graphs = scale.Experiments.db_size;
        min_vertices = 10;
        max_vertices = 14;
        motif_edges = 6;
        seed = 2012;
      }
  in
  let g = ds.Generator.graphs.(0) in
  let gc = Pgraph.skeleton g in
  let rng = Psst_util.Prng.make 1 in
  let q, _ = Generator.extract_query rng ds ~edges:5 in
  let relaxed, _ = Relax.relaxed_set q ~delta:1 in
  let skeletons = Array.map Pgraph.skeleton ds.Generator.graphs in
  let features =
    Selection.select skeletons { Selection.default_params with max_edges = 2 }
  in
  let feature =
    (List.find
       (fun (f : Selection.feature) -> Lgraph.num_edges f.graph >= 1)
       features)
      .graph
  in
  let clique_graph =
    let n = 14 in
    let weights = Array.init n (fun i -> 0.1 +. float_of_int (i mod 5)) in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if (u + v) mod 3 <> 0 then edges := (u, v) :: !edges
      done
    done;
    Mwc.make ~weights ~edges:!edges
  in
  let smp_rng = Psst_util.Prng.make 5 in
  let smp_cfg = { Verify.default_config with tau = 0.25 } in
  let tests =
    Test.make_grouped ~name:"psst"
      [
        Test.make ~name:"vf2-exists" (Staged.stage (fun () -> Vf2.exists q gc));
        Test.make ~name:"vf2-embeddings"
          (Staged.stage (fun () -> Vf2.distinct_embeddings ~cap:32 feature gc));
        Test.make ~name:"sample-world"
          (Staged.stage (fun () -> Pgraph.sample_world smp_rng g));
        Test.make ~name:"world-prob"
          (Staged.stage
             (let mask, _, _ = Pgraph.sample_world smp_rng g in
              fun () -> Pgraph.world_prob g mask));
        Test.make ~name:"max-weight-clique"
          (Staged.stage (fun () -> Mwc.max_weight_clique clique_graph));
        Test.make ~name:"canonical-code" (Staged.stage (fun () -> Canon.code q));
        Test.make ~name:"mcs-distance"
          (Staged.stage (fun () -> Distance.within q gc ~delta:1));
        Test.make ~name:"smp-verify"
          (Staged.stage (fun () -> Verify.smp ~config:smp_cfg smp_rng g relaxed));
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) -> Format.fprintf ppf "%-30s %14.1f ns/run@." name ns)
    rows

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let scale =
    if quick then Experiments.quick_scale else Experiments.default_scale
  in
  let targets =
    List.filter (fun a -> a <> "--quick") args
    |> function [] -> [ "all" ] | l -> l
  in
  let ppf = Format.std_formatter in
  let run = function
    | "fig9" -> Experiments.fig9 ~scale ppf
    | "fig10" -> Experiments.fig10 ~scale ppf
    | "fig11" -> Experiments.fig11 ~scale ppf
    | "fig12" -> Experiments.fig12 ~scale ppf
    | "fig13" -> Experiments.fig13 ~scale ppf
    | "fig14" -> Experiments.fig14 ~scale ppf
    | "ablation" | "ablations" -> Experiments.ablations ~scale ppf
    | "parallel" -> Experiments.parallel ~scale ppf
    | "store" -> store ~scale ppf
    | "obs" -> obs ~scale ppf
    | "serve" -> serve ~scale ppf
    | "shard" -> shard_bench ~scale ppf
    | "chaos" -> chaos ~scale ppf
    | "ingest" -> ingest_bench ~scale ppf
    | "replica" -> replica_bench ~scale ppf
    | "verify" -> verify_bench ~scale ppf
    | "micro" -> micro ppf
    | "all" ->
      Experiments.all ~scale ppf;
      store ~scale ppf;
      obs ~scale ppf;
      serve ~scale ppf;
      shard_bench ~scale ppf;
      chaos ~scale ppf;
      ingest_bench ~scale ppf;
      replica_bench ~scale ppf;
      verify_bench ~scale ppf;
      micro ppf
    | other ->
      Format.fprintf ppf
        "unknown target %S (expected fig9..fig14, ablation, parallel, store, obs, serve, shard, chaos, ingest, replica, verify, micro, all)@."
        other;
      exit 2
  in
  List.iter run targets;
  Format.pp_print_flush ppf ()
