lib/labeled_graph/canon.ml: Array Buffer Hashtbl Lgraph List Printf
