module Bitset = Psst_util.Bitset

(* Candidate domains: dom.(u) = set of target vertices that could host
   pattern vertex u. Initialised from vertex labels, degrees, and labelled
   neighbourhood signatures; refined by Ullmann's arc-consistency rule
   after every assignment: v stays in dom(u) only if every pattern
   neighbour w of u keeps a candidate adjacent to v through an equally
   labelled edge. *)

let initial_domains pattern target =
  let np = Lgraph.num_vertices pattern and nt = Lgraph.num_vertices target in
  let label_degree g v =
    (* multiset of incident edge labels, as a sorted list *)
    Lgraph.neighbors g v
    |> List.map (fun (_, eid) -> (Lgraph.edge g eid).label)
    |> List.sort compare
  in
  let rec sub_multiset a b =
    (* a ⊆ b for sorted lists *)
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' ->
      if x = y then sub_multiset a' b'
      else if y < x then sub_multiset a b'
      else false
  in
  let tsigs = Array.init nt (fun v -> label_degree target v) in
  Array.init np (fun u ->
      let d = Bitset.create nt in
      let usig = label_degree pattern u in
      for v = 0 to nt - 1 do
        if
          Lgraph.vertex_label pattern u = Lgraph.vertex_label target v
          && Lgraph.degree target v >= Lgraph.degree pattern u
          && sub_multiset usig tsigs.(v)
        then Bitset.add d v
      done;
      d)

(* One pass of arc-consistency; returns false if a domain empties. *)
let refine pattern target dom =
  let np = Lgraph.num_vertices pattern in
  let changed = ref true and ok = ref true in
  while !changed && !ok do
    changed := false;
    for u = 0 to np - 1 do
      if !ok then
        Bitset.iter
          (fun v ->
            let supported =
              List.for_all
                (fun (w, eid) ->
                  let elab = (Lgraph.edge pattern eid).label in
                  (* some candidate of w is adjacent to v via elab *)
                  Lgraph.neighbors target v
                  |> List.exists (fun (tv, teid) ->
                         (Lgraph.edge target teid).label = elab
                         && Bitset.mem dom.(w) tv))
                (Lgraph.neighbors pattern u)
            in
            if not supported then begin
              Bitset.remove dom.(u) v;
              changed := true
            end)
          (Bitset.copy dom.(u));
      if Bitset.is_empty dom.(u) then ok := false
    done
  done;
  !ok

let iter pattern target f =
  let np = Lgraph.num_vertices pattern and nt = Lgraph.num_vertices target in
  if np > nt || Lgraph.num_edges pattern > Lgraph.num_edges target then ()
  else begin
    let dom0 = initial_domains pattern target in
    if refine pattern target dom0 then begin
      let stop = ref false in
      let assignment = Array.make np (-1) in
      (* Assign pattern vertices in ascending initial-domain-size order. *)
      let order =
        List.init np (fun u -> u)
        |> List.sort (fun a b ->
               compare (Bitset.cardinal dom0.(a)) (Bitset.cardinal dom0.(b)))
        |> Array.of_list
      in
      let rec go depth (dom : Bitset.t array) =
        if !stop then ()
        else if depth = np then begin
          let edges = Bitset.create (Lgraph.num_edges target) in
          Array.iter
            (fun (e : Lgraph.edge) ->
              match Lgraph.find_edge target assignment.(e.u) assignment.(e.v) with
              | Some te -> Bitset.add edges te.id
              | None -> assert false)
            (Lgraph.edges pattern);
          if not (f { Embedding.vmap = Array.copy assignment; edges }) then
            stop := true
        end
        else begin
          let u = order.(depth) in
          Bitset.iter
            (fun v ->
              if not !stop then begin
                (* Restrict domains: u -> v, v excluded elsewhere. *)
                let dom' = Array.map Bitset.copy dom in
                Bitset.clear dom'.(u);
                Bitset.add dom'.(u) v;
                Array.iteri
                  (fun w d -> if w <> u then Bitset.remove d v)
                  dom';
                if refine pattern target dom' then begin
                  assignment.(u) <- v;
                  go (depth + 1) dom';
                  assignment.(u) <- -1
                end
              end)
            dom.(u)
        end
      in
      go 0 dom0
    end
  end

let exists pattern target =
  let found = ref false in
  iter pattern target (fun _ ->
      found := true;
      false);
  !found

let find_one pattern target =
  let result = ref None in
  iter pattern target (fun e ->
      result := Some e;
      false);
  !result

let count ?limit pattern target =
  let n = ref 0 in
  iter pattern target (fun _ ->
      incr n;
      match limit with Some l -> !n < l | None -> true);
  !n
