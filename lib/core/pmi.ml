type entry = Bounds.t

type t = {
  config : Bounds.config;
  features : Selection.feature array;
  entries : entry option array array; (* feature -> graph *)
  build_seconds : float;
}

let log_src = Logs.Src.create "psst.pmi" ~doc:"PMI index construction"

module Log = (val Logs.src_log log_src)

(* The matrix is computed column-by-column (per graph) so that the world
   pool of each graph is sampled once and the columns can be distributed
   over domains: every column touches exactly one Pgraph, so the lazily
   built junction trees never contend. Columns land at their graph index,
   hence the build is independent of how the pool schedules them. *)
let build_column config db features gi =
  let nf = Array.length features in
  let g = db.(gi) in
  let world_pool = lazy (Bounds.sample_pool config g) in
  Array.init nf (fun fi ->
      let f : Selection.feature = features.(fi) in
      if List.mem gi f.support then
        Some (Bounds.compute config ~pool:(Lazy.force world_pool) g f.graph)
      else None)

let build ?(config = Bounds.default_config) ?(domains = 1) db features =
  let features = Array.of_list features in
  let ng = Array.length db in
  let nf = Array.length features in
  let result, build_seconds =
    Psst_util.Timer.time (fun () ->
        let d = max 1 (min domains ng) in
        if d > 1 then Log.debug (fun m -> m "building %d columns on %d domains" ng d);
        let columns =
          Psst_util.Pool.with_pool ~domains:d (fun pool ->
              Psst_util.Pool.map_array pool ~chunk:1
                (build_column config db features)
                (Array.init ng Fun.id))
        in
        (* Transpose columns into the feature-major layout. *)
        Array.init nf (fun fi -> Array.init ng (fun gi -> columns.(gi).(fi))))
  in
  Log.info (fun m ->
      m "PMI built: %d features x %d graphs in %.2fs" nf ng build_seconds);
  { config; features; entries = result; build_seconds }

let add_graph t g =
  let gc = Pgraph.skeleton g in
  let pool = lazy (Bounds.sample_pool t.config g) in
  let entries =
    Array.map2
      (fun (f : Selection.feature) row ->
        let entry =
          if Lgraph.num_edges f.graph = 0 || Vf2.exists f.graph gc then
            Some (Bounds.compute t.config ~pool:(Lazy.force pool) g f.graph)
          else None
        in
        Array.append row [| entry |])
      t.features t.entries
  in
  { t with entries }

let config t = t.config
let features t = Array.copy t.features
let num_features t = Array.length t.features
let num_graphs t = if num_features t = 0 then 0 else Array.length t.entries.(0)

let lookup t ~feature ~graph = t.entries.(feature).(graph)

let column t ~graph =
  let out = ref [] in
  for fi = Array.length t.features - 1 downto 0 do
    match t.entries.(fi).(graph) with
    | Some e -> out := (fi, e) :: !out
    | None -> ()
  done;
  !out

let filled_entries t =
  Array.fold_left
    (fun acc row ->
      acc + Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 row)
    0 t.entries

let build_seconds t = t.build_seconds

let pp_stats ppf t =
  Format.fprintf ppf "PMI: %d features x %d graphs, %d filled entries, built in %.2fs"
    (num_features t) (num_graphs t) (filled_entries t) t.build_seconds
