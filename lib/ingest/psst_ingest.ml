(* Continuous-ingest pipeline (DESIGN.md §16).

   Concurrency model: one writer thread owns all mutation of the served
   database. Readers (the server's connection threads and batcher) only
   ever [Atomic.get] the snapshot, so there is no read-side locking and
   no torn state — an epoch is immutable once published. The writer
   builds each next epoch with Query.add_graphs (pure: fresh corpus
   array, fresh index rows) while queries keep running on the previous
   one, persists the delta first, then publishes with one Atomic.set.
   Crash ordering: the delta hits disk before the epoch swap, so an
   acknowledged batch is always reloadable; a batch that failed to
   persist is rejected with the in-memory database unchanged — memory
   and disk never diverge by more than the batch being rejected. *)

module S = Psst_store

let m_batches = Psst_obs.counter "ingest.batches"
let m_graphs = Psst_obs.counter "ingest.graphs"
let m_rejects = Psst_obs.counter "ingest.rejects"
let m_stale = Psst_obs.counter "ingest.delta.stale"
let m_dedup = Psst_obs.counter "ingest.dedup"
let m_lagging = Psst_obs.counter "ingest.replication.lagging"
let m_queue_depth = Psst_obs.histogram ~lo:1. ~hi:1e6 "ingest.queue.depth"
let m_apply = Psst_obs.histogram "ingest.apply_s"

type snapshot = { epoch : int; db : Query.database }
type result = { epoch : int; base : int; count : int }

(* --- delta-file persistence --- *)

let delta_path base k = Printf.sprintf "%s.delta.%d" base k

type chain = { base : string; base_fp : int32; mutable next_seq : int }

let meta_section ~seq ~base_fp ~prev_count ~count =
  let e = S.encoder () in
  S.put_i64 e seq;
  S.put_i32 e base_fp;
  S.put_i64 e prev_count;
  S.put_i64 e count;
  S.section "delta.meta" e

let graphs_section graphs =
  let e = S.encoder () in
  S.put_array e Pgraph_io.encode_binary graphs;
  S.section "delta.graphs" e

let save_delta chain ~prev_count graphs =
  let seq = chain.next_seq in
  S.write_file (delta_path chain.base seq) ~kind:S.Delta
    [
      meta_section ~seq ~base_fp:chain.base_fp ~prev_count
        ~count:(Array.length graphs);
      graphs_section graphs;
    ];
  chain.next_seq <- seq + 1

(* Decode delta [seq]; Store_error on damage or a chain mismatch. The
   fingerprint pins the delta to its base file and the count pins its
   position, so replay after a base rebuild or out of order is caught
   here instead of producing a silently different database. *)
let decode_delta_sections chain ~seq ~prev_count sections =
  let stored_seq, fp, stored_prev, count =
    S.decode_section sections "delta.meta" (fun d ->
        let stored_seq = S.get_nat d in
        let fp = S.get_i32 d in
        let stored_prev = S.get_nat d in
        let count = S.get_nat d in
        (stored_seq, fp, stored_prev, count))
  in
  if stored_seq <> seq then
    S.error "delta %d of %s records sequence number %d" seq chain.base
      stored_seq;
  if fp <> chain.base_fp then
    S.error
      "delta %d of %s was written for a different base corpus (fingerprint \
       %08lx, base is %08lx)"
      seq chain.base fp chain.base_fp;
  if stored_prev <> prev_count then
    S.error "delta %d of %s chains onto %d graphs, the database holds %d" seq
      chain.base stored_prev prev_count;
  let graphs =
    S.decode_section sections "delta.graphs" (fun d ->
        S.get_array d Pgraph_io.decode_binary)
  in
  if Array.length graphs <> count then
    S.error "delta %d of %s holds %d graphs, its metadata says %d" seq
      chain.base (Array.length graphs) count;
  graphs

let read_delta chain ~seq ~prev_count =
  decode_delta_sections chain ~seq ~prev_count
    (S.read_file (delta_path chain.base seq) ~kind:S.Delta)

let decode_delta chain ~seq ~prev_count bytes =
  decode_delta_sections chain ~seq ~prev_count (S.read_string bytes ~kind:S.Delta)

(* Raw bytes of a persisted delta, checksum-verified before they leave —
   the replication hub streams these so a standby's file is the exact
   bytes of the primary's, not a re-encoding. *)
let delta_bytes chain ~seq =
  let path = delta_path chain.base seq in
  let bytes =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error m -> S.error "cannot read delta %d of %s: %s" seq chain.base m
  in
  (* Verify every checksum and the seq/fingerprint stamps before the
     bytes leave this process; the prev_count in the file is trusted as
     stored — the subscriber re-checks it against its own database. *)
  let sections = S.read_string bytes ~kind:S.Delta in
  let stored_prev =
    S.decode_section sections "delta.meta" (fun d ->
        let _seq = S.get_nat d in
        let _fp = S.get_i32 d in
        let stored_prev = S.get_nat d in
        let _count = S.get_nat d in
        stored_prev)
  in
  ignore (decode_delta_sections chain ~seq ~prev_count:stored_prev sections);
  bytes

let apply_deltas ~base db =
  let chain =
    { base; base_fp = Corpus.fingerprint db.Query.graphs; next_seq = 1 }
  in
  let rec go db =
    let seq = chain.next_seq in
    if not (Sys.file_exists (delta_path base seq)) then db
    else
      match
        read_delta chain ~seq ~prev_count:(Corpus.length db.Query.graphs)
      with
      | graphs ->
        let db = Query.add_graphs db graphs in
        chain.next_seq <- seq + 1;
        go db
      | exception S.Store_error msg ->
        (* Stale (base rebuilt) or damaged: keep the epochs that chained,
           drop the rest of the chain — a bad delta never changes
           answers, it only costs the graphs it carried. *)
        Psst_obs.incr m_stale;
        Psst_obs.warn ~code:"ingest.delta"
          (Printf.sprintf "stopping delta replay at %s: %s"
             (delta_path base seq) msg);
        db
  in
  let db = go db in
  (db, chain)

let load ?salvage ?mmap path =
  apply_deltas ~base:path (Query.load_database ?salvage ?mmap path)

let clear_deltas path =
  let rec go k removed =
    let p = delta_path path k in
    if Sys.file_exists p then begin
      (try Sys.remove p with Sys_error _ -> ());
      go (k + 1) (removed + 1)
    end
    else removed
  in
  go 1 0

(* --- the replicated-apply path (standby side) --- *)

(* Same site Psst_store.write_file fires at, so a chaos plan arming
   "store.write" hits the standby's verbatim persist exactly like the
   primary's section writer. *)
let fault_write = Psst_fault.site "store.write"

(* Persist a received delta byte-for-byte with the store's tmp+rename
   discipline (and its write-fault semantics: Fail/Partial_io abandon
   the temporary, Bitflip completes the rename with one damaged byte —
   which the next load's checksums refuse). *)
let write_verbatim path bytes =
  let fault = Psst_fault.fire fault_write in
  (if fault = Some Psst_fault.Fail then
     raise (Psst_fault.Injected "injected fault at site store.write"));
  let data =
    match fault with
    | Some Psst_fault.Bitflip when String.length bytes > 0 ->
      let b = Bytes.of_string bytes in
      let pos = Psst_fault.draw_int fault_write (Bytes.length b) in
      let bit = Psst_fault.draw_int fault_write 8 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      Bytes.unsafe_to_string b
    | _ -> bytes
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match fault with
  | Some Psst_fault.Partial_io ->
    let cut =
      if String.length data = 0 then 0
      else Psst_fault.draw_int fault_write (String.length data)
    in
    output_substring oc data 0 cut;
    close_out oc;
    raise (Psst_fault.Injected "injected fault at site store.write")
  | Some (Psst_fault.Delay s) ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc data;
        flush oc;
        Unix.sleepf s)
  | _ ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc data));
  Sys.rename tmp path

let apply_replicated chain db_ref ~seq ~bytes =
  if seq < chain.next_seq then `Stale
  else if seq > chain.next_seq then
    `Error
      (Printf.sprintf "delta stream gap: expected seq %d, received %d"
         chain.next_seq seq)
  else begin
    let snap = Atomic.get db_ref in
    let prev_count = Corpus.length snap.db.Query.graphs in
    match
      let graphs = decode_delta chain ~seq ~prev_count bytes in
      let db' = Query.add_graphs snap.db graphs in
      write_verbatim (delta_path chain.base seq) bytes;
      (graphs, db')
    with
    | graphs, db' ->
      (* Same persist-before-swap ordering as the primary's writer: the
         bytes are on disk (verbatim, hence byte-identical chains) before
         the epoch is visible to readers, so an acked seq is always
         reloadable. The replication thread is this process's single
         writer — client Add_graphs is rejected while in standby. *)
      Atomic.set db_ref { epoch = snap.epoch + 1; db = db' };
      chain.next_seq <- seq + 1;
      Psst_obs.incr m_batches;
      Psst_obs.add m_graphs (Array.length graphs);
      `Applied
        {
          epoch = snap.epoch + 1;
          base = snap.db.Query.base + prev_count;
          count = Array.length graphs;
        }
    | exception e ->
      Psst_obs.incr m_rejects;
      let msg =
        match e with
        | S.Store_error m -> m
        | Psst_fault.Injected m -> m
        | Sys_error m -> m
        | e -> Printexc.to_string e
      in
      Psst_obs.warn ~code:"ingest.apply" msg;
      `Error msg
  end

(* --- the single-writer pipeline --- *)

type publish = seq:int -> [ `Replicated | `No_standby | `Lagging of string ]

type batch = {
  tenant : string;
  token : string;  (* idempotency key; "" = dedup disabled *)
  graphs : Pgraph.t array;
  ack : (result, string) Result.t -> unit;
}

(* One remembered ack per idempotency token, writer-thread-only. [seq]
   is the delta the batch persisted as (None when persistence is off),
   so a retry of a batch whose first ack was blocked on replication can
   re-await the same seq instead of ingesting twice. *)
type remembered = { r_result : result; r_seq : int option }

let token_cap = 4096

type t = {
  db_ref : snapshot Atomic.t;
  chain : chain option;
  publish : publish option;
  queue_cap : int;
  tenant_quota : int;
  mutex : Mutex.t;
  cond : Condition.t;
  pending : batch Queue.t;
  per_tenant : (string, int) Hashtbl.t;  (* queued graphs, guarded by mutex *)
  mutable queued : int;  (* total queued graphs, guarded by mutex *)
  mutable stopping : bool;
  applied : int Atomic.t;  (* graphs applied to the live database *)
  tokens : (string, remembered) Hashtbl.t;  (* writer thread only *)
  token_fifo : string Queue.t;  (* insertion order, for bounded eviction *)
  mutable writer : Thread.t option;
}

let queued_graphs t =
  Mutex.lock t.mutex;
  let n = t.queued in
  Mutex.unlock t.mutex;
  n

let applied_graphs t = Atomic.get t.applied

let tenant_queued t tenant =
  Option.value (Hashtbl.find_opt t.per_tenant tenant) ~default:0

(* Remember an applied batch's ack under its idempotency token (bounded:
   oldest tokens are evicted past [token_cap]). Writer thread only. *)
let remember t token r_result r_seq =
  if token <> "" then begin
    if not (Hashtbl.mem t.tokens token) then begin
      Queue.add token t.token_fifo;
      while Queue.length t.token_fifo > token_cap do
        Hashtbl.remove t.tokens (Queue.pop t.token_fifo)
      done
    end;
    Hashtbl.replace t.tokens token { r_result; r_seq }
  end

(* Acked batches must be on the standby's disk too (semi-synchronous
   replication): the ack waits for the subscriber. A lagging or dead
   subscriber turns the ack into a retryable error — the batch stays
   applied and persisted locally, and the retry (same token) re-awaits
   replication of the same seq instead of re-ingesting. *)
let ack_after_publish t ~seq ~result ack =
  match t.publish with
  | None -> ack (Ok result)
  | Some pub -> (
    match (match seq with Some seq -> pub ~seq | None -> `No_standby) with
    | `Replicated | `No_standby -> ack (Ok result)
    | `Lagging msg ->
      Psst_obs.incr m_lagging;
      Psst_obs.warn ~code:"ingest.replication" msg;
      ack (Error ("replication lagging: " ^ msg)))

let apply_one t b =
  let n = Array.length b.graphs in
  match if b.token = "" then None else Hashtbl.find_opt t.tokens b.token with
  | Some { r_result; r_seq } ->
    (* A retry of an already-applied batch: answer with the original ack
       (after replication of its seq, as for a first attempt). *)
    Psst_obs.incr m_dedup;
    ack_after_publish t ~seq:r_seq ~result:r_result b.ack
  | None ->
    if n = 0 then
      b.ack (Ok { epoch = (Atomic.get t.db_ref).epoch; base = 0; count = 0 })
    else begin
      let snap = Atomic.get t.db_ref in
      let prev_count = Corpus.length snap.db.Query.graphs in
      match
        let db', dt =
          Psst_util.Timer.time (fun () -> Query.add_graphs snap.db b.graphs)
        in
        Option.iter (fun chain -> save_delta chain ~prev_count b.graphs) t.chain;
        (db', dt)
      with
      | db', dt ->
        (* Persisted (when armed) and built: publish. The single writer is
           the only mutator, so a plain set is a race-free epoch swap. *)
        Atomic.set t.db_ref { epoch = snap.epoch + 1; db = db' };
        Atomic.fetch_and_add t.applied n |> ignore;
        Psst_obs.incr m_batches;
        Psst_obs.add m_graphs n;
        Psst_obs.observe m_apply dt;
        let result =
          {
            epoch = snap.epoch + 1;
            base = snap.db.Query.base + prev_count;
            count = n;
          }
        in
        let seq =
          match t.chain with Some c -> Some (c.next_seq - 1) | None -> None
        in
        remember t b.token result seq;
        ack_after_publish t ~seq ~result b.ack
      | exception e ->
        (* Injected store.write fault, a full disk, or an invalid graph:
           nothing was published, so the caller may simply retry. *)
        Psst_obs.incr m_rejects;
        let msg =
          match e with
          | S.Store_error m -> m
          | Psst_fault.Injected m -> m
          | Sys_error m -> m
          | e -> Printexc.to_string e
        in
        Psst_obs.warn ~code:"ingest.apply" msg;
        b.ack (Error ("ingest batch failed: " ^ msg))
    end

let writer_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.pending && not t.stopping do
      Condition.wait t.cond t.mutex
    done;
    let next =
      if Queue.is_empty t.pending then None
      else begin
        let b = Queue.pop t.pending in
        let n = Array.length b.graphs in
        t.queued <- t.queued - n;
        Hashtbl.replace t.per_tenant b.tenant (tenant_queued t b.tenant - n);
        Some b
      end
    in
    Mutex.unlock t.mutex;
    match next with
    | Some b ->
      apply_one t b;
      loop ()
    | None -> () (* stopping with an empty queue: drained *)
  in
  loop ()

let create ?chain ?publish ?(tenant_quota = 0) ~queue_cap db_ref =
  if queue_cap < 1 then invalid_arg "Psst_ingest: queue_cap must be >= 1";
  if tenant_quota < 0 then
    invalid_arg "Psst_ingest: tenant_quota must be >= 0";
  let t =
    {
      db_ref;
      chain;
      publish;
      queue_cap;
      tenant_quota;
      mutex = Mutex.create ();
      cond = Condition.create ();
      pending = Queue.create ();
      per_tenant = Hashtbl.create 8;
      queued = 0;
      stopping = false;
      applied = Atomic.make 0;
      tokens = Hashtbl.create 64;
      token_fifo = Queue.create ();
      writer = None;
    }
  in
  t.writer <-
    Some
      (Thread.create
         (fun () ->
           try writer_loop t
           with e ->
             Psst_obs.warn ~code:"ingest.writer" (Printexc.to_string e))
         ());
  t

let submit ?(token = "") t ~tenant graphs ~ack =
  let n = Array.length graphs in
  Mutex.lock t.mutex;
  let verdict =
    if t.stopping then `Stopped
    else if t.queued + n > t.queue_cap then `Full
    else if t.tenant_quota > 0 && tenant_queued t tenant + n > t.tenant_quota
    then `Quota
    else begin
      Queue.add { tenant; token; graphs; ack } t.pending;
      t.queued <- t.queued + n;
      Hashtbl.replace t.per_tenant tenant (tenant_queued t tenant + n);
      Psst_obs.observe m_queue_depth (float_of_int t.queued);
      Condition.signal t.cond;
      `Queued
    end
  in
  Mutex.unlock t.mutex;
  (match verdict with `Full | `Quota -> Psst_obs.incr m_rejects | _ -> ());
  verdict

let stop t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if not already then Option.iter Thread.join t.writer
