(** The Probabilistic Matrix Index (paper §3.1, Fig 4).

    Rows are mined features, columns are the probabilistic graphs of the
    database. Entry (f, g) holds the SIP bound pair for [f] against [g]
    when [f ⊆iso gc], and is empty otherwise (the paper's ⟨0⟩). *)

type entry = Bounds.t

type t

(** [build ?config ?domains db features] computes every matrix entry.
    [domains > 1] distributes the per-graph columns over a
    {!Psst_util.Pool} of that many OCaml 5 domains (the computation is
    embarrassingly parallel per graph and the result is identical to the
    sequential build). *)
val build :
  ?config:Bounds.config ->
  ?domains:int ->
  Pgraph.t array ->
  Selection.feature list ->
  t

(** [add_graph t g] appends the column of a new database graph, computing
    bounds for every feature occurring in its skeleton. The feature set is
    not re-mined. *)
val add_graph : t -> Pgraph.t -> t

val config : t -> Bounds.config
val features : t -> Selection.feature array
val num_features : t -> int
val num_graphs : t -> int

(** [lookup t ~feature ~graph] — [None] when the feature does not occur in
    the graph's skeleton. *)
val lookup : t -> feature:int -> graph:int -> entry option

(** Column [Dg] of one graph: the occurring features with their bounds. *)
val column : t -> graph:int -> (int * entry) list

(** Number of non-empty entries — the "index size" series of Fig 12(d). *)
val filled_entries : t -> int

(** Wall-clock seconds spent computing the entries (Fig 12(c)). *)
val build_seconds : t -> float

val pp_stats : Format.formatter -> t -> unit
