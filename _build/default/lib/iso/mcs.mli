(** Maximum common subgraph (paper Def 7): the largest subgraph of [g2]
    that is subgraph-isomorphic to a subgraph of [g1], measured in edges.

    Branch-and-bound over injective partial vertex maps from [g1] into
    [g2]; exponential in the worst case, intended for the query-sized
    graphs of the search pipeline. *)

(** [common_edges g1 g2] is |mcs(g1, g2)| in edges.

    [stop_at]: stop early (returning at least [stop_at]) once that many
    common edges are found — used for threshold checks.
    [node_budget]: cap on explored search nodes; when exhausted the value
    found so far is returned (a lower bound on the true MCS). *)
val common_edges : ?stop_at:int -> ?node_budget:int -> Lgraph.t -> Lgraph.t -> int
