(** Cross-query verification cache (DESIGN.md §13).

    Memoises the deterministic, PRNG-free artifacts of the T-PS pipeline
    — relaxed query sets, {!Pruning.prepared} memberships, VF2 embedding
    sets, calibrated Karp–Luby preparations — plus final SSP values,
    which under {!Query.run}'s per-candidate PRNG streams are themselves
    pure functions of (query presentation, graph, verifier config, seed).
    A hit therefore returns exactly what a cold run would recompute:
    cached answers are bit-identical to uncached ones at fixed seeds.

    Keys combine the query's canonical code ({!Canon.code}) with its
    exact textual presentation: capped embedding enumeration is
    presentation-dependent, so isomorphic-but-renumbered queries never
    share entries.

    Invalidation is by physical identity of the database ([graphs] array
    and PMI): {!Query.add_graphs}, {!Query.index_database} and
    {!Query.load_database} all allocate fresh values, so {!scope} flushes
    automatically when armed against a changed database.

    Tables are FIFO-bounded; hits, misses, evictions and flushes surface
    as the [cache.{hit,miss,evict,flush}] counters in {!Psst_obs}. All
    operations are safe from every domain of a [Psst_util.Pool]; compute
    callbacks run outside the cache lock. *)

type t

(** [create ?query_cap ?value_cap ()] — [query_cap] bounds the per-query
    tables (relaxed sets, prepared memberships; defaults 128),
    [value_cap] the per-(query, graph) tables (embeddings, preparations,
    SSP values; default 16384). Both caps must be [>= 1]
    ([Invalid_argument] otherwise). *)
val create : ?query_cap:int -> ?value_cap:int -> unit -> t

(** Total cached entries across all tables. *)
val entries : t -> int

(** Drop every entry (owner sticks). *)
val flush : t -> unit

(** A cache armed for one (database, query, relaxation parameters)
    triple. Arming verifies the owner database by physical identity and
    flushes on change. *)
type scope

val scope :
  t ->
  graphs:Corpus.t ->
  pmi:Pmi.t ->
  q:Lgraph.t ->
  delta:int ->
  relax_cap:int ->
  scope

(** Each [with]-style accessor returns the cached artifact or runs
    [compute], stores and returns its result. Exceptions from [compute]
    propagate and cache nothing. *)

val relaxed :
  scope ->
  compute:(unit -> Lgraph.t list * [ `Complete | `Truncated ]) ->
  Lgraph.t list * [ `Complete | `Truncated ]

val prepared : scope -> compute:(unit -> Pruning.prepared) -> Pruning.prepared

val embeddings :
  scope ->
  graph:int ->
  emb_cap:int ->
  compute:(unit -> Psst_util.Bitset.t list) ->
  Psst_util.Bitset.t list

val smp_prep :
  scope ->
  graph:int ->
  emb_cap:int ->
  compute:(unit -> Verify.smp_prep) ->
  Verify.smp_prep

(** [verifier_key ~epsilon ~seed verifier] — the key component capturing
    everything a final SSP value depends on beyond (query, graph):
    verifier parameters and seed, plus [epsilon] when the verifier stops
    adaptively (the decision threshold shapes the estimate). *)
val verifier_key :
  epsilon:float -> seed:int -> [ `Exact | `Smp of Verify.config ] -> string

(** [ssp scope ~graph ~vkey ~compute] — final SSP values. Entries are
    validated on read: NaN or out-of-[0,1] values (a poisoned cache) are
    evicted with a ["cache.poisoned"] warning and recomputed, never
    served. *)
val ssp : scope -> graph:int -> vkey:string -> compute:(unit -> float) -> float

(** Test hook: overwrite every cached SSP value with [v] (e.g. [nan]),
    returning how many entries were poisoned. Exercised by the chaos
    suite to pin the eviction path. *)
val poison_ssp : t -> float -> int
