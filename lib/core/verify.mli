(** Verification: computing / estimating the subgraph-similarity
    probability of a candidate (paper §5).

    Lemma 1 reduces Pr(q ⊆sim g) to Pr(Bf1 ∨ ... ∨ Bfm) over the distinct
    embeddings of all relaxed queries in the skeleton [gc] (Eq 22). The
    SMP estimator is the Karp-Luby union-of-events scheme of Algorithm 5:
    sample an event proportionally to its exact probability (junction
    tree, ref [17]), draw a world from the posterior given that event,
    and count the draws where no earlier event also fires. The estimate
    is [V * Cnt / N] with [V = sum of Pr(Bfi)] (Algorithm 5 prints
    [Cnt/N]; the [V] factor is the standard normalisation and is what
    makes the estimator unbiased).

    The number of samples follows the paper: [N = (4 ln (2/xi)) / tau^2]
    for accuracy [tau] with confidence [1 - xi] (Monte-Carlo theory,
    ref [26]). *)

type config = {
  tau : float;  (** relative accuracy; default 0.1 *)
  xi : float;  (** failure probability; default 0.05 *)
  emb_cap : int;  (** cap on distinct embeddings per relaxed query *)
  adaptive : bool;
      (** adaptive-precision sampling (default [false]): stop the
          Karp–Luby loop at the first geometric checkpoint where the
          Hoeffding confidence interval (at confidence [1 - xi], union
          bound over checkpoints) either is narrower than [tau]
          relative to the Karp–Luby normaliser [V] (half-width
          [<= tau * V], matching the relative-accuracy guarantee of the
          fixed budget) or clears the caller's decision threshold
          ([?stop_epsilon]) either way. Sample counts never exceed
          {!num_samples}. With [adaptive = false] the sampling loop is
          bit-identical to previous releases. *)
}

val default_config : config

(** Samples implied by [tau]/[xi]: [(4 ln (2/xi)) / tau^2]. *)
val num_samples : config -> int

(** [embedding_sets ?config g relaxed] — the distinct embedding edge sets
    of all relaxed queries in [g]'s skeleton, deduplicated and reduced to
    an inclusion-minimal antichain. *)
val embedding_sets :
  ?config:config -> Pgraph.t -> Lgraph.t list -> Psst_util.Bitset.t list

(** [smp ?config rng g relaxed] — SMP estimate of Pr(q ⊆sim g) given the
    relaxed query set of [q]. *)
val smp : ?config:config -> Psst_util.Prng.t -> Pgraph.t -> Lgraph.t list -> float

(** [exact ?config g relaxed] — exact SSP through Lemma 1 +
    {!Exact.prob_any_present}; exponential in the worst case but pruned
    (minimal antichain, union-scope marginal). *)
val exact : ?config:config -> Pgraph.t -> Lgraph.t list -> float

(** [exact_naive ?config g relaxed] — same value with the cost profile of
    the paper's index-free Exact competitor: full possible-world
    enumeration over every uncertain edge (see
    {!Exact.prob_any_present_naive}). *)
val exact_naive : ?config:config -> Pgraph.t -> Lgraph.t list -> float

(** {1 Split preparation (verification cache support)}

    The seed-independent part of a verification — embedding sets, the
    uncertain-edge event antichain, calibrated junction trees and exact
    event probabilities — factored out so Qcache can share it across
    candidates and queries. All values are immutable and safe to share
    across domains. *)

(** [exact_with_sets g sets] = {!exact} given precomputed
    {!embedding_sets}. *)
val exact_with_sets : Pgraph.t -> Psst_util.Bitset.t list -> float

type smp_prep

(** [smp_prepare g sets] precomputes the Karp–Luby run for [g] from its
    embedding sets (as returned by {!embedding_sets}). *)
val smp_prepare : Pgraph.t -> Psst_util.Bitset.t list -> smp_prep

type smp_result = {
  value : float;
  samples : int;  (** PRNG samples actually drawn (0 on trivial preps) *)
  early_stopped : bool;  (** an adaptive checkpoint cut the loop short *)
}

(** [smp_run ?config ?stop_epsilon rng prep] — the sampling loop.
    [stop_epsilon] is the decision threshold for adaptive early
    stopping (ignored unless [config.adaptive]). With [config.adaptive =
    false] the draws — and hence the estimate under a fixed seed — are
    bit-identical to {!smp}. *)
val smp_run :
  ?config:config -> ?stop_epsilon:float -> Psst_util.Prng.t -> smp_prep -> smp_result

(** [smp_info ?config ?stop_epsilon rng g relaxed] — {!smp} returning the
    full {!smp_result}. *)
val smp_info :
  ?config:config ->
  ?stop_epsilon:float ->
  Psst_util.Prng.t ->
  Pgraph.t ->
  Lgraph.t list ->
  smp_result
