(* CLI failure contract (DESIGN.md §11): every subcommand handed a
   missing, malformed or unreachable file/endpoint exits 1 with exactly
   one "psst: ..." line on stderr — no backtraces, no cmdliner internal
   error (exit 125), no exit 0 with an error buried in stdout. Runs the
   real binary; see the (deps ...) clause in test/dune. *)

(* dune runtest runs us in _build/default/test; dune exec from the
   workspace root. *)
let exe =
  let candidates =
    [ "../bin/psst.exe"; "_build/default/bin/psst.exe"; "bin/psst.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "../bin/psst.exe"

(* Run [args], return (exit code, stderr lines). stdout is discarded. *)
let run_psst args =
  let err = Filename.temp_file "psst_cli" ".err" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove err with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Printf.sprintf "%s %s >/dev/null 2>%s" (Filename.quote exe) args
          (Filename.quote err)
      in
      let code = Sys.command cmd in
      let ic = open_in err in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      (code, List.rev !lines))

let check_dies what args =
  let code, stderr = run_psst args in
  Alcotest.(check int) (what ^ ": exit code") 1 code;
  (match stderr with
  | [ line ] ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: stderr is one psst-prefixed line (got %S)" what line)
      true
      (String.length line > 6 && String.sub line 0 6 = "psst: ")
  | [] -> Alcotest.failf "%s: nothing on stderr" what
  | ls -> Alcotest.failf "%s: %d stderr lines, expected one" what (List.length ls))

let with_file contents f =
  let path = Filename.temp_file "psst_cli" ".pgdb" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc contents;
      close_out oc;
      f path)

let missing_path () =
  let p = Filename.temp_file "psst_cli" ".absent" in
  Sys.remove p;
  p

let test_missing_corpus () =
  let p = Filename.quote (missing_path ()) in
  check_dies "query on a missing corpus" (Printf.sprintf "query --input %s" p);
  check_dies "topk on a missing corpus" (Printf.sprintf "topk --input %s" p);
  check_dies "index on a missing corpus"
    (Printf.sprintf "index --input %s -o /dev/null" p)

let test_malformed_text_corpus () =
  with_file "this is not a corpus\nv banana\nend\n" (fun p ->
      check_dies "query on a malformed text corpus"
        (Printf.sprintf "query --input %s" (Filename.quote p)))

let test_truncated_binary_corpus () =
  (* The binary store magic followed by junk: recognised as a store file,
     then rejected by the checksummed reader. *)
  with_file "PSSTSTR\x00garbage-that-is-not-a-store" (fun p ->
      check_dies "query on a corrupt binary corpus"
        (Printf.sprintf "query --input %s" (Filename.quote p)))

let test_unreachable_server () =
  let p = Filename.quote (missing_path ()) in
  check_dies "client with no server"
    (Printf.sprintf "client --socket %s --ping --queries 0" p)

let test_endpoint_flag_validation () =
  check_dies "serve with neither --socket nor --port" "serve";
  check_dies "serve with both --socket and --port"
    "serve --socket /tmp/x.sock --port 7777";
  check_dies "client with neither --socket nor --port" "client --queries 0";
  check_dies "serve with an empty --socket path" "serve --socket ''";
  check_dies "client with --port 0" "client --queries 0 --port 0";
  check_dies "client with --port 70000" "client --queries 0 --port 70000";
  check_dies "client with an empty --host"
    "client --queries 0 --port 8080 --host ''"

(* Worker endpoint strings (tcp:HOST:PORT / unix:PATH) are validated
   eagerly and strictly: every malformed form dies with the uniform
   one-line failure at argument time, never as a later Unix_error from
   connect(2). The router parses its --worker list before touching any
   manifest or socket, so an invalid endpoint is guaranteed to die
   before anything binds. *)
let test_endpoint_string_matrix () =
  List.iter
    (fun (what, ep) ->
      check_dies
        (Printf.sprintf "router --worker %s (%s)" ep what)
        (Printf.sprintf "serve --port 7777 --role router --worker %s"
           (Filename.quote ep)))
    [
      ("no scheme separator", "localhost8080");
      ("unknown scheme", "ftp:host:80");
      ("unix with empty path", "unix:");
      ("tcp without port", "tcp:onlyhost");
      ("tcp with empty host", "tcp::8080");
      ("port 0", "tcp:host:0");
      ("port 65536", "tcp:host:65536");
      ("negative port", "tcp:host:-1");
      ("hex port", "tcp:host:0x50");
      ("underscore port", "tcp:host:8_0");
      ("trailing colon", "tcp:host:80:");
      ("empty port", "tcp:host:");
      ("port with trailing garbage", "tcp:host:80xyz");
    ]

(* Ingest flags (DESIGN.md §16): negative caps and quotas, empty tenant
   names, and a missing --add corpus all die with the uniform one-line
   failure — in particular --add validates its file before connecting,
   so a bad path never produces a connect error or a half-done RPC. *)
let test_ingest_flag_validation () =
  check_dies "serve with a negative ingest queue cap"
    "serve --socket /tmp/psst-cli-x.sock --ingest-queue-cap=-1";
  check_dies "serve with a negative tenant quota"
    "serve --socket /tmp/psst-cli-x.sock --tenant-quota=-1";
  check_dies "client with an empty --tenant"
    "client --queries 0 --socket /tmp/psst-cli-x.sock --tenant ''";
  let p = missing_path () in
  check_dies "client --add on a missing file"
    (Printf.sprintf "client --queries 0 --socket /tmp/psst-cli-x.sock --add %s"
       p);
  with_file "graphs 1\nnot a graph file\n" (fun path ->
      check_dies "client --add on a malformed corpus"
        (Printf.sprintf "client --queries 0 --socket /tmp/psst-cli-x.sock \
                         --add %s"
           path))

let test_success_path_stays_zero () =
  let code, stderr = run_psst "generate -n 4 --seed 3" in
  Alcotest.(check int) "generate exits 0" 0 code;
  Alcotest.(check int) "generate prints nothing on stderr" 0
    (List.length stderr)

let suite =
  [
    Alcotest.test_case "missing files exit 1" `Quick test_missing_corpus;
    Alcotest.test_case "malformed text corpus exits 1" `Quick
      test_malformed_text_corpus;
    Alcotest.test_case "corrupt binary corpus exits 1" `Quick
      test_truncated_binary_corpus;
    Alcotest.test_case "unreachable server exits 1" `Quick
      test_unreachable_server;
    Alcotest.test_case "endpoint flag validation exits 1" `Quick
      test_endpoint_flag_validation;
    Alcotest.test_case "malformed endpoint strings exit 1" `Quick
      test_endpoint_string_matrix;
    Alcotest.test_case "ingest flag validation exits 1" `Quick
      test_ingest_flag_validation;
    Alcotest.test_case "healthy invocation exits 0" `Quick
      test_success_path_stays_zero;
  ]
