let deletion_sets q ~delta = Psst_util.Combin.binomial (Lgraph.num_edges q) delta

let relaxed_set ?(cap = 4096) q ~delta =
  let m = Lgraph.num_edges q in
  if delta < 0 then invalid_arg "Relax.relaxed_set: negative delta";
  if delta >= m then
    (* Everything is deleted: the empty pattern matches any world. *)
    ([ Lgraph.vertices_only ~vlabels:[||] ], `Complete)
  else begin
    let total = deletion_sets q ~delta in
    let edge_ids = List.init m (fun i -> i) in
    let seen = Hashtbl.create 64 in
    let out = ref [] in
    let consider ids =
      let rq = Lgraph.delete_edges q ids in
      let rq, _ = Lgraph.drop_isolated rq in
      let key = Canon.code rq in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := rq :: !out
      end
    in
    let status =
      if total <= cap then begin
        Psst_util.Combin.iter_combinations delta edge_ids consider;
        `Complete
      end
      else begin
        (* Deterministic subsample: stride through combination ranks. *)
        let rng = Psst_util.Prng.make (m * 1_000_003 + delta) in
        let budget = ref cap in
        while !budget > 0 do
          let ids = Psst_util.Prng.sample_without_replacement rng delta m in
          consider (List.sort compare ids);
          decr budget
        done;
        `Truncated
      end
    in
    (List.rev !out, status)
  end
