(* Tests for the library extensions: top-k search, serialisation, Gibbs
   sampling, and incremental index maintenance. *)

module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 300 }

let small_dataset seed n =
  Generator.generate
    { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
      max_vertices = 10; motif_edges = 3 }

let small_db ?(n = 10) seed =
  let ds = small_dataset seed n in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  (ds, db)

(* --- Top-k --- *)

let test_topk_matches_exhaustive_ranking () =
  let ds, db = small_db 3 in
  let rng = Prng.make 5 in
  let q, _ = Generator.extract_query rng ds ~edges:4 in
  let config = { Query.default_config with delta = 1; verifier = `Exact } in
  let out = Topk.run db q ~k:3 config in
  (* Exhaustive: exact SSP of every graph. *)
  let relaxed, _ = Relax.relaxed_set q ~delta:1 in
  let all =
    List.init (Array.length ds.graphs) (fun gi ->
        (gi, Verify.exact ds.graphs.(gi) relaxed))
    |> List.filter (fun (_, p) -> p > 0.)
    |> List.sort (fun (g1, a) (g2, b) ->
           match compare b a with 0 -> compare g1 g2 | c -> c)
  in
  let expected = List.filteri (fun i _ -> i < 3) all in
  Alcotest.(check int) "hit count" (List.length expected) (List.length out.Topk.hits);
  List.iter2
    (fun (gi, p) (h : Topk.hit) ->
      Alcotest.(check int) "graph id" gi h.graph;
      Tgen.check_close ~eps:1e-9 "ssp" p h.ssp)
    expected out.Topk.hits

let test_topk_skips_candidates () =
  let ds, db = small_db ~n:14 7 in
  let rng = Prng.make 9 in
  let q, _ = Generator.extract_query rng ds ~edges:4 in
  let config = { Query.default_config with delta = 1; verifier = `Exact } in
  let out = Topk.run db q ~k:1 config in
  Alcotest.(check bool) "bounds saved some verifications" true
    (out.Topk.stats.verified <= out.Topk.stats.structural_candidates);
  Alcotest.(check int) "partition" out.Topk.stats.structural_candidates
    (out.Topk.stats.verified + out.Topk.stats.bound_skipped)

let test_topk_k_validation () =
  let _, db = small_db 3 in
  let q = Lgraph.create ~vlabels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  Alcotest.check_raises "k=0 rejected" (Invalid_argument "Topk.run: k must be positive")
    (fun () -> ignore (Topk.run db q ~k:0 Query.default_config))

let test_topk_sorted_descending () =
  let ds, db = small_db 11 in
  let rng = Prng.make 13 in
  let q, _ = Generator.extract_query rng ds ~edges:3 in
  let config = { Query.default_config with delta = 1; verifier = `Exact } in
  let out = Topk.run db q ~k:5 config in
  let rec sorted = function
    | (a : Topk.hit) :: (b :: _ as rest) -> a.ssp >= b.ssp && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (sorted out.Topk.hits)

(* --- Pgraph serialisation --- *)

let test_pgraph_io_roundtrip_hand () =
  let skeleton =
    Lgraph.create ~vlabels:[| 0; 1; 2 |] ~edges:[ (0, 1, 5); (1, 2, 6) ]
  in
  let f1 = Factor.create [| 0 |] [| 0.3; 0.7 |] in
  let f2 = Factor.create [| 0; 1 |] [| 0.5; 0.1; 0.5; 0.9 |] in
  let g = Pgraph.make skeleton [ f1; f2 ] in
  let g' = Pgraph_io.of_string (Pgraph_io.to_string g) in
  Alcotest.(check bool) "skeleton equal" true
    (Lgraph.equal_structure (Pgraph.skeleton g) (Pgraph.skeleton g'));
  (* Same joint distribution. *)
  List.iter
    (fun vars ->
      Tgen.check_close ~eps:1e-12 "conjunction prob"
        (Velim.prob_all_present (Pgraph.factors g) vars)
        (Velim.prob_all_present (Pgraph.factors g') vars))
    [ [ 0 ]; [ 1 ]; [ 0; 1 ] ]

let prop_pgraph_io_roundtrip =
  QCheck.Test.make ~name:"pgraph_io roundtrip preserves distribution" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 31) in
      let g = Tgen.random_pgraph rng ~n:5 ~extra:2 ~vl:3 ~el:2 in
      let g' = Pgraph_io.of_string (Pgraph_io.to_string g) in
      Lgraph.equal_structure (Pgraph.skeleton g) (Pgraph.skeleton g')
      && List.for_all
           (fun e ->
             Tgen.close ~eps:1e-9 (Pgraph.edge_marginal g e)
               (Pgraph.edge_marginal g' e))
           (Pgraph.uncertain_edges g))

let test_pgraph_io_rejects_garbage () =
  (try
     ignore (Pgraph_io.of_string "pgraph\nv 0\nxyz\nend\n");
     Alcotest.fail "garbage accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Pgraph_io.of_string "pgraph\nv 0\nfactor 0 0.5 0.9\nend\n");
    (* single factor over var 0 of a graph without edges: scope invalid *)
    Alcotest.fail "invalid scope accepted"
  with Invalid_argument _ -> ()

let test_pgraph_io_archive () =
  let ds = small_dataset 17 5 in
  let path = Filename.temp_file "psst" ".pgdb" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pgraph_io.save path ds.graphs;
      let loaded = Pgraph_io.load path in
      Alcotest.(check int) "count" 5 (Array.length loaded);
      Array.iteri
        (fun i g ->
          Alcotest.(check bool) "skeleton preserved" true
            (Lgraph.equal_structure (Pgraph.skeleton ds.graphs.(i)) (Pgraph.skeleton g)))
        loaded)

(* --- Gibbs sampling --- *)

let chain3 () =
  let pa = Factor.create [| 0 |] [| 0.3; 0.7 |] in
  let pb_a = Factor.create [| 0; 1 |] [| 0.8; 0.1; 0.2; 0.9 |] in
  let pc_b = Factor.create [| 1; 2 |] [| 0.5; 0.3; 0.5; 0.7 |] in
  [ pa; pb_a; pc_b ]

let test_gibbs_marginals_match_exact () =
  let factors = chain3 () in
  let rng = Prng.make 23 in
  let est =
    Gibbs.marginals ~config:{ Gibbs.default_config with samples = 4000 } rng
      factors ~evidence:[] [ 0; 1; 2 ]
  in
  List.iter
    (fun (v, p) ->
      let exact = Factor.value (Factor.normalize (Velim.marginal factors [ v ])) 1 in
      if Float.abs (p -. exact) > 0.03 then
        Alcotest.failf "var %d: gibbs %.3f vs exact %.3f" v p exact)
    est

let test_gibbs_respects_evidence () =
  let factors = chain3 () in
  let rng = Prng.make 29 in
  Gibbs.sample ~config:{ Gibbs.default_config with samples = 50 } rng factors
    ~evidence:[ (0, true) ]
    (fun lookup -> Alcotest.(check bool) "evidence pinned" true (lookup 0))

let test_gibbs_conditional_matches_exact () =
  let factors = chain3 () in
  let rng = Prng.make 31 in
  let est =
    Gibbs.marginals ~config:{ Gibbs.default_config with samples = 5000 } rng
      factors ~evidence:[ (2, true) ] [ 1 ]
  in
  let exact =
    Velim.prob ~evidence:[ (1, true); (2, true) ] factors
    /. Velim.prob ~evidence:[ (2, true) ] factors
  in
  match est with
  | [ (1, p) ] ->
    if Float.abs (p -. exact) > 0.03 then
      Alcotest.failf "gibbs %.3f vs exact %.3f" p exact
  | _ -> Alcotest.fail "unexpected marginal shape"

let test_gibbs_handles_loopy_model () =
  (* A loopy pairwise model over a triangle of variables: Jtree.build
     rejects it, Gibbs still produces sane (normalised) marginals. *)
  let att = Factor.create [| 0; 1 |] [| 1.2; 0.8; 0.8; 1.2 |] in
  let att2 = Factor.create [| 1; 2 |] [| 1.2; 0.8; 0.8; 1.2 |] in
  let att3 = Factor.create [| 0; 2 |] [| 1.2; 0.8; 0.8; 1.2 |] in
  let factors = [ att; att2; att3 ] in
  (try
     ignore (Jtree.build factors);
     Alcotest.fail "loopy model must violate RIP"
   with Invalid_argument _ -> ());
  let rng = Prng.make 37 in
  let est =
    Gibbs.marginals ~config:{ Gibbs.default_config with samples = 4000 } rng
      factors ~evidence:[] [ 0; 1; 2 ]
  in
  (* Symmetric model: every marginal is 1/2. *)
  List.iter
    (fun (v, p) ->
      if Float.abs (p -. 0.5) > 0.04 then
        Alcotest.failf "var %d: gibbs %.3f vs 0.5" v p)
    est

let test_gibbs_contradiction_detected () =
  let deterministic = Factor.create [| 0 |] [| 0.; 1. |] in
  let rng = Prng.make 41 in
  try
    Gibbs.sample ~config:{ Gibbs.default_config with samples = 1; burn_in = 1 }
      rng
      [ deterministic; Factor.create [| 0; 1 |] [| 1.; 0.; 0.; 1. |] ]
      ~evidence:[ (1, false) ]
      (fun _ -> ());
    (* var0 must be true (first factor) and equal to var1=false (second):
       zero mass both ways. *)
    Alcotest.fail "contradiction not detected"
  with Invalid_argument _ -> ()

(* --- Incremental maintenance --- *)

let test_add_graph_extends_database () =
  let ds = small_dataset 43 8 in
  let base = Array.sub ds.graphs 0 7 in
  let extra = ds.graphs.(7) in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds base
  in
  let db' = Query.add_graph db extra in
  Alcotest.(check int) "graph count" 8 (Corpus.length db'.Query.graphs);
  Alcotest.(check int) "pmi columns" 8 (Pmi.num_graphs db'.Query.pmi)

let test_add_graph_queries_stay_exact () =
  let ds = small_dataset 47 8 in
  let base = Array.sub ds.graphs 0 6 in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds base
  in
  let db' = Query.add_graph (Query.add_graph db ds.graphs.(6)) ds.graphs.(7) in
  let rng = Prng.make 53 in
  for trial = 1 to 3 do
    let q, _ = Generator.extract_query rng ds ~edges:4 in
    let config =
      { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Exact }
    in
    let out = Query.run db' q config in
    let truth = Query.ground_truth db' q config in
    Alcotest.(check (list int))
      (Printf.sprintf "trial %d incremental db answers" trial)
      truth out.Query.answers
  done

let test_add_graph_pmi_entry_matches_direct () =
  let ds = small_dataset 59 4 in
  let base = Array.sub ds.graphs 0 3 in
  let skeletons = Array.map Pgraph.skeleton base in
  let features =
    Selection.select skeletons { Selection.default_params with max_edges = 2; beta = 0.2 }
  in
  let pmi = Pmi.build ~config:fast_bounds base features in
  let pmi' = Pmi.add_graph pmi ds.graphs.(3) in
  let pool = Bounds.sample_pool fast_bounds ds.graphs.(3) in
  List.iteri
    (fun fi (f : Selection.feature) ->
      match Pmi.lookup pmi' ~feature:fi ~graph:3 with
      | None ->
        Alcotest.(check bool) "absent feature" false
          (Lgraph.num_edges f.graph = 0 || Vf2.exists f.graph (Pgraph.skeleton ds.graphs.(3)))
      | Some e ->
        let direct = Bounds.compute fast_bounds ~pool ds.graphs.(3) f.graph in
        Tgen.check_close ~eps:1e-12 "upper matches" direct.Bounds.upper e.Bounds.upper;
        Tgen.check_close ~eps:1e-12 "lower matches" direct.Bounds.lower e.Bounds.lower)
    features

let test_parallel_pmi_build_identical () =
  let ds = small_dataset 61 6 in
  let skeletons = Array.map Pgraph.skeleton ds.graphs in
  let features =
    Selection.select skeletons { Selection.default_params with max_edges = 2; beta = 0.2 }
  in
  let p1 = Pmi.build ~config:fast_bounds ~domains:1 ds.graphs features in
  let p3 = Pmi.build ~config:fast_bounds ~domains:3 ds.graphs features in
  for fi = 0 to Pmi.num_features p1 - 1 do
    for gi = 0 to Array.length ds.graphs - 1 do
      match
        (Pmi.lookup p1 ~feature:fi ~graph:gi, Pmi.lookup p3 ~feature:fi ~graph:gi)
      with
      | None, None -> ()
      | Some a, Some b when a = b -> ()
      | _ -> Alcotest.failf "entry (%d,%d) differs across domain counts" fi gi
    done
  done

let suite =
  [
    Alcotest.test_case "parallel pmi build deterministic" `Slow
      test_parallel_pmi_build_identical;
    Alcotest.test_case "topk = exhaustive ranking" `Slow
      test_topk_matches_exhaustive_ranking;
    Alcotest.test_case "topk skips candidates" `Slow test_topk_skips_candidates;
    Alcotest.test_case "topk k validation" `Quick test_topk_k_validation;
    Alcotest.test_case "topk sorted" `Slow test_topk_sorted_descending;
    Alcotest.test_case "pgraph_io roundtrip" `Quick test_pgraph_io_roundtrip_hand;
    QCheck_alcotest.to_alcotest prop_pgraph_io_roundtrip;
    Alcotest.test_case "pgraph_io rejects garbage" `Quick test_pgraph_io_rejects_garbage;
    Alcotest.test_case "pgraph_io archive" `Quick test_pgraph_io_archive;
    Alcotest.test_case "gibbs marginals" `Slow test_gibbs_marginals_match_exact;
    Alcotest.test_case "gibbs evidence" `Quick test_gibbs_respects_evidence;
    Alcotest.test_case "gibbs conditional" `Slow test_gibbs_conditional_matches_exact;
    Alcotest.test_case "gibbs loopy model" `Slow test_gibbs_handles_loopy_model;
    Alcotest.test_case "gibbs contradiction" `Quick test_gibbs_contradiction_detected;
    Alcotest.test_case "add_graph extends" `Quick test_add_graph_extends_database;
    Alcotest.test_case "add_graph queries exact" `Slow test_add_graph_queries_stay_exact;
    Alcotest.test_case "add_graph pmi entries" `Quick
      test_add_graph_pmi_entry_matches_direct;
  ]
