(** Structural pruning over the certain graphs — the paper's "Structure"
    phase (Thm 1), in the style of Yan et al.'s Grafil (ref [38]).

    A feature-count index over [Dc]: for each indexed feature we store the
    number of distinct embeddings in every database graph. At query time a
    graph [g] survives when, for every feature [f],

      count_g(f)  >=  count_q(f) - delta * maxPerEdge_q(f)

    where [maxPerEdge_q(f)] is the largest number of [f]-embeddings of [q]
    sharing one edge: deleting an edge of [q] destroys at most that many
    embeddings, so a graph within distance [delta] must still carry the
    right-hand side. A label-multiset distance bound is applied first.
    Graphs pruned here have [Pr(q ⊆sim g) = 0] only if the filter is
    exact; like Grafil, the filter is {e conservative} (no false
    dismissals) and its survivors are the candidate set [SCq]. *)

type t

(** [build db features ~emb_cap] counts feature embeddings in every graph
    (capped per pair at [emb_cap]; counts at the cap are treated as
    "at least", keeping the filter conservative). *)
val build : Lgraph.t array -> Selection.feature list -> emb_cap:int -> t

(** [add_graph t g] appends one column for a new database graph; the
    feature set is left as mined (a graph added later never causes false
    dismissals — at worst the filter is less selective on it). *)
val add_graph : t -> Lgraph.t -> t

(** [add_graphs t gs] appends one column per new graph with a single
    row reallocation per feature — the batch form [Query.add_graphs]
    uses to avoid quadratic repeated appends. *)
val add_graphs : t -> Lgraph.t array -> t

(** [of_parts ~features ~counts ~emb_cap] rebuilds the index from its raw
    state (one count row per feature) — the load path of the persistent
    store, which skips re-running VF2 over the whole database. Raises
    [Invalid_argument] on dimension mismatches or negative counts. *)
val of_parts :
  features:Selection.feature list ->
  counts:int array array ->
  emb_cap:int ->
  t

(** Zero-copy cells for the flat image load path (DESIGN.md §15). *)
type u16s = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [of_cells ~features ~cells ~num_graphs ~emb_cap] wraps a feature-major
    u16 count matrix (typically a view over a memory-mapped flat store
    image) without copying it: [candidates] reads cells straight out of
    [cells]. Counts are capped at [emb_cap] by construction, so u16 range
    suffices whenever [emb_cap < 65536] (the flat encoder enforces this).
    Raises [Invalid_argument] when [Bigarray.Array1.dim cells] does not
    equal [features x num_graphs]. *)
val of_cells :
  features:Selection.feature list ->
  cells:u16s ->
  num_graphs:int ->
  emb_cap:int ->
  t

(** Raw capped embedding-count matrix, feature-major (a copy). *)
val counts : t -> int array array

val emb_cap : t -> int

val num_features : t -> int
val num_graphs : t -> int

(** Total count-matrix cells (features x graphs) — reported as index size. *)
val size_cells : t -> int

(** [candidates t ~skeleton q ~delta] — indices of surviving graphs.
    [skeleton gi] supplies graph [gi]'s skeleton; it is only consulted
    for graphs that pass the feature-count requirements (which read index
    cells alone), so a lazily-decoded corpus ({!Corpus}) pays decode cost
    for the near-survivors only. *)
val candidates : t -> skeleton:(int -> Lgraph.t) -> Lgraph.t -> delta:int -> int list

(** [verify_candidate ~skeleton q ~delta gi] — exact check
    [dis(q, gc) <= delta]; exposed for building ground truths in tests
    and experiments. *)
val verify_candidate : skeleton:(int -> Lgraph.t) -> Lgraph.t -> delta:int -> int -> bool
