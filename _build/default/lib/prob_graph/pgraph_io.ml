let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "pgraph\n";
  let gc = Pgraph.skeleton t in
  Array.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "v %d\n" l))
    (Lgraph.vertex_labels gc);
  Array.iter
    (fun (e : Lgraph.edge) ->
      Buffer.add_string buf (Printf.sprintf "e %d %d %d\n" e.u e.v e.label))
    (Lgraph.edges gc);
  List.iter
    (fun f ->
      let vars =
        Factor.vars f |> Array.to_list |> List.map string_of_int
        |> String.concat ","
      in
      Buffer.add_string buf (Printf.sprintf "factor %s" vars);
      Factor.iter_assignments f (fun _ p ->
          Buffer.add_string buf (Printf.sprintf " %.17g" p));
      Buffer.add_char buf '\n')
    (Pgraph.factors t);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

type parse_state = {
  mutable vlabels : int list; (* reversed *)
  mutable edges : (int * int * int) list; (* reversed *)
  mutable factors : Factor.t list; (* reversed *)
}

let parse_factor line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | "factor" :: vars :: probs ->
    let vars =
      String.split_on_char ',' vars
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string |> Array.of_list
    in
    let data = Array.of_list (List.map float_of_string probs) in
    Factor.create vars data
  | _ -> invalid_arg ("Pgraph_io: bad factor line: " ^ line)

let of_lines lines =
  let st = { vlabels = []; edges = []; factors = [] } in
  let finished = ref false in
  List.iter
    (fun line ->
      if not !finished then
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [] | [ "pgraph" ] -> ()
        | [ "v"; l ] -> st.vlabels <- int_of_string l :: st.vlabels
        | [ "e"; u; v; l ] ->
          st.edges <-
            (int_of_string u, int_of_string v, int_of_string l) :: st.edges
        | "factor" :: _ -> st.factors <- parse_factor line :: st.factors
        | [ "end" ] -> finished := true
        | w :: _ when String.length w > 0 && w.[0] = '#' -> ()
        | _ -> invalid_arg ("Pgraph_io: bad line: " ^ line))
    lines;
  let skeleton =
    Lgraph.create
      ~vlabels:(Array.of_list (List.rev st.vlabels))
      ~edges:(List.rev st.edges)
  in
  Pgraph.make skeleton (List.rev st.factors)

let of_string s = of_lines (String.split_on_char '\n' s)

let write_many oc graphs =
  Array.iter (fun g -> output_string oc (to_string g)) graphs

let read_many ic =
  let graphs = ref [] in
  let current = ref [] in
  (try
     while true do
       let line = input_line ic in
       let trimmed = String.trim line in
       current := trimmed :: !current;
       if trimmed = "end" then begin
         graphs := of_lines (List.rev !current) :: !graphs;
         current := []
       end
     done
   with End_of_file ->
     if List.exists (fun l -> l <> "") !current then
       invalid_arg "Pgraph_io.read_many: trailing partial graph");
  Array.of_list (List.rev !graphs)

let save path graphs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_many oc graphs)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_many ic)
