(** Pipeline observability (DESIGN.md §10).

    A process-wide metrics registry — atomic counters, float accumulators
    and fixed-bucket log-scale histograms — plus span-style phase timing,
    a structured warning-event channel, and per-query traces.

    Hot-path operations ({!incr}, {!add}, {!record}, {!observe}) are
    lock-free: one load of the enable flag plus a fetch-and-add or CAS
    loop, so they are safe from every domain of a [Psst_util.Pool] and
    never serialise the pipeline. Interning a metric name takes the
    registry lock, so instrumented modules bind their metrics once at
    module initialisation.

    Metrics never influence results: disabling the layer ({!set_enabled})
    changes no answer, only skips the recording. *)

(** {1 Enable flag} *)

(** Whether recording is active (default [true]). When disabled, every
    recording operation is a no-op and {!span} runs its thunk untimed —
    this is the "uninstrumented" arm that [bench/main.exe obs] compares
    against. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** {1 Counters} *)

type counter

(** [counter name] interns (or retrieves) the counter [name]. Raises
    [Invalid_argument] when [name] is already registered as a different
    metric type. *)
val counter : string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

(** {1 Float accumulators} *)

type accumulator

val accumulator : string -> accumulator

(** [record a x] adds [x] to the running sum and bumps the sample count
    (lock-free CAS). *)
val record : accumulator -> float -> unit

val acc_sum : accumulator -> float
val acc_count : accumulator -> int

(** Mean of the recorded samples, [0.] when none. *)
val acc_mean : accumulator -> float

(** {1 Histograms} *)

type histogram

(** [histogram ?per_decade ?lo ?hi name] interns a log-scale histogram
    with [per_decade] buckets per decade spanning [lo .. hi] (defaults:
    4 buckets/decade over [1e-9 .. 1e3] — microsecond-to-minutes spans
    and ratios both land comfortably). Values at or below [lo] fall into
    the first bucket, values above [hi] into the overflow bucket. When
    [name] already exists the existing histogram is returned and the
    shape arguments are ignored. *)
val histogram :
  ?per_decade:int -> ?lo:float -> ?hi:float -> string -> histogram

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** Finite buckets as [(upper_bound, count)] pairs, ascending. *)
val histogram_buckets : histogram -> (float * int) array

val histogram_overflow : histogram -> int

(** [histogram_quantile h q] — conservative quantile estimate from the
    log-scale buckets: the smallest bucket upper bound [b] such that at
    least a [q] fraction of the observed values are [<= b] (so the true
    quantile is at most one bucket width below the estimate). Overflowed
    values clamp to the last finite bound. [nan] when the histogram is
    empty; raises [Invalid_argument] unless [0 <= q <= 1]. *)
val histogram_quantile : histogram -> float -> float

(** [span h f] runs [f ()] and records its wall-clock duration in [h]
    (also on exception). When the layer is disabled no clock is read. *)
val span : histogram -> (unit -> 'a) -> 'a

(** {1 Warning events}

    Structured degradation signals (e.g. a truncated relaxed set turning
    answers into under-approximations). Every [warn] bumps the auto
    counter ["warn.<code>"]; the event log keeps the first 512 events and
    counts the overflow, so a pathological workload cannot exhaust
    memory. *)

type warning = { code : string; message : string }

val warn : code:string -> string -> unit

(** Chronological event log (oldest first). *)
val warnings : unit -> warning list

(** Returns the log and clears it (the per-code counters are not reset). *)
val drain_warnings : unit -> warning list

val warnings_dropped : unit -> int

(** {1 Registry} *)

(** Zero every registered metric and clear the warning log. Metrics stay
    registered (the same values keep working). *)
val reset : unit -> unit

(** Machine-readable dump of the whole registry:
    [{"counters": {..}, "accumulators": {..}, "histograms": {..},
    "warnings": [..], "warnings_dropped": n}]. Histogram buckets with a
    zero count are omitted. Deterministically sorted by metric name. *)
val to_json : Buffer.t -> unit

val to_json_string : unit -> string

(** {1 Per-query traces} *)

module Trace : sig
  (** An end-to-end record of one query: named phase durations, counters
      and flags in insertion order. A trace belongs to the single task
      that builds it and is not thread-safe — the pipeline creates one
      trace per query and hands it out read-only in the outcome. *)
  type t

  val create : string -> t
  val label : t -> string

  (** [set_time t name seconds] records an already-measured duration. *)
  val set_time : t -> string -> float -> unit

  val set_count : t -> string -> int -> unit
  val set_flag : t -> string -> bool -> unit

  (** [span t name f] runs [f ()] and records its duration (also on
      exception). Unlike the registry primitives this always times —
      traces are explicit, not ambient. *)
  val span : t -> string -> (unit -> 'a) -> 'a

  val times : t -> (string * float) list
  val counts : t -> (string * int) list
  val flags : t -> (string * bool) list

  (** [{"label": .., "times_s": {..}, "counts": {..}, "flags": {..}}] *)
  val to_json : Buffer.t -> t -> unit
end
