lib/pgm/factor.mli: Format Psst_util
