(** Probabilistic graphs (paper Def 2) and their possible-world semantics
    (Def 3, Eq 1).

    A probabilistic graph couples a deterministic skeleton [gc] with an
    ordered list of JPT factors over edge-id variables. The factor list is
    {e chain-consistent}: processed in order, every factor is the
    conditional distribution of its new edges given already covered ones, so
    the product of the factors is a normalised joint over all uncertain
    edges and Eq 1 holds verbatim (see DESIGN.md §3). Edges not mentioned
    by any factor are certain (present with probability 1). *)

type t

(** [make skeleton factors] validates scopes (edge ids in range) and chain
    consistency; raises [Invalid_argument] on violation. *)
val make : Lgraph.t -> Factor.t list -> t

(** [independent skeleton probs] builds the classical independent-edge model:
    one single-edge factor per (edge id, probability) pair. *)
val independent : Lgraph.t -> (int * float) list -> t

(** The certain graph [gc] — all uncertainty removed, every edge present. *)
val skeleton : t -> Lgraph.t

(** Ordered JPT factors (chain-consistent conditionals). *)
val factors : t -> Factor.t list

(** Junction tree over the factors, built lazily and cached. Raises
    [Invalid_argument] if the factor list violates the running-intersection
    requirement of {!Jtree.build} (graphs built by this library's
    constructors and generators always satisfy it). *)
val jtree : t -> Jtree.t

(** Edge ids that appear in some factor, sorted. *)
val uncertain_edges : t -> int list

(** Edge ids never mentioned by a factor, hence present in every world. *)
val certain_edges : t -> int list

(** [jpt t scope] is the user-facing joint probability table of the given
    neighbor-edge set: the normalised marginal over [scope]. *)
val jpt : t -> int list -> Factor.t

(** Marginal existence probability of one edge. *)
val edge_marginal : t -> int -> float

(** [world_prob t present] is Pr(g => g') for the world whose present edge
    set is [present] (certain edges must be present, else 0). *)
val world_prob : t -> Psst_util.Bitset.t -> float

(** [sample_world rng t] draws a possible world; returns the present-edge
    mask and the world graph (all vertices kept, edge ids renumbered; the
    int array maps new edge id -> original edge id). *)
val sample_world :
  Psst_util.Prng.t -> t -> Psst_util.Bitset.t * Lgraph.t * int array

(** [iter_worlds t f] enumerates every possible world (mask, probability).
    Raises [Invalid_argument] when there are more than [30] uncertain
    edges. Zero-probability worlds are skipped. *)
val iter_worlds : t -> (Psst_util.Bitset.t -> float -> unit) -> unit

(** [to_independent t] rebuilds the graph under the independence assumption,
    keeping each edge's marginal (paper §6's IND competitor). *)
val to_independent : t -> t

(** Number of JPT table entries stored — the "index size" unit used when
    reporting PMI sizes. *)
val table_entries : t -> int

val pp : Format.formatter -> t -> unit
