module Prng = Psst_util.Prng
module Timer = Psst_util.Timer
module Pool = Psst_util.Pool

type database = {
  graphs : Corpus.t;
  features : Selection.feature list;
  structural : Structural.t;
  pmi : Pmi.t;
  base : int;
}

(* Graph ids in answers, hits and PRNG-stream derivations are global:
   local index [gi] names graph [base + gi] of the full corpus. A
   monolithic database has [base = 0], so nothing changes for it; a shard
   cut out by [Psst_shard.sub_database] carries its offset here, which is
   what makes per-candidate draws — and therefore answers — independent
   of how the corpus is partitioned. *)
let global db gi = db.base + gi

let log_src = Logs.Src.create "psst.query" ~doc:"T-PS query pipeline"

module Log = (val Logs.src_log log_src)

let index_database ?(mining = Selection.default_params)
    ?(bounds = Bounds.default_config) ?(emb_cap = 64) ?(domains = 1) graphs =
  let skeletons = Array.map Pgraph.skeleton graphs in
  let features = Selection.select skeletons mining in
  Log.info (fun m ->
      m "mined %d features over %d graphs" (List.length features)
        (Array.length graphs));
  let structural = Structural.build skeletons features ~emb_cap in
  let pmi = Pmi.build ~config:bounds ~domains graphs features in
  { graphs = Corpus.of_array graphs; features; structural; pmi; base = 0 }

let m_runs = Psst_obs.counter "query.runs"
let m_answers = Psst_obs.counter "query.answers"
let m_exact_scans = Psst_obs.counter "query.exact_scans"
let m_graphs_added = Psst_obs.counter "query.graphs_added"

let add_graphs db gs =
  if Array.length gs = 0 then db
  else begin
    let skels = Array.map Pgraph.skeleton gs in
    (* [Pmi.add_graphs] is the single owner of the support-list update:
       re-reading the features from the new index keeps the database copy
       and the persisted copy identical by construction. *)
    let pmi = Pmi.add_graphs db.pmi gs in
    Psst_obs.add m_graphs_added (Array.length gs);
    {
      graphs = Corpus.append db.graphs gs;
      features = Array.to_list (Pmi.features pmi);
      structural = Structural.add_graphs db.structural skels;
      pmi;
      base = db.base;
    }
  end

let add_graph db g = add_graphs db [| g |]

type config = {
  epsilon : float;
  delta : int;
  mode : Pruning.mode;
  certified : bool;
  verifier : [ `Smp of Verify.config | `Exact ];
  relax_cap : int;
  seed : int;
}

let default_config =
  {
    epsilon = 0.5;
    delta = 2;
    mode = Pruning.Optimized;
    certified = true;
    verifier = `Smp Verify.default_config;
    relax_cap = 4096;
    seed = 7;
  }

type stats = {
  relaxed_count : int;
  relaxed_truncated : bool;
  structural_candidates : int;
  prob_candidates : int;
  accepted_by_bounds : int;
  pruned_by_bounds : int;
  degraded_candidates : int;
  t_relax : float;
  t_structural : float;
  t_probabilistic : float;
  t_verification : float;
  t_verification_cpu : float;
  verify_domains : int;
}

type outcome = { answers : int list; stats : stats; trace : Psst_obs.Trace.t }

(* Per-query trace assembled from the phase timings already measured for
   [stats]: no extra clock reads on the hot path. *)
let trace_of ~label ~answers stats =
  let tr = Psst_obs.Trace.create label in
  Psst_obs.Trace.set_time tr "relax" stats.t_relax;
  Psst_obs.Trace.set_time tr "structural" stats.t_structural;
  Psst_obs.Trace.set_time tr "probabilistic" stats.t_probabilistic;
  Psst_obs.Trace.set_time tr "verification" stats.t_verification;
  Psst_obs.Trace.set_time tr "verification_cpu" stats.t_verification_cpu;
  Psst_obs.Trace.set_count tr "relaxed" stats.relaxed_count;
  Psst_obs.Trace.set_count tr "structural_candidates" stats.structural_candidates;
  Psst_obs.Trace.set_count tr "prob_candidates" stats.prob_candidates;
  Psst_obs.Trace.set_count tr "accepted_by_bounds" stats.accepted_by_bounds;
  Psst_obs.Trace.set_count tr "pruned_by_bounds" stats.pruned_by_bounds;
  Psst_obs.Trace.set_count tr "degraded_candidates" stats.degraded_candidates;
  Psst_obs.Trace.set_count tr "answers" (List.length answers);
  Psst_obs.Trace.set_count tr "verify_domains" stats.verify_domains;
  Psst_obs.Trace.set_flag tr "relaxed_truncated" stats.relaxed_truncated;
  tr

let validate_config config =
  if not (config.epsilon > 0. && config.epsilon <= 1.) then
    invalid_arg "Query: epsilon must be in (0, 1]";
  if config.delta < 0 then invalid_arg "Query: delta must be non-negative"

(* One candidate's verification, optionally through a cache scope. Every
   staged artifact (embedding sets, Karp–Luby preparation, final SSP) is
   a deterministic function of its key, so the cached and cold paths
   return bit-identical values under a fixed [rng] stream (DESIGN.md
   §13). Adaptive verifiers receive the query's epsilon as the
   CI-clears-threshold stopping target. *)
let verify_candidate ?scope ~graph:gi config rng g relaxed =
  let cached_embeddings emb_cap compute =
    match scope with
    | None -> compute ()
    | Some s -> Qcache.embeddings s ~graph:gi ~emb_cap ~compute
  in
  let compute () =
    match config.verifier with
    | `Exact ->
      let sets =
        cached_embeddings Verify.default_config.emb_cap (fun () ->
            Verify.embedding_sets g relaxed)
      in
      Verify.exact_with_sets g sets
    | `Smp vc ->
      let prep =
        match scope with
        | None -> Verify.smp_prepare g (Verify.embedding_sets ~config:vc g relaxed)
        | Some s ->
          Qcache.smp_prep s ~graph:gi ~emb_cap:vc.emb_cap ~compute:(fun () ->
              let sets =
                cached_embeddings vc.emb_cap (fun () ->
                    Verify.embedding_sets ~config:vc g relaxed)
              in
              Verify.smp_prepare g sets)
      in
      let stop_epsilon = if vc.adaptive then Some config.epsilon else None in
      (Verify.smp_run ~config:vc ?stop_epsilon rng prep).value
  in
  match scope with
  | None -> compute ()
  | Some s ->
    let vkey =
      Qcache.verifier_key ~epsilon:config.epsilon ~seed:config.seed config.verifier
    in
    Qcache.ssp s ~graph:gi ~vkey ~compute

(* Phases 1 and 2, shared by [run_on] and [run_bounds_only]. They are
   sequential (they are cheap); each candidate's bound evaluation draws
   from its own PRNG stream, so a candidate's decision depends only on
   (query, global graph id, config) — never on which other graphs share
   the database. That is what keeps pruning counters and answers
   bit-identical between a monolithic run and a union of shard runs.
   [p_candidates] is in reverse structural order, exactly as the fold
   accumulates it. *)
type pruned_phases = {
  p_relaxed : Lgraph.t list;
  p_truncated : bool;
  p_structural : int list;
  p_accepted : int list;
  p_candidates : int list;
  p_pruned : int list;
  pt_relax : float;
  pt_structural : float;
  pt_probabilistic : float;
}

(* The pruning phase draws from a stream family disjoint from the
   verification one: verification streams use the (non-negative) global
   graph id as the stream index, pruning uses its one's complement
   (strictly negative), so the two phases never consume correlated
   randomness for the same candidate. *)
let prune_stream ~seed gid = Prng.stream ~seed (lnot gid)

let prune_phases ?scope db q config =
  let (relaxed, status), pt_relax =
    Timer.time (fun () ->
        let compute () =
          Relax.relaxed_set ~cap:config.relax_cap q ~delta:config.delta
        in
        match scope with
        | None -> compute ()
        | Some s -> Qcache.relaxed s ~compute)
  in
  (* Phase 1: structural pruning over the certain skeletons (Thm 1). *)
  let structural_cands, pt_structural =
    Timer.time (fun () ->
        Structural.candidates db.structural
          ~skeleton:(Corpus.skeleton db.graphs)
          q ~delta:config.delta)
  in
  (* Phase 2: probabilistic pruning through the PMI bounds. *)
  let (accepted, candidates, pruned), pt_probabilistic =
    Timer.time (fun () ->
        let prepared =
          let compute () = Pruning.prepare db.pmi ~relaxed in
          match scope with
          | None -> compute ()
          | Some s -> Qcache.prepared s ~compute
        in
        List.fold_left
          (fun (acc, cand, pruned) gi ->
            let rng = prune_stream ~seed:config.seed (global db gi) in
            let r =
              Pruning.evaluate ~certified:config.certified rng db.pmi prepared
                ~graph:gi ~epsilon:config.epsilon ~mode:config.mode
            in
            match r.Pruning.decision with
            | `Accepted -> (gi :: acc, cand, pruned)
            | `Candidate -> (acc, gi :: cand, pruned)
            | `Pruned -> (acc, cand, gi :: pruned))
          ([], [], []) structural_cands)
  in
  {
    p_relaxed = relaxed;
    p_truncated = status = `Truncated;
    p_structural = structural_cands;
    p_accepted = accepted;
    p_candidates = candidates;
    p_pruned = pruned;
    pt_relax;
    pt_structural;
    pt_probabilistic;
  }

(* The pipeline on an existing pool, so that [run_batch] can interleave
   the verification tasks of many queries on one set of domains. Phase 3
   fans out over the surviving candidates; each one verifies under its
   own PRNG stream derived from [config.seed] and the graph id alone, so
   the answer set is bit-identical for every pool size — including the
   sequential one.

   [?deadline] (absolute, seconds) is the graceful-degradation path
   (DESIGN.md §12): a candidate whose verification would start past the
   deadline — or whose verification is cut down by an injected fault —
   is answered from its PMI bounds instead. Every such candidate already
   passed the Usim >= ε screening of phase 2, so including it can only
   over-approximate, never drop a true answer (the paper's anytime bound
   semantics); the count surfaces as [stats.degraded_candidates] so the
   caller can flag the reply. With [deadline = None] and no armed faults
   this path is byte-for-byte the exact pipeline.

   [?cache] arms the cross-query cache: each candidate verifies under its
   own seed-derived PRNG stream, so its SSP is a pure function of
   (query, graph, verifier config, seed) and safe to memoise — cached
   answers are bit-identical to cold ones (DESIGN.md §13). The deadline
   check stays ahead of the cache lookup: a late candidate degrades to
   its bounds whether or not a cached value exists, preserving the
   budget semantics. *)
let run_on ?deadline ?cache pool db q config =
  validate_config config;
  Psst_obs.incr m_runs;
  let scope =
    Option.map
      (fun c ->
        Qcache.scope c ~graphs:db.graphs ~pmi:db.pmi ~q ~delta:config.delta
          ~relax_cap:config.relax_cap)
      cache
  in
  let p = prune_phases ?scope db q config in
  let relaxed = p.p_relaxed in
  (* Phase 3: verification of the undecided candidates. *)
  let results, t_verification =
    Timer.time (fun () ->
        Pool.map_array pool ~chunk:1
          (fun gi ->
            let late =
              match deadline with
              | None -> false
              | Some dl -> Unix.gettimeofday () > dl
            in
            if late then (gi, true, 0., true)
            else
              let rng = Prng.stream ~seed:config.seed (global db gi) in
              match
                Timer.time (fun () ->
                    verify_candidate ?scope ~graph:gi config rng
                      (Corpus.get db.graphs gi) relaxed)
              with
              | v, t -> (gi, v >= config.epsilon, t, false)
              | exception Psst_fault.Injected _ -> (gi, true, 0., true))
          (Array.of_list (List.rev p.p_candidates)))
  in
  let verified =
    Array.to_list results
    |> List.filter_map (fun (gi, keep, _, _) -> if keep then Some gi else None)
  in
  let t_verification_cpu =
    Array.fold_left (fun acc (_, _, t, _) -> acc +. t) 0. results
  in
  let degraded_candidates =
    Array.fold_left (fun acc (_, _, _, d) -> if d then acc + 1 else acc) 0 results
  in
  Log.debug (fun m ->
      m "query: %d structural, %d pruned, %d accepted, %d verified, %d degraded"
        (List.length p.p_structural) (List.length p.p_pruned)
        (List.length p.p_accepted) (List.length p.p_candidates)
        degraded_candidates);
  let answers =
    List.sort compare (List.map (global db) (p.p_accepted @ verified))
  in
  Psst_obs.add m_answers (List.length answers);
  let stats =
    {
      relaxed_count = List.length relaxed;
      relaxed_truncated = p.p_truncated;
      structural_candidates = List.length p.p_structural;
      prob_candidates = List.length p.p_candidates;
      accepted_by_bounds = List.length p.p_accepted;
      pruned_by_bounds = List.length p.p_pruned;
      degraded_candidates;
      t_relax = p.pt_relax;
      t_structural = p.pt_structural;
      t_probabilistic = p.pt_probabilistic;
      t_verification;
      t_verification_cpu;
      verify_domains = Pool.size pool;
    }
  in
  { answers; stats; trace = trace_of ~label:"query" ~answers stats }

(* Bounds-only fallback: phases 1–2 alone, every undecided candidate
   included. The all-degraded limit of [run_on ?deadline] — used when the
   verification stage itself is unavailable, so the server can still give
   a correct-to-bounds, flagged answer instead of an error. *)
let run_bounds_only ?cache db q config =
  validate_config config;
  Psst_obs.incr m_runs;
  let scope =
    Option.map
      (fun c ->
        Qcache.scope c ~graphs:db.graphs ~pmi:db.pmi ~q ~delta:config.delta
          ~relax_cap:config.relax_cap)
      cache
  in
  let p = prune_phases ?scope db q config in
  let candidates = List.rev p.p_candidates in
  let answers =
    List.sort compare (List.map (global db) (p.p_accepted @ candidates))
  in
  Psst_obs.add m_answers (List.length answers);
  let stats =
    {
      relaxed_count = List.length p.p_relaxed;
      relaxed_truncated = p.p_truncated;
      structural_candidates = List.length p.p_structural;
      prob_candidates = List.length p.p_candidates;
      accepted_by_bounds = List.length p.p_accepted;
      pruned_by_bounds = List.length p.p_pruned;
      degraded_candidates = List.length p.p_candidates;
      t_relax = p.pt_relax;
      t_structural = p.pt_structural;
      t_probabilistic = p.pt_probabilistic;
      t_verification = 0.;
      t_verification_cpu = 0.;
      verify_domains = 0;
    }
  in
  { answers; stats; trace = trace_of ~label:"bounds-only" ~answers stats }

let deadline_of_budget = function
  | Some ms when ms > 0. -> Some (Unix.gettimeofday () +. (ms /. 1000.))
  | _ -> None

let run ?(domains = 1) ?budget_ms ?cache db q config =
  let deadline = deadline_of_budget budget_ms in
  Pool.with_pool ~domains (fun pool -> run_on ?deadline ?cache pool db q config)

let run_batch_on ?budget_ms ?cache pool db queries config =
  validate_config config;
  (* One absolute deadline for the whole batch, fixed before the fan-out:
     however the pool schedules the queries, they degrade against the
     same wall-clock instant. *)
  let deadline = deadline_of_budget budget_ms in
  Pool.map_array pool ~chunk:1
    (fun q -> run_on ?deadline ?cache pool db q config)
    (Array.of_list queries)
  |> Array.to_list

let run_batch ?(domains = 1) ?budget_ms ?cache db queries config =
  Pool.with_pool ~domains (fun pool ->
      run_batch_on ?budget_ms ?cache pool db queries config)

let run_exact_scan db q config =
  validate_config config;
  Psst_obs.incr m_exact_scans;
  let (relaxed, status), t_relax =
    Timer.time (fun () ->
        Relax.relaxed_set ~cap:config.relax_cap q ~delta:config.delta)
  in
  let answers, t =
    Timer.time (fun () ->
        List.init (Corpus.length db.graphs) (fun gi -> gi)
        |> List.filter (fun gi ->
               Verify.exact (Corpus.get db.graphs gi) relaxed >= config.epsilon)
        |> List.map (global db))
  in
  let stats =
    {
      relaxed_count = List.length relaxed;
      relaxed_truncated = status = `Truncated;
      structural_candidates = Corpus.length db.graphs;
      prob_candidates = Corpus.length db.graphs;
      accepted_by_bounds = 0;
      pruned_by_bounds = 0;
      degraded_candidates = 0;
      t_relax;
      t_structural = 0.;
      t_probabilistic = 0.;
      t_verification = t;
      t_verification_cpu = t;
      verify_domains = 1;
    }
  in
  { answers; stats; trace = trace_of ~label:"exact-scan" ~answers stats }

let ground_truth db q config =
  let relaxed, _ = Relax.relaxed_set ~cap:config.relax_cap q ~delta:config.delta in
  List.init (Corpus.length db.graphs) (fun gi -> gi)
  |> List.filter (fun gi ->
         Distance.within q (Corpus.skeleton db.graphs gi) ~delta:config.delta
         && Verify.exact (Corpus.get db.graphs gi) relaxed >= config.epsilon)
  |> List.map (global db)

(* --- persistence (DESIGN.md §9) --- *)

module Store = Psst_store

(* Wire codec for [config], shared by the RPC protocol (lib/server) and any
   future persisted query plans. Decoding validates the variant tags and the
   same numeric ranges as [validate_config], so a corrupted or adversarial
   payload surfaces as [Store_error], never as a bogus query.

   [adaptive_field:false] selects the pre-v3 layout, where an SMP
   verifier carries no [adaptive] byte: encoding drops the flag and
   decoding defaults it to false. The RPC layer keys this off the frame
   version so configs from older peers still decode (DESIGN.md §11). *)
let put_config ?(adaptive_field = true) e (c : config) =
  Store.put_f64 e c.epsilon;
  Store.put_i64 e c.delta;
  Store.put_i64 e (match c.mode with Pruning.Random_pick -> 0 | Optimized -> 1);
  Store.put_bool e c.certified;
  (match c.verifier with
  | `Exact -> Store.put_i64 e 0
  | `Smp (vc : Verify.config) ->
    Store.put_i64 e 1;
    Store.put_f64 e vc.tau;
    Store.put_f64 e vc.xi;
    Store.put_i64 e vc.emb_cap;
    if adaptive_field then Store.put_bool e vc.adaptive);
  Store.put_i64 e c.relax_cap;
  Store.put_i64 e c.seed

let get_config ?(adaptive_field = true) d =
  let epsilon = Store.get_f64 d in
  let delta = Store.get_i64 d in
  let mode =
    match Store.get_i64 d with
    | 0 -> Pruning.Random_pick
    | 1 -> Pruning.Optimized
    | t -> Store.error "config: unknown pruning mode tag %d" t
  in
  let certified = Store.get_bool d in
  let verifier =
    match Store.get_i64 d with
    | 0 -> `Exact
    | 1 ->
      let tau = Store.get_f64 d in
      let xi = Store.get_f64 d in
      let emb_cap = Store.get_i64 d in
      let adaptive = if adaptive_field then Store.get_bool d else false in
      if not (tau > 0. && xi > 0. && xi < 1. && emb_cap > 0) then
        Store.error "config: invalid verifier parameters (tau %g, xi %g, emb_cap %d)"
          tau xi emb_cap;
      `Smp { Verify.tau; xi; emb_cap; adaptive }
    | t -> Store.error "config: unknown verifier tag %d" t
  in
  let relax_cap = Store.get_i64 d in
  let seed = Store.get_i64 d in
  let c = { epsilon; delta; mode; certified; verifier; relax_cap; seed } in
  (match validate_config c with
  | () -> ()
  | exception Invalid_argument msg -> Store.error "config: %s" msg);
  if relax_cap <= 0 then Store.error "config: relax_cap must be positive";
  c

(* The section-level codec is exposed so the shard store (lib/shard) can
   compose a database's sections with its own metadata in one file. The
   "db.base" section carries the global-id offset and is written only
   when non-zero, so files written by previous releases (always
   monolithic, base 0) load unchanged. *)
(* The flat structural image (DESIGN.md §15): a tiny directory plus one
   feature-major u16 cell matrix that the mmap load path reads zero-copy.
   Counts are capped at [emb_cap], so u16 range suffices as long as the
   cap itself fits — enforced here rather than silently truncated. *)
let structural_flat_sections st =
  let emb_cap = Structural.emb_cap st in
  if emb_cap > 0xFFFF then
    Store.error
      "flat structural image requires emb_cap < 65536 (this index uses %d)"
      emb_cap;
  let nf = Structural.num_features st and ng = Structural.num_graphs st in
  let dir = Store.encoder () in
  Store.put_i64 dir emb_cap;
  Store.put_i64 dir nf;
  Store.put_i64 dir ng;
  let cells = Store.encoder () in
  Array.iter
    (fun row ->
      Array.iter
        (fun c ->
          if c > 0xFFFF then
            Store.error "structural count %d does not fit the flat u16 cells" c;
          Store.put_u16 cells c)
        row)
    (Structural.counts st);
  [
    Store.section "structural.flat.dir" dir;
    Store.section "structural.flat.counts" cells;
  ]

let database_sections ?(flat = false) db =
  let garr = Corpus.to_array db.graphs in
  let graphs = Store.encoder () in
  (* Framing identical to [put_array encode_binary] — the payload bytes
     (and hence the database fingerprint) are the same in both layouts;
     the flat image just also records where each graph begins, so a
     mapped corpus can decode one graph without scanning its
     predecessors. *)
  let n = Array.length garr in
  Store.put_i64 graphs n;
  let offsets = Array.make (n + 1) 0 in
  offsets.(0) <- Store.enc_length graphs;
  Array.iteri
    (fun i g ->
      Pgraph_io.encode_binary graphs g;
      offsets.(i + 1) <- Store.enc_length graphs)
    garr;
  let head =
    if flat then begin
      let offs = Store.encoder () in
      Store.put_array offs Store.put_i64 offsets;
      Store.section "graphs" graphs
      :: Store.section "graphs.offsets" offs
      :: (structural_flat_sections db.structural
         @ Pmi.flat_sections ~db:garr db.pmi)
    end
    else begin
      let structural = Store.encoder () in
      Store.put_i64 structural (Structural.emb_cap db.structural);
      Store.put_array structural
        (fun e row -> Store.put_array e Store.put_i64 row)
        (Structural.counts db.structural);
      Store.section "graphs" graphs
      :: Store.section "structural" structural
      :: Pmi.to_sections ~db:garr db.pmi
    end
  in
  if db.base = 0 then head
  else begin
    let base = Store.encoder () in
    Store.put_i64 base db.base;
    head @ [ Store.section "db.base" base ]
  end

let database_of_sections ?(salvage = false) sections =
  (* The graphs are the source of truth — nothing to rebuild them from, so
     even a salvage load requires them (and the structural counts) intact;
     only the PMI entry shards are self-healing. *)
  let graphs =
    Store.decode_section sections "graphs" (fun d ->
        Store.get_array d Pgraph_io.decode_binary)
  in
  (* [Pmi.of_sections] re-fingerprints the embedded graphs against the
     stored fingerprint, so a file stitched together from two different
     stores is rejected here. *)
  let pmi = Pmi.of_sections ~salvage ~db:graphs sections in
  let features = Array.to_list (Pmi.features pmi) in
  let has name =
    List.exists (fun (s : Store.section) -> s.Store.name = name) sections
  in
  let structural =
    if has "structural.flat.dir" then begin
      (* Eager decode of the flat image (a flat file loaded without mmap). *)
      let emb_cap, nf, ng =
        Store.decode_section sections "structural.flat.dir" (fun d ->
            let emb_cap = Store.get_nat d in
            let nf = Store.get_nat d in
            let ng = Store.get_nat d in
            (emb_cap, nf, ng))
      in
      if nf <> List.length features then
        Store.error "structural flat image has %d rows for %d features" nf
          (List.length features);
      if ng <> Array.length graphs then
        Store.error "structural flat image has %d columns for %d graphs" ng
          (Array.length graphs);
      let payload = Store.find_section sections "structural.flat.counts" in
      if String.length payload <> 2 * nf * ng then
        Store.error "structural flat counts: %d bytes for %d x %d cells"
          (String.length payload) nf ng;
      let counts =
        Array.init nf (fun fi ->
            Array.init ng (fun gi ->
                String.get_uint16_le payload (2 * ((fi * ng) + gi))))
      in
      Store.checked (fun () -> Structural.of_parts ~features ~counts ~emb_cap)
    end
    else
      Store.decode_section sections "structural" (fun d ->
          let emb_cap = Store.get_nat d in
          let counts =
            Store.get_array d (fun d -> Store.get_array d Store.get_nat)
          in
          Store.checked (fun () -> Structural.of_parts ~features ~counts ~emb_cap))
  in
  let base =
    if List.exists (fun (s : Store.section) -> s.Store.name = "db.base") sections
    then
      Store.decode_section sections "db.base" (fun d ->
          let b = Store.get_nat d in
          b)
    else 0
  in
  { graphs = Corpus.of_array graphs; features; structural; pmi; base }

let save_database ?(flat = false) path db =
  let sections = database_sections ~flat db in
  let sections =
    if flat then
      Store.align_payloads
        ~targets:[ "structural.flat.counts"; "pmi.flat.bounds" ]
        sections
    else sections
  in
  Store.write_file path ~kind:Store.Database sections

(* Zero-copy load of a flat database image: only the small metadata
   sections (directories, features, config) are decoded at open. The
   graphs stay in the mapping behind a lazily-decoding {!Corpus}, and the
   PMI postings/bounds and structural count cells — the
   O(features x graphs) bulk — are read in place, so time-to-first-query
   does not scale with database size. *)
let load_database_mapped path =
  let m = Store.map_file path ~kind:Store.Database in
  Fun.protect
    ~finally:(fun () -> Store.mapped_release m)
    (fun () ->
      if not (Store.mapped_has m "graphs.offsets") then
        Store.error
          "store %s holds no graph offset table — re-index it with --flat to \
           use --mmap"
          path;
      let offsets =
        let d =
          Store.decoder ~name:"graphs.offsets"
            (Store.mapped_section_string m "graphs.offsets")
        in
        let v = Store.get_array d Store.get_i64 in
        Store.expect_end d;
        v
      in
      let graphs = Corpus.of_mapped m ~section:"graphs" ~offsets in
      let ng = Corpus.length graphs in
      let pmi = Pmi.of_mapped_lazy m ~ng in
      let features = Array.to_list (Pmi.features pmi) in
      if not (Store.mapped_has m "structural.flat.dir") then
        Store.error
          "store %s holds no flat structural image — re-index it with --flat \
           to use --mmap"
          path;
      let emb_cap, nf =
        let d =
          Store.decoder ~name:"structural.flat.dir"
            (Store.mapped_section_string m "structural.flat.dir")
        in
        let emb_cap = Store.get_nat d in
        let nf = Store.get_nat d in
        let ng' = Store.get_nat d in
        Store.expect_end d;
        if ng' <> ng then
          Store.error "structural flat image has %d columns for %d graphs" ng'
            ng;
        (emb_cap, nf)
      in
      if nf <> List.length features then
        Store.error "structural flat image has %d rows for %d features" nf
          (List.length features);
      let cells = Store.mapped_u16 m "structural.flat.counts" in
      if Bigarray.Array1.dim cells <> nf * ng then
        Store.error "structural flat counts: %d cells for %d x %d"
          (Bigarray.Array1.dim cells) nf ng;
      let structural =
        Store.checked (fun () ->
            Structural.of_cells ~features ~cells ~num_graphs:ng ~emb_cap)
      in
      let base =
        if Store.mapped_has m "db.base" then begin
          let d =
            Store.decoder ~name:"db.base"
              (Store.mapped_section_string m "db.base")
          in
          let b = Store.get_nat d in
          Store.expect_end d;
          b
        end
        else 0
      in
      { graphs; features; structural; pmi; base })

let load_database ?(salvage = false) ?(mmap = false) path =
  let eager () =
    let sections =
      if salvage then
        (Store.read_file_salvage path ~kind:Store.Database).Store.intact
      else Store.read_file path ~kind:Store.Database
    in
    database_of_sections ~salvage sections
  in
  if not mmap then eager ()
  else
    match load_database_mapped path with
    | db -> db
    | exception Store.Store_error _ when salvage ->
      (* No partial salvage on a mapping — fall back to the eager salvage
         loader, which can rebuild damaged PMI columns. *)
      eager ()
