module Bitset = Psst_util.Bitset

type edge = { u : int; v : int; label : int; id : int }

module Flat = struct
  (* Contiguous CSR image of a graph: the adjacency of vertex [v] lives
     in [nbr/eid/elab] between [off.(v)] and [off.(v+1)], sorted by
     neighbor id — the same (neighbor, edge_id) order the list-based
     [adj] uses, so enumeration driven by either representation visits
     candidates identically. Arrays are never mutated after
     construction. *)
  type t = {
    n : int;
    m : int;
    vlabels : int array;
    deg : int array;
    off : int array;  (* length n+1: prefix offsets into nbr/eid/elab *)
    nbr : int array;
    eid : int array;
    elab : int array;
    eu : int array;  (* per edge id: endpoints (u <= v) and label *)
    ev : int array;
    el : int array;
    vhist : (int * int) array;  (* sorted (label, count) multisets *)
    ehist : (int * int) array;
  }

  (* Edge id between [u] and [v], or -1: binary search in [u]'s sorted
     adjacency slice (neighbor ids are unique — simple graphs). *)
  let find_edge_id t u v =
    let lo = ref t.off.(u) and hi = ref (t.off.(u + 1) - 1) in
    let found = ref (-1) in
    while !found < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let w = t.nbr.(mid) in
      if w = v then found := t.eid.(mid)
      else if w < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found

  (* [hist_missing a b] over the sorted histogram arrays; same value as
     [Lgraph.hist_missing] on the corresponding association lists. *)
  let hist_missing a b =
    let nb = Array.length b in
    let missing = ref 0 and j = ref 0 in
    Array.iter
      (fun (label, count) ->
        while !j < nb && fst b.(!j) < label do
          incr j
        done;
        let there = if !j < nb && fst b.(!j) = label then snd b.(!j) else 0 in
        missing := !missing + max 0 (count - there))
      a;
    !missing
end

type t = {
  vlabels : int array;
  edges : edge array;
  adj : (int * int) list array;
  flat_memo : Flat.t option Atomic.t;
      (* memoised CSR image; idempotent racy init (the build is a pure
         function of the immutable fields) *)
}

let num_vertices t = Array.length t.vlabels
let num_edges t = Array.length t.edges

let norm u v = if u <= v then (u, v) else (v, u)

let create ~vlabels ~edges =
  let n = Array.length vlabels in
  let seen = Hashtbl.create 16 in
  let mk id (u, v, label) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg "Lgraph.create: endpoint out of range";
    if u = v then invalid_arg "Lgraph.create: self loop";
    let key = norm u v in
    if Hashtbl.mem seen key then invalid_arg "Lgraph.create: duplicate edge";
    Hashtbl.add seen key ();
    let u, v = key in
    { u; v; label; id }
  in
  let edges = Array.of_list (List.mapi mk edges) in
  let adj = Array.make n [] in
  Array.iter
    (fun e ->
      adj.(e.u) <- (e.v, e.id) :: adj.(e.u);
      adj.(e.v) <- (e.u, e.id) :: adj.(e.v))
    edges;
  (* Deterministic neighbor order regardless of insertion order. *)
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { vlabels = Array.copy vlabels; edges; adj; flat_memo = Atomic.make None }

let vertices_only ~vlabels = create ~vlabels ~edges:[]

let vertex_label t v = t.vlabels.(v)
let vertex_labels t = Array.copy t.vlabels
let edge t id = t.edges.(id)
let edges t = Array.copy t.edges
let neighbors t v = t.adj.(v)
let degree t v = List.length t.adj.(v)

let find_edge t u v =
  let u, v = norm u v in
  List.find_map
    (fun (w, eid) -> if w = v then Some t.edges.(eid) else None)
    t.adj.(u)

let has_edge t u v = Option.is_some (find_edge t u v)

let other_endpoint e v =
  if e.u = v then e.v
  else if e.v = v then e.u
  else invalid_arg "Lgraph.other_endpoint: vertex not on edge"

let components t =
  let n = num_vertices t in
  let seen = Array.make n false in
  let comps = ref [] in
  for s = 0 to n - 1 do
    if not seen.(s) then begin
      let comp = ref [] in
      let stack = ref [ s ] in
      seen.(s) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
          stack := rest;
          comp := v :: !comp;
          List.iter
            (fun (w, _) ->
              if not seen.(w) then begin
                seen.(w) <- true;
                stack := w :: !stack
              end)
            t.adj.(v)
      done;
      comps := List.rev !comp :: !comps
    end
  done;
  List.rev !comps

let is_connected t = num_vertices t <= 1 || List.length (components t) = 1

let is_connected_ignoring_isolated t =
  let nontrivial = List.filter (function [ _ ] -> false | _ -> true) (components t) in
  List.length nontrivial <= 1

let of_edge_list t kept =
  let edges = List.map (fun e -> (e.u, e.v, e.label)) kept in
  create ~vlabels:t.vlabels ~edges

let with_edge_mask t mask =
  let kept = List.filter (fun e -> Bitset.mem mask e.id) (Array.to_list t.edges) in
  (of_edge_list t kept, Array.of_list (List.map (fun e -> e.id) kept))

let delete_edges t ids =
  let kept = List.filter (fun e -> not (List.mem e.id ids)) (Array.to_list t.edges) in
  of_edge_list t kept

let relabel_edge t id label =
  let edges =
    Array.to_list t.edges
    |> List.map (fun e -> (e.u, e.v, if e.id = id then label else e.label))
  in
  create ~vlabels:t.vlabels ~edges

let induced_subgraph t vs =
  let map_new_to_old = Array.of_list vs in
  let old_to_new = Hashtbl.create (List.length vs) in
  List.iteri (fun i v -> Hashtbl.replace old_to_new v i) vs;
  let vlabels = Array.map (vertex_label t) map_new_to_old in
  let edges =
    Array.to_list t.edges
    |> List.filter_map (fun e ->
           match (Hashtbl.find_opt old_to_new e.u, Hashtbl.find_opt old_to_new e.v) with
           | Some u, Some v -> Some (u, v, e.label)
           | _ -> None)
  in
  (create ~vlabels ~edges, map_new_to_old)

let drop_isolated t =
  let keep =
    List.init (num_vertices t) (fun v -> v) |> List.filter (fun v -> degree t v > 0)
  in
  induced_subgraph t keep

let triangles t =
  let tris = ref [] in
  Array.iter
    (fun e ->
      (* For each edge (u,v), look for common neighbors w > max(u,v) paired
         with both endpoints; ordering avoids reporting a triangle thrice. *)
      List.iter
        (fun (w, eid_uw) ->
          if w > e.v then
            match find_edge t e.v w with
            | Some e_vw ->
              let tri = List.sort compare [ e.id; eid_uw; e_vw.id ] in
              (match tri with
              | [ a; b; c ] -> tris := (a, b, c) :: !tris
              | _ -> assert false)
            | None -> ())
        t.adj.(e.u))
    t.edges;
  List.sort_uniq compare !tris

let star_edge_sets t =
  List.init (num_vertices t) (fun v -> List.map snd t.adj.(v))
  |> List.filter (fun l -> List.length l >= 2)
  |> List.map (List.sort compare)

let hist_of_list labels =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun l -> Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    labels;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let vertex_label_hist t = hist_of_list (Array.to_list t.vlabels)

let edge_label_hist t =
  hist_of_list (List.map (fun e -> e.label) (Array.to_list t.edges))

let hist_missing a b =
  List.fold_left
    (fun acc (label, count) ->
      let there = Option.value ~default:0 (List.assoc_opt label b) in
      acc + max 0 (count - there))
    0 a

let flat t =
  match Atomic.get t.flat_memo with
  | Some f -> f
  | None ->
    let n = num_vertices t and m = num_edges t in
    let deg = Array.make n 0 in
    Array.iteri (fun i l -> deg.(i) <- List.length l) t.adj;
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + deg.(i)
    done;
    let nbr = Array.make (2 * m) 0 in
    let eid = Array.make (2 * m) 0 in
    let elab = Array.make (2 * m) 0 in
    Array.iteri
      (fun i l ->
        let k = ref off.(i) in
        List.iter
          (fun (w, e) ->
            nbr.(!k) <- w;
            eid.(!k) <- e;
            elab.(!k) <- t.edges.(e).label;
            incr k)
          l)
      t.adj;
    let eu = Array.make m 0 and ev = Array.make m 0 and el = Array.make m 0 in
    Array.iter
      (fun e ->
        eu.(e.id) <- e.u;
        ev.(e.id) <- e.v;
        el.(e.id) <- e.label)
      t.edges;
    let f =
      {
        Flat.n;
        m;
        vlabels = t.vlabels;
        deg;
        off;
        nbr;
        eid;
        elab;
        eu;
        ev;
        el;
        vhist = Array.of_list (vertex_label_hist t);
        ehist = Array.of_list (edge_label_hist t);
      }
    in
    Atomic.set t.flat_memo (Some f);
    f

let to_string t =
  let buf = Buffer.create 256 in
  Array.iter (fun l -> Buffer.add_string buf (Printf.sprintf "v %d\n" l)) t.vlabels;
  Array.iter
    (fun e -> Buffer.add_string buf (Printf.sprintf "e %d %d %d\n" e.u e.v e.label))
    t.edges;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let vlabels = ref [] and edges = ref [] in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ "v"; l ] -> vlabels := int_of_string l :: !vlabels
      | [ "e"; u; v; l ] ->
        edges := (int_of_string u, int_of_string v, int_of_string l) :: !edges
      | _ -> invalid_arg ("Lgraph.of_string: bad line: " ^ line))
    lines;
  create ~vlabels:(Array.of_list (List.rev !vlabels)) ~edges:(List.rev !edges)

let pp ppf t =
  Format.fprintf ppf "@[<v>graph (%d vertices, %d edges)" (num_vertices t)
    (num_edges t);
  Array.iteri (fun v l -> Format.fprintf ppf "@,  v%d: label %d" v l) t.vlabels;
  Array.iter
    (fun e -> Format.fprintf ppf "@,  e%d: %d--%d label %d" e.id e.u e.v e.label)
    t.edges;
  Format.fprintf ppf "@]"

let equal_structure a b =
  num_vertices a = num_vertices b
  && a.vlabels = b.vlabels
  &&
  let key e = (e.u, e.v, e.label) in
  let sorted g = Array.to_list g.edges |> List.map key |> List.sort compare in
  sorted a = sorted b
