module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

(* A small hand-built probabilistic graph in the style of the paper's graph
   002 (Fig 1): skeleton a-a-b triangle plus b-b and b-c pendant edges, JPT1
   over {e0,e1,e2} (triangle) and JPT2 over {e2,e3,e4} conditioned on e2. *)
let paper_like_pgraph () =
  let skeleton =
    Lgraph.create
      ~vlabels:[| 0; 0; 1; 1; 2 |]
      ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0); (2, 3, 0); (2, 4, 0) ]
  in
  (* JPT1: joint over e0,e1,e2 — mildly positively correlated. *)
  let jpt1 =
    Factor.create [| 0; 1; 2 |]
      [| 0.10; 0.08; 0.08; 0.10; 0.08; 0.10; 0.10; 0.36 |]
  in
  (* JPT2: conditional of e3,e4 given e2 — each e2 slice sums to 1.
     vars [2;3;4], bit0 = e2. Slices: e2=0 -> entries with bit0=0. *)
  let jpt2 =
    Factor.create [| 2; 3; 4 |]
      [| 0.4; 0.2; 0.2; 0.2; 0.2; 0.2; 0.2; 0.4 |]
  in
  Pgraph.make skeleton [ jpt1; jpt2 ]

let test_make_validates () =
  let skeleton = Lgraph.create ~vlabels:[| 0; 0 |] ~edges:[ (0, 1, 0) ] in
  let bad_scope = Factor.create [| 3 |] [| 0.5; 0.5 |] in
  (try
     ignore (Pgraph.make skeleton [ bad_scope ]);
     Alcotest.fail "scope validation missed"
   with Invalid_argument _ -> ());
  let not_chain = Factor.create [| 0 |] [| 0.5; 0.9 |] in
  try
    ignore (Pgraph.make skeleton [ not_chain ]);
    Alcotest.fail "chain validation missed"
  with Invalid_argument _ -> ()

let test_world_probs_sum_to_one () =
  let g = paper_like_pgraph () in
  let total = ref 0. in
  Pgraph.iter_worlds g (fun _ p -> total := !total +. p);
  Tgen.check_close ~eps:1e-9 "sum over worlds" 1.0 !total

let test_certain_edges () =
  let skeleton =
    Lgraph.create ~vlabels:[| 0; 0; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0) ]
  in
  let g = Pgraph.make skeleton [ Factor.create [| 0 |] [| 0.3; 0.7 |] ] in
  Alcotest.(check (list int)) "uncertain" [ 0 ] (Pgraph.uncertain_edges g);
  Alcotest.(check (list int)) "certain" [ 1 ] (Pgraph.certain_edges g);
  Tgen.check_close "certain marginal" 1.0 (Pgraph.edge_marginal g 1);
  Tgen.check_close "uncertain marginal" 0.7 (Pgraph.edge_marginal g 0);
  (* Worlds lacking the certain edge have probability 0. *)
  let w = Bitset.of_list 2 [ 0 ] in
  Tgen.check_close "certain edge absent -> 0" 0. (Pgraph.world_prob g w)

let test_edge_marginal_vs_worlds () =
  let g = paper_like_pgraph () in
  let by_worlds eid =
    let acc = ref 0. in
    Pgraph.iter_worlds g (fun mask p -> if Bitset.mem mask eid then acc := !acc +. p);
    !acc
  in
  for eid = 0 to 4 do
    Tgen.check_close ~eps:1e-9
      (Printf.sprintf "marginal e%d" eid)
      (by_worlds eid) (Pgraph.edge_marginal g eid)
  done

let test_jpt_marginal () =
  let g = paper_like_pgraph () in
  let jpt = Pgraph.jpt g [ 0; 1 ] in
  Tgen.check_close ~eps:1e-9 "jpt normalised" 1.0 (Factor.total jpt);
  (* Cross-check one entry against world enumeration. *)
  let acc = ref 0. in
  Pgraph.iter_worlds g (fun mask p ->
      if Bitset.mem mask 0 && not (Bitset.mem mask 1) then acc := !acc +. p);
  Tgen.check_close ~eps:1e-9 "jpt entry" !acc (Factor.value jpt 1)

let test_sampling_matches_marginals () =
  let g = paper_like_pgraph () in
  let rng = Prng.make 123 in
  let n = 20000 in
  let counts = Array.make 5 0 in
  for _ = 1 to n do
    let mask, world, _ = Pgraph.sample_world rng g in
    Alcotest.(check int) "world keeps vertices" 5 (Lgraph.num_vertices world);
    for e = 0 to 4 do
      if Bitset.mem mask e then counts.(e) <- counts.(e) + 1
    done
  done;
  for e = 0 to 4 do
    let freq = float_of_int counts.(e) /. float_of_int n in
    let exact = Pgraph.edge_marginal g e in
    if Float.abs (freq -. exact) > 0.02 then
      Alcotest.failf "edge %d: freq %.3f vs exact %.3f" e freq exact
  done

let test_to_independent_preserves_marginals () =
  let g = paper_like_pgraph () in
  let ind = Pgraph.to_independent g in
  for e = 0 to 4 do
    Tgen.check_close ~eps:1e-9 "marginal preserved" (Pgraph.edge_marginal g e)
      (Pgraph.edge_marginal ind e)
  done;
  (* But the joint differs: correlated triangle vs independent product. *)
  let joint_cor = Velim.prob_all_present (Pgraph.factors g) [ 0; 1; 2 ] in
  let joint_ind = Velim.prob_all_present (Pgraph.factors ind) [ 0; 1; 2 ] in
  Alcotest.(check bool) "correlation matters" true
    (Float.abs (joint_cor -. joint_ind) > 1e-3)

let test_table_entries () =
  let g = paper_like_pgraph () in
  Alcotest.(check int) "table entries" 16 (Pgraph.table_entries g)

let prop_random_pgraph_consistent =
  QCheck.Test.make ~name:"random pgraphs: worlds sum to 1" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 71) in
      let g = Tgen.random_pgraph rng ~n:5 ~extra:2 ~vl:2 ~el:2 in
      let total = ref 0. in
      Pgraph.iter_worlds g (fun _ p -> total := !total +. p);
      Tgen.close ~eps:1e-6 1.0 !total)

(* --- Exact probabilities --- *)

let test_prob_any_present_single () =
  let g = paper_like_pgraph () in
  let s = Bitset.of_list 5 [ 0; 1 ] in
  let direct = Velim.prob_all_present (Pgraph.factors g) [ 0; 1 ] in
  Tgen.check_close ~eps:1e-9 "single set = conjunction" direct
    (Exact.prob_any_present g [ s ])

let test_prob_any_present_union () =
  let g = paper_like_pgraph () in
  let s1 = Bitset.of_list 5 [ 0 ] and s2 = Bitset.of_list 5 [ 3 ] in
  (* P(e0 or e3) by worlds. *)
  let acc = ref 0. in
  Pgraph.iter_worlds g (fun mask p ->
      if Bitset.mem mask 0 || Bitset.mem mask 3 then acc := !acc +. p);
  Tgen.check_close ~eps:1e-9 "union" !acc (Exact.prob_any_present g [ s1; s2 ])

let test_prob_any_present_superset_pruned () =
  let g = paper_like_pgraph () in
  let s1 = Bitset.of_list 5 [ 0 ] in
  let s2 = Bitset.of_list 5 [ 0; 1 ] in
  (* s2 ⊇ s1 so the answer is just P(e0). *)
  Tgen.check_close ~eps:1e-9 "superset ignored" (Pgraph.edge_marginal g 0)
    (Exact.prob_any_present g [ s1; s2 ])

let test_prob_any_present_empty () =
  let g = paper_like_pgraph () in
  Tgen.check_close "no sets" 0. (Exact.prob_any_present g []);
  (* A set of only certain edges is always present. *)
  let skeleton = Lgraph.create ~vlabels:[| 0; 0 |] ~edges:[ (0, 1, 0) ] in
  let certain = Pgraph.make skeleton [] in
  Tgen.check_close "certain set" 1.0
    (Exact.prob_any_present certain [ Bitset.of_list 1 [ 0 ] ])

let test_naive_matches_smart () =
  let g = paper_like_pgraph () in
  let cases =
    [
      [ Bitset.of_list 5 [ 0; 1 ] ];
      [ Bitset.of_list 5 [ 0 ]; Bitset.of_list 5 [ 3 ] ];
      [ Bitset.of_list 5 [ 0; 1; 2 ]; Bitset.of_list 5 [ 2; 3 ]; Bitset.of_list 5 [ 4 ] ];
    ]
  in
  List.iter
    (fun sets ->
      Tgen.check_close ~eps:1e-9 "naive = smart"
        (Exact.prob_any_present g sets)
        (Exact.prob_any_present_naive g sets))
    cases;
  (* Empty set list: the naive scan still returns 0. *)
  Tgen.check_close "naive empty" 0. (Exact.prob_any_present_naive g [])

let prop_naive_matches_smart =
  QCheck.Test.make ~name:"naive world scan = antichain exact" ~count:30
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 87) in
      let g = Tgen.random_pgraph rng ~n:5 ~extra:2 ~vl:2 ~el:1 in
      let m = Lgraph.num_edges (Pgraph.skeleton g) in
      let k = 1 + Prng.int rng 3 in
      let sets =
        List.init k (fun _ ->
            let size = 1 + Prng.int rng (min 3 m) in
            Bitset.of_list m (Prng.sample_without_replacement rng size m))
      in
      Tgen.close ~eps:1e-9
        (Exact.prob_any_present g sets)
        (Exact.prob_any_present_naive g sets))

let test_exact_sip_triangle () =
  let g = paper_like_pgraph () in
  let triangle =
    Lgraph.create ~vlabels:[| 0; 0; 1 |] ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0) ]
  in
  (* The only embedding of the a-a-b triangle is edges {0,1,2}. *)
  let expected = Velim.prob_all_present (Pgraph.factors g) [ 0; 1; 2 ] in
  Tgen.check_close ~eps:1e-9 "sip triangle" expected (Exact.sip g triangle)

let test_exact_sip_vs_worlds () =
  let g = paper_like_pgraph () in
  let pattern = Lgraph.create ~vlabels:[| 1; 2 |] ~edges:[ (0, 1, 0) ] in
  (* b-c edge: embeds only as e4. *)
  let by_worlds = ref 0. in
  Pgraph.iter_worlds g (fun mask p ->
      let world, _ = Lgraph.with_edge_mask (Pgraph.skeleton g) mask in
      if Vf2.exists pattern world then by_worlds := !by_worlds +. p);
  Tgen.check_close ~eps:1e-9 "sip = world sum" !by_worlds (Exact.sip g pattern)

let prop_exact_sip_matches_worlds =
  QCheck.Test.make ~name:"exact sip = brute-force world sum" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 83) in
      let g = Tgen.random_pgraph rng ~n:5 ~extra:2 ~vl:2 ~el:1 in
      let pattern = Tgen.random_connected_graph rng ~n:3 ~extra:0 ~vl:2 ~el:1 in
      let by_worlds = ref 0. in
      Pgraph.iter_worlds g (fun mask p ->
          let world, _ = Lgraph.with_edge_mask (Pgraph.skeleton g) mask in
          if Vf2.exists pattern world then by_worlds := !by_worlds +. p);
      Tgen.close ~eps:1e-6 !by_worlds (Exact.sip g pattern))

let test_exact_ssp_vs_worlds () =
  let g = paper_like_pgraph () in
  let q =
    Lgraph.create ~vlabels:[| 0; 0; 1; 2 |]
      ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0); (2, 3, 0) ]
  in
  let delta = 1 in
  let by_worlds = ref 0. in
  Pgraph.iter_worlds g (fun mask p ->
      let world, _ = Lgraph.with_edge_mask (Pgraph.skeleton g) mask in
      if Distance.within q world ~delta then by_worlds := !by_worlds +. p);
  Tgen.check_close ~eps:1e-9 "ssp = world sum" !by_worlds (Exact.ssp g q ~delta)

let test_ssp_monotone_in_delta () =
  let g = paper_like_pgraph () in
  let q =
    Lgraph.create ~vlabels:[| 0; 0; 1; 2 |]
      ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0); (2, 3, 0) ]
  in
  let p0 = Exact.ssp g q ~delta:0 in
  let p1 = Exact.ssp g q ~delta:1 in
  let p2 = Exact.ssp g q ~delta:2 in
  Alcotest.(check bool) "monotone" true (p0 <= p1 +. 1e-12 && p1 <= p2 +. 1e-12)

let suite =
  [
    Alcotest.test_case "make validates" `Quick test_make_validates;
    Alcotest.test_case "world probs sum to 1" `Quick test_world_probs_sum_to_one;
    Alcotest.test_case "certain edges" `Quick test_certain_edges;
    Alcotest.test_case "edge marginal vs worlds" `Quick test_edge_marginal_vs_worlds;
    Alcotest.test_case "jpt marginal" `Quick test_jpt_marginal;
    Alcotest.test_case "sampling matches marginals" `Slow test_sampling_matches_marginals;
    Alcotest.test_case "to_independent preserves marginals" `Quick
      test_to_independent_preserves_marginals;
    Alcotest.test_case "table entries" `Quick test_table_entries;
    QCheck_alcotest.to_alcotest prop_random_pgraph_consistent;
    Alcotest.test_case "prob_any_present single" `Quick test_prob_any_present_single;
    Alcotest.test_case "prob_any_present union" `Quick test_prob_any_present_union;
    Alcotest.test_case "prob_any_present superset" `Quick
      test_prob_any_present_superset_pruned;
    Alcotest.test_case "prob_any_present empty/certain" `Quick test_prob_any_present_empty;
    Alcotest.test_case "naive scan = antichain exact" `Quick test_naive_matches_smart;
    QCheck_alcotest.to_alcotest prop_naive_matches_smart;
    Alcotest.test_case "exact sip triangle" `Quick test_exact_sip_triangle;
    Alcotest.test_case "exact sip vs worlds" `Quick test_exact_sip_vs_worlds;
    QCheck_alcotest.to_alcotest prop_exact_sip_matches_worlds;
    Alcotest.test_case "exact ssp vs worlds" `Quick test_exact_ssp_vs_worlds;
    Alcotest.test_case "ssp monotone in delta" `Quick test_ssp_monotone_in_delta;
  ]

let () = ignore suite
