(** Top-k probabilistic subgraph similarity search.

    A natural companion to the paper's threshold queries: return the [k]
    database graphs with the highest subgraph-similarity probability
    Pr(q ⊆sim g). The PMI bounds drive a best-first search — candidates
    are verified in decreasing order of their Usim upper bound, and the
    search stops as soon as the k-th best verified probability dominates
    every unverified candidate's upper bound, so most candidates are never
    verified. *)

type hit = { graph : int; ssp : float }

type stats = {
  structural_candidates : int;
  verified : int;  (** candidates whose SSP was actually computed *)
  bound_skipped : int;  (** candidates dismissed by the upper bound *)
  relaxed_truncated : bool;
      (** the relaxed set was sampled ([relax_cap] hit): reported SSPs
          are lower bounds, so the ranking may under-rank some graphs *)
}

type outcome = { hits : hit list; stats : stats }

(** [run ?cache db q ~k config] — [config.epsilon] is ignored (top-k has
    no threshold; an adaptive SMP verifier therefore stops on its
    precision test alone, never on a decision threshold); [delta],
    [mode], [certified] and [verifier] apply. Hits are sorted by
    decreasing SSP; fewer than [k] hits are returned when fewer graphs
    have positive SSP.

    [cache] memoises the PRNG-free artifacts only (relaxed set, prepared
    memberships, embedding sets, Karp–Luby preparations) — top-k threads
    one rng through verification in ranking order, so final SSP values
    are never served from the cache and cached runs stay bit-identical
    to cold ones. *)
val run :
  ?cache:Qcache.t -> Query.database -> Lgraph.t -> k:int -> Query.config -> outcome
