lib/iso/ullmann.mli: Embedding Lgraph
