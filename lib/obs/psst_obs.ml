(* Pipeline observability (DESIGN.md §10): a process-wide metrics registry
   of atomic counters, float accumulators and log-scale histograms, a
   structured warning-event channel, and per-query traces.

   The hot-path operations (incr/add/record/observe) are lock-free — one
   [Atomic.get] on the enable flag plus one fetch-and-add or CAS loop — so
   they are safe from every domain of a [Psst_util.Pool] and never
   serialise the pipeline. The registry lock is taken only when a metric
   is first interned (module initialisation) and when dumping. *)

let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let now () = Unix.gettimeofday ()

type counter = { c_name : string; cell : int Atomic.t }

type accumulator = {
  a_name : string;
  a_sum : float Atomic.t;
  a_count : int Atomic.t;
}

type histogram = {
  h_name : string;
  upper : float array;  (* ascending finite bucket upper bounds *)
  buckets : int Atomic.t array;  (* length = |upper| + 1; last = overflow *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type metric = C of counter | A of accumulator | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* Get-or-create under the lock; a name registered with a different metric
   type is a programming error and raises. *)
let intern name make existing =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match existing m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf
               "Psst_obs: metric %S already registered with another type" name))
      | None ->
        let v, m = make () in
        Hashtbl.replace registry name m;
        v)

let counter name =
  intern name
    (fun () ->
      let c = { c_name = name; cell = Atomic.make 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let accumulator name =
  intern name
    (fun () ->
      let a =
        { a_name = name; a_sum = Atomic.make 0.; a_count = Atomic.make 0 }
      in
      (a, A a))
    (function A a -> Some a | _ -> None)

let histogram ?(per_decade = 4) ?(lo = 1e-9) ?(hi = 1e3) name =
  intern name
    (fun () ->
      if not (lo > 0. && hi > lo && per_decade > 0) then
        invalid_arg "Psst_obs.histogram: need 0 < lo < hi and per_decade > 0";
      let lo_exp = log10 lo and hi_exp = log10 hi in
      let n =
        max 1
          (int_of_float
             (Float.round ((hi_exp -. lo_exp) *. float_of_int per_decade)))
      in
      let upper =
        Array.init n (fun i ->
            10. ** (lo_exp +. (float_of_int (i + 1) /. float_of_int per_decade)))
      in
      let h =
        {
          h_name = name;
          upper;
          buckets = Array.init (n + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.;
          h_count = Atomic.make 0;
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

let add c n =
  if n <> 0 && Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.cell n)

let incr c = add c 1
let counter_value c = Atomic.get c.cell
let counter_name c = c.c_name

let rec atomic_add_float cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then atomic_add_float cell x

let record a x =
  if Atomic.get enabled_flag then begin
    atomic_add_float a.a_sum x;
    ignore (Atomic.fetch_and_add a.a_count 1)
  end

let acc_sum a = Atomic.get a.a_sum
let acc_count a = Atomic.get a.a_count

let acc_mean a =
  let n = acc_count a in
  if n = 0 then 0. else acc_sum a /. float_of_int n

(* Smallest bucket whose upper bound is >= v; the trailing bucket catches
   everything above the last bound (and NaN, which fails every compare). *)
let bucket_index h v =
  let n = Array.length h.upper in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= h.upper.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_index h v) 1);
    atomic_add_float h.h_sum v;
    ignore (Atomic.fetch_and_add h.h_count 1)
  end

let histogram_count h = Atomic.get h.h_count
let histogram_sum h = Atomic.get h.h_sum

let histogram_buckets h =
  Array.init (Array.length h.upper) (fun i ->
      (h.upper.(i), Atomic.get h.buckets.(i)))

let histogram_overflow h = Atomic.get h.buckets.(Array.length h.upper)

let histogram_quantile h q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Psst_obs.histogram_quantile: q must be in [0, 1]";
  let total = histogram_count h in
  if total = 0 then nan
  else begin
    (* Rank of the q-th sample (1-based, ceiling), then the upper bound of
       the bucket it falls in — a conservative estimate: at least a q
       fraction of the observed values are <= the returned bound. *)
    let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let n = Array.length h.upper in
    let rec walk i seen =
      if i >= n then h.upper.(n - 1) (* overflow: clamp to the last bound *)
      else
        let seen = seen + Atomic.get h.buckets.(i) in
        if seen >= rank then h.upper.(i) else walk (i + 1) seen
    in
    walk 0 0
  end

let span h f =
  if Atomic.get enabled_flag then begin
    let t0 = now () in
    match f () with
    | r ->
      observe h (now () -. t0);
      r
    | exception e ->
      observe h (now () -. t0);
      raise e
  end
  else f ()

(* --- warning events --- *)

type warning = { code : string; message : string }

let warning_cap = 512
let warn_lock = Mutex.create ()
let warn_log : warning Queue.t = Queue.create ()
let warn_dropped = Atomic.make 0

let warn ~code message =
  if Atomic.get enabled_flag then begin
    incr (counter ("warn." ^ code));
    Mutex.lock warn_lock;
    if Queue.length warn_log < warning_cap then
      Queue.push { code; message } warn_log
    else Atomic.incr warn_dropped;
    Mutex.unlock warn_lock
  end

let warnings () =
  Mutex.lock warn_lock;
  let l = List.of_seq (Queue.to_seq warn_log) in
  Mutex.unlock warn_lock;
  l

let drain_warnings () =
  Mutex.lock warn_lock;
  let l = List.of_seq (Queue.to_seq warn_log) in
  Queue.clear warn_log;
  Mutex.unlock warn_lock;
  l

let warnings_dropped () = Atomic.get warn_dropped

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | C c -> Atomic.set c.cell 0
          | A a ->
            Atomic.set a.a_sum 0.;
            Atomic.set a.a_count 0
          | H h ->
            Array.iter (fun b -> Atomic.set b 0) h.buckets;
            Atomic.set h.h_sum 0.;
            Atomic.set h.h_count 0)
        registry);
  Mutex.lock warn_lock;
  Queue.clear warn_log;
  Mutex.unlock warn_lock;
  Atomic.set warn_dropped 0

(* --- JSON dump --- *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_string buf s =
  Buffer.add_char buf '"';
  json_escape buf s;
  Buffer.add_char buf '"'

let json_float buf x =
  if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.9g" x)
  else if x > 0. then Buffer.add_string buf "1e308"
  else if x < 0. then Buffer.add_string buf "-1e308"
  else Buffer.add_string buf "0"

let to_json buf =
  let metrics =
    with_registry (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let sep = ref false in
  let item f =
    if !sep then Buffer.add_string buf ", ";
    sep := true;
    f ()
  in
  Buffer.add_string buf "{\"counters\": {";
  sep := false;
  List.iter
    (function
      | name, C c ->
        item (fun () ->
            json_string buf name;
            Buffer.add_string buf ": ";
            Buffer.add_string buf (string_of_int (counter_value c)))
      | _ -> ())
    metrics;
  Buffer.add_string buf "}, \"accumulators\": {";
  sep := false;
  List.iter
    (function
      | name, A a ->
        item (fun () ->
            json_string buf name;
            Buffer.add_string buf
              (Printf.sprintf ": {\"count\": %d, \"sum\": " (acc_count a));
            json_float buf (acc_sum a);
            Buffer.add_string buf ", \"mean\": ";
            json_float buf (acc_mean a);
            Buffer.add_string buf "}")
      | _ -> ())
    metrics;
  Buffer.add_string buf "}, \"histograms\": {";
  sep := false;
  List.iter
    (function
      | name, H h ->
        item (fun () ->
            json_string buf name;
            Buffer.add_string buf
              (Printf.sprintf ": {\"count\": %d, \"sum\": " (histogram_count h));
            json_float buf (histogram_sum h);
            Buffer.add_string buf ", \"buckets\": [";
            let first = ref true in
            Array.iter
              (fun (le, n) ->
                if n > 0 then begin
                  if not !first then Buffer.add_string buf ", ";
                  first := false;
                  Buffer.add_string buf "{\"le\": ";
                  json_float buf le;
                  Buffer.add_string buf (Printf.sprintf ", \"count\": %d}" n)
                end)
              (histogram_buckets h);
            Buffer.add_string buf
              (Printf.sprintf "], \"overflow\": %d}" (histogram_overflow h)))
      | _ -> ())
    metrics;
  Buffer.add_string buf "}, \"warnings\": [";
  sep := false;
  List.iter
    (fun w ->
      item (fun () ->
          Buffer.add_string buf "{\"code\": ";
          json_string buf w.code;
          Buffer.add_string buf ", \"message\": ";
          json_string buf w.message;
          Buffer.add_string buf "}"))
    (warnings ());
  Buffer.add_string buf
    (Printf.sprintf "], \"warnings_dropped\": %d}" (warnings_dropped ()))

let to_json_string () =
  let buf = Buffer.create 2048 in
  to_json buf;
  Buffer.contents buf

(* --- per-query traces --- *)

module Trace = struct
  (* A trace belongs to the single task that built it (one per query);
     fields are plain mutables, kept in insertion order for the dump. *)
  type t = {
    label : string;
    mutable times : (string * float) list;  (* reverse insertion order *)
    mutable counts : (string * int) list;
    mutable flags : (string * bool) list;
  }

  let create label = { label; times = []; counts = []; flags = [] }
  let label t = t.label
  let set_time t name v = t.times <- (name, v) :: t.times
  let set_count t name v = t.counts <- (name, v) :: t.counts
  let set_flag t name v = t.flags <- (name, v) :: t.flags

  let span t name f =
    let t0 = now () in
    match f () with
    | r ->
      set_time t name (now () -. t0);
      r
    | exception e ->
      set_time t name (now () -. t0);
      raise e

  let times t = List.rev t.times
  let counts t = List.rev t.counts
  let flags t = List.rev t.flags

  let to_json buf t =
    Buffer.add_string buf "{\"label\": ";
    json_string buf t.label;
    Buffer.add_string buf ", \"times_s\": {";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        json_string buf name;
        Buffer.add_string buf ": ";
        json_float buf v)
      (times t);
    Buffer.add_string buf "}, \"counts\": {";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        json_string buf name;
        Buffer.add_string buf (Printf.sprintf ": %d" v))
      (counts t);
    Buffer.add_string buf "}, \"flags\": {";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        json_string buf name;
        Buffer.add_string buf (if v then ": true" else ": false"))
      (flags t);
    Buffer.add_string buf "}}"
end
