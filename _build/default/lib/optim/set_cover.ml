module Bitset = Psst_util.Bitset

type result = { chosen : int list; weight : float; uncovered : Bitset.t }

let greedy ~universe sets =
  Array.iter
    (fun (_, w) ->
      if w < 0. || Float.is_nan w then invalid_arg "Set_cover.greedy: weight")
    sets;
  let coverable = Bitset.create universe in
  Array.iter (fun (s, _) -> Bitset.union_into coverable s) sets;
  let uncovered_forever = Bitset.diff (Bitset.full universe) coverable in
  let covered = Bitset.copy uncovered_forever in
  let chosen = ref [] and weight = ref 0. in
  let used = Array.make (Array.length sets) false in
  while Bitset.cardinal covered < universe do
    (* gamma(s) = w(s) / |s \ covered|; pick the minimum. *)
    let best = ref None in
    Array.iteri
      (fun i (s, w) ->
        if not used.(i) then begin
          let gain = Bitset.cardinal (Bitset.diff s covered) in
          if gain > 0 then begin
            let gamma = w /. float_of_int gain in
            match !best with
            | Some (_, g) when g <= gamma -> ()
            | _ -> best := Some (i, gamma)
          end
        end)
      sets;
    match !best with
    | None ->
      (* Unreachable: everything coverable is covered before gains hit 0. *)
      assert false
    | Some (i, _) ->
      used.(i) <- true;
      let s, w = sets.(i) in
      Bitset.union_into covered s;
      chosen := i :: !chosen;
      weight := !weight +. w
  done;
  { chosen = List.rev !chosen; weight = !weight; uncovered = uncovered_forever }
