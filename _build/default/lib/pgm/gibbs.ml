module Prng = Psst_util.Prng

type config = { burn_in : int; thin : int; samples : int }

let default_config = { burn_in = 200; thin = 2; samples = 1000 }

let sample ?(config = default_config) rng factors ~evidence f =
  let vars =
    List.concat_map (fun fa -> Array.to_list (Factor.vars fa)) factors
    |> List.sort_uniq compare
  in
  let evidence_tbl = Hashtbl.create 8 in
  List.iter (fun (v, b) -> Hashtbl.replace evidence_tbl v b) evidence;
  let free = List.filter (fun v -> not (Hashtbl.mem evidence_tbl v)) vars in
  let state = Hashtbl.create 32 in
  List.iter (fun (v, b) -> Hashtbl.replace state v b) evidence;
  List.iter (fun v -> Hashtbl.replace state v (Prng.bernoulli rng 0.5)) free;
  let lookup v = match Hashtbl.find_opt state v with Some b -> b | None -> false in
  (* Factors touching each free variable, precomputed. *)
  let touching =
    List.map
      (fun v -> (v, List.filter (fun fa -> Factor.mentions fa v) factors))
      free
  in
  let resample (v, facs) =
    let weight b =
      Hashtbl.replace state v b;
      List.fold_left (fun acc fa -> acc *. Factor.value_of fa lookup) 1. facs
    in
    let w1 = weight true in
    let w0 = weight false in
    let z = w0 +. w1 in
    if z <= 0. then
      invalid_arg "Gibbs.sample: contradictory evidence (zero conditional)";
    Hashtbl.replace state v (Prng.float rng z < w1)
  in
  let sweep () = List.iter resample touching in
  for _ = 1 to config.burn_in do
    sweep ()
  done;
  for _ = 1 to config.samples do
    for _ = 1 to max 1 config.thin do
      sweep ()
    done;
    f lookup
  done

let marginals ?(config = default_config) rng factors ~evidence vars =
  let counts = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace counts v 0) vars;
  sample ~config rng factors ~evidence (fun lookup ->
      List.iter
        (fun v ->
          if lookup v then Hashtbl.replace counts v (1 + Hashtbl.find counts v))
        vars);
  List.map
    (fun v ->
      (v, float_of_int (Hashtbl.find counts v) /. float_of_int config.samples))
    vars
