(** Textual (de)serialisation of probabilistic graphs.

    Stable line-oriented format:

    {v
pgraph
v <vertex label>            (one line per vertex)
e <u> <v> <edge label>      (one line per edge, ids in order)
factor <v1,v2,...> <p0> <p1> ... <p_{2^k-1}>
end
    v}

    Factors are written in their chain order, so a parsed graph passes the
    same chain-consistency validation as a constructed one. Blank lines
    and [#]-comments are ignored. *)

val to_string : Pgraph.t -> string

(** Raises [Invalid_argument] on malformed input or on factor lists that
    fail {!Pgraph.make} validation. *)
val of_string : string -> Pgraph.t

(** Multi-graph archives: graphs concatenated, each terminated by its
    [end] line. *)

val write_many : out_channel -> Pgraph.t array -> unit
val read_many : in_channel -> Pgraph.t array

val save : string -> Pgraph.t array -> unit
val load : string -> Pgraph.t array
