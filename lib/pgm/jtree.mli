(** Junction tree over an ordered factor list (paper's verification step
    cites the junction-tree algorithm, ref [17]).

    Requirement (running intersection w.r.t. the list order): every factor
    after the first must have its already-covered variables contained in
    the scope of a {e single} earlier factor — its parent. Probabilistic
    graphs built by this library satisfy this by construction (DESIGN.md
    §3); {!build} raises [Invalid_argument] otherwise.

    Provides exact evidence probabilities and exact sampling from the
    posterior given evidence — the conditional draws required by the
    Karp-Luby style SMP estimator (paper Algorithm 5, line 5). *)

type t

val build : Factor.t list -> t

(** [evidence_prob t evidence] = Pr(evidence), exact. *)
val evidence_prob : t -> (int * bool) list -> float

(** [sample_posterior rng t ~evidence] draws a full assignment from
    Pr(· | evidence); [None] when the evidence has probability 0. Returns
    a lookup function (false for variables outside every scope) and the
    assignment pairs. *)
val sample_posterior :
  Psst_util.Prng.t ->
  t ->
  evidence:(int * bool) list ->
  ((int -> bool) * (int * bool) list) option

(** {1 Split calibration}

    The upward pass (conditioning every factor on the evidence and
    passing messages) depends only on the evidence, so callers drawing
    many posterior samples under the same evidence — the Karp–Luby loop —
    calibrate once and sample many times. [sample_calibrated rng t
    (calibrate t e)] consumes exactly the PRNG draws [sample_posterior
    rng t ~evidence:e] does, so seeded runs are bit-identical either
    way. A [calibrated] value is immutable and safe to share across
    domains. *)

type calibrated

(** [calibrate t evidence] runs the upward pass once. *)
val calibrate : t -> (int * bool) list -> calibrated

(** Pr(evidence), same float as {!evidence_prob} on the same evidence. *)
val calibrated_prob : calibrated -> float

(** Draw from Pr(· | evidence) using the precomputed beliefs. *)
val sample_calibrated :
  Psst_util.Prng.t -> t -> calibrated -> ((int -> bool) * (int * bool) list) option

(** Variables covered by the tree's scopes (sorted). *)
val variables : t -> int list
