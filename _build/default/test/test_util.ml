module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng
module Stats = Psst_util.Stats
module Combin = Psst_util.Combin

let test_bitset_basics () =
  let b = Bitset.create 130 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.add b 0;
  Bitset.add b 64;
  Bitset.add b 129;
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal b);
  Alcotest.(check bool) "mem 64" true (Bitset.mem b 64);
  Alcotest.(check bool) "mem 63" false (Bitset.mem b 63);
  Bitset.remove b 64;
  Alcotest.(check bool) "removed" false (Bitset.mem b 64);
  Alcotest.(check (list int)) "elements" [ 0; 129 ] (Bitset.elements b)

let test_bitset_out_of_range () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "add oob" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add b 10);
  Alcotest.check_raises "mem oob" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem b (-1)))

let test_bitset_set_ops () =
  let a = Bitset.of_list 100 [ 1; 5; 70 ] in
  let b = Bitset.of_list 100 [ 5; 70; 99 ] in
  Alcotest.(check (list int)) "union" [ 1; 5; 70; 99 ] (Bitset.elements (Bitset.union a b));
  Alcotest.(check (list int)) "inter" [ 5; 70 ] (Bitset.elements (Bitset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.elements (Bitset.diff a b));
  Alcotest.(check bool) "subset no" false (Bitset.subset a b);
  Alcotest.(check bool) "subset yes" true (Bitset.subset (Bitset.inter a b) a);
  Alcotest.(check bool) "disjoint no" false (Bitset.disjoint a b);
  Alcotest.(check bool) "disjoint yes" true
    (Bitset.disjoint (Bitset.of_list 100 [ 1 ]) (Bitset.of_list 100 [ 2 ]))

let test_bitset_full_clear () =
  let f = Bitset.full 67 in
  Alcotest.(check int) "full cardinal" 67 (Bitset.cardinal f);
  Bitset.clear f;
  Alcotest.(check bool) "cleared" true (Bitset.is_empty f)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" ~count:200
    QCheck.(small_list (int_bound 63))
    (fun l ->
      let sorted = List.sort_uniq compare l in
      Bitset.elements (Bitset.of_list 64 l) = sorted)

let prop_bitset_union_commutes =
  QCheck.Test.make ~name:"bitset union commutes" ~count:200
    QCheck.(pair (small_list (int_bound 63)) (small_list (int_bound 63)))
    (fun (l1, l2) ->
      let a = Bitset.of_list 64 l1 and b = Bitset.of_list 64 l2 in
      Bitset.equal (Bitset.union a b) (Bitset.union b a))

let prop_bitset_demorgan =
  QCheck.Test.make ~name:"bitset diff = inter with complement" ~count:200
    QCheck.(pair (small_list (int_bound 40)) (small_list (int_bound 40)))
    (fun (l1, l2) ->
      let a = Bitset.of_list 41 l1 and b = Bitset.of_list 41 l2 in
      let comp = Bitset.diff (Bitset.full 41) b in
      Bitset.equal (Bitset.diff a b) (Bitset.inter a comp))

let test_prng_deterministic () =
  let a = Prng.make 42 and b = Prng.make 42 in
  let xs = List.init 10 (fun _ -> Prng.int a 1000) in
  let ys = List.init 10 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys

let test_prng_categorical () =
  let rng = Prng.make 7 in
  let w = [| 0.0; 3.0; 1.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 4000 do
    let i = Prng.categorical rng w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(0);
  let ratio = float_of_int counts.(1) /. float_of_int counts.(2) in
  Alcotest.(check bool) "ratio near 3" true (ratio > 2.4 && ratio < 3.6)

let test_prng_categorical_invalid () =
  let rng = Prng.make 7 in
  Alcotest.check_raises "all zero weights"
    (Invalid_argument "Prng.categorical: non-positive weights") (fun () ->
      ignore (Prng.categorical rng [| 0.; 0. |]))

let test_prng_sample_without_replacement () =
  let rng = Prng.make 11 in
  let s = Prng.sample_without_replacement rng 5 10 in
  Alcotest.(check int) "size" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> Alcotest.(check bool) "range" true (x >= 0 && x < 10)) s

let test_prng_beta_mean () =
  let rng = Prng.make 3 in
  let n = 4000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Prng.beta rng ~a:2.0 ~b:3.0
  done;
  let m = !acc /. float_of_int n in
  (* Beta(2,3) has mean 0.4 *)
  Alcotest.(check bool) "beta mean" true (Float.abs (m -. 0.4) < 0.03)

let test_stats_basics () =
  Tgen.check_close "mean" 2.5 (Stats.mean [ 1.; 2.; 3.; 4. ]);
  Tgen.check_close "mean empty" 0. (Stats.mean []);
  Tgen.check_close ~eps:1e-6 "stddev" (sqrt (5. /. 3.))
    (Stats.stddev [ 1.; 2.; 3.; 4. ]);
  Tgen.check_close "p50" 2.5 (Stats.percentile 50. [ 1.; 2.; 3.; 4. ]);
  let lo, hi = Stats.min_max [ 3.; 1.; 2. ] in
  Tgen.check_close "min" 1. lo;
  Tgen.check_close "max" 3. hi

let test_stats_precision_recall () =
  let p, r = Stats.precision_recall ~returned:[ 1; 2; 3 ] ~truth:[ 2; 3; 4; 5 ] in
  Tgen.check_close "precision" (2. /. 3.) p;
  Tgen.check_close "recall" 0.5 r;
  let p, r = Stats.precision_recall ~returned:[] ~truth:[] in
  Tgen.check_close "empty precision" 1. p;
  Tgen.check_close "empty recall" 1. r

let test_combin () =
  Alcotest.(check int) "C(5,2) count" 10 (List.length (Combin.combinations 2 [ 1; 2; 3; 4; 5 ]));
  Alcotest.(check int) "binomial" 10 (Combin.binomial 5 2);
  Alcotest.(check int) "binomial edge" 1 (Combin.binomial 5 0);
  Alcotest.(check int) "binomial oob" 0 (Combin.binomial 5 7);
  Alcotest.(check int) "subsets" 8 (List.length (Combin.subsets [ 1; 2; 3 ]));
  Alcotest.(check int) "pairs" 3 (List.length (Combin.pairs [ 1; 2; 3 ]));
  let seen = ref [] in
  Combin.iter_combinations 2 [ 1; 2; 3 ] (fun c -> seen := c :: !seen);
  Alcotest.(check int) "iter combinations" 3 (List.length !seen);
  Alcotest.(check int) "cartesian" 6 (List.length (Combin.cartesian [ [ 1; 2 ]; [ 3; 4; 5 ] ]))

let prop_combinations_count =
  QCheck.Test.make ~name:"combinations agree with binomial" ~count:50
    QCheck.(pair (int_bound 8) (int_bound 8))
    (fun (n, k) ->
      let l = List.init n (fun i -> i) in
      List.length (Combin.combinations k l) = Combin.binomial n k)

let suite =
  [
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    Alcotest.test_case "bitset out of range" `Quick test_bitset_out_of_range;
    Alcotest.test_case "bitset set ops" `Quick test_bitset_set_ops;
    Alcotest.test_case "bitset full/clear" `Quick test_bitset_full_clear;
    QCheck_alcotest.to_alcotest prop_bitset_roundtrip;
    QCheck_alcotest.to_alcotest prop_bitset_union_commutes;
    QCheck_alcotest.to_alcotest prop_bitset_demorgan;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng categorical" `Quick test_prng_categorical;
    Alcotest.test_case "prng categorical invalid" `Quick test_prng_categorical_invalid;
    Alcotest.test_case "prng sample w/o replacement" `Quick
      test_prng_sample_without_replacement;
    Alcotest.test_case "prng beta mean" `Quick test_prng_beta_mean;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats precision/recall" `Quick test_stats_precision_recall;
    Alcotest.test_case "combinatorics" `Quick test_combin;
    QCheck_alcotest.to_alcotest prop_combinations_count;
  ]
