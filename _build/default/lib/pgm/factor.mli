(** Factors over binary variables, the building block of the paper's joint
    probability tables (JPTs, Def 2).

    A factor holds a non-negative table indexed by assignments to a sorted
    scope of integer variables (edge ids in this library). Assignments are
    encoded as bit masks local to the factor: bit [i] is the value of
    [vars.(i)]. Scopes are limited to {!max_vars} variables. *)

type t

(** Hard cap on scope size (table is [2^|vars|] floats). *)
val max_vars : int

(** [create vars data] with [vars] sorted and distinct,
    [Array.length data = 2 ^ Array.length vars], all entries [>= 0].
    Raises [Invalid_argument] otherwise. *)
val create : int array -> float array -> t

(** [of_fun vars f] tabulates [f] over local assignment masks. *)
val of_fun : int array -> (int -> float) -> t

(** Constant factor over the empty scope. *)
val scalar : float -> t

val vars : t -> int array
val mentions : t -> int -> bool

(** [value t mask] is the entry for local assignment [mask]. *)
val value : t -> int -> float

(** [value_of t assign] looks each scope variable up in the global
    assignment function. *)
val value_of : t -> (int -> bool) -> float

(** Pointwise product; scopes are merged. *)
val multiply : t -> t -> t

val multiply_all : t list -> t

(** [sum_out t v] eliminates variable [v] by summation. No-op if [v] is not
    in scope. *)
val sum_out : t -> int -> t

(** [marginal_onto t keep] sums out every variable not in [keep]. *)
val marginal_onto : t -> int list -> t

(** [condition t v b] restricts to [v = b], removing [v] from the scope.
    No-op if [v] is not in scope. *)
val condition : t -> int -> bool -> t

(** Total mass (sum of all entries). *)
val total : t -> float

(** [normalize t] scales entries to sum to 1. Raises [Invalid_argument] on
    zero total. *)
val normalize : t -> t

(** [sample rng t] draws a full assignment of the scope proportionally to
    the table; returns [(var, value)] pairs. *)
val sample : Psst_util.Prng.t -> t -> (int * bool) list

(** [iter_assignments t f] calls [f mask value] for every entry. *)
val iter_assignments : t -> (int -> float -> unit) -> unit

val pp : Format.formatter -> t -> unit

(** [equal_approx ~eps a b] compares scopes and tables entrywise. *)
val equal_approx : eps:float -> t -> t -> bool
