lib/simsearch/relax.ml: Canon Hashtbl Lgraph List Psst_util
