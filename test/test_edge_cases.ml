(* Edge-case coverage across modules: error paths, guards, degenerate
   inputs, budget exhaustion. *)

module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

(* --- Lgraph --- *)

let test_lgraph_of_string_errors () =
  let bad s = try ignore (Lgraph.of_string s); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "garbage line" true (bad "v 0\nblah\n");
  Alcotest.(check bool) "edge before both vertices" true (bad "v 0\ne 0 1 0\n");
  Alcotest.(check bool) "comments and blanks ok" true
    (not (bad "# header\nv 0\nv 1\n\ne 0 1 3\n"))

let test_lgraph_empty () =
  let g = Lgraph.vertices_only ~vlabels:[||] in
  Alcotest.(check int) "no vertices" 0 (Lgraph.num_vertices g);
  Alcotest.(check bool) "empty connected" true (Lgraph.is_connected g);
  Alcotest.(check (list (list int))) "no components" [] (Lgraph.components g);
  Alcotest.(check string) "empty canon" "" (Canon.code g)

let test_lgraph_with_empty_mask () =
  let g = Lgraph.create ~vlabels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  let sub, map = Lgraph.with_edge_mask g (Bitset.create 1) in
  Alcotest.(check int) "no edges" 0 (Lgraph.num_edges sub);
  Alcotest.(check int) "vertices kept" 2 (Lgraph.num_vertices sub);
  Alcotest.(check (array int)) "empty map" [||] map

let test_lgraph_find_edge_symmetric () =
  let g = Lgraph.create ~vlabels:[| 0; 1 |] ~edges:[ (1, 0, 7) ] in
  (match Lgraph.find_edge g 0 1 with
  | Some e -> Alcotest.(check int) "label" 7 e.label
  | None -> Alcotest.fail "edge lost");
  match Lgraph.find_edge g 1 0 with
  | Some _ -> ()
  | None -> Alcotest.fail "reversed lookup failed"

let test_canon_disconnected () =
  let a =
    Lgraph.create ~vlabels:[| 0; 0; 1; 1 |] ~edges:[ (0, 1, 0); (2, 3, 1) ]
  in
  let b =
    Lgraph.create ~vlabels:[| 1; 1; 0; 0 |] ~edges:[ (0, 1, 1); (2, 3, 0) ]
  in
  Alcotest.(check bool) "disconnected iso" true (Canon.equal_iso a b)

let test_canon_regular_graph () =
  (* A 6-cycle: vertex-transitive, colour refinement cannot split it; the
     canonical search must still terminate and be permutation invariant. *)
  let cycle perm =
    let edges = List.init 6 (fun i -> (perm.(i), perm.((i + 1) mod 6), 0)) in
    Lgraph.create ~vlabels:(Array.make 6 0) ~edges
  in
  let id = [| 0; 1; 2; 3; 4; 5 |] and shuffled = [| 3; 5; 0; 2; 4; 1 |] in
  Alcotest.(check string) "cycle canon invariant" (Canon.code (cycle id))
    (Canon.code (cycle shuffled))

(* --- Factor / pgm guards --- *)

let test_factor_scope_cap () =
  let vars = Array.init (Factor.max_vars + 1) (fun i -> i) in
  try
    ignore (Factor.of_fun vars (fun _ -> 1.));
    Alcotest.fail "scope cap not enforced"
  with Invalid_argument _ -> ()

let test_factor_normalize_zero () =
  let f = Factor.create [| 0 |] [| 0.; 0. |] in
  try
    ignore (Factor.normalize f);
    Alcotest.fail "zero total accepted"
  with Invalid_argument _ -> ()

let test_velim_no_factors () =
  Tgen.check_close "empty product partition" 1. (Velim.partition_value []);
  let m = Velim.marginal [] [] in
  Tgen.check_close "empty marginal" 1. (Factor.value m 0)

let test_marginal_onto_everything () =
  let f = Factor.create [| 1; 2 |] [| 0.1; 0.2; 0.3; 0.4 |] in
  let m = Factor.marginal_onto f [ 1; 2 ] in
  Alcotest.(check bool) "identity" true (Factor.equal_approx ~eps:0. f m)

(* --- Pgraph guards --- *)

let test_independent_probability_range () =
  let g = Lgraph.create ~vlabels:[| 0; 0 |] ~edges:[ (0, 1, 0) ] in
  try
    ignore (Pgraph.independent g [ (0, 1.5) ]);
    Alcotest.fail "p > 1 accepted"
  with Invalid_argument _ -> ()

let test_pgraph_jpt_with_certain_edges () =
  let skeleton =
    Lgraph.create ~vlabels:[| 0; 0; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0) ]
  in
  let g = Pgraph.make skeleton [ Factor.create [| 0 |] [| 0.3; 0.7 |] ] in
  (* Scope mixes an uncertain edge (0) and a certain edge (1). *)
  let jpt = Pgraph.jpt g [ 0; 1 ] in
  Tgen.check_close ~eps:1e-9 "mass on certain-present rows" 1.
    (Factor.value jpt 2 +. Factor.value jpt 3);
  Tgen.check_close ~eps:1e-9 "both present" 0.7 (Factor.value jpt 3)

(* --- Mcs / Distance budgets --- *)

let test_mcs_node_budget_is_lower_bound () =
  let rng = Prng.make 3 in
  let a = Tgen.random_connected_graph rng ~n:6 ~extra:4 ~vl:2 ~el:1 in
  let b = Tgen.random_connected_graph rng ~n:6 ~extra:4 ~vl:2 ~el:1 in
  let cheap = Mcs.common_edges ~node_budget:5 a b in
  let full = Mcs.common_edges a b in
  Alcotest.(check bool) "budgeted <= exact" true (cheap <= full);
  Alcotest.(check bool) "non-negative" true (cheap >= 0)

(* --- Clique budgets --- *)

let test_clique_budget_still_valid () =
  let rng = Prng.make 11 in
  let n = 12 in
  let weights = Array.init n (fun _ -> Prng.float rng 2.0) in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli rng 0.6 then edges := (u, v) :: !edges
    done
  done;
  let g = Mwc.make ~weights ~edges:!edges in
  let clique, w = Mwc.max_weight_clique ~node_budget:3 g in
  Alcotest.(check bool) "valid clique under budget" true (Mwc.is_clique g clique);
  let recomputed = List.fold_left (fun acc v -> acc +. weights.(v)) 0. clique in
  Tgen.check_close ~eps:1e-9 "weight consistent" recomputed w

(* --- Set cover / QP degenerate inputs --- *)

let test_set_cover_empty_universe () =
  let r = Set_cover.greedy ~universe:0 [||] in
  Alcotest.(check (list int)) "nothing chosen" [] r.chosen;
  Tgen.check_close "zero weight" 0. r.weight

let test_qp_no_sets () =
  let inst = { Qp.universe = 0; sets = [||] } in
  let sol = Qp.solve inst in
  Alcotest.(check bool) "feasible vacuously" true sol.feasible;
  Tgen.check_close "objective" 0. sol.objective

let test_qp_uncoverable_flagged () =
  let inst =
    { Qp.universe = 2; sets = [| (Bitset.of_list 2 [ 0 ], 0.5, 0.5) |] }
  in
  let sol = Qp.solve inst in
  Alcotest.(check bool) "infeasible flagged" false sol.feasible

(* --- Relax / structural --- *)

let test_relax_deletion_sets_count () =
  let rng = Prng.make 5 in
  let q = Tgen.random_connected_graph rng ~n:5 ~extra:2 ~vl:2 ~el:1 in
  Alcotest.(check int) "C(m,2)"
    (Psst_util.Combin.binomial (Lgraph.num_edges q) 2)
    (Relax.deletion_sets q ~delta:2)

let test_relax_negative_delta () =
  let q = Lgraph.create ~vlabels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  try
    ignore (Relax.relaxed_set q ~delta:(-1));
    Alcotest.fail "negative delta accepted"
  with Invalid_argument _ -> ()

let test_structural_verify_candidate () =
  let rng = Prng.make 7 in
  let g = Tgen.random_connected_graph rng ~n:6 ~extra:3 ~vl:2 ~el:1 in
  let q = Lgraph.delete_edges g [ 0 ] in
  let q, _ = Lgraph.drop_isolated q in
  Alcotest.(check bool) "subgraph verifies at delta 0" true
    (Structural.verify_candidate ~skeleton:(fun _ -> g) q ~delta:0 0)

(* --- Bounds / verification misc --- *)

let test_bounds_first_fit_ordered () =
  let rng = Prng.make 13 in
  let g = Tgen.random_pgraph rng ~n:6 ~extra:3 ~vl:2 ~el:1 in
  let gc = Pgraph.skeleton g in
  let feature =
    let e0 = Lgraph.edge gc 0 in
    let sub, _ =
      Lgraph.induced_subgraph gc [ e0.Lgraph.u; e0.Lgraph.v ]
    in
    sub
  in
  let config = { Bounds.default_config with tightest = false; mc_samples = 200 } in
  let b = Bounds.compute config g feature in
  Alcotest.(check bool) "interval ordered" true (b.Bounds.lower <= b.Bounds.upper +. 1e-9)

let test_verify_num_samples_monotone () =
  let s tau = Verify.num_samples { Verify.default_config with tau } in
  Alcotest.(check bool) "smaller tau, more samples" true
    (s 0.05 > s 0.1 && s 0.1 > s 0.2)

let test_smp_deterministic_given_seed () =
  let rng () = Prng.make 77 in
  let g =
    let r = Prng.make 17 in
    Tgen.random_pgraph r ~n:6 ~extra:2 ~vl:2 ~el:1
  in
  let q =
    let gc = Pgraph.skeleton g in
    let sub, _ = Lgraph.with_edge_mask gc (Bitset.of_list (Lgraph.num_edges gc) [ 0; 1 ]) in
    fst (Lgraph.drop_isolated sub)
  in
  let relaxed, _ = Relax.relaxed_set q ~delta:1 in
  Tgen.check_close ~eps:0. "same seed same estimate"
    (Verify.smp (rng ()) g relaxed)
    (Verify.smp (rng ()) g relaxed)

(* --- Transversal cap --- *)

let test_transversal_cap_respected () =
  (* 6 pairwise-disjoint 2-element sets: 2^6 = 64 minimal transversals. *)
  let sets = List.init 6 (fun i -> Bitset.of_list 12 [ 2 * i; (2 * i) + 1 ]) in
  let cuts = Transversal.minimal_hitting_sets ~cap:10 sets in
  Alcotest.(check bool) "cap respected" true (List.length cuts <= 10);
  List.iter
    (fun c ->
      Alcotest.(check bool) "still hitting" true (Transversal.is_hitting_set sets c))
    cuts

let test_query_config_validation () =
  let g = Lgraph.create ~vlabels:[| 0; 0 |] ~edges:[ (0, 1, 0) ] in
  let pg = Pgraph.independent g [ (0, 0.5) ] in
  let db = Query.index_database [| pg |] in
  let bad config =
    try
      ignore (Query.run db g config);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "epsilon 0 rejected" true
    (bad { Query.default_config with epsilon = 0. });
  Alcotest.(check bool) "epsilon > 1 rejected" true
    (bad { Query.default_config with epsilon = 1.5 });
  Alcotest.(check bool) "negative delta rejected" true
    (bad { Query.default_config with delta = -1 })

(* --- Cross-cutting properties --- *)

let prop_mined_features_connected =
  QCheck.Test.make ~name:"mined features with edges are connected" ~count:20
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 3) in
      let db =
        Array.init 4 (fun _ -> Tgen.random_connected_graph rng ~n:6 ~extra:2 ~vl:2 ~el:2)
      in
      let features =
        Selection.select db
          { Selection.default_params with max_edges = 3; beta = 0.2; gamma = 0.0 }
      in
      List.for_all
        (fun (f : Selection.feature) ->
          Lgraph.num_edges f.graph = 0 || Lgraph.is_connected f.graph)
        features)

let prop_relaxed_set_pairwise_noniso =
  QCheck.Test.make ~name:"relaxed queries are pairwise non-isomorphic" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 7) in
      let q = Tgen.random_connected_graph rng ~n:5 ~extra:2 ~vl:2 ~el:2 in
      let rqs, _ = Relax.relaxed_set q ~delta:1 in
      let codes = List.map Canon.code rqs in
      List.length codes = List.length (List.sort_uniq compare codes))

let prop_pruning_decisions_consistent =
  QCheck.Test.make ~name:"pruning decision consistent with its own bounds"
    ~count:8 QCheck.small_int
    (fun seed ->
      let rng0 = Prng.make (seed + 11) in
      let ds =
        Generator.generate
          { Generator.default_params with num_graphs = 6; seed = seed + 500;
            min_vertices = 6; max_vertices = 9; motif_edges = 3 }
      in
      let skeletons = Array.map Pgraph.skeleton ds.graphs in
      let features =
        Selection.select skeletons
          { Selection.default_params with max_edges = 2; beta = 0.2 }
      in
      let pmi =
        Pmi.build ~config:{ Bounds.default_config with mc_samples = 200 }
          ds.graphs features
      in
      let q, _ = Generator.extract_query rng0 ds ~edges:3 in
      let relaxed, _ = Relax.relaxed_set q ~delta:1 in
      let prepared = Pruning.prepare pmi ~relaxed in
      List.for_all
        (fun gi ->
          let r =
            Pruning.evaluate (Prng.make 3) pmi prepared ~graph:gi ~epsilon:0.5
              ~mode:Pruning.Optimized
          in
          match r.Pruning.decision with
          | `Pruned -> r.Pruning.usim < 0.5
          | `Accepted -> r.Pruning.usim >= 0.5 && r.Pruning.lsim_safe >= 0.5
          | `Candidate -> r.Pruning.usim >= 0.5 && r.Pruning.lsim_safe < 0.5)
        [ 0; 2; 4 ])

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile stays within min/max" ~count:100
    QCheck.(make Gen.(list_size (int_range 1 20) (float_bound_exclusive 10.)))
    (fun xs ->
      let lo, hi = Psst_util.Stats.min_max xs in
      let p = Psst_util.Stats.percentile 37.5 xs in
      lo -. 1e-9 <= p && p <= hi +. 1e-9)

let suite =
  [
    Alcotest.test_case "query config validation" `Quick test_query_config_validation;
    QCheck_alcotest.to_alcotest prop_mined_features_connected;
    QCheck_alcotest.to_alcotest prop_relaxed_set_pairwise_noniso;
    QCheck_alcotest.to_alcotest prop_pruning_decisions_consistent;
    QCheck_alcotest.to_alcotest prop_percentile_bounded;
    Alcotest.test_case "lgraph of_string errors" `Quick test_lgraph_of_string_errors;
    Alcotest.test_case "lgraph empty" `Quick test_lgraph_empty;
    Alcotest.test_case "lgraph empty mask" `Quick test_lgraph_with_empty_mask;
    Alcotest.test_case "lgraph find_edge symmetric" `Quick test_lgraph_find_edge_symmetric;
    Alcotest.test_case "canon disconnected" `Quick test_canon_disconnected;
    Alcotest.test_case "canon regular graph" `Quick test_canon_regular_graph;
    Alcotest.test_case "factor scope cap" `Quick test_factor_scope_cap;
    Alcotest.test_case "factor normalize zero" `Quick test_factor_normalize_zero;
    Alcotest.test_case "velim no factors" `Quick test_velim_no_factors;
    Alcotest.test_case "marginal_onto identity" `Quick test_marginal_onto_everything;
    Alcotest.test_case "independent probability range" `Quick
      test_independent_probability_range;
    Alcotest.test_case "jpt with certain edges" `Quick test_pgraph_jpt_with_certain_edges;
    Alcotest.test_case "mcs budget lower bound" `Quick test_mcs_node_budget_is_lower_bound;
    Alcotest.test_case "clique budget valid" `Quick test_clique_budget_still_valid;
    Alcotest.test_case "set cover empty universe" `Quick test_set_cover_empty_universe;
    Alcotest.test_case "qp no sets" `Quick test_qp_no_sets;
    Alcotest.test_case "qp uncoverable" `Quick test_qp_uncoverable_flagged;
    Alcotest.test_case "relax deletion count" `Quick test_relax_deletion_sets_count;
    Alcotest.test_case "relax negative delta" `Quick test_relax_negative_delta;
    Alcotest.test_case "structural verify candidate" `Quick test_structural_verify_candidate;
    Alcotest.test_case "bounds first-fit ordered" `Quick test_bounds_first_fit_ordered;
    Alcotest.test_case "verify samples monotone" `Quick test_verify_num_samples_monotone;
    Alcotest.test_case "smp deterministic" `Quick test_smp_deterministic_given_seed;
    Alcotest.test_case "transversal cap" `Quick test_transversal_cap_respected;
  ]
