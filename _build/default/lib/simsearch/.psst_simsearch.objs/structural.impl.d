lib/simsearch/structural.ml: Array Distance Embedding Lgraph List Psst_util Selection Vf2
