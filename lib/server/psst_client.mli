(** Client for the {!Psst_server} wire protocol — the substrate of
    [psst client], the differential serving tests and the bench load
    driver. One [t] is one connection; it is not thread-safe (use one
    connection per client thread).

    Failure handling (DESIGN.md §12): connection problems surface as
    {!Client_error} with a readable message — never a hang. [connect]
    bounds the TCP handshake with [connect_timeout_ms]; every call bounds
    its socket waits with [call_timeout_ms] ({!Psst_proto.Timed_out} past
    it, after which the stream position is untrustworthy — reconnect).
    {!run_all} retries transport breaks and retryable server rejections
    with capped exponential backoff and automatic reconnection; resending
    is safe because server answers are deterministic per
    (database, query, config). *)

type t

exception Client_error of string

(** [connect ?connect_timeout_ms ?call_timeout_ms endpoint]. Timeouts are
    in milliseconds; [0.] (the default) blocks indefinitely, matching the
    old behaviour. Raises {!Client_error} when the endpoint is unknown,
    unreachable, or does not accept within [connect_timeout_ms]. *)
val connect :
  ?connect_timeout_ms:float -> ?call_timeout_ms:float -> Psst_proto.endpoint -> t

val close : t -> unit

(** Raw frame I/O. [send_raw] writes arbitrary bytes (the fuzz tests use
    it to deliver corrupted frames); [half_close] shuts down the send
    side so the server sees EOF while the reply path stays open. *)
val send : t -> Psst_proto.request -> unit

val read_reply : t -> Psst_proto.reply
val send_raw : t -> string -> unit
val half_close : t -> unit

(** The connection's descriptor — for callers multiplexing their own
    waits ([select]) around {!read_reply}, e.g. the replication
    standby's stop-reactive stream reader. *)
val descriptor : t -> Unix.file_descr

(** [rpc c req] — send one request, read one reply. Low-level: transport
    exceptions ([End_of_file], [Proto_error], [Timed_out]) propagate. *)
val rpc : t -> Psst_proto.request -> Psst_proto.reply

(** [ping c] — round-trip; {!Client_error} if the server answers anything
    but [Pong]. *)
val ping : t -> unit

(** Full registry dump of the server process. *)
val stats_json : t -> string

(** Health snapshot of the server (uptime, queue depth, served /
    degraded / retryable-rejection counters, ingest epoch and lag). *)
val health : t -> Psst_proto.health

(** [set_tenant c name] — name this connection's tenant (version 5):
    subsequent queries and ingest batches on [c] are admitted and
    metered under [name]. {!Client_error} on an empty name or a
    rejection. *)
val set_tenant : t -> string -> unit

(** [add_graphs c graphs] — append [graphs] to the served database.
    [Ok r] means the batch is applied (and persisted when the server
    serves from a store file): the graphs hold global ids
    [r.base .. r.base + r.count - 1] and every query sent after this
    returns observes epoch [r.epoch]. [Error (code, msg)] carries the
    server's rejection; retryable codes (queue full, quota, shutdown,
    ingest disabled) left the database unchanged.

    [token] is the batch's idempotency key (protocol v6): resending a
    batch whose first ack was lost in transit, with the {e same} token,
    returns the original ack instead of ingesting twice. By default a
    fresh process-unique token is generated per call — pass an explicit
    one to tie a retry to its first attempt, or [""] to disable dedup. *)
val add_graphs :
  ?id:int ->
  ?token:string ->
  t ->
  Pgraph.t array ->
  (Psst_ingest.result, Psst_proto.error_code * string) result

(** [run_all c queries config] — pipeline all queries (ids [0..n-1]),
    then collect the replies and return them indexed by query position
    (replies may arrive out of order across micro-batches). Each slot is
    an [Answer] or an [Error_reply].

    [max_retries] (default 0) bounds recovery attempts: a transport break
    triggers reconnect-and-resend of the unanswered ids; a retryable
    error reply (queue full / shutdown / unavailable) is resubmitted.
    Each recovery round sleeps [backoff_ms] (default 50) doubled per
    attempt, capped at 2 s, with deterministic jitter. Past the budget a
    transport break raises {!Client_error}; retryable error replies are
    returned in their slots. *)
val run_all :
  ?max_retries:int ->
  ?backoff_ms:float ->
  t ->
  Lgraph.t list ->
  Query.config ->
  Psst_proto.reply array
