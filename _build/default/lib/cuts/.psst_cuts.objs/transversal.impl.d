lib/cuts/transversal.ml: List Psst_util
