(** VF2-style subgraph isomorphism (paper Def 5, ref [10]).

    Non-induced subgraph matching: every pattern edge must map to a target
    edge with equal label and matching endpoint labels; extra target edges
    are allowed. Patterns may be disconnected (relaxed queries can be). *)

(** [iter pattern target f] enumerates embeddings; [f] returns [true] to
    continue and [false] to stop the search. Embeddings are produced once
    per injective vertex map (the same target subgraph may appear under
    several maps when the pattern has automorphisms). *)
val iter : Lgraph.t -> Lgraph.t -> (Embedding.t -> bool) -> unit

(** [exists pattern target] tests [pattern ⊆iso target]. *)
val exists : Lgraph.t -> Lgraph.t -> bool

(** First embedding if any. *)
val find_one : Lgraph.t -> Lgraph.t -> Embedding.t option

(** [count pattern target] counts vertex-map embeddings (capped by
    [limit] when given). *)
val count : ?limit:int -> Lgraph.t -> Lgraph.t -> int

(** [distinct_embeddings ~cap pattern target] enumerates embeddings
    deduplicated by target edge set — the paper's embedding set [Ef]
    (ref [36]). Stops after collecting [cap] distinct subgraphs. *)
val distinct_embeddings :
  ?cap:int -> Lgraph.t -> Lgraph.t -> Embedding.t list
