let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

module Iset = Set.Make (Int)

let precision_recall ~returned ~truth =
  let r = Iset.of_list returned and t = Iset.of_list truth in
  let hit = Iset.cardinal (Iset.inter r t) in
  let precision =
    if Iset.is_empty r then 1.0
    else float_of_int hit /. float_of_int (Iset.cardinal r)
  in
  let recall =
    if Iset.is_empty t then 1.0
    else float_of_int hit /. float_of_int (Iset.cardinal t)
  in
  (precision, recall)

let mae xs ys =
  match (xs, ys) with
  | [], [] -> 0.
  | _ ->
    if List.length xs <> List.length ys then invalid_arg "Stats.mae: lengths";
    mean (List.map2 (fun a b -> Float.abs (a -. b)) xs ys)
