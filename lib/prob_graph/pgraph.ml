module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

type t = {
  skeleton : Lgraph.t;
  factors : Factor.t list;
  uncertain : int list; (* sorted *)
  jt_lock : Mutex.t; (* guards [jt]: graphs are shared across query domains *)
  mutable jt : Jtree.t option; (* built on first use *)
}

let make skeleton factors =
  let m = Lgraph.num_edges skeleton in
  List.iter
    (fun f ->
      Array.iter
        (fun v ->
          if v < 0 || v >= m then
            invalid_arg "Pgraph.make: factor scope mentions unknown edge")
        (Factor.vars f))
    factors;
  if not (Sampler.is_chain_consistent ~eps:1e-6 factors) then
    invalid_arg "Pgraph.make: factors are not chain-consistent";
  let uncertain =
    List.concat_map (fun f -> Array.to_list (Factor.vars f)) factors
    |> List.sort_uniq compare
  in
  { skeleton; factors; uncertain; jt_lock = Mutex.create (); jt = None }

let independent skeleton probs =
  let factors =
    List.map
      (fun (eid, p) ->
        if p < 0. || p > 1. then invalid_arg "Pgraph.independent: probability";
        Factor.create [| eid |] [| 1. -. p; p |])
      (List.sort compare probs)
  in
  make skeleton factors

let skeleton t = t.skeleton
let factors t = t.factors
let uncertain_edges t = t.uncertain

let jtree t =
  Mutex.protect t.jt_lock (fun () ->
      match t.jt with
      | Some jt -> jt
      | None ->
        let jt = Jtree.build t.factors in
        t.jt <- Some jt;
        jt)

let certain_edges t =
  let unc = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace unc e ()) t.uncertain;
  List.init (Lgraph.num_edges t.skeleton) (fun i -> i)
  |> List.filter (fun i -> not (Hashtbl.mem unc i))

let jpt t scope =
  let certain = certain_edges t in
  let in_scope_certain = List.filter (fun e -> List.mem e scope) certain in
  let uncertain_scope = List.filter (fun e -> not (List.mem e in_scope_certain)) scope in
  let marg = Velim.marginal t.factors uncertain_scope in
  let marg = if Factor.total marg > 0. then Factor.normalize marg else marg in
  (* Fold certain edges back in as deterministic 1-entries. *)
  List.fold_left
    (fun f e -> Factor.multiply f (Factor.create [| e |] [| 0.; 1. |]))
    marg in_scope_certain

let edge_marginal t eid =
  if List.mem eid t.uncertain then
    let f = Factor.normalize (Velim.marginal t.factors [ eid ]) in
    Factor.value f 1
  else 1.

let world_prob t present =
  let certain_ok =
    List.for_all (fun e -> Bitset.mem present e) (certain_edges t)
  in
  if not certain_ok then 0.
  else
    List.fold_left
      (fun acc f -> acc *. Factor.value_of f (Bitset.mem present))
      1. t.factors

let sample_world rng t =
  let lookup, _ = Sampler.sample rng t.factors in
  let m = Lgraph.num_edges t.skeleton in
  let mask = Bitset.create m in
  List.iter (Bitset.add mask) (certain_edges t);
  List.iter (fun e -> if lookup e then Bitset.add mask e) t.uncertain;
  let world, edge_map = Lgraph.with_edge_mask t.skeleton mask in
  (mask, world, edge_map)

let iter_worlds t f =
  let unc = Array.of_list t.uncertain in
  let k = Array.length unc in
  if k > 30 then invalid_arg "Pgraph.iter_worlds: too many uncertain edges";
  let m = Lgraph.num_edges t.skeleton in
  let base = Bitset.create m in
  List.iter (Bitset.add base) (certain_edges t);
  for mask = 0 to (1 lsl k) - 1 do
    let present = Bitset.copy base in
    Array.iteri (fun i e -> if mask land (1 lsl i) <> 0 then Bitset.add present e) unc;
    let p = world_prob t present in
    if p > 0. then f present p
  done

let to_independent t =
  let probs = List.map (fun e -> (e, edge_marginal t e)) t.uncertain in
  independent t.skeleton probs

let table_entries t =
  List.fold_left (fun acc f -> acc + (1 lsl Array.length (Factor.vars f))) 0 t.factors

let pp ppf t =
  Format.fprintf ppf "@[<v>pgraph:@,%a@,%d factors over %d uncertain edges@]"
    Lgraph.pp t.skeleton (List.length t.factors)
    (List.length t.uncertain)
