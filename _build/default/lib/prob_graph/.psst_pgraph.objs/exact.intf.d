lib/prob_graph/exact.mli: Lgraph Pgraph Psst_util
