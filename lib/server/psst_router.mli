(** Scatter-gather router over shard workers (DESIGN.md §14).

    Fronts N {!Psst_server} workers — each serving one shard of a
    {!Psst_shard} deployment — behind the same wire protocol a plain
    worker speaks, so {!Psst_client} and [psst client] work against a
    router unchanged. Per request the router sends the query to every
    worker first, then gathers, so the shards execute concurrently.

    Merging: T-PS answers are the sorted union of the per-shard answer
    lists with pruning counters summed and flags OR'd; top-k lists merge
    threshold-aware ({!Psst_shard.merge_topk}). Because every per-graph
    verdict is computed under PRNG streams keyed on the global graph id,
    the merged replies are bit-identical to a monolithic server's — the
    differential tests pin this at several shard counts.

    Degradation ladder per worker and request (DESIGN.md §12):

    - transport break / per-shard timeout → reconnect and retry, up to
      [retries] times;
    - still unreachable (or the worker rejected with a retryable error):
      when [local_fallback] yields the shard's database, answer that
      shard from its PMI bounds ({!Query.run_bounds_only}) and flag the
      merged answer [degraded] — a superset of the exact answer whose
      healthy shards are still exact;
    - otherwise the request fails with one clean retryable
      [Unavailable].

    Top-k never falls back to bounds (a ranking missing one shard's
    graphs is wrong, not degraded): a dead worker fails the request
    cleanly. A worker's non-retryable error ([Malformed], [Deadline],
    [Internal]) is propagated to the client as-is.

    [Get_health] answers with the router's own counters plus one
    {!Psst_proto.worker_health} slot per worker (protocol version >= 4);
    [Ping] and [Get_stats] are answered locally. The ["router.scatter"]
    chaos site lets tests make a worker appear faulted or slow from the
    router's side without touching the worker process. *)

type config = {
  endpoint : Psst_proto.endpoint;  (** where the router listens *)
  workers : Psst_proto.endpoint array;
      (** one worker per shard, indexed by shard id *)
  shard_timeout_ms : float;
      (** per-worker connect and call timeout; [0.] blocks indefinitely *)
  retries : int;  (** reconnect-and-resend attempts per worker per request *)
  local_fallback : (int -> Query.database option) option;
      (** [lookup sid] returns the shard's database for the bounds-only
          fallback ([None] = shard not locally available). Typically
          backed by lazy {!Psst_shard.load_shard} calls; consulted only
          when a worker is down, from the reader thread of the failing
          request. *)
}

(** [workers] endpoints, no timeouts, 1 retry, no local fallback. *)
val default_config :
  endpoint:Psst_proto.endpoint -> workers:Psst_proto.endpoint list -> config

type t

(** [start config] binds the endpoint and spawns the serving threads.
    Workers are dialled lazily per reader thread, so a router starts
    (and answers [Get_health] with [reachable = false] slots) before its
    workers do. Raises [Invalid_argument] on an empty worker list. *)
val start : config -> t

(** The bound endpoint — for [Tcp (host, 0)] this carries the actual
    kernel-assigned port. *)
val endpoint : t -> Psst_proto.endpoint

(** Graceful drain: admission closes (late requests get a retryable
    [Shutdown] reply), requests already executing finish their scatter,
    then connections close and threads join. Idempotent. *)
val stop : t -> unit

(** True once {!stop} has completed. *)
val stopped : t -> bool

(** Replies sent since {!start} (error replies included). *)
val served : t -> int

(** In-process health snapshot: dials every worker once (bounded by
    [shard_timeout_ms]) and aggregates the roster, exactly as the
    [Get_health] RPC does. *)
val health : t -> Psst_proto.health
