test/test_mining.ml: Alcotest Array Embedding Lgraph List Psst_util QCheck QCheck_alcotest Selection Tgen Vf2
