lib/pgm/gibbs.ml: Array Factor Hashtbl List Psst_util
