lib/pgm/sampler.mli: Factor Psst_util
