(** Wall-clock timing for the experiment harness. *)

(** [time f] runs [f ()] and returns its result with elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_only f] runs [f ()] for its effects and returns elapsed seconds. *)
val time_only : (unit -> unit) -> float

(** A restartable stopwatch accumulating elapsed time across laps. *)
type stopwatch

val stopwatch : unit -> stopwatch
val start : stopwatch -> unit
val stop : stopwatch -> unit
val elapsed : stopwatch -> float
