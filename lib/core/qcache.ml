module Bitset = Psst_util.Bitset

(* Cross-query verification cache (DESIGN.md §13).

   Keys are strings built from the query's canonical code
   (Canon.code, so the key space buckets by isomorphism class) plus its
   exact textual presentation (Lgraph.to_string) plus the parameters the
   cached artifact depends on. The presentation component is load-bearing
   for bit-identity: capped VF2 enumeration and relaxation order depend
   on vertex/edge numbering, so two isomorphic but differently-presented
   queries may legitimately produce different (equally sound) embedding
   samples — they must not share entries.

   Every cached artifact is a deterministic, PRNG-free function of
   (query presentation, database, parameters) — or, for final SSP values,
   of those plus the verifier config and seed, which Query.run derives
   per candidate as Prng.stream ~seed gi independently of pool size. So a
   hit returns exactly the value a cold run would recompute, and cached
   runs stay bit-identical to cold runs under fixed seeds.

   Invalidation is by physical identity of the database's [graphs] array
   and PMI: Query.add_graphs, index_database and load_database all
   allocate fresh arrays/PMI values, so arming a scope against a changed
   database flushes every table (counter cache.flush).

   All operations take one mutex; compute callbacks run outside the lock
   (two domains may race to fill the same key — both compute the same
   deterministic value, first insert wins). *)

let m_hit = Psst_obs.counter "cache.hit"
let m_miss = Psst_obs.counter "cache.miss"
let m_evict = Psst_obs.counter "cache.evict"
let m_flush = Psst_obs.counter "cache.flush"
let h_key = Psst_obs.histogram "cache.key_s"

(* Bounded FIFO table. Insertion order approximates recency well enough
   for the workloads here (repeated hot queries re-enter after a flush);
   eviction is O(1) amortised. *)
module Tbl = struct
  type 'v t = {
    tbl : (string, 'v) Hashtbl.t;
    order : string Queue.t;
    cap : int;
  }

  let create cap = { tbl = Hashtbl.create 64; order = Queue.create (); cap }
  let find t k = Hashtbl.find_opt t.tbl k
  let remove t k = Hashtbl.remove t.tbl k

  let add t k v =
    if not (Hashtbl.mem t.tbl k) then begin
      while Hashtbl.length t.tbl >= t.cap do
        match Queue.take_opt t.order with
        | None -> Hashtbl.reset t.tbl (* unreachable: queue covers tbl *)
        | Some old ->
          (* Stale queue entries (removed for poisoning) pop silently. *)
          if Hashtbl.mem t.tbl old then begin
            Hashtbl.remove t.tbl old;
            Psst_obs.incr m_evict
          end
      done;
      Hashtbl.replace t.tbl k v;
      Queue.add k t.order
    end

  let clear t =
    Hashtbl.reset t.tbl;
    Queue.clear t.order

  let length t = Hashtbl.length t.tbl
end

type t = {
  mu : Mutex.t;
  mutable owner_graphs : Corpus.t;
  mutable owner_pmi : Pmi.t option;
  relaxed : (Lgraph.t list * [ `Complete | `Truncated ]) Tbl.t;
  prepared : Pruning.prepared Tbl.t;
  emb : Bitset.t list Tbl.t;
  sprep : Verify.smp_prep Tbl.t;
  ssp : float Tbl.t;
}

let create ?(query_cap = 128) ?(value_cap = 16384) () =
  (* Caps below 1 would make [Tbl.add]'s eviction loop unsatisfiable
     (an empty table still exceeds the cap). *)
  if query_cap < 1 then invalid_arg "Qcache.create: query_cap must be >= 1";
  if value_cap < 1 then invalid_arg "Qcache.create: value_cap must be >= 1";
  {
    mu = Mutex.create ();
    owner_graphs = Corpus.of_array [||];
    owner_pmi = None;
    relaxed = Tbl.create query_cap;
    prepared = Tbl.create query_cap;
    emb = Tbl.create value_cap;
    sprep = Tbl.create value_cap;
    ssp = Tbl.create value_cap;
  }

(* Callers must hold [t.mu]. *)
let flush_unlocked t =
  Tbl.clear t.relaxed;
  Tbl.clear t.prepared;
  Tbl.clear t.emb;
  Tbl.clear t.sprep;
  Tbl.clear t.ssp

let flush t = Mutex.protect t.mu (fun () -> flush_unlocked t)

let entries t =
  Mutex.protect t.mu (fun () ->
      Tbl.length t.relaxed + Tbl.length t.prepared + Tbl.length t.emb
      + Tbl.length t.sprep + Tbl.length t.ssp)

type scope = { cache : t; qkey : string }

let scope t ~graphs ~pmi ~q ~delta ~relax_cap =
  let qkey =
    Psst_obs.span h_key (fun () ->
        Printf.sprintf "%s\x01%s\x01d=%d;rc=%d" (Canon.code q) (Lgraph.to_string q)
          delta relax_cap)
  in
  Mutex.protect t.mu (fun () ->
      let same_owner =
        t.owner_graphs == graphs
        && match t.owner_pmi with Some p -> p == pmi | None -> false
      in
      if not same_owner then begin
        if t.owner_pmi <> None then Psst_obs.incr m_flush;
        flush_unlocked t;
        t.owner_graphs <- graphs;
        t.owner_pmi <- Some pmi
      end);
  { cache = t; qkey }

(* Shared lookup-or-compute: the lock covers only table access, never the
   compute callback; exceptions from [compute] (injected faults, budget
   aborts) propagate without storing anything. *)
let memo tbl s key compute =
  let t = s.cache in
  let cached = Mutex.protect t.mu (fun () -> Tbl.find tbl key) in
  match cached with
  | Some v ->
    Psst_obs.incr m_hit;
    v
  | None ->
    Psst_obs.incr m_miss;
    let v = compute () in
    Mutex.protect t.mu (fun () -> Tbl.add tbl key v);
    v

let relaxed s ~compute = memo s.cache.relaxed s s.qkey compute
let prepared s ~compute = memo s.cache.prepared s s.qkey compute

let emb_key s ~graph ~emb_cap =
  Printf.sprintf "%s\x02g=%d;cap=%d" s.qkey graph emb_cap

let embeddings s ~graph ~emb_cap ~compute =
  memo s.cache.emb s (emb_key s ~graph ~emb_cap) compute

let smp_prep s ~graph ~emb_cap ~compute =
  memo s.cache.sprep s (emb_key s ~graph ~emb_cap) compute

let verifier_key ~epsilon ~seed verifier =
  match verifier with
  | `Exact -> Printf.sprintf "exact"
  | `Smp (vc : Verify.config) ->
    if vc.adaptive then
      (* Adaptive estimates depend on the decision threshold (the
         CI-clears-epsilon stop), so epsilon joins the key. *)
      Printf.sprintf "smp;t=%h;x=%h;c=%d;s=%d;ad;e=%h" vc.tau vc.xi vc.emb_cap
        seed epsilon
    else Printf.sprintf "smp;t=%h;x=%h;c=%d;s=%d" vc.tau vc.xi vc.emb_cap seed

(* Final SSP values are validated on read: a poisoned entry (NaN or out
   of [0,1] — SSP is a probability) is evicted and recomputed instead of
   served (DESIGN.md §13). *)
let ssp s ~graph ~vkey ~compute =
  let t = s.cache in
  let key = Printf.sprintf "%s\x03g=%d;%s" s.qkey graph vkey in
  let cached =
    Mutex.protect t.mu (fun () ->
        match Tbl.find t.ssp key with
        | Some v when Float.is_nan v || v < 0. || v > 1. ->
          Tbl.remove t.ssp key;
          Psst_obs.incr m_evict;
          Psst_obs.warn ~code:"cache.poisoned"
            (Printf.sprintf "evicted out-of-range cached SSP %h for graph %d" v
               graph);
          None
        | found -> found)
  in
  match cached with
  | Some v ->
    Psst_obs.incr m_hit;
    v
  | None ->
    Psst_obs.incr m_miss;
    let v = compute () in
    Mutex.protect t.mu (fun () -> Tbl.add t.ssp key v);
    v

let poison_ssp t value =
  Mutex.protect t.mu (fun () ->
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.ssp.Tbl.tbl [] in
      List.iter (fun k -> Hashtbl.replace t.ssp.Tbl.tbl k value) keys;
      List.length keys)
