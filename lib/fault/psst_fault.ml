type action = Fail | Delay of float | Partial_io | Bitflip

exception Injected of string

(* A site's schedule must not depend on other sites or on call
   interleaving across domains, so each site runs its own splitmix64
   stream over an atomic state (CAS advance: safe from pool domains,
   and sequential callers see a reproducible decision sequence). *)

type site = {
  name : string;
  counter : Psst_obs.counter;  (* "fault.<name>" *)
  cfg : (action * float) option Atomic.t;
  state : int64 Atomic.t;
}

let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()
let armed = Atomic.make false

(* Current plan and seed, so a site created after [arm] still picks its
   config up. Guarded by [registry_mutex]. *)
let current_plan : (string * action * float) list ref = ref []
let current_seed = ref 0

let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let seed_state ~seed name =
  (* Mix the global seed into the name hash so different seeds give
     different schedules at every site. *)
  Int64.add (fnv1a64 name) (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)

let splitmix_next st =
  let rec advance () =
    let old = Atomic.get st in
    let z = Int64.add old 0x9E3779B97F4A7C15L in
    if Atomic.compare_and_set st old z then z else advance ()
  in
  let z = advance () in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform st =
  (* Top 53 bits -> [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (splitmix_next st) 11)
  /. 9007199254740992.

let apply_plan_to s =
  (* Caller holds [registry_mutex]. *)
  let cfg =
    List.find_map
      (fun (n, a, p) -> if n = s.name then Some (a, p) else None)
      !current_plan
  in
  Atomic.set s.cfg cfg;
  Atomic.set s.state (seed_state ~seed:!current_seed s.name)

let site name =
  Mutex.lock registry_mutex;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
      let s =
        {
          name;
          counter = Psst_obs.counter ("fault." ^ name);
          cfg = Atomic.make None;
          state = Atomic.make 0L;
        }
      in
      apply_plan_to s;
      Hashtbl.add registry name s;
      s
  in
  Mutex.unlock registry_mutex;
  s

let site_name s = s.name

let sites () =
  Mutex.lock registry_mutex;
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort compare names

let enabled () = Atomic.get armed

let validate_plan plan =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _, p) ->
      if not (p >= 0. && p <= 1.) then
        invalid_arg
          (Printf.sprintf "Psst_fault.arm: probability %g at site %s outside [0, 1]"
             p n);
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Psst_fault.arm: duplicate site %s" n);
      Hashtbl.add seen n ())
    plan

let arm ?(seed = 0) plan =
  validate_plan plan;
  Mutex.lock registry_mutex;
  current_plan := plan;
  current_seed := seed;
  Hashtbl.iter (fun _ s -> apply_plan_to s) registry;
  Atomic.set armed (plan <> []);
  Mutex.unlock registry_mutex

let disarm () = arm []

let fire s =
  if not (Atomic.get armed) then None
  else
    match Atomic.get s.cfg with
    | None -> None
    | Some (action, prob) ->
      if uniform s.state < prob then begin
        Psst_obs.incr s.counter;
        Some action
      end
      else None

let inject s =
  match fire s with
  | None -> ()
  | Some (Delay t) -> Unix.sleepf t
  | Some (Fail | Partial_io | Bitflip) ->
    raise (Injected (Printf.sprintf "injected fault at site %s" s.name))

let draw_int s n =
  if n <= 0 then invalid_arg "Psst_fault.draw_int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (splitmix_next s.state) 1)
                  (Int64.of_int n))

(* --- plan syntax: site=kind[:arg][@prob], comma-separated --- *)

let bad fmt = Printf.ksprintf failwith fmt

let parse_entry entry =
  match String.index_opt entry '=' with
  | None -> bad "fault spec %S: expected site=kind[:arg][@prob]" entry
  | Some eq ->
    let name = String.trim (String.sub entry 0 eq) in
    if name = "" then bad "fault spec %S: empty site name" entry;
    let rhs = String.sub entry (eq + 1) (String.length entry - eq - 1) in
    let kindspec, prob =
      match String.index_opt rhs '@' with
      | None -> (rhs, 1.)
      | Some at ->
        let p = String.sub rhs (at + 1) (String.length rhs - at - 1) in
        let p =
          match float_of_string_opt (String.trim p) with
          | Some p when p >= 0. && p <= 1. -> p
          | _ -> bad "fault spec %S: probability %S not in [0, 1]" entry p
        in
        (String.sub rhs 0 at, p)
    in
    let kind, arg =
      match String.index_opt kindspec ':' with
      | None -> (String.trim kindspec, None)
      | Some c ->
        ( String.trim (String.sub kindspec 0 c),
          Some
            (String.trim
               (String.sub kindspec (c + 1) (String.length kindspec - c - 1))) )
    in
    let action =
      match (kind, arg) with
      | "fail", None -> Fail
      | "partial", None -> Partial_io
      | "bitflip", None -> Bitflip
      | "delay", None -> Delay 0.01
      | "delay", Some ms -> (
        match float_of_string_opt ms with
        | Some ms when ms >= 0. -> Delay (ms /. 1000.)
        | _ -> bad "fault spec %S: bad delay %S (milliseconds)" entry ms)
      | k, _ ->
        bad "fault spec %S: unknown kind %S (fail|delay[:ms]|partial|bitflip)"
          entry k
    in
    (name, action, prob)

let parse_plan spec =
  String.split_on_char ',' spec
  |> List.filter_map (fun e ->
         let e = String.trim e in
         if e = "" then None else Some (parse_entry e))

let arm_from_env () =
  match Sys.getenv_opt "PSST_FAULTS" with
  | None -> false
  | Some spec when String.trim spec = "" -> false
  | Some spec ->
    let plan = parse_plan spec in
    let seed =
      match Sys.getenv_opt "PSST_FAULT_SEED" with
      | None -> 0
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some i -> i
        | None -> bad "PSST_FAULT_SEED=%S is not an integer" s)
    in
    (match arm ~seed plan with
    | () -> ()
    | exception Invalid_argument msg -> failwith msg);
    plan <> []
