test/test_iso.ml: Alcotest Array Distance Embedding Lgraph List Mcs Psst_util QCheck QCheck_alcotest Tgen Ullmann Vf2
