module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

let triangle label =
  Lgraph.create ~vlabels:[| label; label; label |]
    ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ]

let path3 () =
  Lgraph.create ~vlabels:[| 0; 0; 0 |] ~edges:[ (0, 1, 0); (1, 2, 0) ]

let g002 () =
  Lgraph.create
    ~vlabels:[| 0; 0; 1; 1; 2 |]
    ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0); (2, 3, 0); (2, 4, 0) ]

let test_vf2_basic () =
  let labelled_triangle =
    Lgraph.create ~vlabels:[| 0; 0; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ]
  in
  Alcotest.(check bool) "triangle in g002" true (Vf2.exists labelled_triangle (g002 ()));
  Alcotest.(check bool) "path in triangle" true (Vf2.exists (path3 ()) (triangle 0));
  Alcotest.(check bool) "triangle not in path" false (Vf2.exists (triangle 0) (path3 ()))

let test_vf2_labels_matter () =
  let p = Lgraph.create ~vlabels:[| 0; 1 |] ~edges:[ (0, 1, 5) ] in
  let t_ok = Lgraph.create ~vlabels:[| 1; 0; 2 |] ~edges:[ (0, 1, 5); (1, 2, 0) ] in
  let t_bad_elabel = Lgraph.create ~vlabels:[| 1; 0 |] ~edges:[ (0, 1, 6) ] in
  let t_bad_vlabel = Lgraph.create ~vlabels:[| 2; 0 |] ~edges:[ (0, 1, 5) ] in
  Alcotest.(check bool) "edge label match" true (Vf2.exists p t_ok);
  Alcotest.(check bool) "edge label mismatch" false (Vf2.exists p t_bad_elabel);
  Alcotest.(check bool) "vertex label mismatch" false (Vf2.exists p t_bad_vlabel)

let test_vf2_disconnected_pattern () =
  let p =
    Lgraph.create ~vlabels:[| 0; 0; 1; 1 |] ~edges:[ (0, 1, 0); (2, 3, 1) ]
  in
  let t =
    Lgraph.create ~vlabels:[| 0; 0; 1; 1; 2 |]
      ~edges:[ (0, 1, 0); (2, 3, 1); (1, 2, 2) ]
  in
  Alcotest.(check bool) "disconnected pattern matches" true (Vf2.exists p t)

let test_vf2_counts () =
  (* A triangle pattern in a triangle target: 6 vertex maps, 1 edge set. *)
  let t = triangle 0 in
  Alcotest.(check int) "vertex maps" 6 (Vf2.count t t);
  Alcotest.(check int) "distinct subgraphs" 1
    (List.length (Vf2.distinct_embeddings t t));
  Alcotest.(check int) "count limit" 3 (Vf2.count ~limit:3 t t)

let test_vf2_embedding_edges () =
  (* Path a(0)-b(1)-b(1) in g002: middle vertex must be v2, ends v0/v1 and
     v3 — exactly two distinct embeddings. *)
  let p = Lgraph.create ~vlabels:[| 0; 1; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0) ] in
  let embs = Vf2.distinct_embeddings p (g002 ()) in
  List.iter
    (fun e -> Alcotest.(check int) "each embedding uses 2 edges" 2
        (Bitset.cardinal e.Embedding.edges))
    embs;
  Alcotest.(check int) "two embeddings" 2 (List.length embs)

let test_embedding_disjoint () =
  let a = { Embedding.vmap = [| 0 |]; edges = Bitset.of_list 5 [ 0; 1 ] } in
  let b = { Embedding.vmap = [| 1 |]; edges = Bitset.of_list 5 [ 2 ] } in
  let c = { Embedding.vmap = [| 2 |]; edges = Bitset.of_list 5 [ 1; 2 ] } in
  Alcotest.(check bool) "disjoint" true (Embedding.edge_disjoint a b);
  Alcotest.(check bool) "overlap" true (Embedding.overlaps a c);
  Alcotest.(check bool) "same edges" true
    (Embedding.same_edges b { b with vmap = [| 9 |] })

let prop_vf2_agrees_with_bruteforce =
  QCheck.Test.make ~name:"vf2 = brute force on random graphs" ~count:300
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 101) in
      let target = Tgen.random_graph rng ~n:6 ~m:7 ~vl:2 ~el:2 in
      let pattern = Tgen.random_graph rng ~n:3 ~m:3 ~vl:2 ~el:2 in
      Vf2.exists pattern target = Tgen.brute_subiso pattern target)

let prop_vf2_reflexive =
  QCheck.Test.make ~name:"every graph embeds in itself" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 7) in
      let g = Tgen.random_connected_graph rng ~n:6 ~extra:3 ~vl:3 ~el:2 in
      Vf2.exists g g)

let prop_vf2_subgraph_embeds =
  QCheck.Test.make ~name:"edge-deleted subgraph embeds in original" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 23) in
      let g = Tgen.random_connected_graph rng ~n:6 ~extra:4 ~vl:2 ~el:2 in
      let eid = Prng.int rng (Lgraph.num_edges g) in
      let sub = Lgraph.delete_edges g [ eid ] in
      Vf2.exists sub g)

let test_mcs_identical () =
  let g = g002 () in
  Alcotest.(check int) "mcs with self = all edges" 5 (Mcs.common_edges g g);
  Alcotest.(check int) "distance 0" 0 (Distance.dis g g)

let test_mcs_triangle_path () =
  (* mcs(triangle, path3) = 2 edges. *)
  Alcotest.(check int) "triangle vs path" 2 (Mcs.common_edges (triangle 0) (path3 ()));
  Alcotest.(check int) "distance 1" 1 (Distance.dis (triangle 0) (path3 ()))

let test_mcs_label_blocked () =
  let a = Lgraph.create ~vlabels:[| 0; 0 |] ~edges:[ (0, 1, 1) ] in
  let b = Lgraph.create ~vlabels:[| 0; 0 |] ~edges:[ (0, 1, 2) ] in
  Alcotest.(check int) "no common edge" 0 (Mcs.common_edges a b);
  Alcotest.(check int) "distance = |q|" 1 (Distance.dis a b)

let test_mcs_stop_at () =
  let g = g002 () in
  Alcotest.(check bool) "stop_at returns early >= target" true
    (Mcs.common_edges ~stop_at:2 g g >= 2)

let test_distance_within () =
  Alcotest.(check bool) "within 1" true (Distance.within (triangle 0) (path3 ()) ~delta:1);
  Alcotest.(check bool) "not within 0" false
    (Distance.within (triangle 0) (path3 ()) ~delta:0);
  Alcotest.(check bool) "negative delta" false
    (Distance.within (triangle 0) (path3 ()) ~delta:(-1));
  let labelled_path =
    Lgraph.create ~vlabels:[| 0; 1; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0) ]
  in
  Alcotest.(check bool) "subgraph within 0" true
    (Distance.within labelled_path (g002 ()) ~delta:0)

let prop_distance_within_agrees_with_dis =
  QCheck.Test.make ~name:"within <-> dis <= delta" ~count:150 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 31) in
      let q = Tgen.random_connected_graph rng ~n:4 ~extra:1 ~vl:2 ~el:2 in
      let g = Tgen.random_connected_graph rng ~n:6 ~extra:3 ~vl:2 ~el:2 in
      let delta = Prng.int rng 4 in
      Distance.within q g ~delta = (Distance.dis q g <= delta))

let prop_vf2_implies_distance_zero =
  QCheck.Test.make ~name:"q ⊆iso g implies dis(q,g)=0" ~count:150 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 41) in
      let g = Tgen.random_connected_graph rng ~n:6 ~extra:3 ~vl:2 ~el:2 in
      let vs = Psst_util.Prng.sample_without_replacement rng 4 (Lgraph.num_vertices g) in
      let q, _ = Lgraph.induced_subgraph g vs in
      (not (Vf2.exists q g)) || Distance.dis q g = 0)

let prop_distance_lower_bound_sound =
  QCheck.Test.make ~name:"label-multiset bound never exceeds distance" ~count:150
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 53) in
      let q = Tgen.random_connected_graph rng ~n:4 ~extra:2 ~vl:2 ~el:3 in
      let g = Tgen.random_connected_graph rng ~n:5 ~extra:2 ~vl:2 ~el:3 in
      Distance.lower_bound q g <= Distance.dis q g)

(* --- flat-representation equivalence ---

   Vf2 now runs on the contiguous [Lgraph.Flat] image. The module below
   is a frozen copy of the historical list-based search; the properties
   pin that the rewrite enumerates the SAME embeddings in the SAME order
   — not merely the same set. Order matters downstream: capped
   enumeration ([distinct_embeddings ~cap]) keeps a prefix, and the
   verification cache keys assume that prefix is reproducible. *)

module Reference_vf2 = struct
  let matching_order pattern =
    let n = Lgraph.num_vertices pattern in
    let order = Array.make n (-1) in
    let placed = Array.make n false in
    let degree v = Lgraph.degree pattern v in
    let next_seed () =
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if (not placed.(v)) && (!best < 0 || degree v > degree !best) then
          best := v
      done;
      !best
    in
    let idx = ref 0 in
    while !idx < n do
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if not placed.(v) then
          let touches =
            List.exists (fun (w, _) -> placed.(w)) (Lgraph.neighbors pattern v)
          in
          if touches && (!best < 0 || degree v > degree !best) then best := v
      done;
      let v = if !best >= 0 then !best else next_seed () in
      order.(!idx) <- v;
      placed.(v) <- true;
      incr idx
    done;
    order

  let iter pattern target f =
    let np = Lgraph.num_vertices pattern in
    let nt = Lgraph.num_vertices target in
    if np > nt || Lgraph.num_edges pattern > Lgraph.num_edges target then ()
    else begin
      let order = matching_order pattern in
      let pmap = Array.make np (-1) in
      let used = Array.make nt false in
      let stop = ref false in
      let rec go depth =
        if !stop then ()
        else if depth = np then begin
          let edges = Bitset.create (Lgraph.num_edges target) in
          Array.iter
            (fun (e : Lgraph.edge) ->
              match Lgraph.find_edge target pmap.(e.u) pmap.(e.v) with
              | Some te -> Bitset.add edges te.id
              | None -> assert false)
            (Lgraph.edges pattern);
          if not (f { Embedding.vmap = Array.copy pmap; edges }) then
            stop := true
        end
        else begin
          let pu = order.(depth) in
          let matched_neighbors =
            Lgraph.neighbors pattern pu
            |> List.filter_map (fun (w, eid) ->
                   if pmap.(w) >= 0 then
                     Some (pmap.(w), (Lgraph.edge pattern eid).label)
                   else None)
          in
          let candidates =
            match matched_neighbors with
            | (tv_anchor, elab) :: _ ->
              Lgraph.neighbors target tv_anchor
              |> List.filter_map (fun (tw, teid) ->
                     if (Lgraph.edge target teid).label = elab then Some tw
                     else None)
            | [] -> List.init nt (fun v -> v)
          in
          let feasible tv =
            (not used.(tv))
            && Lgraph.vertex_label pattern pu = Lgraph.vertex_label target tv
            && Lgraph.degree target tv >= Lgraph.degree pattern pu
            && List.for_all
                 (fun (tw, elab) ->
                   match Lgraph.find_edge target tv tw with
                   | Some te -> te.label = elab
                   | None -> false)
                 matched_neighbors
          in
          List.iter
            (fun tv ->
              if (not !stop) && feasible tv then begin
                pmap.(pu) <- tv;
                used.(tv) <- true;
                go (depth + 1);
                pmap.(pu) <- -1;
                used.(tv) <- false
              end)
            (List.sort_uniq compare candidates)
        end
      in
      let vh_p = Lgraph.vertex_label_hist pattern
      and vh_t = Lgraph.vertex_label_hist target in
      let eh_p = Lgraph.edge_label_hist pattern
      and eh_t = Lgraph.edge_label_hist target in
      if
        Lgraph.hist_missing vh_p vh_t = 0 && Lgraph.hist_missing eh_p eh_t = 0
      then go 0
    end

  let all pattern target =
    let out = ref [] in
    iter pattern target (fun e ->
        out := e :: !out;
        true);
    List.rev !out

  let distinct_embeddings ~cap pattern target =
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    let n = ref 0 in
    iter pattern target (fun e ->
        let key = Bitset.elements e.Embedding.edges in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          out := e :: !out;
          incr n
        end;
        !n < cap);
    List.rev !out
end

(* Sequence-comparable image of an embedding list: vertex maps plus edge
   ids, in enumeration order. *)
let emb_trace embs =
  List.map
    (fun (e : Embedding.t) ->
      (Array.to_list e.Embedding.vmap, Bitset.elements e.Embedding.edges))
    embs

let vf2_all pattern target =
  let out = ref [] in
  Vf2.iter pattern target (fun e ->
      out := e :: !out;
      true);
  List.rev !out

let prop_flat_same_embeddings_same_order =
  QCheck.Test.make
    ~name:"flat vf2 enumerates reference embeddings in reference order"
    ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 601) in
      let target = Tgen.random_graph rng ~n:7 ~m:9 ~vl:2 ~el:2 in
      let pattern = Tgen.random_connected_graph rng ~n:4 ~extra:1 ~vl:2 ~el:2 in
      emb_trace (vf2_all pattern target)
      = emb_trace (Reference_vf2.all pattern target))

let prop_flat_same_on_permuted_pattern =
  (* Renumbering a pattern changes the search tree; the flat engine must
     track the reference through every presentation, not just canonical
     ones. *)
  QCheck.Test.make ~name:"flat vf2 = reference on permuted presentations"
    ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 607) in
      let target = Tgen.random_graph rng ~n:7 ~m:9 ~vl:2 ~el:2 in
      let base = Tgen.random_connected_graph rng ~n:4 ~extra:1 ~vl:2 ~el:2 in
      let pattern = Tgen.permuted rng base in
      emb_trace (vf2_all pattern target)
      = emb_trace (Reference_vf2.all pattern target))

let prop_flat_capped_prefix_agrees =
  (* The capped distinct enumeration keeps a prefix of the stream — both
     engines must keep the SAME prefix. *)
  QCheck.Test.make ~name:"flat vf2 capped distinct prefix = reference"
    ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 613) in
      let target = Tgen.random_graph rng ~n:7 ~m:10 ~vl:2 ~el:1 in
      let pattern = Tgen.random_connected_graph rng ~n:3 ~extra:1 ~vl:2 ~el:1 in
      let cap = 1 + Prng.int rng 3 in
      emb_trace (Vf2.distinct_embeddings ~cap pattern target)
      = emb_trace (Reference_vf2.distinct_embeddings ~cap pattern target))

(* --- Ullmann cross-validation --- *)

let test_ullmann_basic () =
  let labelled_triangle =
    Lgraph.create ~vlabels:[| 0; 0; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ]
  in
  Alcotest.(check bool) "triangle in g002" true
    (Ullmann.exists labelled_triangle (g002 ()));
  Alcotest.(check bool) "triangle not in path" false
    (Ullmann.exists (triangle 0) (path3 ()));
  Alcotest.(check bool) "path in triangle" true (Ullmann.exists (path3 ()) (triangle 0))

let test_ullmann_find_one () =
  let p = Lgraph.create ~vlabels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  match Ullmann.find_one p (g002 ()) with
  | None -> Alcotest.fail "edge must embed"
  | Some emb ->
    Alcotest.(check int) "one edge used" 1
      (Psst_util.Bitset.cardinal emb.Embedding.edges)

let prop_ullmann_agrees_with_vf2 =
  QCheck.Test.make ~name:"ullmann = vf2 (existence)" ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 401) in
      let target = Tgen.random_graph rng ~n:7 ~m:9 ~vl:2 ~el:2 in
      let pattern = Tgen.random_graph rng ~n:4 ~m:4 ~vl:2 ~el:2 in
      Ullmann.exists pattern target = Vf2.exists pattern target)

let prop_ullmann_count_agrees =
  QCheck.Test.make ~name:"ullmann = vf2 (embedding count)" ~count:150
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 409) in
      let target = Tgen.random_graph rng ~n:6 ~m:8 ~vl:2 ~el:1 in
      let pattern = Tgen.random_connected_graph rng ~n:3 ~extra:1 ~vl:2 ~el:1 in
      Ullmann.count pattern target = Vf2.count pattern target)

let prop_ullmann_embeddings_valid =
  QCheck.Test.make ~name:"ullmann embeddings are real subgraph matches"
    ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 419) in
      let target = Tgen.random_graph rng ~n:6 ~m:8 ~vl:2 ~el:2 in
      let pattern = Tgen.random_connected_graph rng ~n:3 ~extra:0 ~vl:2 ~el:2 in
      let ok = ref true in
      Ullmann.iter pattern target (fun emb ->
          Array.iteri
            (fun pu tv ->
              if Lgraph.vertex_label pattern pu <> Lgraph.vertex_label target tv
              then ok := false)
            emb.Embedding.vmap;
          Array.iter
            (fun (e : Lgraph.edge) ->
              match
                Lgraph.find_edge target emb.Embedding.vmap.(e.u)
                  emb.Embedding.vmap.(e.v)
              with
              | Some te -> if te.label <> e.label then ok := false
              | None -> ok := false)
            (Lgraph.edges pattern);
          true);
      !ok)

let suite =
  [
    Alcotest.test_case "vf2 basic" `Quick test_vf2_basic;
    Alcotest.test_case "vf2 labels matter" `Quick test_vf2_labels_matter;
    Alcotest.test_case "vf2 disconnected pattern" `Quick test_vf2_disconnected_pattern;
    Alcotest.test_case "vf2 counts" `Quick test_vf2_counts;
    Alcotest.test_case "vf2 embedding edges" `Quick test_vf2_embedding_edges;
    Alcotest.test_case "embedding disjointness" `Quick test_embedding_disjoint;
    QCheck_alcotest.to_alcotest prop_vf2_agrees_with_bruteforce;
    QCheck_alcotest.to_alcotest prop_vf2_reflexive;
    QCheck_alcotest.to_alcotest prop_vf2_subgraph_embeds;
    Alcotest.test_case "mcs identical" `Quick test_mcs_identical;
    Alcotest.test_case "mcs triangle/path" `Quick test_mcs_triangle_path;
    Alcotest.test_case "mcs label blocked" `Quick test_mcs_label_blocked;
    Alcotest.test_case "mcs stop_at" `Quick test_mcs_stop_at;
    Alcotest.test_case "distance within" `Quick test_distance_within;
    QCheck_alcotest.to_alcotest prop_distance_within_agrees_with_dis;
    QCheck_alcotest.to_alcotest prop_vf2_implies_distance_zero;
    QCheck_alcotest.to_alcotest prop_distance_lower_bound_sound;
    QCheck_alcotest.to_alcotest prop_flat_same_embeddings_same_order;
    QCheck_alcotest.to_alcotest prop_flat_same_on_permuted_pattern;
    QCheck_alcotest.to_alcotest prop_flat_capped_prefix_agrees;
    Alcotest.test_case "ullmann basic" `Quick test_ullmann_basic;
    Alcotest.test_case "ullmann find_one" `Quick test_ullmann_find_one;
    QCheck_alcotest.to_alcotest prop_ullmann_agrees_with_vf2;
    QCheck_alcotest.to_alcotest prop_ullmann_count_agrees;
    QCheck_alcotest.to_alcotest prop_ullmann_embeddings_valid;
  ]
