lib/prob_graph/pgraph_io.mli: Pgraph
