lib/prob_graph/pgraph.ml: Array Factor Format Hashtbl Jtree Lgraph List Psst_util Sampler Velim
