examples/road_network.ml: Array Factor Lgraph List Pgraph Printf Psst_util Query Relax String Verify
