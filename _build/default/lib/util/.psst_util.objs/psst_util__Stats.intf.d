lib/util/stats.mli:
