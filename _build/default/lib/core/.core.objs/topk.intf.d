lib/core/topk.mli: Lgraph Query
