(* Benchmark entry point.

   Usage: main.exe [fig9|fig10|fig11|fig12|fig13|fig14|ablation|parallel|micro|all] [--quick]

   Each figN target regenerates the corresponding figure of the paper's
   evaluation section (§6) at a scaled-down workload (see DESIGN.md §4-5 and
   EXPERIMENTS.md); [micro] runs Bechamel micro-benchmarks of the kernel
   operations. No argument runs everything. *)

open Bechamel

let micro ppf =
  Format.fprintf ppf "@.=== Micro-benchmarks (Bechamel, ns/run) ===@.";
  let scale = { Experiments.quick_scale with db_size = 20 } in
  let ds =
    Generator.generate
      {
        Generator.default_params with
        num_graphs = scale.Experiments.db_size;
        min_vertices = 10;
        max_vertices = 14;
        motif_edges = 6;
        seed = 2012;
      }
  in
  let g = ds.Generator.graphs.(0) in
  let gc = Pgraph.skeleton g in
  let rng = Psst_util.Prng.make 1 in
  let q, _ = Generator.extract_query rng ds ~edges:5 in
  let relaxed, _ = Relax.relaxed_set q ~delta:1 in
  let skeletons = Array.map Pgraph.skeleton ds.Generator.graphs in
  let features =
    Selection.select skeletons { Selection.default_params with max_edges = 2 }
  in
  let feature =
    (List.find
       (fun (f : Selection.feature) -> Lgraph.num_edges f.graph >= 1)
       features)
      .graph
  in
  let clique_graph =
    let n = 14 in
    let weights = Array.init n (fun i -> 0.1 +. float_of_int (i mod 5)) in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if (u + v) mod 3 <> 0 then edges := (u, v) :: !edges
      done
    done;
    Mwc.make ~weights ~edges:!edges
  in
  let smp_rng = Psst_util.Prng.make 5 in
  let smp_cfg = { Verify.default_config with tau = 0.25 } in
  let tests =
    Test.make_grouped ~name:"psst"
      [
        Test.make ~name:"vf2-exists" (Staged.stage (fun () -> Vf2.exists q gc));
        Test.make ~name:"vf2-embeddings"
          (Staged.stage (fun () -> Vf2.distinct_embeddings ~cap:32 feature gc));
        Test.make ~name:"sample-world"
          (Staged.stage (fun () -> Pgraph.sample_world smp_rng g));
        Test.make ~name:"world-prob"
          (Staged.stage
             (let mask, _, _ = Pgraph.sample_world smp_rng g in
              fun () -> Pgraph.world_prob g mask));
        Test.make ~name:"max-weight-clique"
          (Staged.stage (fun () -> Mwc.max_weight_clique clique_graph));
        Test.make ~name:"canonical-code" (Staged.stage (fun () -> Canon.code q));
        Test.make ~name:"mcs-distance"
          (Staged.stage (fun () -> Distance.within q gc ~delta:1));
        Test.make ~name:"smp-verify"
          (Staged.stage (fun () -> Verify.smp ~config:smp_cfg smp_rng g relaxed));
      ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some (x :: _) -> x | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) -> Format.fprintf ppf "%-30s %14.1f ns/run@." name ns)
    rows

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let scale =
    if quick then Experiments.quick_scale else Experiments.default_scale
  in
  let targets =
    List.filter (fun a -> a <> "--quick") args
    |> function [] -> [ "all" ] | l -> l
  in
  let ppf = Format.std_formatter in
  let run = function
    | "fig9" -> Experiments.fig9 ~scale ppf
    | "fig10" -> Experiments.fig10 ~scale ppf
    | "fig11" -> Experiments.fig11 ~scale ppf
    | "fig12" -> Experiments.fig12 ~scale ppf
    | "fig13" -> Experiments.fig13 ~scale ppf
    | "fig14" -> Experiments.fig14 ~scale ppf
    | "ablation" | "ablations" -> Experiments.ablations ~scale ppf
    | "parallel" -> Experiments.parallel ~scale ppf
    | "micro" -> micro ppf
    | "all" ->
      Experiments.all ~scale ppf;
      micro ppf
    | other ->
      Format.fprintf ppf "unknown target %S (expected fig9..fig14, ablation, parallel, micro, all)@."
        other;
      exit 2
  in
  List.iter run targets;
  Format.pp_print_flush ppf ()
