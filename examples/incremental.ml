(* Library-extensions tour: persistence, incremental maintenance and
   top-k search.

   A monitoring scenario: a corpus of probabilistic interaction networks
   is indexed once, saved to disk, reloaded, extended with freshly
   observed networks without re-indexing, and mined with top-k queries.

   Run with:  dune exec examples/incremental.exe *)

module Prng = Psst_util.Prng

let () =
  (* Day 0: an initial corpus, indexed and archived. *)
  let params =
    { Generator.default_params with num_graphs = 30; min_vertices = 8;
      max_vertices = 12; motif_edges = 6; seed = 99 }
  in
  let ds = Generator.generate params in
  let initial = Array.sub ds.graphs 0 24 in
  let path = Filename.temp_file "psst_corpus" ".pgdb" in
  Pgraph_io.save path initial;
  Printf.printf "archived %d graphs to %s\n" (Array.length initial) path;

  (* Later: reload and index. *)
  let loaded = Pgraph_io.load path in
  Sys.remove path;
  Printf.printf "reloaded %d graphs; skeletons preserved: %b\n"
    (Array.length loaded)
    (Array.for_all2
       (fun a b -> Lgraph.equal_structure (Pgraph.skeleton a) (Pgraph.skeleton b))
       initial loaded);
  let db = ref (Query.index_database loaded) in
  Printf.printf "indexed: %d features, %d PMI entries\n"
    (List.length !db.Query.features)
    (Pmi.filled_entries !db.Query.pmi);

  (* New observations arrive: extend the database in place — no re-mining,
     no index rebuild; bounds for the new graphs are computed on demand. *)
  db := Query.add_graphs !db (Array.sub ds.graphs 24 6);
  Printf.printf "after incremental adds: %d graphs, %d PMI entries\n"
    (Corpus.length !db.Query.graphs)
    (Pmi.filled_entries !db.Query.pmi);

  (* Top-k: which networks most probably contain this motif? *)
  let rng = Prng.make 7 in
  let q, org = Generator.extract_query ~from_motif:true rng ds ~edges:5 in
  let config = { Query.default_config with delta = 1; verifier = `Exact } in
  let out = Topk.run !db q ~k:5 config in
  Printf.printf
    "top-5 for a motif of organism %d (%d candidates, %d verified, %d \
     skipped by bounds):\n"
    org out.Topk.stats.structural_candidates out.Topk.stats.verified
    out.Topk.stats.bound_skipped;
  List.iter
    (fun (h : Topk.hit) ->
      Printf.printf "  graph %2d (organism %d%s)  Pr = %.4f\n" h.graph
        ds.organisms.(h.graph)
        (match ds.grafts.(h.graph) with
        | Some o -> Printf.sprintf ", graft of %d" o
        | None -> "")
        h.ssp)
    out.Topk.hits;

  (* The threshold pipeline over the extended database agrees with the
     exact ground truth. *)
  let tps = { config with epsilon = 0.5 } in
  let answers = (Query.run !db q tps).Query.answers in
  let truth = Query.ground_truth !db q tps in
  Printf.printf "T-PS(0.5) answers %s ground truth: [%s]\n"
    (if answers = truth then "match" else "DIFFER from")
    (String.concat "; " (List.map string_of_int answers))
