(** Junction tree over an ordered factor list (paper's verification step
    cites the junction-tree algorithm, ref [17]).

    Requirement (running intersection w.r.t. the list order): every factor
    after the first must have its already-covered variables contained in
    the scope of a {e single} earlier factor — its parent. Probabilistic
    graphs built by this library satisfy this by construction (DESIGN.md
    §3); {!build} raises [Invalid_argument] otherwise.

    Provides exact evidence probabilities and exact sampling from the
    posterior given evidence — the conditional draws required by the
    Karp-Luby style SMP estimator (paper Algorithm 5, line 5). *)

type t

val build : Factor.t list -> t

(** [evidence_prob t evidence] = Pr(evidence), exact. *)
val evidence_prob : t -> (int * bool) list -> float

(** [sample_posterior rng t ~evidence] draws a full assignment from
    Pr(· | evidence); [None] when the evidence has probability 0. Returns
    a lookup function (false for variables outside every scope) and the
    assignment pairs. *)
val sample_posterior :
  Psst_util.Prng.t ->
  t ->
  evidence:(int * bool) list ->
  ((int -> bool) * (int * bool) list) option

(** Variables covered by the tree's scopes (sorted). *)
val variables : t -> int list
