(* Continuous ingest (DESIGN.md §16): the serving pins that make live
   Add_graphs trustworthy. Snapshot consistency — a query admitted
   before a batch never sees the new graphs, a query sent after the ack
   always does, and both halves are bit-identical to offline Query.run
   against the corresponding epoch's database (at 1 and 4 domains, cold
   and warm cache). Admission — queue and tenant-quota overflows reject
   with retryable errors, metered per tenant, with the database
   unchanged. Persistence — every acked batch is a crash-atomic delta
   side file, the base store is byte-identical before and after, and an
   offline Psst_ingest.load reconstructs exactly the database the server
   ended on (stale deltas after a base rebuild are refused, not
   replayed). *)

module P = Psst_proto
module Client = Psst_client
module Server = Psst_server
module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 400 }
let fast_smp = { Verify.default_config with tau = 0.3 }

let make_db seed n =
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
        max_vertices = 10; motif_edges = 3 }
  in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  (ds, db)

(* Fresh graphs to ingest, disjoint from any generated corpus's seed. *)
let make_batch seed n =
  (Generator.generate { Generator.default_params with num_graphs = n; seed })
    .Generator.graphs

let base_config =
  { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Smp fast_smp }

let with_server ?chain ?(domains = 1) ?(ingest_queue_cap = 1024)
    ?(tenant_quota = 0) db f =
  let path = Filename.temp_file "psst_test_ing" ".sock" in
  let srv =
    Server.start ?chain
      {
        (Server.default_config (P.Unix_socket path)) with
        Server.domains;
        ingest_queue_cap;
        tenant_quota;
      }
      db
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f srv)

let with_client srv f =
  let c = Client.connect (Server.endpoint srv) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let check_answer ~what expect = function
  | P.Answer { answers; stats; _ } ->
    Alcotest.(check (list int))
      (what ^ " answers") expect.Query.answers answers;
    Alcotest.(check bool)
      (what ^ " pruning counters") true
      (stats = P.stats_of_query expect.Query.stats)
  | _ -> Alcotest.failf "%s: expected Answer" what

(* --- the snapshot-consistency differential pin --- *)

(* One connection; the server's reader admits frames in order. Pipeline
   the queries, send Add_graphs, then — only after the Ingest_ack came
   back — the same queries again. The first wave was admitted before the
   batch, so it must match offline epoch 0; the second was sent after
   the ack, so it must match offline Query.add_graphs + Query.run. The
   epoch-0 replies that interleave before the ack arrive with ids < k;
   collect everything by id. *)
let check_ingest_differential ~domains () =
  let ds, db0 = make_db 431 25 in
  let batch = make_batch 907 8 in
  let db1 = Query.add_graphs db0 batch in
  let rng = Prng.make 53 in
  let queries =
    List.init 3 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let k = List.length queries in
  let offline0 = List.map (fun q -> Query.run db0 q base_config) queries in
  let offline1 = List.map (fun q -> Query.run db1 q base_config) queries in
  with_server ~domains db0 (fun srv ->
      with_client srv (fun c ->
          let replies = Hashtbl.create 16 in
          let collect () =
            match Client.read_reply c with
            | P.Answer { id; _ } as r ->
              Hashtbl.replace replies id r;
              `Answer
            | P.Ingest_ack { id; epoch; base; count } ->
              Alcotest.(check int) "ack id" 99 id;
              Alcotest.(check int) "ack epoch" 1 epoch;
              Alcotest.(check int) "ack base"
                (Corpus.length db0.Query.graphs) base;
              Alcotest.(check int) "ack count" (Array.length batch) count;
              `Ack
            | _ -> Alcotest.fail "unexpected reply kind"
          in
          List.iteri
            (fun i q ->
              Client.send c (P.Run { id = i; query = q; config = base_config }))
            queries;
          Client.send c (P.Add_graphs { id = 99; token = ""; graphs = batch });
          (* Drain until the ack; epoch-0 answers may land first. *)
          let acked = ref false in
          while not !acked do
            if collect () = `Ack then acked := true
          done;
          (* Cold second wave, then a warm repeat: the Qcache keys on the
             physical database, so the swapped epoch must serve fresh
             (yet bit-identical) answers, not stale epoch-0 ones. *)
          List.iteri
            (fun i q ->
              Client.send c
                (P.Run { id = k + i; query = q; config = base_config }))
            queries;
          List.iteri
            (fun i q ->
              Client.send c
                (P.Run { id = (2 * k) + i; query = q; config = base_config }))
            queries;
          for _ = 1 to 3 * k - Hashtbl.length replies do
            ignore (collect ())
          done;
          List.iteri
            (fun i off ->
              check_answer
                ~what:(Printf.sprintf "epoch-0 query %d @ %d domains" i domains)
                off
                (Hashtbl.find replies i))
            offline0;
          List.iteri
            (fun i off ->
              check_answer
                ~what:(Printf.sprintf "epoch-1 query %d @ %d domains" i domains)
                off
                (Hashtbl.find replies (k + i));
              check_answer
                ~what:
                  (Printf.sprintf "epoch-1 warm query %d @ %d domains" i domains)
                off
                (Hashtbl.find replies ((2 * k) + i)))
            offline1;
          Alcotest.(check int) "server epoch" 1 (Server.epoch srv)))

let test_ingest_differential_sequential () =
  check_ingest_differential ~domains:1 ()

let test_ingest_differential_parallel () =
  check_ingest_differential ~domains:4 ()

(* Multiple batches stack: each ack's id range starts where the previous
   epoch ended, and the final database equals offline folds. *)
let test_ingest_stacks () =
  let ds, db0 = make_db 433 15 in
  let b1 = make_batch 911 5 and b2 = make_batch 913 7 in
  let db2 = Query.add_graphs (Query.add_graphs db0 b1) b2 in
  let rng = Prng.make 59 in
  let q = fst (Generator.extract_query rng ds ~edges:4) in
  let offline = Query.run db2 q base_config in
  with_server db0 (fun srv ->
      with_client srv (fun c ->
          (match Client.add_graphs c b1 with
          | Ok r ->
            Alcotest.(check int) "batch 1 base" 15 r.Psst_ingest.base;
            Alcotest.(check int) "batch 1 epoch" 1 r.Psst_ingest.epoch
          | Error _ -> Alcotest.fail "batch 1 rejected");
          (match Client.add_graphs c b2 with
          | Ok r ->
            Alcotest.(check int) "batch 2 base" 20 r.Psst_ingest.base;
            Alcotest.(check int) "batch 2 epoch" 2 r.Psst_ingest.epoch
          | Error _ -> Alcotest.fail "batch 2 rejected");
          (match Client.run_all c [ q ] base_config with
          | [| reply |] -> check_answer ~what:"query on epoch 2" offline reply
          | _ -> Alcotest.fail "expected one reply");
          let h = Client.health c in
          Alcotest.(check int) "health epoch" 2 h.P.epoch;
          Alcotest.(check int) "health ingest_applied" 12 h.P.ingest_applied;
          Alcotest.(check int) "health ingest_queued drained" 0
            h.P.ingest_queued))

(* --- admission: quotas and queue bounds --- *)

let tenant_rejected name =
  Psst_obs.counter_value
    (Psst_obs.counter (Printf.sprintf "server.tenant.%s.rejected" name))

let test_tenant_quota_rejects () =
  let ds, db = make_db 437 12 in
  let batch = make_batch 917 20 in
  with_server ~tenant_quota:10 db (fun srv ->
      with_client srv (fun c ->
          Client.set_tenant c "alice";
          let before = tenant_rejected "alice" in
          (match Client.add_graphs c batch with
          | Error (P.Queue_full, msg) ->
            Alcotest.(check bool) "retryable" true
              (P.error_code_retryable P.Queue_full);
            Alcotest.(check bool) "message names the tenant" true
              (contains msg "alice")
          | Ok _ -> Alcotest.fail "a 20-graph batch must exceed quota 10"
          | Error _ -> Alcotest.fail "expected Queue_full");
          Alcotest.(check bool) "alice's rejection was metered" true
            (tenant_rejected "alice" > before);
          (* Within quota still works, and under its own tenant meter. *)
          (match Client.add_graphs c (Array.sub batch 0 4) with
          | Ok r -> Alcotest.(check int) "small batch applied" 4 r.Psst_ingest.count
          | Error _ -> Alcotest.fail "a 4-graph batch fits quota 10");
          (* The rejected batch changed nothing: answers still match the
             database with only the accepted graphs. *)
          let db' = Query.add_graphs db (Array.sub batch 0 4) in
          let rng = Prng.make 61 in
          let q = fst (Generator.extract_query rng ds ~edges:4) in
          let offline = Query.run db' q base_config in
          match Client.run_all c [ q ] base_config with
          | [| reply |] -> check_answer ~what:"post-rejection query" offline reply
          | _ -> Alcotest.fail "expected one reply"))

let test_ingest_queue_full_rejects () =
  let _, db = make_db 439 10 in
  let batch = make_batch 919 8 in
  with_server ~ingest_queue_cap:5 db (fun srv ->
      with_client srv (fun c ->
          match Client.add_graphs c batch with
          | Error (P.Queue_full, msg) ->
            Alcotest.(check bool) "names the cap" true (contains msg "5")
          | _ -> Alcotest.fail "an 8-graph batch must overflow cap 5"))

let test_ingest_disabled_rejects () =
  let _, db = make_db 441 10 in
  with_server ~ingest_queue_cap:0 db (fun srv ->
      with_client srv (fun c ->
          match Client.add_graphs c (make_batch 921 2) with
          | Error (P.Unavailable, _) -> ()
          | _ -> Alcotest.fail "ingest off must answer Unavailable"))

let test_set_tenant_roundtrip () =
  let _, db = make_db 443 10 in
  with_server db (fun srv ->
      with_client srv (fun c ->
          Client.set_tenant c "team-7";
          Client.ping c;
          (* Empty names are refused client-side... *)
          (match Client.set_tenant c "" with
          | () -> Alcotest.fail "empty tenant must be refused"
          | exception Client.Client_error _ -> ());
          (* ...and oversized ones by the server-side decoder. *)
          match Client.rpc c (P.Set_tenant (String.make 200 'x')) with
          | P.Error_reply { code = P.Malformed; _ } -> ()
          | _ -> Alcotest.fail "oversized tenant must be Malformed"))

(* --- persistence: delta side files --- *)

let with_tmp_store f =
  let path = Filename.temp_file "psst_test_ing" ".psst" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Psst_ingest.clear_deltas path);
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_delta_persistence_roundtrip () =
  with_tmp_store @@ fun path ->
  let ds, db = make_db 449 15 in
  Query.save_database path db;
  let db, chain = Psst_ingest.load path in
  let base_bytes = read_file path in
  let b1 = make_batch 923 4 and b2 = make_batch 929 6 in
  with_server ~chain db (fun srv ->
      with_client srv (fun c ->
          (match Client.add_graphs c b1 with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "batch 1 rejected");
          match Client.add_graphs c b2 with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "batch 2 rejected");
      (* Both deltas exist, and the base store was never rewritten. *)
      Alcotest.(check bool) "delta 1 exists" true
        (Sys.file_exists (Psst_ingest.delta_path path 1));
      Alcotest.(check bool) "delta 2 exists" true
        (Sys.file_exists (Psst_ingest.delta_path path 2));
      Alcotest.(check bool) "no delta 3" false
        (Sys.file_exists (Psst_ingest.delta_path path 3));
      Alcotest.(check bool) "base store byte-identical" true
        (read_file path = base_bytes);
      (* An offline load replays the chain to exactly the served state. *)
      let reloaded, chain' = Psst_ingest.load path in
      Alcotest.(check int) "chain resumes after last delta" 3
        chain'.Psst_ingest.next_seq;
      let served = Server.database srv in
      Alcotest.(check int) "reloaded corpus size"
        (Corpus.length served.Query.graphs)
        (Corpus.length reloaded.Query.graphs);
      Alcotest.(check bool) "reloaded corpus fingerprint" true
        (Corpus.fingerprint reloaded.Query.graphs
        = Corpus.fingerprint served.Query.graphs);
      let rng = Prng.make 67 in
      let q = fst (Generator.extract_query rng ds ~edges:4) in
      Alcotest.(check (list int)) "reloaded answers = served answers"
        (Query.run served q base_config).Query.answers
        (Query.run reloaded q base_config).Query.answers)

let test_stale_delta_refused () =
  with_tmp_store @@ fun path ->
  let _, db = make_db 457 12 in
  Query.save_database path db;
  let _, chain = Psst_ingest.load path in
  Psst_ingest.save_delta chain ~prev_count:12 (make_batch 931 3);
  (* Rebuild the base for a different corpus: the existing delta now
     chains onto nothing. Replay must stop at it, not apply it. *)
  let _, db2 = make_db 461 14 in
  Query.save_database path db2;
  let before = Psst_obs.counter_value (Psst_obs.counter "ingest.delta.stale") in
  let reloaded, chain' = Psst_ingest.load path in
  Alcotest.(check int) "stale delta not replayed" 14
    (Corpus.length reloaded.Query.graphs);
  Alcotest.(check int) "chain stops before the stale delta" 1
    chain'.Psst_ingest.next_seq;
  Alcotest.(check bool) "staleness was metered" true
    (Psst_obs.counter_value (Psst_obs.counter "ingest.delta.stale") > before)

let test_out_of_order_delta_refused () =
  with_tmp_store @@ fun path ->
  let _, db = make_db 463 10 in
  Query.save_database path db;
  let _, chain = Psst_ingest.load path in
  Psst_ingest.save_delta chain ~prev_count:10 (make_batch 937 2);
  (* A gap in the chain (delta 1 removed, delta 2 present) must stop
     replay at the gap rather than renumber or skip. *)
  Psst_ingest.save_delta chain ~prev_count:12 (make_batch 941 2);
  Sys.remove (Psst_ingest.delta_path path 1);
  let reloaded, _ = Psst_ingest.load path in
  Alcotest.(check int) "replay stops at the gap" 10
    (Corpus.length reloaded.Query.graphs)

(* --- the idempotency token (v6) --- *)

(* Resending a batch whose ack was lost, with the same token, must
   return the original ack without ingesting twice — the writer-side
   dedup that makes client retries safe. A different token (or the
   empty token, which disables dedup) ingests normally. *)
let test_token_dedup () =
  let _, db = make_db 467 15 in
  let batch = make_batch 977 3 in
  with_server db (fun srv ->
      with_client srv (fun c ->
          let dedups () =
            Psst_obs.counter_value (Psst_obs.counter "ingest.dedup")
          in
          let before = dedups () in
          let send token =
            match Client.add_graphs ~token c batch with
            | Ok r -> r
            | Error (_, msg) -> Alcotest.failf "batch rejected: %s" msg
          in
          let r1 = send "batch-A" in
          let r2 = send "batch-A" in
          Alcotest.(check bool) "retry returns the original ack" true
            (r1 = r2);
          Alcotest.(check int) "corpus grew once" (15 + 3)
            (Corpus.length (Server.database srv).Query.graphs);
          Alcotest.(check bool) "dedup was metered" true (dedups () > before);
          (* A different token is a different batch. *)
          let r3 = send "batch-B" in
          Alcotest.(check int) "fresh token ingests" (15 + 3)
            r3.Psst_ingest.base;
          (* The empty token disables dedup entirely. *)
          let r4 = send "" in
          let r5 = send "" in
          Alcotest.(check bool) "empty token never dedups" true
            (r4.Psst_ingest.base <> r5.Psst_ingest.base);
          Alcotest.(check int) "four ingests total" (15 + (4 * 3))
            (Corpus.length (Server.database srv).Query.graphs)))

(* --- delta-chain fuzzing --- *)

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

(* Tiny ingest batches keep the delta files small and their replay
   cheap, so the corruption sweep can afford a full reload per case. *)
let make_tiny_batch seed n =
  (Generator.generate
     {
       Generator.default_params with
       num_graphs = n;
       seed;
       min_vertices = 4;
       max_vertices = 5;
       motif_edges = 2;
     })
    .Generator.graphs

(* Positions to flip inside [start, stop): the framing fields at the
   front, plus a spread through the payload (same sampling the store
   corruption suite uses). *)
let flip_positions start stop =
  let head = List.init (min 24 (stop - start)) (fun i -> start + i) in
  let spread =
    List.init 7 (fun i -> start + ((stop - start - 1) * (i + 1) / 8))
  in
  List.sort_uniq compare (head @ spread @ [ stop - 1 ])

(* The same adversarial treatment Test_store gives the base format,
   aimed at the chain: truncate the newest delta at every section
   boundary (and inside every section), and flip bytes across the
   header and every section. Whatever the damage, the load must stop
   cleanly at the first damaged delta — keeping the intact prefix,
   metering ingest.delta.stale, warning under ingest.delta — and never
   apply damaged graphs or raise. *)
let test_delta_chain_fuzzing () =
  with_tmp_store @@ fun path ->
  let _, db = make_db 479 10 in
  Query.save_database path db;
  let _, chain = Psst_ingest.load path in
  Psst_ingest.save_delta chain ~prev_count:10 (make_tiny_batch 983 2);
  Psst_ingest.save_delta chain ~prev_count:12 (make_tiny_batch 991 3);
  let d2 = Psst_ingest.delta_path path 2 in
  let original = read_file d2 in
  let spans = Psst_store.section_spans original in
  let stale () =
    Psst_obs.counter_value (Psst_obs.counter "ingest.delta.stale")
  in
  let check_stops_at_prefix what =
    let before = stale () in
    let reloaded, chain' = Psst_ingest.load path in
    Alcotest.(check int)
      (what ^ ": intact prefix kept, damaged tail dropped")
      12
      (Corpus.length reloaded.Query.graphs);
    Alcotest.(check int) (what ^ ": chain stops before the damage") 2
      chain'.Psst_ingest.next_seq;
    Alcotest.(check bool) (what ^ ": damage was metered") true
      (stale () > before)
  in
  (* Sanity: the pristine chain replays in full. *)
  let full, _ = Psst_ingest.load path in
  Alcotest.(check int) "pristine chain replays" 15
    (Corpus.length full.Query.graphs);
  (* Truncation at every section boundary, inside every section, and at
     the header edges — the empty file included. *)
  let boundaries =
    0 :: 1
    :: (Psst_store.header_bytes - 1)
    :: Psst_store.header_bytes
    :: List.concat_map
         (fun (_, start, stop) -> [ start; start + 3; stop - 1; stop ])
         spans
  in
  List.iter
    (fun cut ->
      if cut < String.length original then begin
        write_file d2 (String.sub original 0 cut);
        check_stops_at_prefix (Printf.sprintf "truncated at %d" cut)
      end)
    boundaries;
  (* Byte flips: the whole header, and a sample of every section. *)
  let positions =
    List.init Psst_store.header_bytes Fun.id
    @ List.concat_map (fun (_, start, stop) -> flip_positions start stop) spans
  in
  List.iter
    (fun pos ->
      let corrupt = Bytes.of_string original in
      Bytes.set corrupt pos
        (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0xFF));
      write_file d2 (Bytes.to_string corrupt);
      check_stops_at_prefix (Printf.sprintf "byte %d flipped" pos))
    positions;
  (* Restore: nothing was cached across the damaged loads. *)
  write_file d2 original;
  let restored, chain' = Psst_ingest.load path in
  Alcotest.(check int) "restored chain replays in full" 15
    (Corpus.length restored.Query.graphs);
  Alcotest.(check int) "chain resumes after the last delta" 3
    chain'.Psst_ingest.next_seq;
  (* Damage in the middle of the chain drops everything after it: a
     replayed suffix that skipped a damaged link would renumber global
     ids and change answers. *)
  let d1 = Psst_ingest.delta_path path 1 in
  let original1 = read_file d1 in
  write_file d1 (String.sub original1 0 (String.length original1 / 2));
  let reloaded, chain' = Psst_ingest.load path in
  Alcotest.(check int) "mid-chain damage drops the tail too" 10
    (Corpus.length reloaded.Query.graphs);
  Alcotest.(check int) "chain restarts at the damaged link" 1
    chain'.Psst_ingest.next_seq;
  Alcotest.(check bool) "the stop was warned under ingest.delta" true
    (List.exists
       (fun (w : Psst_obs.warning) -> w.code = "ingest.delta")
       (Psst_obs.warnings ()))

(* --- the v5 wire codec --- *)

let test_v5_codec_roundtrip () =
  let graphs = make_batch 947 3 in
  (match
     P.request_of_string (P.encode_request (P.Add_graphs { id = 7; token = "tok-7"; graphs }))
   with
  | P.Add_graphs { id = 7; token; graphs = g' } ->
    Alcotest.(check string) "token survives" "tok-7" token;
    Alcotest.(check int) "graph count survives" 3 (Array.length g');
    Alcotest.(check bool) "graphs survive byte-exactly" true
      (Pgraph_io.db_fingerprint g' = Pgraph_io.db_fingerprint graphs)
  | _ -> Alcotest.fail "Add_graphs round-trip");
  (match P.request_of_string (P.encode_request (P.Set_tenant "acme")) with
  | P.Set_tenant "acme" -> ()
  | _ -> Alcotest.fail "Set_tenant round-trip");
  match
    P.reply_of_string
      (P.encode_reply (P.Ingest_ack { id = 3; epoch = 9; base = 100; count = 5 }))
  with
  | P.Ingest_ack { id = 3; epoch = 9; base = 100; count = 5 } -> ()
  | _ -> Alcotest.fail "Ingest_ack round-trip"

(* The v5 tags are gated: carried by a pre-v5 frame they must be re-
   jected as malformed, exactly like an unknown tag — not half-decoded. *)
let test_v5_tags_gated () =
  let graphs = make_batch 953 1 in
  List.iter
    (fun (what, bytes) ->
      match P.request_of_string bytes with
      | exception P.Proto_error _ -> ()
      | _ -> Alcotest.failf "%s in a v4 frame must be Proto_error" what)
    [
      ("Add_graphs", P.encode_request ~version:4 (P.Add_graphs { id = 1; token = ""; graphs }));
      ("Set_tenant", P.encode_request ~version:4 (P.Set_tenant "acme"));
    ];
  match
    P.reply_of_string
      (P.encode_reply ~version:4
         (P.Ingest_ack { id = 1; epoch = 1; base = 0; count = 1 }))
  with
  | exception P.Proto_error _ -> ()
  | _ -> Alcotest.fail "Ingest_ack in a v4 frame must be Proto_error"

let suite =
  [
    Alcotest.test_case "differential across an ingest, 1 domain" `Quick
      test_ingest_differential_sequential;
    Alcotest.test_case "differential across an ingest, 4 domains" `Quick
      test_ingest_differential_parallel;
    Alcotest.test_case "batches stack; health reports epoch and lag" `Quick
      test_ingest_stacks;
    Alcotest.test_case "tenant quota rejects retryably, metered" `Quick
      test_tenant_quota_rejects;
    Alcotest.test_case "ingest queue bound rejects retryably" `Quick
      test_ingest_queue_full_rejects;
    Alcotest.test_case "ingest disabled answers Unavailable" `Quick
      test_ingest_disabled_rejects;
    Alcotest.test_case "Set_tenant roundtrip and validation" `Quick
      test_set_tenant_roundtrip;
    Alcotest.test_case "delta files round-trip; base never rewritten" `Quick
      test_delta_persistence_roundtrip;
    Alcotest.test_case "stale delta after rebuild is refused" `Quick
      test_stale_delta_refused;
    Alcotest.test_case "chain gap stops replay" `Quick
      test_out_of_order_delta_refused;
    Alcotest.test_case "idempotency token dedups retries" `Quick
      test_token_dedup;
    Alcotest.test_case "delta chain survives fuzzing" `Quick
      test_delta_chain_fuzzing;
    Alcotest.test_case "v5 codec round-trips" `Quick test_v5_codec_roundtrip;
    Alcotest.test_case "v5 tags rejected in pre-v5 frames" `Quick
      test_v5_tags_gated;
  ]
