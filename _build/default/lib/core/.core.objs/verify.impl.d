lib/core/verify.ml: Array Embedding Exact Float Hashtbl Jtree Lgraph List Pgraph Psst_util Vf2
