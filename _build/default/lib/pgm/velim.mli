(** Exact inference over a set of factors by variable elimination.

    This is the engine behind exact subgraph-isomorphism / similarity
    probabilities and the Pr(Bf) terms of the paper's verification sampler
    (the paper uses a junction tree, ref [17]; variable elimination with a
    min-degree order computes the same exact marginals). *)

(** [marginal factors keep] eliminates every variable outside [keep] and
    returns the (unnormalised) joint factor over [keep]. *)
val marginal : Factor.t list -> int list -> Factor.t

(** [partition_value factors] is the total mass of the product (1.0 for a
    consistent chain factorisation). *)
val partition_value : Factor.t list -> float

(** [prob ~evidence factors] is the probability of the partial assignment
    [evidence = [(var, value); ...]], normalised by the partition value. *)
val prob : evidence:(int * bool) list -> Factor.t list -> float

(** [prob_all_present factors vars] is [prob] with every var set to true —
    the probability that a set of edges co-exists. *)
val prob_all_present : Factor.t list -> int list -> float
