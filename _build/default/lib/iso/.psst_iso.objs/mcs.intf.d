lib/iso/mcs.mli: Lgraph
