lib/optim/set_cover.mli: Psst_util
