examples/incremental.ml: Array Filename Generator Lgraph List Pgraph Pgraph_io Pmi Printf Psst_util Query String Sys Topk
