examples/rdf_search.mli:
