module Bitset = Psst_util.Bitset

(* Pattern vertices are matched in a precomputed order that keeps each new
   vertex adjacent to an already-matched one whenever possible (pure VF2
   connectivity heuristic); disconnected patterns fall back to an arbitrary
   unmatched vertex when no connected choice remains. *)

let matching_order pattern =
  let n = Lgraph.num_vertices pattern in
  let order = Array.make n (-1) in
  let placed = Array.make n false in
  let degree v = Lgraph.degree pattern v in
  let next_seed () =
    (* Highest degree first among unplaced vertices. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not placed.(v)) && (!best < 0 || degree v > degree !best) then best := v
    done;
    !best
  in
  let idx = ref 0 in
  while !idx < n do
    (* Prefer an unplaced vertex adjacent to a placed one, with max degree. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if not placed.(v) then
        let touches =
          List.exists (fun (w, _) -> placed.(w)) (Lgraph.neighbors pattern v)
        in
        if touches && (!best < 0 || degree v > degree !best) then best := v
    done;
    let v = if !best >= 0 then !best else next_seed () in
    order.(!idx) <- v;
    placed.(v) <- true;
    incr idx
  done;
  order

let compatible_vertex pattern target pu tv =
  Lgraph.vertex_label pattern pu = Lgraph.vertex_label target tv

let iter pattern target f =
  let np = Lgraph.num_vertices pattern in
  let nt = Lgraph.num_vertices target in
  if np > nt || Lgraph.num_edges pattern > Lgraph.num_edges target then ()
  else begin
    let order = matching_order pattern in
    let pmap = Array.make np (-1) in
    (* pattern -> target *)
    let used = Array.make nt false in
    let stop = ref false in
    let rec go depth =
      if !stop then ()
      else if depth = np then begin
        (* Collect the target edges realising each pattern edge. *)
        let edges = Bitset.create (Lgraph.num_edges target) in
        Array.iter
          (fun (e : Lgraph.edge) ->
            match Lgraph.find_edge target pmap.(e.u) pmap.(e.v) with
            | Some te -> Bitset.add edges te.id
            | None -> assert false)
          (Lgraph.edges pattern);
        if not (f { Embedding.vmap = Array.copy pmap; edges }) then stop := true
      end
      else begin
        let pu = order.(depth) in
        let matched_neighbors =
          Lgraph.neighbors pattern pu
          |> List.filter_map (fun (w, eid) ->
                 if pmap.(w) >= 0 then Some (pmap.(w), (Lgraph.edge pattern eid).label)
                 else None)
        in
        let candidates =
          match matched_neighbors with
          | (tv_anchor, elab) :: _ ->
            (* Candidates must be neighbors of the mapped anchor through an
               edge with the right label. *)
            Lgraph.neighbors target tv_anchor
            |> List.filter_map (fun (tw, teid) ->
                   if (Lgraph.edge target teid).label = elab then Some tw else None)
          | [] -> List.init nt (fun v -> v)
        in
        let feasible tv =
          (not used.(tv))
          && compatible_vertex pattern target pu tv
          && Lgraph.degree target tv >= Lgraph.degree pattern pu
          && List.for_all
               (fun (tw, elab) ->
                 match Lgraph.find_edge target tv tw with
                 | Some te -> te.label = elab
                 | None -> false)
               matched_neighbors
        in
        List.iter
          (fun tv ->
            if (not !stop) && feasible tv then begin
              pmap.(pu) <- tv;
              used.(tv) <- true;
              go (depth + 1);
              pmap.(pu) <- -1;
              used.(tv) <- false
            end)
          (List.sort_uniq compare candidates)
      end
    in
    (* Quick multiset pre-filters. *)
    let vh_p = Lgraph.vertex_label_hist pattern
    and vh_t = Lgraph.vertex_label_hist target in
    let eh_p = Lgraph.edge_label_hist pattern
    and eh_t = Lgraph.edge_label_hist target in
    if Lgraph.hist_missing vh_p vh_t = 0 && Lgraph.hist_missing eh_p eh_t = 0 then
      go 0
  end

let exists pattern target =
  let found = ref false in
  iter pattern target (fun _ ->
      found := true;
      false);
  !found

let find_one pattern target =
  let result = ref None in
  iter pattern target (fun e ->
      result := Some e;
      false);
  !result

let count ?limit pattern target =
  let n = ref 0 in
  iter pattern target (fun _ ->
      incr n;
      match limit with Some l -> !n < l | None -> true);
  !n

let distinct_embeddings ?(cap = max_int) pattern target =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let n = ref 0 in
  iter pattern target (fun e ->
      let key = Bitset.elements e.Embedding.edges in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := e :: !out;
        incr n
      end;
      !n < cap);
  List.rev !out
