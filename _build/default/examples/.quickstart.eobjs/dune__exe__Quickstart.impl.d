examples/quickstart.ml: Factor Lgraph List Pgraph Printf Psst_util Query Relax String Verify
