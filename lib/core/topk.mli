(** Top-k probabilistic subgraph similarity search.

    A natural companion to the paper's threshold queries: return the [k]
    database graphs with the highest subgraph-similarity probability
    Pr(q ⊆sim g). The PMI bounds drive a best-first search — candidates
    are verified in decreasing order of their Usim upper bound, and the
    search stops as soon as the k-th best verified probability dominates
    every unverified candidate's upper bound, so most candidates are never
    verified. *)

type hit = { graph : int; ssp : float }
(** [graph] is a global id ({!Query.database}[.base] [+] local index);
    [ssp] is clamped to the candidate's Usim upper bound, which is what
    makes the best-first skip rule lossless and per-shard top-k lists
    mergeable into exactly the monolithic ranking. *)

type stats = {
  structural_candidates : int;
  verified : int;  (** candidates whose SSP was actually computed *)
  bound_skipped : int;  (** candidates dismissed by the upper bound *)
  relaxed_truncated : bool;
      (** the relaxed set was sampled ([relax_cap] hit): reported SSPs
          are lower bounds, so the ranking may under-rank some graphs *)
}

type outcome = { hits : hit list; stats : stats }

(** [run ?cache db q ~k config] — [config.epsilon] is ignored (top-k has
    no threshold; an adaptive SMP verifier therefore stops on its
    precision test alone, never on a decision threshold); [delta],
    [mode], [certified] and [verifier] apply. Hits are sorted by
    decreasing SSP; fewer than [k] hits are returned when fewer graphs
    have positive SSP.

    Every candidate ranks and verifies under its own PRNG streams keyed
    on (seed, global graph id), so its (upper bound, SSP) pair never
    depends on ranking order or on which other graphs share the
    database — per-shard top-k lists of a partitioned corpus merge into
    exactly the monolithic answer ({!Psst_shard.merge_topk}).

    [cache] memoises the PRNG-free artifacts only (relaxed set, prepared
    memberships, embedding sets, Karp–Luby preparations); final SSP
    values are recomputed per run, so cached runs stay bit-identical to
    cold ones. *)
val run :
  ?cache:Qcache.t -> Query.database -> Lgraph.t -> k:int -> Query.config -> outcome
