let deletion_sets q ~delta = Psst_util.Combin.binomial (Lgraph.num_edges q) delta

let m_calls = Psst_obs.counter "relax.calls"
let m_patterns = Psst_obs.counter "relax.patterns"
let m_truncated = Psst_obs.counter "relax.truncated"

let relaxed_set ?(cap = 4096) q ~delta =
  let m = Lgraph.num_edges q in
  if delta < 0 then invalid_arg "Relax.relaxed_set: negative delta";
  Psst_obs.incr m_calls;
  if delta >= m then begin
    (* Everything is deleted: the empty pattern matches any world. *)
    Psst_obs.incr m_patterns;
    ([ Lgraph.vertices_only ~vlabels:[||] ], `Complete)
  end
  else begin
    let total = deletion_sets q ~delta in
    let edge_ids = List.init m (fun i -> i) in
    let seen = Hashtbl.create 64 in
    let out = ref [] in
    let consider ids =
      let rq = Lgraph.delete_edges q ids in
      let rq, _ = Lgraph.drop_isolated rq in
      let key = Canon.code rq in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := rq :: !out
      end
    in
    let status =
      if total <= cap then begin
        Psst_util.Combin.iter_combinations delta edge_ids consider;
        `Complete
      end
      else begin
        Psst_obs.incr m_truncated;
        Psst_obs.warn ~code:"relax.truncated"
          (Printf.sprintf
             "relaxed set truncated: sampled %d of %d deletion sets \
              (|E(q)| = %d, delta = %d); SSP estimates become lower bounds"
             cap total m delta);
        (* Deterministic subsample: stride through combination ranks. *)
        let rng = Psst_util.Prng.make ((m * 1_000_003) + delta) in
        let budget = ref cap in
        while !budget > 0 do
          let ids = Psst_util.Prng.sample_without_replacement rng delta m in
          consider (List.sort compare ids);
          decr budget
        done;
        `Truncated
      end
    in
    Psst_obs.add m_patterns (List.length !out);
    (List.rev !out, status)
  end
