(* Sharded serving (DESIGN.md §14): the differential harness pinning the
   tentpole invariant — answers computed over a partitioned corpus are
   bit-identical to the monolithic ones. Offline: per-shard Query.run /
   Topk.run merged with Psst_shard at 1/2/4 shards under 1/4 verification
   domains, cold and warm cache passes, counters included. Served: a
   scatter-gather router fronting shard workers diffed reply-for-reply
   against a monolithic server over the wire. Property layer: answer-set
   union, threshold-aware top-k merge with deterministic ties, and the
   split → load → re-split round trip of an on-disk deployment. *)

module P = Psst_proto
module Client = Psst_client
module Server = Psst_server
module Sh = Psst_shard
module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 400 }
let fast_smp = { Verify.default_config with tau = 0.3 }

let make_db seed n =
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
        max_vertices = 10; motif_edges = 3 }
  in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  (ds, db)

let base_config =
  { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Smp fast_smp }

let shards_of db plan =
  List.map (fun (base, count) -> Sh.sub_database db ~base ~count) plan

let check_counters what (a : Query.stats) (b : Query.stats) =
  Alcotest.(check bool) what true
    (a.Query.relaxed_count = b.Query.relaxed_count
    && a.relaxed_truncated = b.relaxed_truncated
    && a.structural_candidates = b.structural_candidates
    && a.prob_candidates = b.prob_candidates
    && a.accepted_by_bounds = b.accepted_by_bounds
    && a.pruned_by_bounds = b.pruned_by_bounds
    && a.degraded_candidates = b.degraded_candidates)

(* --- offline differential: shards x domains, cold and warm --- *)

let test_differential_offline () =
  let ds, db = make_db 409 24 in
  let n = Array.length ds.Generator.graphs in
  let rng = Prng.make 61 in
  let queries =
    List.init 3 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  List.iter
    (fun domains ->
      List.iter
        (fun parts ->
          let plan = Sh.plan_even ~parts ~total:n in
          let shards = shards_of db plan in
          let mono_cache = Qcache.create () in
          let shard_caches = List.map (fun _ -> Qcache.create ()) shards in
          List.iteri
            (fun qi q ->
              (* pass 1 fills the caches, pass 2 must answer warm and
                 still bit-identically *)
              for pass = 1 to 2 do
                let tag =
                  Printf.sprintf "d=%d s=%d q=%d pass=%d" domains parts qi pass
                in
                let mono = Query.run ~domains ~cache:mono_cache db q base_config in
                let outs =
                  List.map2
                    (fun s c -> Query.run ~domains ~cache:c s q base_config)
                    shards shard_caches
                in
                Alcotest.(check (list int))
                  (tag ^ ": merged answers bit-identical")
                  mono.Query.answers
                  (Sh.merge_answers
                     (List.map (fun o -> o.Query.answers) outs));
                check_counters
                  (tag ^ ": merged counters bit-identical")
                  mono.Query.stats
                  (Sh.merge_stats (List.map (fun o -> o.Query.stats) outs));
                let mono_topk = Topk.run db q ~k:5 base_config in
                let merged_topk =
                  Sh.merge_topk ~k:5
                    (List.map
                       (fun s -> (Topk.run s q ~k:5 base_config).Topk.hits)
                       shards)
                in
                Alcotest.(check bool)
                  (tag ^ ": merged top-k bit-identical")
                  true
                  (merged_topk = mono_topk.Topk.hits)
              done)
            queries)
        [ 1; 2; 4 ])
    [ 1; 4 ]

(* --- served differential: router vs monolithic server, on the wire --- *)

let with_servers db shards f =
  let socks =
    List.map (fun _ -> Filename.temp_file "psst_shard_w" ".sock") shards
  in
  let msock = Filename.temp_file "psst_shard_m" ".sock" in
  let rsock = Filename.temp_file "psst_shard_r" ".sock" in
  let endpoints = List.map (fun s -> P.Unix_socket s) socks in
  let start ep sdb =
    Server.start
      { (Server.default_config ep) with Server.domains = 1 }
      sdb
  in
  let workers = List.map2 start endpoints shards in
  let mono = start (P.Unix_socket msock) db in
  let router =
    Psst_router.start
      (Psst_router.default_config ~endpoint:(P.Unix_socket rsock)
         ~workers:endpoints)
  in
  Fun.protect
    ~finally:(fun () ->
      Psst_router.stop router;
      Server.stop mono;
      List.iter Server.stop workers;
      List.iter
        (fun s -> try Sys.remove s with Sys_error _ -> ())
        (msock :: rsock :: socks))
    (fun () -> f (Server.endpoint mono) (Psst_router.endpoint router))

let test_differential_routed () =
  let ds, db = make_db 419 20 in
  let n = Array.length ds.Generator.graphs in
  let rng = Prng.make 67 in
  let queries =
    List.init 3 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let shards = shards_of db (Sh.plan_even ~parts:2 ~total:n) in
  with_servers db shards (fun mono_ep router_ep ->
      let mc = Client.connect mono_ep in
      let rc = Client.connect router_ep in
      Fun.protect
        ~finally:(fun () -> Client.close mc; Client.close rc)
        (fun () ->
          List.iteri
            (fun qi q ->
              (* two passes: the second hits both sides' server caches *)
              for pass = 1 to 2 do
                let tag = Printf.sprintf "q=%d pass=%d" qi pass in
                let run = P.Run { id = qi; query = q; config = base_config } in
                (match (Client.rpc mc run, Client.rpc rc run) with
                | ( P.Answer { answers = ma; stats = ms; _ },
                    P.Answer { answers = ra; stats = rs; _ } ) ->
                  Alcotest.(check (list int))
                    (tag ^ ": routed answers = monolithic") ma ra;
                  Alcotest.(check bool)
                    (tag ^ ": routed counters = monolithic") true (ms = rs)
                | _ -> Alcotest.failf "%s: expected two Answers" tag);
                let topk =
                  P.Run_topk { id = qi; query = q; k = 4; config = base_config }
                in
                match (Client.rpc mc topk, Client.rpc rc topk) with
                | P.Topk_answer { hits = mh; _ }, P.Topk_answer { hits = rh; _ }
                  ->
                  Alcotest.(check bool)
                    (tag ^ ": routed top-k = monolithic") true (mh = rh)
                | _ -> Alcotest.failf "%s: expected two Topk_answers" tag
              done)
            queries))

(* --- properties --- *)

(* Shared indexed corpus for the db-backed properties: built once on
   first use, never mutated. *)
let shared = lazy (make_db 401 20)

let prop_union_is_monolithic =
  QCheck.Test.make ~name:"union of per-shard answers = monolithic set"
    ~count:8 QCheck.small_int
    (fun seed ->
      let ds, db = Lazy.force shared in
      let n = Array.length ds.Generator.graphs in
      let rng = Prng.make (seed + 7000) in
      let q, _ = Generator.extract_query rng ds ~edges:4 in
      let parts = 1 + (abs seed mod 4) in
      let mono = Query.run db q base_config in
      let merged =
        Sh.merge_answers
          (List.map
             (fun sdb -> (Query.run sdb q base_config).Query.answers)
             (shards_of db (Sh.plan_even ~parts ~total:n)))
      in
      merged = mono.Query.answers)

let prop_topk_merge_is_global =
  (* Pure merge law, with heavy ties: SSPs drawn from a 5-value grid so
     ties across shards are common. Each shard's list is its own top-k
     (sorted ssp desc, graph asc, truncated) — exactly what a worker
     returns — and the merge must reproduce the global top-k, ties
     broken by graph id. *)
  QCheck.Test.make ~name:"threshold-aware top-k merge = global top-k"
    ~count:200
    QCheck.(triple small_int (int_range 1 6) (int_range 1 8))
    (fun (seed, shards, k) ->
      let rng = Prng.make (seed + 9000) in
      let n = 1 + Prng.int rng 30 in
      let hits =
        List.init n (fun g ->
            { Topk.graph = g; ssp = float_of_int (Prng.int rng 5) /. 4. })
      in
      let order a b =
        match compare b.Topk.ssp a.Topk.ssp with
        | 0 -> compare a.Topk.graph b.Topk.graph
        | c -> c
      in
      let topk l = List.filteri (fun i _ -> i < k) (List.sort order l) in
      let by_shard =
        List.init shards (fun s ->
            topk (List.filter (fun h -> h.Topk.graph mod shards = s) hits))
      in
      Sh.merge_topk ~k by_shard = topk hits)

let with_tmp_dir f =
  let path = Filename.temp_file "psst_shard_rt" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat path e) with Sys_error _ -> ())
        (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ())
    (fun () -> f path)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let prop_split_roundtrips_bit_identically =
  (* split → load_all → merge → split again, same basename in a fresh
     directory: every file of the second deployment — manifest included —
     must be byte-for-byte the first one's. *)
  QCheck.Test.make ~name:"split + re-merge round-trips the manifest"
    ~count:4
    QCheck.(int_range 1 4)
    (fun parts ->
      let ds, db = Lazy.force shared in
      let n = Array.length ds.Generator.graphs in
      let plan = Sh.plan_even ~parts ~total:n in
      with_tmp_dir (fun d1 ->
          with_tmp_dir (fun d2 ->
              let p1 = Filename.concat d1 "deploy.manifest" in
              let p2 = Filename.concat d2 "deploy.manifest" in
              let m1 = Sh.split_to_files ~manifest_path:p1 db plan in
              let merged = Sh.merge (Sh.load_all ~manifest_path:p1 m1) in
              let m2 = Sh.split_to_files ~manifest_path:p2 merged plan in
              m1 = m2
              && Sh.load_manifest p1 = m1
              && read_bytes p1 = read_bytes p2
              && List.for_all
                   (fun (e : Sh.entry) ->
                     read_bytes (Filename.concat d1 e.Sh.path)
                     = read_bytes (Filename.concat d2 e.Sh.path))
                   m1.Sh.entries)))

let suite =
  [
    Alcotest.test_case "offline differential: shards x domains, cold + warm"
      `Slow test_differential_offline;
    Alcotest.test_case "served differential: router = monolithic server"
      `Slow test_differential_routed;
    QCheck_alcotest.to_alcotest prop_union_is_monolithic;
    QCheck_alcotest.to_alcotest prop_topk_merge_is_global;
    QCheck_alcotest.to_alcotest prop_split_roundtrips_bit_identically;
  ]
