examples/rdf_search.ml: Array Factor Lgraph List Pgraph Printf Query Relax String Verify
