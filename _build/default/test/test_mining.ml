module Prng = Psst_util.Prng

(* Small database of three certain graphs sharing a triangle motif. *)
let tiny_db () =
  let tri extra =
    let vlabels = Array.of_list ([ 0; 0; 1 ] @ extra) in
    let base = [ (0, 1, 0); (1, 2, 0); (0, 2, 0) ] in
    let extra_edges =
      List.mapi (fun i _ -> (i mod 3, 3 + i, 1)) extra
    in
    Lgraph.create ~vlabels ~edges:(base @ extra_edges)
  in
  [| tri []; tri [ 2 ]; tri [ 2; 3 ] |]

let test_singletons_always_indexed () =
  let db = tiny_db () in
  let features = Selection.select db Selection.default_params in
  let vertex_features =
    List.filter (fun (f : Selection.feature) -> Lgraph.num_edges f.graph = 0) features
  in
  let edge_features =
    List.filter (fun (f : Selection.feature) -> Lgraph.num_edges f.graph = 1) features
  in
  (* Labels 0,1,2,3 present -> 4 vertex features. *)
  Alcotest.(check int) "vertex features" 4 (List.length vertex_features);
  Alcotest.(check bool) "edge features exist" true (List.length edge_features >= 2)

let test_support_lists_correct () =
  let db = tiny_db () in
  let features = Selection.select db Selection.default_params in
  List.iter
    (fun (f : Selection.feature) ->
      List.iter
        (fun gi ->
          Alcotest.(check bool) "support is real" true (Vf2.exists f.graph db.(gi)))
        f.support;
      (* And graphs outside the support really lack the feature. *)
      List.iter
        (fun gi ->
          if not (List.mem gi f.support) then
            Alcotest.(check bool) "non-support lacks feature" false
              (Vf2.exists f.graph db.(gi)))
        [ 0; 1; 2 ])
    features

let test_triangle_mined () =
  let db = tiny_db () in
  let p = { Selection.default_params with beta = 0.5; gamma = 0.0; alpha = 0.0 } in
  let features = Selection.select db p in
  let has_triangle =
    List.exists
      (fun (f : Selection.feature) ->
        Lgraph.num_edges f.graph = 3 && Lgraph.num_vertices f.graph = 3)
      features
  in
  Alcotest.(check bool) "triangle feature found" true has_triangle

let test_max_edges_respected () =
  let db = tiny_db () in
  let p = { Selection.default_params with max_edges = 2; beta = 0.0; gamma = 0.0 } in
  let features = Selection.select db p in
  List.iter
    (fun (f : Selection.feature) ->
      Alcotest.(check bool) "size bound" true (Lgraph.num_edges f.graph <= 2))
    features

let test_beta_prunes () =
  let db = tiny_db () in
  let loose = Selection.select db { Selection.default_params with beta = 0.0; gamma = 0.0; alpha = 0.0 } in
  let strict = Selection.select db { Selection.default_params with beta = 0.99; gamma = 0.0; alpha = 0.0 } in
  Alcotest.(check bool) "higher beta, fewer features" true
    (List.length strict <= List.length loose)

let test_gamma_prunes () =
  let db = tiny_db () in
  let loose = Selection.select db { Selection.default_params with gamma = 0.0; beta = 0.0; alpha = 0.0 } in
  let strict = Selection.select db { Selection.default_params with gamma = 5.0; beta = 0.0; alpha = 0.0 } in
  Alcotest.(check bool) "higher gamma, fewer features" true
    (List.length strict <= List.length loose)

let test_max_disjoint_embeddings () =
  Alcotest.(check int) "empty" 0 (Selection.max_disjoint_embeddings []);
  let bs l = Psst_util.Bitset.of_list 8 l in
  let e l = { Embedding.vmap = [||]; edges = bs l } in
  (* {0,1} {1,2} {2,3} {4,5}: max disjoint = {0,1},{2,3},{4,5}. *)
  Alcotest.(check int) "chain + free" 3
    (Selection.max_disjoint_embeddings [ e [ 0; 1 ]; e [ 1; 2 ]; e [ 2; 3 ]; e [ 4; 5 ] ])

let prop_features_unique =
  QCheck.Test.make ~name:"no duplicate feature keys" ~count:30 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 3) in
      let db =
        Array.init 4 (fun _ -> Tgen.random_connected_graph rng ~n:6 ~extra:2 ~vl:3 ~el:2)
      in
      let features =
        Selection.select db { Selection.default_params with beta = 0.2; max_edges = 2 }
      in
      let keys = List.map (fun (f : Selection.feature) -> f.key) features in
      List.length keys = List.length (List.sort_uniq compare keys))

let prop_strong_support_subset =
  QCheck.Test.make ~name:"strong support ⊆ support" ~count:30 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 11) in
      let db =
        Array.init 4 (fun _ -> Tgen.random_connected_graph rng ~n:6 ~extra:2 ~vl:2 ~el:2)
      in
      let features =
        Selection.select db { Selection.default_params with beta = 0.2; max_edges = 2 }
      in
      List.for_all
        (fun (f : Selection.feature) ->
          List.for_all (fun gi -> List.mem gi f.support) f.strong_support)
        features)

let suite =
  [
    Alcotest.test_case "singletons always indexed" `Quick test_singletons_always_indexed;
    Alcotest.test_case "support lists correct" `Quick test_support_lists_correct;
    Alcotest.test_case "triangle mined" `Quick test_triangle_mined;
    Alcotest.test_case "max_edges respected" `Quick test_max_edges_respected;
    Alcotest.test_case "beta prunes" `Quick test_beta_prunes;
    Alcotest.test_case "gamma prunes" `Quick test_gamma_prunes;
    Alcotest.test_case "max disjoint embeddings" `Quick test_max_disjoint_embeddings;
    QCheck_alcotest.to_alcotest prop_features_unique;
    QCheck_alcotest.to_alcotest prop_strong_support_subset;
  ]
