(* Resident query server (DESIGN.md §11).

   Thread roles:
     - accept thread: accepts sockets, spawns one reader per connection;
     - reader threads: parse frames, answer Ping/Get_stats inline, admit
       Run/Run_topk into the bounded queue (or reject with a retryable
       error when the queue is full / the server is stopping);
     - batcher thread: owns the domain pool; pops micro-batches, enforces
       queue-wait deadlines, executes with Query.run_batch_on, writes
       replies.

   The queue mutex orders admission against the drain: once [stopping] is
   set under the mutex, no new job can enter, so the batcher's "stopping
   and empty" exit condition is a true drain barrier — every admitted
   request is answered before stop() returns. *)

module Proto = Psst_proto
module Pool = Psst_util.Pool

(* --- metrics (bound once; see Psst_obs interning rules) --- *)

let m_conns = Psst_obs.counter "server.conns"
let m_requests = Psst_obs.counter "server.requests"
let m_served = Psst_obs.counter "server.served"
let m_reject_full = Psst_obs.counter "server.reject.queue_full"
let m_reject_deadline = Psst_obs.counter "server.reject.deadline"
let m_reject_shutdown = Psst_obs.counter "server.reject.shutdown"
let m_proto_errors = Psst_obs.counter "server.proto.errors"
let m_write_errors = Psst_obs.counter "server.write.errors"
let m_degraded = Psst_obs.counter "server.degraded"
let m_retries = Psst_obs.counter "server.retries"
let m_flat_index = Psst_obs.counter "server.db.flat_index"
let m_batch_size = Psst_obs.histogram ~lo:1. ~hi:1e4 "server.batch.size"
let m_queue_depth = Psst_obs.histogram ~lo:1. ~hi:1e6 "server.queue.depth"
let m_queue_wait = Psst_obs.histogram "server.queue.wait_s"
let m_latency = Psst_obs.histogram "server.latency_s"

type config = {
  endpoint : Proto.endpoint;
  domains : int;
  queue_cap : int;
  deadline_ms : float;
  verify_budget_ms : float;
  batch_max : int;
  trace_cap : int;
  cache_cap : int;
}

let default_config endpoint =
  {
    endpoint;
    domains = 1;
    queue_cap = 128;
    deadline_ms = 0.;
    verify_budget_ms = 0.;
    batch_max = 32;
    trace_cap = 256;
    cache_cap = 16384;
  }

(* Chaos site around batch execution (DESIGN.md §12): a Fail plan here
   stands in for the verification stage dying (pool wedged, OOM-killed
   helper, ...) and exercises the bounds-only degradation path. *)
let fault_batch = Psst_fault.site "server.batch"

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;  (* serialises reply writes and the close *)
  mutable open_ : bool;
}

type job = {
  jconn : conn;
  jid : int;
  jver : int;  (* protocol version of the request frame; replies mirror it *)
  jkind :
    [ `Run of Lgraph.t * Query.config | `Topk of Lgraph.t * int * Query.config ];
  enqueued : float;
}

type t = {
  cfg : config;
  db : Query.database;
  pool : Pool.t;
  cache : Qcache.t option;
      (* cross-query verification cache, shared by every batch on the
         persistent pool; None when [cache_cap = 0] *)
  listen_fd : Unix.file_descr;
  bound : Proto.endpoint;  (* endpoint with the actual port resolved *)
  mutex : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  mutable stopping : bool;
  mutable is_stopped : bool;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable batch_thread : Thread.t option;
  trace_ring : Psst_obs.Trace.t Queue.t;  (* guarded by [mutex] *)
  served_count : int Atomic.t;
  degraded_count : int Atomic.t;
  retry_count : int Atomic.t;  (* retryable error replies sent *)
  start_time : float;
}

let endpoint t = t.bound
let stopped t = t.is_stopped
let served t = Atomic.get t.served_count

let traces t =
  Mutex.lock t.mutex;
  let l = List.of_seq (Queue.to_seq t.trace_ring) in
  Mutex.unlock t.mutex;
  l

let push_trace t tr =
  Mutex.lock t.mutex;
  Queue.add tr t.trace_ring;
  while Queue.length t.trace_ring > t.cfg.trace_cap do
    ignore (Queue.pop t.trace_ring)
  done;
  Mutex.unlock t.mutex

(* --- connection plumbing --- *)

let close_conn t c =
  Mutex.lock c.wmutex;
  let was_open = c.open_ in
  if was_open then begin
    c.open_ <- false;
    (* shutdown() wakes a reader blocked in read(2) on this socket —
       close() alone does not — so stop() can join every reader thread. *)
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())
  end;
  Mutex.unlock c.wmutex;
  if was_open then begin
    Mutex.lock t.mutex;
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    Mutex.unlock t.mutex
  end

let send_reply c ~version reply =
  Mutex.lock c.wmutex;
  (if c.open_ then
     match Proto.write_frame_fd c.fd (Proto.encode_reply ~version reply) with
     | () -> Psst_obs.incr m_served
     | exception (Sys_error _ | Unix.Unix_error (_, _, _)) ->
       (* The client hung up mid-reply: normal under load, not a warning. *)
       Psst_obs.incr m_write_errors
     | exception Psst_fault.Injected _ ->
       (* Injected dead link on proto.write: same accounting as a hang-up;
          the reader side of this connection fails next and closes it. *)
       Psst_obs.incr m_write_errors);
  Mutex.unlock c.wmutex

let send_counted t c ~version reply =
  Atomic.incr t.served_count;
  (match reply with
  | Proto.Answer { stats; _ } when stats.Proto.degraded ->
    Atomic.incr t.degraded_count;
    Psst_obs.incr m_degraded
  | Proto.Error_reply { code; _ } when Proto.error_code_retryable code ->
    Atomic.incr t.retry_count;
    Psst_obs.incr m_retries
  | _ -> ());
  send_reply c ~version reply

(* --- admission --- *)

let admit t job =
  Mutex.lock t.mutex;
  let verdict =
    if t.stopping then `Shutdown
    else if Queue.length t.queue >= t.cfg.queue_cap then `Full
    else begin
      Queue.add job t.queue;
      Psst_obs.observe m_queue_depth (float_of_int (Queue.length t.queue));
      Condition.signal t.cond;
      `Admitted
    end
  in
  Mutex.unlock t.mutex;
  match verdict with
  | `Admitted -> ()
  | `Full ->
    Psst_obs.incr m_reject_full;
    send_counted t job.jconn ~version:job.jver
      (Proto.Error_reply
         {
           id = job.jid;
           code = Proto.Queue_full;
           message =
             Printf.sprintf "admission queue full (%d requests); retry later"
               t.cfg.queue_cap;
         })
  | `Shutdown ->
    Psst_obs.incr m_reject_shutdown;
    send_counted t job.jconn ~version:job.jver
      (Proto.Error_reply
         {
           id = job.jid;
           code = Proto.Shutdown;
           message = "server is shutting down; retry elsewhere";
         })

let health_snapshot t =
  Mutex.lock t.mutex;
  let depth = Queue.length t.queue in
  Mutex.unlock t.mutex;
  {
    Proto.uptime_s = Unix.gettimeofday () -. t.start_time;
    queue_depth = depth;
    served = Atomic.get t.served_count;
    degraded_answers = Atomic.get t.degraded_count;
    retryable_rejections = Atomic.get t.retry_count;
    workers = [];
  }

let health = health_snapshot

let reader_loop t c =
  let rec loop () =
    match Proto.read_request_fd c.fd with
    | exception End_of_file -> close_conn t c
    | exception (Sys_error _ | Unix.Unix_error (_, _, _)) -> close_conn t c
    | exception Psst_fault.Injected _ ->
      (* Injected dead link on proto.read: drop the connection cleanly,
         exactly as a real half-open socket would resolve. *)
      close_conn t c
    | exception Proto.Proto_error msg ->
      (* One error reply, one warning event, then drop the connection:
         after a framing error the byte stream has no trustworthy frame
         boundary left. The peer's version is unknowable at this point, so
         the reply is framed at min_proto_version — decodable by all. *)
      Psst_obs.incr m_proto_errors;
      Psst_obs.warn ~code:"proto" msg;
      send_counted t c ~version:Proto.min_proto_version
        (Proto.Error_reply { id = 0; code = Proto.Malformed; message = msg });
      close_conn t c
    | version, req -> (
      match req with
      | Proto.Ping ->
        Psst_obs.incr m_requests;
        send_counted t c ~version Proto.Pong;
        loop ()
      | Proto.Get_stats ->
        Psst_obs.incr m_requests;
        send_counted t c ~version
          (Proto.Stats_json (Psst_obs.to_json_string ()));
        loop ()
      | Proto.Get_health ->
        Psst_obs.incr m_requests;
        send_counted t c ~version (Proto.Health_reply (health_snapshot t));
        loop ()
      | Proto.Run { id; query; config } ->
        Psst_obs.incr m_requests;
        admit t
          {
            jconn = c;
            jid = id;
            jver = version;
            jkind = `Run (query, config);
            enqueued = Unix.gettimeofday ();
          };
        loop ()
      | Proto.Run_topk { id; query; k; config } ->
        Psst_obs.incr m_requests;
        admit t
          {
            jconn = c;
            jid = id;
            jver = version;
            jkind = `Topk (query, k, config);
            enqueued = Unix.gettimeofday ();
          };
        loop ())
  in
  loop ()

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr when t.stopping ->
      (* stop()'s wake-up connection (or a raced late client): admission
         is closed, drop it. *)
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    | fd, _addr ->
      let c = { fd; wmutex = Mutex.create (); open_ = true } in
      Psst_obs.incr m_conns;
      let th =
        Thread.create
          (fun () ->
            try reader_loop t c
            with e ->
              Psst_obs.warn ~code:"server.reader" (Printexc.to_string e);
              close_conn t c)
          ()
      in
      Mutex.lock t.mutex;
      t.conns <- c :: t.conns;
      t.readers <- th :: t.readers;
      Mutex.unlock t.mutex;
      loop ()
    | exception Unix.Unix_error (e, _, _) ->
      if t.stopping then ()
      else if e = Unix.ECONNABORTED || e = Unix.EINTR then loop ()
      else begin
        (* Transient accept failure (e.g. EMFILE): report, back off, keep
           serving the connections we already have. *)
        Psst_obs.warn ~code:"server.accept" (Unix.error_message e);
        Thread.delay 0.05;
        if t.stopping then () else loop ()
      end
  in
  loop ()

(* --- batching --- *)

let job_error t job code message =
  (match code with
  | Proto.Deadline -> Psst_obs.incr m_reject_deadline
  | _ -> ());
  send_counted t job.jconn ~version:job.jver
    (Proto.Error_reply { id = job.jid; code; message })

let finish_run t job (out : Query.outcome) =
  push_trace t out.trace;
  send_counted t job.jconn ~version:job.jver
    (Proto.Answer
       {
         id = job.jid;
         answers = out.answers;
         stats = Proto.stats_of_query out.stats;
       });
  Psst_obs.observe m_latency (Unix.gettimeofday () -. job.enqueued)

let process_batch t batch =
  let now = Unix.gettimeofday () in
  Psst_obs.observe m_batch_size (float_of_int (List.length batch));
  List.iter
    (fun j -> Psst_obs.observe m_queue_wait (now -. j.enqueued))
    batch;
  let live, expired =
    if t.cfg.deadline_ms <= 0. then (batch, [])
    else
      List.partition
        (fun j -> (now -. j.enqueued) *. 1000. <= t.cfg.deadline_ms)
        batch
  in
  List.iter
    (fun j ->
      job_error t j Proto.Deadline
        (Printf.sprintf "deadline exceeded: waited %.1f ms in queue (limit %.1f)"
           ((now -. j.enqueued) *. 1000.)
           t.cfg.deadline_ms))
    expired;
  let runs, topks =
    List.partition_map
      (fun j ->
        match j.jkind with
        | `Run (q, cfg) -> Either.Left (j, q, cfg)
        | `Topk (q, k, cfg) -> Either.Right (j, q, k, cfg))
      live
  in
  (* Group Run jobs by config so each group is one Query.run_batch_on call
     on the shared pool; answers stay bit-identical to offline runs. *)
  let groups =
    List.fold_left
      (fun acc (j, q, cfg) ->
        match List.assoc_opt cfg acc with
        | Some cell ->
          cell := (j, q) :: !cell;
          acc
        | None -> (cfg, ref [ (j, q) ]) :: acc)
      [] runs
    |> List.rev_map (fun (cfg, cell) -> (cfg, List.rev !cell))
  in
  let budget_ms =
    if t.cfg.verify_budget_ms > 0. then Some t.cfg.verify_budget_ms else None
  in
  List.iter
    (fun (cfg, jobs) ->
      match
        Psst_fault.inject fault_batch;
        Query.run_batch_on ?budget_ms ?cache:t.cache t.pool t.db
          (List.map snd jobs) cfg
      with
      | outs -> List.iter2 (fun (j, _) out -> finish_run t j out) jobs outs
      | exception Psst_fault.Injected _ ->
        (* Verification stage down: degrade the whole group to bounds-only
           answers (supersets of the exact sets, flagged degraded) instead
           of failing the requests — DESIGN.md §12. *)
        Psst_obs.warn ~code:"server.batch"
          "verification unavailable (injected fault): serving bounds-only \
           answers";
        List.iter
          (fun (j, q) ->
            match Query.run_bounds_only ?cache:t.cache t.db q cfg with
            | out -> finish_run t j out
            | exception e ->
              job_error t j Proto.Internal
                ("query failed: " ^ Printexc.to_string e))
          jobs
      | exception e ->
        let msg = Printexc.to_string e in
        Psst_obs.warn ~code:"server.batch" msg;
        List.iter
          (fun (j, _) -> job_error t j Proto.Internal ("query failed: " ^ msg))
          jobs)
    groups;
  List.iter
    (fun (j, q, k, cfg) ->
      match
        Psst_fault.inject fault_batch;
        Topk.run ?cache:t.cache t.db q ~k cfg
      with
      | out ->
        send_counted t j.jconn ~version:j.jver
          (Proto.Topk_answer
             {
               id = j.jid;
               hits =
                 List.map (fun (h : Topk.hit) -> (h.graph, h.ssp)) out.Topk.hits;
             });
        Psst_obs.observe m_latency (Unix.gettimeofday () -. j.enqueued)
      | exception Psst_fault.Injected _ ->
        (* Top-k has no bounds-only fallback; answer with a clean retryable
           error rather than a wrong or missing reply. *)
        job_error t j Proto.Unavailable "top-k stage unavailable; retry"
      | exception e ->
        let msg = Printexc.to_string e in
        Psst_obs.warn ~code:"server.batch" msg;
        job_error t j Proto.Internal ("top-k failed: " ^ msg))
    topks

let batch_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cond t.mutex
    done;
    let batch = ref [] in
    let n = ref 0 in
    while (not (Queue.is_empty t.queue)) && !n < t.cfg.batch_max do
      batch := Queue.pop t.queue :: !batch;
      incr n
    done;
    let batch = List.rev !batch in
    Mutex.unlock t.mutex;
    if batch <> [] then begin
      process_batch t batch;
      loop ()
    end
    else if not t.stopping then loop ()
    (* else: stopping with an empty queue — drained, exit. *)
  in
  loop ()

(* --- lifecycle --- *)

let bind_endpoint = function
  | Proto.Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with e -> Unix.close fd; raise e);
    Unix.listen fd 64;
    (fd, Proto.Unix_socket path)
  | Proto.Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> failwith (host ^ ": unknown host"))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port))
     with e -> Unix.close fd; raise e);
    Unix.listen fd 64;
    let actual =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Proto.Tcp (host, actual))

let start cfg db =
  if cfg.queue_cap < 1 then invalid_arg "Psst_server: queue_cap must be >= 1";
  if cfg.batch_max < 1 then invalid_arg "Psst_server: batch_max must be >= 1";
  if cfg.cache_cap < 0 then invalid_arg "Psst_server: cache_cap must be >= 0";
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  (* Record the index backing once at startup so dashboards can tell a
     zero-copy (flat/mmap) deployment from an eager one. *)
  if Pmi.backing db.Query.pmi = `Flat then Psst_obs.incr m_flat_index;
  let listen_fd, bound = bind_endpoint cfg.endpoint in
  let t =
    {
      cfg;
      db;
      pool = Pool.create ~domains:cfg.domains ();
      cache =
        (if cfg.cache_cap > 0 then Some (Qcache.create ~value_cap:cfg.cache_cap ())
         else None);
      listen_fd;
      bound;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      is_stopped = false;
      conns = [];
      readers = [];
      accept_thread = None;
      batch_thread = None;
      trace_ring = Queue.create ();
      served_count = Atomic.make 0;
      degraded_count = Atomic.make 0;
      retry_count = Atomic.make 0;
      start_time = Unix.gettimeofday ();
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.batch_thread <-
    Some
      (Thread.create
         (fun () ->
           try batch_loop t
           with e ->
             (* A bug escaping process_batch's per-group guards: report it
                loudly; stop() can still join and shut the process down. *)
             Psst_obs.warn ~code:"server.batcher" (Printexc.to_string e))
         ());
  t

let stop t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if not already then begin
    (* Unblock the accept thread. Closing the fd does NOT wake a thread
       already blocked in accept(2) on Linux, so: shutdown the listening
       socket (wakes accept on most kernels), then make one wake-up
       connection to the endpoint as a portable fallback — the accept loop
       sees [stopping] and drops it. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    (try
       let wake =
         match t.bound with
         | Proto.Unix_socket path ->
           let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
           (try Unix.connect fd (Unix.ADDR_UNIX path)
            with e -> Unix.close fd; raise e);
           fd
         | Proto.Tcp (_, port) ->
           let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
           (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
            with e -> Unix.close fd; raise e);
           fd
       in
       Unix.close wake
     with Unix.Unix_error (_, _, _) | Failure _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
    Option.iter Thread.join t.batch_thread;
    (* Every admitted request is answered by now; drop the connections so
       the reader threads unblock and exit. *)
    Mutex.lock t.mutex;
    let conns = t.conns and readers = t.readers in
    Mutex.unlock t.mutex;
    List.iter (fun c -> close_conn t c) conns;
    List.iter Thread.join readers;
    Pool.shutdown t.pool;
    (match t.bound with
    | Proto.Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    | Proto.Tcp _ -> ());
    t.is_stopped <- true
  end
