(* Shared generators and helpers for the test suites. *)

module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

let rng_of_seed seed = Prng.make seed

(* Random connected labelled graph with [n] vertices, [extra] edges beyond a
   random spanning tree, [vl] vertex labels and [el] edge labels. *)
let random_connected_graph rng ~n ~extra ~vl ~el =
  let vlabels = Array.init n (fun _ -> Prng.int rng vl) in
  let edges = ref [] in
  let has (u, v) = List.exists (fun (a, b, _) -> (a, b) = (min u v, max u v)) !edges in
  (* Spanning tree: attach vertex i to a random earlier vertex. *)
  for i = 1 to n - 1 do
    let j = Prng.int rng i in
    edges := (min i j, max i j, Prng.int rng el) :: !edges
  done;
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra && !attempts < 50 * (extra + 1) do
    incr attempts;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (has (u, v)) then begin
      edges := (min u v, max u v, Prng.int rng el) :: !edges;
      incr added
    end
  done;
  Lgraph.create ~vlabels ~edges:!edges

(* Arbitrary (possibly disconnected) random graph. *)
let random_graph rng ~n ~m ~vl ~el =
  let vlabels = Array.init n (fun _ -> Prng.int rng vl) in
  let edges = ref [] in
  let has (u, v) = List.exists (fun (a, b, _) -> (a, b) = (min u v, max u v)) !edges in
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < m && !attempts < 50 * (m + 1) do
    incr attempts;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (has (u, v)) then begin
      edges := (min u v, max u v, Prng.int rng el) :: !edges;
      incr added
    end
  done;
  Lgraph.create ~vlabels ~edges:!edges

(* Random permutation image of a graph: same structure, shuffled vertex ids
   and edge order. *)
let permuted rng g =
  let n = Lgraph.num_vertices g in
  let perm = Array.init n (fun i -> i) in
  Prng.shuffle rng perm;
  let vlabels = Array.make n 0 in
  Array.iteri (fun old l -> vlabels.(perm.(old)) <- l) (Lgraph.vertex_labels g);
  let edges =
    Array.to_list (Lgraph.edges g)
    |> List.map (fun (e : Lgraph.edge) -> (perm.(e.u), perm.(e.v), e.label))
  in
  let edges = Array.of_list edges in
  Prng.shuffle rng edges;
  Lgraph.create ~vlabels ~edges:(Array.to_list edges)

(* Brute-force non-induced subgraph isomorphism by trying all injective
   vertex maps; ground truth for VF2. *)
let brute_subiso pattern target =
  let np = Lgraph.num_vertices pattern and nt = Lgraph.num_vertices target in
  if np > nt then false
  else begin
    let map = Array.make np (-1) in
    let used = Array.make nt false in
    let ok_sofar pu =
      Lgraph.vertex_label pattern pu = Lgraph.vertex_label target map.(pu)
      && List.for_all
           (fun (w, eid) ->
             map.(w) < 0
             ||
             match Lgraph.find_edge target map.(pu) map.(w) with
             | Some te -> te.label = (Lgraph.edge pattern eid).label
             | None -> false)
           (Lgraph.neighbors pattern pu)
    in
    let rec go pu =
      if pu = np then true
      else begin
        let found = ref false in
        let tv = ref 0 in
        while (not !found) && !tv < nt do
          if not used.(!tv) then begin
            map.(pu) <- !tv;
            used.(!tv) <- true;
            if ok_sofar pu && go (pu + 1) then found := true;
            used.(!tv) <- false;
            map.(pu) <- -1
          end;
          incr tv
        done;
        !found
      end
    in
    go 0
  end

(* Random chain-consistent probabilistic graph over a random skeleton: group
   edges into consecutive scopes of <= 3 sharing one edge with the previous
   scope, then build random conditional factors. *)
let random_pgraph rng ~n ~extra ~vl ~el =
  let g = random_connected_graph rng ~n ~extra ~vl ~el in
  let m = Lgraph.num_edges g in
  let factors = ref [] in
  let covered = ref [] in
  let i = ref 0 in
  while !i < m do
    let size = 1 + Prng.int rng (min 2 (m - !i)) in
    let news = List.init size (fun k -> !i + k) in
    let olds = match !covered with [] -> [] | last :: _ -> [ last ] in
    let scope = List.sort_uniq compare (olds @ news) in
    let scope_arr = Array.of_list scope in
    let k = Array.length scope_arr in
    let old_positions =
      List.filter_map
        (fun v ->
          let rec idx j = if scope_arr.(j) = v then j else idx (j + 1) in
          if List.mem v olds then Some (idx 0) else None)
        scope
    in
    (* Random conditional: for each assignment of old vars, a random
       distribution over new-var assignments. *)
    let tables = Hashtbl.create 4 in
    let data =
      Array.init (1 lsl k) (fun mask ->
          let old_mask =
            List.fold_left
              (fun acc p -> if mask land (1 lsl p) <> 0 then acc lor (1 lsl p) else acc)
              0 old_positions
          in
          ignore old_mask;
          Prng.float rng 1.0 +. 0.05)
    in
    (* Normalise per old-assignment slice. *)
    let old_mask_of mask =
      List.fold_left
        (fun acc p -> acc lor (mask land (1 lsl p)))
        0 old_positions
    in
    Array.iteri
      (fun mask v ->
        let om = old_mask_of mask in
        Hashtbl.replace tables om (v +. Option.value ~default:0. (Hashtbl.find_opt tables om)))
      data;
    let data = Array.mapi (fun mask v -> v /. Hashtbl.find tables (old_mask_of mask)) data in
    factors := Factor.create scope_arr data :: !factors;
    covered := List.rev news @ !covered;
    i := !i + size
  done;
  Pgraph.make g (List.rev !factors)

let graph_testable =
  Alcotest.testable Lgraph.pp Lgraph.equal_structure

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_close ?(eps = 1e-9) msg expected actual =
  if not (close ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual
