lib/cuts/parallel_graph.ml: Array Embedding List Psst_util
