(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]) — the per-section
    checksum of the on-disk store format (DESIGN.md §9). Matches the CRC used
    by zlib/gzip, so stored files can be cross-checked with external tools. *)

(** [digest s] is the CRC of the whole string. *)
val digest : string -> int32

(** [update crc s ~pos ~len] extends [crc] with a substring, so a digest can
    be computed over a concatenation without materialising it. Raises
    [Invalid_argument] when [pos]/[len] do not describe a valid substring. *)
val update : int32 -> string -> pos:int -> len:int -> int32
