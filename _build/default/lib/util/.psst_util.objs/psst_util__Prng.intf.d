lib/util/prng.mli: Random
