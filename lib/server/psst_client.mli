(** Blocking client for the {!Psst_server} wire protocol — the substrate of
    [psst client], the differential serving tests and the bench load
    driver. One [t] is one connection; it is not thread-safe (use one
    connection per client thread). *)

type t

(** Raises [Unix.Unix_error] when the endpoint cannot be reached. *)
val connect : Psst_proto.endpoint -> t

val close : t -> unit

(** Raw frame I/O. [send_raw] writes arbitrary bytes (the fuzz tests use
    it to deliver corrupted frames); [half_close] shuts down the send
    side so the server sees EOF while the reply path stays open. *)
val send : t -> Psst_proto.request -> unit

val read_reply : t -> Psst_proto.reply
val send_raw : t -> string -> unit
val half_close : t -> unit

(** [rpc c req] — send one request, read one reply. *)
val rpc : t -> Psst_proto.request -> Psst_proto.reply

(** [ping c] — round-trip; [Failure] if the server answers anything but
    [Pong]. *)
val ping : t -> unit

(** Full registry dump of the server process. *)
val stats_json : t -> string

(** [run_all c queries config] — pipeline all queries (ids [0..n-1]),
    then collect the replies and return them indexed by query position
    (replies may arrive out of order across micro-batches). Each slot is
    an [Answer] or an [Error_reply]. *)
val run_all : t -> Lgraph.t list -> Query.config -> Psst_proto.reply array
