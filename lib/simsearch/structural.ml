module Bitset = Psst_util.Bitset

type u16s = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The count matrix is either eagerly decoded rows or a zero-copy u16 view
   over a memory-mapped flat image (DESIGN.md §15), feature-major. Both
   answer [cell] identically; offline mutation materialises rows first. *)
type backing =
  | Rows of int array array (* feature -> graph -> capped embedding count *)
  | Cells of u16s

type t = {
  features : Selection.feature array;
  backing : backing;
  num_graphs : int;
  emb_cap : int;
}

let count_embeddings ~cap pattern target =
  if Lgraph.num_edges pattern = 0 then
    (* Vertex features: count label occurrences (always present, certain). *)
    min cap
      (Array.to_list (Lgraph.vertex_labels target)
      |> List.filter (fun l -> l = Lgraph.vertex_label pattern 0)
      |> List.length)
  else List.length (Vf2.distinct_embeddings ~cap pattern target)

let build db features ~emb_cap =
  let features = Array.of_list features in
  let counts =
    Array.map
      (fun (f : Selection.feature) ->
        let row = Array.make (Array.length db) 0 in
        List.iter
          (fun gi -> row.(gi) <- count_embeddings ~cap:emb_cap f.graph db.(gi))
          f.support;
        row)
      features
  in
  { features; backing = Rows counts; num_graphs = Array.length db; emb_cap }

let of_parts ~features ~counts ~emb_cap =
  let features = Array.of_list features in
  if emb_cap <= 0 then invalid_arg "Structural.of_parts: emb_cap must be positive";
  if Array.length counts <> Array.length features then
    invalid_arg "Structural.of_parts: one count row per feature required";
  let ng = if Array.length counts = 0 then 0 else Array.length counts.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> ng then
        invalid_arg "Structural.of_parts: ragged count matrix";
      Array.iter
        (fun c -> if c < 0 then invalid_arg "Structural.of_parts: negative count")
        row)
    counts;
  {
    features;
    backing = Rows (Array.map Array.copy counts);
    num_graphs = ng;
    emb_cap;
  }

let of_cells ~features ~cells ~num_graphs ~emb_cap =
  let features = Array.of_list features in
  if emb_cap <= 0 then invalid_arg "Structural.of_cells: emb_cap must be positive";
  if num_graphs < 0 then invalid_arg "Structural.of_cells: negative graph count";
  if Bigarray.Array1.dim cells <> Array.length features * num_graphs then
    invalid_arg "Structural.of_cells: cell count does not match dimensions";
  { features; backing = Cells cells; num_graphs; emb_cap }

let rows_matrix t =
  match t.backing with
  | Rows c -> c
  | Cells cells ->
    let ng = t.num_graphs in
    Array.init (Array.length t.features) (fun fi ->
        Array.init ng (fun gi -> Bigarray.Array1.get cells ((fi * ng) + gi)))

let counts t = Array.map Array.copy (rows_matrix t)
let emb_cap t = t.emb_cap

let num_features t = Array.length t.features
let num_graphs t = t.num_graphs

let size_cells t = Array.length t.features * t.num_graphs

(* Max number of q-embeddings of [f] destroyed by deleting one edge of q. *)
let max_per_edge q embs =
  let m = Lgraph.num_edges q in
  if m = 0 then 0
  else begin
    let per_edge = Array.make m 0 in
    List.iter
      (fun e ->
        Bitset.iter (fun eid -> per_edge.(eid) <- per_edge.(eid) + 1) e.Embedding.edges)
      embs;
    Array.fold_left max 0 per_edge
  end

let add_graphs t gs =
  if Array.length gs = 0 then t
  else begin
    let counts =
      Array.mapi
        (fun fi row ->
          let f = t.features.(fi) in
          let cs =
            Array.map
              (fun g ->
                if
                  Lgraph.num_edges f.Selection.graph = 0
                  || Vf2.exists f.Selection.graph g
                then count_embeddings ~cap:t.emb_cap f.Selection.graph g
                else 0)
              gs
          in
          Array.append row cs)
        (rows_matrix t)
    in
    {
      t with
      backing = Rows counts;
      num_graphs = t.num_graphs + Array.length gs;
    }
  end

let add_graph t g = add_graphs t [| g |]

let m_checked = Psst_obs.counter "structural.checked"
let m_survivors = Psst_obs.counter "structural.survivors"

let candidates t ~skeleton q ~delta =
  Psst_obs.add m_checked t.num_graphs;
  let q_vh = Lgraph.vertex_label_hist q and q_eh = Lgraph.edge_label_hist q in
  (* Per-feature requirements from the query. *)
  let requirements =
    Array.mapi
      (fun fi (f : Selection.feature) ->
        if Lgraph.num_edges f.graph = 0 then (fi, 0)
        else begin
          let embs = Vf2.distinct_embeddings ~cap:t.emb_cap f.graph q in
          let n_q = List.length embs in
          if n_q = 0 || n_q >= t.emb_cap then (fi, 0)
            (* at the cap the count is a lower bound: cannot derive a
               sound requirement, so skip the feature *)
          else (fi, max 0 (n_q - (delta * max_per_edge q embs)))
        end)
      t.features
  in
  let active = Array.to_list requirements |> List.filter (fun (_, r) -> r > 0) in
  (* Hoist the backing dispatch out of the per-graph loop. *)
  let cell =
    match t.backing with
    | Rows c -> fun fi gi -> c.(fi).(gi)
    | Cells cells ->
      let ng = t.num_graphs in
      fun fi gi -> Bigarray.Array1.get cells ((fi * ng) + gi)
  in
  (* Feature requirements first: they read index cells only (zero-copy on
     a mapped image), so the label-histogram check — which touches the
     graph itself and forces a lazy decode — only runs on the survivors.
     The filter is a conjunction, so the order cannot change the result. *)
  let survivors =
    List.init t.num_graphs (fun gi -> gi)
    |> List.filter (fun gi ->
           List.for_all (fun (fi, req) -> cell fi gi >= req) active
           &&
           let g = skeleton gi in
           Lgraph.hist_missing q_eh (Lgraph.edge_label_hist g) <= delta
           (* Each pair of unmatched query vertices costs at least one common
              edge, so more than 2*delta missing vertex labels is fatal. *)
           && Lgraph.hist_missing q_vh (Lgraph.vertex_label_hist g) <= 2 * delta)
  in
  Psst_obs.add m_survivors (List.length survivors);
  survivors

let verify_candidate ~skeleton q ~delta gi = Distance.within q (skeleton gi) ~delta
