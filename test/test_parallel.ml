(* The domain-pool scheduler and the parallel query paths built on it:
   Pool primitives, bit-identical answers across pool sizes, and
   incremental indexing consistency. *)

module Pool = Psst_util.Pool
module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 400 }
let fast_smp = { Verify.default_config with tau = 0.3 }

(* --- Pool primitives --- *)

let test_pool_map_matches_sequential () =
  let a = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) a in
  List.iter
    (fun domains ->
      let got =
        Pool.with_pool ~domains (fun p ->
            Pool.map_array p (fun i -> (i * i) + 1) a)
      in
      Alcotest.(check (array int))
        (Printf.sprintf "map_array @ %d domains" domains)
        expected got)
    [ 1; 2; 4 ]

let test_pool_map_chunked_ordering () =
  let a = Array.init 37 string_of_int in
  let got =
    Pool.with_pool ~domains:3 (fun p -> Pool.map_array p ~chunk:2 String.length a)
  in
  Alcotest.(check (array int)) "chunked ordering" (Array.map String.length a) got

let test_pool_iter_range_covers () =
  Pool.with_pool ~domains:4 (fun p ->
      let hits = Array.make 200 0 in
      Pool.iter_range p 200 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_pool_empty_and_sequential () =
  Pool.with_pool ~domains:1 (fun p ->
      Alcotest.(check int) "size 1" 1 (Pool.size p);
      Alcotest.(check (array int)) "empty input" [||]
        (Pool.map_array p (fun x -> x) [||]);
      Pool.iter_range p 0 (fun _ -> Alcotest.fail "must not be called"))

let test_pool_propagates_exception () =
  Pool.with_pool ~domains:3 (fun p ->
      match Pool.iter_range p 64 (fun i -> if i = 57 then failwith "boom") with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_pool_reused_across_calls () =
  Pool.with_pool ~domains:3 (fun p ->
      for round = 1 to 5 do
        let got = Pool.map_array p (fun i -> i + round) (Array.init 20 Fun.id) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init 20 (fun i -> i + round))
          got
      done)

let test_prng_stream_independent_of_order () =
  let draw i = Prng.int (Prng.stream ~seed:42 i) 1_000_000 in
  let forward = List.init 10 draw in
  let backward = List.rev (List.init 10 (fun i -> draw (9 - i))) in
  Alcotest.(check (list int)) "stream i independent of draw order" forward backward;
  Alcotest.(check bool) "distinct streams differ" true
    (List.sort_uniq compare forward |> List.length > 5)

(* --- Determinism of the parallel query paths --- *)

let make_db seed n =
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
        max_vertices = 10; motif_edges = 3 }
  in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  (ds, db)

let counters (s : Query.stats) =
  ( s.structural_candidates,
    s.prob_candidates,
    s.accepted_by_bounds,
    s.pruned_by_bounds )

let test_run_deterministic_across_domains () =
  let ds, db = make_db 91 30 in
  let rng = Prng.make 17 in
  let config =
    { Query.default_config with epsilon = 0.4; delta = 1;
      verifier = `Smp fast_smp }
  in
  for trial = 1 to 3 do
    let q, _ = Generator.extract_query rng ds ~edges:4 in
    let seq = Query.run ~domains:1 db q config in
    let par = Query.run ~domains:4 db q config in
    Alcotest.(check (list int))
      (Printf.sprintf "trial %d answers" trial)
      seq.Query.answers par.Query.answers;
    Alcotest.(check bool)
      (Printf.sprintf "trial %d pruning counters" trial)
      true
      (counters seq.Query.stats = counters par.Query.stats)
  done

let test_run_batch_matches_run () =
  let ds, db = make_db 93 20 in
  let rng = Prng.make 29 in
  let config =
    { Query.default_config with epsilon = 0.4; delta = 1;
      verifier = `Smp fast_smp }
  in
  let queries = List.init 4 (fun _ -> fst (Generator.extract_query rng ds ~edges:4)) in
  let solo = List.map (fun q -> Query.run db q config) queries in
  let batch = Query.run_batch ~domains:4 db queries config in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check (list int))
        (Printf.sprintf "query %d batch = solo" i)
        a.Query.answers b.Query.answers)
    (List.combine solo batch)

let test_stats_verification_counters () =
  let ds, db = make_db 95 20 in
  let rng = Prng.make 41 in
  let q, _ = Generator.extract_query rng ds ~edges:4 in
  let config =
    { Query.default_config with epsilon = 0.4; delta = 1;
      verifier = `Smp fast_smp }
  in
  let out = Query.run ~domains:2 db q config in
  Alcotest.(check int) "verify_domains records the pool size" 2
    out.Query.stats.verify_domains;
  Alcotest.(check bool) "cpu time covers at least the wall time" true
    (out.Query.stats.prob_candidates = 0
    || out.Query.stats.t_verification_cpu
       >= out.Query.stats.t_verification *. 0.5)

(* --- Incremental indexing: add_graph equals indexing from scratch --- *)

let test_add_graph_consistent () =
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = 10; seed = 97;
        min_vertices = 6; max_vertices = 10; motif_edges = 3 }
  in
  let mining = { Selection.default_params with max_edges = 2; beta = 0.2 } in
  let head = Array.sub ds.graphs 0 9 in
  let last = ds.graphs.(9) in
  let db_inc =
    Query.add_graph
      (Query.index_database ~mining ~bounds:fast_bounds head)
      last
  in
  let db_full = Query.index_database ~mining ~bounds:fast_bounds ds.graphs in
  (* Exact verification + certified bounds make both pipelines exact, so
     the answer sets must coincide even though the incremental index mines
     no new features (its bounds may be looser). *)
  let config =
    { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Exact }
  in
  let rng = Prng.make 53 in
  for trial = 1 to 3 do
    let q, _ = Generator.extract_query rng ds ~edges:4 in
    let a = Query.run db_full q config in
    let b = Query.run db_inc q config in
    Alcotest.(check (list int))
      (Printf.sprintf "trial %d incremental = from-scratch" trial)
      a.Query.answers b.Query.answers
  done

let suite =
  [
    Alcotest.test_case "pool: map = sequential map" `Quick
      test_pool_map_matches_sequential;
    Alcotest.test_case "pool: chunked ordering" `Quick test_pool_map_chunked_ordering;
    Alcotest.test_case "pool: iter_range covers once" `Quick test_pool_iter_range_covers;
    Alcotest.test_case "pool: empty & sequential" `Quick test_pool_empty_and_sequential;
    Alcotest.test_case "pool: exception propagation" `Quick
      test_pool_propagates_exception;
    Alcotest.test_case "pool: reuse across calls" `Quick test_pool_reused_across_calls;
    Alcotest.test_case "prng: streams order-independent" `Quick
      test_prng_stream_independent_of_order;
    Alcotest.test_case "query: domains 1 = domains 4" `Slow
      test_run_deterministic_across_domains;
    Alcotest.test_case "query: run_batch = run" `Slow test_run_batch_matches_run;
    Alcotest.test_case "query: parallel stats counters" `Slow
      test_stats_verification_counters;
    Alcotest.test_case "query: add_graph = reindex" `Slow test_add_graph_consistent;
  ]
