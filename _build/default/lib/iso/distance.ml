let lower_bound q g =
  (* Any edge of q whose label has no unmatched counterpart in g cannot be
     in a common subgraph; similarly each missing vertex label forces the
     loss of at least one incident edge... conservatively we only use the
     edge-label bound, which is always sound. *)
  Lgraph.hist_missing (Lgraph.edge_label_hist q) (Lgraph.edge_label_hist g)

let dis q g =
  let c = Mcs.common_edges q g in
  Lgraph.num_edges q - c

let within q g ~delta =
  if delta < 0 then false
  else if lower_bound q g > delta then false
  else if Vf2.exists q g then true
  else
    let needed = Lgraph.num_edges q - delta in
    if needed <= 0 then true
    else Mcs.common_edges ~stop_at:needed q g >= needed
