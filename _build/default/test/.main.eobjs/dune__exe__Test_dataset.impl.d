test/test_dataset.ml: Alcotest Array Distance Embedding Generator Lgraph List Option Pgraph Printf Psst_util Tgen Velim Vf2
