(* Replication & failover (DESIGN.md §17): the pins that make a standby
   trustworthy. Differential — a standby's answers at an applied epoch
   are bit-identical to an offline Query.run over the same chain (1 and
   4 domains, cold and warm cache), and its delta files are byte-for-byte
   the primary's. Catch-up — a standby that was down while the primary
   ingested reconnects from its chain's next sequence number and
   converges; one that starts before its primary exists keeps retrying
   until it appears. Ack gating — a lagging subscriber turns the ingest
   ack into a retryable error while the batch stays applied and
   persisted, and a retry with the same idempotency token converges on
   the original Ok without double-ingesting. Promotion — a promoted
   standby holds every batch the primary ever acked, flips writable, and
   appends to the replicated chain where the primary left off. Routing —
   a replica group fails over to the standby mid-request when the
   primary dies (answers stay exact, not degraded) and fails back when
   it returns, with the roster naming the preferred replica. *)

module P = Psst_proto
module Client = Psst_client
module Server = Psst_server
module Replica = Psst_replica
module I = Psst_ingest
module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 400 }
let fast_smp = { Verify.default_config with tau = 0.3 }

let make_db seed n =
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
        max_vertices = 10; motif_edges = 3 }
  in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  (ds, db)

let make_batch seed n =
  (Generator.generate { Generator.default_params with num_graphs = n; seed })
    .Generator.graphs

let base_config =
  { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Smp fast_smp }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let remove_store path =
  (try Sys.remove path with Sys_error _ -> ());
  for seq = 1 to 32 do
    try Sys.remove (I.delta_path path seq) with Sys_error _ -> ()
  done

let with_tmp_store f =
  let path = Filename.temp_file "psst_test_rep" ".psst" in
  Fun.protect ~finally:(fun () -> remove_store path) (fun () -> f path)

let fresh_sock () = Filename.temp_file "psst_test_rep" ".sock"

let wait_for ?(timeout = 20.) what pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () -. t0 > timeout then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let check_answer ~what expect = function
  | P.Answer { answers; stats; _ } ->
    Alcotest.(check (list int))
      (what ^ " answers") expect.Query.answers answers;
    Alcotest.(check bool) (what ^ " not degraded") false stats.P.degraded;
    Alcotest.(check bool)
      (what ^ " pruning counters") true
      (stats = P.stats_of_query expect.Query.stats)
  | P.Error_reply { message; _ } ->
    Alcotest.failf "%s: error reply %S" what message
  | _ -> Alcotest.failf "%s: expected Answer" what

(* A primary/standby pair over byte-identical base stores: the primary
   serves [db] writable with a replication hub, the standby serves a
   copy read-only with the replication loop as its only mutator. *)
type pair = {
  ppath : string;
  spath : string;
  pchain : I.chain;
  schain : I.chain;
  hub : Replica.hub;
  psrv : Server.t;
  ssrv : Server.t;
  mutable standby : Replica.standby option;
}

let with_pair ?(domains = 1) ?ack_timeout_ms db f =
  with_tmp_store @@ fun ppath ->
  with_tmp_store @@ fun spath ->
  Query.save_database ppath db;
  write_file spath (read_file ppath);
  let pdb, pchain = I.load ppath in
  let sdb, schain = I.load spath in
  let hub = Replica.hub ?ack_timeout_ms pchain in
  let psock = fresh_sock () and ssock = fresh_sock () in
  let psrv =
    Server.start ~chain:pchain ~publisher:(Replica.publisher hub)
      { (Server.default_config (P.Unix_socket psock)) with Server.domains }
      pdb
  in
  let ssrv =
    Server.start ~chain:schain
      {
        (Server.default_config (P.Unix_socket ssock)) with
        Server.domains;
        writable = false;
      }
      sdb
  in
  let t =
    {
      ppath;
      spath;
      pchain;
      schain;
      hub;
      psrv;
      ssrv;
      standby =
        Some
          (Replica.start_standby
             ~primary:(Server.endpoint psrv)
             ~chain:schain (Server.snapshot_ref ssrv));
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Replica.stop_standby t.standby;
      Server.stop psrv;
      Replica.stop_hub hub;
      Server.stop ssrv;
      List.iter
        (fun s -> try Sys.remove s with Sys_error _ -> ())
        [ psock; ssock ])
    (fun () -> f t)

let with_client srv f =
  let c = Client.connect (Server.endpoint srv) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ingest_ok ?token srv batch =
  with_client srv (fun c ->
      match Client.add_graphs ?token ~id:7 c batch with
      | Ok r -> (r.I.epoch, r.I.base, r.I.count)
      | Error (_, msg) -> Alcotest.failf "ingest failed: %s" msg)

let chains_byte_identical ~what ppath spath ~seqs =
  Alcotest.(check bool)
    (what ^ " base byte-identical") true
    (read_file ppath = read_file spath);
  List.iter
    (fun seq ->
      Alcotest.(check bool)
        (Printf.sprintf "%s delta %d byte-identical" what seq)
        true
        (read_file (I.delta_path ppath seq) = read_file (I.delta_path spath seq)))
    seqs

(* --- the standby differential pin --- *)

let check_standby_differential ~domains () =
  let ds, db0 = make_db 733 20 in
  let b1 = make_batch 1013 5 and b2 = make_batch 1019 4 in
  let db1 = Query.add_graphs db0 b1 in
  let db2 = Query.add_graphs db1 b2 in
  let rng = Prng.make 59 in
  let queries =
    List.init 3 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let offline = List.map (fun q -> Query.run db2 q base_config) queries in
  with_pair ~domains db0 (fun t ->
      let e1, base1, c1 = ingest_ok t.psrv b1 in
      Alcotest.(check (list int))
        "first ack"
        [ 1; Corpus.length db0.Query.graphs; Array.length b1 ]
        [ e1; base1; c1 ];
      let e2, _, _ = ingest_ok t.psrv b2 in
      Alcotest.(check int) "second ack epoch" 2 e2;
      (* The acks were gated on replication: both batches are already
         applied and persisted on the standby. *)
      let st = Option.get t.standby in
      Alcotest.(check int) "standby applied seq" 2 (Replica.applied_seq st);
      Alcotest.(check int) "standby epoch" 2 (Server.epoch t.ssrv);
      with_client t.ssrv (fun c ->
          (* Cold, then a warm repeat: the standby's cache must serve the
             replicated epoch, bit-identical to the offline reference. *)
          List.iter
            (fun pass ->
              List.iteri
                (fun i q ->
                  check_answer
                    ~what:
                      (Printf.sprintf "standby %s query %d @ %d domains" pass i
                         domains)
                    (List.nth offline i)
                    (Client.rpc c
                       (P.Run { id = i; query = q; config = base_config })))
                queries)
            [ "cold"; "warm" ]);
      (* And the primary agrees with its own standby. *)
      with_client t.psrv (fun c ->
          List.iteri
            (fun i q ->
              check_answer
                ~what:(Printf.sprintf "primary query %d @ %d domains" i domains)
                (List.nth offline i)
                (Client.rpc c (P.Run { id = i; query = q; config = base_config })))
            queries);
      chains_byte_identical ~what:"replicated" t.ppath t.spath ~seqs:[ 1; 2 ];
      (* A read-only standby refuses writes with a retryable error. *)
      with_client t.ssrv (fun c ->
          match Client.add_graphs ~id:9 c b1 with
          | Error (code, msg) ->
            Alcotest.(check string)
              "standby rejects writes" "unavailable"
              (P.error_code_name code);
            Alcotest.(check bool)
              "standby names the standby role" true
              (contains msg "standby" || contains msg "read-only")
          | Ok _ -> Alcotest.fail "standby accepted Add_graphs"))

let test_standby_differential_1 () = check_standby_differential ~domains:1 ()
let test_standby_differential_4 () = check_standby_differential ~domains:4 ()

(* --- catch-up: disconnect, miss batches, reconnect, converge --- *)

let test_catch_up () =
  let ds, db0 = make_db 739 15 in
  let b1 = make_batch 1021 4 and b2 = make_batch 1031 5 in
  let db2 = Query.add_graphs (Query.add_graphs db0 b1) b2 in
  let rng = Prng.make 61 in
  let q = fst (Generator.extract_query rng ds ~edges:4) in
  let offline = Query.run db2 q base_config in
  with_pair db0 (fun t ->
      ignore (ingest_ok t.psrv b1);
      let st = Option.get t.standby in
      Alcotest.(check int) "replicated before outage" 1 (Replica.applied_seq st);
      (* Standby outage: the stream stops, the primary keeps ingesting
         (the hub degrades to standalone acks once the subscriber is
         gone). *)
      Replica.stop_standby st;
      t.standby <- None;
      ignore (ingest_ok t.psrv b2);
      Alcotest.(check int) "standby missed the batch" 1 (t.schain.I.next_seq - 1);
      (* Reconnect from the chain's next seq: only the missed delta is
         streamed, and the standby converges. *)
      let st2 =
        Replica.start_standby
          ~primary:(Server.endpoint t.psrv)
          ~chain:t.schain
          (Server.snapshot_ref t.ssrv)
      in
      t.standby <- Some st2;
      wait_for "catch-up to seq 2" (fun () -> Replica.applied_seq st2 = 2);
      Alcotest.(check int) "standby epoch after catch-up" 2 (Server.epoch t.ssrv);
      chains_byte_identical ~what:"caught-up" t.ppath t.spath ~seqs:[ 1; 2 ];
      with_client t.ssrv (fun c ->
          check_answer ~what:"caught-up standby answer" offline
            (Client.rpc c (P.Run { id = 0; query = q; config = base_config }))))

(* A standby started before its primary exists retries with backoff and
   connects once the primary appears — the reconnect loop, pinned. *)
let test_standby_outlives_connect_refusals () =
  let _, db = make_db 743 10 in
  let b = make_batch 1033 3 in
  with_tmp_store @@ fun ppath ->
  with_tmp_store @@ fun spath ->
  Query.save_database ppath db;
  write_file spath (read_file ppath);
  let pdb, pchain = I.load ppath in
  let sdb, schain = I.load spath in
  let ssock = fresh_sock () in
  let ssrv =
    Server.start ~chain:schain
      {
        (Server.default_config (P.Unix_socket ssock)) with
        Server.writable = false;
      }
      sdb
  in
  (* Nobody listens here yet: every connect attempt is refused. *)
  let psock = fresh_sock () in
  let st =
    Replica.start_standby ~backoff_ms:10. ~max_backoff_ms:50.
      ~primary:(P.Unix_socket psock) ~chain:schain (Server.snapshot_ref ssrv)
  in
  let hub = Replica.hub pchain in
  Fun.protect
    ~finally:(fun () ->
      Replica.stop_standby st;
      Replica.stop_hub hub;
      Server.stop ssrv;
      List.iter
        (fun s -> try Sys.remove s with Sys_error _ -> ())
        [ psock; ssock ])
    (fun () ->
      Thread.delay 0.1;
      Alcotest.(check int) "nothing applied while refused" 0
        (Replica.applied_seq st);
      let psrv =
        Server.start ~chain:pchain ~publisher:(Replica.publisher hub)
          (Server.default_config (P.Unix_socket psock))
          pdb
      in
      Fun.protect
        ~finally:(fun () -> Server.stop psrv)
        (fun () ->
          ignore (ingest_ok psrv b);
          wait_for "late-born primary replicated" (fun () ->
              Replica.applied_seq st = 1);
          chains_byte_identical ~what:"late-born" ppath spath ~seqs:[ 1 ]))

(* --- ack gating: lagging standby, applied batch, token retry --- *)

let test_ack_gate_lagging () =
  let _, db = make_db 751 10 in
  let batch = make_batch 1039 4 in
  with_tmp_store @@ fun ppath ->
  Query.save_database ppath db;
  let pdb, pchain = I.load ppath in
  let hub = Replica.hub ~ack_timeout_ms:100. pchain in
  let publisher = Replica.publisher hub in
  let psock = fresh_sock () in
  let psrv =
    Server.start ~chain:pchain ~publisher
      (Server.default_config (P.Unix_socket psock))
      pdb
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop psrv;
      Replica.stop_hub hub;
      try Sys.remove psock with Sys_error _ -> ())
    (fun () ->
      (* A subscriber that receives frames but never acknowledges them:
         the ack gate must time out into a retryable error while the
         batch stays applied and persisted. *)
      let sub =
        match
          publisher.Server.pub_subscribe ~from_seq:1 ~send:(fun _ -> true)
        with
        | Ok s -> s
        | Error msg -> Alcotest.failf "subscribe failed: %s" msg
      in
      let base = Corpus.length db.Query.graphs in
      with_client psrv (fun c ->
          (match Client.add_graphs ~id:1 ~token:"tok-lag" c batch with
          | Error (code, msg) ->
            Alcotest.(check string)
              "lagging is retryable" "unavailable"
              (P.error_code_name code);
            Alcotest.(check bool)
              "lagging is named" true
              (contains msg "replication lagging")
          | Ok _ -> Alcotest.fail "ack was not gated on the lagging standby");
          (* The batch is applied and persisted despite the error... *)
          Alcotest.(check int) "batch applied" 1 (Server.epoch psrv);
          Alcotest.(check bool)
            "batch persisted" true
            (Sys.file_exists (I.delta_path ppath 1));
          (* ...and once the dead subscriber is gone, the same-token
             retry converges on the original ack without re-ingesting. *)
          sub.Server.sub_close ();
          match Client.add_graphs ~id:2 ~token:"tok-lag" c batch with
          | Ok r ->
            Alcotest.(check (list int))
              "retry answers the original ack"
              [ 1; base; Array.length batch ]
              [ r.I.epoch; r.I.base; r.I.count ]
          | Error (_, msg) -> Alcotest.failf "retry failed: %s" msg);
      Alcotest.(check int)
        "ingested exactly once" (base + Array.length batch)
        (Corpus.length (Server.database psrv).Query.graphs);
      Alcotest.(check bool)
        "replication lag warned" true
        (List.exists
           (fun w -> w.Psst_obs.code = "ingest.replication")
           (Psst_obs.warnings ())))

(* --- subscribe validation on the wire --- *)

let test_subscribe_validation () =
  let _, db = make_db 757 8 in
  with_tmp_store @@ fun ppath ->
  Query.save_database ppath db;
  let pdb, pchain = I.load ppath in
  let hub = Replica.hub pchain in
  let psock = fresh_sock () in
  let psrv =
    Server.start ~chain:pchain ~publisher:(Replica.publisher hub)
      (Server.default_config (P.Unix_socket psock))
      pdb
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop psrv;
      Replica.stop_hub hub;
      try Sys.remove psock with Sys_error _ -> ())
    (fun () ->
      with_client psrv (fun c ->
          (* Ahead of the primary's chain: rejected, retryable. *)
          Client.send c (P.Subscribe { from_seq = 5 });
          (match Client.read_reply c with
          | P.Error_reply { code; message; _ } ->
            Alcotest.(check string)
              "ahead is retryable" "unavailable" (P.error_code_name code);
            Alcotest.(check bool)
              "ahead is named" true (contains message "ahead")
          | _ -> Alcotest.fail "expected an error for a subscriber ahead");
          (* A valid subscription answers nothing (frames only stream
             once deltas exist); a second Subscribe on the same
             connection is malformed. *)
          Client.send c (P.Subscribe { from_seq = 1 });
          Client.send c (P.Subscribe { from_seq = 1 });
          match Client.read_reply c with
          | P.Error_reply { code; message; _ } ->
            Alcotest.(check string)
              "double subscribe is malformed" "malformed"
              (P.error_code_name code);
            Alcotest.(check bool)
              "double subscribe is named" true
              (contains message "already subscribed")
          | _ -> Alcotest.fail "expected an error for a double subscribe");
      (* A server with no replication chain refuses subscriptions. *)
      let plain_sock = fresh_sock () in
      let plain =
        Server.start (Server.default_config (P.Unix_socket plain_sock)) pdb
      in
      Fun.protect
        ~finally:(fun () ->
          Server.stop plain;
          try Sys.remove plain_sock with Sys_error _ -> ())
        (fun () ->
          with_client plain (fun c ->
              Client.send c (P.Subscribe { from_seq = 1 });
              match Client.read_reply c with
              | P.Error_reply { code; _ } ->
                Alcotest.(check string)
                  "chainless server refuses subscriptions" "unavailable"
                  (P.error_code_name code)
              | _ -> Alcotest.fail "expected an error from a chainless server")))

(* --- promotion: no acked batch lost, writable, chain continues --- *)

let test_promotion () =
  let ds, db0 = make_db 761 15 in
  let b1 = make_batch 1049 4 and b2 = make_batch 1051 3 and b3 = make_batch 1061 5 in
  let rng = Prng.make 71 in
  let q = fst (Generator.extract_query rng ds ~edges:4) in
  with_pair db0 (fun t ->
      ignore (ingest_ok t.psrv b1);
      ignore (ingest_ok t.psrv b2);
      let st = Option.get t.standby in
      Alcotest.(check int) "acked batches replicated" 2 (Replica.applied_seq st);
      (* The primary dies. Every batch it ever acked is already on the
         standby's disk — that is what the ack gate bought. *)
      Server.stop t.psrv;
      Replica.stop_hub t.hub;
      Alcotest.(check bool) "standby read-only pre-promotion" false
        (Server.writable t.ssrv);
      Replica.promote st t.ssrv;
      t.standby <- None;
      Alcotest.(check bool) "promoted standby writable" true
        (Server.writable t.ssrv);
      (* The promoted primary appends where the dead one left off. *)
      let e3, base3, c3 = ingest_ok t.ssrv b3 in
      Alcotest.(check (list int))
        "post-promotion ack"
        [
          3;
          Corpus.length db0.Query.graphs + Array.length b1 + Array.length b2;
          Array.length b3;
        ]
        [ e3; base3; c3 ];
      Alcotest.(check int) "chain continues at seq 3" 4 t.schain.I.next_seq;
      (* The promoted server's answers are bit-identical to an offline
         replay of its chain — base, both replicated deltas, and the
         post-promotion one. *)
      let offline_db, offline_chain = I.load t.spath in
      Alcotest.(check int) "offline replay sees 3 deltas" 4
        offline_chain.I.next_seq;
      Alcotest.(check int) "no acked batch lost"
        (Corpus.length db0.Query.graphs
        + Array.length b1 + Array.length b2 + Array.length b3)
        (Corpus.length offline_db.Query.graphs);
      let offline = Query.run offline_db q base_config in
      with_client t.ssrv (fun c ->
          check_answer ~what:"promoted answer" offline
            (Client.rpc c (P.Run { id = 0; query = q; config = base_config }))))

(* --- replica-aware routing: failover keeps answers exact --- *)

let with_client_ep ep f =
  let c = Client.connect ep in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let failover_counter = Psst_obs.counter "router.failover"

let test_router_failover () =
  let ds, db = make_db 769 15 in
  let rng = Prng.make 73 in
  let queries =
    List.init 2 (fun _ -> fst (Generator.extract_query rng ds ~edges:4))
  in
  let offline = List.map (fun q -> Query.run db q base_config) queries in
  let psock = fresh_sock () and ssock = fresh_sock () and rsock = fresh_sock () in
  let start ep =
    Server.start { (Server.default_config ep) with Server.domains = 1 } db
  in
  let primary = start (P.Unix_socket psock) in
  let standby = start (P.Unix_socket ssock) in
  let router =
    Psst_router.start
      {
        (Psst_router.default_config ~endpoint:(P.Unix_socket rsock)
           ~workers:[ P.Unix_socket psock ])
        with
        Psst_router.workers =
          [| [| P.Unix_socket psock; P.Unix_socket ssock |] |];
        retries = 2;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Psst_router.stop router;
      Server.stop standby;
      (if not (Server.stopped primary) then Server.stop primary);
      List.iter
        (fun s -> try Sys.remove s with Sys_error _ -> ())
        [ psock; ssock; rsock ])
    (fun () ->
      let rpc_routed c q i = Client.rpc c (P.Run { id = i; query = q; config = base_config }) in
      with_client_ep (P.Unix_socket rsock) (fun c ->
          (* Healthy: the primary replica serves, answers exact. *)
          List.iteri
            (fun i q ->
              check_answer ~what:(Printf.sprintf "routed healthy %d" i)
                (List.nth offline i) (rpc_routed c q i))
            queries;
          (* The roster names replica 0 the preferred primary. *)
          let h = Psst_router.health router in
          Alcotest.(check int) "roster has both replicas" 2
            (List.length h.P.workers);
          List.iter
            (fun w ->
              Alcotest.(check bool)
                (Printf.sprintf "replica %d reachable" w.P.rid)
                true w.P.reachable;
              Alcotest.(check bool)
                (Printf.sprintf "replica %d primary flag" w.P.rid)
                (w.P.rid = 0) w.P.primary)
            h.P.workers;
          (* The primary dies mid-deployment: the same request's retry
             fails over to the standby, and the answers stay exact (not
             degraded) because the replica serves the same shard. *)
          Server.stop primary;
          let failovers = Psst_obs.counter_value failover_counter in
          List.iteri
            (fun i q ->
              check_answer ~what:(Printf.sprintf "routed failover %d" i)
                (List.nth offline i) (rpc_routed c q i))
            queries;
          Alcotest.(check bool) "failover metered" true
            (Psst_obs.counter_value failover_counter > failovers);
          let h = Psst_router.health router in
          List.iter
            (fun w ->
              Alcotest.(check bool)
                (Printf.sprintf "post-failover replica %d primary flag" w.P.rid)
                (w.P.rid = 1) w.P.primary)
            h.P.workers))

let suite =
  [
    Alcotest.test_case "standby differential @ 1 domain" `Quick
      test_standby_differential_1;
    Alcotest.test_case "standby differential @ 4 domains" `Quick
      test_standby_differential_4;
    Alcotest.test_case "catch-up after disconnect" `Quick test_catch_up;
    Alcotest.test_case "standby outlives connect refusals" `Quick
      test_standby_outlives_connect_refusals;
    Alcotest.test_case "lagging ack gate and token retry" `Quick
      test_ack_gate_lagging;
    Alcotest.test_case "subscribe validation" `Quick test_subscribe_validation;
    Alcotest.test_case "promotion loses no acked batch" `Quick test_promotion;
    Alcotest.test_case "router failover keeps answers exact" `Quick
      test_router_failover;
  ]
