module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

type config = { tau : float; xi : float; emb_cap : int; adaptive : bool }

let default_config = { tau = 0.1; xi = 0.05; emb_cap = 64; adaptive = false }

let num_samples c =
  int_of_float (ceil (4. *. log (2. /. c.xi) /. (c.tau *. c.tau)))

let minimal_antichain sets =
  let sorted =
    List.sort (fun a b -> compare (Bitset.cardinal a) (Bitset.cardinal b)) sets
  in
  List.fold_left
    (fun kept s ->
      if List.exists (fun k -> Bitset.subset k s) kept then kept else s :: kept)
    [] sorted
  |> List.rev

let embedding_sets ?(config = default_config) g relaxed =
  let gc = Pgraph.skeleton g in
  let m = Lgraph.num_edges gc in
  let seen = Hashtbl.create 64 in
  let sets = ref [] in
  List.iter
    (fun rq ->
      if Lgraph.num_edges rq = 0 then begin
        (* Empty relaxation: matches every world. *)
        let empty = Bitset.create m in
        let key = Bitset.elements empty in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          sets := empty :: !sets
        end
      end
      else
        List.iter
          (fun e ->
            let key = Bitset.elements e.Embedding.edges in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              sets := e.Embedding.edges :: !sets
            end)
          (Vf2.distinct_embeddings ~cap:config.emb_cap rq gc))
    relaxed;
  minimal_antichain !sets

let m_exact_calls = Psst_obs.counter "verify.exact_calls"
let m_smp_calls = Psst_obs.counter "verify.smp_calls"
let m_smp_samples = Psst_obs.counter "verify.smp_samples"
let m_early_stop = Psst_obs.counter "verify.early_stop"

(* Chaos site inside the Karp–Luby sampling loop (DESIGN.md §12): a Fail
   plan aborts the candidate's verification with Psst_fault.Injected —
   which Query.run catches and degrades to a bounds answer — and a Delay
   plan slows sampling down enough to trip verification budgets. *)
let fault_sample = Psst_fault.site "verify.sample"

(* Per-call estimator variance v^2 * p(1-p)/n of the Karp-Luby mean;
   the registry mean over a workload is the Fig 10-style noise figure. *)
let a_smp_variance = Psst_obs.accumulator "verify.smp_variance"

let exact_with_sets g sets =
  Psst_obs.incr m_exact_calls;
  match sets with [] -> 0. | sets -> Exact.prob_any_present g sets

let exact ?(config = default_config) g relaxed =
  exact_with_sets g (embedding_sets ~config g relaxed)

let exact_naive ?(config = default_config) g relaxed =
  (* No early return on an empty embedding set: the index-free competitor
     pays the full world enumeration either way. *)
  Exact.prob_any_present_naive g (embedding_sets ~config g relaxed)

(* The seed-independent part of one SMP run: the uncertain-edge event
   antichain, the calibrated junction tree per event, and the exact event
   probabilities. A [smp_prep] is immutable and safe to share across
   domains and across queries (Qcache keys it per (query presentation,
   graph, emb_cap)). *)
type smp_prep =
  | S_trivial of float
  | S_run of {
      usets : Bitset.t array;
      probs : float array;
      v : float;
      cals : Jtree.calibrated array;
      jt : Jtree.t;
    }

let smp_prepare g sets =
  match sets with
  | [] -> S_trivial 0.
  | _ ->
    let certain =
      Bitset.of_list (Lgraph.num_edges (Pgraph.skeleton g)) (Pgraph.certain_edges g)
    in
    (* Work over uncertain edges only; a set with none is always present. *)
    let usets = List.map (fun s -> Bitset.diff s certain) sets in
    if List.exists Bitset.is_empty usets then S_trivial 1.
    else begin
      let usets = Array.of_list (minimal_antichain usets) in
      let jt = Pgraph.jtree g in
      let cals =
        Array.map
          (fun s ->
            Jtree.calibrate jt (List.map (fun e -> (e, true)) (Bitset.elements s)))
          usets
      in
      let probs = Array.map Jtree.calibrated_prob cals in
      let v = Array.fold_left ( +. ) 0. probs in
      if v <= 0. then S_trivial 0. else S_run { usets; probs; v; cals; jt }
    end

type smp_result = { value : float; samples : int; early_stopped : bool }

(* Early stopping checks on a geometric schedule (32, 64, 128, ...); the
   Hoeffding half-width uses xi / 32 so a union bound over every possible
   checkpoint keeps the overall failure probability at xi. *)
let adaptive_first_check = 32
let adaptive_xi_slices = 32.

exception Stop_sampling

let smp_run ?(config = default_config) ?stop_epsilon rng prep =
  Psst_obs.incr m_smp_calls;
  match prep with
  | S_trivial x -> { value = x; samples = 0; early_stopped = false }
  | S_run { usets; probs; v; cals; jt } ->
    let n_max = num_samples config in
    let log_term = log (2. *. adaptive_xi_slices /. config.xi) in
    let next_check = ref adaptive_first_check in
    let cnt = ref 0 in
    let n_used = ref n_max in
    let early = ref false in
    (try
       for s = 1 to n_max do
         Psst_fault.inject fault_sample;
         let i = Prng.categorical rng probs in
         (match Jtree.sample_calibrated rng jt cals.(i) with
         | None -> () (* zero-probability event: never drawn in theory *)
         | Some (lookup, _) ->
           let earlier_fires =
             let rec go j =
               j < i
               && (Bitset.fold (fun e acc -> acc && lookup e) usets.(j) true
                  || go (j + 1))
             in
             go 0
           in
           if not earlier_fires then incr cnt);
         if config.adaptive && s >= !next_check && s < n_max then begin
           next_check := 2 * !next_check;
           let est = v *. float_of_int !cnt /. float_of_int s in
           let hw = v *. sqrt (log_term /. (2. *. float_of_int s)) in
           (* Precision is relative to the normaliser [v], like the fixed
              budget's guarantee (|est - p| <= O(v * tau) at n_max): an
              absolute [hw <= tau] test would let small-v candidates stop
              with a looser estimate than the non-adaptive path delivers. *)
           let precision_reached = hw <= config.tau *. v in
           let decision_clear =
             match stop_epsilon with
             | Some eps -> est +. hw < eps || est -. hw >= eps
             | None -> false
           in
           if precision_reached || decision_clear then begin
             n_used := s;
             early := true;
             raise Stop_sampling
           end
         end
       done
     with Stop_sampling -> ());
    let n = !n_used in
    Psst_obs.add m_smp_samples n;
    if !early then Psst_obs.incr m_early_stop;
    (let p_hat = float_of_int !cnt /. float_of_int n in
     Psst_obs.record a_smp_variance
       (v *. v *. p_hat *. (1. -. p_hat) /. float_of_int n));
    {
      value = Float.min 1. (v *. float_of_int !cnt /. float_of_int n);
      samples = n;
      early_stopped = !early;
    }

let smp_info ?(config = default_config) ?stop_epsilon rng g relaxed =
  smp_run ~config ?stop_epsilon rng (smp_prepare g (embedding_sets ~config g relaxed))

let smp ?(config = default_config) rng g relaxed =
  (smp_info ~config rng g relaxed).value
