(** Minimal embedding cuts (paper §4.1.2).

    An embedding cut of feature [f] in [gc] is an edge set whose removal
    destroys every embedding of [f]; minimal cuts are exactly the minimal
    transversals (hitting sets) of the hypergraph whose hyperedges are the
    embeddings' edge sets. We enumerate them with Berge's sequential
    dualisation, capped for safety. *)

(** [minimal_hitting_sets ?cap sets] returns the inclusion-minimal bitsets
    hitting every set in [sets] (all bitsets share a capacity). Returns
    [[]] when [sets] is empty. Raises [Invalid_argument] if some set is
    empty (no transversal can hit it... it is hit vacuously by nothing —
    an empty hyperedge makes the dual empty). The result is truncated to
    at most [cap] transversals (default [256]); truncation keeps minimality
    of the returned sets. *)
val minimal_hitting_sets :
  ?cap:int -> Psst_util.Bitset.t list -> Psst_util.Bitset.t list

(** [is_hitting_set sets t] checks that [t] intersects every set. *)
val is_hitting_set : Psst_util.Bitset.t list -> Psst_util.Bitset.t -> bool

(** [is_minimal_hitting_set sets t] additionally checks no proper subset
    hits everything. *)
val is_minimal_hitting_set : Psst_util.Bitset.t list -> Psst_util.Bitset.t -> bool
