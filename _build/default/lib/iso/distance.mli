(** Subgraph distance (paper Def 8): [dis g1 g2 = |E(g1)| - |mcs(g1,g2)|],
    and the derived subgraph-similarity test [dis g1 g2 <= delta]. *)

(** Exact subgraph distance (small graphs; see {!Mcs.common_edges}). *)
val dis : Lgraph.t -> Lgraph.t -> int

(** [within q g ~delta] decides [dis q g <= delta] with fast paths:
    a label-multiset lower bound on the distance, a direct VF2 test for
    distance 0, then bounded MCS search stopping as soon as
    [|E(q)| - delta] common edges are found. *)
val within : Lgraph.t -> Lgraph.t -> delta:int -> bool

(** Cheap lower bound on [dis q g] from vertex/edge label multisets; never
    exceeds the true distance. *)
val lower_bound : Lgraph.t -> Lgraph.t -> int
