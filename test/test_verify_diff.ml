(* Differential harness for the verifier stack (DESIGN.md §6): on small
   random probabilistic graphs the three implementations of Pr(q ⊆sim g)
   must agree — [Verify.exact] against the index-free
   [Verify.exact_naive] world enumeration exactly, and the Karp–Luby
   [Verify.smp] estimator against [Verify.exact] within its Monte-Carlo
   guarantee. *)

module Prng = Psst_util.Prng

(* A chain-consistent pgraph with at most 8 uncertain edges (n-1 + extra
   edges, all covered by factors), plus a small query extracted from it so
   embeddings exist most of the time. *)
let small_case seed =
  let rng = Prng.make seed in
  let n = 4 + Prng.int rng 2 in
  let extra = Prng.int rng 3 in
  let g = Tgen.random_pgraph rng ~n ~extra ~vl:2 ~el:1 in
  assert (List.length (Pgraph.uncertain_edges g) <= 8);
  let ds =
    { Generator.graphs = [| g |]; organisms = [| 0 |]; motifs = [||];
      grafts = [| None |]; params = Generator.default_params }
  in
  let q, _ = Generator.extract_query rng ds ~edges:(2 + Prng.int rng 2) in
  let relaxed, _ = Relax.relaxed_set q ~delta:1 in
  (g, relaxed)

let prop_exact_agrees_with_naive =
  QCheck.Test.make ~name:"Verify.exact = Verify.exact_naive (oracle)" ~count:40
    QCheck.small_int
    (fun seed ->
      let g, relaxed = small_case (seed + 100) in
      let a = Verify.exact g relaxed in
      let b = Verify.exact_naive g relaxed in
      Float.abs (a -. b) <= 1e-9)

let prop_smp_within_3tau_of_exact =
  (* |SMP - exact| <= tau holds with probability 1 - xi; testing against
     3·tau makes a false alarm vanishingly unlikely while still catching
     any systematic estimator bias. *)
  QCheck.Test.make ~name:"|Verify.smp - Verify.exact| <= 3*tau" ~count:40
    QCheck.small_int
    (fun seed ->
      let g, relaxed = small_case (seed + 500) in
      let exact = Verify.exact g relaxed in
      let tau = 0.15 in
      let config = { Verify.default_config with tau } in
      let smp = Verify.smp ~config (Prng.make (seed + 7)) g relaxed in
      Float.abs (smp -. exact) <= 3. *. tau)

let prop_smp_seed_deterministic =
  QCheck.Test.make ~name:"Verify.smp is a function of the PRNG stream" ~count:20
    QCheck.small_int
    (fun seed ->
      let g, relaxed = small_case (seed + 900) in
      let config = { Verify.default_config with tau = 0.3 } in
      let a = Verify.smp ~config (Prng.stream ~seed 0) g relaxed in
      let b = Verify.smp ~config (Prng.stream ~seed 0) g relaxed in
      a = b)

(* --- adaptive-precision Karp–Luby (DESIGN.md §13) --- *)

let adaptive_cfg tau = { Verify.default_config with tau; adaptive = true }

let prop_adaptive_within_3tau =
  (* The adaptive stopping rule budgets its failure probability with a
     union bound over checkpoints, so the early-stopped estimate carries
     the same |est - exact| <= tau guarantee at confidence 1 - xi as the
     fixed-budget run; 3·tau keeps false alarms vanishingly unlikely
     under QCheck's self-initialised seeds. *)
  QCheck.Test.make ~name:"adaptive: |est - exact| <= 3*tau" ~count:40
    QCheck.small_int
    (fun seed ->
      let g, relaxed = small_case (seed + 1300) in
      let exact = Verify.exact g relaxed in
      let tau = 0.15 in
      let r =
        Verify.smp_info ~config:(adaptive_cfg tau) ~stop_epsilon:0.5
          (Prng.make (seed + 3)) g relaxed
      in
      Float.abs (r.Verify.value -. exact) <= 3. *. tau)

let prop_adaptive_prefix_of_fixed =
  (* The adaptive run draws a prefix of the fixed run's PRNG stream:
     sample counts never exceed the fixed budget, and a run that never
     early-stops produces the bitwise-identical estimate. *)
  QCheck.Test.make ~name:"adaptive: samples <= fixed budget; no-stop => bitwise"
    ~count:40 QCheck.small_int
    (fun seed ->
      let g, relaxed = small_case (seed + 1700) in
      let tau = 0.2 in
      let cfg = adaptive_cfg tau in
      let r =
        Verify.smp_info ~config:cfg ~stop_epsilon:0.5 (Prng.make (seed + 5)) g
          relaxed
      in
      let fixed =
        Verify.smp
          ~config:{ cfg with Verify.adaptive = false }
          (Prng.make (seed + 5)) g relaxed
      in
      r.Verify.samples <= Verify.num_samples cfg
      && (r.Verify.early_stopped || r.Verify.value = fixed))

let prop_adaptive_never_flips_clear_decision =
  (* Whenever the exact SSP is well clear of the threshold (beyond the
     3·tau noise floor), the adaptive and fixed-budget estimators must
     land on the same side of it as the exact value — early stopping can
     only change decisions the estimator was already coin-flipping on. *)
  QCheck.Test.make ~name:"adaptive: clear decisions never flip" ~count:40
    QCheck.small_int
    (fun seed ->
      let g, relaxed = small_case (seed + 2100) in
      let exact = Verify.exact g relaxed in
      let tau = 0.15 in
      let eps = 0.5 in
      if Float.abs (exact -. eps) <= 3. *. tau then true
      else begin
        let cfg = adaptive_cfg tau in
        let adap =
          Verify.smp_info ~config:cfg ~stop_epsilon:eps
            (Prng.make (seed + 11)) g relaxed
        in
        let fixed =
          Verify.smp
            ~config:{ cfg with Verify.adaptive = false }
            (Prng.make (seed + 11)) g relaxed
        in
        let truth = exact >= eps in
        adap.Verify.value >= eps = truth && fixed >= eps = truth
      end)

(* [ground_truth] applies a [Distance.within] pre-filter that
   [run_exact_scan] does not; when the relaxed set is complete the filter
   can never change the answer set (any graph with positive exact SSP
   embeds some complete relaxation in a world contained in its skeleton,
   so its MCS distance is within delta). Differential check on randomized
   databases. *)
let prop_exact_scan_matches_ground_truth =
  QCheck.Test.make ~name:"run_exact_scan = ground_truth (Exact verifier)"
    ~count:15 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 4200) in
      let graphs =
        Array.init 6 (fun _ ->
            Tgen.random_pgraph rng ~n:(4 + Prng.int rng 2)
              ~extra:(Prng.int rng 2) ~vl:2 ~el:1)
      in
      let db =
        Query.index_database
          ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
          ~bounds:{ Bounds.default_config with mc_samples = 200 }
          graphs
      in
      let ds =
        { Generator.graphs; organisms = Array.make 6 0; motifs = [||];
          grafts = Array.make 6 None; params = Generator.default_params }
      in
      let q, _ = Generator.extract_query rng ds ~edges:(2 + Prng.int rng 2) in
      let config =
        { Query.default_config with epsilon = 0.4; delta = 1;
          verifier = `Exact }
      in
      let scan = Query.run_exact_scan db q config in
      let truth = Query.ground_truth db q config in
      (not scan.Query.stats.relaxed_truncated)
      && List.sort compare scan.Query.answers = List.sort compare truth)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_exact_agrees_with_naive;
    QCheck_alcotest.to_alcotest prop_smp_within_3tau_of_exact;
    QCheck_alcotest.to_alcotest prop_smp_seed_deterministic;
    QCheck_alcotest.to_alcotest prop_adaptive_within_3tau;
    QCheck_alcotest.to_alcotest prop_adaptive_prefix_of_fixed;
    QCheck_alcotest.to_alcotest prop_adaptive_never_flips_clear_decision;
    QCheck_alcotest.to_alcotest prop_exact_scan_matches_ground_truth;
  ]
