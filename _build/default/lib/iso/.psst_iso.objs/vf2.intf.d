lib/iso/vf2.mli: Embedding Lgraph
