(* Lazy random access over the graph payload of a flat store image, or a
   plain array for everything built eagerly. See the interface for the
   contract; the one invariant worth restating is that the mapped payload
   is byte-identical to [put_array encode_binary], so the classic eager
   decoder, the fingerprint and this lazy view all agree on the same
   bytes. *)

module S = Psst_store

type mapped_src = {
  m : S.mapped;
  section : string;
  data : S.bigbytes; (* the section payload, zero-copy *)
  offsets : int array; (* n + 1 boundaries, offsets.(0) = count-prefix size *)
  cache : Pgraph.t option array;
  mu : Mutex.t;
}

type t = Eager of Pgraph.t array | Mapped of mapped_src

let of_array graphs = Eager graphs

let slice_string (b : S.bigbytes) pos len =
  let s = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set s i (Bigarray.Array1.unsafe_get b (pos + i))
  done;
  Bytes.unsafe_to_string s

let of_mapped m ~section ~offsets =
  let data = S.mapped_bytes_unverified m section in
  let len = Bigarray.Array1.dim data in
  let nb = Array.length offsets in
  if nb < 1 then S.error "graph offsets for %S are empty" section;
  let n = nb - 1 in
  Array.iteri
    (fun i o ->
      if o < 0 || o > len then
        S.error "graph offset %d of %S lies outside the %d-byte payload" o
          section len;
      if i > 0 && o <= offsets.(i - 1) then
        S.error "graph offsets of %S are not strictly increasing at index %d"
          section i)
    offsets;
  if offsets.(n) <> len then
    S.error "graph offsets of %S cover %d of %d payload bytes" section
      offsets.(n) len;
  (* The prefix before the first boundary must be exactly the element
     count of the classic [put_array] framing. *)
  let d = S.decoder ~name:section (slice_string data 0 offsets.(0)) in
  let stored_n = S.get_nat d in
  S.expect_end d;
  if stored_n <> n then
    S.error "section %S holds %d graphs, its offsets table describes %d"
      section stored_n n;
  Mapped
    { m; section; data; offsets; cache = Array.make n None; mu = Mutex.create () }

let length = function
  | Eager g -> Array.length g
  | Mapped s -> Array.length s.cache

let decode_one s i =
  let lo = s.offsets.(i) and hi = s.offsets.(i + 1) in
  let name = Printf.sprintf "%s[%d]" s.section i in
  let d = S.decoder ~name (slice_string s.data lo (hi - lo)) in
  let g = Pgraph_io.decode_binary d in
  (* A region not exactly consumed means the offsets table lies about
     where graph [i] ends — reject rather than serve a misframed graph. *)
  S.expect_end d;
  g

let get t i =
  match t with
  | Eager g -> g.(i)
  | Mapped s ->
    if i < 0 || i >= Array.length s.cache then
      invalid_arg
        (Printf.sprintf "Corpus.get: index %d outside 0..%d" i
           (Array.length s.cache - 1));
    (match Mutex.protect s.mu (fun () -> s.cache.(i)) with
    | Some g -> g
    | None ->
      (* Decode outside the lock (it allocates and can raise); a racing
         decode of the same graph yields the same immutable value, and
         the second write is harmless. *)
      let g = decode_one s i in
      Mutex.protect s.mu (fun () ->
          match s.cache.(i) with
          | Some g0 -> g0
          | None ->
            s.cache.(i) <- Some g;
            g))

let skeleton t i = Pgraph.skeleton (get t i)
let to_array t = Array.init (length t) (get t)
let sub t ~base ~count = Eager (Array.init count (fun i -> get t (base + i)))

(* Decoding goes through [get], so graphs already memoised by earlier
   lazy accesses are reused as-is and the rest decode (and validate)
   now — a mapped corpus materialises to exactly the array the classic
   eager loader would have produced, whatever the prior access pattern. *)
let materialise t =
  match t with Eager _ -> t | Mapped _ -> Eager (to_array t)

let append t gs =
  match materialise t with
  | Eager old -> Eager (Array.append old gs)
  | Mapped _ -> assert false (* materialise never returns Mapped *)

let fingerprint = function
  | Eager g -> Pgraph_io.db_fingerprint g
  | Mapped s -> S.mapped_payload_crc s.m s.section
