test/main.mli:
