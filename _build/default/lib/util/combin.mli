(** Combinatorial enumeration helpers. *)

(** [combinations k l] is all size-[k] sublists of [l], preserving order. *)
val combinations : int -> 'a list -> 'a list list

(** [iter_combinations k l f] calls [f] on each size-[k] sublist without
    materialising the full list of lists. *)
val iter_combinations : int -> 'a list -> ('a list -> unit) -> unit

(** [cartesian lls] is the cartesian product of the given lists. *)
val cartesian : 'a list list -> 'a list list

(** [subsets l] is the powerset of [l] (use only on small lists). *)
val subsets : 'a list -> 'a list list

(** [pairs l] is all unordered pairs of distinct elements. *)
val pairs : 'a list -> ('a * 'a) list

(** [binomial n k] with overflow-free recurrence; 0 when [k < 0 || k > n]. *)
val binomial : int -> int -> int
