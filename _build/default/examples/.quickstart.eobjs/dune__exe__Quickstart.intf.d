examples/quickstart.mli:
