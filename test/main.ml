let () =
  Alcotest.run "psst"
    [
      ("util", Test_util.suite);
      ("labeled_graph", Test_graph.suite);
      ("iso", Test_iso.suite);
      ("pgm", Test_pgm.suite);
      ("prob_graph", Test_pgraph.suite);
      ("clique", Test_clique.suite);
      ("cuts", Test_cuts.suite);
      ("optim", Test_optim.suite);
      ("mining", Test_mining.suite);
      ("simsearch", Test_simsearch.suite);
      ("dataset", Test_dataset.suite);
      ("core", Test_core.suite);
      ("obs", Test_obs.suite);
      ("dynamic", Test_dynamic.suite);
      ("verify_diff", Test_verify_diff.suite);
      ("store", Test_store.suite);
      ("proto", Test_proto.suite);
      ("server", Test_server.suite);
      ("cli", Test_cli.suite);
      ("parallel", Test_parallel.suite);
      ("extensions", Test_extensions.suite);
      ("edge_cases", Test_edge_cases.suite);
      ("cache", Test_cache.suite);
      ("shard", Test_shard.suite);
      ("chaos", Test_chaos.suite);
      ("ingest", Test_ingest.suite);
      ("replica", Test_replica.suite);
    ]
