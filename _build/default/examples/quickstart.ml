(* Quickstart: the paper's running example (Figures 1 and 2).

   We rebuild probabilistic graphs 001 and 002, whose edges exist with
   correlated probabilities given by joint probability tables (JPTs) over
   neighbor-edge sets, then ask the T-PS question of Example 1: does the
   triangle query subgraph-similarly match graph 002 with distance
   threshold delta = 1 and probability threshold epsilon = 0.3?
   (The paper's Example 1 computes 0.45 against tables it only shows in
   part; with the completion chosen here the exact answer is 0.32.)

   Run with:  dune exec examples/quickstart.exe *)

(* Vertex labels: a = 0, b = 1, c = 2, d = 3. *)
let a, b, c, d = (0, 1, 2, 3)

(* Graph 001 (Fig 1, left): a triangle a-b-d whose three edges e1 e2 e3 are
   one neighbor-edge set with the joint distribution of the paper's JPT. *)
let graph_001 =
  let skeleton =
    Lgraph.create ~vlabels:[| a; b; d |]
      ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0) ]
  in
  (* Rows of the paper's JPT, encoded over edge-id variables {0,1,2}
     (bit i of the table index is the value of edge i). *)
  let jpt =
    Factor.create [| 0; 1; 2 |]
      (* 000  100  010  110  001  101  011  111 *)
      [| 0.1; 0.1; 0.1; 0.2; 0.1; 0.1; 0.1; 0.2 |]
  in
  Pgraph.make skeleton [ jpt ]

(* Graph 002 (Fig 1, right): vertices a a b b c; edges
   e1=(0,1) e2=(0,2) e3=(1,2) e4=(2,3) e5=(2,4); JPT1 over {e1,e2,e3}
   (a joint distribution containing the paper's rows
   Pr(e1=1,e2=1,e3=1)=0.3 and Pr(e1=0,e2=1,e3=1)=0.3) and JPT2 over
   {e3,e4,e5}, a conditional on the shared edge e3 containing the rows
   Pr(e4=1,e5=0 | e3=1)=0.25 and Pr(e4=1,e5=1 | e3=1)=0.15, so that the
   weight of the possible world of Fig 2 (1) is 0.3 * 0.25 = 0.075 as in
   Example 1. *)
let graph_002 =
  let skeleton =
    Lgraph.create
      ~vlabels:[| a; a; b; b; c |]
      ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0); (2, 3, 0); (2, 4, 0) ]
  in
  let jpt1 =
    Factor.create [| 0; 1; 2 |]
      (* (e1,e2,e3):  000  100   010   110  001  101   011  111 *)
      [| 0.1; 0.1; 0.05; 0.1; 0.0; 0.05; 0.3; 0.3 |]
  in
  let jpt2 =
    (* vars {e3,e4,e5}; each e3-slice sums to 1 (conditional). *)
    Factor.create [| 2; 3; 4 |]
      (* (e3,e4,e5): 000  100   010   110   001  101   011   111 *)
      [| 0.4; 0.35; 0.2; 0.25; 0.2; 0.25; 0.2; 0.15 |]
  in
  Pgraph.make skeleton [ jpt1; jpt2 ]

(* The query of Fig 1: a triangle over labels a, b, c. *)
let query =
  Lgraph.create ~vlabels:[| a; b; c |] ~edges:[ (0, 1, 0); (1, 2, 0); (0, 2, 0) ]

let () =
  print_endline "== possible-world semantics (Def 3, Eq 1) ==";
  let total = ref 0. and count = ref 0 in
  Pgraph.iter_worlds graph_002 (fun _ p ->
      incr count;
      total := !total +. p);
  Printf.printf "graph 002 has %d possible worlds, total probability %.6f\n"
    !count !total;

  print_endline "\n== exact subgraph similarity probability (Def 9) ==";
  let delta = 1 in
  let relaxed, _ = Relax.relaxed_set query ~delta in
  Printf.printf "relaxing the triangle by delta=%d edge gives %d relaxed queries\n"
    delta (List.length relaxed);
  let ssp_002 = Verify.exact graph_002 relaxed in
  let ssp_001 = Verify.exact graph_001 relaxed in
  Printf.printf "Pr(q subsim 002) = %.4f   Pr(q subsim 001) = %.4f\n" ssp_002
    ssp_001;

  print_endline "\n== SMP sampling estimate (Algorithm 5) ==";
  let rng = Psst_util.Prng.make 42 in
  let est = Verify.smp rng graph_002 relaxed in
  Printf.printf "SMP estimate for 002: %.4f (exact %.4f)\n" est ssp_002;

  print_endline "\n== end-to-end T-PS query over the two-graph database ==";
  let db = Query.index_database [| graph_001; graph_002 |] in
  let config =
    { Query.default_config with epsilon = 0.3; delta = 1; verifier = `Exact }
  in
  let out = Query.run db query config in
  Printf.printf
    "epsilon=0.3: answers = [%s] (structural candidates %d, pruned %d, \
     verified %d)\n"
    (String.concat "; " (List.map string_of_int out.Query.answers))
    out.Query.stats.structural_candidates out.Query.stats.pruned_by_bounds
    out.Query.stats.prob_candidates;
  if ssp_002 >= 0.3 then assert (out.Query.answers = [ 1 ])
