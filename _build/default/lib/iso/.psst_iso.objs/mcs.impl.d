lib/iso/mcs.ml: Array Lgraph List
