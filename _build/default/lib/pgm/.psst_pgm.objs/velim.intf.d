lib/pgm/velim.mli: Factor
