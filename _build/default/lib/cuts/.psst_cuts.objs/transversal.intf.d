lib/cuts/transversal.mli: Psst_util
