test/tgen.ml: Alcotest Array Factor Float Hashtbl Lgraph List Option Pgraph Psst_util
