(* Wire-protocol codecs and frame fuzzing (DESIGN.md §11): round trips
   through the framed encoding, then the same adversarial treatment
   Test_store gives the on-disk format — truncation at every byte
   boundary and single-byte corruption at every offset. Every anomaly
   must surface as Proto_error with a readable message, never Failure,
   Invalid_argument or an out-of-bounds access. *)

module P = Psst_proto
module Crc32 = Psst_util.Crc32
module S = Psst_store

let query_graph =
  Lgraph.create ~vlabels:[| 0; 1; 2; 1 |]
    ~edges:[ (0, 1, 0); (1, 2, 1); (2, 3, 0); (3, 0, 2) ]

let smp_config =
  {
    Query.epsilon = 0.35;
    delta = 2;
    mode = Pruning.Optimized;
    certified = true;
    verifier = `Smp { Verify.default_config with tau = 0.25; emb_cap = 9 };
    relax_cap = 5000;
    seed = 77;
  }

let exact_config =
  { Query.default_config with verifier = `Exact; mode = Pruning.Random_pick }

let sample_requests =
  [
    P.Ping;
    P.Get_stats;
    P.Get_health;
    P.Run { id = 3; query = query_graph; config = smp_config };
    P.Run { id = 0; query = query_graph; config = exact_config };
    P.Run_topk { id = 12; query = query_graph; k = 5; config = smp_config };
    P.Subscribe { from_seq = 42 };
    P.Subscribe { from_seq = 1 };
    P.Replica_ack { seq = 7 };
  ]

let sample_replies =
  [
    P.Pong;
    P.Answer
      {
        id = 3;
        answers = [ 0; 4; 17 ];
        stats =
          {
            P.relaxed_truncated = true;
            structural_candidates = 12;
            prob_candidates = 7;
            accepted_by_bounds = 2;
            pruned_by_bounds = 5;
            degraded = false;
          };
      };
    P.Answer
      {
        id = 0;
        answers = [];
        stats =
          {
            P.relaxed_truncated = false;
            structural_candidates = 0;
            prob_candidates = 0;
            accepted_by_bounds = 0;
            pruned_by_bounds = 0;
            degraded = true;
          };
      };
    P.Topk_answer { id = 12; hits = [ (4, 0.75); (0, 0.5) ] };
    P.Stats_json "{\"counters\": {}}";
    P.Health_reply
      {
        P.uptime_s = 12.5;
        queue_depth = 3;
        served = 10_000;
        degraded_answers = 42;
        retryable_rejections = 7;
        workers = [];
        epoch = 6;
        ingest_queued = 17;
        ingest_applied = 512;
      };
    P.Health_reply
      {
        P.uptime_s = 99.25;
        queue_depth = 0;
        served = 4;
        degraded_answers = 1;
        retryable_rejections = 0;
        workers =
          [
            {
              P.wid = 0;
              reachable = true;
              worker_uptime_s = 98.5;
              worker_queue_depth = 2;
              worker_degraded_answers = 1;
              rid = 1;
              worker_epoch = 12;
              primary = false;
            };
            {
              P.wid = 1;
              reachable = false;
              worker_uptime_s = 0.;
              worker_queue_depth = 0;
              worker_degraded_answers = 0;
              rid = 0;
              worker_epoch = 0;
              primary = true;
            };
          ];
        epoch = 0;
        ingest_queued = 0;
        ingest_applied = 0;
      };
    P.Delta_frame { seq = 3; bytes = "raw delta-file bytes \x00\xff\x7f" };
    P.Delta_frame { seq = 1; bytes = "" };
    P.Error_reply { id = 9; code = P.Queue_full; message = "queue full" };
    P.Error_reply { id = 0; code = P.Malformed; message = "bad magic" };
    P.Error_reply { id = 1; code = P.Deadline; message = "too late" };
    P.Error_reply { id = 2; code = P.Shutdown; message = "draining" };
    P.Error_reply { id = 3; code = P.Internal; message = "boom" };
    P.Error_reply { id = 4; code = P.Unavailable; message = "retry" };
  ]

(* Lgraph.t has no structural equality usable by polymorphic compare
   (adjacency is derived), so compare requests via their encoding. *)
let check_request_roundtrip i req =
  let bytes = P.encode_request req in
  let back = P.request_of_string bytes in
  Alcotest.(check string)
    (Printf.sprintf "request %d re-encodes identically" i)
    bytes (P.encode_request back)

let test_request_roundtrips () =
  List.iteri check_request_roundtrip sample_requests

let test_reply_roundtrips () =
  List.iteri
    (fun i rep ->
      let bytes = P.encode_reply rep in
      Alcotest.(check bool)
        (Printf.sprintf "reply %d round-trips" i)
        true
        (P.reply_of_string bytes = rep))
    sample_replies

let test_config_roundtrip () =
  List.iter
    (fun cfg ->
      let e = S.encoder () in
      Query.put_config e cfg;
      let d = S.decoder ~name:"config" (S.contents e) in
      let back = Query.get_config d in
      S.expect_end d;
      Alcotest.(check bool) "config round-trips" true (cfg = back))
    [ Query.default_config; smp_config; exact_config ]

(* --- adversarial framing --- *)

let expect_proto_error what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Proto_error" what
  | exception P.Proto_error _ -> ()
  | exception e ->
    Alcotest.failf "%s: expected Proto_error, got %s" what (Printexc.to_string e)

let test_truncation_every_boundary () =
  let frame =
    P.encode_request (P.Run { id = 1; query = query_graph; config = smp_config })
  in
  for n = 0 to String.length frame - 1 do
    expect_proto_error
      (Printf.sprintf "prefix of %d/%d bytes" n (String.length frame))
      (fun () -> P.request_of_string (String.sub frame 0 n))
  done

let test_trailing_bytes_rejected () =
  let frame = P.encode_request P.Ping in
  expect_proto_error "one trailing byte" (fun () ->
      P.request_of_string (frame ^ "\x00"));
  expect_proto_error "frame after frame" (fun () ->
      P.request_of_string (frame ^ frame))

(* A single corrupted byte anywhere in the frame — magic, version, tag,
   length, CRC or payload — must be detected. The header fields are
   validated directly and everything else is covered by the CRC-32, so
   no flip can slip through. *)
let test_single_byte_flips () =
  List.iter
    (fun (name, frame) ->
      for pos = 0 to String.length frame - 1 do
        let b = Bytes.of_string frame in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
        expect_proto_error
          (Printf.sprintf "%s: flipped byte %d" name pos)
          (fun () -> P.request_of_string (Bytes.to_string b))
      done)
    [
      ("ping", P.encode_request P.Ping);
      ( "run",
        P.encode_request
          (P.Run { id = 1; query = query_graph; config = smp_config }) );
    ]

let test_low_bit_flips_in_header () =
  (* Low-bit flips keep the length small, exercising the checksum (not
     the length cap) on the validation path. *)
  let frame =
    P.encode_request (P.Run { id = 1; query = query_graph; config = smp_config })
  in
  for pos = 0 to P.header_bytes - 1 do
    let b = Bytes.of_string frame in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x01));
    expect_proto_error
      (Printf.sprintf "header byte %d low-bit flip" pos)
      (fun () -> P.request_of_string (Bytes.to_string b))
  done

(* Hand-build frames with a correct CRC so corruption *below* the framing
   layer (store payload decode) is reached. *)
let mk_frame ~version ~tag payload =
  let head = Bytes.create 20 in
  Bytes.blit_string P.magic 0 head 0 8;
  Bytes.set_int32_le head 8 (Int32.of_int version);
  Bytes.set_int32_le head 12 (Int32.of_int tag);
  Bytes.set_int32_le head 16 (Int32.of_int (String.length payload));
  let head = Bytes.unsafe_to_string head in
  let crc =
    Crc32.update (Crc32.digest head) payload ~pos:0
      ~len:(String.length payload)
  in
  let crcb = Bytes.create 4 in
  Bytes.set_int32_le crcb 0 crc;
  head ^ Bytes.to_string crcb ^ payload

let test_valid_crc_bad_payload () =
  (* Unknown tag. *)
  expect_proto_error "unknown request tag" (fun () ->
      P.request_of_string (mk_frame ~version:P.proto_version ~tag:250 ""));
  (* A reply tag is not a request. *)
  expect_proto_error "reply tag as request" (fun () ->
      P.request_of_string (mk_frame ~version:P.proto_version ~tag:65 ""));
  (* Wrong version, frame otherwise perfect. *)
  expect_proto_error "future version" (fun () ->
      P.request_of_string (mk_frame ~version:(P.proto_version + 1) ~tag:1 ""));
  expect_proto_error "below min version" (fun () ->
      P.request_of_string (mk_frame ~version:(P.min_proto_version - 1) ~tag:1 ""));
  (* Garbage store payload under a Run tag. *)
  expect_proto_error "garbage run payload" (fun () ->
      P.request_of_string
        (mk_frame ~version:P.proto_version ~tag:2 "\x01\x02\x03\x04"));
  (* Store payload truncated mid-field but the frame itself is whole. *)
  let whole =
    let e = S.encoder () in
    S.put_i64 e 1;
    S.put_lgraph e query_graph;
    S.contents e
  in
  expect_proto_error "store payload cut short" (fun () ->
      P.request_of_string
        (mk_frame ~version:P.proto_version ~tag:2
           (String.sub whole 0 (String.length whole / 2))));
  (* Trailing payload bytes after a complete message body. *)
  let ping_plus =
    mk_frame ~version:P.proto_version ~tag:1 "\x00"
  in
  expect_proto_error "payload bytes after message" (fun () ->
      P.request_of_string ping_plus)

let test_oversized_length_rejected_before_allocation () =
  (* A corrupted length field larger than max_payload must be rejected
     from the header alone — no attempt to read or allocate gigabytes. *)
  let b = Bytes.of_string (P.encode_request P.Ping) in
  Bytes.set_int32_le b 16 0x7FFF_FFFFl;
  expect_proto_error "4GiB length" (fun () ->
      P.request_of_string (Bytes.to_string b))

let test_stream_reader_matches_string_decoder () =
  (* read_request over a pipe agrees with request_of_string, and EOF at a
     frame boundary is a clean End_of_file while EOF inside a frame is a
     Proto_error. *)
  let frame =
    P.encode_request (P.Run { id = 7; query = query_graph; config = exact_config })
  in
  let feed bytes f =
    let path = Filename.temp_file "psst_proto" ".bin" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let oc = open_out_bin path in
        output_string oc bytes;
        close_out oc;
        let ic = open_in_bin path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic))
  in
  feed (frame ^ frame) (fun ic ->
      let a = P.read_request ic in
      let b = P.read_request ic in
      Alcotest.(check string) "two frames, same decode"
        (P.encode_request a) (P.encode_request b);
      match P.read_request ic with
      | _ -> Alcotest.fail "expected End_of_file at frame boundary"
      | exception End_of_file -> ());
  feed (String.sub frame 0 (String.length frame - 3)) (fun ic ->
      expect_proto_error "EOF inside frame" (fun () -> P.read_request ic))

(* Version negotiation (DESIGN.md §12): a version-1 peer's frames are
   accepted, and version-2-only information degrades cleanly when a reply
   is framed for it — the degraded flag is dropped and [Unavailable]
   becomes the equally-retryable [Shutdown]. *)
let test_v1_interop () =
  let answer =
    P.Answer
      {
        id = 1;
        answers = [ 2 ];
        stats =
          {
            P.relaxed_truncated = false;
            structural_candidates = 1;
            prob_candidates = 1;
            accepted_by_bounds = 0;
            pruned_by_bounds = 0;
            degraded = true;
          };
      }
  in
  (match P.reply_of_string (P.encode_reply ~version:1 answer) with
  | P.Answer { stats; _ } ->
    Alcotest.(check bool) "v1 frame drops the degraded flag" false
      stats.P.degraded
  | _ -> Alcotest.fail "expected Answer");
  (match
     P.reply_of_string
       (P.encode_reply ~version:1
          (P.Error_reply { id = 0; code = P.Unavailable; message = "m" }))
   with
  | P.Error_reply { code; _ } ->
    Alcotest.(check string) "Unavailable downgrades to Shutdown at v1"
      (P.error_code_name P.Shutdown)
      (P.error_code_name code)
  | _ -> Alcotest.fail "expected Error_reply");
  match P.request_of_string (P.encode_request ~version:1 P.Ping) with
  | P.Ping -> ()
  | _ -> Alcotest.fail "expected Ping"

(* Version 3 added the adaptive byte to SMP verifier configs in requests.
   Frames from v1/v2 peers carry configs without the byte and must still
   decode — adaptive defaults to false — and a request encoded for an
   older peer drops the flag rather than emitting a byte the peer cannot
   parse. *)
let test_pre_v3_config_interop () =
  let adaptive_config =
    { smp_config with
      Query.verifier = `Smp { Verify.default_config with adaptive = true } }
  in
  let encode version =
    P.encode_request ?version
      (P.Run { id = 5; query = query_graph; config = adaptive_config })
  in
  List.iter
    (fun version ->
      match P.request_of_string (encode (Some version)) with
      | P.Run { config = { Query.verifier = `Smp vc; _ }; _ } ->
        Alcotest.(check bool)
          (Printf.sprintf "v%d frame decodes with adaptive = false" version)
          false vc.Verify.adaptive
      | _ -> Alcotest.fail "expected Run with an Smp verifier")
    [ 1; 2 ];
  match P.request_of_string (encode None) with
  | P.Run { config = { Query.verifier = `Smp vc; _ }; _ } ->
    Alcotest.(check bool) "current-version frame round-trips adaptive" true
      vc.Verify.adaptive
  | _ -> Alcotest.fail "expected Run with an Smp verifier"

(* Version 4 added the router's per-worker roster to Health_reply. A
   frame encoded for a pre-v4 peer drops the roster, and decoding it
   yields an empty one — the rest of the snapshot is unchanged, so old
   load balancers keep polling routers without renegotiation. *)
let test_pre_v4_health_interop () =
  let with_roster =
    List.find
      (function P.Health_reply { workers = _ :: _; _ } -> true | _ -> false)
      sample_replies
  in
  List.iter
    (fun version ->
      match P.reply_of_string (P.encode_reply ~version with_roster) with
      | P.Health_reply h ->
        Alcotest.(check bool)
          (Printf.sprintf "v%d frame decodes with an empty roster" version)
          true (h.P.workers = []);
        (match with_roster with
        | P.Health_reply full ->
          Alcotest.(check bool)
            (Printf.sprintf "v%d frame keeps the scalar fields" version)
            true
            (h.P.uptime_s = full.P.uptime_s
            && h.P.queue_depth = full.P.queue_depth
            && h.P.served = full.P.served
            && h.P.degraded_answers = full.P.degraded_answers
            && h.P.retryable_rejections = full.P.retryable_rejections)
        | _ -> assert false)
      | _ -> Alcotest.fail "expected Health_reply")
    [ 2; 3 ];
  match P.reply_of_string (P.encode_reply with_roster) with
  | P.Health_reply h ->
    Alcotest.(check int) "current-version frame round-trips the roster" 2
      (List.length h.P.workers)
  | _ -> Alcotest.fail "expected Health_reply"

(* Version 6 added replication (Subscribe / Replica_ack / Delta_frame),
   the Add_graphs idempotency token and the roster's replica triple. A
   pre-v6 peer must never see any of it: the replication tags are
   rejected in pre-v6 frames like any unknown tag, the token is dropped
   when encoding for an old peer (and defaults to "" when decoding an
   old frame), and the roster triple defaults to "sole primary at epoch
   0" so a v4/v5 load balancer keeps polling v6 routers unchanged. *)
let test_pre_v6_interop () =
  (* The v6-only tags, framed with a perfect CRC at v5, are malformed. *)
  List.iter
    (fun (what, tag, payload) ->
      expect_proto_error
        (Printf.sprintf "%s in a v5 frame" what)
        (fun () -> P.request_of_string (mk_frame ~version:5 ~tag payload)))
    [
      ("Subscribe", 8, "\x00\x00\x00\x00\x00\x00\x00\x00");
      ("Replica_ack", 9, "\x00\x00\x00\x00\x00\x00\x00\x00");
    ];
  expect_proto_error "Delta_frame in a v5 frame" (fun () ->
      ignore (P.reply_of_string (mk_frame ~version:5 ~tag:72 "")));
  (* The token is dropped for a v5 peer and defaults to "" on decode. *)
  (match
     P.request_of_string
       (P.encode_request ~version:5
          (P.Add_graphs { id = 4; token = "retry-1"; graphs = [||] }))
   with
  | P.Add_graphs { id = 4; token; _ } ->
    Alcotest.(check string) "v5 frame drops the token" "" token
  | _ -> Alcotest.fail "expected Add_graphs");
  (match
     P.request_of_string
       (P.encode_request (P.Add_graphs { id = 4; token = "retry-1"; graphs = [||] }))
   with
  | P.Add_graphs { token; _ } ->
    Alcotest.(check string) "current-version frame keeps the token" "retry-1"
      token
  | _ -> Alcotest.fail "expected Add_graphs");
  (* An oversized token is rejected at the codec, not half-accepted. *)
  expect_proto_error "oversized token" (fun () ->
      P.request_of_string
        (P.encode_request
           (P.Add_graphs { id = 0; token = String.make 129 't'; graphs = [||] })));
  (* The roster's replica triple is dropped for old peers and defaults
     to a sole primary at epoch 0 on decode. *)
  let with_roster =
    List.find
      (function P.Health_reply { workers = _ :: _; _ } -> true | _ -> false)
      sample_replies
  in
  List.iter
    (fun version ->
      match P.reply_of_string (P.encode_reply ~version with_roster) with
      | P.Health_reply { workers; _ } ->
        List.iter
          (fun (w : P.worker_health) ->
            Alcotest.(check int)
              (Printf.sprintf "v%d roster defaults rid to 0" version)
              0 w.rid;
            Alcotest.(check int)
              (Printf.sprintf "v%d roster defaults worker_epoch to 0" version)
              0 w.worker_epoch;
            Alcotest.(check bool)
              (Printf.sprintf "v%d roster defaults primary to true" version)
              true w.primary)
          workers
      | _ -> Alcotest.fail "expected Health_reply")
    [ 4; 5 ];
  match P.reply_of_string (P.encode_reply with_roster) with
  | P.Health_reply { workers; _ } ->
    Alcotest.(check bool) "current-version frame keeps the replica triple"
      true
      (List.exists
         (fun (w : P.worker_health) ->
           w.rid = 1 && w.worker_epoch = 12 && not w.primary)
         workers)
  | _ -> Alcotest.fail "expected Health_reply"

let suite =
  [
    Alcotest.test_case "requests round-trip" `Quick test_request_roundtrips;
    Alcotest.test_case "pre-v6 replication interop pinned" `Quick
      test_pre_v6_interop;
    Alcotest.test_case "v1 frames interoperate" `Quick test_v1_interop;
    Alcotest.test_case "pre-v3 configs interoperate" `Quick
      test_pre_v3_config_interop;
    Alcotest.test_case "pre-v4 health interoperates" `Quick
      test_pre_v4_health_interop;
    Alcotest.test_case "replies round-trip" `Quick test_reply_roundtrips;
    Alcotest.test_case "query config round-trips" `Quick test_config_roundtrip;
    Alcotest.test_case "truncation at every boundary" `Quick
      test_truncation_every_boundary;
    Alcotest.test_case "trailing bytes rejected" `Quick
      test_trailing_bytes_rejected;
    Alcotest.test_case "single-byte flips detected" `Quick
      test_single_byte_flips;
    Alcotest.test_case "header low-bit flips detected" `Quick
      test_low_bit_flips_in_header;
    Alcotest.test_case "valid CRC, hostile payload" `Quick
      test_valid_crc_bad_payload;
    Alcotest.test_case "oversized length rejected early" `Quick
      test_oversized_length_rejected_before_allocation;
    Alcotest.test_case "stream reader = string decoder" `Quick
      test_stream_reader_matches_string_decoder;
  ]
