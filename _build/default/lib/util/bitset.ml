type t = { cap : int; words : int array }

let bits_per_word = Sys.int_size

let nwords cap = (cap + bits_per_word - 1) / bits_per_word

let create cap =
  if cap < 0 then invalid_arg "Bitset.create";
  { cap; words = Array.make (max 1 (nwords cap)) 0 }

let capacity t = t.cap

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let set t i b = if b then add t i else remove t i

let full cap =
  let t = create cap in
  for i = 0 to cap - 1 do add t i done;
  t

let copy t = { cap = t.cap; words = Array.copy t.words }

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let same_cap a b =
  if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch"

let union_into a b =
  same_cap a b;
  Array.iteri (fun i w -> a.words.(i) <- a.words.(i) lor w) b.words

let inter_into a b =
  same_cap a b;
  Array.iteri (fun i w -> a.words.(i) <- a.words.(i) land w) b.words

let diff_into a b =
  same_cap a b;
  Array.iteri (fun i w -> a.words.(i) <- a.words.(i) land lnot w) b.words

let union a b = let c = copy a in union_into c b; c
let inter a b = let c = copy a in inter_into c b; c
let diff a b = let c = copy a in diff_into c b; c

let subset a b =
  same_cap a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let disjoint a b =
  same_cap a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let equal a b = a.cap = b.cap && a.words = b.words

let compare a b =
  match Stdlib.compare a.cap b.cap with
  | 0 -> Stdlib.compare a.words b.words
  | c -> c

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list cap l =
  let t = create cap in
  List.iter (add t) l;
  t

let choose t =
  let exception Found of int in
  try iter (fun i -> raise (Found i)) t; None with Found i -> Some i

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let hash t = Hashtbl.hash t.words

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (elements t)
