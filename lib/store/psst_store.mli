(** Versioned binary on-disk store (DESIGN.md §9).

    A store file is a magic/version/kind header followed by named,
    length-prefixed sections, each protected by a CRC-32 over its name and
    payload. Every reader-side anomaly — truncation, a flipped byte, an
    unknown format version, a file of the wrong kind, a missing section, or
    payload bytes that decode to out-of-range values — raises {!Store_error}
    with a human-readable message; readers never raise [Failure] or leak a
    low-level exception, and never return silently wrong data (every byte of
    the file is covered by either the header CRC or a section CRC).

    Layout (all integers little-endian):

    {v
    offset 0   magic    "PSSTSTR\x00"            8 bytes
           8   version  u32                      {!format_version}
          12   kind     u32                      see {!kind}
          16   count    u32                      number of sections
          20   crc      u32                      CRC-32 of bytes 0..19
          24   sections, each:
                 name_len     u32
                 name         bytes
                 payload_len  u64
                 crc          u32                CRC-32 of name ++ payload
                 payload      bytes
    v}

    Versioning policy: [format_version] is bumped on any incompatible layout
    change; readers reject any other version outright (no migration — stores
    are caches that can always be rebuilt from source data). *)

exception Store_error of string

(** [error fmt ...] raises {!Store_error} with a formatted message. *)
val error : ('a, unit, string, 'b) format4 -> 'a

(** [checked f] runs [f ()], converting any [Invalid_argument] or [Failure]
    escaping it into {!Store_error} — used to wrap validating constructors
    ([Lgraph.create], [Factor.create], [Pgraph.make]) on the decode path. *)
val checked : (unit -> 'a) -> 'a

val format_version : int

(** Size of the fixed file header in bytes. *)
val header_bytes : int

(** What a store file holds; readers reject a kind mismatch. *)
type kind =
  | Pgdb  (** an array of probabilistic graphs *)
  | Pmi_index  (** a serialized {!Pmi.t} with its database fingerprint *)
  | Dataset  (** a full {!Generator.t} corpus *)
  | Database  (** the whole query-time state ({!Query.database}) *)
  | Manifest  (** a shard manifest ([Psst_shard.manifest]) *)
  | Delta
      (** one ingest batch appended to a [Database] store — a side file
          ([BASE.delta.K]) holding the new graphs plus the chain metadata
          that pins it to its base ([Psst_ingest]) *)

val kind_name : kind -> string

type section = { name : string; payload : string }

(** [write_file ?version path ~kind sections] writes atomically (via a
    temporary file and rename). [?version] exists so tests can produce
    version-skewed files; production callers omit it. *)
val write_file : ?version:int -> string -> kind:kind -> section list -> unit

(** [read_file path ~kind] validates the header and every section checksum.
    Raises {!Store_error} on any anomaly. As a side effect it removes an
    orphaned [path ^ ".tmp"] left behind by an interrupted {!write_file}
    (counted as ["store.tmp_cleaned"], with a warning event) — the rename
    never ran, so [path] itself is still the intact previous version. *)
val read_file : string -> kind:kind -> section list

(** [read_string contents ~kind] — same, from in-memory file contents. *)
val read_string : string -> kind:kind -> section list

(** Result of a best-effort read: the sections whose checksums held, and
    the names of the ones that did not (or a ["<unreadable tail: ..>"]
    marker when section framing itself was destroyed — sections expected
    but not listed in either field were never reached and must be treated
    as damaged). *)
type salvage = { intact : section list; damaged : string list }

(** [read_file_salvage path ~kind] reads whatever survives of a damaged
    store (DESIGN.md §12): the header must be intact, per-section CRC
    failures skip just that section instead of aborting. Also cleans an
    orphaned [.tmp] like {!read_file}. *)
val read_file_salvage : string -> kind:kind -> salvage

val read_string_salvage : string -> kind:kind -> salvage

(** [find_section sections name] — {!Store_error} when absent. *)
val find_section : section list -> string -> string

(** [section_spans contents] parses the framing of a well-formed store and
    returns [(name, start, stop)] byte spans of each section (including its
    name/length/CRC framing, [stop] exclusive) — the corruption test suite
    uses it to truncate at section boundaries and flip bytes per section. *)
val section_spans : string -> (string * int * int) list

(** [is_store_file path] — true when the file starts with the store magic
    (used to sniff binary vs. textual corpora). *)
val is_store_file : string -> bool

(** {1 Payload encoding}

    Primitives for section payloads: fixed-width little-endian integers,
    IEEE-754 bit-exact floats, and length-prefixed strings and containers.
    Decoders are bounds-checked and raise {!Store_error} (never an
    out-of-bounds [Invalid_argument]) on overrun or invalid data. *)

type enc

val encoder : unit -> enc
val contents : enc -> string

(** Bytes written so far — flat encoders use it to record offsets. *)
val enc_length : enc -> int

(** [put_raw e s] appends [s] with no length prefix (the receiving decoder
    must know the extent some other way, e.g. from a directory section). *)
val put_raw : enc -> string -> unit
val put_i64 : enc -> int -> unit
val put_i32 : enc -> int32 -> unit

(** Little-endian u16; [Invalid_argument] outside [0 .. 65535]. *)
val put_u16 : enc -> int -> unit

(** Stored as IEEE-754 bits: round-trips every float bit-exactly. *)
val put_f64 : enc -> float -> unit

val put_bool : enc -> bool -> unit
val put_string : enc -> string -> unit
val put_int_list : enc -> int list -> unit
val put_list : enc -> (enc -> 'a -> unit) -> 'a list -> unit
val put_array : enc -> (enc -> 'a -> unit) -> 'a array -> unit
val put_option : enc -> (enc -> 'a -> unit) -> 'a option -> unit
val put_lgraph : enc -> Lgraph.t -> unit

(** [section name enc] packages an encoder's contents as a section. *)
val section : string -> enc -> section

type dec

(** [decoder ?name payload] — [name] is quoted in error messages. *)
val decoder : ?name:string -> string -> dec

val get_i64 : dec -> int

(** A length or count: a [get_i64] that must be non-negative. *)
val get_nat : dec -> int

val get_i32 : dec -> int32
val get_f64 : dec -> float
val get_bool : dec -> bool
val get_string : dec -> string
val get_int_list : dec -> int list
val get_list : dec -> (dec -> 'a) -> 'a list
val get_array : dec -> (dec -> 'a) -> 'a array
val get_option : dec -> (dec -> 'a) -> 'a option
val get_lgraph : dec -> Lgraph.t

(** [get_bytes d n] — the next [n] raw bytes, bounds-checked. Used by
    codecs with fixed-width fields (e.g. the RPC frame magic) that are not
    length-prefixed. *)
val get_bytes : dec -> int -> string

(** Bytes left to consume in the payload. *)
val dec_remaining : dec -> int

(** [expect_end d] — {!Store_error} unless the payload was fully consumed. *)
val expect_end : dec -> unit

(** [decode_section sections name f] finds the section, decodes it with [f]
    and checks the payload was fully consumed. *)
val decode_section : section list -> string -> (dec -> 'a) -> 'a

(** Unsigned LEB128 varint (7 bits per byte, high bit = continuation) —
    the delta coding of the flat postings sections (DESIGN.md §15). *)
val put_varint : enc -> int -> unit

val get_varint : dec -> int

(** {1 Memory-mapped zero-copy access (DESIGN.md §15)}

    The flat index image stores fixed-width payloads (IEEE-754 bounds,
    u16 structural counts) that query-time code reads directly out of a
    memory-mapped store file through typed {!Bigarray} views, skipping the
    eager decode entirely. *)

(** [align_payloads ~targets sections] inserts, immediately before every
    section named in [targets], a zero-filled padding section (named
    ["pad." ^ name]) sized so that the target's payload starts at a file
    offset that is a multiple of 8 — the alignment {!mapped_f64} and
    {!mapped_u16} require. Pads carry their own CRC like any section and
    are simply ignored by readers. Writers of flat images call this once,
    on the final section list, just before {!write_file}. *)
val align_payloads : targets:string list -> section list -> section list

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type u16s = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(** A memory-mapped store file: the raw bytes plus the parsed section
    table. Opening one verifies the header CRC and the whole section
    framing (names, lengths, no duplicates, no trailing garbage) but
    {e defers payload checksums}: open stays O(header + directory) no
    matter how large the file is — the point of the flat image is a cold
    start independent of database size. Payloads are then verified where
    they are consumed: {!mapped_section_string} and {!mapped_bytes} check
    the stored CRC before handing bytes out, while the typed
    {!mapped_f64}/{!mapped_u16} views and lazily-decoded payloads are
    validated structurally by their consumers (and exhaustively by the
    eager loader, which remains the integrity baseline). There is no
    salvage variant — salvage rebuilds heap structures, which is what
    mmap loading exists to avoid; callers fall back to the eager salvage
    path instead. *)
type mapped

(** [map_file path ~kind] maps [path] read-only and validates header,
    kind, framing and orphaned [.tmp] cleanup (payload CRCs are deferred
    to the accessors — see {!mapped}). Fault site ["store.map"] supports
    [Fail] and [Delay] ([Bitflip]/[Partial_io] escalate to [Fail]: a
    shared read-only mapping cannot be damaged without copying). *)
val map_file : string -> kind:kind -> mapped

val mapped_path : mapped -> string
val mapped_names : mapped -> string list
val mapped_has : mapped -> string -> bool

(** [mapped_section_string m name] verifies the section's stored CRC and
    copies its payload out as a string — for small sections (directories,
    configs) that are decoded eagerly with the ordinary {!dec} codecs.
    {!Store_error} when absent or corrupted. *)
val mapped_section_string : mapped -> string -> string

(** [mapped_bytes m name] — zero-copy [char] view of the payload, after
    verifying its stored CRC (one streaming pass, no allocation). *)
val mapped_bytes : mapped -> string -> bigbytes

(** [mapped_bytes_unverified m name] — zero-copy view {e without} the
    checksum pass, for bulk payloads whose consumers validate lazily
    (per-record decoders, per-lookup range checks). A flipped byte in
    such a section surfaces as a {!Store_error} at access time — or, for
    raw numeric payloads, as a changed value the eager loader would have
    rejected; pick this accessor only when that trade is documented. *)
val mapped_bytes_unverified : mapped -> string -> bigbytes

(** [mapped_payload_crc m name] — CRC-32 of the raw payload bytes with a
    zero seed, equal to [Psst_util.Crc32.digest] of the payload string:
    lets callers compare a section against a fingerprint computed over
    encoded data (e.g. {!Pgraph_io.db_fingerprint}) without decoding or
    copying it. One streaming O(payload) pass. *)
val mapped_payload_crc : mapped -> string -> int32

(** [mapped_f64 m name] — zero-copy IEEE-754 float64 view of the payload.
    {!Store_error} if the payload's length is not a multiple of 8 or its
    file offset is not 8-byte aligned (see {!align_payloads}). Must be
    created before {!mapped_release}. *)
val mapped_f64 : mapped -> string -> floats

(** [mapped_u16 m name] — zero-copy little-endian u16 view. Same
    alignment contract as {!mapped_f64}. *)
val mapped_u16 : mapped -> string -> u16s

(** [mapped_release m] closes the underlying file descriptor. The mapping
    itself survives (it is unmapped when the views are garbage-collected),
    but further {!mapped_f64}/{!mapped_u16} calls fail. Call it once all
    typed views are in hand, so long-lived servers do not pin an fd per
    shard. *)
val mapped_release : mapped -> unit
