module Prng = Psst_util.Prng

type hit = { graph : int; ssp : float }

type stats = {
  structural_candidates : int;
  verified : int;
  bound_skipped : int;
  relaxed_truncated : bool;
}

let m_runs = Psst_obs.counter "topk.runs"

type outcome = { hits : hit list; stats : stats }

(* Like [Query.run], every candidate draws from its own PRNG stream
   keyed on (seed, global graph id): the Usim ranking bound uses the
   pruning-stream family, verification the verification-stream family.
   A candidate's (upper, ssp) pair is therefore a pure function of the
   query and the graph — independent of ranking order, of which other
   graphs share the database, and of how many competitors were verified
   before it. That is what makes the per-shard top-k lists of a
   partitioned corpus mergeable into exactly the monolithic answer
   ([Psst_shard.merge_topk]). Only the PRNG-free artifacts (relaxed set,
   prepared memberships, embedding sets and Karp–Luby preparations)
   memoise through [cache]; final SSPs are recomputed per run, keeping
   cached runs bit-identical to cold ones. *)
let verify_one ?scope ~graph:gi (config : Query.config) rng g relaxed =
  let cached_embeddings emb_cap compute =
    match scope with
    | None -> compute ()
    | Some s -> Qcache.embeddings s ~graph:gi ~emb_cap ~compute
  in
  match config.verifier with
  | `Exact ->
    let sets =
      cached_embeddings Verify.default_config.emb_cap (fun () ->
          Verify.embedding_sets g relaxed)
    in
    Verify.exact_with_sets g sets
  | `Smp vc ->
    let prep =
      match scope with
      | None -> Verify.smp_prepare g (Verify.embedding_sets ~config:vc g relaxed)
      | Some s ->
        Qcache.smp_prep s ~graph:gi ~emb_cap:vc.emb_cap ~compute:(fun () ->
            let sets =
              cached_embeddings vc.emb_cap (fun () ->
                  Verify.embedding_sets ~config:vc g relaxed)
            in
            Verify.smp_prepare g sets)
    in
    (* No [stop_epsilon]: top-k documents [config.epsilon] as ignored
       (there is no decision threshold in a ranking query), so adaptive
       verifiers stop on the precision test alone — never on a CI
       clearing a meaningless threshold. *)
    (Verify.smp_run ~config:vc rng prep).value

let run ?cache (db : Query.database) q ~k (config : Query.config) =
  if k <= 0 then invalid_arg "Topk.run: k must be positive";
  Psst_obs.incr m_runs;
  let scope =
    Option.map
      (fun c ->
        Qcache.scope c ~graphs:db.graphs ~pmi:db.pmi ~q ~delta:config.delta
          ~relax_cap:config.relax_cap)
      cache
  in
  let relaxed, status =
    let compute () = Relax.relaxed_set ~cap:config.relax_cap q ~delta:config.delta in
    match scope with None -> compute () | Some s -> Qcache.relaxed s ~compute
  in
  let structural =
    Structural.candidates db.structural
      ~skeleton:(Corpus.skeleton db.Query.graphs)
      q ~delta:config.delta
  in
  let prepared =
    let compute () = Pruning.prepare db.pmi ~relaxed in
    match scope with None -> compute () | Some s -> Qcache.prepared s ~compute
  in
  (* Candidates ordered by decreasing upper bound. *)
  let ranked =
    List.map
      (fun gi ->
        let rng = Query.prune_stream ~seed:config.seed (Query.global db gi) in
        let u =
          Pruning.usim ~certified:config.certified rng db.pmi prepared ~graph:gi
            ~mode:config.mode
        in
        (gi, u))
      structural
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  (* Best-first: verify until the k-th best verified SSP dominates every
     remaining upper bound. The verified set is kept as a sorted list
     (k is small). Reported SSPs are clamped to the candidate's upper
     bound: the sampled estimate can exceed it, and without the clamp a
     skipped candidate (upper < kth best) could still have out-sampled
     the k-th hit — the clamp is what makes the skip rule lossless, and
     with it the best-first result provably equals the full ranking by
     clamped SSP (hence also the threshold-aware merge of per-shard
     top-k lists). *)
  let hits = ref [] in
  let kth_best () =
    if List.length !hits < k then 0.
    else match List.nth_opt !hits (k - 1) with Some h -> h.ssp | None -> 0.
  in
  let verified = ref 0 and skipped = ref 0 in
  List.iter
    (fun (gi, upper) ->
      if upper < kth_best () || (List.length !hits >= k && upper = 0.) then
        incr skipped
      else begin
        incr verified;
        let rng = Prng.stream ~seed:config.seed (Query.global db gi) in
        let ssp =
          Float.min upper
            (verify_one ?scope ~graph:gi config rng (Corpus.get db.graphs gi) relaxed)
        in
        if ssp > 0. then begin
          hits := { graph = Query.global db gi; ssp } :: !hits;
          hits :=
            List.sort
              (fun a b ->
                match compare b.ssp a.ssp with
                | 0 -> compare a.graph b.graph
                | c -> c)
              !hits
        end
      end)
    ranked;
  let top = List.filteri (fun i _ -> i < k) !hits in
  {
    hits = top;
    stats =
      {
        structural_candidates = List.length structural;
        verified = !verified;
        bound_skipped = !skipped;
        relaxed_truncated = status = `Truncated;
      };
  }
