type entry = Bounds.t

type t = {
  config : Bounds.config;
  features : Selection.feature array;
  entries : entry option array array; (* feature -> graph *)
  num_graphs : int;
  build_seconds : float;
}

let log_src = Logs.Src.create "psst.pmi" ~doc:"PMI index construction"

module Log = (val Logs.src_log log_src)

(* The matrix is computed column-by-column (per graph) so that the world
   pool of each graph is sampled once and the columns can be distributed
   over domains: every column touches exactly one Pgraph, so the lazily
   built junction trees never contend. Columns land at their graph index,
   hence the build is independent of how the pool schedules them. *)
let m_columns = Psst_obs.counter "pmi.columns_built"
let h_column = Psst_obs.histogram "pmi.column_build_s"

let build_column config db features gi =
  Psst_obs.incr m_columns;
  Psst_obs.span h_column (fun () ->
      let nf = Array.length features in
      let g = db.(gi) in
      let world_pool = lazy (Bounds.sample_pool config g) in
      Array.init nf (fun fi ->
          let f : Selection.feature = features.(fi) in
          if List.mem gi f.support then
            Some (Bounds.compute config ~pool:(Lazy.force world_pool) g f.graph)
          else None))

let build ?(config = Bounds.default_config) ?(domains = 1) db features =
  let features = Array.of_list features in
  let ng = Array.length db in
  let nf = Array.length features in
  let result, build_seconds =
    Psst_util.Timer.time (fun () ->
        let d = max 1 (min domains ng) in
        if d > 1 then Log.debug (fun m -> m "building %d columns on %d domains" ng d);
        let columns =
          Psst_util.Pool.with_pool ~domains:d (fun pool ->
              Psst_util.Pool.map_array pool ~chunk:1
                (build_column config db features)
                (Array.init ng Fun.id))
        in
        (* Transpose columns into the feature-major layout. *)
        Array.init nf (fun fi -> Array.init ng (fun gi -> columns.(gi).(fi))))
  in
  Log.info (fun m ->
      m "PMI built: %d features x %d graphs in %.2fs" nf ng build_seconds);
  { config; features; entries = result; num_graphs = ng; build_seconds }

(* Incremental insertion. Alongside the new bound columns, the mined
   features' support lists must absorb the new graph ids: supports drive
   [build_column] on a reload and the structural filter's count rows, so a
   stale support would silently drop the graph from both after a
   save/load round trip. Supports stay sorted because new ids are the
   largest in the database. One [Array.append] per row per batch keeps a
   bulk load of k graphs at O(nf * (ng + k)) instead of O(nf * ng * k). *)
let add_graphs t gs =
  let k = Array.length gs in
  if k = 0 then t
  else begin
    let base = t.num_graphs in
    let nf = Array.length t.features in
    let skels = Array.map Pgraph.skeleton gs in
    (* occurs.(i).(fi): does feature fi occur in the skeleton of gs.(i)? *)
    let occurs =
      Array.map
        (fun gc ->
          Array.map
            (fun (f : Selection.feature) -> Vf2.exists f.graph gc)
            t.features)
        skels
    in
    let columns =
      Array.mapi
        (fun i g ->
          Psst_obs.incr m_columns;
          Psst_obs.span h_column (fun () ->
              let pool = lazy (Bounds.sample_pool t.config g) in
              Array.init nf (fun fi ->
                  let f = t.features.(fi) in
                  if Lgraph.num_edges f.Selection.graph = 0 || occurs.(i).(fi)
                  then
                    Some
                      (Bounds.compute t.config ~pool:(Lazy.force pool) g
                         f.Selection.graph)
                  else None)))
        gs
    in
    let entries =
      Array.mapi
        (fun fi row -> Array.append row (Array.init k (fun i -> columns.(i).(fi))))
        t.entries
    in
    let features =
      Array.mapi
        (fun fi (f : Selection.feature) ->
          let extra = ref [] in
          for i = k - 1 downto 0 do
            if occurs.(i).(fi) then extra := (base + i) :: !extra
          done;
          if !extra = [] then f
          else { f with Selection.support = f.support @ !extra })
        t.features
    in
    { t with features; entries; num_graphs = base + k }
  end

let add_graph t g = add_graphs t [| g |]

(* Slicing and concatenation back the shard store (lib/shard). Both are
   pure re-arrangements of already-computed state: [sub] never recomputes
   a bound (which would be sound — [build_column] is content-deterministic
   — but would defeat the point of splitting an indexed database), and
   [concat (sub ..)] pieces round-trip the original matrix bit-exactly,
   support lists included. Features are rebased to local ids so a shard
   is a fully self-contained database over its own [0 .. len-1] range. *)

let rebase_support ~base ~len l =
  List.filter_map
    (fun gi -> if gi >= base && gi < base + len then Some (gi - base) else None)
    l

let sub t ~base ~len =
  if base < 0 || len < 0 || base + len > t.num_graphs then
    invalid_arg
      (Printf.sprintf "Pmi.sub: range %d..%d outside 0..%d" base (base + len)
         t.num_graphs);
  let features =
    Array.map
      (fun (f : Selection.feature) ->
        {
          f with
          Selection.support = rebase_support ~base ~len f.support;
          strong_support = rebase_support ~base ~len f.strong_support;
        })
      t.features
  in
  let entries = Array.map (fun row -> Array.sub row base len) t.entries in
  { t with features; entries; num_graphs = len }

let concat = function
  | [] -> invalid_arg "Pmi.concat: empty list"
  | first :: _ as parts ->
    let nf = Array.length first.features in
    List.iteri
      (fun i p ->
        if p.config <> first.config then
          invalid_arg "Pmi.concat: parts built with different bound configs";
        if Array.length p.features <> nf then
          invalid_arg "Pmi.concat: parts mined different feature sets";
        Array.iteri
          (fun fi (f : Selection.feature) ->
            if f.key <> first.features.(fi).Selection.key then
              invalid_arg
                (Printf.sprintf
                   "Pmi.concat: part %d feature %d is %s, expected %s" i fi
                   f.key first.features.(fi).Selection.key))
          p.features)
      parts;
    let offsets =
      let acc = ref 0 in
      List.map
        (fun p ->
          let o = !acc in
          acc := o + p.num_graphs;
          o)
        parts
    in
    let num_graphs = List.fold_left (fun a p -> a + p.num_graphs) 0 parts in
    let features =
      Array.init nf (fun fi ->
          let f = first.features.(fi) in
          let gather proj =
            List.concat
              (List.map2
                 (fun p off -> List.map (fun gi -> gi + off) (proj p.features.(fi)))
                 parts offsets)
          in
          {
            f with
            Selection.support = gather (fun f -> f.Selection.support);
            strong_support = gather (fun f -> f.Selection.strong_support);
          })
    in
    let entries =
      Array.init nf (fun fi ->
          Array.concat (List.map (fun p -> p.entries.(fi)) parts))
    in
    let build_seconds =
      List.fold_left (fun a p -> Float.max a p.build_seconds) 0. parts
    in
    { config = first.config; features; entries; num_graphs; build_seconds }

let config t = t.config
let features t = Array.copy t.features
let num_features t = Array.length t.features
let num_graphs t = t.num_graphs

let lookup t ~feature ~graph = t.entries.(feature).(graph)

let column t ~graph =
  let out = ref [] in
  for fi = Array.length t.features - 1 downto 0 do
    match t.entries.(fi).(graph) with
    | Some e -> out := (fi, e) :: !out
    | None -> ()
  done;
  !out

let filled_entries t =
  Array.fold_left
    (fun acc row ->
      acc + Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 row)
    0 t.entries

let build_seconds t = t.build_seconds

(* --- persistence (DESIGN.md §9) --- *)

module S = Psst_store

let encode_entry e (b : entry) =
  S.put_f64 e b.Bounds.lower;
  S.put_f64 e b.upper;
  S.put_f64 e b.lower_safe;
  S.put_f64 e b.upper_safe;
  S.put_i64 e b.embeddings;
  S.put_i64 e b.cuts

let decode_entry d : entry =
  let lower = S.get_f64 d in
  let upper = S.get_f64 d in
  let lower_safe = S.get_f64 d in
  let upper_safe = S.get_f64 d in
  let embeddings = S.get_nat d in
  let cuts = S.get_nat d in
  { Bounds.lower; upper; lower_safe; upper_safe; embeddings; cuts }

(* The bound matrix is stored as graph-column shards of [shard_width]
   columns each ("pmi.entries.<k>"), not one monolithic section: each shard
   carries its own CRC, so a corrupted byte damages one shard and a salvage
   load can keep every other column and rebuild only the damaged ones with
   [build_column] (which is deterministic per (config, db, features, gi) —
   the salvage result is bit-identical to a full rebuild). "pmi.layout"
   records the geometry so readers know which shards to expect. *)
let shard_width = 16
let shard_name k = Printf.sprintf "pmi.entries.%d" k
let num_shards ng = if ng = 0 then 0 else ((ng - 1) / shard_width) + 1
let m_salvaged = Psst_obs.counter "store.salvaged_columns"

let to_sections ~db t =
  let config = S.encoder () in
  S.put_i64 config t.config.Bounds.emb_cap;
  S.put_i64 config t.config.cut_cap;
  S.put_i64 config t.config.mc_samples;
  S.put_i64 config t.config.clique_budget;
  S.put_bool config t.config.tightest;
  S.put_i64 config t.config.seed;
  let dbsec = S.encoder () in
  S.put_i64 dbsec (Array.length db);
  S.put_i32 dbsec (Pgraph_io.db_fingerprint db);
  let features = S.encoder () in
  S.put_array features Selection.encode_feature t.features;
  let nf = num_features t and ng = num_graphs t in
  let layout = S.encoder () in
  S.put_i64 layout nf;
  S.put_i64 layout ng;
  S.put_i64 layout shard_width;
  let shards =
    List.init (num_shards ng) (fun k ->
        let e = S.encoder () in
        let lo = k * shard_width and hi = min ng ((k + 1) * shard_width) in
        for gi = lo to hi - 1 do
          for fi = 0 to nf - 1 do
            S.put_option e encode_entry t.entries.(fi).(gi)
          done
        done;
        S.section (shard_name k) e)
  in
  let meta = S.encoder () in
  S.put_f64 meta t.build_seconds;
  S.section "pmi.config" config
  :: S.section "pmi.db" dbsec
  :: S.section "pmi.features" features
  :: S.section "pmi.layout" layout
  :: (shards @ [ S.section "pmi.meta" meta ])

let of_sections ?(salvage = false) ~db sections =
  let config =
    S.decode_section sections "pmi.config" (fun d ->
        let emb_cap = S.get_nat d in
        let cut_cap = S.get_nat d in
        let mc_samples = S.get_nat d in
        let clique_budget = S.get_nat d in
        let tightest = S.get_bool d in
        let seed = S.get_i64 d in
        { Bounds.emb_cap; cut_cap; mc_samples; clique_budget; tightest; seed })
  in
  S.decode_section sections "pmi.db" (fun d ->
      let stored_ng = S.get_nat d in
      let stored_fp = S.get_i32 d in
      if stored_ng <> Array.length db then
        S.error
          "database mismatch: index was built over %d graphs, this database \
           has %d — rebuild the index"
          stored_ng (Array.length db);
      let fp = Pgraph_io.db_fingerprint db in
      if stored_fp <> fp then
        S.error
          "database fingerprint mismatch (stored %08lx, actual %08lx): the \
           index was built for a different database — rebuild the index"
          stored_fp fp);
  let ng = Array.length db in
  let features =
    S.decode_section sections "pmi.features" (fun d ->
        S.get_array d Selection.decode_feature)
  in
  Array.iter
    (fun (f : Selection.feature) ->
      List.iter
        (fun gi ->
          if gi >= ng then
            S.error "feature support mentions graph %d of a %d-graph database"
              gi ng)
        f.support)
    features;
  let nf = Array.length features in
  let shard_w =
    S.decode_section sections "pmi.layout" (fun d ->
        let stored_nf = S.get_nat d in
        let stored_ng = S.get_nat d in
        let w = S.get_nat d in
        if stored_nf <> nf then
          S.error "entry layout has %d rows for %d features" stored_nf nf;
        if stored_ng <> ng then
          S.error "entry layout has %d columns for %d graphs" stored_ng ng;
        if w < 1 then S.error "entry layout shard width %d must be >= 1" w;
        w)
  in
  let entries = Array.init nf (fun _ -> Array.make ng None) in
  let nshards = if ng = 0 then 0 else ((ng - 1) / shard_w) + 1 in
  let rebuilt_shards = ref [] in
  let rebuilt_cols = ref 0 in
  let has name = List.exists (fun (s : S.section) -> s.S.name = name) sections in
  for k = 0 to nshards - 1 do
    let name = shard_name k in
    let lo = k * shard_w and hi = min ng ((k + 1) * shard_w) in
    if has name then
      S.decode_section sections name (fun d ->
          for gi = lo to hi - 1 do
            for fi = 0 to nf - 1 do
              entries.(fi).(gi) <- S.get_option d decode_entry
            done
          done)
    else if not salvage then ignore (S.find_section sections name)
    else
      (* Self-healing (DESIGN.md §12): the shard's checksum failed (or the
         section never made it to disk) — recompute exactly its columns
         from the graphs and the intact feature section. *)
      begin
        for gi = lo to hi - 1 do
          let col = build_column config db features gi in
          for fi = 0 to nf - 1 do
            entries.(fi).(gi) <- col.(fi)
          done;
          incr rebuilt_cols
        done;
        rebuilt_shards := name :: !rebuilt_shards
      end
  done;
  if !rebuilt_cols > 0 then begin
    Psst_obs.add m_salvaged !rebuilt_cols;
    Psst_obs.warn ~code:"store.salvaged"
      (Printf.sprintf "PMI salvage: rebuilt %d columns (damaged shards: %s)"
         !rebuilt_cols
         (String.concat ", " (List.rev !rebuilt_shards)))
  end;
  let build_seconds =
    if salvage && not (has "pmi.meta") then 0.
    else S.decode_section sections "pmi.meta" S.get_f64
  in
  { config; features; entries; num_graphs = ng; build_seconds }

let save path ~db t = S.write_file path ~kind:S.Pmi_index (to_sections ~db t)

let load ?(salvage = false) path ~db =
  if salvage then
    of_sections ~salvage:true ~db
      (S.read_file_salvage path ~kind:S.Pmi_index).S.intact
  else of_sections ~db (S.read_file path ~kind:S.Pmi_index)

let pp_stats ppf t =
  Format.fprintf ppf "PMI: %d features x %d graphs, %d filled entries, built in %.2fs"
    (num_features t) (num_graphs t) (filled_entries t) t.build_seconds
