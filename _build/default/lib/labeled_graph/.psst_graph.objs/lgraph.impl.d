lib/labeled_graph/lgraph.ml: Array Buffer Format Hashtbl List Option Printf Psst_util String
