lib/simsearch/structural.mli: Lgraph Selection
