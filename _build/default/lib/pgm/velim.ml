module Iset = Set.Make (Int)

let all_vars factors =
  List.fold_left
    (fun acc f -> Array.fold_left (fun acc v -> Iset.add v acc) acc (Factor.vars f))
    Iset.empty factors

(* Min-degree heuristic: repeatedly eliminate the variable whose bucket
   product has the smallest merged scope. *)
let elimination_order factors to_eliminate =
  let to_eliminate = ref (Iset.of_list to_eliminate) in
  let scopes = ref (List.map (fun f -> Iset.of_list (Array.to_list (Factor.vars f))) factors) in
  let order = ref [] in
  while not (Iset.is_empty !to_eliminate) do
    let cost v =
      let merged =
        List.fold_left
          (fun acc s -> if Iset.mem v s then Iset.union acc s else acc)
          Iset.empty !scopes
      in
      Iset.cardinal merged
    in
    let v =
      Iset.fold
        (fun v best ->
          match best with
          | None -> Some (v, cost v)
          | Some (_, c) ->
            let cv = cost v in
            if cv < c then Some (v, cv) else best)
        !to_eliminate None
      |> Option.get |> fst
    in
    (* Simulate the elimination on the scope set. *)
    let touched, rest = List.partition (Iset.mem v) !scopes in
    let merged = List.fold_left Iset.union Iset.empty touched in
    scopes := Iset.remove v merged :: rest;
    to_eliminate := Iset.remove v !to_eliminate;
    order := v :: !order
  done;
  List.rev !order

let marginal factors keep =
  let keep_set = Iset.of_list keep in
  let elim = Iset.elements (Iset.diff (all_vars factors) keep_set) in
  let order = elimination_order factors elim in
  let work = ref factors in
  List.iter
    (fun v ->
      let touched, rest = List.partition (fun f -> Factor.mentions f v) !work in
      match touched with
      | [] -> ()
      | _ ->
        let prod = Factor.multiply_all touched in
        work := Factor.sum_out prod v :: rest)
    order;
  Factor.multiply_all !work

let partition_value factors = Factor.total (marginal factors [])

let prob ~evidence factors =
  let z = partition_value factors in
  if z <= 0. then invalid_arg "Velim.prob: zero partition value";
  let conditioned =
    List.map
      (fun f ->
        List.fold_left (fun f (v, b) -> Factor.condition f v b) f evidence)
      factors
  in
  Factor.total (marginal conditioned []) /. z

let prob_all_present factors vars =
  prob ~evidence:(List.map (fun v -> (v, true)) vars) factors
