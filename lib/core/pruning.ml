module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

type mode = Random_pick | Optimized

(* Query-side memberships, independent of the candidate graph. The
   subgraph-isomorphism tests here are the "additional subgraph isomorphic
   tests" the paper charges to the bound computation; they run once per
   query. *)
type prepared = {
  a : int;  (* |U| *)
  sub_members : Bitset.t array;  (* feature fi -> { rq : fi ⊆iso rq } *)
  super_members : Bitset.t array;  (* feature fi -> { rq : rq ⊆iso fi } *)
}

type result = {
  usim : float;
  lsim : float;
  lsim_safe : float;
  decision : [ `Pruned | `Accepted | `Candidate ];
}

(* A feature absent from gc has SIP 0 — the paper's ⟨0⟩ entries. Any
   relaxed query containing such a feature can never embed in a world,
   which is the strongest possible pruning evidence. *)
let zero_entry =
  {
    Bounds.lower = 0.;
    upper = 0.;
    lower_safe = 0.;
    upper_safe = 0.;
    embeddings = 0;
    cuts = 0;
  }

let prepare pmi ~relaxed =
  let a = List.length relaxed in
  if a = 0 then invalid_arg "Pruning.prepare: empty relaxed set";
  let rq = Array.of_list relaxed in
  let features = Pmi.features pmi in
  let sub_members =
    Array.map
      (fun (f : Selection.feature) ->
        let members = Bitset.create a in
        for i = 0 to a - 1 do
          if Vf2.exists f.graph rq.(i) then Bitset.add members i
        done;
        members)
      features
  in
  let super_members =
    Array.map
      (fun (f : Selection.feature) ->
        let members = Bitset.create a in
        for j = 0 to a - 1 do
          if Vf2.exists rq.(j) f.graph then Bitset.add members j
        done;
        members)
      features
  in
  { a; sub_members; super_members }

let entry_of pmi ~graph fi =
  match Pmi.lookup pmi ~feature:fi ~graph with
  | Some e -> e
  | None -> zero_entry

let clamp01 x = Float.max 0. (Float.min 1. x)

let usim ?(certified = true) rng pmi prepared ~graph ~mode =
  let a = prepared.a in
  let upper (e : Bounds.t) = if certified then e.upper_safe else e.upper in
  (* s_j = { i | f_j ⊆iso rq_i }, weight UpperB f_j. *)
  let sets =
    Array.to_list prepared.sub_members
    |> List.mapi (fun fi members -> (fi, members))
    |> List.filter (fun (_, members) -> not (Bitset.is_empty members))
    |> List.map (fun (fi, members) -> (members, upper (entry_of pmi ~graph fi)))
  in
  match mode with
  | Optimized ->
    let res = Set_cover.greedy ~universe:a (Array.of_list sets) in
    clamp01 (res.weight +. float_of_int (Bitset.cardinal res.uncovered))
  | Random_pick ->
    (* One arbitrary feasible feature per relaxed query (paper's SSPBound
       setup). *)
    let total = ref 0. in
    for i = 0 to a - 1 do
      let feasible =
        List.filter_map
          (fun (members, u) -> if Bitset.mem members i then Some u else None)
          sets
      in
      match feasible with
      | [] -> total := !total +. 1.
      | _ ->
        let arr = Array.of_list feasible in
        total := !total +. arr.(Prng.int rng (Array.length arr))
    done;
    clamp01 !total

let lsim ?(certified = true) rng pmi prepared ~graph ~mode =
  let a = prepared.a in
  (* s_i = { j | rq_j ⊆iso f_i }, weights (LowerB, UpperB). *)
  let sets =
    Array.to_list prepared.super_members
    |> List.mapi (fun fi members -> (fi, members))
    |> List.filter (fun (_, members) -> not (Bitset.is_empty members))
    |> List.map (fun (fi, members) -> (members, entry_of pmi ~graph fi))
  in
  let covered = Bitset.create a in
  List.iter (fun (members, _) -> Bitset.union_into covered members) sets;
  if Bitset.cardinal covered < a then (Float.neg_infinity, Float.neg_infinity)
  else begin
    let paper_inst =
      {
        Qp.universe = a;
        sets =
          Array.of_list
            (List.map
               (fun (members, (e : Bounds.t)) -> (members, e.lower, e.upper))
               sets);
      }
    in
    let safe_inst =
      {
        Qp.universe = a;
        sets =
          Array.of_list
            (List.map
               (fun (members, (e : Bounds.t)) ->
                 (members, e.lower_safe, e.upper_safe))
               sets);
      }
    in
    let opt_inst = if certified then safe_inst else paper_inst in
    let chosen =
      match mode with
      | Optimized ->
        let sol = Qp.solve opt_inst in
        let rounded = Rounding.round_repaired rng opt_inst ~x:sol.x in
        rounded.chosen
      | Random_pick ->
        let pick = Hashtbl.create 8 in
        for j = 0 to a - 1 do
          let idxs = ref [] in
          List.iteri
            (fun k (members, _) -> if Bitset.mem members j then idxs := k :: !idxs)
            sets;
          let arr = Array.of_list !idxs in
          Hashtbl.replace pick arr.(Prng.int rng (Array.length arr)) ()
        done;
        Hashtbl.fold (fun k () acc -> k :: acc) pick [] |> List.sort compare
    in
    let paper = Qp.integer_objective paper_inst ~chosen in
    let safe = Qp.integer_objective_safe safe_inst ~chosen in
    (paper, safe)
  end

let m_evaluated = Psst_obs.counter "pruning.evaluated"
let m_pruned = Psst_obs.counter "pruning.pruned_by_usim"
let m_accepted = Psst_obs.counter "pruning.accepted_by_lsim"
let m_undecided = Psst_obs.counter "pruning.undecided"

let evaluate ?(certified = true) rng pmi prepared ~graph ~epsilon ~mode =
  Psst_obs.incr m_evaluated;
  let u = usim ~certified rng pmi prepared ~graph ~mode in
  if u < epsilon then begin
    Psst_obs.incr m_pruned;
    { usim = u; lsim = Float.neg_infinity; lsim_safe = Float.neg_infinity;
      decision = `Pruned }
  end
  else begin
    let lp, ls = lsim ~certified rng pmi prepared ~graph ~mode in
    let decision = if ls >= epsilon then `Accepted else `Candidate in
    Psst_obs.incr (if decision = `Accepted then m_accepted else m_undecided);
    { usim = u; lsim = lp; lsim_safe = ls; decision }
  end
