lib/util/combin.mli:
