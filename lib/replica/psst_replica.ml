(* Delta-stream replication: the primary-side hub that streams persisted
   deltas to subscribed standbys and gates ingest acks on their
   acknowledgements, and the standby-side loop that applies the stream
   through the single-writer ingest path (DESIGN.md §17). *)

module P = Psst_proto
module I = Psst_ingest
module Client = Psst_client

let m_frames = Psst_obs.counter "replica.frames"
let m_subscribes = Psst_obs.counter "replica.subscribes"
let m_stream_errors = Psst_obs.counter "replica.stream.errors"
let m_applied = Psst_obs.counter "replica.applied"
let m_stale = Psst_obs.counter "replica.stale"
let m_rejected = Psst_obs.counter "replica.rejected"
let m_reconnects = Psst_obs.counter "replica.reconnects"

(* Chaos site on the standby's receive path: between the wire and the
   disk, where a real deployment's stream corruption would land. *)
let fault_stream = Psst_fault.site "replica.stream"

(* {1 Primary side: the hub} *)

type sub = {
  sid : int;
  send : P.reply -> bool;
  mutable next : int;  (* next seq to stream to this subscriber *)
  mutable acked : int;  (* highest seq the subscriber acknowledged *)
  mutable closed : bool;
}

type hub = {
  chain : I.chain;
  ack_timeout_ms : float;
  hmutex : Mutex.t;
  hcond : Condition.t;
  mutable head : int;  (* highest persisted seq (publish advances it) *)
  mutable subs : sub list;
  mutable next_sid : int;
  mutable hub_stopping : bool;
  mutable threads : Thread.t list;
}

let close_sub h s =
  Mutex.lock h.hmutex;
  if not s.closed then begin
    s.closed <- true;
    h.subs <- List.filter (fun s' -> s'.sid <> s.sid) h.subs;
    Condition.broadcast h.hcond
  end;
  Mutex.unlock h.hmutex

(* One thread per subscriber: sleep until the head passes [next], read
   the persisted bytes back (checksum-verified) and push them. The
   subscriber connection's writes are serialised by the server's
   per-connection write mutex, so frames interleave safely with the
   reader thread's replies. *)
let stream_loop h s =
  let rec loop () =
    Mutex.lock h.hmutex;
    while (not h.hub_stopping) && (not s.closed) && s.next > h.head do
      Condition.wait h.hcond h.hmutex
    done;
    if h.hub_stopping || s.closed then Mutex.unlock h.hmutex
    else begin
      let seq = s.next in
      Mutex.unlock h.hmutex;
      match I.delta_bytes h.chain ~seq with
      | bytes ->
        if s.send (P.Delta_frame { seq; bytes }) then begin
          Psst_obs.incr m_frames;
          Mutex.lock h.hmutex;
          s.next <- seq + 1;
          Mutex.unlock h.hmutex;
          loop ()
        end
        else close_sub h s
      | exception Psst_store.Store_error msg ->
        Psst_obs.incr m_stream_errors;
        Psst_obs.warn ~code:"replica.stream"
          (Printf.sprintf "delta %d unreadable, dropping subscriber %d: %s"
             seq s.sid msg);
        close_sub h s
      | exception Sys_error msg ->
        Psst_obs.incr m_stream_errors;
        Psst_obs.warn ~code:"replica.stream"
          (Printf.sprintf "delta %d unreadable, dropping subscriber %d: %s"
             seq s.sid msg);
        close_sub h s
    end
  in
  loop ()

let hub ?(ack_timeout_ms = 5000.) chain =
  {
    chain;
    ack_timeout_ms;
    hmutex = Mutex.create ();
    hcond = Condition.create ();
    head = chain.I.next_seq - 1;
    subs = [];
    next_sid = 0;
    hub_stopping = false;
    threads = [];
  }

let subscribe h ~from_seq ~send =
  Mutex.lock h.hmutex;
  let r =
    if h.hub_stopping then Error "replication hub is shutting down"
    else if from_seq < 1 then
      Error (Printf.sprintf "invalid from_seq %d" from_seq)
    else if from_seq > h.head + 1 then
      Error
        (Printf.sprintf
           "subscriber is ahead of the primary's chain (from_seq %d, next \
            unstreamed seq %d); it replicates a different history"
           from_seq (h.head + 1))
    else begin
      let s =
        {
          sid = h.next_sid;
          send;
          next = from_seq;
          acked = from_seq - 1;
          closed = false;
        }
      in
      h.next_sid <- h.next_sid + 1;
      h.subs <- s :: h.subs;
      let th = Thread.create (fun () -> stream_loop h s) () in
      h.threads <- th :: h.threads;
      Condition.broadcast h.hcond;
      Ok s
    end
  in
  Mutex.unlock h.hmutex;
  match r with
  | Error _ as e -> e
  | Ok s ->
    Psst_obs.incr m_subscribes;
    Ok
      {
        Psst_server.sub_ack =
          (fun ~seq ->
            Mutex.lock h.hmutex;
            if seq > s.acked then s.acked <- seq;
            Condition.broadcast h.hcond;
            Mutex.unlock h.hmutex);
        sub_close = (fun () -> close_sub h s);
      }

(* The ingest writer's ack gate. [head] advances first so the stream
   threads wake; then wait (in short slices — the OCaml stdlib has no
   timed condition wait) until every live subscriber acked [seq], the
   subscriber list drained to empty, or the timeout expired. A
   subscriber dying mid-wait removes itself from [subs], so a lone
   crashing standby degrades the primary to standalone acks rather than
   wedging ingest. *)
let publish h ~seq =
  Mutex.lock h.hmutex;
  if seq > h.head then h.head <- seq;
  Condition.broadcast h.hcond;
  let deadline = Unix.gettimeofday () +. (h.ack_timeout_ms /. 1000.) in
  let rec wait () =
    if h.subs = [] then `No_standby
    else if List.for_all (fun s -> s.acked >= seq) h.subs then `Replicated
    else if h.ack_timeout_ms > 0. && Unix.gettimeofday () >= deadline then begin
      let behind = List.filter (fun s -> s.acked < seq) h.subs in
      `Lagging
        (Printf.sprintf "%d subscriber(s) behind seq %d after %.0f ms"
           (List.length behind) seq h.ack_timeout_ms)
    end
    else begin
      Mutex.unlock h.hmutex;
      Thread.delay 0.002;
      Mutex.lock h.hmutex;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock h.hmutex;
  r

let publisher h =
  {
    Psst_server.pub_publish = (fun ~seq -> publish h ~seq);
    pub_subscribe = (fun ~from_seq ~send -> subscribe h ~from_seq ~send);
  }

let stop_hub h =
  Mutex.lock h.hmutex;
  h.hub_stopping <- true;
  List.iter (fun s -> s.closed <- true) h.subs;
  h.subs <- [];
  Condition.broadcast h.hcond;
  let threads = h.threads in
  h.threads <- [];
  Mutex.unlock h.hmutex;
  List.iter Thread.join threads

(* {1 Standby side} *)

type standby = {
  primary : P.endpoint;
  chain : I.chain;
  db_ref : I.snapshot Atomic.t;
  connect_timeout_ms : float;
  backoff_ms : float;
  max_backoff_ms : float;
  smutex : Mutex.t;
  mutable conn : Client.t option;
  mutable standby_stopping : bool;
  mutable thread : Thread.t option;
}

exception Drop_connection of string

let stopping st =
  Mutex.lock st.smutex;
  let v = st.standby_stopping in
  Mutex.unlock st.smutex;
  v

(* Sleep in short slices so stop_standby is never blocked behind a
   backoff window. *)
let interruptible_sleep st seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let rec go () =
    if (not (stopping st)) && Unix.gettimeofday () < deadline then begin
      Thread.delay (Float.min 0.05 seconds);
      go ()
    end
  in
  go ()

(* Capped exponential backoff with deterministic jitter keyed on the
   attempt number — reconnect storms from several standbys spread out
   without a global randomness source. *)
let backoff st ~attempt =
  let base = st.backoff_ms *. (2. ** float_of_int (min attempt 16)) in
  let capped = Float.min base st.max_backoff_ms in
  let jitter = 0.8 +. (0.4 *. float_of_int (attempt * 7919 mod 997) /. 997.) in
  interruptible_sleep st (capped *. jitter /. 1000.)

(* Wait for the next frame without committing to a blocking read: slices
   of [select] keep the loop responsive to stop_standby while the stream
   is idle. True = bytes are en route (read_reply may block briefly on
   the frame body, which the primary is already sending). *)
let wait_readable st c =
  let fd = Client.descriptor c in
  let rec go () =
    if stopping st then false
    else
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> go ()
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* The "replica.stream" chaos actions, interpreted on the receive path:
   [Bitflip] corrupts the frame so validation rejects it downstream
   (nothing may be persisted), [Delay] stalls the apply (builds lag),
   [Fail]/[Partial_io] drop the connection. *)
let fault_frame bytes =
  match Psst_fault.fire fault_stream with
  | None -> bytes
  | Some (Psst_fault.Delay d) ->
    Thread.delay d;
    bytes
  | Some Psst_fault.Bitflip ->
    let b = Bytes.of_string bytes in
    if Bytes.length b > 0 then begin
      let i = Psst_fault.draw_int fault_stream (Bytes.length b) in
      let bit = Psst_fault.draw_int fault_stream 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)))
    end;
    Bytes.to_string b
  | Some (Psst_fault.Fail | Psst_fault.Partial_io) ->
    raise (Psst_fault.Injected "replica.stream")

let handle_frame st c ~seq ~bytes =
  let bytes = fault_frame bytes in
  match I.apply_replicated st.chain st.db_ref ~seq ~bytes with
  | `Applied _ ->
    Psst_obs.incr m_applied;
    Client.send c (P.Replica_ack { seq })
  | `Stale ->
    (* Reconnect replay of a delta we already hold: ack so the primary's
       gate does not wait on it. *)
    Psst_obs.incr m_stale;
    Client.send c (P.Replica_ack { seq })
  | `Error msg ->
    Psst_obs.incr m_rejected;
    raise (Drop_connection msg)

(* One connected session: subscribe from the next unapplied seq, then
   apply frames until the connection or the stream breaks. Returns only
   by exception or stop. *)
let session st c =
  Client.send c (P.Subscribe { from_seq = st.chain.I.next_seq });
  let rec loop () =
    if wait_readable st c then begin
      (match Client.read_reply c with
      | P.Delta_frame { seq; bytes } -> handle_frame st c ~seq ~bytes
      | P.Error_reply { code; message; _ } ->
        raise
          (Drop_connection
             (Printf.sprintf "primary rejected the subscription (%s): %s"
                (P.error_code_name code) message))
      | _ -> raise (Drop_connection "unexpected reply on the delta stream"));
      loop ()
    end
  in
  loop ()

let standby_loop st =
  let attempt = ref 0 in
  while not (stopping st) do
    (match Client.connect ~connect_timeout_ms:st.connect_timeout_ms st.primary with
    | exception Client.Client_error msg ->
      if not (stopping st) then begin
        Psst_obs.warn ~code:"replica.connect" msg;
        backoff st ~attempt:!attempt;
        incr attempt
      end
    | c ->
      Mutex.lock st.smutex;
      st.conn <- Some c;
      Mutex.unlock st.smutex;
      (* A session that applied at least one frame resets the backoff:
         the primary was healthy, the break is fresh news. *)
      let applied_before = Psst_obs.counter_value m_applied in
      (try session st c with
      | Drop_connection msg ->
        Psst_obs.incr m_reconnects;
        Psst_obs.warn ~code:"replica.stream" msg
      | End_of_file
      | P.Proto_error _ | P.Timed_out
      | Unix.Unix_error (_, _, _)
      | Sys_error _
      | Client.Client_error _
      | Psst_fault.Injected _ ->
        Psst_obs.incr m_reconnects;
        if not (stopping st) then
          Psst_obs.warn ~code:"replica.stream"
            "connection to the primary lost; reconnecting");
      Mutex.lock st.smutex;
      st.conn <- None;
      Mutex.unlock st.smutex;
      Client.close c;
      if not (stopping st) then begin
        if Psst_obs.counter_value m_applied > applied_before then attempt := 0;
        backoff st ~attempt:!attempt;
        incr attempt
      end)
  done

let start_standby ?(connect_timeout_ms = 1000.) ?(backoff_ms = 50.)
    ?(max_backoff_ms = 2000.) ~primary ~chain db_ref =
  let st =
    {
      primary;
      chain;
      db_ref;
      connect_timeout_ms;
      backoff_ms;
      max_backoff_ms;
      smutex = Mutex.create ();
      conn = None;
      standby_stopping = false;
      thread = None;
    }
  in
  st.thread <- Some (Thread.create (fun () -> standby_loop st) ());
  st

let stop_standby st =
  Mutex.lock st.smutex;
  st.standby_stopping <- true;
  (* Shut the socket down so a read mid-frame fails immediately instead
     of waiting for the primary; the idle wait is select-sliced anyway. *)
  (match st.conn with
  | Some c -> (
    try Unix.shutdown (Client.descriptor c) Unix.SHUTDOWN_ALL
    with Unix.Unix_error (_, _, _) -> ())
  | None -> ());
  let th = st.thread in
  st.thread <- None;
  Mutex.unlock st.smutex;
  Option.iter Thread.join th

let applied_seq st = st.chain.I.next_seq - 1

let promote st server =
  stop_standby st;
  Psst_server.set_writable server true
