test/test_pgm.ml: Alcotest Array Factor Float Jtree List Pgraph Printf Psst_util QCheck QCheck_alcotest Sampler Tgen Velim
