lib/iso/distance.mli: Lgraph
