type entry = Bounds.t

type t = {
  config : Bounds.config;
  features : Selection.feature array;
  entries : entry option array array; (* feature -> graph *)
  build_seconds : float;
}

let log_src = Logs.Src.create "psst.pmi" ~doc:"PMI index construction"

module Log = (val Logs.src_log log_src)

(* The matrix is computed column-by-column (per graph) so that the world
   pool of each graph is sampled once and the columns can be distributed
   over domains: every column touches exactly one Pgraph (whose lazily
   built junction tree is therefore domain-local). *)
let build_columns config db features lo hi =
  let nf = Array.length features in
  Array.init (hi - lo) (fun k ->
      let gi = lo + k in
      let g = db.(gi) in
      let pool = lazy (Bounds.sample_pool config g) in
      Array.init nf (fun fi ->
          let f : Selection.feature = features.(fi) in
          if List.mem gi f.support then
            Some (Bounds.compute config ~pool:(Lazy.force pool) g f.graph)
          else None))

let build ?(config = Bounds.default_config) ?(domains = 1) db features =
  let features = Array.of_list features in
  let ng = Array.length db in
  let nf = Array.length features in
  let result, build_seconds =
    Psst_util.Timer.time (fun () ->
        let columns =
          if domains <= 1 || ng < 2 then build_columns config db features 0 ng
          else begin
            let d = min domains ng in
            Log.debug (fun m -> m "building %d columns on %d domains" ng d);
            let bounds =
              List.init d (fun i -> (i * ng / d, (i + 1) * ng / d))
            in
            let handles =
              List.map
                (fun (lo, hi) ->
                  Domain.spawn (fun () -> build_columns config db features lo hi))
                bounds
            in
            Array.concat (List.map Domain.join handles)
          end
        in
        (* Transpose columns into the feature-major layout. *)
        Array.init nf (fun fi -> Array.init ng (fun gi -> columns.(gi).(fi))))
  in
  Log.info (fun m ->
      m "PMI built: %d features x %d graphs in %.2fs" nf ng build_seconds);
  { config; features; entries = result; build_seconds }

let add_graph t g =
  let gc = Pgraph.skeleton g in
  let pool = lazy (Bounds.sample_pool t.config g) in
  let entries =
    Array.map2
      (fun (f : Selection.feature) row ->
        let entry =
          if Lgraph.num_edges f.graph = 0 || Vf2.exists f.graph gc then
            Some (Bounds.compute t.config ~pool:(Lazy.force pool) g f.graph)
          else None
        in
        Array.append row [| entry |])
      t.features t.entries
  in
  { t with entries }

let config t = t.config
let features t = Array.copy t.features
let num_features t = Array.length t.features
let num_graphs t = if num_features t = 0 then 0 else Array.length t.entries.(0)

let lookup t ~feature ~graph = t.entries.(feature).(graph)

let column t ~graph =
  let out = ref [] in
  for fi = Array.length t.features - 1 downto 0 do
    match t.entries.(fi).(graph) with
    | Some e -> out := (fi, e) :: !out
    | None -> ()
  done;
  !out

let filled_entries t =
  Array.fold_left
    (fun acc row ->
      acc + Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 row)
    0 t.entries

let build_seconds t = t.build_seconds

let pp_stats ppf t =
  Format.fprintf ppf "PMI: %d features x %d graphs, %d filled entries, built in %.2fs"
    (num_features t) (num_graphs t) (filled_entries t) t.build_seconds
