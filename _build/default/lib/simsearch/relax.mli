(** Query relaxation (paper §3.1, Lemma 1, and ref [38]).

    The relaxed set [U = {rq1 .. rqa}] consists of the edge-subgraphs of
    [q] obtained by deleting exactly [delta] edges, with isolated vertices
    dropped and isomorphic duplicates removed by canonical code. Lemma 1:
    [Pr(q ⊆sim g) = Pr(Brq1 ∨ ... ∨ Brqa)], i.e. [dis(q, g') <= delta]
    iff some [rq] embeds in [g'].

    When [delta >= |E(q)|] a single empty relaxation remains and every
    world matches; callers special-case that (SSP = 1). *)

(** [relaxed_set ?cap q ~delta] enumerates the relaxed queries. The
    combination count is capped at [cap] (default 4096) {e deletion sets
    before deduplication}; if the cap binds, a deterministic subsample is
    used and [`Truncated] is reported (bounds derived from a truncated set
    remain sound upper-bound-wise but SSP estimates become lower bounds;
    experiment scales keep this cap slack). *)
val relaxed_set :
  ?cap:int -> Lgraph.t -> delta:int -> Lgraph.t list * [ `Complete | `Truncated ]

(** Number of deletion combinations before dedup, [C(|E(q)|, delta)]. *)
val deletion_sets : Lgraph.t -> delta:int -> int
