(** The paper's parallel graph [cG] (§4.1.2, Fig 8, Thm 6, ref [22]).

    Each embedding of a feature becomes a "line" of labelled edges between
    two terminals [s] and [t]; edge labels are the {e original} edge ids, so
    the same label may appear on several lines. Theorem 6: the minimal
    embedding cuts of the feature are the minimal s-t cuts of [cG] that use
    no terminal-incident edge, read as label sets.

    The production path for cuts is {!Transversal.minimal_hitting_sets};
    this module exists to realise the paper's construction literally and to
    cross-check the two in tests. *)

type t

(** [build embeddings] — one line per embedding (its set of original edge
    ids). Raises [Invalid_argument] on an embedding with no edges. *)
val build : Embedding.t list -> t

val num_lines : t -> int

(** Edge-id capacity of the label space (from the embeddings' bitsets). *)
val label_capacity : t -> int

(** [disconnects t labels] removes every cG edge whose label is in [labels]
    and tests, by BFS over the explicit parallel-graph structure, whether
    [s] and [t] are separated. *)
val disconnects : t -> Psst_util.Bitset.t -> bool

(** [min_label_cuts ?cap t] enumerates the minimal label cuts of the
    parallel graph: minimal label sets whose removal separates s from t
    (never using the unlabelled terminal edges). Result truncated at [cap]
    (default 256). *)
val min_label_cuts : ?cap:int -> t -> Psst_util.Bitset.t list
