test/test_util.ml: Alcotest Array Float List Psst_util QCheck QCheck_alcotest Tgen
