lib/core/pruning.ml: Array Bounds Float Hashtbl List Pmi Psst_util Qp Rounding Selection Set_cover Vf2
