module Bitset = Psst_util.Bitset

type t = { vmap : int array; edges : Bitset.t }

let edge_disjoint a b = Bitset.disjoint a.edges b.edges
let overlaps a b = not (edge_disjoint a b)
let same_edges a b = Bitset.equal a.edges b.edges

let pp ppf t =
  Format.fprintf ppf "@[<h>emb vmap=[%a] edges=%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    (Array.to_list t.vmap) Bitset.pp t.edges
