(** Undirected graphs with integer vertex and edge labels (paper Def 1).

    Vertices are dense ints [0 .. num_vertices-1]. Edges carry a stable [id]
    in [0 .. num_edges-1]; edge ids index the bitset "edge masks" used for
    possible worlds, embeddings and cuts throughout the library.

    Values of type [t] are immutable once built. *)

type edge = { u : int; v : int; label : int; id : int }

type t

(** {1 Construction} *)

(** [create ~vlabels ~edges] builds a graph from vertex labels and
    [(u, v, label)] triples. Edge ids are assigned in list order. Raises
    [Invalid_argument] on out-of-range endpoints, self loops, or duplicate
    (u,v) pairs. *)
val create : vlabels:int array -> edges:(int * int * int) list -> t

(** Empty graph with [n] vertices labelled by [vlabels]. *)
val vertices_only : vlabels:int array -> t

(** {1 Accessors} *)

val num_vertices : t -> int
val num_edges : t -> int
val vertex_label : t -> int -> int
val vertex_labels : t -> int array

(** [edge t id] is the edge with the given id. *)
val edge : t -> int -> edge

val edges : t -> edge array

(** [find_edge t u v] is the edge between [u] and [v] if any. *)
val find_edge : t -> int -> int -> edge option

val has_edge : t -> int -> int -> bool

(** [neighbors t v] lists [(neighbor, edge_id)] pairs. *)
val neighbors : t -> int -> (int * int) list

val degree : t -> int -> int

(** [other_endpoint e v] is the endpoint of [e] that is not [v]. *)
val other_endpoint : edge -> int -> int

(** {1 Connectivity} *)

val is_connected : t -> bool

(** Connected components as lists of vertices. *)
val components : t -> int list list

(** [is_connected_ignoring_isolated t] ignores degree-0 vertices; true for the
    empty edge set. *)
val is_connected_ignoring_isolated : t -> bool

(** {1 Derived graphs} *)

(** [with_edge_mask t mask] keeps all vertices and only the edges whose id is
    in [mask]; surviving edges keep their original ids' order but are
    re-numbered densely. The returned array maps new edge id -> old edge id. *)
val with_edge_mask : t -> Psst_util.Bitset.t -> t * int array

(** [delete_edges t ids] removes the given edges (keeping all vertices). *)
val delete_edges : t -> int list -> t

(** [relabel_edge t id label] replaces one edge label. *)
val relabel_edge : t -> int -> int -> t

(** [induced_subgraph t vs] keeps the vertices in [vs] (renumbered in list
    order) and all edges between them. Returns the graph and the vertex map
    new -> old. *)
val induced_subgraph : t -> int list -> t * int array

(** [drop_isolated t] removes degree-0 vertices; returns map new -> old. *)
val drop_isolated : t -> t * int array

(** {1 Structure queries} *)

(** All triangles as sorted triples of edge ids. *)
val triangles : t -> (int * int * int) list

(** [star_edge_sets t] lists, for each vertex of degree >= 2, the ids of its
    incident edges — the "incident to the same vertex" neighbor-edge sets of
    paper Def 1. *)
val star_edge_sets : t -> int list list

(** Multiset of vertex labels as a sorted association list label -> count. *)
val vertex_label_hist : t -> (int * int) list

(** Multiset of edge labels as a sorted association list label -> count. *)
val edge_label_hist : t -> (int * int) list

(** [hist_missing a b] is the number of entries of multiset [a] (as produced
    by the [_hist] functions) that have no counterpart in [b]; a lower bound
    on how many elements of [a] cannot be matched in [b]. *)
val hist_missing : (int * int) list -> (int * int) list -> int

(** {1 Flat representation}

    A contiguous CSR image of the graph for the hot inner loops (VF2,
    cut enumeration): adjacency of vertex [v] is the slice
    [off.(v) .. off.(v+1)-1] of the parallel [nbr]/[eid]/[elab] arrays,
    sorted ascending by neighbor id — the exact (neighbor, edge_id)
    order of {!neighbors}, so search trees driven by either
    representation expand identically. The arrays are shared, read-only
    views: callers must not mutate them. *)
module Flat : sig
  type t = {
    n : int;  (** vertex count *)
    m : int;  (** edge count *)
    vlabels : int array;
    deg : int array;
    off : int array;  (** length [n+1] prefix offsets *)
    nbr : int array;
    eid : int array;
    elab : int array;
    eu : int array;  (** per edge id: endpoints ([u <= v]) and label *)
    ev : int array;
    el : int array;
    vhist : (int * int) array;  (** sorted (label, count) multiset *)
    ehist : (int * int) array;
  }

  (** [find_edge_id t u v] is the id of the edge between [u] and [v], or
      [-1]; binary search in [u]'s adjacency slice. *)
  val find_edge_id : t -> int -> int -> int

  (** {!Lgraph.hist_missing} over the sorted histogram arrays. *)
  val hist_missing : (int * int) array -> (int * int) array -> int
end

(** [flat t] is the memoised CSR image of [t]; built once per graph (the
    first call from any domain), O(1) afterwards. *)
val flat : t -> Flat.t

(** {1 Serialisation} *)

(** Stable textual format: one [v <label>] line per vertex then one
    [e <u> <v> <label>] line per edge. *)
val to_string : t -> string

val of_string : string -> t

val pp : Format.formatter -> t -> unit

(** Structural equality of the underlying labelled graphs (same vertex count,
    labels, and edge set; edge ids may differ). *)
val equal_structure : t -> t -> bool
