(** Fixed-capacity bitsets over [0 .. capacity-1], backed by an int array.

    Used throughout the library for edge masks (possible worlds), vertex
    sets during isomorphism search, and clique search candidate sets. *)

type t

(** [create n] is an empty bitset able to hold elements [0 .. n-1]. *)
val create : int -> t

(** Capacity the set was created with. *)
val capacity : t -> int

(** [full n] is the bitset containing all of [0 .. n-1]. *)
val full : int -> t

val copy : t -> t

(** [mem t i] tests membership. Raises [Invalid_argument] out of range. *)
val mem : t -> int -> bool

val add : t -> int -> unit
val remove : t -> int -> unit

(** [set t i b] adds [i] when [b], removes it otherwise. *)
val set : t -> int -> bool -> unit

val is_empty : t -> bool
val cardinal : t -> int

(** In-place operations; the first argument is mutated. *)

val union_into : t -> t -> unit
val inter_into : t -> t -> unit
val diff_into : t -> t -> unit

(** Pure variants allocating a fresh set. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

(** [subset a b] is true when every element of [a] is in [b]. *)
val subset : t -> t -> bool

(** [disjoint a b] is true when [a] and [b] share no element. *)
val disjoint : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t

(** [choose t] is the smallest element, or [None] when empty. *)
val choose : t -> int option

val clear : t -> unit

(** Hash suitable for [Hashtbl]. *)
val hash : t -> int

val pp : Format.formatter -> t -> unit
