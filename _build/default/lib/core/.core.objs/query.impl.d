lib/core/query.ml: Array Bounds Distance Lgraph List Logs Pgraph Pmi Pruning Psst_util Relax Selection Structural Verify Vf2
