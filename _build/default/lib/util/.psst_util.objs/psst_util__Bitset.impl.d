lib/util/bitset.ml: Array Format Hashtbl List Stdlib Sys
