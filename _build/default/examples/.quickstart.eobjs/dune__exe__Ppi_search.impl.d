examples/ppi_search.ml: Array Generator Lgraph List Pmi Printf Psst_util Query String
