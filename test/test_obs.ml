(* The observability layer (DESIGN.md §10): registry primitives, domain
   safety, the disabled no-op arm, warning events, traces, and the
   counters/flags the pipeline feeds.

   The registry is process-global, so every check here is written against
   deltas (snapshot before, compare after) or against metric names unique
   to this file — never against absolute values another suite may have
   bumped. *)

module Pool = Psst_util.Pool
module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 200 }

let test_counter_basics () =
  let c = Psst_obs.counter "test_obs.counter" in
  let before = Psst_obs.counter_value c in
  Psst_obs.incr c;
  Psst_obs.add c 41;
  Alcotest.(check int) "incr + add" (before + 42) (Psst_obs.counter_value c);
  Alcotest.(check string) "name" "test_obs.counter" (Psst_obs.counter_name c);
  let c' = Psst_obs.counter "test_obs.counter" in
  Psst_obs.incr c';
  Alcotest.(check int) "interned: same cell" (before + 43)
    (Psst_obs.counter_value c)

let test_accumulator_basics () =
  let a = Psst_obs.accumulator "test_obs.acc" in
  Psst_obs.record a 1.5;
  Psst_obs.record a 2.5;
  Alcotest.(check int) "count" 2 (Psst_obs.acc_count a);
  Tgen.check_close "sum" 4. (Psst_obs.acc_sum a);
  Tgen.check_close "mean" 2. (Psst_obs.acc_mean a)

let test_histogram_basics () =
  let h = Psst_obs.histogram "test_obs.hist" in
  List.iter (Psst_obs.observe h) [ 1e-6; 1e-6; 0.5; 2e4 ];
  Alcotest.(check int) "count" 4 (Psst_obs.histogram_count h);
  Tgen.check_close "sum" 20000.500002 (Psst_obs.histogram_sum h);
  Alcotest.(check int) "overflow (above hi)" 1 (Psst_obs.histogram_overflow h);
  let buckets = Psst_obs.histogram_buckets h in
  let in_buckets =
    Array.fold_left (fun acc (_, c) -> acc + c) 0 buckets
  in
  Alcotest.(check int) "finite buckets hold the rest" 3 in_buckets;
  (* Monotone upper bounds, and every value landed at a bound >= itself. *)
  Array.iteri
    (fun i (ub, _) ->
      if i > 0 then
        Alcotest.(check bool) "ascending bounds" true (fst buckets.(i - 1) < ub))
    buckets

let test_mismatched_kind_rejected () =
  let (_ : Psst_obs.counter) = Psst_obs.counter "test_obs.kind" in
  Alcotest.check_raises "histogram over a counter name"
    (Invalid_argument
       "Psst_obs: metric \"test_obs.kind\" already registered with another type")
    (fun () -> ignore (Psst_obs.histogram "test_obs.kind"))

let test_span_times_thunk () =
  let h = Psst_obs.histogram "test_obs.span" in
  let before = Psst_obs.histogram_count h in
  let x = Psst_obs.span h (fun () -> 7 * 6) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check int) "one observation" (before + 1)
    (Psst_obs.histogram_count h);
  (match Psst_obs.span h (fun () -> failwith "boom") with
  | (_ : int) -> Alcotest.fail "expected exception"
  | exception Failure _ -> ());
  Alcotest.(check int) "observed on exception too" (before + 2)
    (Psst_obs.histogram_count h)

let test_parallel_increments () =
  let c = Psst_obs.counter "test_obs.parallel" in
  let a = Psst_obs.accumulator "test_obs.parallel_acc" in
  let before_c = Psst_obs.counter_value c in
  let before_s = Psst_obs.acc_sum a in
  Pool.with_pool ~domains:4 (fun p ->
      Pool.iter_range p 1000 (fun _ ->
          Psst_obs.incr c;
          Psst_obs.record a 0.5));
  Alcotest.(check int) "no lost counter updates" (before_c + 1000)
    (Psst_obs.counter_value c);
  Tgen.check_close "no lost accumulator updates" (before_s +. 500.)
    (Psst_obs.acc_sum a)

let test_disabled_is_noop () =
  let c = Psst_obs.counter "test_obs.disabled" in
  let h = Psst_obs.histogram "test_obs.disabled_h" in
  let vc = Psst_obs.counter_value c and vh = Psst_obs.histogram_count h in
  Psst_obs.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Psst_obs.set_enabled true)
    (fun () ->
      Psst_obs.incr c;
      Psst_obs.observe h 1.;
      Psst_obs.warn ~code:"test_obs.disabled" "never recorded";
      Alcotest.(check int) "span still runs the thunk" 9
        (Psst_obs.span h (fun () -> 9)));
  Alcotest.(check int) "counter untouched" vc (Psst_obs.counter_value c);
  Alcotest.(check int) "histogram untouched" vh (Psst_obs.histogram_count h);
  Alcotest.(check bool) "no warning recorded" false
    (List.exists
       (fun (w : Psst_obs.warning) -> w.code = "test_obs.disabled")
       (Psst_obs.warnings ()))

let test_warnings () =
  let (_ : Psst_obs.warning list) = Psst_obs.drain_warnings () in
  Psst_obs.warn ~code:"test_obs.w" "first";
  Psst_obs.warn ~code:"test_obs.w" "second";
  (match Psst_obs.warnings () with
  | [ a; b ] ->
    Alcotest.(check string) "oldest first" "first" a.Psst_obs.message;
    Alcotest.(check string) "then newest" "second" b.Psst_obs.message;
    Alcotest.(check string) "code kept" "test_obs.w" a.Psst_obs.code
  | l -> Alcotest.failf "expected 2 warnings, got %d" (List.length l));
  Alcotest.(check bool) "auto counter bumped" true
    (Psst_obs.counter_value (Psst_obs.counter "warn.test_obs.w") >= 2);
  let drained = Psst_obs.drain_warnings () in
  Alcotest.(check int) "drain returns the log" 2 (List.length drained);
  Alcotest.(check int) "drain clears it" 0
    (List.length (Psst_obs.warnings ()))

let test_json_shape () =
  let c = Psst_obs.counter "test_obs.json_counter" in
  Psst_obs.incr c;
  let s = Psst_obs.to_json_string () in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true (contains key))
    [ "\"counters\""; "\"accumulators\""; "\"histograms\""; "\"warnings\"";
      "\"warnings_dropped\""; "\"test_obs.json_counter\"" ]

let test_trace () =
  let tr = Psst_obs.Trace.create "t" in
  Psst_obs.Trace.set_time tr "phase_a" 0.25;
  Psst_obs.Trace.set_count tr "items" 3;
  Psst_obs.Trace.set_flag tr "degraded" false;
  let x = Psst_obs.Trace.span tr "phase_b" (fun () -> 5) in
  Alcotest.(check int) "span result" 5 x;
  Alcotest.(check (list string)) "times in insertion order"
    [ "phase_a"; "phase_b" ]
    (List.map fst (Psst_obs.Trace.times tr));
  Alcotest.(check (list (pair string int))) "counts" [ ("items", 3) ]
    (Psst_obs.Trace.counts tr);
  let buf = Buffer.create 128 in
  Psst_obs.Trace.to_json buf tr;
  let s = Buffer.contents buf in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true
        (let nl = String.length key and sl = String.length s in
         let rec go i =
           i + nl <= sl && (String.sub s i nl = key || go (i + 1))
         in
         go 0))
    [ "\"label\": \"t\""; "\"times_s\""; "\"counts\""; "\"flags\"";
      "\"degraded\": false" ]

(* --- pipeline integration --- *)

let small_db seed =
  let ds =
    Generator.generate
      { Generator.default_params with num_graphs = 8; seed; min_vertices = 6;
        max_vertices = 10; motif_edges = 3 }
  in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  (ds, db)

let test_pipeline_metrics_flow () =
  let ds, db = small_db 23 in
  let q, _ = Generator.extract_query (Prng.make 29) ds ~edges:4 in
  let config = { Query.default_config with epsilon = 0.4; delta = 1 } in
  let snap name = Psst_obs.counter_value (Psst_obs.counter name) in
  let names =
    [ "query.runs"; "relax.calls"; "structural.checked"; "pruning.evaluated" ]
  in
  let before = List.map snap names in
  let out = Query.run db q config in
  Alcotest.(check bool) "not truncated" false out.Query.stats.relaxed_truncated;
  List.iter2
    (fun name b ->
      Alcotest.(check bool) (name ^ " advanced") true (snap name > b))
    names before;
  (* Bounds and PMI columns are index-build work: they moved when
     [small_db] built the database, before the snapshot. *)
  Alcotest.(check bool) "pmi columns were built" true
    (snap "pmi.columns_built" >= 8);
  Alcotest.(check bool) "bounds were computed" true
    (snap "bounds.computed" > 0);
  (* Trace mirrors the stats. *)
  Alcotest.(check (list (pair string bool))) "trace flag"
    [ ("relaxed_truncated", false) ]
    (Psst_obs.Trace.flags out.Query.trace);
  Alcotest.(check bool) "trace counts answers" true
    (List.mem_assoc "answers" (Psst_obs.Trace.counts out.Query.trace))

let test_truncation_surfaced () =
  let ds, db = small_db 31 in
  let q, _ = Generator.extract_query (Prng.make 37) ds ~edges:5 in
  let config =
    { Query.default_config with epsilon = 0.4; delta = 1; relax_cap = 1 }
  in
  let (_ : Psst_obs.warning list) = Psst_obs.drain_warnings () in
  let out = Query.run db q config in
  Alcotest.(check bool) "stats flag set" true out.Query.stats.relaxed_truncated;
  Alcotest.(check bool) "warning event emitted" true
    (List.exists
       (fun (w : Psst_obs.warning) -> w.code = "relax.truncated")
       (Psst_obs.warnings ()));
  Alcotest.(check bool) "warn counter bumped" true
    (Psst_obs.counter_value (Psst_obs.counter "warn.relax.truncated") >= 1);
  let topk = Topk.run db q ~k:3 config in
  Alcotest.(check bool) "topk surfaces it too" true
    topk.Topk.stats.relaxed_truncated;
  (* A complete enumeration must not set the flag. *)
  let out' = Query.run db q { config with relax_cap = 4096 } in
  Alcotest.(check bool) "complete set not flagged" false
    out'.Query.stats.relaxed_truncated

let test_reset_zeroes () =
  let c = Psst_obs.counter "test_obs.reset" in
  let h = Psst_obs.histogram "test_obs.reset_h" in
  Psst_obs.incr c;
  Psst_obs.observe h 1.;
  Psst_obs.warn ~code:"test_obs.reset" "gone after reset";
  Psst_obs.reset ();
  Alcotest.(check int) "counter zero" 0 (Psst_obs.counter_value c);
  Alcotest.(check int) "histogram zero" 0 (Psst_obs.histogram_count h);
  Alcotest.(check int) "warnings cleared" 0
    (List.length (Psst_obs.warnings ()));
  Psst_obs.incr c;
  Alcotest.(check int) "still usable" 1 (Psst_obs.counter_value c)

let suite =
  [
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "accumulator basics" `Quick test_accumulator_basics;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "kind mismatch rejected" `Quick
      test_mismatched_kind_rejected;
    Alcotest.test_case "span times the thunk" `Quick test_span_times_thunk;
    Alcotest.test_case "parallel increments" `Quick test_parallel_increments;
    Alcotest.test_case "disabled layer is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "warning events" `Quick test_warnings;
    Alcotest.test_case "registry json shape" `Quick test_json_shape;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "pipeline metrics flow" `Slow test_pipeline_metrics_flow;
    Alcotest.test_case "truncation surfaced" `Slow test_truncation_surfaced;
    Alcotest.test_case "reset zeroes metrics" `Quick test_reset_zeroes;
  ]
