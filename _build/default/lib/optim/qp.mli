(** The tightest-Lsim optimisation (paper Def 11, Eq 9).

    Instance: a universe [0..universe-1] of relaxed queries and sets
    [s_i ⊆ U] with pair weights [(wL_i, wU_i)]. The integer program picks a
    cover [C] maximising

      sum_{i in C} wL_i  -  (sum_{i in C} wU_i)^2

    (the paper's double sum over ordered pairs is the square of the wU
    total). The relaxation [x in [0,1]^n] is a concave QP — the quadratic
    form is rank one — solved here by feasibility-preserving coordinate
    ascent with exact 1-D updates, from several feasible starts (the paper
    cites a polynomial interior-point method [23]; any convex-QP solver
    fits). *)

type instance = {
  universe : int;
  sets : (Psst_util.Bitset.t * float * float) array;
      (** members, wL (LowerB), wU (UpperB) per set *)
}

type solution = {
  x : float array;  (** fractional selection *)
  objective : float;  (** relaxed objective at [x] *)
  feasible : bool;  (** coverage constraints met within tolerance *)
}

(** Relaxed objective [wL·x - (wU·x)^2]. *)
val objective : instance -> float array -> float

(** Integer objective of an explicit selection. *)
val integer_objective : instance -> chosen:int list -> float

(** A sound variant of the integer objective replacing the paper's
    product cross-term by [min(wU_i, wU_j)] over unordered pairs, which
    dominates [Pr(Bi ∧ Bj)] unconditionally (see DESIGN.md §3):

      sum wL_i - sum_{i<j} min(wU_i, wU_j). *)
val integer_objective_safe : instance -> chosen:int list -> float

(** [coverage ~eps inst x] — all constraints satisfied within [eps]. *)
val coverage : ?eps:float -> instance -> float array -> bool

(** [solve ?iters inst] — coordinate-ascent solution of the relaxed QP.
    Deterministic. [iters] is accepted for compatibility and unused (the
    ascent runs to convergence). *)
val solve : ?iters:int -> instance -> solution
