(** Gibbs sampling over a factor list.

    The exact machinery of this library ({!Velim}, {!Jtree}) covers the
    junction-tree-structured JPTs that probabilistic graphs carry; Gibbs
    sampling handles arbitrary factor products — loopy neighbor-edge
    structures for which {!Jtree.build} rejects the running-intersection
    requirement — at the price of approximate, asymptotically-exact
    answers. Used in ablations and available to library users who bring
    their own JPT layouts. *)

type config = {
  burn_in : int;  (** sweeps discarded before recording *)
  thin : int;  (** sweeps between recorded samples *)
  samples : int;  (** number of recorded samples *)
}

(** burn_in = 200, thin = 2, samples = 1000. *)
val default_config : config

(** [sample ?config rng factors ~evidence f] runs a Gibbs chain over the
    non-evidence variables, calling [f] with a lookup function for each
    recorded sample. Variables are updated by their full conditionals
    (product of the factors mentioning them). Raises [Invalid_argument]
    when some full conditional has zero mass both ways (a deterministic
    contradiction with the evidence). *)
val sample :
  ?config:config ->
  Psst_util.Prng.t ->
  Factor.t list ->
  evidence:(int * bool) list ->
  ((int -> bool) -> unit) ->
  unit

(** [marginals ?config rng factors ~evidence vars] — estimated
    [Pr(v = true | evidence)] for each requested variable. *)
val marginals :
  ?config:config ->
  Psst_util.Prng.t ->
  Factor.t list ->
  evidence:(int * bool) list ->
  int list ->
  (int * float) list
