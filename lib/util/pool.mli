(** A fixed pool of OCaml 5 domains with chunked work distribution.

    One pool serves the whole query stack: the PMI build distributes its
    per-graph columns over it, [Query.run] fans verification out over the
    surviving candidates, and [Query.run_batch] runs whole queries
    concurrently. Tasks are claimed from a shared atomic counter in fixed
    chunks, results land at their input index, so the output of
    {!map_array} is identical to the sequential [Array.map] no matter how
    the chunks were scheduled.

    The calling domain always participates in the work, so a pool created
    with [domains = n] uses exactly [n] domains ([n - 1] spawned workers
    plus the caller) and a pool with [domains <= 1] degrades to plain
    sequential iteration with no spawning, no locking and no atomics on
    the work path.

    Calls may be nested (a task running on the pool may itself call
    {!iter_range} / {!map_array} on the same pool): the inner call's
    caller executes chunks itself whenever no worker is free, so progress
    is always guaranteed. *)

type t

(** [create ~domains ()] spawns [max 0 (domains - 1)] worker domains.
    The pool must be released with {!shutdown} (or use {!with_pool}). *)
val create : ?domains:int -> unit -> t

(** Total parallelism of the pool (spawned workers + the caller), [>= 1]. *)
val size : t -> int

(** [Domain.recommended_domain_count ()] — a sensible default for
    [domains] on the current machine. *)
val default_domains : unit -> int

(** [iter_range pool ?chunk n f] runs [f i] for every [i] in [0 .. n-1],
    distributing chunks of [chunk] consecutive indices (default:
    [n / (4 * size)], at least 1) over the pool. Returns when every index
    has been processed. If any [f i] raises, the first exception observed
    is re-raised in the caller after all chunks have drained. *)
val iter_range : t -> ?chunk:int -> int -> (int -> unit) -> unit

(** [map_array pool ?chunk f a] is [Array.map f a] computed on the pool.
    Result ordering is deterministic: slot [i] holds [f a.(i)]. *)
val map_array : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** Terminates the worker domains after the queued work drains. Idempotent.
    Submitting work to a shut-down pool runs it sequentially in the
    caller. *)
val shutdown : t -> unit

(** [with_pool ?domains f] — [create], run [f], [shutdown] (also on
    exception). *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a
