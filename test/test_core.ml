module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

let fast_bounds = { Bounds.default_config with mc_samples = 400 }

(* Random pgraph + random small feature extracted from it, so embeddings
   exist most of the time. *)
let random_case seed =
  let rng = Prng.make seed in
  let g = Tgen.random_pgraph rng ~n:6 ~extra:3 ~vl:2 ~el:1 in
  let gc = Pgraph.skeleton g in
  let q, _ = Generator.extract_query rng
      { graphs = [| g |]; organisms = [| 0 |]; motifs = [||];
        grafts = [| None |]; params = Generator.default_params }
      ~edges:(2 + Prng.int rng 2)
  in
  ignore q;
  let feature =
    (* Connected 2-edge subgraph of gc. *)
    let e0 = Lgraph.edge gc 0 in
    match Lgraph.neighbors gc e0.u with
    | (w, eid) :: _ when eid <> 0 ->
      let mask = Bitset.of_list (Lgraph.num_edges gc) [ 0; eid ] in
      ignore w;
      let sub, _ = Lgraph.with_edge_mask gc mask in
      fst (Lgraph.drop_isolated sub)
    | _ ->
      let mask = Bitset.of_list (Lgraph.num_edges gc) [ 0 ] in
      let sub, _ = Lgraph.with_edge_mask gc mask in
      fst (Lgraph.drop_isolated sub)
  in
  (g, feature)

(* --- Bounds --- *)

let test_bounds_vertex_feature () =
  let rng = Prng.make 3 in
  let g = Tgen.random_pgraph rng ~n:4 ~extra:1 ~vl:2 ~el:1 in
  let label_present = Lgraph.vertex_label (Pgraph.skeleton g) 0 in
  let f_yes = Lgraph.vertices_only ~vlabels:[| label_present |] in
  let f_no = Lgraph.vertices_only ~vlabels:[| 99 |] in
  let b_yes = Bounds.compute fast_bounds g f_yes in
  let b_no = Bounds.compute fast_bounds g f_no in
  Tgen.check_close "present vertex -> 1" 1. b_yes.Bounds.lower;
  Tgen.check_close "absent vertex -> 0" 0. b_no.Bounds.upper

let test_bounds_no_embedding () =
  let rng = Prng.make 5 in
  let g = Tgen.random_pgraph rng ~n:4 ~extra:1 ~vl:2 ~el:1 in
  let f = Lgraph.create ~vlabels:[| 5; 6 |] ~edges:[ (0, 1, 9) ] in
  let b = Bounds.compute fast_bounds g f in
  Tgen.check_close "upper 0" 0. b.Bounds.upper;
  Tgen.check_close "lower 0" 0. b.Bounds.lower

(* Triangle with exactly one uncertain edge: a feature embedding only on
   certain edges short-circuits to the all-1s fully-certain bounds (no
   cuts, no sampling); a feature embedding only on the uncertain edge has
   SIP exactly that edge's marginal, and the safe pair is tight. *)
let triangle_one_uncertain p =
  let tri =
    Lgraph.create ~vlabels:[| 0; 1; 2 |]
      ~edges:[ (0, 1, 0); (1, 2, 1); (0, 2, 2) ]
  in
  Pgraph.independent tri [ (2, p) ]

let test_bounds_fully_certain () =
  let g = triangle_one_uncertain 0.6 in
  let f = Lgraph.create ~vlabels:[| 0; 1 |] ~edges:[ (0, 1, 0) ] in
  let b = Bounds.compute fast_bounds g f in
  Tgen.check_close "lower 1" 1. b.Bounds.lower;
  Tgen.check_close "upper 1" 1. b.Bounds.upper;
  Tgen.check_close "lower_safe 1" 1. b.Bounds.lower_safe;
  Tgen.check_close "upper_safe 1" 1. b.Bounds.upper_safe;
  Alcotest.(check int) "one embedding" 1 b.Bounds.embeddings;
  Alcotest.(check int) "no cuts" 0 b.Bounds.cuts

let test_bounds_single_uncertain_edge () =
  let p = 0.6 in
  let g = triangle_one_uncertain p in
  let f = Lgraph.create ~vlabels:[| 0; 2 |] ~edges:[ (0, 1, 2) ] in
  let b = Bounds.compute fast_bounds g f in
  Tgen.check_close "marginal" p (Pgraph.edge_marginal g 2);
  Tgen.check_close "lower_safe = marginal" p b.Bounds.lower_safe;
  Tgen.check_close "upper_safe = marginal" p b.Bounds.upper_safe;
  Tgen.check_close "lower = marginal" p b.Bounds.lower;
  Tgen.check_close "upper = marginal" p b.Bounds.upper;
  Alcotest.(check int) "one cut" 1 b.Bounds.cuts

let prop_safe_bounds_enclose_exact_sip =
  QCheck.Test.make ~name:"lower_safe <= SIP <= upper_safe (exact)" ~count:40
    QCheck.small_int
    (fun seed ->
      let g, f = random_case (seed + 1000) in
      let b = Bounds.compute fast_bounds g f in
      let sip = Exact.sip g f in
      b.Bounds.lower_safe <= sip +. 1e-9 && sip <= b.Bounds.upper_safe +. 1e-9)

let prop_paper_bounds_near_sound =
  (* The paper's bounds rest on a conditional-independence step (Eq 16/19)
     that holds for independent edges; under positive correlation they can
     cross the true SIP (which is why accept/prune decisions default to the
     certified pair). Check the bracket on the independent model, with
     Monte-Carlo tolerance. *)
  QCheck.Test.make ~name:"paper bounds bracket SIP (independent model)" ~count:40
    QCheck.small_int
    (fun seed ->
      let g, f = random_case (seed + 2000) in
      let g = Pgraph.to_independent g in
      let b = Bounds.compute fast_bounds g f in
      let sip = Exact.sip g f in
      b.Bounds.lower <= sip +. 0.12 && sip <= b.Bounds.upper +. 0.12)

let prop_bounds_ordered =
  QCheck.Test.make ~name:"lower <= upper in both bound pairs" ~count:40
    QCheck.small_int
    (fun seed ->
      let g, f = random_case (seed + 3000) in
      let b = Bounds.compute fast_bounds g f in
      b.Bounds.lower <= b.Bounds.upper +. 1e-9
      && b.Bounds.lower_safe <= b.Bounds.upper_safe +. 1e-9)

let test_estimate_conditional () =
  let rng = Prng.make 17 in
  let g = Tgen.random_pgraph rng ~n:5 ~extra:2 ~vl:2 ~el:1 in
  (* Pr(e0 present | anything) ~ marginal when den = true. *)
  let est =
    Bounds.estimate_conditional (Prng.make 3) g
      ~num:(fun mask -> Bitset.mem mask 0)
      ~den:(fun _ -> true)
      ~samples:4000
  in
  match est with
  | None -> Alcotest.fail "denominator must fire"
  | Some p ->
    let exact = Pgraph.edge_marginal g 0 in
    Alcotest.(check bool) "estimate near marginal" true (Float.abs (p -. exact) < 0.05)

(* --- PMI --- *)

let small_dataset seed n =
  Generator.generate
    { Generator.default_params with num_graphs = n; seed; min_vertices = 6;
      max_vertices = 10; motif_edges = 3 }

let test_pmi_build_and_lookup () =
  let ds = small_dataset 7 8 in
  let skeletons = Array.map Pgraph.skeleton ds.graphs in
  let features =
    Selection.select skeletons { Selection.default_params with max_edges = 2; beta = 0.2 }
  in
  let pmi = Pmi.build ~config:fast_bounds ds.graphs features in
  Alcotest.(check int) "feature count" (List.length features) (Pmi.num_features pmi);
  Alcotest.(check int) "graph count" 8 (Pmi.num_graphs pmi);
  Alcotest.(check bool) "some entries" true (Pmi.filled_entries pmi > 0);
  (* Lookup consistency with support lists. *)
  List.iteri
    (fun fi (f : Selection.feature) ->
      List.iter
        (fun gi ->
          match Pmi.lookup pmi ~feature:fi ~graph:gi with
          | Some _ -> ()
          | None -> Alcotest.failf "missing entry (%d,%d)" fi gi)
        f.support)
    features;
  (* Columns agree with lookup. *)
  let col = Pmi.column pmi ~graph:0 in
  List.iter
    (fun (fi, _) ->
      Alcotest.(check bool) "column entry exists" true
        (Option.is_some (Pmi.lookup pmi ~feature:fi ~graph:0)))
    col

(* --- Pruning soundness --- *)

let pruning_env seed =
  let ds = small_dataset seed 10 in
  let skeletons = Array.map Pgraph.skeleton ds.graphs in
  let features =
    Selection.select skeletons { Selection.default_params with max_edges = 2; beta = 0.2 }
  in
  let pmi = Pmi.build ~config:fast_bounds ds.graphs features in
  (ds, pmi)

let prop_usim_bounds_exact_ssp =
  QCheck.Test.make ~name:"Usim >= exact SSP (Thm 3, tolerance for MC)" ~count:10
    QCheck.small_int
    (fun seed ->
      let ds, pmi = pruning_env (seed + 1) in
      let rng = Prng.make (seed + 77) in
      let q, _ = Generator.extract_query rng ds ~edges:4 in
      let relaxed, _ = Relax.relaxed_set q ~delta:1 in
      List.for_all
        (fun gi ->
          let prepared = Pruning.prepare pmi ~relaxed in
          let u =
            Pruning.usim (Prng.make 5) pmi prepared ~graph:gi
              ~mode:Pruning.Optimized
          in
          let exact = Verify.exact ds.graphs.(gi) relaxed in
          u >= exact -. 0.12)
        [ 0; 3; 7 ])

let prop_lsim_safe_below_exact_ssp =
  QCheck.Test.make ~name:"certified Lsim <= exact SSP (Thm 4)" ~count:10
    QCheck.small_int
    (fun seed ->
      let ds, pmi = pruning_env (seed + 50) in
      let rng = Prng.make (seed + 99) in
      let q, _ = Generator.extract_query rng ds ~edges:3 in
      let relaxed, _ = Relax.relaxed_set q ~delta:1 in
      List.for_all
        (fun gi ->
          let prepared = Pruning.prepare pmi ~relaxed in
          let _, safe =
            Pruning.lsim (Prng.make 5) pmi prepared ~graph:gi
              ~mode:Pruning.Optimized
          in
          (not (Float.is_finite safe))
          || safe <= Verify.exact ds.graphs.(gi) relaxed +. 1e-6)
        [ 0; 5; 9 ])

(* --- Verification --- *)

let test_verify_num_samples () =
  let c = { Verify.default_config with tau = 0.1; xi = 0.05 } in
  (* (4 ln 40) / 0.01 = 1475.5... -> 1476 *)
  Alcotest.(check int) "sample count" 1476 (Verify.num_samples c)

let test_verify_empty_relaxed () =
  let rng = Prng.make 3 in
  let g = Tgen.random_pgraph rng ~n:4 ~extra:1 ~vl:2 ~el:1 in
  Alcotest.(check bool) "no embeddings -> 0" true
    (Verify.exact g [ Lgraph.create ~vlabels:[| 9; 9 |] ~edges:[ (0, 1, 7) ] ] = 0.)

let test_verify_trivial_relaxation () =
  let rng = Prng.make 3 in
  let g = Tgen.random_pgraph rng ~n:4 ~extra:1 ~vl:2 ~el:1 in
  let empty = Lgraph.vertices_only ~vlabels:[||] in
  Tgen.check_close "empty rq -> 1" 1. (Verify.exact g [ empty ]);
  Tgen.check_close "smp too" 1. (Verify.smp (Prng.make 1) g [ empty ])

let prop_smp_close_to_exact =
  QCheck.Test.make ~name:"SMP estimate close to exact SSP" ~count:15
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 5) in
      let g = Tgen.random_pgraph rng ~n:6 ~extra:3 ~vl:2 ~el:1 in
      let gc = Pgraph.skeleton g in
      (* Query: 3-edge connected subgraph of gc. *)
      let ds =
        { Generator.graphs = [| g |]; organisms = [| 0 |]; motifs = [||];
          grafts = [| None |]; params = Generator.default_params }
      in
      let q, _ = Generator.extract_query rng ds ~edges:3 in
      ignore gc;
      let relaxed, _ = Relax.relaxed_set q ~delta:1 in
      let exact = Verify.exact g relaxed in
      (* tau = 0.05 guarantees |error| <= 0.05 with confidence 1 - xi;
         the assertion allows double that so the test is not flaky. *)
      let config = { Verify.default_config with tau = 0.05 } in
      let smp = Verify.smp ~config (Prng.make (seed + 9)) g relaxed in
      Float.abs (exact -. smp) < 0.1)

(* --- End-to-end pipeline --- *)

let test_pipeline_matches_ground_truth () =
  let ds = small_dataset 21 12 in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  let rng = Prng.make 31 in
  for trial = 1 to 3 do
    let q, _ = Generator.extract_query rng ds ~edges:4 in
    let config =
      { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Exact }
    in
    let out = Query.run db q config in
    let truth = Query.ground_truth db q config in
    Alcotest.(check (list int))
      (Printf.sprintf "trial %d pipeline = truth" trial)
      truth out.answers
  done

let test_pipeline_random_pick_mode_sound () =
  (* The SSPBound-style random assembly is weaker but, with certified
     bounds and exact verification, the pipeline must still be exact. *)
  let ds = small_dataset 27 10 in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  let rng = Prng.make 35 in
  for trial = 1 to 2 do
    let q, _ = Generator.extract_query rng ds ~edges:4 in
    let config =
      { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Exact;
        mode = Pruning.Random_pick }
    in
    let out = Query.run db q config in
    let truth = Query.ground_truth db q config in
    Alcotest.(check (list int))
      (Printf.sprintf "trial %d random-pick pipeline = truth" trial)
      truth out.Query.answers
  done

let test_pipeline_exact_scan_agrees () =
  let ds = small_dataset 33 8 in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  let rng = Prng.make 41 in
  let q, _ = Generator.extract_query rng ds ~edges:4 in
  let config =
    { Query.default_config with epsilon = 0.4; delta = 1; verifier = `Exact }
  in
  let out = Query.run db q config in
  let scan = Query.run_exact_scan db q config in
  Alcotest.(check (list int)) "pipeline = exact scan" scan.answers out.answers

let test_pipeline_stats_consistent () =
  let ds = small_dataset 55 10 in
  let db =
    Query.index_database
      ~mining:{ Selection.default_params with max_edges = 2; beta = 0.2 }
      ~bounds:fast_bounds ds.graphs
  in
  let rng = Prng.make 61 in
  let q, _ = Generator.extract_query rng ds ~edges:4 in
  let config = { Query.default_config with epsilon = 0.4; delta = 1 } in
  let out = Query.run db q config in
  let s = out.stats in
  Alcotest.(check int) "partition of structural candidates"
    s.structural_candidates
    (s.prob_candidates + s.accepted_by_bounds + s.pruned_by_bounds);
  Alcotest.(check bool) "answers within structural" true
    (List.for_all (fun _ -> true) out.answers)

let suite =
  [
    Alcotest.test_case "bounds: vertex feature" `Quick test_bounds_vertex_feature;
    Alcotest.test_case "bounds: no embedding" `Quick test_bounds_no_embedding;
    Alcotest.test_case "bounds: fully certain" `Quick test_bounds_fully_certain;
    Alcotest.test_case "bounds: single uncertain edge" `Quick
      test_bounds_single_uncertain_edge;
    QCheck_alcotest.to_alcotest prop_safe_bounds_enclose_exact_sip;
    QCheck_alcotest.to_alcotest prop_paper_bounds_near_sound;
    QCheck_alcotest.to_alcotest prop_bounds_ordered;
    Alcotest.test_case "bounds: conditional estimator" `Slow test_estimate_conditional;
    Alcotest.test_case "pmi: build & lookup" `Slow test_pmi_build_and_lookup;
    QCheck_alcotest.to_alcotest prop_usim_bounds_exact_ssp;
    QCheck_alcotest.to_alcotest prop_lsim_safe_below_exact_ssp;
    Alcotest.test_case "verify: sample count" `Quick test_verify_num_samples;
    Alcotest.test_case "verify: no embeddings" `Quick test_verify_empty_relaxed;
    Alcotest.test_case "verify: trivial relaxation" `Quick test_verify_trivial_relaxation;
    QCheck_alcotest.to_alcotest prop_smp_close_to_exact;
    Alcotest.test_case "pipeline = ground truth" `Slow test_pipeline_matches_ground_truth;
    Alcotest.test_case "pipeline = exact scan" `Slow test_pipeline_exact_scan_agrees;
    Alcotest.test_case "pipeline random-pick sound" `Slow
      test_pipeline_random_pick_mode_sound;
    Alcotest.test_case "pipeline stats consistent" `Slow test_pipeline_stats_consistent;
  ]
