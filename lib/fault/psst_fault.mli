(** Deterministic, seed-driven fault injection (DESIGN.md §12).

    Modules that want chaos coverage register named {e sites} (e.g.
    ["store.write"], ["proto.read"], ["server.batch"], ["verify.sample"])
    once at module initialisation and consult them on the hot path. A
    test or operator then {e arms} a plan mapping site names to an
    {!action} and a firing probability; every armed site draws from its
    own PRNG stream — derived from the global seed and the site name
    alone — so whether the [k]-th consultation of a site fires is a pure
    function of [(seed, site, k)], independent of what every other site
    does and of the order sites are created in.

    When no plan is armed (the default, and the production state) a site
    consultation is one atomic load and a branch — no allocation, no
    lock, no clock — so instrumented code pays nothing.

    Every firing bumps the auto counter ["fault.<site>"] in the shared
    {!Psst_obs} registry, making chaos runs auditable from
    [--stats-json]. *)

(** What an armed site does when it fires. [Fail] raises {!Injected};
    [Delay s] sleeps [s] seconds; [Partial_io] and [Bitflip] are
    interpreted by IO sites (short reads/writes, a corrupted byte) and
    degrade to [Fail] at sites with no byte stream to damage. *)
type action = Fail | Delay of float | Partial_io | Bitflip

exception Injected of string

type site

(** [site name] interns (or retrieves) the site [name]. Cheap, but takes
    the registry lock — bind sites once at module initialisation, like
    {!Psst_obs} metrics. *)
val site : string -> site

val site_name : site -> string

(** Registered site names, sorted — the fault-site catalogue. *)
val sites : unit -> string list

(** Whether a plan is armed. *)
val enabled : unit -> bool

(** [arm ?seed plan] arms [plan] (site name, action, probability in
    [0..1]) and re-seeds every site's PRNG stream; sites absent from the
    plan never fire. Arming a name with no registered site is allowed —
    the entry takes effect if the site is created later. Raises
    [Invalid_argument] on a probability outside [0..1] or a duplicate
    site name. *)
val arm : ?seed:int -> (string * action * float) list -> unit

(** Disarm everything: every site back to the zero-cost no-op. *)
val disarm : unit -> unit

(** [fire s] consults the site: [None] when disarmed, unarmed, or the
    PRNG schedule says not this time; [Some action] (and a
    ["fault.<site>"] bump) when it fires. IO sites use this to interpret
    [Partial_io]/[Bitflip] against their own byte streams. *)
val fire : site -> action option

(** [inject s] is [fire] plus the default interpretation: [Delay]
    sleeps, anything else raises {!Injected} naming the site. For sites
    with no IO stream of their own. *)
val inject : site -> unit

(** [draw_int s n] — a deterministic value in [0..n-1] from the site's
    PRNG stream (advances it). IO sites use it to pick which byte to
    corrupt or where to cut a write, keeping the damage itself on the
    seeded schedule. *)
val draw_int : site -> int -> int

(** [parse_plan spec] parses the [PSST_FAULTS] syntax:
    [site=kind[:arg][@prob]] entries separated by commas, where [kind]
    is [fail], [delay] (arg = milliseconds, default 10), [partial] or
    [bitflip], and [prob] defaults to [1]. Example:
    ["proto.read=partial@0.5,store.write=bitflip@0.1,server.batch=delay:25"].
    Raises [Failure] with a readable message on a syntax error. *)
val parse_plan : string -> (string * action * float) list

(** Arm from the [PSST_FAULTS] / [PSST_FAULT_SEED] environment
    variables; returns [true] when a plan was armed, [false] when
    [PSST_FAULTS] is unset or empty. Raises [Failure] on a malformed
    spec. *)
val arm_from_env : unit -> bool
