lib/core/pmi.mli: Bounds Format Pgraph Selection
