(* Canonical labelling by backtracking over vertex orderings, pruned by
   partial-code comparison and colour refinement. The canonical code is the
   lexicographically smallest sequence of "rows", one per placed vertex:
   row i = (vertex label, sorted [(position of earlier neighbor, edge label)]).
   That sequence determines the labelled graph up to isomorphism. *)

let refine g =
  let n = Lgraph.num_vertices g in
  let colors = Array.init n (fun v -> Lgraph.vertex_label g v) in
  let stable = ref false in
  while not !stable do
    let signature v =
      let neigh =
        Lgraph.neighbors g v
        |> List.map (fun (w, eid) -> ((Lgraph.edge g eid).label, colors.(w)))
        |> List.sort compare
      in
      (colors.(v), neigh)
    in
    let sigs = Array.init n signature in
    (* Re-index signatures densely, ordered so colours are stable ints. *)
    let sorted = List.sort_uniq compare (Array.to_list sigs) in
    let index s =
      let rec go i = function
        | [] -> assert false
        | x :: rest -> if x = s then i else go (i + 1) rest
      in
      go 0 sorted
    in
    let next = Array.map index sigs in
    if next = colors then stable := true
    else Array.blit next 0 colors 0 n
  done;
  colors

type row = { vlab : int; adj : (int * int) list (* (earlier position, edge label) *) }

let compare_row a b = compare (a.vlab, a.adj) (b.vlab, b.adj)

let code g =
  let n = Lgraph.num_vertices g in
  if n = 0 then ""
  else begin
    let colors = refine g in
    let pos = Array.make n (-1) in
    (* position -> vertex *)
    let placed = Array.make n (-1) in
    let best : row array option ref = ref None in
    let current = Array.make n { vlab = 0; adj = [] } in
    let row_of v depth =
      ignore depth;
      let adj =
        Lgraph.neighbors g v
        |> List.filter_map (fun (w, eid) ->
               if pos.(w) >= 0 then Some (pos.(w), (Lgraph.edge g eid).label)
               else None)
        |> List.sort compare
      in
      { vlab = Lgraph.vertex_label g v; adj }
    in
    (* Twins: same refined colour and identical labelled neighbourhoods are
       automorphic images of each other; trying one representative suffices. *)
    let twin_key v =
      let neigh =
        Lgraph.neighbors g v
        |> List.map (fun (w, eid) -> (w, (Lgraph.edge g eid).label))
        |> List.sort compare
      in
      (colors.(v), Lgraph.vertex_label g v, neigh)
    in
    let rec go depth =
      if depth = n then begin
        let complete = Array.copy current in
        match !best with
        | None -> best := Some complete
        | Some b ->
          let rec cmp i =
            if i >= n then 0
            else
              match compare_row complete.(i) b.(i) with 0 -> cmp (i + 1) | c -> c
          in
          if cmp 0 < 0 then best := Some complete
      end
      else begin
        let candidates =
          List.init n (fun v -> v)
          |> List.filter (fun v -> pos.(v) < 0)
        in
        (* Deduplicate automorphic twins among candidates. *)
        let seen = Hashtbl.create 8 in
        let candidates =
          List.filter
            (fun v ->
              let k = twin_key v in
              if Hashtbl.mem seen k then false
              else begin
                Hashtbl.add seen k ();
                true
              end)
            candidates
        in
        (* Order by the row they would produce so promising branches come
           first (helps pruning). *)
        let with_rows = List.map (fun v -> (row_of v depth, v)) candidates in
        let with_rows =
          List.sort (fun (r1, _) (r2, _) -> compare_row r1 r2) with_rows
        in
        List.iter
          (fun (row, v) ->
            let prune =
              match !best with
              | None -> false
              | Some b ->
                (* If the current prefix is already strictly greater than the
                   best prefix, no completion can win. Equal prefixes must be
                   explored. *)
                let rec cmp i =
                  if i >= depth then compare_row row b.(depth)
                  else
                    match compare_row current.(i) b.(i) with
                    | 0 -> cmp (i + 1)
                    | c -> c
                in
                cmp 0 > 0
            in
            if not prune then begin
              pos.(v) <- depth;
              placed.(depth) <- v;
              current.(depth) <- row;
              go (depth + 1);
              pos.(v) <- -1;
              placed.(depth) <- -1
            end)
          with_rows
      end
    in
    go 0;
    match !best with
    | None -> assert false
    | Some rows ->
      let buf = Buffer.create 64 in
      Array.iter
        (fun r ->
          Buffer.add_string buf (string_of_int r.vlab);
          Buffer.add_char buf ':';
          List.iter
            (fun (p, l) -> Buffer.add_string buf (Printf.sprintf "%d,%d;" p l))
            r.adj;
          Buffer.add_char buf '|')
        rows;
      Buffer.contents buf
  end

let equal_iso a b =
  Lgraph.num_vertices a = Lgraph.num_vertices b
  && Lgraph.num_edges a = Lgraph.num_edges b
  && code a = code b
