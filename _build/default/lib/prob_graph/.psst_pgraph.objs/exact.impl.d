lib/prob_graph/exact.ml: Array Distance Embedding Factor Hashtbl Lgraph List Pgraph Psst_util Velim Vf2
