lib/core/query.mli: Bounds Lgraph Pgraph Pmi Pruning Selection Structural Verify
