(** The Probabilistic Matrix Index (paper §3.1, Fig 4).

    Rows are mined features, columns are the probabilistic graphs of the
    database. Entry (f, g) holds the SIP bound pair for [f] against [g]
    when [f ⊆iso gc], and is empty otherwise (the paper's ⟨0⟩). *)

type entry = Bounds.t

type t

(** [build ?config ?domains db features] computes every matrix entry.
    [domains > 1] distributes the per-graph columns over a
    {!Psst_util.Pool} of that many OCaml 5 domains (the computation is
    embarrassingly parallel per graph and the result is identical to the
    sequential build). *)
val build :
  ?config:Bounds.config ->
  ?domains:int ->
  Pgraph.t array ->
  Selection.feature list ->
  t

(** [add_graph t g] appends the column of a new database graph, computing
    bounds for every feature occurring in its skeleton and adding the new
    graph id to the support list of every such feature (so the persisted
    index rebuilds the same columns after a save/load round trip). The
    feature set is not re-mined. *)
val add_graph : t -> Pgraph.t -> t

(** [add_graphs t gs] is [add_graph] for a batch: one matrix reallocation
    per feature row for the whole batch instead of one per graph, making a
    bulk load linear instead of quadratic in the batch size. *)
val add_graphs : t -> Pgraph.t array -> t

(** [sub t ~base ~len] — the PMI of the graph range [base .. base+len-1]
    viewed as a database of its own: entry columns are sliced, feature
    support lists rebased to local ids. Nothing is recomputed, so the
    shard's bounds are bit-identical to the monolithic ones
    ([Invalid_argument] when the range is out of bounds). *)
val sub : t -> base:int -> len:int -> t

(** [concat parts] reassembles consecutive {!sub} slices (in order) into
    the monolithic PMI: entry rows are concatenated, supports un-rebased.
    [concat] of the {!sub} pieces of a PMI round-trips it bit-exactly
    (modulo [build_seconds], which becomes the max over the parts).
    [Invalid_argument] when the parts disagree on bound config or feature
    set. *)
val concat : t list -> t

val config : t -> Bounds.config
val features : t -> Selection.feature array
val num_features : t -> int
val num_graphs : t -> int

(** [lookup t ~feature ~graph] — [None] when the feature does not occur in
    the graph's skeleton. *)
val lookup : t -> feature:int -> graph:int -> entry option

(** Column [Dg] of one graph: the occurring features with their bounds. *)
val column : t -> graph:int -> (int * entry) list

(** Number of non-empty entries — the "index size" series of Fig 12(d). *)
val filled_entries : t -> int

(** How the bound matrix is held: [`Heap] (eagerly decoded OCaml arrays) or
    [`Flat] (zero-copy lookups off a memory-mapped flat image, DESIGN.md
    §15). Observability only — every query-time accessor behaves
    identically on both. *)
val backing : t -> [ `Heap | `Flat ]

(** Wall-clock seconds spent computing the entries (Fig 12(c)). *)
val build_seconds : t -> float

(** {1 Persistence (DESIGN.md §9)}

    The PMI is the expensive offline artifact of the pipeline; it is stored
    bit-exactly (float bounds as IEEE-754 bits), so queries on a loaded
    index are bit-identical — same answers, same pruning counters — to
    queries on a freshly built one. *)

(** [save path ~db t] writes a [Pmi_index]-kind {!Psst_store} file carrying
    the bound matrix, the mined features, the bounds configuration, and a
    fingerprint of [db]. *)
val save : string -> db:Pgraph.t array -> t -> unit

(** [load path ~db] validates the store's format version, kind, checksums,
    and that the persisted database fingerprint matches [db] before any
    entry is reused; raises [Psst_store.Store_error] otherwise (a stale or
    foreign index is rejected, never silently reused).

    [~salvage:true] turns corruption of the bound matrix into self-healing
    instead of rejection (DESIGN.md §12): the matrix is stored as
    per-shard-checksummed column groups, so a load keeps every shard whose
    CRC holds and recomputes only the damaged or missing ones with the same
    deterministic column builder the offline build uses — the result is
    bit-identical to a full rebuild. Each rebuilt column counts into
    ["store.salvaged_columns"] and the load emits one ["store.salvaged"]
    warning event. The small metadata sections (config, database
    fingerprint, features, layout) cannot be salvaged — if one of those is
    damaged the load still raises [Store_error] and the caller should fall
    back to a full rebuild.

    [~mmap:true] memory-maps the file instead of decoding it: the store
    must hold a flat image ({!save_flat}); postings and bounds stay in the
    mapping and {!lookup} reads them zero-copy, so cold start does no
    per-entry decoding (the file is still integrity-scanned once —
    DESIGN.md §15). Lookups are bit-identical to the eager load of the
    same file. A non-flat store raises [Store_error] suggesting [--flat].
    With [~salvage:true], a damaged file falls back to the eager salvage
    loader (the mapping itself has no partial salvage). *)
val load : ?salvage:bool -> ?mmap:bool -> string -> db:Pgraph.t array -> t

(** [save_flat path ~db t] writes the flat, mmap-ready image of the index:
    delta-coded per-feature postings, one fixed-width IEEE-754 bounds
    array (8-byte aligned via a pad section), and a directory — same
    outer container, checksums and metadata sections as {!save}. Both
    {!load} paths read it; only this layout supports [~mmap:true]. *)
val save_flat : string -> db:Pgraph.t array -> t -> unit

(** [of_mapped m ~db] attaches to the flat image inside an already-mapped
    store when the graphs are already decoded (standalone [Pmi_index]
    files paired with an external database). Runs the same metadata
    validation as {!of_sections} — including the database fingerprint —
    plus a full validating scan of the postings; bound count fields are
    validated on first materialisation instead of at open, so attach time
    does not scale with the bounds payload. *)
val of_mapped : Psst_store.mapped -> db:Pgraph.t array -> t

(** [of_mapped_lazy m ~ng] — like {!of_mapped} but for images whose
    graphs live (lazily decoded) in the {e same} container, so only the
    graph count is cross-checked: the index and the graphs were written
    in one atomic store file, making re-fingerprinting — which would
    force the full decode the mapping exists to avoid — redundant for
    identity. {!Query.load_database}'s [~mmap] path uses this. *)
val of_mapped_lazy : Psst_store.mapped -> ng:int -> t

(** Section-level codec, shared with the whole-database store
    ({!Query.save_database}). [of_sections] performs the same validation as
    {!load} minus the file-level header checks; [~salvage:true] rebuilds
    entry shards missing from [sections] instead of failing (pass the
    [intact] list of {!Psst_store.read_file_salvage}). *)
val to_sections : db:Pgraph.t array -> t -> Psst_store.section list

(** The flat-image sections ("pmi.flat.dir" / "pmi.flat.postings" /
    "pmi.flat.bounds" plus the shared metadata sections). Callers must run
    {!Psst_store.align_payloads} with target ["pmi.flat.bounds"] on the
    final section list before writing, or the mmap loader will reject the
    unaligned bounds payload. *)
val flat_sections : db:Pgraph.t array -> t -> Psst_store.section list

(** [of_sections] accepts both layouts (sharded and flat), eagerly decoding
    either into the heap backing. With [~salvage:true], a damaged flat
    image rebuilds {e all} columns (the flat sections are not per-column
    sharded); damaged metadata still raises. *)
val of_sections :
  ?salvage:bool -> db:Pgraph.t array -> Psst_store.section list -> t

val pp_stats : Format.formatter -> t -> unit
