lib/pgm/sampler.ml: Array Factor Float Hashtbl List Psst_util
