examples/ppi_search.mli:
