(* Branch and bound over injective partial maps g1 -> g2 ∪ {⊥}. An edge of
   g1 counts when both endpoints are mapped and g2 carries an equally
   labelled edge between the images. The admissible bound at depth d is
   (current score) + (number of g1 edges with an endpoint ordered >= d). *)

let vertex_order g =
  let n = Lgraph.num_vertices g in
  let order = Array.make n (-1) in
  let placed = Array.make n false in
  for i = 0 to n - 1 do
    let best = ref (-1) in
    let score v =
      let conn =
        List.length (List.filter (fun (w, _) -> placed.(w)) (Lgraph.neighbors g v))
      in
      (conn, Lgraph.degree g v)
    in
    for v = 0 to n - 1 do
      if (not placed.(v)) && (!best < 0 || score v > score !best) then best := v
    done;
    order.(i) <- !best;
    placed.(!best) <- true
  done;
  order

let common_edges ?stop_at ?(node_budget = max_int) g1 g2 =
  let n1 = Lgraph.num_vertices g1 and n2 = Lgraph.num_vertices g2 in
  if Lgraph.num_edges g1 = 0 || Lgraph.num_edges g2 = 0 then 0
  else begin
    let order = vertex_order g1 in
    let pos = Array.make n1 (-1) in
    Array.iteri (fun i v -> pos.(v) <- i) order;
    (* future_edges.(d) = # edges of g1 with max endpoint position >= d. *)
    let future_edges = Array.make (n1 + 1) 0 in
    Array.iter
      (fun (e : Lgraph.edge) ->
        let last = max pos.(e.u) pos.(e.v) in
        for d = 0 to last do
          future_edges.(d) <- future_edges.(d) + 1
        done)
      (Lgraph.edges g1);
    let map = Array.make n1 (-1) in
    let used = Array.make n2 false in
    let best = ref 0 in
    let nodes = ref 0 in
    let target = match stop_at with Some s -> s | None -> max_int in
    let exception Done in
    let rec go depth score =
      incr nodes;
      if !nodes > node_budget then raise Done;
      if score > !best then begin
        best := score;
        if !best >= target then raise Done
      end;
      if depth < n1 && score + future_edges.(depth) > !best then begin
        let u = order.(depth) in
        let gained tv =
          (* Edges of g1 from u to already-mapped vertices realised in g2. *)
          List.fold_left
            (fun acc (w, eid) ->
              if map.(w) >= 0 then
                match Lgraph.find_edge g2 tv map.(w) with
                | Some te when te.label = (Lgraph.edge g1 eid).label -> acc + 1
                | Some _ | None -> acc
              else acc)
            0 (Lgraph.neighbors g1 u)
        in
        (* Try target vertices with the same label, best local gain first. *)
        let cands = ref [] in
        for tv = 0 to n2 - 1 do
          if (not used.(tv)) && Lgraph.vertex_label g2 tv = Lgraph.vertex_label g1 u
          then cands := (gained tv, tv) :: !cands
        done;
        let cands = List.sort (fun (a, _) (b, _) -> compare b a) !cands in
        List.iter
          (fun (gain, tv) ->
            map.(u) <- tv;
            used.(tv) <- true;
            go (depth + 1) (score + gain);
            used.(tv) <- false;
            map.(u) <- -1)
          cands;
        (* Leave u unmatched. *)
        go (depth + 1) score
      end
    in
    (try go 0 0 with Done -> ());
    !best
  end
