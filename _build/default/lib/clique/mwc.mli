(** Maximum weight clique (paper ref [7]), used to pick the best set of
    pairwise-disjoint embeddings / cuts when tightening SIP bounds
    (paper §4.1).

    Vertex-weighted undirected graphs; exact branch and bound with a
    weight-sum admissible bound, falling back to a greedy solution when the
    node budget runs out (the result is then still a valid clique, i.e. the
    derived probability bound remains sound, just possibly less tight). *)

type graph

(** [make ~weights ~edges] builds a graph on [Array.length weights]
    vertices; [edges] are unordered pairs. Raises [Invalid_argument] on
    out-of-range endpoints, self-loops or negative weights. *)
val make : weights:float array -> edges:(int * int) list -> graph

val num_vertices : graph -> int

(** [max_weight_clique ?node_budget g] returns the clique (vertex list) of
    maximum total weight and its weight. [node_budget] caps the number of
    branch-and-bound nodes (default [200_000]); on exhaustion the best
    clique found so far is returned. *)
val max_weight_clique : ?node_budget:int -> graph -> int list * float

(** Greedy heuristic clique (highest weight first); cheap baseline and the
    fallback seed of the exact search. *)
val greedy_clique : graph -> int list * float

(** [is_clique g vs] checks pairwise adjacency. *)
val is_clique : graph -> int list -> bool
