module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

type t = { chosen : int list; covered : bool; repaired : bool }

let covered_by inst chosen =
  let c = Bitset.create inst.Qp.universe in
  List.iter (fun i -> Bitset.union_into c (let s, _, _ = inst.Qp.sets.(i) in s)) chosen;
  c

let round rng inst ~x =
  let n = Array.length inst.Qp.sets in
  let u = max 2 inst.Qp.universe in
  let rounds = int_of_float (ceil (2. *. log (float_of_int u))) in
  let picked = Array.make n false in
  for _ = 1 to max 1 rounds do
    for i = 0 to n - 1 do
      if (not picked.(i)) && Prng.bernoulli rng x.(i) then picked.(i) <- true
    done
  done;
  let chosen = List.filter (fun i -> picked.(i)) (List.init n (fun i -> i)) in
  let cov = covered_by inst chosen in
  { chosen; covered = Bitset.cardinal cov = inst.Qp.universe; repaired = false }

let round_repaired rng inst ~x =
  let r = round rng inst ~x in
  if r.covered then r
  else begin
    let cov = covered_by inst r.chosen in
    let chosen = ref (List.rev r.chosen) in
    let progress = ref true in
    while Bitset.cardinal cov < inst.Qp.universe && !progress do
      (* Greedy completion: highest newly-covered count, then highest wL. *)
      let best = ref None in
      Array.iteri
        (fun i (s, wl, _) ->
          if not (List.mem i !chosen) then begin
            let gain = Bitset.cardinal (Bitset.diff s cov) in
            if gain > 0 then
              match !best with
              | Some (_, g, w) when (g, w) >= (gain, wl) -> ()
              | _ -> best := Some (i, gain, wl)
          end)
        inst.Qp.sets;
      match !best with
      | None -> progress := false
      | Some (i, _, _) ->
        chosen := i :: !chosen;
        Bitset.union_into cov (let s, _, _ = inst.Qp.sets.(i) in s)
    done;
    {
      chosen = List.sort compare !chosen;
      covered = Bitset.cardinal cov = inst.Qp.universe;
      repaired = true;
    }
  end
