module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

let bs l = Bitset.of_list 10 l

let test_hitting_single_set () =
  let cuts = Transversal.minimal_hitting_sets [ bs [ 1; 3 ] ] in
  let expect = [ [ 1 ]; [ 3 ] ] in
  Alcotest.(check (list (list int))) "singletons"
    expect
    (List.map Bitset.elements cuts |> List.sort compare)

let test_hitting_paper_example () =
  (* Paper Example 7 / Fig 8: embeddings {e1,e2}, {e2,e3}, {e3,e4} have
     minimal cuts {e2,e4}, {e1,e3}, {e2,e3}. *)
  let sets = [ bs [ 1; 2 ]; bs [ 2; 3 ]; bs [ 3; 4 ] ] in
  let cuts = Transversal.minimal_hitting_sets sets in
  let got = List.map Bitset.elements cuts |> List.sort compare in
  Alcotest.(check (list (list int))) "paper cuts"
    [ [ 1; 3 ]; [ 2; 3 ]; [ 2; 4 ] ]
    got

let test_hitting_disjoint_sets () =
  (* Disjoint sets: cuts are the full cartesian product. *)
  let sets = [ bs [ 0; 1 ]; bs [ 2 ] ] in
  let cuts = Transversal.minimal_hitting_sets sets in
  Alcotest.(check (list (list int))) "product"
    [ [ 0; 2 ]; [ 1; 2 ] ]
    (List.map Bitset.elements cuts |> List.sort compare)

let test_hitting_empty_hyperedge_rejected () =
  Alcotest.check_raises "empty hyperedge"
    (Invalid_argument "Transversal.minimal_hitting_sets: empty hyperedge")
    (fun () -> ignore (Transversal.minimal_hitting_sets [ bs [] ]))

let test_is_minimal () =
  let sets = [ bs [ 1; 2 ]; bs [ 2; 3 ] ] in
  Alcotest.(check bool) "2 hits both, minimal" true
    (Transversal.is_minimal_hitting_set sets (bs [ 2 ]));
  Alcotest.(check bool) "1,3 minimal" true
    (Transversal.is_minimal_hitting_set sets (bs [ 1; 3 ]));
  Alcotest.(check bool) "1,2 not minimal" false
    (Transversal.is_minimal_hitting_set sets (bs [ 1; 2 ]));
  Alcotest.(check bool) "1 not hitting" false
    (Transversal.is_hitting_set sets (bs [ 1 ]))

let random_sets rng =
  let k = 2 + Prng.int rng 3 in
  List.init k (fun _ ->
      let size = 1 + Prng.int rng 3 in
      Bitset.of_list 10 (Prng.sample_without_replacement rng size 10))

let prop_transversals_are_minimal_hitting =
  QCheck.Test.make ~name:"every output is a minimal hitting set" ~count:150
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 3) in
      let sets = random_sets rng in
      let cuts = Transversal.minimal_hitting_sets sets in
      List.for_all (Transversal.is_minimal_hitting_set sets) cuts)

let prop_transversals_complete =
  QCheck.Test.make ~name:"all minimal hitting sets are found" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 7) in
      let sets = random_sets rng in
      let cuts = Transversal.minimal_hitting_sets sets in
      (* Brute force over all subsets of 0..9. *)
      let all = ref [] in
      for mask = 1 to 1023 do
        let t = Bitset.of_list 10 (List.filter (fun i -> mask land (1 lsl i) <> 0)
                                     (List.init 10 (fun i -> i))) in
        if Transversal.is_minimal_hitting_set sets t then all := t :: !all
      done;
      let norm l = List.map Bitset.elements l |> List.sort compare in
      norm cuts = norm !all)

(* --- Parallel graph (Thm 6 cross-check) --- *)

let embedding_of_edges l =
  { Embedding.vmap = [||]; edges = Bitset.of_list 10 l }

let test_parallel_graph_basics () =
  let pg = Parallel_graph.build [ embedding_of_edges [ 1; 2 ]; embedding_of_edges [ 3 ] ] in
  Alcotest.(check int) "lines" 2 (Parallel_graph.num_lines pg);
  Alcotest.(check bool) "no removal: connected" false
    (Parallel_graph.disconnects pg (bs []));
  Alcotest.(check bool) "cut both lines" true
    (Parallel_graph.disconnects pg (bs [ 1; 3 ]));
  Alcotest.(check bool) "one line intact" false
    (Parallel_graph.disconnects pg (bs [ 1; 2 ]))

let test_parallel_graph_paper_example () =
  (* Fig 8: f2's three embeddings as lines. *)
  let pg =
    Parallel_graph.build
      [
        embedding_of_edges [ 1; 2 ];
        embedding_of_edges [ 2; 3 ];
        embedding_of_edges [ 3; 4 ];
      ]
  in
  let cuts = Parallel_graph.min_label_cuts pg in
  Alcotest.(check (list (list int))) "paper cuts via cG"
    [ [ 1; 3 ]; [ 2; 3 ]; [ 2; 4 ] ]
    (List.map Bitset.elements cuts |> List.sort compare)

let prop_theorem6_agreement =
  QCheck.Test.make
    ~name:"Thm 6: parallel-graph cuts = minimal transversals" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 13) in
      let sets = random_sets rng in
      let embs = List.map (fun s -> { Embedding.vmap = [||]; edges = s }) sets in
      let via_transversal = Transversal.minimal_hitting_sets sets in
      let via_cg = Parallel_graph.min_label_cuts (Parallel_graph.build embs) in
      let norm l = List.map Bitset.elements l |> List.sort compare in
      norm via_transversal = norm via_cg)

let suite =
  [
    Alcotest.test_case "hitting single set" `Quick test_hitting_single_set;
    Alcotest.test_case "hitting paper example" `Quick test_hitting_paper_example;
    Alcotest.test_case "hitting disjoint sets" `Quick test_hitting_disjoint_sets;
    Alcotest.test_case "empty hyperedge rejected" `Quick
      test_hitting_empty_hyperedge_rejected;
    Alcotest.test_case "minimality predicates" `Quick test_is_minimal;
    QCheck_alcotest.to_alcotest prop_transversals_are_minimal_hitting;
    QCheck_alcotest.to_alcotest prop_transversals_complete;
    Alcotest.test_case "parallel graph basics" `Quick test_parallel_graph_basics;
    Alcotest.test_case "parallel graph paper example" `Quick
      test_parallel_graph_paper_example;
    QCheck_alcotest.to_alcotest prop_theorem6_agreement;
  ]
