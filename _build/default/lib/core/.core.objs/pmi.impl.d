lib/core/pmi.ml: Array Bounds Domain Format Lazy Lgraph List Logs Pgraph Psst_util Selection Vf2
