test/test_optim.ml: Alcotest Array List Psst_util QCheck QCheck_alcotest Qp Rounding Set_cover Tgen
