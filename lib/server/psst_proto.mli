(** Wire protocol of the resident query server (DESIGN.md §11, §12).

    Every message travels in one length-prefixed, CRC-32-framed binary
    frame layered on the {!Psst_store} payload codecs:

    {v
    offset 0   magic        "PSSTRPC\x00"        8 bytes
           8   version      u32                  {!min_proto_version} .. {!proto_version}
          12   type         u32                  message tag
          16   payload_len  u32                  <= {!max_payload}
          20   crc          u32                  CRC-32 of bytes 0..19 ++ payload
          24   payload      bytes                {!Psst_store} encoding
    v}

    Readers are defensive end to end: a bad magic, an unknown version or
    tag, an oversized or negative length, a checksum mismatch, a payload
    that does not decode, trailing payload bytes, or EOF in the middle of
    a frame all raise {!Proto_error} with a human-readable message — never
    [Failure], an out-of-bounds [Invalid_argument], or a hang (a corrupted
    length field is bounded by [max_payload], so a reader never waits for
    gigabytes that will not come).

    Versioning is per frame. Version 2 added the [degraded] answer flag,
    the {!request.Get_health} RPC and the [Unavailable] error code; both
    sides accept version-1 frames and answer a version-1 peer in version 1
    ([degraded] is simply not sent; [Unavailable] is downgraded to the
    equally-retryable [Shutdown]), so old clients interoperate with new
    servers and vice versa. Version 3 added the [adaptive] byte to SMP
    verifier configs inside [Run]/[Run_topk] requests: a v1/v2 request
    decodes with [adaptive = false], and a request encoded for an older
    peer drops the byte (losing only the off-by-default sampling
    optimisation, never the answer). Version 4 added the per-worker
    roster to [Health_reply] so a router can expose its fleet: the
    roster is dropped when encoding for a pre-v4 peer and defaults to
    [[]] when decoding a pre-v4 frame — a plain worker's roster is empty
    anyway, so old peers lose only the router's fleet view.

    Version 5 added continuous ingest and multi-tenancy
    (DESIGN.md §16): {!request.Set_tenant} names the connection's tenant
    for admission quotas and fair scheduling, {!request.Add_graphs}
    appends graphs to the served database (answered by
    {!reply.Ingest_ack} or a retryable [Error_reply]), and
    [Health_reply] gains the ingest epoch / queued / applied fields.
    The new tags are rejected as malformed when carried by a pre-v5
    frame, and the health fields are dropped for pre-v5 peers (decoding
    a pre-v5 frame defaults them to zero) — a pre-v5 peer never emits
    them, so query traffic round-trips exactly as before.

    Version 6 added replication and failover (DESIGN.md §17):
    {!request.Subscribe} opens a standby's delta-stream subscription,
    answered by a stream of {!reply.Delta_frame} messages carrying the
    exact bytes of the primary's on-disk [BASE.delta.K] files and acked
    with {!request.Replica_ack}; {!request.Add_graphs} gains a
    client-chosen idempotency [token] the ingest writer dedups retries
    on; and {!worker_health} gains the replica triple ([rid] /
    [worker_epoch] / [primary]) a replica-aware router reports per
    roster slot. Gating is symmetric: the new tags decode only from v6
    frames, the token and the triple are dropped when encoding for
    pre-v6 peers and default ([""], [0]/[0]/[true]) when decoding
    pre-v6 frames — old peers keep their exact wire format. *)

exception Proto_error of string

(** Raised by the [?deadline] fd readers/writers when the deadline passes
    mid-frame. The stream position is then untrustworthy: close the
    connection (the reconnecting client does exactly that). *)
exception Timed_out

val proto_version : int
val min_proto_version : int

(** 8-byte frame magic. *)
val magic : string

(** Size of the fixed frame header ([magic] through [crc]). *)
val header_bytes : int

(** Hard cap on [payload_len]; larger lengths are rejected before any
    allocation. *)
val max_payload : int

(** Where a server listens / a client connects. *)
type endpoint = Unix_socket of string | Tcp of string * int

val endpoint_to_string : endpoint -> string

(** Error taxonomy of {!reply.Error_reply}. [Queue_full], [Shutdown] and
    [Unavailable] are retryable: the request was not executed, so the
    client may resubmit (ideally elsewhere or after a backoff). *)
type error_code =
  | Malformed
  | Queue_full
  | Deadline
  | Shutdown
  | Internal
  | Unavailable

val error_code_name : error_code -> string
val error_code_retryable : error_code -> bool

(** The pruning counters echoed with every answer, so a client can check
    bit-identity with an offline {!Query.run} without a second channel.
    [degraded] (version >= 2) marks an answer assembled under a
    verification budget or an injected fault: correct to the PMI bounds
    (a superset of the exact answer set), not exactly verified. *)
type query_stats = {
  relaxed_truncated : bool;
  structural_candidates : int;
  prob_candidates : int;
  accepted_by_bounds : int;
  pruned_by_bounds : int;
  degraded : bool;
}

val stats_of_query : Query.stats -> query_stats

(** One worker's slot in a router's aggregated health roster
    (version >= 4). [wid] is the worker's shard index in the router's
    configuration; when a worker is unreachable its snapshot fields are
    zero and [reachable] is false. *)
type worker_health = {
  wid : int;
  reachable : bool;
  worker_uptime_s : float;
  worker_queue_depth : int;
  worker_degraded_answers : int;
  rid : int;
      (** replica index within the shard's group (version >= 6; 0 when
          decoding older frames — a pre-v6 shard has one sole replica) *)
  worker_epoch : int;
      (** the replica's applied ingest epoch (version >= 6); the
          primary epoch minus this is the replica's lag *)
  primary : bool;
      (** true when this replica currently serves the shard's queries
          (version >= 6; defaults to true on pre-v6 decode) *)
}

(** The [Get_health] snapshot a load balancer polls (DESIGN.md §12). *)
type health = {
  uptime_s : float;
  queue_depth : int;  (** requests admitted but not yet executed *)
  served : int;  (** replies sent since start, error replies included *)
  degraded_answers : int;  (** answers sent with [degraded = true] *)
  retryable_rejections : int;
      (** retryable error replies sent (queue-full / shutdown /
          unavailable) — the server-side retry-pressure counter *)
  workers : worker_health list;
      (** router role only (version >= 4): one slot per configured
          worker. Empty for plain workers and when decoding pre-v4
          frames. *)
  epoch : int;
      (** ingest batches applied since start (version >= 5; 0 when
          decoding older frames and on servers without ingest) *)
  ingest_queued : int;
      (** graphs admitted to the ingest queue but not yet applied — the
          ingest lag a health poller watches (version >= 5) *)
  ingest_applied : int;
      (** graphs applied to the live database since start (version >= 5) *)
}

type request =
  | Ping
  | Run of { id : int; query : Lgraph.t; config : Query.config }
  | Run_topk of { id : int; query : Lgraph.t; k : int; config : Query.config }
  | Get_stats
  | Get_health
  | Set_tenant of string
      (** name this connection's tenant (version >= 5): subsequent
          requests on the connection are admitted, scheduled and metered
          under that identity. Answered inline with [Pong]. The name
          must be non-empty and at most 128 bytes; connections that
          never send it run as tenant ["default"]. *)
  | Add_graphs of { id : int; token : string; graphs : Pgraph.t array }
      (** append [graphs] to the served database (version >= 5).
          Answered with {!reply.Ingest_ack} once the batch is applied
          (and persisted, when the server serves from a store file), or
          with a retryable [Error_reply] when the ingest queue or the
          tenant's quota is full, ingest is disabled, or persistence
          failed — the database is unchanged in every rejection case.
          [token] (version >= 6, at most 128 bytes) is a client-chosen
          idempotency key: a retry carrying the token of an
          already-applied batch is answered with the original ack
          instead of ingesting twice. [""] disables dedup for the
          batch; pre-v6 frames decode with [token = ""]. *)
  | Subscribe of { from_seq : int }
      (** turn this connection into a replication stream (version >=
          6): the server sends {!reply.Delta_frame} for every persisted
          delta with seq >= [from_seq] ([>= 1]), historical first, then
          live as batches apply. The subscriber answers each frame with
          {!request.Replica_ack}; no other request may follow on the
          connection. Rejected when the server has no persistent delta
          chain. *)
  | Replica_ack of { seq : int }
      (** the subscriber has validated, persisted and applied delta
          [seq] (version >= 6). Acks are cumulative: acking seq [k]
          implies every seq [<= k]. *)

type reply =
  | Pong
  | Answer of { id : int; answers : int list; stats : query_stats }
  | Topk_answer of { id : int; hits : (int * float) list }
  | Stats_json of string
  | Health_reply of health
  | Error_reply of { id : int; code : error_code; message : string }
  | Ingest_ack of { id : int; epoch : int; base : int; count : int }
      (** [Add_graphs] succeeded: the [count] new graphs hold global ids
          [base .. base + count - 1] and every query admitted after this
          reply observes database epoch [epoch] (version >= 5). *)
  | Delta_frame of { seq : int; bytes : string }
      (** one delta of a replication stream (version >= 6): [bytes] is
          the exact content of the primary's on-disk [BASE.delta.seq]
          store file — the subscriber validates it with the store
          reader, persists it verbatim (hence byte-identical chains)
          and applies it through its own ingest path. *)

(** [request_id r] — the client-chosen correlation id ([0] for [Ping] /
    [Get_stats] / [Get_health] / [Set_tenant] / [Subscribe] /
    [Replica_ack], which are answered in order on the connection). *)
val request_id : request -> int

(** Full frame bytes (header + payload) for one message. [?version]
    (default {!proto_version}) stamps the frame and selects the encoding
    a peer of that version expects. *)
val encode_request : ?version:int -> request -> string

val encode_reply : ?version:int -> reply -> string

(** Decode one complete frame from a string (fuzz tests and tooling);
    {!Proto_error} on any anomaly, including trailing bytes after the
    frame. *)
val request_of_string : string -> request

val reply_of_string : string -> reply

(** Blocking channel frame readers (tooling and tests). [End_of_file] is
    raised only at a clean frame boundary (zero bytes of the next frame
    read); EOF anywhere inside a frame is a truncation and raises
    {!Proto_error}. *)
val read_request : in_channel -> request

val read_reply : in_channel -> reply

(** {1 Fd-level frame IO}

    What the server and client actually use on sockets: retry loops over
    [Unix.read]/[Unix.write] that survive [EINTR] and short reads/writes
    (both routine on sockets), with an optional absolute deadline
    enforced by [select] — {!Timed_out} on expiry. The ["proto.read"] /
    ["proto.write"] fault sites act here: [Partial_io] forces 1-byte
    chunks through the same loops, [Bitflip] damages a checksummed byte,
    [Fail] raises {!Psst_fault.Injected} as a dead link. *)

(** [read_request_fd fd] returns [(frame_version, request)] — the server
    mirrors the version back in its reply. [End_of_file] at a clean frame
    boundary. *)
val read_request_fd : ?deadline:float -> Unix.file_descr -> int * request

val read_reply_fd : ?deadline:float -> Unix.file_descr -> reply

(** [write_frame_fd fd bytes] writes a complete pre-encoded frame. *)
val write_frame_fd : ?deadline:float -> Unix.file_descr -> string -> unit
