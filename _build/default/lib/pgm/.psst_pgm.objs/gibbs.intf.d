lib/pgm/gibbs.mli: Factor Psst_util
