(** Small statistics helpers for the experiment harness. *)

val mean : float list -> float
val stddev : float list -> float

(** [percentile p xs] with [p] in [0,100]; linear interpolation. *)
val percentile : float -> float list -> float

val min_max : float list -> float * float

(** Binary-classification quality of a returned set vs a ground-truth set.

    [precision_recall ~returned ~truth] where both are sorted-or-not lists of
    ids. Precision = |returned ∩ truth| / |returned| (1.0 when nothing is
    returned and the truth is empty, 0.0 when returned is empty but the truth
    is not... see implementation: empty returned yields precision 1.0 by
    convention so that a conservative empty answer is not charged for false
    positives), Recall = |returned ∩ truth| / |truth| (1.0 for empty truth). *)
val precision_recall : returned:int list -> truth:int list -> float * float

(** Mean absolute error between paired lists. *)
val mae : float list -> float list -> float
