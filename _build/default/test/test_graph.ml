module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

(* The paper's graph 002 (Figure 1): vertices a,a,b,b,c and edges e1..e5.
   Labels: a=0, b=1, c=2; edge labels all 0. Layout (one valid reading):
     v0:a - v1:a (e1), v0:a - v2:b (e2), v1:a - v2:b (e3),
     v2:b - v3:b (e4), v2:b - v4:c (e5). *)
let graph_002 () =
  Lgraph.create
    ~vlabels:[| 0; 0; 1; 1; 2 |]
    ~edges:[ (0, 1, 0); (0, 2, 0); (1, 2, 0); (2, 3, 0); (2, 4, 0) ]

let test_create_accessors () =
  let g = graph_002 () in
  Alcotest.(check int) "vertices" 5 (Lgraph.num_vertices g);
  Alcotest.(check int) "edges" 5 (Lgraph.num_edges g);
  Alcotest.(check int) "vlabel" 1 (Lgraph.vertex_label g 2);
  Alcotest.(check int) "degree" 4 (Lgraph.degree g 2);
  let e = Lgraph.edge g 0 in
  Alcotest.(check int) "edge endpoints" 1 e.v;
  Alcotest.(check bool) "has edge" true (Lgraph.has_edge g 2 0);
  Alcotest.(check bool) "no edge" false (Lgraph.has_edge g 0 4);
  Alcotest.(check int) "other endpoint" 0 (Lgraph.other_endpoint e 1)

let test_create_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "self loop" true
    (bad (fun () -> Lgraph.create ~vlabels:[| 0; 0 |] ~edges:[ (1, 1, 0) ]));
  Alcotest.(check bool) "duplicate edge" true
    (bad (fun () ->
         Lgraph.create ~vlabels:[| 0; 0 |] ~edges:[ (0, 1, 0); (1, 0, 2) ]));
  Alcotest.(check bool) "out of range" true
    (bad (fun () -> Lgraph.create ~vlabels:[| 0 |] ~edges:[ (0, 1, 0) ]))

let test_connectivity () =
  let g = graph_002 () in
  Alcotest.(check bool) "connected" true (Lgraph.is_connected g);
  let g2 = Lgraph.delete_edges g [ 3; 4 ] in
  Alcotest.(check bool) "still reports isolated" false (Lgraph.is_connected g2);
  Alcotest.(check bool) "connected ignoring isolated" true
    (Lgraph.is_connected_ignoring_isolated g2);
  Alcotest.(check int) "components" 3 (List.length (Lgraph.components g2))

let test_triangles () =
  let g = graph_002 () in
  Alcotest.(check (list (triple int int int))) "one triangle" [ (0, 1, 2) ]
    (Lgraph.triangles g);
  let square =
    Lgraph.create ~vlabels:[| 0; 0; 0; 0 |]
      ~edges:[ (0, 1, 0); (1, 2, 0); (2, 3, 0); (3, 0, 0) ]
  in
  Alcotest.(check (list (triple int int int))) "no triangle" [] (Lgraph.triangles square)

let test_star_edge_sets () =
  let g = graph_002 () in
  let stars = Lgraph.star_edge_sets g in
  (* v2 is incident to e1?? no: incident to e2 e3 e4 e5. *)
  Alcotest.(check bool) "v2 star present" true
    (List.mem [ 1; 2; 3; 4 ] stars);
  (* Degree-1 vertices contribute nothing. *)
  List.iter
    (fun s -> Alcotest.(check bool) "size>=2" true (List.length s >= 2))
    stars

let test_edge_mask () =
  let g = graph_002 () in
  let mask = Bitset.of_list 5 [ 1; 2; 3 ] in
  let sub, edge_map = Lgraph.with_edge_mask g mask in
  Alcotest.(check int) "sub edges" 3 (Lgraph.num_edges sub);
  Alcotest.(check int) "sub vertices kept" 5 (Lgraph.num_vertices sub);
  Alcotest.(check (array int)) "edge map" [| 1; 2; 3 |] edge_map

let test_delete_relabel () =
  let g = graph_002 () in
  let g' = Lgraph.delete_edges g [ 0 ] in
  Alcotest.(check int) "deleted" 4 (Lgraph.num_edges g');
  Alcotest.(check bool) "edge gone" false (Lgraph.has_edge g' 0 1);
  let g'' = Lgraph.relabel_edge g 4 7 in
  match Lgraph.find_edge g'' 2 4 with
  | Some e -> Alcotest.(check int) "relabeled" 7 e.label
  | None -> Alcotest.fail "edge lost by relabel"

let test_induced_subgraph () =
  let g = graph_002 () in
  let sub, vmap = Lgraph.induced_subgraph g [ 0; 1; 2 ] in
  Alcotest.(check int) "triangle edges" 3 (Lgraph.num_edges sub);
  Alcotest.(check (array int)) "vmap" [| 0; 1; 2 |] vmap;
  let sub2, _ = Lgraph.induced_subgraph g [ 3; 4 ] in
  Alcotest.(check int) "no edges between 3,4" 0 (Lgraph.num_edges sub2)

let test_drop_isolated () =
  let g = Lgraph.create ~vlabels:[| 0; 1; 2 |] ~edges:[ (0, 2, 5) ] in
  let g', vmap = Lgraph.drop_isolated g in
  Alcotest.(check int) "vertices" 2 (Lgraph.num_vertices g');
  Alcotest.(check (array int)) "map" [| 0; 2 |] vmap

let test_hists () =
  let g = graph_002 () in
  Alcotest.(check (list (pair int int))) "vertex hist" [ (0, 2); (1, 2); (2, 1) ]
    (Lgraph.vertex_label_hist g);
  Alcotest.(check (list (pair int int))) "edge hist" [ (0, 5) ]
    (Lgraph.edge_label_hist g);
  Alcotest.(check int) "missing" 1
    (Lgraph.hist_missing [ (0, 2); (9, 1) ] [ (0, 5) ])

let test_serialization_roundtrip () =
  let g = graph_002 () in
  let g' = Lgraph.of_string (Lgraph.to_string g) in
  Alcotest.check Tgen.graph_testable "roundtrip" g g'

let prop_serialization_roundtrip =
  QCheck.Test.make ~name:"lgraph to_string/of_string roundtrip" ~count:100
    QCheck.(pair small_int small_int)
    (fun (seed, extra) ->
      let rng = Prng.make (seed + 1) in
      let g = Tgen.random_connected_graph rng ~n:6 ~extra:(extra mod 5) ~vl:3 ~el:2 in
      Lgraph.equal_structure g (Lgraph.of_string (Lgraph.to_string g)))

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the vertex set" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 1) in
      let g = Tgen.random_graph rng ~n:8 ~m:6 ~vl:2 ~el:2 in
      let all = List.concat (Lgraph.components g) |> List.sort compare in
      all = List.init (Lgraph.num_vertices g) (fun i -> i))

let test_canon_basic () =
  let g = graph_002 () in
  Alcotest.(check bool) "self iso" true (Canon.equal_iso g g);
  let h = Lgraph.relabel_edge g 0 9 in
  Alcotest.(check bool) "label change detected" false (Canon.equal_iso g h)

let prop_canon_permutation_invariant =
  QCheck.Test.make ~name:"canonical code is permutation invariant" ~count:150
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 13) in
      let g = Tgen.random_graph rng ~n:7 ~m:8 ~vl:2 ~el:2 in
      let g' = Tgen.permuted rng g in
      Canon.code g = Canon.code g')

let prop_canon_distinguishes_labels =
  QCheck.Test.make ~name:"canonical code separates relabelled graphs" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 29) in
      let g = Tgen.random_connected_graph rng ~n:6 ~extra:3 ~vl:2 ~el:2 in
      let eid = Prng.int rng (Lgraph.num_edges g) in
      let old = (Lgraph.edge g eid).label in
      let h = Lgraph.relabel_edge g eid (old + 100) in
      Canon.code g <> Canon.code h)

let test_refine_splits_labels () =
  let g = Lgraph.create ~vlabels:[| 0; 0; 1 |] ~edges:[ (0, 1, 0); (1, 2, 0) ] in
  let colors = Canon.refine g in
  Alcotest.(check bool) "v0 and v1 split by refinement" true (colors.(0) <> colors.(1));
  Alcotest.(check bool) "v0 v2 differ" true (colors.(0) <> colors.(2))

let suite =
  [
    Alcotest.test_case "create & accessors" `Quick test_create_accessors;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "triangles" `Quick test_triangles;
    Alcotest.test_case "star edge sets" `Quick test_star_edge_sets;
    Alcotest.test_case "edge mask subgraph" `Quick test_edge_mask;
    Alcotest.test_case "delete / relabel edges" `Quick test_delete_relabel;
    Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
    Alcotest.test_case "drop isolated" `Quick test_drop_isolated;
    Alcotest.test_case "label histograms" `Quick test_hists;
    Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
    QCheck_alcotest.to_alcotest prop_serialization_roundtrip;
    QCheck_alcotest.to_alcotest prop_components_partition;
    Alcotest.test_case "canon basic" `Quick test_canon_basic;
    QCheck_alcotest.to_alcotest prop_canon_permutation_invariant;
    QCheck_alcotest.to_alcotest prop_canon_distinguishes_labels;
    Alcotest.test_case "refine splits labels" `Quick test_refine_splits_labels;
  ]
