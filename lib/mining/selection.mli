(** Feature generation for the probabilistic matrix index — paper §4.2,
    Algorithm 4.

    Features are small connected labelled graphs mined from the certain
    database [Dc] by level-wise pattern growth with canonical-form
    deduplication (refs [36, 37]). A feature is kept when it is

    - {e frequent}: [frq f = |{g : f ⊆iso gc ∧ |IN|/|Ef| >= alpha}| / |D|
      >= beta], where [Ef] is the feature's distinct-embedding set in [gc]
      and [IN] a maximum edge-disjoint subset of it (Rule 1 — many disjoint
      embeddings make the SIP bounds tight);
    - {e discriminative}: [dis f = |∩ Df'| / |Df| >= 1 + gamma] over the
      one-edge-smaller subfeatures [f'] already selected (the paper states
      [dis f > gamma]; since [dis f >= 1] whenever [Df] is non-empty we add
      the [1 +] offset so the knob actually bites — see DESIGN.md);
    - {e small}: at most [max_edges] edges (Rule 2).

    Single-vertex and single-edge features are always included (Algorithm 4
    lines 1-4); they guarantee that every relaxed query is covered by some
    feature during pruning. *)

type params = {
  alpha : float;  (** disjoint-embedding ratio threshold *)
  beta : float;  (** frequency threshold *)
  gamma : float;  (** discriminative margin *)
  max_edges : int;  (** maximum feature size in edges (the paper's maxL) *)
  emb_cap : int;  (** cap on embeddings enumerated per (feature, graph) *)
}

(** alpha = beta = gamma = 0.15, max_edges = 3, emb_cap = 64. *)
val default_params : params

type feature = {
  graph : Lgraph.t;  (** the feature pattern *)
  key : string;  (** canonical code *)
  support : int list;  (** [Df]: indices of graphs with [f ⊆iso gc] *)
  strong_support : int list;
      (** support graphs whose disjoint-embedding ratio reaches [alpha] *)
}

(** [select db params] mines and filters features over the certain graphs. *)
val select : Lgraph.t array -> params -> feature list

(** [max_disjoint_embeddings embs] — size of a maximum edge-disjoint subset
    (exact max-weight clique on the disjointness graph with unit weights,
    greedy beyond the node budget). *)
val max_disjoint_embeddings : Embedding.t list -> int

(** {1 Binary codec} — mined feature sets are part of the persisted index
    (DESIGN.md §9), so queries on a loaded index skip re-mining. *)

val encode_feature : Psst_store.enc -> feature -> unit

(** Raises [Psst_store.Store_error] on malformed data (including support
    lists that are unsorted or mention negative graph ids). *)
val decode_feature : Psst_store.dec -> feature
