lib/labeled_graph/lgraph.mli: Format Psst_util
