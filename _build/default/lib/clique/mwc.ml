module Bitset = Psst_util.Bitset

type graph = { weights : float array; adj : Bitset.t array }

let make ~weights ~edges =
  let n = Array.length weights in
  if Array.exists (fun w -> w < 0. || Float.is_nan w) weights then
    invalid_arg "Mwc.make: negative weight";
  let adj = Array.init n (fun _ -> Bitset.create n) in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Mwc.make: endpoint out of range";
      if u = v then invalid_arg "Mwc.make: self loop";
      Bitset.add adj.(u) v;
      Bitset.add adj.(v) u)
    edges;
  { weights; adj }

let num_vertices g = Array.length g.weights

let is_clique g vs =
  let rec go = function
    | [] -> true
    | v :: rest ->
      List.for_all (fun w -> Bitset.mem g.adj.(v) w) rest && go rest
  in
  go vs

let greedy_clique g =
  let n = num_vertices g in
  let order = List.init n (fun i -> i) in
  let order =
    List.sort (fun a b -> compare g.weights.(b) g.weights.(a)) order
  in
  let clique = ref [] and weight = ref 0. in
  List.iter
    (fun v ->
      if List.for_all (fun u -> Bitset.mem g.adj.(v) u) !clique then begin
        clique := v :: !clique;
        weight := !weight +. g.weights.(v)
      end)
    order;
  (List.rev !clique, !weight)

let max_weight_clique ?(node_budget = 200_000) g =
  let n = num_vertices g in
  if n = 0 then ([], 0.)
  else begin
    let best_clique = ref [] and best_weight = ref 0. in
    (let c, w = greedy_clique g in
     best_clique := c;
     best_weight := w);
    let nodes = ref 0 in
    let exception Budget in
    (* Candidates kept as a bitset; branch on the heaviest candidate. *)
    let rec expand current current_w cands =
      incr nodes;
      if !nodes > node_budget then raise Budget;
      let remaining = Bitset.fold (fun v acc -> acc +. g.weights.(v)) cands 0. in
      if current_w +. remaining > !best_weight +. 1e-15 then begin
        match
          Bitset.fold
            (fun v best ->
              match best with
              | Some u when g.weights.(u) >= g.weights.(v) -> best
              | _ -> Some v)
            cands None
        with
        | None ->
          if current_w > !best_weight then begin
            best_weight := current_w;
            best_clique := current
          end
        | Some v ->
          (* Include v. *)
          let cands_v = Bitset.inter cands g.adj.(v) in
          expand (v :: current) (current_w +. g.weights.(v)) cands_v;
          (* Exclude v. *)
          let cands' = Bitset.copy cands in
          Bitset.remove cands' v;
          expand current current_w cands'
      end
      else if current_w > !best_weight then begin
        best_weight := current_w;
        best_clique := current
      end
    in
    (try expand [] 0. (Bitset.full n) with Budget -> ());
    (List.sort compare !best_clique, !best_weight)
  end
