lib/core/bounds.mli: Lgraph Pgraph Psst_util
