lib/optim/rounding.ml: Array List Psst_util Qp
