type t = { vars : int array; data : float array }

let max_vars = 20

let is_sorted_distinct a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok

let create vars data =
  let k = Array.length vars in
  if k > max_vars then invalid_arg "Factor.create: scope too large";
  if not (is_sorted_distinct vars) then
    invalid_arg "Factor.create: vars must be sorted and distinct";
  if Array.length data <> 1 lsl k then invalid_arg "Factor.create: data size";
  if Array.exists (fun x -> x < 0. || Float.is_nan x) data then
    invalid_arg "Factor.create: negative or NaN entry";
  { vars = Array.copy vars; data = Array.copy data }

let of_fun vars f =
  let k = Array.length vars in
  create vars (Array.init (1 lsl k) f)

let scalar x = create [||] [| x |]

let vars t = Array.copy t.vars

let index_of t v =
  let rec go i =
    if i >= Array.length t.vars then None
    else if t.vars.(i) = v then Some i
    else go (i + 1)
  in
  go 0

let mentions t v = Option.is_some (index_of t v)

let value t mask = t.data.(mask)

let value_of t assign =
  let mask = ref 0 in
  Array.iteri (fun i v -> if assign v then mask := !mask lor (1 lsl i)) t.vars;
  t.data.(!mask)

let multiply a b =
  let merged =
    Array.to_list a.vars @ Array.to_list b.vars |> List.sort_uniq compare
  in
  let vars = Array.of_list merged in
  if Array.length vars > max_vars then invalid_arg "Factor.multiply: scope too large";
  (* Positions of each source variable within the merged scope. *)
  let pos_in src =
    Array.map
      (fun v ->
        let rec go i = if vars.(i) = v then i else go (i + 1) in
        go 0)
      src.vars
  in
  let pa = pos_in a and pb = pos_in b in
  let project positions mask =
    let m = ref 0 in
    Array.iteri (fun i p -> if mask land (1 lsl p) <> 0 then m := !m lor (1 lsl i)) positions;
    !m
  in
  of_fun vars (fun mask -> a.data.(project pa mask) *. b.data.(project pb mask))

let multiply_all = function
  | [] -> scalar 1.
  | f :: rest -> List.fold_left multiply f rest

let sum_out t v =
  match index_of t v with
  | None -> t
  | Some i ->
    let vars' =
      Array.of_list
        (List.filteri (fun j _ -> j <> i) (Array.to_list t.vars))
    in
    let bit = 1 lsl i in
    let low_mask = bit - 1 in
    of_fun vars' (fun m ->
        (* Re-insert a hole at position i. *)
        let base = (m land low_mask) lor ((m land lnot low_mask) lsl 1) in
        t.data.(base) +. t.data.(base lor bit))

let marginal_onto t keep =
  Array.fold_left
    (fun acc v -> if List.mem v keep then acc else sum_out acc v)
    t t.vars

let condition t v b =
  match index_of t v with
  | None -> t
  | Some i ->
    let vars' =
      Array.of_list (List.filteri (fun j _ -> j <> i) (Array.to_list t.vars))
    in
    let bit = 1 lsl i in
    let low_mask = bit - 1 in
    of_fun vars' (fun m ->
        let base = (m land low_mask) lor ((m land lnot low_mask) lsl 1) in
        t.data.(if b then base lor bit else base))

let total t = Array.fold_left ( +. ) 0. t.data

let normalize t =
  let z = total t in
  if z <= 0. then invalid_arg "Factor.normalize: zero total";
  { t with data = Array.map (fun x -> x /. z) t.data }

let sample rng t =
  let mask = Psst_util.Prng.categorical rng t.data in
  Array.to_list (Array.mapi (fun i v -> (v, mask land (1 lsl i) <> 0)) t.vars)

let iter_assignments t f = Array.iteri (fun mask x -> f mask x) t.data

let pp ppf t =
  Format.fprintf ppf "@[<v>factor over [%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    (Array.to_list t.vars);
  Array.iteri (fun mask x -> Format.fprintf ppf "@,  %d -> %g" mask x) t.data;
  Format.fprintf ppf "@]"

let equal_approx ~eps a b =
  a.vars = b.vars
  && Array.length a.data = Array.length b.data
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data
