module Bitset = Psst_util.Bitset
module Prng = Psst_util.Prng

type config = {
  emb_cap : int;
  cut_cap : int;
  mc_samples : int;
  clique_budget : int;
  tightest : bool;
  seed : int;
}

let default_config =
  {
    emb_cap = 48;
    cut_cap = 96;
    mc_samples = 800;
    clique_budget = 50_000;
    tightest = true;
    seed = 2012;
  }

type t = {
  lower : float;
  upper : float;
  lower_safe : float;
  upper_safe : float;
  embeddings : int;
  cuts : int;
}

(* Bound-computation observability (DESIGN.md §10). [mc_pool_estimates]
   vs [mc_exact_fallbacks] tracks how often the shared Monte-Carlo world
   pool had conditioning support versus falling back to variable
   elimination. *)
let m_computed = Psst_obs.counter "bounds.computed"
let m_vertex_features = Psst_obs.counter "bounds.vertex_features"
let m_no_embedding = Psst_obs.counter "bounds.no_embedding"
let m_fully_certain = Psst_obs.counter "bounds.fully_certain"
let m_embeddings = Psst_obs.counter "bounds.embeddings"
let m_cuts = Psst_obs.counter "bounds.cuts"
let m_pool_hits = Psst_obs.counter "bounds.mc_pool_estimates"
let m_pool_misses = Psst_obs.counter "bounds.mc_exact_fallbacks"

let ratio_over_pool pool ~num ~den =
  let n1 = ref 0 and n2 = ref 0 in
  Array.iter
    (fun mask ->
      if den mask then begin
        incr n2;
        if num mask then incr n1
      end)
    pool;
  if !n2 = 0 then None else Some (float_of_int !n1 /. float_of_int !n2)

let counted_ratio_over_pool pool ~num ~den =
  match ratio_over_pool pool ~num ~den with
  | Some _ as r ->
    Psst_obs.incr m_pool_hits;
    r
  | None ->
    Psst_obs.incr m_pool_misses;
    None

let sample_pool config g =
  let rng = Prng.make config.seed in
  Array.init config.mc_samples (fun _ ->
      let mask, _, _ = Pgraph.sample_world rng g in
      mask)

let estimate_conditional rng g ~num ~den ~samples =
  let pool =
    Array.init samples (fun _ ->
        let mask, _, _ = Pgraph.sample_world rng g in
        mask)
  in
  ratio_over_pool pool ~num ~den

let clamp01 x = Float.max 0. (Float.min 1. x)

(* Weight of a node in fG given its survival probability p. *)
let node_weight p =
  let p = Float.min p (1. -. 1e-12) in
  -.log (1. -. p)

(* All edges of [s] present in the world mask. *)
let all_present mask s = Bitset.subset s mask

(* All edges of [s] absent from the world mask. *)
let all_absent mask s = Bitset.disjoint s mask

let exact_all_present g vars = Velim.prob_all_present (Pgraph.factors g) vars

let exact_all_absent g vars =
  Velim.prob ~evidence:(List.map (fun v -> (v, false)) vars) (Pgraph.factors g)

(* First-fit maximal pairwise-disjoint family in index order: the paper's
   plain SIPBound picks an arbitrary disjoint set instead of optimising. *)
let first_fit_disjoint items disjoint weights =
  let chosen = ref [] and weight = ref 0. in
  Array.iteri
    (fun i it ->
      if List.for_all (fun j -> disjoint items.(j) it) !chosen then begin
        chosen := i :: !chosen;
        weight := !weight +. weights.(i)
      end)
    items;
  (List.rev !chosen, !weight)

(* Disjoint family selection: maximum-weight clique of the disjointness
   graph when [tightest], first-fit otherwise. *)
let best_disjoint_clique ~config items disjoint weights =
  if not config.tightest then first_fit_disjoint items disjoint weights
  else begin
    let n = Array.length items in
    let edges = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if disjoint items.(i) items.(j) then edges := (i, j) :: !edges
      done
    done;
    let g = Mwc.make ~weights ~edges:!edges in
    Mwc.max_weight_clique ~node_budget:config.clique_budget g
  end

let lower_of config pool g (embs : Embedding.t list) =
  let uncertain = Bitset.of_list (Bitset.capacity (List.hd embs).Embedding.edges)
      (Pgraph.uncertain_edges g)
  in
  (* Work on uncertain parts only: certain edges never fail. *)
  let sets = Array.of_list (List.map (fun e -> e.Embedding.edges) embs) in
  let usets = Array.map (fun s -> Bitset.inter s uncertain) sets in
  let n = Array.length sets in
  let overlapping i =
    List.filter
      (fun j -> j <> i && not (Bitset.disjoint usets.(i) usets.(j)))
      (List.init n (fun j -> j))
  in
  let survival = Array.make n 0. in
  for i = 0 to n - 1 do
    let others = overlapping i in
    let p =
      if others = [] then exact_all_present g (Bitset.elements usets.(i))
      else begin
        let num mask =
          all_present mask usets.(i)
          && List.for_all (fun j -> not (all_present mask usets.(j))) others
        in
        let den mask =
          List.for_all (fun j -> not (all_present mask usets.(j))) others
        in
        match counted_ratio_over_pool pool ~num ~den with
        | Some p -> p
        | None -> exact_all_present g (Bitset.elements usets.(i))
      end
    in
    survival.(i) <- clamp01 p
  done;
  let weights = Array.map node_weight survival in
  let _, z =
    best_disjoint_clique ~config usets
      (fun a b -> Bitset.disjoint a b)
      weights
  in
  let lower = 1. -. exp (-.z) in
  let lower_safe =
    Array.fold_left Float.max 0.
      (Array.map (fun s -> exact_all_present g (Bitset.elements s)) usets)
  in
  (clamp01 lower, clamp01 lower_safe)

let upper_of config pool g (embs : Embedding.t list) =
  let capacity = Bitset.capacity (List.hd embs).Embedding.edges in
  let uncertain = Bitset.of_list capacity (Pgraph.uncertain_edges g) in
  let usets = List.map (fun e -> Bitset.inter e.Embedding.edges uncertain) embs in
  (* An embedding with no uncertain edge always survives: SIP = 1 and there
     is no cut at all. Callers short-circuit that case before calling. *)
  let cuts = Transversal.minimal_hitting_sets ~cap:config.cut_cap usets in
  match cuts with
  | [] -> (1., 1., 0)
  | _ ->
    let cut_arr = Array.of_list cuts in
    let n = Array.length cut_arr in
    let overlapping i =
      List.filter
        (fun j -> j <> i && not (Bitset.disjoint cut_arr.(i) cut_arr.(j)))
        (List.init n (fun j -> j))
    in
    let activation = Array.make n 0. in
    for i = 0 to n - 1 do
      let others = overlapping i in
      let p =
        if others = [] then exact_all_absent g (Bitset.elements cut_arr.(i))
        else begin
          let num mask =
            all_absent mask cut_arr.(i)
            && List.for_all (fun j -> not (all_absent mask cut_arr.(j))) others
          in
          let den mask =
            List.for_all (fun j -> not (all_absent mask cut_arr.(j))) others
          in
          match counted_ratio_over_pool pool ~num ~den with
          | Some p -> p
          | None -> exact_all_absent g (Bitset.elements cut_arr.(i))
        end
      in
      activation.(i) <- clamp01 p
    done;
    let weights = Array.map node_weight activation in
    let _, v =
      best_disjoint_clique ~config cut_arr
        (fun a b -> Bitset.disjoint a b)
        weights
    in
    let upper = exp (-.v) in
    let upper_safe =
      Array.fold_left Float.min 1.
        (Array.map
           (fun c -> 1. -. exact_all_absent g (Bitset.elements c))
           cut_arr)
    in
    (clamp01 upper, clamp01 upper_safe, n)

let compute config ?pool g f =
  Psst_obs.incr m_computed;
  let gc = Pgraph.skeleton g in
  if Lgraph.num_edges f = 0 then begin
    (* Vertex features: vertices are deterministic, so SIP is 1 when the
       label occurs and 0 otherwise. *)
    Psst_obs.incr m_vertex_features;
    let present = Vf2.exists f gc in
    let v = if present then 1. else 0. in
    { lower = v; upper = v; lower_safe = v; upper_safe = v; embeddings = 0; cuts = 0 }
  end
  else begin
    let embs = Vf2.distinct_embeddings ~cap:config.emb_cap f gc in
    match embs with
    | [] ->
      Psst_obs.incr m_no_embedding;
      { lower = 0.; upper = 0.; lower_safe = 0.; upper_safe = 0.; embeddings = 0; cuts = 0 }
    | _ ->
      Psst_obs.add m_embeddings (List.length embs);
      let uncertain =
        Bitset.of_list (Lgraph.num_edges gc) (Pgraph.uncertain_edges g)
      in
      (* An embedding avoiding every uncertain edge survives all worlds. *)
      let fully_certain =
        List.exists (fun e -> Bitset.disjoint e.Embedding.edges uncertain) embs
      in
      if fully_certain then begin
        Psst_obs.incr m_fully_certain;
        {
          lower = 1.;
          upper = 1.;
          lower_safe = 1.;
          upper_safe = 1.;
          embeddings = List.length embs;
          cuts = 0;
        }
      end
      else begin
        let pool =
          match pool with Some p -> p | None -> sample_pool config g
        in
        let lower, lower_safe = lower_of config pool g embs in
        let upper, upper_safe, ncuts = upper_of config pool g embs in
        Psst_obs.add m_cuts ncuts;
        (* Monte-Carlo noise can cross the estimates; never report an
           inverted interval. The safe pair is exact and always ordered. *)
        let lower = Float.min lower upper in
        {
          lower;
          upper;
          lower_safe;
          upper_safe;
          embeddings = List.length embs;
          cuts = ncuts;
        }
      end
  end
