module Prng = Psst_util.Prng
module Timer = Psst_util.Timer
module Stats = Psst_util.Stats

type scale = { db_size : int; queries_per_point : int; seed : int }

let default_scale = { db_size = 120; queries_per_point = 8; seed = 2012 }
let quick_scale = { db_size = 40; queries_per_point = 3; seed = 2012 }

(* Scaled counterparts of the paper's defaults (§6): ε = 0.5, δ = 4 -> 2,
   query size 150 -> 8 edges, feature params 0.15, maxL 150 -> 3 edges. *)
let default_epsilon = 0.5
let default_delta = 2
let default_qsize = 8

(* Graphs are kept at <= ~20 edges so the paper's index-free Exact
   competitor (2^m possible worlds) terminates; organisms share a
   substantial motif core so the Fig 14 classification experiment is
   non-degenerate. *)
let dataset_params scale =
  {
    Generator.default_params with
    num_graphs = scale.db_size;
    num_organisms = 5;
    min_vertices = 9;
    max_vertices = 12;
    extra_edge_ratio = 0.2;
    motif_edges = 8;
    (* a rich label alphabet keeps cross-organism structural collisions
       rare, so the Fig 14 contrast is driven by the probability models *)
    num_vertex_labels = 10;
    num_edge_labels = 3;
    foreign_motif_prob = 0.5;
    seed = scale.seed;
  }

let mining_params = { Selection.default_params with max_edges = 3 }

(* Corpus for the feature-generation study (Fig 12 and the SIPBound arms):
   a poorer label alphabet gives the miner a rich frequent-pattern space,
   so the maxL / alpha / beta / gamma knobs actually bite. *)
let dataset_params_mining scale =
  { (dataset_params scale) with num_vertex_labels = 5; num_edge_labels = 2 }

let make_dataset scale = Generator.generate (dataset_params scale)

let make_db ?(mining = mining_params) ?(bounds = Bounds.default_config) graphs =
  Query.index_database ~mining ~bounds graphs

let make_queries scale ds ~edges =
  let rng = Prng.make (scale.seed + 777) in
  List.init scale.queries_per_point (fun _ -> Generator.extract_query rng ds ~edges)

let pct x = 100. *. x

let hr ppf title =
  Format.fprintf ppf "@.=== %s ===@." title

(* ------------------------------------------------------------------ *)
(* Fig 9: verification — Exact vs SMP runtime and SMP quality vs query
   size.                                                               *)
(* ------------------------------------------------------------------ *)

let fig9 ?(scale = default_scale) ppf =
  hr ppf "Figure 9: verification (Exact vs SMP) vs query size";
  let ds = make_dataset scale in
  let db = make_db ds.graphs in
  (* Exact is the paper's index-free competitor: full possible-world
     enumeration. Its per-candidate cost is timed on a few pairs per query
     size; SMP quality is judged against the exact SSP values. *)
  let naive_pairs_per_size = 3 in
  Format.fprintf ppf
    "@[<v>%-6s %12s %12s %10s %10s %8s@]@." "size" "Exact(ms)" "SMP(ms)"
    "prec(%)" "recall(%)" "pairs";
  List.iter
    (fun qsize ->
      let queries = make_queries scale ds ~edges:qsize in
      let t_exact = ref [] and t_smp = ref [] in
      let precs = ref [] and recs = ref [] in
      let pairs = ref 0 in
      List.iter
        (fun (q, _) ->
          let relaxed, _ = Relax.relaxed_set q ~delta:default_delta in
          let cands =
            Structural.candidates db.Query.structural ~skeleton:(Corpus.skeleton db.Query.graphs) q
              ~delta:default_delta
          in
          let exact_answers = ref [] and smp_answers = ref [] in
          List.iter
            (fun gi ->
              let g = Corpus.get db.Query.graphs gi in
              (try
                 let v = Verify.exact g relaxed in
                 if v >= default_epsilon then exact_answers := gi :: !exact_answers;
                 incr pairs;
                 if List.length !t_exact < naive_pairs_per_size then begin
                   let _, t = Timer.time (fun () -> Verify.exact_naive g relaxed) in
                   t_exact := (t *. 1000.) :: !t_exact
                 end;
                 let rng = Prng.make (gi + 31) in
                 let v', t' = Timer.time (fun () -> Verify.smp rng g relaxed) in
                 t_smp := (t' *. 1000.) :: !t_smp;
                 if v' >= default_epsilon then smp_answers := gi :: !smp_answers
               with Failure _ -> ()))
            cands;
          let p, r =
            Stats.precision_recall ~returned:!smp_answers ~truth:!exact_answers
          in
          precs := p :: !precs;
          recs := r :: !recs)
        queries;
      Format.fprintf ppf "@[<v>q%-5d %12.3f %12.3f %10.1f %10.1f %8d@]@." qsize
        (Stats.mean !t_exact) (Stats.mean !t_smp) (pct (Stats.mean !precs))
        (pct (Stats.mean !recs)) !pairs)
    [ 4; 6; 8; 10; 12 ]

(* ------------------------------------------------------------------ *)
(* Fig 10: candidate size / pruning time vs probability threshold.     *)
(* ------------------------------------------------------------------ *)

let prune_stats ~mode ~certified pmi structural_cands relaxed epsilon =
  let rng = Prng.make 11 in
  let undecided = ref 0 in
  let t =
    Timer.time_only (fun () ->
        let prepared = Pruning.prepare pmi ~relaxed in
        List.iter
          (fun gi ->
            let r =
              Pruning.evaluate ~certified rng pmi prepared ~graph:gi ~epsilon
                ~mode
            in
            match r.Pruning.decision with
            | `Candidate -> incr undecided
            | `Accepted | `Pruned -> ())
          structural_cands)
  in
  (!undecided, t)

let fig10 ?(scale = default_scale) ppf =
  hr ppf "Figure 10: candidates & pruning time vs probability threshold";
  let ds = make_dataset scale in
  let db = make_db ds.graphs in
  let queries = make_queries scale ds ~edges:default_qsize in
  Format.fprintf ppf "@[<v>%-6s %10s %10s %14s %12s %12s %16s@]@." "eps"
    "Structure" "SSPBound" "OPT-SSPBound" "t_struct(s)" "t_ssp(s)" "t_opt-ssp(s)";
  List.iter
    (fun epsilon ->
      let acc = Array.make 3 [] and times = Array.make 3 [] in
      List.iter
        (fun (q, _) ->
          let relaxed, _ = Relax.relaxed_set q ~delta:default_delta in
          let cands, t_struct =
            Timer.time (fun () ->
                Structural.candidates db.Query.structural ~skeleton:(Corpus.skeleton db.Query.graphs) q
                  ~delta:default_delta)
          in
          let n_rand, t_rand =
            prune_stats ~mode:Pruning.Random_pick ~certified:false db.Query.pmi
              cands relaxed epsilon
          in
          let n_opt, t_opt =
            prune_stats ~mode:Pruning.Optimized ~certified:false db.Query.pmi
              cands relaxed epsilon
          in
          acc.(0) <- float_of_int (List.length cands) :: acc.(0);
          acc.(1) <- float_of_int n_rand :: acc.(1);
          acc.(2) <- float_of_int n_opt :: acc.(2);
          times.(0) <- t_struct :: times.(0);
          times.(1) <- t_rand :: times.(1);
          times.(2) <- t_opt :: times.(2))
        queries;
      Format.fprintf ppf "@[<v>%-6.1f %10.1f %10.1f %14.1f %12.4f %12.4f %16.4f@]@."
        epsilon (Stats.mean acc.(0)) (Stats.mean acc.(1)) (Stats.mean acc.(2))
        (Stats.mean times.(0)) (Stats.mean times.(1)) (Stats.mean times.(2)))
    [ 0.3; 0.4; 0.5; 0.6; 0.7 ]

(* ------------------------------------------------------------------ *)
(* Fig 11: candidate size / pruning time vs distance threshold.        *)
(* ------------------------------------------------------------------ *)

let fig11 ?(scale = default_scale) ppf =
  hr ppf "Figure 11: candidates & pruning time vs subgraph distance threshold";
  let ds = Generator.generate (dataset_params_mining scale) in
  let skeletons = Array.map Pgraph.skeleton ds.graphs in
  let features = Selection.select skeletons mining_params in
  let structural = Structural.build skeletons features ~emb_cap:64 in
  let pmi_loose =
    Pmi.build ~config:{ Bounds.default_config with tightest = false } ds.graphs
      features
  in
  let pmi_tight = Pmi.build ~config:Bounds.default_config ds.graphs features in
  let queries = make_queries scale ds ~edges:default_qsize in
  Format.fprintf ppf "@[<v>%-6s %10s %10s %14s %12s %12s %16s@]@." "delta"
    "Structure" "SIPBound" "OPT-SIPBound" "t_struct(s)" "t_sip(s)" "t_opt-sip(s)";
  List.iter
    (fun delta ->
      let acc = Array.make 3 [] and times = Array.make 3 [] in
      List.iter
        (fun (q, _) ->
          let relaxed, _ = Relax.relaxed_set q ~delta in
          let cands, t_struct =
            Timer.time (fun () -> Structural.candidates structural ~skeleton:(fun gi -> skeletons.(gi)) q ~delta)
          in
          let n_loose, t_loose =
            prune_stats ~mode:Pruning.Optimized ~certified:false pmi_loose cands
              relaxed default_epsilon
          in
          let n_tight, t_tight =
            prune_stats ~mode:Pruning.Optimized ~certified:false pmi_tight cands
              relaxed default_epsilon
          in
          acc.(0) <- float_of_int (List.length cands) :: acc.(0);
          acc.(1) <- float_of_int n_loose :: acc.(1);
          acc.(2) <- float_of_int n_tight :: acc.(2);
          times.(0) <- t_struct :: times.(0);
          times.(1) <- t_loose :: times.(1);
          times.(2) <- t_tight :: times.(2))
        queries;
      Format.fprintf ppf "@[<v>%-6d %10.1f %10.1f %14.1f %12.4f %12.4f %16.4f@]@."
        delta (Stats.mean acc.(0)) (Stats.mean acc.(1)) (Stats.mean acc.(2))
        (Stats.mean times.(0)) (Stats.mean times.(1)) (Stats.mean times.(2)))
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Fig 12: feature-generation parameter sweeps.                        *)
(* ------------------------------------------------------------------ *)

let candidates_with db queries ~mode ~epsilon ~delta =
  let acc = ref [] in
  List.iter
    (fun (q, _) ->
      let relaxed, _ = Relax.relaxed_set q ~delta in
      let cands =
        Structural.candidates db.Query.structural ~skeleton:(Corpus.skeleton db.Query.graphs) q ~delta
      in
      let n, _ =
        prune_stats ~mode ~certified:false db.Query.pmi cands relaxed epsilon
      in
      acc := float_of_int n :: !acc)
    queries;
  Stats.mean !acc

let structure_candidates db queries ~delta =
  Stats.mean
    (List.map
       (fun (q, _) ->
         float_of_int
           (List.length
              (Structural.candidates db.Query.structural ~skeleton:(Corpus.skeleton db.Query.graphs) q
                 ~delta)))
       queries)

let fig12 ?(scale = default_scale) ppf =
  hr ppf "Figure 12: impact of feature-generation parameters";
  let ds = Generator.generate (dataset_params_mining scale) in
  let queries = make_queries scale ds ~edges:default_qsize in
  (* (a) maxL: candidate size of the SSP arms. *)
  Format.fprintf ppf "@[<v>(a) %-6s %10s %10s %14s@]@." "maxL" "Structure"
    "SSPBound" "OPT-SSPBound";
  List.iter
    (fun max_edges ->
      let db = make_db ~mining:{ mining_params with max_edges } ds.graphs in
      let s = structure_candidates db queries ~delta:default_delta in
      let rand =
        candidates_with db queries ~mode:Pruning.Random_pick
          ~epsilon:default_epsilon ~delta:default_delta
      in
      let opt =
        candidates_with db queries ~mode:Pruning.Optimized
          ~epsilon:default_epsilon ~delta:default_delta
      in
      Format.fprintf ppf "@[<v>    %-6d %10.1f %10.1f %14.1f@]@." max_edges s rand opt)
    [ 1; 2; 3; 4 ];
  (* (b) alpha: candidate size of the SIP arms. *)
  Format.fprintf ppf "@[<v>(b) %-6s %10s %10s %14s@]@." "alpha" "Structure"
    "SIPBound" "OPT-SIPBound";
  List.iter
    (fun alpha ->
      let mining = { mining_params with alpha } in
      let skeletons = Array.map Pgraph.skeleton ds.graphs in
      let features = Selection.select skeletons mining in
      let structural = Structural.build skeletons features ~emb_cap:64 in
      let pmi_loose =
        Pmi.build ~config:{ Bounds.default_config with tightest = false }
          ds.graphs features
      in
      let pmi_tight = Pmi.build ~config:Bounds.default_config ds.graphs features in
      let counts which_pmi =
        Stats.mean
          (List.map
             (fun (q, _) ->
               let relaxed, _ = Relax.relaxed_set q ~delta:default_delta in
               let cands =
                 Structural.candidates structural ~skeleton:(fun gi -> skeletons.(gi)) q ~delta:default_delta
               in
               let n, _ =
                 prune_stats ~mode:Pruning.Optimized ~certified:false which_pmi
                   cands relaxed default_epsilon
               in
               float_of_int n)
             queries)
      in
      let s =
        Stats.mean
          (List.map
             (fun (q, _) ->
               float_of_int
                 (List.length
                    (Structural.candidates structural ~skeleton:(fun gi -> skeletons.(gi)) q
                       ~delta:default_delta)))
             queries)
      in
      Format.fprintf ppf "@[<v>    %-6.2f %10.1f %10.1f %14.1f@]@." alpha s
        (counts pmi_loose) (counts pmi_tight))
    [ 0.05; 0.1; 0.15; 0.2; 0.25 ];
  (* (c) beta: index building time. *)
  Format.fprintf ppf "@[<v>(c) %-6s %16s %18s@]@." "beta" "t_structure(s)"
    "t_opt-sipbound(s)";
  List.iter
    (fun beta ->
      let mining = { mining_params with beta } in
      let skeletons = Array.map Pgraph.skeleton ds.graphs in
      let features, t_mine = Timer.time (fun () -> Selection.select skeletons mining) in
      let _, t_struct =
        Timer.time (fun () -> Structural.build skeletons features ~emb_cap:64)
      in
      let pmi = Pmi.build ~config:Bounds.default_config ds.graphs features in
      Format.fprintf ppf "@[<v>    %-6.2f %16.3f %18.3f@]@." beta
        (t_mine +. t_struct)
        (t_mine +. Pmi.build_seconds pmi))
    [ 0.05; 0.1; 0.15; 0.2; 0.25 ];
  (* (d) gamma: index size. *)
  Format.fprintf ppf "@[<v>(d) %-6s %16s %18s@]@." "gamma" "structure(cells)"
    "pmi(entries)";
  List.iter
    (fun gamma ->
      let mining = { mining_params with gamma } in
      let skeletons = Array.map Pgraph.skeleton ds.graphs in
      let features = Selection.select skeletons mining in
      let structural = Structural.build skeletons features ~emb_cap:64 in
      let pmi = Pmi.build ~config:Bounds.default_config ds.graphs features in
      Format.fprintf ppf "@[<v>    %-6.2f %16d %18d@]@." gamma
        (Structural.size_cells structural)
        (Pmi.filled_entries pmi))
    [ 0.05; 0.1; 0.15; 0.2; 0.25 ]

(* ------------------------------------------------------------------ *)
(* Fig 13: total query time vs database size — PMI vs Exact.           *)
(* ------------------------------------------------------------------ *)

let fig13 ?(scale = default_scale) ppf =
  hr ppf "Figure 13: total query processing time vs database size";
  Format.fprintf ppf "@[<v>%-8s %12s %12s@]@." "dbsize" "PMI(s)" "Exact(s)";
  let sizes = List.map (fun m -> max 10 (scale.db_size * m / 3)) [ 1; 2; 3; 4; 5 ] in
  let largest = List.fold_left max 0 sizes in
  (* Fig 13 runs on a reduced corpus (<= ~20 uncertain edges per graph) so
     the Exact competitor's 2^m possible-world scan terminates at all — the
     paper likewise stops plotting Exact once it passes 1000 s. Both arms
     use the same corpus. Datasets generated from one seed are
     prefix-consistent, so Exact's per-graph enumeration is measured once
     on the largest corpus and the scan time of a size-k database is the
     sum over its prefix. A single representative query drives the
     measurement — the world loop dominates; the query only changes the
     cheap per-world check. *)
  let fig13_params db_size =
    {
      (dataset_params { scale with db_size }) with
      min_vertices = 8;
      max_vertices = 10;
      extra_edge_ratio = 0.15;
      motif_edges = 6;
    }
  in
  let make_dataset s = Generator.generate (fig13_params s.db_size) in
  let big = make_dataset { scale with db_size = largest } in
  let probe_q, _ =
    Generator.extract_query (Prng.make (scale.seed + 779)) big
      ~edges:default_qsize
  in
  let probe_relaxed, _ = Relax.relaxed_set probe_q ~delta:default_delta in
  let per_graph =
    Array.map
      (fun g ->
        Timer.time_only (fun () ->
            try ignore (Verify.exact_naive g probe_relaxed) with Failure _ -> ()))
      big.Generator.graphs
  in
  let config =
    { Query.default_config with epsilon = default_epsilon; delta = default_delta }
  in
  List.iter
    (fun db_size ->
      let sub_scale = { scale with db_size } in
      let ds = make_dataset sub_scale in
      let db = make_db ds.graphs in
      let queries = make_queries sub_scale ds ~edges:default_qsize in
      let t_pmi =
        Stats.mean
          (List.map
             (fun (q, _) -> Timer.time_only (fun () -> ignore (Query.run db q config)))
             queries)
      in
      let t_exact = ref 0. in
      for gi = 0 to db_size - 1 do
        t_exact := !t_exact +. per_graph.(gi)
      done;
      Format.fprintf ppf "@[<v>%-8d %12.3f %12.3f@]@." db_size t_pmi !t_exact)
    sizes

(* ------------------------------------------------------------------ *)
(* Fig 14: answer quality, correlated vs independent model.            *)
(* ------------------------------------------------------------------ *)

let fig14 ?(scale = default_scale) ppf =
  hr ppf "Figure 14: query quality, COR vs IND, vs probability threshold";
  let ds = make_dataset scale in
  let db_cor = make_db ds.graphs in
  let db_ind = make_db (Generator.independent_db ds) in
  (* Queries come from the organisms' shared motif cores, so "same
     organism" is a structurally meaningful ground truth (paper §6). *)
  (* delta = 1 keeps SSP values in the regime where the two probability
     models actually disagree; with heavier relaxation the union over
     relaxed embeddings saturates towards 1 under both models. *)
  let fig14_delta = 1 in
  let rng = Prng.make (scale.seed + 778) in
  let queries =
    List.init scale.queries_per_point (fun _ ->
        Generator.extract_query ~from_motif:true rng ds ~edges:6)
  in
  Format.fprintf ppf "@[<v>%-6s %10s %10s %10s %10s@]@." "eps" "COR-P(%)"
    "COR-R(%)" "IND-P(%)" "IND-R(%)";
  List.iter
    (fun epsilon ->
      let config = { Query.default_config with epsilon; delta = fig14_delta } in
      let quality db =
        let ps = ref [] and rs = ref [] in
        List.iter
          (fun (q, org) ->
            let out = Query.run db q config in
            let truth = Generator.organism_members ds org in
            let p, r = Stats.precision_recall ~returned:out.Query.answers ~truth in
            ps := p :: !ps;
            rs := r :: !rs)
          queries;
        (pct (Stats.mean !ps), pct (Stats.mean !rs))
      in
      let cp, cr = quality db_cor in
      let ip, ir = quality db_ind in
      Format.fprintf ppf "@[<v>%-6.1f %10.1f %10.1f %10.1f %10.1f@]@." epsilon cp
        cr ip ir)
    [ 0.3; 0.4; 0.5; 0.6; 0.7 ]

(* ------------------------------------------------------------------ *)
(* Ablations.                                                          *)
(* ------------------------------------------------------------------ *)

let ablations ?(scale = default_scale) ppf =
  hr ppf "Ablation A1: SIP bound quality (vs exact SIP)";
  let ds =
    Generator.generate
      { (dataset_params_mining { scale with db_size = min scale.db_size 40 }) with
        min_vertices = 7; max_vertices = 10 }
  in
  let skeletons = Array.map Pgraph.skeleton ds.Generator.graphs in
  let features = Selection.select skeletons mining_params in
  let arms =
    [
      ("paper+clique", Bounds.default_config, false);
      ("paper+first-fit", { Bounds.default_config with tightest = false }, false);
      ("certified", Bounds.default_config, true);
    ]
  in
  Format.fprintf ppf "@[<v>%-18s %12s %14s %10s@]@." "bounds" "mean width"
    "violations(%)" "pairs";
  List.iter
    (fun (name, config, use_safe) ->
      let widths = ref [] and violations = ref 0 and pairs = ref 0 in
      List.iter
        (fun (f : Selection.feature) ->
          if Lgraph.num_edges f.graph >= 1 then
            List.iter
              (fun gi ->
                let g = ds.Generator.graphs.(gi) in
                match Exact.sip g f.graph with
                | exception Failure _ -> ()
                | sip ->
                  let b = Bounds.compute config g f.graph in
                  let lo, hi =
                    if use_safe then (b.Bounds.lower_safe, b.Bounds.upper_safe)
                    else (b.Bounds.lower, b.Bounds.upper)
                  in
                  incr pairs;
                  widths := (hi -. lo) :: !widths;
                  if sip < lo -. 1e-9 || sip > hi +. 1e-9 then incr violations)
              f.support)
        features;
      Format.fprintf ppf "@[<v>%-18s %12.4f %14.2f %10d@]@." name
        (Stats.mean !widths)
        (100. *. float_of_int !violations /. float_of_int (max 1 !pairs))
        !pairs)
    arms;

  hr ppf "Ablation A2: Usim assembly (greedy cover vs random pick)";
  let db = make_db ds.Generator.graphs in
  let queries = make_queries scale ds ~edges:6 in
  Format.fprintf ppf "@[<v>%-14s %12s %14s@]@." "assembly" "mean Usim"
    "pruned(%) @0.5";
  List.iter
    (fun (name, mode) ->
      let values = ref [] and pruned = ref 0 and total = ref 0 in
      List.iter
        (fun (q, _) ->
          let relaxed, _ = Relax.relaxed_set q ~delta:default_delta in
          let prepared = Pruning.prepare db.Query.pmi ~relaxed in
          let cands =
            Structural.candidates db.Query.structural ~skeleton:(Corpus.skeleton db.Query.graphs) q
              ~delta:default_delta
          in
          let rng = Prng.make 3 in
          List.iter
            (fun gi ->
              let u =
                Pruning.usim ~certified:false rng db.Query.pmi prepared
                  ~graph:gi ~mode
              in
              values := u :: !values;
              incr total;
              if u < 0.5 then incr pruned)
            cands)
        queries;
      Format.fprintf ppf "@[<v>%-14s %12.4f %14.1f@]@." name
        (Stats.mean !values)
        (100. *. float_of_int !pruned /. float_of_int (max 1 !total)))
    [ ("greedy-cover", Pruning.Optimized); ("random-pick", Pruning.Random_pick) ];

  hr ppf "Ablation A3: SMP accuracy and time vs tau";
  Format.fprintf ppf "@[<v>%-8s %10s %12s %12s@]@." "tau" "samples"
    "mean |err|" "time(ms)";
  let pairs =
    List.concat_map
      (fun (q, _) ->
        let relaxed, _ = Relax.relaxed_set q ~delta:default_delta in
        Structural.candidates db.Query.structural ~skeleton:(Corpus.skeleton db.Query.graphs) q
          ~delta:default_delta
        |> List.filteri (fun i _ -> i < 3)
        |> List.filter_map (fun gi ->
               let g = ds.Generator.graphs.(gi) in
               match Verify.exact g relaxed with
               | exception Failure _ -> None
               | exact -> Some (g, relaxed, exact)))
      queries
  in
  List.iter
    (fun tau ->
      let config = { Verify.default_config with tau } in
      let errs = ref [] and times = ref [] in
      List.iteri
        (fun i (g, relaxed, exact) ->
          let rng = Prng.make (i + 3) in
          let est, t = Timer.time (fun () -> Verify.smp ~config rng g relaxed) in
          errs := Float.abs (est -. exact) :: !errs;
          times := (t *. 1000.) :: !times)
        pairs;
      Format.fprintf ppf "@[<v>%-8.2f %10d %12.4f %12.3f@]@." tau
        (Verify.num_samples config) (Stats.mean !errs) (Stats.mean !times))
    [ 0.3; 0.2; 0.1; 0.05 ];

  hr ppf "Ablation A4: VF2 vs Ullmann subgraph isomorphism";
  Format.fprintf ppf "@[<v>%-10s %14s %14s %10s@]@." "matcher" "exists(us)"
    "count-all(us)" "agree";
  let tasks =
    List.concat_map
      (fun (q, _) ->
        Array.to_list skeletons |> List.filteri (fun i _ -> i < 10)
        |> List.map (fun gc -> (q, gc)))
      queries
  in
  let time_matcher exists count =
    let t_e = ref [] and t_c = ref [] in
    List.iter
      (fun (q, gc) ->
        let _, te = Timer.time (fun () -> exists q gc) in
        let _, tc = Timer.time (fun () -> count q gc) in
        t_e := (te *. 1e6) :: !t_e;
        t_c := (tc *. 1e6) :: !t_c)
      tasks;
    (Stats.mean !t_e, Stats.mean !t_c)
  in
  let agree =
    List.for_all (fun (q, gc) -> Vf2.exists q gc = Ullmann.exists q gc) tasks
  in
  let ve, vc = time_matcher Vf2.exists (fun q g -> ignore (Vf2.count ~limit:256 q g)) in
  let ue, uc =
    time_matcher Ullmann.exists (fun q g -> ignore (Ullmann.count ~limit:256 q g))
  in
  Format.fprintf ppf "@[<v>%-10s %14.1f %14.1f %10s@]@." "vf2" ve vc "";
  Format.fprintf ppf "@[<v>%-10s %14.1f %14.1f %10b@]@." "ullmann" ue uc agree

(* ------------------------------------------------------------------ *)
(* Parallel execution: domain sweep over the Fig 9 workload.           *)
(* ------------------------------------------------------------------ *)

let parallel ?(scale = default_scale) ppf =
  hr ppf "Parallel execution: domain sweep over the Fig 9 workload";
  let ds = make_dataset scale in
  let db = make_db ds.graphs in
  (* The Fig 9 corpus and query distribution, widened to a batch so the
     heavy-traffic path has enough concurrent queries to fill the pool. *)
  let rng = Prng.make (scale.seed + 777) in
  let nq = max 8 (2 * scale.queries_per_point) in
  let queries =
    List.init nq (fun _ -> fst (Generator.extract_query rng ds ~edges:default_qsize))
  in
  let config =
    { Query.default_config with epsilon = default_epsilon; delta = default_delta }
  in
  Format.fprintf ppf "%d queries, db size %d, %d domains available@." nq
    scale.db_size
    (Psst_util.Pool.default_domains ());
  Format.fprintf ppf "@[<v>%-8s %12s %10s %14s %14s %10s@]@." "domains"
    "batch(s)" "speedup" "verify-cpu(s)" "verify-par" "identical";
  let baseline = ref None in
  List.iter
    (fun domains ->
      let outcomes, t =
        Timer.time (fun () -> Query.run_batch ~domains db queries config)
      in
      let base_t, base_answers =
        match !baseline with
        | None ->
          baseline := Some (t, List.map (fun o -> o.Query.answers) outcomes);
          (t, List.map (fun o -> o.Query.answers) outcomes)
        | Some b -> b
      in
      let identical =
        List.for_all2 (fun a o -> a = o.Query.answers) base_answers outcomes
      in
      let verify_cpu =
        List.fold_left
          (fun acc o -> acc +. o.Query.stats.t_verification_cpu)
          0. outcomes
      in
      let verify_wall =
        List.fold_left
          (fun acc o -> acc +. o.Query.stats.t_verification)
          0. outcomes
      in
      Format.fprintf ppf "@[<v>%-8d %12.3f %9.2fx %14.3f %13.2fx %10b@]@."
        domains t (base_t /. t) verify_cpu
        (if verify_wall > 0. then verify_cpu /. verify_wall else 1.)
        identical)
    [ 1; 2; 4; 8 ]

let all ?(scale = default_scale) ppf =
  fig9 ~scale ppf;
  fig10 ~scale ppf;
  fig11 ~scale ppf;
  fig12 ~scale ppf;
  fig13 ~scale ppf;
  fig14 ~scale ppf;
  ablations ~scale ppf
