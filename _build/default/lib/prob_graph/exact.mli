(** Exact probability computations on probabilistic graphs — the paper's
    [Exact] competitor and the ground truth for tests.

    All of these are exponential in the worst case (the problems are
    #P-complete, paper Thm 2); they are meant for small graphs / features. *)

(** [prob_any_present t sets] is the probability that at least one of the
    given edge sets (bitsets over the skeleton's edge ids) is fully present
    in a random possible world — the DNF probability behind Lemma 1 and
    Eq 10. Computed over the marginal of the union scope when it fits in a
    factor, falling back to inclusion-exclusion with memoised conjunction
    probabilities. Raises [Failure] beyond the documented guards
    (union scope > {!Factor.max_vars} and > 22 minimal sets). *)
val prob_any_present : Pgraph.t -> Psst_util.Bitset.t list -> float

(** [prob_any_present_naive t sets] — same value as {!prob_any_present},
    computed by brute-force enumeration of {e every} possible world over
    all uncertain edges, i.e. with the cost profile of the paper's
    index-free Exact competitor (exponential in the number of uncertain
    edges; guard at 26). The enumeration runs even when [sets] is empty —
    an index-free scan cannot know the answer is 0 without looking at the
    worlds. Used by the Fig 9/13 experiment arms. *)
val prob_any_present_naive : Pgraph.t -> Psst_util.Bitset.t list -> float

(** [sip t f] is the exact subgraph-isomorphism probability Pr(f ⊆iso t)
    (Def 6): the probability that some embedding of [f] in the skeleton
    survives. [cap] bounds the number of distinct embeddings collected
    (default 512; raising [Failure] if exceeded, since dropping embeddings
    would silently under-estimate). *)
val sip : ?cap:int -> Pgraph.t -> Lgraph.t -> float

(** [ssp t q ~delta] is the exact subgraph-similarity probability
    Pr(q ⊆sim t) (Def 9) by brute-force possible-world enumeration;
    exponential in the number of uncertain edges. *)
val ssp : Pgraph.t -> Lgraph.t -> delta:int -> float

(** [ssp_of_embeddings t sets] — Lemma 1 route: given the edge sets of all
    embeddings of all relaxed queries, the exact SSP is the probability any
    of them is fully present. Equivalent to {!prob_any_present}; exposed
    under this name for readability at call sites. *)
val ssp_of_embeddings : Pgraph.t -> Psst_util.Bitset.t list -> float
