(** Horizontal sharding of the query database (DESIGN.md §14).

    A corpus of [n] graphs is split into contiguous shards, each an
    independently stored and independently servable {!Query.database}
    whose [base] offset maps its local graph ids back to corpus-global
    ones. Because every per-graph verdict of the query pipeline draws
    from PRNG streams keyed on the {e global} id, the union of per-shard
    T-PS answers — and the threshold-aware merge of per-shard top-k
    lists — is bit-identical to the monolithic answer; the test suite
    pins that invariant differentially and property-based.

    On disk a deployment is one {e manifest} file (kind [Manifest],
    written last, atomically — an interrupted split leaves either the
    complete new deployment or no manifest at all) plus one
    [Database]-kind store file per shard, each carrying its range and
    fingerprint so a mismatched or stale file is rejected at load. *)

(** One shard's slot in the manifest. [path] is relative to the manifest
    file's directory. *)
type entry = {
  sid : int;  (** shard index, dense from 0 *)
  base : int;  (** global id of the shard's first graph *)
  count : int;
  path : string;
  fingerprint : int32;  (** {!Pgraph_io.db_fingerprint} of the shard's graphs *)
}

type manifest = {
  total : int;  (** corpus size: sum of the entry counts *)
  corpus_fingerprint : int32;  (** fingerprint of the whole corpus *)
  entries : entry list;  (** ordered by [sid]; ranges tile [0 .. total-1] *)
}

(** {1 Split planning} *)

(** A shard closes when it would exceed [max_graphs] graphs {e or}
    [max_cost] estimated PMI build cost (whichever comes first); both
    bounds are per shard. *)
type budget = { max_graphs : int; max_cost : float }

(** Estimated PMI build cost of one graph's column: 1 + the number of
    filled PMI entries in it (each filled entry was one SIP bound
    computation — the dominant offline cost). Deterministic in the
    database contents. *)
val column_cost : Query.database -> int -> float

(** [plan_budget db budget] — contiguous [(base, count)] ranges packed
    greedily left to right under [budget]. Deterministic in [db].
    [Invalid_argument] unless [max_graphs >= 1]. *)
val plan_budget : Query.database -> budget -> (int * int) list

(** [plan_even ~parts ~total] — [parts] contiguous ranges of as-equal-as-
    possible sizes (the first [total mod parts] ranges are one longer).
    Empty ranges are dropped when [parts > total]. *)
val plan_even : parts:int -> total:int -> (int * int) list

(** {1 In-memory slicing and merging} *)

(** [sub_database db ~base ~count] — the contiguous slice as a
    self-contained database: graphs, skeletons and index columns sliced,
    feature support lists rebased, [base] offset composed with
    [db.base]. Nothing is recomputed, so every per-graph bound and count
    is bit-identical to the monolithic one. *)
val sub_database : Query.database -> base:int -> count:int -> Query.database

(** [merge parts] reassembles consecutive slices (ordered, ranges
    tiling their union) into one database with the first part's [base].
    [merge (List.map (sub_database db) plan)] reproduces [db]'s graphs
    and indexes bit-exactly. [Invalid_argument] on gaps, overlaps, or
    parts with mismatched index parameters. *)
val merge : Query.database list -> Query.database

(** {1 Answer merging (scatter-gather)} *)

(** [merge_answers per_shard] — the T-PS union: shards are disjoint, so
    this is a sort of the concatenation (global ids). *)
val merge_answers : int list list -> int list

(** [merge_stats per_shard] — corpus-level {!Query.stats}: candidate and
    degraded counters sum; [relaxed_count] (query-side, equal across
    shards) takes the max, as do the truncation flag, wall-clock phase
    times and [verify_domains]; CPU verification time sums. The summed
    counters equal the monolithic run's bit-for-bit (per-candidate
    verdicts are shard-independent). *)
val merge_stats : Query.stats list -> Query.stats

(** [merge_topk ~k per_shard] — threshold-aware merge of per-shard top-k
    hit lists: sort the union by (ssp desc, graph asc), keep [k]. With
    {!Topk}'s clamped SSPs this equals the monolithic [Topk.run] hit
    list exactly, ties broken deterministically by global id. *)
val merge_topk : k:int -> Topk.hit list list -> Topk.hit list

(** {1 Persistence} *)

(** [split_to_files ~manifest_path db plan] writes one shard store file
    per range — [<manifest basename without extension>.shard<k>] next to
    the manifest — then the manifest itself, last and atomically: a
    crash anywhere mid-split leaves the previous deployment's manifest
    (or none) intact and never a manifest naming half-written shards.
    Returns the manifest. [~flat:true] writes each shard as the succinct
    mmap-ready image ({!Query.save_database} with [~flat:true]), so
    workers can cold-start with {!load_shard}'s [~mmap:true]. *)
val split_to_files :
  ?flat:bool ->
  manifest_path:string ->
  Query.database ->
  (int * int) list ->
  manifest

val write_manifest : string -> manifest -> unit

(** [load_manifest path] — validates ranges are dense, tiling and
    consistent with [total]; raises [Psst_store.Store_error] on any
    anomaly. *)
val load_manifest : string -> manifest

(** [load_shard ~manifest_path m sid] — loads the shard's database file
    (resolving its relative path against the manifest's directory) and
    validates its range and fingerprint against the manifest entry, so a
    stale or foreign shard file is rejected, never silently served.
    [~salvage:true] applies {!Query.load_database}'s PMI self-healing;
    [~mmap:true] memory-maps a flat shard image zero-copy (see
    {!Query.load_database}) — the manifest validation runs either way. *)
val load_shard :
  ?salvage:bool ->
  ?mmap:bool ->
  manifest_path:string ->
  manifest ->
  int ->
  Query.database

(** [load_all ~manifest_path m] — every shard, in [sid] order. *)
val load_all :
  ?salvage:bool ->
  ?mmap:bool ->
  manifest_path:string ->
  manifest ->
  Query.database list
