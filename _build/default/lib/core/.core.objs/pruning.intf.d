lib/core/pruning.mli: Lgraph Pmi Psst_util
