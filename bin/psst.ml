(* psst — command-line front end for the probabilistic subgraph similarity
   search library.

   Subcommands:
     generate    synthesise a STRING-like probabilistic graph corpus and
                 print its statistics
     index       build the feature/PMI indexes once and persist them
     query       run T-PS queries end to end on a synthetic corpus
                 (--index FILE skips mining/PMI build when a valid
                 persisted index exists)
     shard       split an indexed database into a sharded deployment
                 (manifest + per-shard store files, DESIGN.md §14)
     serve       resident query server over a Unix/TCP socket
                 (DESIGN.md §11): load once, answer until SIGTERM.
                 --role worker serves one database (optionally one shard
                 of a manifest); --role router fans queries out to shard
                 workers and merges the answers (DESIGN.md §14)
     client      submit queries to a running server or router, print
                 answers
     experiment  regenerate one of the paper's figures
     micro       (see bench/main.exe) *)

open Cmdliner

let scale_of n queries seed =
  { Experiments.db_size = n; queries_per_point = queries; seed }

(* Uniform failure behaviour for every subcommand (DESIGN.md §11): a
   missing, malformed or unreachable database / index / query file — or an
   unreachable server — prints one line on stderr and exits 1, instead of
   leaking a raw exception (backtrace + cmdliner's internal-error code). *)
let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "psst: %s\n%!" msg;
      exit 1)
    fmt

let or_die f =
  try f () with
  | Psst_store.Store_error msg -> die "%s" msg
  | Psst_proto.Proto_error msg -> die "protocol error: %s" msg
  | Psst_proto.Timed_out -> die "timed out waiting for the server"
  | Psst_client.Client_error msg -> die "%s" msg
  | Sys_error msg -> die "%s" msg
  | Failure msg -> die "%s" msg
  | Invalid_argument msg -> die "%s" msg
  | Unix.Unix_error (e, fn, arg) ->
    die "%s%s: %s" fn (if arg = "" then "" else " " ^ arg) (Unix.error_message e)

(* --- generate --- *)

let generate num_graphs organisms seed verbose binary output =
  or_die @@ fun () ->
  let params =
    {
      Generator.default_params with
      num_graphs;
      num_organisms = organisms;
      seed;
    }
  in
  let ds = Generator.generate params in
  Printf.printf "generated %d probabilistic graphs over %d organisms (seed %d)\n"
    (Array.length ds.graphs) organisms seed;
  let total_v = ref 0 and total_e = ref 0 and total_p = ref 0. in
  Array.iter
    (fun g ->
      let gc = Pgraph.skeleton g in
      total_v := !total_v + Lgraph.num_vertices gc;
      total_e := !total_e + Lgraph.num_edges gc;
      List.iter
        (fun e -> total_p := !total_p +. Pgraph.edge_marginal g e)
        (Pgraph.uncertain_edges g))
    ds.graphs;
  let n = float_of_int (Array.length ds.graphs) in
  Printf.printf "avg vertices %.1f, avg edges %.1f, avg edge probability %.3f\n"
    (float_of_int !total_v /. n)
    (float_of_int !total_e /. n)
    (!total_p /. float_of_int !total_e);
  if verbose then
    Array.iteri
      (fun i g ->
        Printf.printf "-- graph %d (organism %d, graft %s)\n%s" i
          ds.organisms.(i)
          (match ds.grafts.(i) with Some o -> string_of_int o | None -> "none")
          (Lgraph.to_string (Pgraph.skeleton g)))
      ds.graphs;
  match output with
  | None -> ()
  | Some path ->
    if binary then Pgraph_io.save_binary path ds.graphs
    else Pgraph_io.save path ds.graphs;
    Printf.printf "corpus written to %s (%s)\n" path
      (if binary then "binary" else "text")

(* --- query --- *)

let corpus_of input num_graphs seed =
  match input with
  | Some path ->
    let graphs = Pgraph_io.load_auto path in
    Printf.printf "loaded %d graphs from %s\n%!" (Array.length graphs) path;
    (graphs, None)
  | None ->
    let params = { Generator.default_params with num_graphs; seed } in
    let ds = Generator.generate params in
    (ds.graphs, Some ds)

(* Build the indexes, or reuse a persisted database when [index_file] names
   a valid store for this exact corpus. A missing file is built and saved; a
   corrupt/stale/foreign one is reported, rebuilt and overwritten — a bad
   cache never changes answers, only costs the rebuild. A reused index then
   replays its ingest delta chain (DESIGN.md §16), so an offline run agrees
   with a server that ingested on the same store; a rebuild clears the
   chain (the deltas chained onto the old base). Returns the database, the
   elapsed time, a description, and the delta chain when persistent
   (armed for further ingest). *)
let obtain_database ?(flat = false) ?(mmap = false) index_file graphs =
  (* Memory-mapped serving needs the flat on-disk layout, so --mmap
     implies writing any rebuilt index with --flat. *)
  let flat = flat || mmap in
  let with_deltas path (db, t) how =
    let (db, chain), t_replay =
      Psst_util.Timer.time (fun () -> Psst_ingest.apply_deltas ~base:path db)
    in
    let applied = chain.Psst_ingest.next_seq - 1 in
    let how =
      if applied = 0 then how
      else Printf.sprintf "%s + %d ingest delta%s replayed" how applied
        (if applied = 1 then "" else "s")
    in
    (db, t +. t_replay, how, Some chain)
  in
  let build_and_save () =
    let db, t = Psst_util.Timer.time (fun () -> Query.index_database graphs) in
    match index_file with
    | Some path ->
      let stale = Psst_ingest.clear_deltas path in
      if stale > 0 then
        Printf.printf "removed %d stale ingest delta file%s of %s\n%!" stale
          (if stale = 1 then "" else "s")
          path;
      Query.save_database ~flat path db;
      Printf.printf "index persisted to %s%s\n%!" path
        (if flat then " (flat image)" else "");
      if mmap then
        let db, t_map =
          Psst_util.Timer.time (fun () -> Query.load_database ~mmap:true path)
        in
        with_deltas path (db, t +. t_map)
          "built (serving the memory-mapped flat image)"
      else with_deltas path (db, t) "built"
    | None -> (db, t, "built", None)
  in
  match index_file with
  | Some path when Sys.file_exists path -> (
    match Psst_util.Timer.time (fun () -> Query.load_database ~mmap path) with
    | db, t when
        Corpus.fingerprint db.Query.graphs
        = Pgraph_io.db_fingerprint graphs ->
      with_deltas path (db, t)
        (if mmap then "memory-mapped (zero-copy flat image)"
         else "loaded (mining and PMI build skipped)")
    | _ ->
      Printf.printf "index %s was built for a different corpus; rebuilding\n%!"
        path;
      build_and_save ()
    | exception Psst_store.Store_error msg ->
      Printf.printf "index %s rejected (%s); rebuilding\n%!" path msg;
      build_and_save ())
  | _ -> build_and_save ()

let index num_graphs seed input flat output =
  or_die @@ fun () ->
  let graphs, _ = corpus_of input num_graphs seed in
  Printf.printf "indexing %d graphs...\n%!" (Array.length graphs);
  let db, t_index = Psst_util.Timer.time (fun () -> Query.index_database graphs) in
  Query.save_database ~flat output db;
  let bytes =
    let ic = open_in_bin output in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> in_channel_length ic)
  in
  Printf.printf
    "indexed in %.2fs: %d features, %d PMI entries\nindex written to %s (%d bytes%s)\n"
    t_index
    (List.length db.Query.features)
    (Pmi.filled_entries db.Query.pmi)
    output bytes
    (if flat then ", flat mmap-ready image" else "")

(* --- shard (DESIGN.md §14) --- *)

let shard num_graphs seed input index_file flat output shards max_graphs
    max_cost =
  or_die @@ fun () ->
  let graphs, _ = corpus_of input num_graphs seed in
  Printf.printf "indexing %d graphs...\n%!" (Array.length graphs);
  let db, t_index, how, _chain = obtain_database index_file graphs in
  Printf.printf "index %s in %.2fs: %d features, %d PMI entries\n%!" how t_index
    (List.length db.Query.features)
    (Pmi.filled_entries db.Query.pmi);
  let plan =
    match (shards, max_graphs, max_cost) with
    | Some parts, None, None ->
      Psst_shard.plan_even ~parts ~total:(Array.length graphs)
    | None, None, None ->
      die "pass --shards N (even split) or --max-graphs / --max-cost (budget)"
    | None, mg, mc ->
      let budget =
        {
          Psst_shard.max_graphs = Option.value mg ~default:max_int;
          max_cost = Option.value mc ~default:infinity;
        }
      in
      Psst_shard.plan_budget db budget
    | Some _, _, _ -> die "--shards conflicts with --max-graphs/--max-cost"
  in
  let m = Psst_shard.split_to_files ~flat ~manifest_path:output db plan in
  Printf.printf "sharded %d graphs into %d shards%s (manifest %s):\n" m.total
    (List.length m.Psst_shard.entries)
    (if flat then " as flat mmap-ready images" else "")
    output;
  List.iter
    (fun (s : Psst_shard.entry) ->
      Printf.printf "  shard %d: graphs %d..%d (%d) -> %s [%08lx]\n" s.sid
        s.base
        (s.base + s.count - 1)
        s.count s.path s.fingerprint)
    m.Psst_shard.entries

(* [--stats-json FILE]: the per-query traces plus a full dump of the
   metrics registry, one machine-readable document. *)
let write_stats_json path traces =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"queries\": [";
  List.iteri
    (fun i tr ->
      if i > 0 then Buffer.add_string buf ", ";
      Psst_obs.Trace.to_json buf tr)
    traces;
  Buffer.add_string buf "], \"metrics\": ";
  Psst_obs.to_json buf;
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "stats written to %s\n%!" path

let query num_graphs seed qsize nqueries epsilon delta exact_verifier input
    index_file stats_json =
  or_die @@ fun () ->
  let graphs, ds_opt = corpus_of input num_graphs seed in
  Printf.printf "indexing %d graphs...\n%!" (Array.length graphs);
  let db, t_index, how, _chain = obtain_database index_file graphs in
  Printf.printf "index %s in %.2fs: %d features, %d PMI entries\n%!" how t_index
    (List.length db.Query.features)
    (Pmi.filled_entries db.Query.pmi);
  let config =
    {
      Query.default_config with
      epsilon;
      delta;
      verifier =
        (if exact_verifier then `Exact else `Smp Verify.default_config);
    }
  in
  let rng = Psst_util.Prng.make (seed + 1) in
  let ds =
    match ds_opt with
    | Some ds -> ds
    | None ->
      (* Query extraction needs a dataset wrapper; loaded corpora get a
         trivial one (organism 0 everywhere). *)
      {
        Generator.graphs;
        organisms = Array.make (Array.length graphs) 0;
        motifs = [||];
        grafts = Array.make (Array.length graphs) None;
        params = Generator.default_params;
      }
  in
  let traces = ref [] in
  for k = 1 to nqueries do
    let q, org = Generator.extract_query rng ds ~edges:qsize in
    let out, t = Psst_util.Timer.time (fun () -> Query.run db q config) in
    traces := out.Query.trace :: !traces;
    Printf.printf
      "query %d (organism %d, %d edges): %d answers in %.3fs \
       [structural %d, pruned %d, accepted %d, verified %d]\n"
      k org (Lgraph.num_edges q)
      (List.length out.Query.answers)
      t out.Query.stats.structural_candidates out.Query.stats.pruned_by_bounds
      out.Query.stats.accepted_by_bounds out.Query.stats.prob_candidates;
    if out.Query.stats.relaxed_truncated then
      Printf.printf
        "  warning: relaxed set truncated at %d patterns — SSP estimates \
         are lower bounds, the answer set may under-approximate\n"
        config.Query.relax_cap;
    Printf.printf "  answers: %s\n"
      (String.concat ", " (List.map string_of_int out.Query.answers))
  done;
  match stats_json with
  | None -> ()
  | Some path -> write_stats_json path (List.rev !traces)

(* --- topk --- *)

let topk num_graphs seed qsize k delta input =
  or_die @@ fun () ->
  let graphs, ds_opt = corpus_of input num_graphs seed in
  let db = Query.index_database graphs in
  let ds =
    match ds_opt with
    | Some ds -> ds
    | None ->
      {
        Generator.graphs;
        organisms = Array.make (Array.length graphs) 0;
        motifs = [||];
        grafts = Array.make (Array.length graphs) None;
        params = Generator.default_params;
      }
  in
  let rng = Psst_util.Prng.make (seed + 1) in
  let q, org = Generator.extract_query rng ds ~edges:qsize in
  Printf.printf "top-%d query (organism %d, %d edges, delta %d):\n" k org
    (Lgraph.num_edges q) delta;
  let config = { Query.default_config with delta } in
  let out, t = Psst_util.Timer.time (fun () -> Topk.run db q ~k config) in
  Printf.printf "answered in %.3fs (%d structural candidates, %d verified, \
                 %d skipped by bounds)\n"
    t out.Topk.stats.structural_candidates out.Topk.stats.verified
    out.Topk.stats.bound_skipped;
  if out.Topk.stats.relaxed_truncated then
    Printf.printf
      "warning: relaxed set truncated — SSPs are lower bounds, the ranking \
       may under-rank some graphs\n";
  List.iter
    (fun (h : Topk.hit) -> Printf.printf "  graph %3d   SSP ~ %.4f\n" h.graph h.ssp)
    out.Topk.hits

(* --- serve / client (DESIGN.md §11) --- *)

let endpoint_of socket port host =
  match (socket, port) with
  | Some path, None ->
    if path = "" then die "--socket PATH must be non-empty";
    Psst_proto.Unix_socket path
  | None, Some p ->
    if p < 1 || p > 65535 then die "--port %d: port must be in 1..65535" p;
    if host = "" then die "--host must be non-empty";
    Psst_proto.Tcp (host, p)
  | Some _, Some _ -> die "pass either --socket PATH or --port PORT, not both"
  | None, None -> die "pass --socket PATH or --port PORT"

(* The syntax Psst_proto.endpoint_to_string prints: unix:PATH or
   tcp:HOST:PORT (so a worker endpoint can be copy-pasted from a worker's
   own startup line). Validation is eager and strict: an empty path or
   host, a port that is not plain decimal digits (no 0x/_/sign forms),
   or a port outside 1..65535 dies with the uniform one-line failure
   here, instead of surfacing minutes later as a confusing Unix_error
   from connect(2) mid-query. *)
let endpoint_of_string s =
  let malformed why = die "endpoint %S: %s" s why in
  match String.index_opt s ':' with
  | None -> malformed "expected unix:PATH or tcp:HOST:PORT"
  | Some i -> (
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match String.sub s 0 i with
    | "unix" ->
      if rest = "" then malformed "unix endpoint needs a non-empty PATH"
      else Psst_proto.Unix_socket rest
    | "tcp" -> (
      (* The last colon splits host from port, so IPv6-style hosts with
         colons of their own still parse. *)
      match String.rindex_opt rest ':' with
      | None -> malformed "expected tcp:HOST:PORT"
      | Some j -> (
        let host = String.sub rest 0 j in
        let port_s = String.sub rest (j + 1) (String.length rest - j - 1) in
        if host = "" then malformed "tcp endpoint needs a non-empty HOST"
        else if
          port_s = ""
          || not (String.for_all (fun c -> c >= '0' && c <= '9') port_s)
        then malformed "PORT must be decimal digits"
        else
          match int_of_string_opt port_s with
          | Some p when p >= 1 && p <= 65535 -> Psst_proto.Tcp (host, p)
          | Some _ | None -> malformed "PORT must be in 1..65535"))
    | scheme ->
      malformed
        (Printf.sprintf "unknown scheme %S (expected unix or tcp)" scheme))

(* A dataset wrapper for query extraction over a loaded corpus (same
   trivial organism assignment as the [query] subcommand, so the extracted
   query sequence is identical for the same corpus and seed). *)
let dataset_wrapper graphs ds_opt =
  match ds_opt with
  | Some ds -> ds
  | None ->
    {
      Generator.graphs;
      organisms = Array.make (Array.length graphs) 0;
      motifs = [||];
      grafts = Array.make (Array.length graphs) None;
      params = Generator.default_params;
    }

(* Signal handlers only flip an atomic; the main thread performs the
   drain (and SIGHUP promotion, when armed) outside signal context. *)
let wait_for_shutdown ?on_hup () =
  let stop_requested = Atomic.make false in
  let hup_requested = Atomic.make false in
  let on_signal _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  if on_hup <> None then
    Sys.set_signal Sys.sighup
      (Sys.Signal_handle (fun _ -> Atomic.set hup_requested true));
  while not (Atomic.get stop_requested) do
    if Atomic.compare_and_set hup_requested true false then
      Option.iter (fun f -> f ()) on_hup;
    Thread.delay 0.05
  done;
  Printf.printf "shutdown requested; draining in-flight requests...\n%!"

let serve_worker ?chain ?standby_of endpoint db domains queue_cap deadline_ms
    verify_budget_ms batch_max cache_cap ingest_queue_cap tenant_quota
    stats_json =
  let cfg =
    {
      (Psst_server.default_config endpoint) with
      Psst_server.domains;
      queue_cap;
      deadline_ms = float_of_int deadline_ms;
      verify_budget_ms;
      batch_max;
      cache_cap;
      ingest_queue_cap;
      tenant_quota;
      writable = standby_of = None;
    }
  in
  (* Any server with a persistent chain accepts replication
     subscriptions and gates its ingest acks on the standbys'
     acknowledgements; without a chain there is nothing byte-exact to
     stream. A standby carries a hub too, so once promoted it serves
     downstream subscribers like the primary it replaced. *)
  let hub = Option.map Psst_replica.hub chain in
  let publisher = Option.map Psst_replica.publisher hub in
  let srv = Psst_server.start ?chain ?publisher cfg db in
  let standby =
    match standby_of with
    | None -> None
    | Some primary -> (
      match chain with
      | None ->
        die
          "--standby-of needs --index FILE (the standby persists the \
           replicated delta chain next to its copy of the base index)"
      | Some chain ->
        Some
          ( Psst_replica.start_standby ~primary ~chain
              (Psst_server.snapshot_ref srv),
            primary ))
  in
  Printf.printf
    "serving on %s (%d domains, queue cap %d, deadline %s, verify budget %s, \
     batch cap %d, cache %s, ingest %s, tenant quota %s)\n%!"
    (Psst_proto.endpoint_to_string (Psst_server.endpoint srv))
    domains queue_cap
    (if deadline_ms > 0 then Printf.sprintf "%d ms" deadline_ms else "off")
    (if verify_budget_ms > 0. then Printf.sprintf "%.0f ms" verify_budget_ms
     else "off")
    batch_max
    (if cache_cap > 0 then Printf.sprintf "%d entries" cache_cap else "off")
    (if ingest_queue_cap > 0 then
       Printf.sprintf "queue of %d graphs%s" ingest_queue_cap
         (match chain with
         | Some _ -> ", persisted as delta files"
         | None -> ", memory only")
     else "off")
    (if tenant_quota > 0 then string_of_int tenant_quota else "off");
  (match standby with
  | None -> ()
  | Some (_, primary) ->
    Printf.printf
      "read-only standby of %s: replicating delta frames (SIGHUP promotes \
       to writable primary)\n%!"
      (Psst_proto.endpoint_to_string primary));
  let on_hup =
    match standby with
    | None -> None
    | Some (st, primary) ->
      Some
        (fun () ->
          if not (Psst_server.writable srv) then begin
            Psst_replica.promote st srv;
            Printf.printf
              "promoted: replication from %s stopped at seq %d; now a \
               writable primary at epoch %d\n%!"
              (Psst_proto.endpoint_to_string primary)
              (Psst_replica.applied_seq st)
              (Psst_server.epoch srv)
          end)
  in
  wait_for_shutdown ?on_hup ();
  Option.iter (fun (st, _) -> Psst_replica.stop_standby st) standby;
  Psst_server.stop srv;
  Option.iter Psst_replica.stop_hub hub;
  (match stats_json with
  | None -> ()
  | Some path -> write_stats_json path (Psst_server.traces srv));
  let h = Psst_server.health srv in
  if h.Psst_proto.epoch > 0 then
    Printf.printf "ingested %d graphs across %d epochs\n%!"
      h.Psst_proto.ingest_applied h.Psst_proto.epoch;
  Printf.printf "served %d requests; drained cleanly\n%!"
    (Psst_server.served srv)

let serve_router endpoint manifest mmap workers shard_timeout_ms shard_retries
    heartbeat_ms stats_json =
  if workers = [] then
    die
      "router role: pass --worker ENDPOINT[,ENDPOINT...] once per shard, in \
       shard order (a comma-separated group lists the shard's replicas, \
       primary first)";
  if heartbeat_ms < 0. then
    die "--heartbeat-ms must be >= 0 (0 disables the liveness poller)";
  let workers =
    Array.of_list
      (List.map
         (fun spec ->
           let group =
             String.split_on_char ',' spec |> List.filter (fun s -> s <> "")
           in
           if group = [] then
             die "--worker needs at least one endpoint per shard";
           Array.of_list (List.map endpoint_of_string group))
         workers)
  in
  let replicas = Array.fold_left (fun acc g -> acc + Array.length g) 0 workers in
  let local_fallback =
    match manifest with
    | None -> None
    | Some path ->
      let m = Psst_shard.load_manifest path in
      let n = List.length m.Psst_shard.entries in
      if n <> Array.length workers then
        die "manifest %s describes %d shards but %d --worker endpoints given"
          path n (Array.length workers);
      (* Lazily-loaded fallback shards, one slot per sid. Reader threads
         may race a load; both compute the same immutable database, so
         the benign double load only costs time. *)
      let cache = Array.make n None in
      Some
        (fun sid ->
          if sid < 0 || sid >= n then None
          else
            match cache.(sid) with
            | Some db -> Some db
            | None -> (
              match Psst_shard.load_shard ~mmap ~manifest_path:path m sid with
              | db ->
                cache.(sid) <- Some db;
                Some db
              | exception _ -> None))
  in
  let cfg =
    {
      Psst_router.endpoint;
      workers;
      shard_timeout_ms;
      retries = shard_retries;
      heartbeat_ms;
      local_fallback;
    }
  in
  let r = Psst_router.start cfg in
  Printf.printf
    "routing %d shards (%d replicas) on %s (per-shard timeout %s, %d \
     retries, heartbeat %s, local fallback %s)\n%!"
    (Array.length workers) replicas
    (Psst_proto.endpoint_to_string (Psst_router.endpoint r))
    (if shard_timeout_ms > 0. then Printf.sprintf "%.0f ms" shard_timeout_ms
     else "off")
    shard_retries
    (if heartbeat_ms > 0. then Printf.sprintf "%.0f ms" heartbeat_ms else "off")
    (match manifest with Some p -> p | None -> "off");
  wait_for_shutdown ();
  Psst_router.stop r;
  (match stats_json with
  | None -> ()
  | Some path -> write_stats_json path []);
  Printf.printf "served %d requests; drained cleanly\n%!" (Psst_router.served r)

let serve num_graphs seed input index_file mmap socket port host domains
    queue_cap deadline_ms verify_budget_ms batch_max cache_cap
    ingest_queue_cap tenant_quota stats_json role manifest shard_id workers
    shard_timeout_ms shard_retries heartbeat_ms standby_of promote =
  or_die @@ fun () ->
  if ingest_queue_cap < 0 then
    die "--ingest-queue-cap must be >= 0 (0 disables ingest), got %d"
      ingest_queue_cap;
  if tenant_quota < 0 then
    die "--tenant-quota must be >= 0 (0 disables quotas), got %d" tenant_quota;
  let standby_of = Option.map endpoint_of_string standby_of in
  if standby_of <> None && promote then
    die
      "--standby-of and --promote are exclusive: start the standby without \
       --promote and send it SIGHUP to promote it live, or restart the \
       stopped standby with --promote alone";
  let endpoint = endpoint_of socket port host in
  match role with
  | `Router ->
    if standby_of <> None || promote then
      die "--standby-of and --promote are for --role worker";
    serve_router endpoint manifest mmap workers shard_timeout_ms shard_retries
      heartbeat_ms stats_json
  | `Worker ->
    if workers <> [] then die "--worker is for --role router";
    if standby_of <> None && manifest <> None then
      die "--standby-of replicates a whole worker, not a shard";
    if promote && index_file = None then
      die
        "--promote needs --index FILE (the standby's base index, whose \
         replicated delta chain carries every acked batch)";
    let db, chain =
      match (manifest, shard_id) with
      | Some mpath, Some sid ->
        let m = Psst_shard.load_manifest mpath in
        let db = Psst_shard.load_shard ~mmap ~manifest_path:mpath m sid in
        Printf.printf
          "loaded shard %d of %s%s: %d graphs (global ids %d..%d), %d \
           features, %d PMI entries\n%!"
          sid mpath
          (if mmap then " (memory-mapped flat image)" else "")
          (Corpus.length db.Query.graphs)
          db.Query.base
          (db.Query.base + Corpus.length db.Query.graphs - 1)
          (List.length db.Query.features)
          (Pmi.filled_entries db.Query.pmi);
        (db, None)
      | Some _, None -> die "worker role with --manifest also needs --shard SID"
      | None, Some _ -> die "--shard needs --manifest"
      | None, None ->
        if mmap && index_file = None then
          die "--mmap needs --index FILE (or --manifest with --shard)";
        let graphs, _ = corpus_of input num_graphs seed in
        Printf.printf "indexing %d graphs...\n%!" (Array.length graphs);
        let db, t_index, how, chain = obtain_database ~mmap index_file graphs in
        Printf.printf "index %s in %.2fs: %d features, %d PMI entries\n%!" how
          t_index
          (List.length db.Query.features)
          (Pmi.filled_entries db.Query.pmi);
        (db, chain)
    in
    (* A shard holds a fixed global-id slice of the corpus (placement is
       decided offline by [psst shard]); appending to one shard would
       change answers relative to the monolithic database, so shard
       workers serve read-only. *)
    let ingest_queue_cap =
      if manifest <> None then begin
        if ingest_queue_cap > 0 then
          Printf.printf
            "ingest disabled: shard workers are read-only (re-run psst \
             shard to grow a sharded deployment)\n%!";
        0
      end
      else ingest_queue_cap
    in
    (match (promote, chain) with
    | true, Some c ->
      Printf.printf
        "promoted: serving the replicated chain of %s writable (next delta \
         seq %d)\n%!"
        c.Psst_ingest.base c.Psst_ingest.next_seq
    | _ -> ());
    serve_worker ?chain ?standby_of endpoint db domains queue_cap deadline_ms
      verify_budget_ms batch_max cache_cap ingest_queue_cap tenant_quota
      stats_json

let client socket port host num_graphs seed qsize nqueries epsilon delta
    exact_verifier input tenant add_file do_ping do_health do_stats
    connect_timeout_ms timeout_ms retries backoff_ms =
  or_die @@ fun () ->
  (match tenant with
  | Some "" -> die "--tenant needs a non-empty name"
  | _ -> ());
  let endpoint = endpoint_of socket port host in
  (* Load the graphs to ingest before connecting, so a missing or
     malformed file dies cleanly without touching the server. *)
  let add_graphs =
    match add_file with
    | None -> None
    | Some path -> Some (path, Pgraph_io.load_auto path)
  in
  let c =
    Psst_client.connect ~connect_timeout_ms ~call_timeout_ms:timeout_ms
      endpoint
  in
  Fun.protect
    ~finally:(fun () -> Psst_client.close c)
    (fun () ->
      Option.iter (fun name -> Psst_client.set_tenant c name) tenant;
      if do_ping then begin
        Psst_client.ping c;
        Printf.printf "pong from %s\n%!" (Psst_proto.endpoint_to_string endpoint)
      end;
      (match add_graphs with
      | None -> ()
      | Some (path, graphs) -> (
        match Psst_client.add_graphs c graphs with
        | Ok r ->
          Printf.printf
            "ingested %d graphs from %s: global ids %d..%d, database epoch \
             %d\n%!"
            r.Psst_ingest.count path r.Psst_ingest.base
            (r.Psst_ingest.base + r.Psst_ingest.count - 1)
            r.Psst_ingest.epoch
        | Error (code, message) ->
          die "ingest of %s rejected [%s%s]: %s" path
            (Psst_proto.error_code_name code)
            (if Psst_proto.error_code_retryable code then ", retryable"
             else "")
            message));
      if do_health then begin
        let h = Psst_client.health c in
        Printf.printf
          "health of %s: up %.1fs, queue depth %d, served %d, degraded \
           answers %d, retryable rejections %d, epoch %d, ingest lag %d \
           (applied %d)\n%!"
          (Psst_proto.endpoint_to_string endpoint)
          h.Psst_proto.uptime_s h.Psst_proto.queue_depth h.Psst_proto.served
          h.Psst_proto.degraded_answers h.Psst_proto.retryable_rejections
          h.Psst_proto.epoch h.Psst_proto.ingest_queued
          h.Psst_proto.ingest_applied;
        List.iter
          (fun (w : Psst_proto.worker_health) ->
            let who =
              if w.primary then Printf.sprintf "replica %d, primary" w.rid
              else Printf.sprintf "replica %d" w.rid
            in
            if w.reachable then
              Printf.printf
                "  worker %d (%s): up %.1fs, queue depth %d, degraded \
                 answers %d, epoch %d\n%!"
                w.wid who w.worker_uptime_s w.worker_queue_depth
                w.worker_degraded_answers w.worker_epoch
            else Printf.printf "  worker %d (%s): unreachable\n%!" w.wid who)
          h.Psst_proto.workers
      end;
      if nqueries > 0 then begin
        let graphs, ds_opt = corpus_of input num_graphs seed in
        let ds = dataset_wrapper graphs ds_opt in
        let rng = Psst_util.Prng.make (seed + 1) in
        let queries =
          List.init nqueries (fun _ ->
              Generator.extract_query rng ds ~edges:qsize)
        in
        let config =
          {
            Query.default_config with
            epsilon;
            delta;
            verifier =
              (if exact_verifier then `Exact else `Smp Verify.default_config);
          }
        in
        let replies, t =
          Psst_util.Timer.time (fun () ->
              Psst_client.run_all ~max_retries:retries ~backoff_ms c
                (List.map fst queries) config)
        in
        List.iteri
          (fun i (q, org) ->
            match replies.(i) with
            | Psst_proto.Answer { answers; stats; _ } ->
              Printf.printf
                "query %d (organism %d, %d edges): %d answers%s \
                 [structural %d, pruned %d, accepted %d, verified %d]\n"
                (i + 1) org (Lgraph.num_edges q) (List.length answers)
                (if stats.Psst_proto.degraded then
                   " (degraded: correct to bounds, superset of exact)"
                 else "")
                stats.Psst_proto.structural_candidates
                stats.Psst_proto.pruned_by_bounds
                stats.Psst_proto.accepted_by_bounds
                stats.Psst_proto.prob_candidates;
              if stats.Psst_proto.relaxed_truncated then
                Printf.printf
                  "  warning: relaxed set truncated — SSP estimates are \
                   lower bounds, the answer set may under-approximate\n";
              Printf.printf "  answers: %s\n"
                (String.concat ", " (List.map string_of_int answers))
            | Psst_proto.Error_reply { code; message; _ } ->
              Printf.printf "query %d: server error [%s%s]: %s\n" (i + 1)
                (Psst_proto.error_code_name code)
                (if Psst_proto.error_code_retryable code then ", retryable"
                 else "")
                message
            | _ -> die "unexpected reply kind from server")
          queries;
        Printf.printf "%d queries answered in %.3fs\n%!" nqueries t
      end;
      if do_stats then print_string (Psst_client.stats_json c))

(* --- experiment --- *)

let experiment fig db_size queries seed =
  or_die @@ fun () ->
  let scale = scale_of db_size queries seed in
  let ppf = Format.std_formatter in
  (match fig with
  | "fig9" -> Experiments.fig9 ~scale ppf
  | "fig10" -> Experiments.fig10 ~scale ppf
  | "fig11" -> Experiments.fig11 ~scale ppf
  | "fig12" -> Experiments.fig12 ~scale ppf
  | "fig13" -> Experiments.fig13 ~scale ppf
  | "fig14" -> Experiments.fig14 ~scale ppf
  | "ablation" | "ablations" -> Experiments.ablations ~scale ppf
  | "all" -> Experiments.all ~scale ppf
  | other -> Printf.eprintf "unknown figure %S\n" other; exit 2);
  Format.pp_print_flush ppf ()

(* --- cmdliner wiring --- *)

let seed_arg =
  Arg.(value & opt int 2012 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let num_graphs_arg =
  Arg.(
    value & opt int 100
    & info [ "n"; "num-graphs" ] ~docv:"N" ~doc:"Number of graphs to generate.")

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "input" ] ~docv:"FILE" ~doc:"Load the corpus from a .pgdb archive.")

let generate_cmd =
  let organisms =
    Arg.(value & opt int 5 & info [ "organisms" ] ~doc:"Number of organisms.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every skeleton.")
  in
  let binary =
    Arg.(
      value & flag
      & info [ "binary" ]
          ~doc:"Write the checksummed binary store format instead of text.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the corpus to a .pgdb archive.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesise a probabilistic graph corpus")
    Term.(
      const generate $ num_graphs_arg $ organisms $ seed_arg $ verbose $ binary
      $ output)

let flat_arg =
  Arg.(
    value & flag
    & info [ "flat" ]
        ~doc:
          "Write the succinct flat index image (DESIGN.md §15): delta-coded \
           PMI postings, fixed-width bounds and u16 structural count cells \
           that $(b,psst serve --mmap) reads zero-copy out of a memory \
           mapping. Loads eagerly too, to bit-identical answers.")

let index_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the persistent index (graphs + features + PMI) here.")
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:
         "Mine features and build the PMI once, persisting the whole \
          query-time state for later $(b,query --index) runs")
    Term.(const index $ num_graphs_arg $ seed_arg $ input_arg $ flat_arg $ output)

let query_cmd =
  let qsize =
    Arg.(value & opt int 8 & info [ "query-size" ] ~doc:"Query size in edges.")
  in
  let nqueries =
    Arg.(value & opt int 5 & info [ "queries" ] ~doc:"Number of queries to run.")
  in
  let epsilon =
    Arg.(
      value & opt float 0.5
      & info [ "epsilon" ] ~doc:"Probability threshold (0 < eps <= 1).")
  in
  let delta =
    Arg.(value & opt int 2 & info [ "delta" ] ~doc:"Subgraph distance threshold.")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ] ~doc:"Verify candidates exactly instead of sampling.")
  in
  let index_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "index" ] ~docv:"FILE"
          ~doc:
            "Reuse the persisted index at $(docv) (built by $(b,psst index)) \
             instead of mining and computing bounds; a missing file is built \
             and saved, an invalid or stale one is rejected and rebuilt.")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Write per-query traces and the full metrics registry \
             (counters, histograms, warning events) as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run T-PS queries end to end")
    Term.(
      const query $ num_graphs_arg $ seed_arg $ qsize $ nqueries $ epsilon
      $ delta $ exact $ input_arg $ index_file $ stats_json)

let topk_cmd =
  let qsize =
    Arg.(value & opt int 8 & info [ "query-size" ] ~doc:"Query size in edges.")
  in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Number of results.") in
  let delta =
    Arg.(value & opt int 2 & info [ "delta" ] ~doc:"Subgraph distance threshold.")
  in
  Cmd.v
    (Cmd.info "topk" ~doc:"Top-k probabilistic subgraph similarity search")
    Term.(const topk $ num_graphs_arg $ seed_arg $ qsize $ k $ delta $ input_arg)

let shard_cmd =
  let index_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "index" ] ~docv:"FILE"
          ~doc:
            "Reuse the persisted monolithic index at $(docv) (built by \
             $(b,psst index)) instead of mining and computing bounds.")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"MANIFEST"
          ~doc:
            "Write the shard manifest here; shard store files are written \
             next to it, and the manifest is written last, atomically, so \
             an interrupted split never leaves a manifest naming \
             half-written shards.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N" ~doc:"Split into $(docv) even shards.")
  in
  let max_graphs =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-graphs" ] ~docv:"N"
          ~doc:"Budget split: close a shard after $(docv) graphs.")
  in
  let max_cost =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-cost" ] ~docv:"C"
          ~doc:
            "Budget split: close a shard when its estimated PMI build cost \
             (1 + filled PMI entries per graph column) would exceed $(docv).")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Split an indexed database into independently servable shards \
          (manifest + per-shard store files); per-shard answers merge \
          bit-identically to the monolithic ones")
    Term.(
      const shard $ num_graphs_arg $ seed_arg $ input_arg $ index_file
      $ flat_arg $ output $ shards $ max_graphs $ max_cost)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (alternative to --socket).")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host to bind/connect (with --port).")

let serve_cmd =
  let mmap =
    Arg.(
      value & flag
      & info [ "mmap" ]
          ~doc:
            "Serve the index zero-copy out of a memory mapping instead of \
             decoding it (worker role: with --index or --manifest/--shard; \
             router role: applies to the local fallback shards). Requires \
             the flat image layout ($(b,psst index --flat) / $(b,psst \
             shard --flat)); a non-flat store is rejected and — when \
             rebuilding is possible — rebuilt flat. Answers are \
             bit-identical to the eager load.")
  in
  let index_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "index" ] ~docv:"FILE"
          ~doc:
            "Serve from the persisted index at $(docv) (built by \
             $(b,psst index)); a missing file is built and saved, an \
             invalid or stale one is rejected and rebuilt.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Domain-pool size for the verification fan-out.")
  in
  let queue_cap =
    Arg.(
      value & opt int 128
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission queue bound; requests beyond it are rejected with a \
             retryable queue-full error.")
  in
  let deadline_ms =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Maximum queue wait per request; 0 disables deadlines. A \
             request that waited longer is answered with a deadline error \
             instead of being executed.")
  in
  let verify_budget_ms =
    Arg.(
      value & opt float 0.
      & info [ "verify-budget-ms" ] ~docv:"MS"
          ~doc:
            "Verification budget per micro-batch; 0 disables it. Candidates \
             whose verification would start after the budget elapses are \
             answered from their PMI bounds and the reply is flagged \
             degraded (a superset of the exact answer set) — graceful \
             degradation under load instead of an unbounded latency tail.")
  in
  let batch_max =
    Arg.(
      value & opt int 32
      & info [ "batch-max" ] ~docv:"N" ~doc:"Micro-batch size cap.")
  in
  let cache_cap =
    Arg.(
      value & opt int 16384
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:
            "Cross-query verification cache bound (entries); 0 disables \
             it. The cache memoises relaxed sets, embedding sets, \
             calibrated Karp-Luby preparations and final SSP values \
             across queries; answers are bit-identical with or without \
             it. Hit/miss/eviction counts surface as the \
             cache.{hit,miss,evict} metrics.")
  in
  let ingest_queue_cap =
    Arg.(
      value & opt int 1024
      & info [ "ingest-queue-cap" ] ~docv:"N"
          ~doc:
            "Bound on graphs queued for ingest (Add_graphs) across \
             tenants; batches beyond it are rejected with a retryable \
             queue-full error. 0 disables ingest entirely. With --index, \
             each ingested batch is persisted as a crash-atomic delta \
             file next to the index before it becomes visible to \
             queries; the base index file is never rewritten.")
  in
  let tenant_quota =
    Arg.(
      value & opt int 0
      & info [ "tenant-quota" ] ~docv:"N"
          ~doc:
            "Per-tenant bound on queued queries and queued ingest \
             graphs; beyond it the tenant gets retryable queue-full \
             errors while other tenants keep their share (admission is \
             round-robin across tenants). 0 disables quotas.")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "On shutdown, write recent per-query traces and the full \
             metrics registry as JSON to $(docv) (same document shape as \
             $(b,psst query --stats-json)).")
  in
  let role =
    Arg.(
      value
      & opt (enum [ ("worker", `Worker); ("router", `Router) ]) `Worker
      & info [ "role" ] ~docv:"ROLE"
          ~doc:
            "$(b,worker) (default) serves a database directly; $(b,router) \
             fans each query out to shard workers (--worker, one per shard \
             in shard order) and merges the per-shard answers — \
             bit-identical to a monolithic worker over the same corpus.")
  in
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Shard manifest (written by $(b,psst shard)). With --role \
             worker and --shard, serve that one shard. With --role router, \
             enable the local bounds-only fallback: a dead worker's shard \
             is answered from its PMI bounds, flagged degraded, instead of \
             failing the query.")
  in
  let shard_id =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard" ] ~docv:"SID"
          ~doc:"Shard id to serve (worker role, with --manifest).")
  in
  let workers =
    Arg.(
      value & opt_all string []
      & info [ "worker" ] ~docv:"GROUP"
          ~doc:
            "Router role: one shard's worker endpoints (unix:PATH or \
             tcp:HOST:PORT), repeated once per shard, in shard order. A \
             comma-separated group lists the shard's replicas, primary \
             first; the router prefers the primary and fails over to the \
             freshest live standby when it dies (failing back once it \
             returns).")
  in
  let shard_timeout_ms =
    Arg.(
      value & opt float 0.
      & info [ "shard-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Router role: per-worker connect/call timeout; past it the \
             worker counts as unreachable for that request (degradation \
             ladder applies). 0 blocks indefinitely.")
  in
  let shard_retries =
    Arg.(
      value & opt int 1
      & info [ "shard-retries" ] ~docv:"N"
          ~doc:
            "Router role: reconnect-and-resend attempts per worker per \
             request before the degradation ladder applies.")
  in
  let heartbeat_ms =
    Arg.(
      value & opt float 500.
      & info [ "heartbeat-ms" ] ~docv:"MS"
          ~doc:
            "Router role: liveness-poll cadence over every replica of \
             every shard (jittered); the poller revives recovered \
             replicas, fails back to returned primaries and feeds the \
             router.replica_lag metric. 0 disables it — failover then \
             relies on request-path failures alone.")
  in
  let standby_of =
    Arg.(
      value
      & opt (some string) None
      & info [ "standby-of" ] ~docv:"ENDPOINT"
          ~doc:
            "Worker role, with --index: start as a read-only standby of \
             the primary at $(docv). The standby subscribes to the \
             primary's delta stream, persists every frame byte-identically \
             next to its copy of the base index, and answers queries \
             bit-identically at its applied epoch; Add_graphs is rejected \
             with a retryable error. SIGHUP promotes it live to a \
             writable primary.")
  in
  let promote =
    Arg.(
      value & flag
      & info [ "promote" ]
          ~doc:
            "Worker role, with --index: serve a stopped standby's base \
             index and replicated delta chain as a writable primary \
             (offline promotion). Every batch the old primary ever acked \
             is in that chain. Exclusive with --standby-of (promote a \
             running standby with SIGHUP instead).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident query server: load the database and indexes \
          once, then answer T-PS and top-k queries over a framed binary \
          protocol until SIGTERM/SIGINT (graceful drain). --role router \
          turns the process into a scatter-gather front over shard \
          workers instead. --standby-of replicates a primary for \
          failover; --promote (or SIGHUP) turns the standby into the new \
          primary without losing an acked batch.")
    Term.(
      const serve $ num_graphs_arg $ seed_arg $ input_arg $ index_file $ mmap
      $ socket_arg $ port_arg $ host_arg $ domains $ queue_cap $ deadline_ms
      $ verify_budget_ms $ batch_max $ cache_cap $ ingest_queue_cap
      $ tenant_quota $ stats_json $ role $ manifest $ shard_id $ workers
      $ shard_timeout_ms $ shard_retries $ heartbeat_ms $ standby_of
      $ promote)

let client_cmd =
  let qsize =
    Arg.(value & opt int 8 & info [ "query-size" ] ~doc:"Query size in edges.")
  in
  let nqueries =
    Arg.(value & opt int 5 & info [ "queries" ] ~doc:"Number of queries to send.")
  in
  let epsilon =
    Arg.(
      value & opt float 0.5
      & info [ "epsilon" ] ~doc:"Probability threshold (0 < eps <= 1).")
  in
  let delta =
    Arg.(value & opt int 2 & info [ "delta" ] ~doc:"Subgraph distance threshold.")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ] ~doc:"Verify candidates exactly instead of sampling.")
  in
  let tenant =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:
            "Run this connection as tenant $(docv) (non-empty, at most \
             128 bytes): queries and ingest batches are admitted and \
             metered under that identity, subject to the server's \
             --tenant-quota. Without it the connection runs as tenant \
             $(b,default).")
  in
  let add_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "add" ] ~docv:"FILE"
          ~doc:
            "Ingest the probabilistic graphs in $(docv) into the running \
             server (Add_graphs) before sending any queries. On success \
             prints the new graphs' global id range and the database \
             epoch; every query sent afterwards observes them. A \
             rejection (queue full, tenant quota, ingest disabled) is a \
             clean one-line error.")
  in
  let do_ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Round-trip a ping first.")
  in
  let do_health =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:
            "Print the server's health snapshot (uptime, queue depth, \
             served / degraded / retryable-rejection counters).")
  in
  let do_stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the server's metrics registry JSON after the queries.")
  in
  let connect_timeout_ms =
    Arg.(
      value & opt float 0.
      & info [ "connect-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Give up on the connection attempt after $(docv) milliseconds \
             (clean error instead of the kernel's minutes-long TCP \
             timeout); 0 blocks indefinitely.")
  in
  let timeout_ms =
    Arg.(
      value & opt float 0.
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-call socket timeout in milliseconds; 0 blocks \
             indefinitely.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Recovery budget: reconnect-and-resend after a transport break \
             and resubmit retryable server rejections up to $(docv) times.")
  in
  let backoff_ms =
    Arg.(
      value & opt float 50.
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:
            "Base retry backoff; doubled per attempt, capped at 2s, with \
             deterministic jitter.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Submit queries to a running $(b,psst serve) and print the \
          answers (extracted from the same corpus/seed as $(b,psst query), \
          so offline and served answers are directly comparable)")
    Term.(
      const client $ socket_arg $ port_arg $ host_arg $ num_graphs_arg
      $ seed_arg $ qsize $ nqueries $ epsilon $ delta $ exact $ input_arg
      $ tenant $ add_file $ do_ping $ do_health $ do_stats
      $ connect_timeout_ms $ timeout_ms $ retries $ backoff_ms)

let experiment_cmd =
  let fig =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIG" ~doc:"One of fig9..fig14 or all.")
  in
  let db_size =
    Arg.(value & opt int 120 & info [ "db-size" ] ~doc:"Corpus size.")
  in
  let queries =
    Arg.(
      value & opt int 8 & info [ "queries" ] ~doc:"Queries per data point.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a figure of the paper")
    Term.(const experiment $ fig $ db_size $ queries $ seed_arg)

let main_cmd =
  let doc = "probabilistic subgraph similarity search (VLDB 2012 reproduction)" in
  Cmd.group (Cmd.info "psst" ~doc)
    [
      generate_cmd;
      index_cmd;
      query_cmd;
      topk_cmd;
      shard_cmd;
      serve_cmd;
      client_cmd;
      experiment_cmd;
    ]

let () =
  (* Fault-injection plans from PSST_FAULTS / PSST_FAULT_SEED (chaos CI,
     DESIGN.md §12) arm before any subcommand touches a fault site. *)
  (match Psst_fault.arm_from_env () with
  | armed ->
    if armed then
      Printf.eprintf "psst: fault injection armed from PSST_FAULTS\n%!"
  | exception Failure msg -> die "%s" msg);
  exit (Cmd.eval main_cmd)
