test/test_clique.ml: Alcotest Array List Mwc Psst_util QCheck QCheck_alcotest Tgen
