module Bitset = Psst_util.Bitset
module Flat = Lgraph.Flat

(* The search runs entirely on the contiguous [Lgraph.Flat] image of both
   graphs: adjacency slices replace the (neighbor, edge_id) lists and edge
   lookups are binary searches, so the inner loops touch int arrays only.
   The flat adjacency keeps the list representation's sorted neighbor
   order, so the search tree — and therefore the embedding enumeration
   order — is identical to the historical list-based implementation (the
   reference copy in test/test_iso.ml pins this equivalence).

   Pattern vertices are matched in a precomputed order that keeps each new
   vertex adjacent to an already-matched one whenever possible (pure VF2
   connectivity heuristic); disconnected patterns fall back to an arbitrary
   unmatched vertex when no connected choice remains. *)

let matching_order (p : Flat.t) =
  let n = p.Flat.n in
  let order = Array.make n (-1) in
  let placed = Array.make n false in
  let deg = p.Flat.deg in
  let next_seed () =
    (* Highest degree first among unplaced vertices. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not placed.(v)) && (!best < 0 || deg.(v) > deg.(!best)) then best := v
    done;
    !best
  in
  let idx = ref 0 in
  while !idx < n do
    (* Prefer an unplaced vertex adjacent to a placed one, with max degree. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if not placed.(v) then begin
        let touches = ref false in
        for a = p.Flat.off.(v) to p.Flat.off.(v + 1) - 1 do
          if placed.(p.Flat.nbr.(a)) then touches := true
        done;
        if !touches && (!best < 0 || deg.(v) > deg.(!best)) then best := v
      end
    done;
    let v = if !best >= 0 then !best else next_seed () in
    order.(!idx) <- v;
    placed.(v) <- true;
    incr idx
  done;
  order

let iter pattern target f =
  let p = Lgraph.flat pattern in
  let t = Lgraph.flat target in
  let np = p.Flat.n in
  let nt = t.Flat.n in
  if
    np > nt || p.Flat.m > t.Flat.m
    (* Quick multiset pre-filters. *)
    || Flat.hist_missing p.Flat.vhist t.Flat.vhist <> 0
    || Flat.hist_missing p.Flat.ehist t.Flat.ehist <> 0
  then ()
  else begin
    let order = matching_order p in
    let pmap = Array.make np (-1) in
    (* pattern -> target *)
    let used = Array.make nt false in
    let stop = ref false in
    let rec go depth =
      if !stop then ()
      else if depth = np then begin
        (* Collect the target edges realising each pattern edge. *)
        let edges = Bitset.create t.Flat.m in
        for k = 0 to p.Flat.m - 1 do
          let te = Flat.find_edge_id t pmap.(p.Flat.eu.(k)) pmap.(p.Flat.ev.(k)) in
          assert (te >= 0);
          Bitset.add edges te
        done;
        if not (f { Embedding.vmap = Array.copy pmap; edges }) then stop := true
      end
      else begin
        let pu = order.(depth) in
        (* Already-matched pattern neighbors of the vertex being placed,
           as (mapped target vertex, edge label) — per search-tree node,
           since deeper frames would clobber shared scratch. *)
        let mn_tv = Array.make (max 1 p.Flat.deg.(pu)) 0 in
        let mn_lab = Array.make (max 1 p.Flat.deg.(pu)) 0 in
        let mn = ref 0 in
        for a = p.Flat.off.(pu) to p.Flat.off.(pu + 1) - 1 do
          let w = p.Flat.nbr.(a) in
          if pmap.(w) >= 0 then begin
            mn_tv.(!mn) <- pmap.(w);
            mn_lab.(!mn) <- p.Flat.elab.(a);
            incr mn
          end
        done;
        let k = !mn in
        let feasible tv =
          (not used.(tv))
          && p.Flat.vlabels.(pu) = t.Flat.vlabels.(tv)
          && t.Flat.deg.(tv) >= p.Flat.deg.(pu)
          &&
          let ok = ref true in
          let i = ref 0 in
          while !ok && !i < k do
            let te = Flat.find_edge_id t tv mn_tv.(!i) in
            if te < 0 || t.Flat.el.(te) <> mn_lab.(!i) then ok := false;
            incr i
          done;
          !ok
        in
        let try_tv tv =
          if (not !stop) && feasible tv then begin
            pmap.(pu) <- tv;
            used.(tv) <- true;
            go (depth + 1);
            pmap.(pu) <- -1;
            used.(tv) <- false
          end
        in
        if k > 0 then begin
          (* Candidates must be neighbors of the mapped anchor through an
             edge with the right label; the adjacency slice is sorted
             ascending, reproducing the legacy sort_uniq order. *)
          let anchor = mn_tv.(0) and elab = mn_lab.(0) in
          for b = t.Flat.off.(anchor) to t.Flat.off.(anchor + 1) - 1 do
            if t.Flat.elab.(b) = elab then try_tv t.Flat.nbr.(b)
          done
        end
        else
          for tv = 0 to nt - 1 do
            try_tv tv
          done
      end
    in
    go 0
  end

let exists pattern target =
  let found = ref false in
  iter pattern target (fun _ ->
      found := true;
      false);
  !found

let find_one pattern target =
  let result = ref None in
  iter pattern target (fun e ->
      result := Some e;
      false);
  !result

let count ?limit pattern target =
  let n = ref 0 in
  iter pattern target (fun _ ->
      incr n;
      match limit with Some l -> !n < l | None -> true);
  !n

let distinct_embeddings ?(cap = max_int) pattern target =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let n = ref 0 in
  iter pattern target (fun e ->
      let key = Bitset.elements e.Embedding.edges in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        out := e :: !out;
        incr n
      end;
      !n < cap);
  List.rev !out
