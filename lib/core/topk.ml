module Prng = Psst_util.Prng

type hit = { graph : int; ssp : float }

type stats = {
  structural_candidates : int;
  verified : int;
  bound_skipped : int;
  relaxed_truncated : bool;
}

let m_runs = Psst_obs.counter "topk.runs"

type outcome = { hits : hit list; stats : stats }

let verify_one (config : Query.config) rng g relaxed =
  match config.verifier with
  | `Exact -> Verify.exact g relaxed
  | `Smp vc -> Verify.smp ~config:vc rng g relaxed

let run (db : Query.database) q ~k (config : Query.config) =
  if k <= 0 then invalid_arg "Topk.run: k must be positive";
  Psst_obs.incr m_runs;
  let rng = Prng.make config.seed in
  let relaxed, status =
    Relax.relaxed_set ~cap:config.relax_cap q ~delta:config.delta
  in
  let structural =
    Structural.candidates db.structural db.skeletons q ~delta:config.delta
  in
  let prepared = Pruning.prepare db.pmi ~relaxed in
  (* Candidates ordered by decreasing upper bound. *)
  let ranked =
    List.map
      (fun gi ->
        let u =
          Pruning.usim ~certified:config.certified rng db.pmi prepared ~graph:gi
            ~mode:config.mode
        in
        (gi, u))
      structural
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  (* Best-first: verify until the k-th best verified SSP dominates every
     remaining upper bound. The verified set is kept as a sorted list
     (k is small). *)
  let hits = ref [] in
  let kth_best () =
    if List.length !hits < k then 0.
    else match List.nth_opt !hits (k - 1) with Some h -> h.ssp | None -> 0.
  in
  let verified = ref 0 and skipped = ref 0 in
  List.iter
    (fun (gi, upper) ->
      if upper < kth_best () || (List.length !hits >= k && upper = 0.) then
        incr skipped
      else begin
        incr verified;
        let ssp = verify_one config rng db.graphs.(gi) relaxed in
        if ssp > 0. then begin
          hits := { graph = gi; ssp } :: !hits;
          hits :=
            List.sort
              (fun a b ->
                match compare b.ssp a.ssp with
                | 0 -> compare a.graph b.graph
                | c -> c)
              !hits
        end
      end)
    ranked;
  let top = List.filteri (fun i _ -> i < k) !hits in
  {
    hits = top;
    stats =
      {
        structural_candidates = List.length structural;
        verified = !verified;
        bound_skipped = !skipped;
        relaxed_truncated = status = `Truncated;
      };
  }
