(** Ullmann-style subgraph isomorphism with bitset candidate domains and
    arc-consistency refinement.

    A second, independent matcher used to cross-validate {!Vf2} (property
    tests assert they agree) and as an ablation arm in the benchmarks.
    Same semantics as {!Vf2}: non-induced matching, vertex and edge labels
    must match, patterns may be disconnected. *)

(** [exists pattern target] tests [pattern ⊆iso target]. *)
val exists : Lgraph.t -> Lgraph.t -> bool

(** First embedding found, if any. *)
val find_one : Lgraph.t -> Lgraph.t -> Embedding.t option

(** [iter pattern target f] enumerates embeddings (one per injective
    vertex map); [f] returns [true] to continue. *)
val iter : Lgraph.t -> Lgraph.t -> (Embedding.t -> bool) -> unit

(** [count ?limit pattern target] counts vertex-map embeddings. *)
val count : ?limit:int -> Lgraph.t -> Lgraph.t -> int
