(* Scatter-gather router over shard workers (DESIGN.md §14).

   One router process fronts N {!Psst_server} workers, each serving one
   shard of a {!Psst_shard} deployment. Per client request the router
   fans the query out to every worker, gathers the per-shard replies and
   merges them — T-PS answers by sorted union, top-k by the
   threshold-aware merge — which is bit-identical to a monolithic server
   because every per-graph verdict draws from PRNG streams keyed on the
   global graph id (see Psst_shard).

   Thread roles mirror Psst_server minus the batcher: one accept thread,
   one reader thread per client connection. Each reader owns its own set
   of worker connections (Psst_client.t is single-threaded) and executes
   requests serially: send to every worker first, then gather, so the
   shards verify concurrently while the router blocks only once per
   request.

   Failure ladder per worker and request (DESIGN.md §12): transport
   break or timeout -> reconnect and retry up to [retries] times (each
   retry against the shard's current best replica) -> local bounds-only
   fallback on the shard's own file when the router was given one
   (answer flagged degraded: a superset of the exact per-shard answer)
   -> otherwise the whole request fails with one clean retryable
   [Unavailable]. Top-k has no bounds fallback (a ranking with a hole
   is wrong, not degraded), so a dead worker fails the request cleanly.
   The ["router.scatter"] chaos site makes a worker appear faulted (or
   slow, [Delay]) from the router's side without touching the worker
   process.

   Replica awareness (DESIGN.md §17): each shard's entry in [workers]
   is a GROUP of endpoints — slot 0 the primary, the rest standbys. A
   request goes to the shard's preferred replica: the primary while it
   is believed alive, else the freshest live replica (highest observed
   ingest epoch, ties to the lowest rid). Liveness comes from two
   sources: any reader marking a replica dead on a transport failure
   (so failover happens mid-request, on the first retry), and the
   optional heartbeat poller ([heartbeat_ms] > 0) polling [Get_health]
   per replica — which is also what revives a recovered primary and
   triggers failback. Because a standby answers bit-identically at its
   applied epoch, failover restores *exact* answers where a dead
   single-replica shard could only degrade to bounds. *)

module Proto = Psst_proto
module Client = Psst_client

let m_conns = Psst_obs.counter "router.conns"
let m_requests = Psst_obs.counter "router.requests"
let m_worker_calls = Psst_obs.counter "router.worker.calls"
let m_worker_retries = Psst_obs.counter "router.worker.retries"
let m_worker_failures = Psst_obs.counter "router.worker.failures"
let m_degraded_shards = Psst_obs.counter "router.degraded_shards"
let m_unavailable = Psst_obs.counter "router.unavailable"
let m_write_errors = Psst_obs.counter "router.write.errors"
let m_proto_errors = Psst_obs.counter "router.proto.errors"
let m_latency = Psst_obs.histogram "router.latency_s"
let m_failover = Psst_obs.counter "router.failover"
let m_failback = Psst_obs.counter "router.failback"
let m_replica_lag = Psst_obs.histogram ~lo:1. ~hi:1e6 "router.replica_lag"

let fault_scatter = Psst_fault.site "router.scatter"

type config = {
  endpoint : Proto.endpoint;
  workers : Proto.endpoint array array;
      (* [workers.(sid).(rid)]: one replica group per shard *)
  shard_timeout_ms : float;
  retries : int;
  heartbeat_ms : float;  (* 0. = no liveness poller *)
  local_fallback : (int -> Query.database option) option;
}

let default_config ~endpoint ~workers =
  {
    endpoint;
    workers = Array.of_list (List.map (fun e -> [| e |]) workers);
    shard_timeout_ms = 0.;
    retries = 1;
    heartbeat_ms = 0.;
    local_fallback = None;
  }

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  mutable open_ : bool;
}

(* One reader thread's lazily-connected link to one shard (to whichever
   replica of the group is currently preferred). *)
type wstate = { mutable client : Client.t option; mutable rid : int }

(* Shared per-replica liveness, guarded by [rmutex]. Replicas start
   optimistically alive so the first request goes straight to the
   primary without waiting for a poll. *)
type replica_state = { mutable alive : bool; mutable repoch : int }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound : Proto.endpoint;
  mutex : Mutex.t;
  mutable stopping : bool;
  mutable is_stopped : bool;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable hb_thread : Thread.t option;
  rmutex : Mutex.t;
  replicas : replica_state array array;  (* guarded by rmutex *)
  preferred : int array;  (* rid serving each shard, guarded by rmutex *)
  served_count : int Atomic.t;
  degraded_count : int Atomic.t;
  retry_count : int Atomic.t;
  start_time : float;
}

let endpoint t = t.bound
let stopped t = t.is_stopped
let served t = Atomic.get t.served_count

(* --- replica liveness and preference --- *)

let preferred_rid t sid =
  Mutex.lock t.rmutex;
  let rid = t.preferred.(sid) in
  Mutex.unlock t.rmutex;
  rid

(* Caller holds rmutex. Primary while alive, else the freshest live
   replica (ties to the lowest rid); with the whole group down, stay on
   the primary optimistically — the degradation ladder takes over. *)
let recompute_preferred t sid =
  let group = t.replicas.(sid) in
  let next =
    if group.(0).alive then 0
    else begin
      let best = ref (-1) in
      Array.iteri
        (fun rid st ->
          if
            st.alive
            && (!best < 0 || st.repoch > group.(!best).repoch)
          then best := rid)
        group;
      if !best < 0 then 0 else !best
    end
  in
  let prev = t.preferred.(sid) in
  if next <> prev then begin
    t.preferred.(sid) <- next;
    if next = 0 then begin
      Psst_obs.incr m_failback;
      Psst_obs.warn ~code:"router.failback"
        (Printf.sprintf "shard %d: primary is back, failing back from replica %d"
           sid prev)
    end
    else begin
      Psst_obs.incr m_failover;
      Psst_obs.warn ~code:"router.failover"
        (Printf.sprintf
           "shard %d: replica %d down, failing over to replica %d (epoch %d)"
           sid prev next group.(next).repoch)
    end
  end

let mark_dead t sid rid =
  Mutex.lock t.rmutex;
  if t.replicas.(sid).(rid).alive then begin
    t.replicas.(sid).(rid).alive <- false;
    recompute_preferred t sid
  end;
  Mutex.unlock t.rmutex

let mark_alive t sid rid epoch =
  Mutex.lock t.rmutex;
  let st = t.replicas.(sid).(rid) in
  st.repoch <- epoch;
  if not st.alive then begin
    st.alive <- true;
    recompute_preferred t sid
  end;
  Mutex.unlock t.rmutex

(* --- worker links --- *)

let transport_failure = function
  | End_of_file | Proto.Proto_error _ | Proto.Timed_out
  | Unix.Unix_error (_, _, _)
  | Sys_error _ | Client.Client_error _
  | Psst_fault.Injected _ ->
    true
  | _ -> false

let drop_client ws =
  match ws.client with
  | Some c ->
    Client.close c;
    ws.client <- None
  | None -> ()

(* Point [ws] at the shard's currently preferred replica, dropping a
   connection to a replica that is no longer it. *)
let sync_preferred t ws sid =
  let rid = preferred_rid t sid in
  if ws.rid <> rid then begin
    drop_client ws;
    ws.rid <- rid
  end

let ensure_client t ws sid =
  match ws.client with
  | Some c -> c
  | None ->
    let c =
      Client.connect ~connect_timeout_ms:t.cfg.shard_timeout_ms
        ~call_timeout_ms:t.cfg.shard_timeout_ms t.cfg.workers.(sid).(ws.rid)
    in
    ws.client <- Some c;
    c

(* Sequential rpc with reconnect, for workers that fell off the pipelined
   fast path. [attempts] are *re*tries: the caller already burned the
   first try. Each retry re-reads the shard's preferred replica, so a
   failure that just marked the primary dead sends the retry to a live
   standby — mid-request failover. *)
let retry_rpc t ws sid req =
  let rec go attempt =
    if attempt >= t.cfg.retries then begin
      Psst_obs.incr m_worker_failures;
      None
    end
    else begin
      Psst_obs.incr m_worker_retries;
      Psst_obs.incr m_worker_calls;
      sync_preferred t ws sid;
      match Client.rpc (ensure_client t ws sid) req with
      | reply -> Some reply
      | exception e when transport_failure e ->
        drop_client ws;
        mark_dead t sid ws.rid;
        go (attempt + 1)
    end
  in
  go 0

(* Scatter one request to every worker: consult the chaos site once per
   worker, pipeline the sends so the shards execute concurrently, then
   gather in worker order. Slot [sid] is [None] when the worker stayed
   unreachable through the retry budget (or the chaos site declared it
   faulted). *)
let scatter t (wss : wstate array) req =
  let n = Array.length wss in
  let state = Array.make n `Retry in
  for sid = 0 to n - 1 do
    state.(sid) <-
      (match Psst_fault.fire fault_scatter with
      | Some (Psst_fault.Delay s) ->
        Unix.sleepf s;
        `Send
      | Some _ ->
        (* Injected router-side fault: this worker is unreachable for
           this request, no retries — the ladder below decides whether
           that degrades the shard or fails the query. *)
        drop_client wss.(sid);
        Psst_obs.incr m_worker_failures;
        `Faulted
      | None -> `Send)
  done;
  for sid = 0 to n - 1 do
    if state.(sid) = `Send then begin
      Psst_obs.incr m_worker_calls;
      sync_preferred t wss.(sid) sid;
      match Client.send (ensure_client t wss.(sid) sid) req with
      | () -> state.(sid) <- `Sent
      | exception e when transport_failure e ->
        drop_client wss.(sid);
        mark_dead t sid wss.(sid).rid;
        state.(sid) <- `Retry
    end
  done;
  Array.mapi
    (fun sid st ->
      match st with
      | `Faulted -> None
      | `Sent -> (
        match Client.read_reply (ensure_client t wss.(sid) sid) with
        | reply -> Some reply
        | exception e when transport_failure e ->
          drop_client wss.(sid);
          mark_dead t sid wss.(sid).rid;
          retry_rpc t wss.(sid) sid req)
      | `Send | `Retry -> retry_rpc t wss.(sid) sid req)
    state

(* --- per-request merging --- *)

let merge_proto_stats (a : Proto.query_stats) (b : Proto.query_stats) =
  {
    Proto.relaxed_truncated = a.relaxed_truncated || b.relaxed_truncated;
    structural_candidates = a.structural_candidates + b.structural_candidates;
    prob_candidates = a.prob_candidates + b.prob_candidates;
    accepted_by_bounds = a.accepted_by_bounds + b.accepted_by_bounds;
    pruned_by_bounds = a.pruned_by_bounds + b.pruned_by_bounds;
    degraded = a.degraded || b.degraded;
  }

(* Bounds-only fallback for one shard: correct to the PMI bounds (a
   superset of the worker's exact answer), always flagged degraded. *)
let shard_fallback t sid ~why query config =
  match t.cfg.local_fallback with
  | None -> None
  | Some lookup -> (
    match lookup sid with
    | None -> None
    | Some db -> (
      match Query.run_bounds_only db query config with
      | out ->
        Psst_obs.incr m_degraded_shards;
        Psst_obs.warn ~code:"router.degraded"
          (Printf.sprintf
             "worker %d %s: serving shard %d from local PMI bounds" sid why sid);
        Some
          ( out.Query.answers,
            { (Proto.stats_of_query out.Query.stats) with Proto.degraded = true } )
      | exception _ -> None))

type 'frag resolution =
  | Frag of 'frag
  | Hard of Proto.reply  (* a worker's non-retryable error: propagate *)
  | Down of int  (* worker sid with no answer and no fallback *)

let resolve_run t query config sid = function
  | Some (Proto.Answer { answers; stats; _ }) -> Frag (answers, stats)
  | Some (Proto.Error_reply { code; message; _ } as e) ->
    if Proto.error_code_retryable code then
      (* The worker rejected without executing (queue full / draining):
         same ladder as an unreachable worker. *)
      match shard_fallback t sid ~why:("rejected: " ^ message) query config with
      | Some frag -> Frag frag
      | None -> Down sid
    else Hard e
  | Some _ -> Hard (Proto.Error_reply
      { id = 0; code = Proto.Internal;
        message = Printf.sprintf "worker %d: unexpected reply kind" sid })
  | None -> (
    match shard_fallback t sid ~why:"unreachable" query config with
    | Some frag -> Frag frag
    | None -> Down sid)

let resolve_topk sid = function
  | Some (Proto.Topk_answer { hits; _ }) -> Frag hits
  | Some (Proto.Error_reply { code; _ } as e)
    when not (Proto.error_code_retryable code) ->
    Hard e
  (* Retryable rejections and dead workers both fail the ranking: a
     top-k list missing one shard's graphs is wrong, not degraded. *)
  | Some (Proto.Error_reply _) | Some _ | None -> Down sid

let gather resolutions ~id ~what =
  let hard = ref None and down = ref None and frags = ref [] in
  Array.iter
    (fun r ->
      match r with
      | Frag f -> frags := f :: !frags
      | Hard e -> if !hard = None then hard := Some e
      | Down sid -> if !down = None then down := Some sid)
    resolutions;
  match !hard with
  | Some (Proto.Error_reply e) ->
    Error (Proto.Error_reply { e with id })
  | Some r -> Error r
  | None -> (
    match !down with
    | Some sid ->
      Psst_obs.incr m_unavailable;
      Error
        (Proto.Error_reply
           {
             id;
             code = Proto.Unavailable;
             message =
               Printf.sprintf
                 "shard %d unavailable and no local fallback; %s failed — retry"
                 sid what;
           })
    | None -> Ok (List.rev !frags))

let handle_run t wss ~id query config =
  let replies = scatter t wss (Proto.Run { id; query; config }) in
  let res = Array.mapi (resolve_run t query config) replies in
  match gather res ~id ~what:"T-PS query" with
  | Error reply -> reply
  | Ok [] -> Proto.Error_reply
      { id; code = Proto.Internal; message = "router has no workers" }
  | Ok ((a0, s0) :: rest) ->
    let answers, stats =
      List.fold_left
        (fun (ans, st) (a, s) -> (a :: ans, merge_proto_stats st s))
        ([ a0 ], s0) rest
    in
    Proto.Answer { id; answers = Psst_shard.merge_answers answers; stats }

let handle_topk t wss ~id query k config =
  let replies = scatter t wss (Proto.Run_topk { id; query; k; config }) in
  let res = Array.mapi (fun sid r -> resolve_topk sid r) replies in
  match gather res ~id ~what:"top-k query" with
  | Error reply -> reply
  | Ok per_shard ->
    let hits =
      per_shard
      |> List.map
           (List.map (fun (g, ssp) -> { Topk.graph = g; ssp }))
      |> Psst_shard.merge_topk ~k
      |> List.map (fun (h : Topk.hit) -> (h.graph, h.ssp))
    in
    Proto.Topk_answer { id; hits }

(* --- health aggregation and the heartbeat poller --- *)

(* One short-lived Get_health probe. Shared by the roster and the
   poller; updates the liveness table as a side effect, so a [client
   --health] against the router is also a poll. *)
let probe t sid rid =
  let timeout =
    if t.cfg.shard_timeout_ms > 0. then t.cfg.shard_timeout_ms else 1000.
  in
  match
    let c =
      Client.connect ~connect_timeout_ms:timeout ~call_timeout_ms:timeout
        t.cfg.workers.(sid).(rid)
    in
    Fun.protect ~finally:(fun () -> Client.close c) (fun () -> Client.health c)
  with
  | h ->
    mark_alive t sid rid h.Proto.epoch;
    Some h
  | exception e when transport_failure e ->
    mark_dead t sid rid;
    None

let roster t =
  List.concat
    (Array.to_list
       (Array.mapi
          (fun sid group ->
            let slots =
              Array.to_list
                (Array.mapi
                   (fun rid _ ->
                     match probe t sid rid with
                     | Some h ->
                       {
                         Proto.wid = sid;
                         reachable = true;
                         worker_uptime_s = h.Proto.uptime_s;
                         worker_queue_depth = h.Proto.queue_depth;
                         worker_degraded_answers = h.Proto.degraded_answers;
                         rid;
                         worker_epoch = h.Proto.epoch;
                         primary = false;  (* stamped below *)
                       }
                     | None ->
                       {
                         Proto.wid = sid;
                         reachable = false;
                         worker_uptime_s = 0.;
                         worker_queue_depth = 0;
                         worker_degraded_answers = 0;
                         rid;
                         worker_epoch = 0;
                         primary = false;
                       })
                   group)
            in
            (* Stamp the preferred replica after all probes, so a probe
               that just triggered a failover is reflected. *)
            let pref = preferred_rid t sid in
            List.map
              (fun (w : Proto.worker_health) ->
                { w with Proto.primary = w.Proto.rid = pref })
              slots)
          t.cfg.workers))

let health_snapshot t =
  {
    Proto.uptime_s = Unix.gettimeofday () -. t.start_time;
    (* The router executes requests inline on the reader threads — it has
       no admission queue of its own; per-worker depths are in the
       roster. *)
    queue_depth = 0;
    served = Atomic.get t.served_count;
    degraded_answers = Atomic.get t.degraded_count;
    retryable_rejections = Atomic.get t.retry_count;
    workers = roster t;
    (* The router holds no database and never ingests; shards are
       rebuilt offline and redeployed (DESIGN.md §15, §16). *)
    epoch = 0;
    ingest_queued = 0;
    ingest_applied = 0;
  }

let fresh_wss t =
  Array.mapi
    (fun sid _ -> { client = None; rid = preferred_rid t sid })
    t.cfg.workers

let health t = health_snapshot t

(* Liveness poller: one Get_health probe per replica per cycle, cadence
   [heartbeat_ms] with a deterministic jitter (so a fleet of routers
   does not poll in lockstep), sleeping in short slices to react to
   stop. Also feeds router.replica_lag: the freshest observed epoch in
   each group minus each live replica's epoch. *)
let heartbeat_loop t =
  let cycle = ref 0 in
  while not t.stopping do
    Array.iteri
      (fun sid group -> Array.iteri (fun rid _ -> ignore (probe t sid rid)) group)
      t.cfg.workers;
    Mutex.lock t.rmutex;
    Array.iteri
      (fun _sid group ->
        if Array.length group > 1 then begin
          let freshest =
            Array.fold_left
              (fun acc st -> if st.alive then max acc st.repoch else acc)
              0 group
          in
          Array.iter
            (fun st ->
              if st.alive then
                Psst_obs.observe m_replica_lag
                  (float_of_int (max 0 (freshest - st.repoch))))
            group
        end)
      t.replicas;
    Mutex.unlock t.rmutex;
    incr cycle;
    let jitter = 0.9 +. (0.2 *. float_of_int (!cycle * 7919 mod 997) /. 997.) in
    let until = Unix.gettimeofday () +. (t.cfg.heartbeat_ms /. 1000. *. jitter) in
    while (not t.stopping) && Unix.gettimeofday () < until do
      Thread.delay 0.05
    done
  done

(* --- connection plumbing (same discipline as Psst_server) --- *)

let close_conn t c =
  Mutex.lock c.wmutex;
  let was_open = c.open_ in
  if was_open then begin
    c.open_ <- false;
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ())
  end;
  Mutex.unlock c.wmutex;
  if was_open then begin
    Mutex.lock t.mutex;
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    Mutex.unlock t.mutex
  end

let send_reply c ~version reply =
  Mutex.lock c.wmutex;
  (if c.open_ then
     match Proto.write_frame_fd c.fd (Proto.encode_reply ~version reply) with
     | () -> ()
     | exception (Sys_error _ | Unix.Unix_error (_, _, _)) ->
       Psst_obs.incr m_write_errors
     | exception Psst_fault.Injected _ -> Psst_obs.incr m_write_errors);
  Mutex.unlock c.wmutex

let send_counted t c ~version reply =
  Atomic.incr t.served_count;
  (match reply with
  | Proto.Answer { stats; _ } when stats.Proto.degraded ->
    Atomic.incr t.degraded_count
  | Proto.Error_reply { code; _ } when Proto.error_code_retryable code ->
    Atomic.incr t.retry_count
  | _ -> ());
  send_reply c ~version reply

let reader_loop t c =
  let wss = fresh_wss t in
  let answer_query ~version ~id make =
    Psst_obs.incr m_requests;
    if t.stopping then
      send_counted t c ~version
        (Proto.Error_reply
           { id; code = Proto.Shutdown;
             message = "router is shutting down; retry elsewhere" })
    else begin
      let t0 = Unix.gettimeofday () in
      send_counted t c ~version (make ());
      Psst_obs.observe m_latency (Unix.gettimeofday () -. t0)
    end
  in
  let rec loop () =
    match Proto.read_request_fd c.fd with
    | exception End_of_file -> close_conn t c
    | exception (Sys_error _ | Unix.Unix_error (_, _, _)) -> close_conn t c
    | exception Psst_fault.Injected _ -> close_conn t c
    | exception Proto.Proto_error msg ->
      Psst_obs.incr m_proto_errors;
      Psst_obs.warn ~code:"proto" msg;
      send_counted t c ~version:Proto.min_proto_version
        (Proto.Error_reply { id = 0; code = Proto.Malformed; message = msg });
      close_conn t c
    | version, req ->
      (match req with
      | Proto.Ping ->
        Psst_obs.incr m_requests;
        send_counted t c ~version Proto.Pong
      | Proto.Get_stats ->
        Psst_obs.incr m_requests;
        send_counted t c ~version (Proto.Stats_json (Psst_obs.to_json_string ()))
      | Proto.Get_health ->
        Psst_obs.incr m_requests;
        send_counted t c ~version (Proto.Health_reply (health_snapshot t))
      | Proto.Set_tenant _ ->
        (* Accepted for forward compatibility: workers meter tenants;
           the router itself schedules nothing per-tenant. *)
        Psst_obs.incr m_requests;
        send_counted t c ~version Proto.Pong
      | Proto.Add_graphs { id; _ } ->
        (* A sharded deployment's placement is fixed offline
           (DESIGN.md §15); routing live appends would change shard
           hashing under readers. Reject cleanly — retryable against a
           standalone worker. *)
        Psst_obs.incr m_requests;
        send_counted t c ~version
          (Proto.Error_reply
             {
               id;
               code = Proto.Unavailable;
               message =
                 "ingest is not supported through the router; send \
                  Add_graphs to a standalone worker";
             })
      | Proto.Subscribe _ | Proto.Replica_ack _ ->
        (* Replication streams run worker-to-standby (DESIGN.md §17);
           the router is stateless and has no delta chain to stream. *)
        Psst_obs.incr m_requests;
        send_counted t c ~version
          (Proto.Error_reply
             {
               id = 0;
               code = Proto.Unavailable;
               message =
                 "replication subscriptions are not supported through \
                  the router; subscribe to the shard's primary worker";
             })
      | Proto.Run { id; query; config } ->
        answer_query ~version ~id (fun () -> handle_run t wss ~id query config)
      | Proto.Run_topk { id; query; k; config } ->
        answer_query ~version ~id (fun () ->
            handle_topk t wss ~id query k config));
      loop ()
  in
  Fun.protect ~finally:(fun () -> Array.iter drop_client wss) loop

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr when t.stopping ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    | fd, _addr ->
      let c = { fd; wmutex = Mutex.create (); open_ = true } in
      Psst_obs.incr m_conns;
      let th =
        Thread.create
          (fun () ->
            try reader_loop t c
            with e ->
              Psst_obs.warn ~code:"router.reader" (Printexc.to_string e);
              close_conn t c)
          ()
      in
      Mutex.lock t.mutex;
      t.conns <- c :: t.conns;
      t.readers <- th :: t.readers;
      Mutex.unlock t.mutex;
      loop ()
    | exception Unix.Unix_error (e, _, _) ->
      if t.stopping then ()
      else if e = Unix.ECONNABORTED || e = Unix.EINTR then loop ()
      else begin
        Psst_obs.warn ~code:"router.accept" (Unix.error_message e);
        Thread.delay 0.05;
        if t.stopping then () else loop ()
      end
  in
  loop ()

(* --- lifecycle --- *)

let bind_endpoint = function
  | Proto.Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path) with e -> Unix.close fd; raise e);
    Unix.listen fd 64;
    (fd, Proto.Unix_socket path)
  | Proto.Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> failwith (host ^ ": unknown host"))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (addr, port))
     with e -> Unix.close fd; raise e);
    Unix.listen fd 64;
    let actual =
      match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
    in
    (fd, Proto.Tcp (host, actual))

let start cfg =
  if Array.length cfg.workers = 0 then
    invalid_arg "Psst_router: at least one worker endpoint required";
  Array.iteri
    (fun sid group ->
      if Array.length group = 0 then
        invalid_arg
          (Printf.sprintf "Psst_router: shard %d has an empty replica group" sid))
    cfg.workers;
  if cfg.retries < 0 then invalid_arg "Psst_router: retries must be >= 0";
  if cfg.heartbeat_ms < 0. then
    invalid_arg "Psst_router: heartbeat_ms must be >= 0";
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let listen_fd, bound = bind_endpoint cfg.endpoint in
  let t =
    {
      cfg;
      listen_fd;
      bound;
      mutex = Mutex.create ();
      stopping = false;
      is_stopped = false;
      conns = [];
      readers = [];
      accept_thread = None;
      hb_thread = None;
      rmutex = Mutex.create ();
      replicas =
        Array.map
          (Array.map (fun _ -> { alive = true; repoch = 0 }))
          cfg.workers;
      preferred = Array.make (Array.length cfg.workers) 0;
      served_count = Atomic.make 0;
      degraded_count = Atomic.make 0;
      retry_count = Atomic.make 0;
      start_time = Unix.gettimeofday ();
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  if cfg.heartbeat_ms > 0. then
    t.hb_thread <-
      Some
        (Thread.create
           (fun () ->
             try heartbeat_loop t
             with e ->
               Psst_obs.warn ~code:"router.heartbeat" (Printexc.to_string e))
           ());
  t

let stop t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.mutex;
  if not already then begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    (try
       let wake =
         match t.bound with
         | Proto.Unix_socket path ->
           let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
           (try Unix.connect fd (Unix.ADDR_UNIX path)
            with e -> Unix.close fd; raise e);
           fd
         | Proto.Tcp (_, port) ->
           let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
           (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
            with e -> Unix.close fd; raise e);
           fd
       in
       Unix.close wake
     with Unix.Unix_error (_, _, _) | Failure _ -> ());
    Option.iter Thread.join t.accept_thread;
    Option.iter Thread.join t.hb_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
    (* A request already executing finishes its scatter (bounded by the
       per-shard timeouts); closing the connection under it only loses
       the reply write, never wedges the thread. *)
    Mutex.lock t.mutex;
    let conns = t.conns and readers = t.readers in
    Mutex.unlock t.mutex;
    List.iter (fun c -> close_conn t c) conns;
    List.iter Thread.join readers;
    (match t.bound with
    | Proto.Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
    | Proto.Tcp _ -> ());
    t.is_stopped <- true
  end
