lib/pgm/factor.ml: Array Float Format List Option Psst_util
