module Prng = Psst_util.Prng
module Bitset = Psst_util.Bitset

type params = {
  num_graphs : int;
  num_organisms : int;
  min_vertices : int;
  max_vertices : int;
  extra_edge_ratio : float;
  num_vertex_labels : int;
  num_edge_labels : int;
  mean_edge_prob : float;
  motif_edges : int;
  max_new_edges_per_factor : int;
  coupling_motif : float;
  coupling_noise : float;
  foreign_motif_prob : float;
  seed : int;
}

let default_params =
  {
    num_graphs = 100;
    num_organisms = 5;
    min_vertices = 10;
    max_vertices = 20;
    extra_edge_ratio = 0.3;
    num_vertex_labels = 6;
    num_edge_labels = 2;
    (* The paper's corpus averages 0.383 over 612-edge graphs; our graphs
       and queries are 10-50x smaller, so per-edge survival must be higher
       to keep SSP values in the same non-degenerate range the paper's
       thresholds (0.3-0.7) probe. See DESIGN.md §4. *)
    mean_edge_prob = 0.8;
    motif_edges = 4;
    max_new_edges_per_factor = 3;
    (* JPT couplings: edges inside an organism's own motif are positively
       correlated (functional modules co-occur); edges of an injected
       foreign motif are negatively correlated (spurious interactions that
       rarely co-occur). The contrast is what separates the correlated
       model from its independent-marginals projection in Fig 14. *)
    coupling_motif = 1.2;
    coupling_noise = -2.0;
    foreign_motif_prob = 0.4;
    seed = 42;
  }

type t = {
  graphs : Pgraph.t array;
  organisms : int array;
  motifs : Lgraph.t array;
  grafts : int option array;
  params : params;
}

(* Organism label bias: organism o prefers labels congruent to o. *)
let biased_vlabel rng p o =
  if Prng.bernoulli rng 0.6 then
    (o + Prng.int rng (max 1 (p.num_vertex_labels / 2))) mod p.num_vertex_labels
  else Prng.int rng p.num_vertex_labels

let random_motif rng p o =
  (* Connected graph with motif_edges edges. *)
  let n = max 2 (p.motif_edges * 2 / 3 + 1) in
  let vlabels = Array.init n (fun _ -> biased_vlabel rng p o) in
  let edges = ref [] in
  let has (u, v) = List.exists (fun (a, b, _) -> (a, b) = (min u v, max u v)) !edges in
  for i = 1 to n - 1 do
    let j = Prng.int rng i in
    edges := (min i j, max i j, Prng.int rng p.num_edge_labels) :: !edges
  done;
  let want = p.motif_edges in
  let attempts = ref 0 in
  while List.length !edges < want && !attempts < 100 do
    incr attempts;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (has (u, v)) then
      edges := (min u v, max u v, Prng.int rng p.num_edge_labels) :: !edges
  done;
  Lgraph.create ~vlabels ~edges:!edges

type region = Motif | Foreign | Noise

(* Skeleton of one graph: a copy of the organism motif, extended by a random
   tree plus extra edges with organism-biased labels, and — with probability
   [foreign_motif_prob] — a grafted copy of another organism's motif. The
   returned function maps each vertex to its region. *)
let random_skeleton rng p o motifs =
  let grafted = ref None in
  let motif = motifs.(o) in
  let n = p.min_vertices + Prng.int rng (max 1 (p.max_vertices - p.min_vertices + 1)) in
  let nm = Lgraph.num_vertices motif in
  let n = max n (nm + 2) in
  let base_vlabels =
    Array.init n (fun i ->
        if i < nm then Lgraph.vertex_label motif i else biased_vlabel rng p o)
  in
  let edges = ref [] in
  let has (u, v) = List.exists (fun (a, b, _) -> (a, b) = (min u v, max u v)) !edges in
  Array.iter
    (fun (e : Lgraph.edge) -> edges := (e.u, e.v, e.label) :: !edges)
    (Lgraph.edges motif);
  (* Attach the remaining vertices as a random tree (keeps connectivity). *)
  for i = nm to n - 1 do
    let j = Prng.int rng i in
    edges := (min i j, max i j, Prng.int rng p.num_edge_labels) :: !edges
  done;
  let extra = int_of_float (float_of_int n *. p.extra_edge_ratio) in
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra && !attempts < 50 * (extra + 1) do
    incr attempts;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (has (u, v)) then begin
      edges := (min u v, max u v, Prng.int rng p.num_edge_labels) :: !edges;
      incr added
    end
  done;
  (* Foreign motif graft. *)
  let foreign_base = ref n in
  let vlabels = ref (Array.to_list base_vlabels) in
  if Array.length motifs > 1 && Prng.bernoulli rng p.foreign_motif_prob then begin
    let o' = (o + 1 + Prng.int rng (Array.length motifs - 1)) mod Array.length motifs in
    grafted := Some o';
    let fm = motifs.(o') in
    let shift = n in
    vlabels := !vlabels @ Array.to_list (Lgraph.vertex_labels fm);
    Array.iter
      (fun (e : Lgraph.edge) -> edges := (e.u + shift, e.v + shift, e.label) :: !edges)
      (Lgraph.edges fm);
    (* one connector keeps the graph connected *)
    edges :=
      (Prng.int rng n, shift + Prng.int rng (Lgraph.num_vertices fm),
       Prng.int rng p.num_edge_labels)
      :: !edges
  end;
  let g = Lgraph.create ~vlabels:(Array.of_list !vlabels) ~edges:!edges in
  let region v =
    if v < nm then Motif else if v >= !foreign_base then Foreign else Noise
  in
  (g, region, !grafted)

(* Neighbor-edge JPT: independent per-edge weights tilted by an Ising-style
   agreement coupling. kappa > 0 makes neighbor edges co-occur, kappa < 0
   makes them repel, kappa = 0 degenerates to independence. (The paper's
   max-of-neighbors-and-normalise construction is a special case of such a
   tilt, but its correlation sign is uncontrolled; explicit couplings keep
   the Fig 14 contrast meaningful — DESIGN.md §4.) *)
(* Co-presence-penalised JPT for a foreign graft: one factor over all of
   the graft's edges whose weight multiplies the independent product by
   exp(kappa * C(#present, 2)). With kappa < 0 and high per-edge weights
   this keeps each edge's marginal high while making joint survival of
   many edges rare — exactly the regime where the independent-marginals
   projection overestimates subgraph survival (Fig 14). *)
let copresence_joint scope probs kappa =
  let k = Array.length scope in
  let data =
    Array.init (1 lsl k) (fun mask ->
        let w = ref 1. and s = ref 0 in
        for i = 0 to k - 1 do
          let p = probs.(i) in
          if mask land (1 lsl i) <> 0 then begin
            incr s;
            w := !w *. p
          end
          else w := !w *. (1. -. p)
        done;
        !w *. exp (kappa *. float_of_int (!s * (!s - 1) / 2)))
  in
  let total = Array.fold_left ( +. ) 0. data in
  Factor.create scope (Array.map (fun x -> x /. total) data)

let ising_joint scope probs kappa =
  let k = Array.length scope in
  let data =
    Array.init (1 lsl k) (fun mask ->
        let w = ref 1. in
        for i = 0 to k - 1 do
          let p = probs.(i) in
          w := !w *. (if mask land (1 lsl i) <> 0 then p else 1. -. p)
        done;
        let agree = ref 0 in
        for i = 0 to k - 1 do
          for j = i + 1 to k - 1 do
            if (mask lsr i) land 1 = (mask lsr j) land 1 then incr agree
          done
        done;
        !w *. exp (kappa *. float_of_int !agree))
  in
  let total = Array.fold_left ( +. ) 0. data in
  Factor.create scope (Array.map (fun x -> x /. total) data)

(* Conditional of [joint] on the shared "old" edge: renormalise each slice
   of that variable. A slice with zero mass would make the conditional
   undefined; the Ising joints built above are strictly positive. *)
let conditional_on joint old_var =
  let vars = Factor.vars joint in
  let k = Array.length vars in
  let old_pos =
    let rec go i = if vars.(i) = old_var then i else go (i + 1) in
    go 0
  in
  let slice_total = Array.make 2 0. in
  for mask = 0 to (1 lsl k) - 1 do
    let b = if mask land (1 lsl old_pos) <> 0 then 1 else 0 in
    slice_total.(b) <- slice_total.(b) +. Factor.value joint mask
  done;
  Factor.of_fun vars (fun mask ->
      let b = if mask land (1 lsl old_pos) <> 0 then 1 else 0 in
      Factor.value joint mask /. slice_total.(b))

(* Build the chain-consistent factor list for a skeleton: BFS from vertex 0;
   each non-root vertex v introduces the edges whose later endpoint is v,
   grouped into factors of at most [max_new_edges_per_factor] new edges,
   conditioned on the attachment edge of v's BFS parent (RIP holds: that
   edge lives in the parent's factor). *)
let correlated_factors rng p skeleton region =
  let n = Lgraph.num_vertices skeleton in
  let m = Lgraph.num_edges skeleton in
  let edge_prob = Array.init m (fun _ -> Prng.beta rng ~a:1.5 ~b:(1.5 *. (1. -. p.mean_edge_prob) /. p.mean_edge_prob)) in
  (* Foreign-graft edges (including the connector) form one jointly
     distributed neighbor-edge set with a co-presence penalty; they are
     excluded from the BFS chunking below. *)
  let is_foreign_edge (e : Lgraph.edge) =
    region e.u = Foreign || region e.v = Foreign
  in
  let foreign_edges =
    Array.to_list (Lgraph.edges skeleton)
    |> List.filter is_foreign_edge
    |> List.map (fun (e : Lgraph.edge) -> e.id)
    |> List.sort compare
  in
  let in_foreign = Array.make m false in
  List.iter (fun e -> in_foreign.(e) <- true) foreign_edges;
  let graft_factor =
    match foreign_edges with
    | [] -> []
    | edges when List.length edges <= Factor.max_vars ->
      let scope = Array.of_list edges in
      (* High base weights: the STRING-style scores of spurious
         interactions look individually strong. *)
      let probs = Array.map (fun _ -> 0.9 +. Prng.float rng 0.08) scope in
      [ copresence_joint scope probs (0.2 *. p.coupling_noise) ]
    | _ -> []
  in
  (* BFS order and parent edges. *)
  let order = Array.make n (-1) in
  let rank = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let len = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if rank.(s) < 0 then begin
      Queue.add s queue;
      rank.(s) <- !len;
      order.(!len) <- s;
      incr len;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        List.iter
          (fun (w, eid) ->
            if rank.(w) < 0 then begin
              rank.(w) <- !len;
              order.(!len) <- w;
              incr len;
              parent_edge.(w) <- eid;
              Queue.add w queue
            end)
          (Lgraph.neighbors skeleton v)
      done
    end
  done;
  (* Edge introduced at its later-ranked endpoint. *)
  let introduced = Array.make n [] in
  Array.iter
    (fun (e : Lgraph.edge) ->
      if not in_foreign.(e.id) then begin
        let v = if rank.(e.u) > rank.(e.v) then e.u else e.v in
        introduced.(v) <- e.id :: introduced.(v)
      end)
    (Lgraph.edges skeleton);
  let factors = ref [] in
  Array.iter
    (fun v ->
      let news = List.sort compare introduced.(v) in
      if news <> [] then begin
        (* Shared edge: the parent's own attachment edge when it exists. *)
        let bfs_parent =
          if parent_edge.(v) >= 0 then
            Lgraph.other_endpoint (Lgraph.edge skeleton parent_edge.(v)) v
          else -1
        in
        let shared =
          if bfs_parent >= 0 && parent_edge.(bfs_parent) >= 0 then
            Some parent_edge.(bfs_parent)
          else None
        in
        let rec chunks = function
          | [] -> []
          | l ->
            let take = min p.max_new_edges_per_factor (List.length l) in
            let rec split i acc = function
              | rest when i = take -> (List.rev acc, rest)
              | x :: rest -> split (i + 1) (x :: acc) rest
              | [] -> (List.rev acc, [])
            in
            let chunk, rest = split 0 [] l in
            chunk :: chunks rest
        in
        let kappa =
          match region v with
          | Motif -> p.coupling_motif
          | Foreign | Noise ->
            (* mildly anticorrelated background, like the paper's congested
               neighbouring roads (Foreign only reachable here when a graft
               was too large for a single factor) *)
            0.1 *. p.coupling_noise
        in
        List.iter
          (fun chunk ->
            match shared with
            | None ->
              let scope = Array.of_list chunk in
              let probs = Array.map (fun e -> edge_prob.(e)) scope in
              factors := ising_joint scope probs kappa :: !factors
            | Some old_edge ->
              let scope =
                Array.of_list (List.sort_uniq compare (old_edge :: chunk))
              in
              let probs = Array.map (fun e -> edge_prob.(e)) scope in
              let joint = ising_joint scope probs kappa in
              factors := conditional_on joint old_edge :: !factors)
          (chunks news)
      end)
    order;
  graft_factor @ List.rev !factors

let generate p =
  let rng = Prng.make p.seed in
  let motifs = Array.init p.num_organisms (fun o -> random_motif rng p o) in
  let organisms = Array.init p.num_graphs (fun i -> i mod p.num_organisms) in
  let grafts = Array.make p.num_graphs None in
  let graphs =
    Array.mapi
      (fun gi o ->
        let skeleton, region, grafted = random_skeleton rng p o motifs in
        grafts.(gi) <- grafted;
        let factors = correlated_factors rng p skeleton region in
        Pgraph.make skeleton factors)
      organisms
  in
  { graphs; organisms; motifs; grafts; params = p }

let extract_query ?(from_motif = false) rng t ~edges =
  (* When [from_motif] is set, restrict the walk to edges whose endpoints
     both lie in the source graph's motif copy (the generator places the
     motif on the first vertices), so that queries probe the structure all
     organism members share — the setting of the paper's Fig 14
     classification experiment. *)
  let allowed gi (e : Lgraph.edge) =
    if not from_motif then true
    else begin
      let nm = Lgraph.num_vertices t.motifs.(t.organisms.(gi)) in
      e.u < nm && e.v < nm
    end
  in
  let allowed_edges gi g =
    Array.to_list (Lgraph.edges (Pgraph.skeleton g))
    |> List.filter (allowed gi)
    |> List.map (fun (e : Lgraph.edge) -> e.id)
  in
  let eligible =
    Array.to_list t.graphs
    |> List.mapi (fun i g -> (i, g))
    |> List.filter (fun (gi, g) -> List.length (allowed_edges gi g) >= edges)
  in
  if eligible = [] then invalid_arg "Generator.extract_query: query too large";
  let gi, g = List.nth eligible (Prng.int rng (List.length eligible)) in
  let gc = Pgraph.skeleton g in
  let m = Lgraph.num_edges gc in
  let ok = Array.make m false in
  List.iter (fun eid -> ok.(eid) <- true) (allowed_edges gi g);
  (* Grow a connected edge set within the allowed region. *)
  let chosen = Bitset.create m in
  let start =
    let pool = Array.of_list (allowed_edges gi g) in
    Prng.choice rng pool
  in
  let frontier = ref [ start ] in
  let count = ref 0 in
  while !count < edges && !frontier <> [] do
    let pick = List.nth !frontier (Prng.int rng (List.length !frontier)) in
    frontier := List.filter (fun e -> e <> pick) !frontier;
    if not (Bitset.mem chosen pick) then begin
      Bitset.add chosen pick;
      incr count;
      let e = Lgraph.edge gc pick in
      List.iter
        (fun v ->
          List.iter
            (fun (_, eid) ->
              if ok.(eid) && not (Bitset.mem chosen eid) then
                frontier := eid :: !frontier)
            (Lgraph.neighbors gc v))
        [ e.u; e.v ]
    end
  done;
  let sub, _ = Lgraph.with_edge_mask gc chosen in
  let q, _ = Lgraph.drop_isolated sub in
  (q, t.organisms.(gi))

let organism_members t o =
  Array.to_list t.organisms
  |> List.mapi (fun i oo -> (i, oo))
  |> List.filter_map (fun (i, oo) -> if oo = o then Some i else None)

let independent_db t = Array.map Pgraph.to_independent t.graphs

(* --- persistence (DESIGN.md §9) --- *)

module S = Psst_store

let encode_params e p =
  S.put_i64 e p.num_graphs;
  S.put_i64 e p.num_organisms;
  S.put_i64 e p.min_vertices;
  S.put_i64 e p.max_vertices;
  S.put_f64 e p.extra_edge_ratio;
  S.put_i64 e p.num_vertex_labels;
  S.put_i64 e p.num_edge_labels;
  S.put_f64 e p.mean_edge_prob;
  S.put_i64 e p.motif_edges;
  S.put_i64 e p.max_new_edges_per_factor;
  S.put_f64 e p.coupling_motif;
  S.put_f64 e p.coupling_noise;
  S.put_f64 e p.foreign_motif_prob;
  S.put_i64 e p.seed

let decode_params d =
  let num_graphs = S.get_nat d in
  let num_organisms = S.get_nat d in
  let min_vertices = S.get_nat d in
  let max_vertices = S.get_nat d in
  let extra_edge_ratio = S.get_f64 d in
  let num_vertex_labels = S.get_nat d in
  let num_edge_labels = S.get_nat d in
  let mean_edge_prob = S.get_f64 d in
  let motif_edges = S.get_nat d in
  let max_new_edges_per_factor = S.get_nat d in
  let coupling_motif = S.get_f64 d in
  let coupling_noise = S.get_f64 d in
  let foreign_motif_prob = S.get_f64 d in
  let seed = S.get_i64 d in
  {
    num_graphs;
    num_organisms;
    min_vertices;
    max_vertices;
    extra_edge_ratio;
    num_vertex_labels;
    num_edge_labels;
    mean_edge_prob;
    motif_edges;
    max_new_edges_per_factor;
    coupling_motif;
    coupling_noise;
    foreign_motif_prob;
    seed;
  }

let save_binary path t =
  let params = S.encoder () in
  encode_params params t.params;
  let graphs = S.encoder () in
  S.put_array graphs Pgraph_io.encode_binary t.graphs;
  let organisms = S.encoder () in
  S.put_array organisms S.put_i64 t.organisms;
  let motifs = S.encoder () in
  S.put_array motifs S.put_lgraph t.motifs;
  let grafts = S.encoder () in
  S.put_array grafts (fun e g -> S.put_option e S.put_i64 g) t.grafts;
  S.write_file path ~kind:S.Dataset
    [
      S.section "params" params;
      S.section "graphs" graphs;
      S.section "organisms" organisms;
      S.section "motifs" motifs;
      S.section "grafts" grafts;
    ]

let load_binary path =
  let sections = S.read_file path ~kind:S.Dataset in
  let params = S.decode_section sections "params" decode_params in
  let graphs =
    S.decode_section sections "graphs" (fun d ->
        S.get_array d Pgraph_io.decode_binary)
  in
  let organisms =
    S.decode_section sections "organisms" (fun d -> S.get_array d S.get_nat)
  in
  let motifs =
    S.decode_section sections "motifs" (fun d -> S.get_array d S.get_lgraph)
  in
  let grafts =
    S.decode_section sections "grafts" (fun d ->
        S.get_array d (fun d -> S.get_option d S.get_nat))
  in
  let ng = Array.length graphs in
  if Array.length organisms <> ng || Array.length grafts <> ng then
    S.error "dataset arrays disagree: %d graphs, %d organisms, %d grafts" ng
      (Array.length organisms) (Array.length grafts);
  let norg = Array.length motifs in
  Array.iter
    (fun o -> if o >= norg then S.error "organism id %d with %d motifs" o norg)
    organisms;
  Array.iter
    (function
      | Some o when o >= norg ->
        S.error "graft organism id %d with %d motifs" o norg
      | _ -> ())
    grafts;
  { graphs; organisms; motifs; grafts; params }
