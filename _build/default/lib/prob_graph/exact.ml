module Bitset = Psst_util.Bitset

(* Keep only inclusion-minimal sets: the event "some set fully present" is
   unchanged, and fewer sets keep inclusion-exclusion tractable. *)
let minimal_antichain sets =
  let sorted =
    List.sort (fun a b -> compare (Bitset.cardinal a) (Bitset.cardinal b)) sets
  in
  List.fold_left
    (fun kept s ->
      if List.exists (fun k -> Bitset.subset k s) kept then kept else s :: kept)
    [] sorted
  |> List.rev

let prob_any_present t sets =
  if sets = [] then 0.
  else begin
    let certain = Pgraph.certain_edges t in
    let is_certain e = List.mem e certain in
    (* Certain edges are always present: drop them from every set. *)
    let reduced =
      List.map
        (fun s ->
          let s' = Bitset.copy s in
          Bitset.iter (fun e -> if is_certain e then Bitset.remove s' e) s;
          s')
        sets
    in
    if List.exists Bitset.is_empty reduced then 1.
    else begin
      let minimal = minimal_antichain reduced in
      let union =
        List.fold_left
          (fun acc s -> Bitset.union acc s)
          (Bitset.create (Bitset.capacity (List.hd minimal)))
          minimal
      in
      let union_vars = Bitset.elements union in
      if List.length union_vars <= Factor.max_vars then begin
        (* Tabulate the joint marginal over the union scope and sweep it. *)
        let marg = Velim.marginal (Pgraph.factors t) union_vars in
        let marg = Factor.normalize marg in
        let fvars = Factor.vars marg in
        let local_mask s =
          let m = ref 0 in
          Array.iteri (fun i v -> if Bitset.mem s v then m := !m lor (1 lsl i)) fvars;
          !m
        in
        let set_masks = List.map local_mask minimal in
        let acc = ref 0. in
        Factor.iter_assignments marg (fun mask p ->
            if p > 0. && List.exists (fun sm -> sm land mask = sm) set_masks then
              acc := !acc +. p);
        !acc
      end
      else begin
        let n = List.length minimal in
        if n > 22 then failwith "Exact.prob_any_present: too many minimal sets";
        let arr = Array.of_list minimal in
        let memo = Hashtbl.create 256 in
        let conj_prob union_set =
          let key = Bitset.elements union_set in
          match Hashtbl.find_opt memo key with
          | Some p -> p
          | None ->
            let p = Velim.prob_all_present (Pgraph.factors t) key in
            Hashtbl.add memo key p;
            p
        in
        let acc = ref 0. in
        for subset = 1 to (1 lsl n) - 1 do
          let u = Bitset.create (Bitset.capacity arr.(0)) in
          let bits = ref 0 in
          for i = 0 to n - 1 do
            if subset land (1 lsl i) <> 0 then begin
              incr bits;
              Bitset.union_into u arr.(i)
            end
          done;
          let sign = if !bits mod 2 = 1 then 1. else -1. in
          acc := !acc +. (sign *. conj_prob u)
        done;
        !acc
      end
    end
  end

(* Naive possible-world enumeration over every uncertain edge — the cost
   profile of the paper's Exact competitor (no Lemma-1 shortcuts). *)
let prob_any_present_naive t sets =
  begin
    let uncertain = Array.of_list (Pgraph.uncertain_edges t) in
    let m = Array.length uncertain in
    if m > 26 then failwith "Exact.prob_any_present_naive: too many uncertain edges";
    let pos = Hashtbl.create m in
    Array.iteri (fun i e -> Hashtbl.replace pos e i) uncertain;
    let certain = Pgraph.certain_edges t in
    (* Translate each required edge set into a local int mask; a set with
       only certain edges is always satisfied. *)
    let exception Always in
    try
      let masks =
        List.filter_map
          (fun s ->
            let m = ref 0 and all_certain = ref true in
            Bitset.iter
              (fun e ->
                if not (List.mem e certain) then begin
                  all_certain := false;
                  m := !m lor (1 lsl Hashtbl.find pos e)
                end)
              s;
            if !all_certain then raise Always;
            Some !m)
          sets
      in
      let factors = Array.of_list (Pgraph.factors t) in
      let acc = ref 0. in
      (* Every world's weight is computed before the match test — an
         index-free scan weighs each PWG whether or not it matches; only
         the match test itself benefits from the precomputed edge masks
         (which already makes this Exact faster than one running a
         subgraph-distance check per world). *)
      let world_ref = ref 0 in
      let lookup e =
        match Hashtbl.find_opt pos e with
        | Some i -> !world_ref land (1 lsl i) <> 0
        | None -> true (* certain edge *)
      in
      for world = 0 to (1 lsl m) - 1 do
        world_ref := world;
        let p = ref 1. in
        Array.iter (fun f -> p := !p *. Factor.value_of f lookup) factors;
        if List.exists (fun sm -> sm land world = sm) masks then
          acc := !acc +. !p
      done;
      !acc
    with Always -> 1.
  end

let sip ?(cap = 512) t f =
  let gc = Pgraph.skeleton t in
  let embs = Vf2.distinct_embeddings ~cap:(cap + 1) f gc in
  if List.length embs > cap then failwith "Exact.sip: embedding cap exceeded";
  prob_any_present t (List.map (fun e -> e.Embedding.edges) embs)

let ssp t q ~delta =
  let acc = ref 0. in
  Pgraph.iter_worlds t (fun mask p ->
      let world, _ = Lgraph.with_edge_mask (Pgraph.skeleton t) mask in
      if Distance.within q world ~delta then acc := !acc +. p);
  !acc

let ssp_of_embeddings = prob_any_present
