test/test_graph.ml: Alcotest Array Canon Lgraph List Psst_util QCheck QCheck_alcotest Tgen
