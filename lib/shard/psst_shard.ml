(* Horizontal sharding of the query database (DESIGN.md §14). See the
   interface for the invariants; everything here is deliberately a pure
   re-arrangement of already-computed state — the split never re-mines
   features or recomputes a bound, which is precisely why per-shard
   answers can be bit-identical to monolithic ones. *)

module Store = Psst_store

type entry = {
  sid : int;
  base : int;
  count : int;
  path : string;
  fingerprint : int32;
}

type manifest = {
  total : int;
  corpus_fingerprint : int32;
  entries : entry list;
}

let m_splits = Psst_obs.counter "shard.splits"
let m_shard_loads = Psst_obs.counter "shard.loads"

(* --- split planning --- *)

type budget = { max_graphs : int; max_cost : float }

let column_cost (db : Query.database) gi =
  let filled = ref 0 in
  for fi = 0 to Pmi.num_features db.pmi - 1 do
    match Pmi.lookup db.pmi ~feature:fi ~graph:gi with
    | Some _ -> incr filled
    | None -> ()
  done;
  1. +. float_of_int !filled

let plan_budget (db : Query.database) budget =
  if budget.max_graphs < 1 then
    invalid_arg "Psst_shard.plan_budget: max_graphs must be >= 1";
  let n = Corpus.length db.graphs in
  let ranges = ref [] in
  let base = ref 0 and count = ref 0 and cost = ref 0. in
  let close () =
    if !count > 0 then begin
      ranges := (!base, !count) :: !ranges;
      base := !base + !count;
      count := 0;
      cost := 0.
    end
  in
  for gi = 0 to n - 1 do
    let c = column_cost db gi in
    (* A shard never exceeds the budget unless a single graph does. *)
    if !count > 0 && (!count >= budget.max_graphs || !cost +. c > budget.max_cost)
    then close ();
    incr count;
    cost := !cost +. c
  done;
  close ();
  List.rev !ranges

let plan_even ~parts ~total =
  if parts < 1 then invalid_arg "Psst_shard.plan_even: parts must be >= 1";
  if total < 0 then invalid_arg "Psst_shard.plan_even: negative total";
  let q = total / parts and r = total mod parts in
  let ranges = ref [] and base = ref 0 in
  for p = 0 to parts - 1 do
    let count = q + if p < r then 1 else 0 in
    if count > 0 then ranges := (!base, count) :: !ranges;
    base := !base + count
  done;
  List.rev !ranges

(* --- in-memory slicing and merging --- *)

let sub_database (db : Query.database) ~base ~count =
  let n = Corpus.length db.graphs in
  if base < 0 || count < 0 || base + count > n then
    invalid_arg
      (Printf.sprintf "Psst_shard.sub_database: range %d..%d outside 0..%d" base
         (base + count) n);
  let pmi = Pmi.sub db.pmi ~base ~len:count in
  let features = Array.to_list (Pmi.features pmi) in
  let counts =
    Array.map (fun row -> Array.sub row base count) (Structural.counts db.structural)
  in
  let structural =
    Structural.of_parts ~features ~counts ~emb_cap:(Structural.emb_cap db.structural)
  in
  {
    Query.graphs = Corpus.sub db.graphs ~base ~count;
    features;
    structural;
    pmi;
    base = db.base + base;
  }

let merge (parts : Query.database list) =
  match parts with
  | [] -> invalid_arg "Psst_shard.merge: empty list"
  | first :: _ ->
    let emb_cap = Structural.emb_cap first.Query.structural in
    let _ =
      List.fold_left
        (fun expected_base (p : Query.database) ->
          if p.Query.base <> expected_base then
            invalid_arg
              (Printf.sprintf
                 "Psst_shard.merge: part at base %d where %d was expected \
                  (parts must be consecutive and ordered)"
                 p.Query.base expected_base);
          if Structural.emb_cap p.Query.structural <> emb_cap then
            invalid_arg
              "Psst_shard.merge: parts indexed with different embedding caps";
          expected_base + Corpus.length p.Query.graphs)
        first.Query.base parts
    in
    let pmi = Pmi.concat (List.map (fun (p : Query.database) -> p.Query.pmi) parts) in
    let features = Array.to_list (Pmi.features pmi) in
    let nf = List.length features in
    let per_part_counts =
      List.map (fun (p : Query.database) -> Structural.counts p.Query.structural) parts
    in
    let counts =
      Array.init nf (fun fi ->
          Array.concat (List.map (fun c -> c.(fi)) per_part_counts))
    in
    let structural = Structural.of_parts ~features ~counts ~emb_cap in
    {
      Query.graphs =
        Corpus.of_array
          (Array.concat
             (List.map (fun (p : Query.database) -> Corpus.to_array p.Query.graphs) parts));
      features;
      structural;
      pmi;
      base = first.Query.base;
    }

(* --- answer merging --- *)

let merge_answers per_shard = List.sort compare (List.concat per_shard)

let merge_stats (parts : Query.stats list) =
  match parts with
  | [] -> invalid_arg "Psst_shard.merge_stats: empty list"
  | first :: rest ->
    List.fold_left
      (fun (acc : Query.stats) (s : Query.stats) ->
        {
          Query.relaxed_count = max acc.Query.relaxed_count s.Query.relaxed_count;
          relaxed_truncated = acc.relaxed_truncated || s.relaxed_truncated;
          structural_candidates =
            acc.structural_candidates + s.structural_candidates;
          prob_candidates = acc.prob_candidates + s.prob_candidates;
          accepted_by_bounds = acc.accepted_by_bounds + s.accepted_by_bounds;
          pruned_by_bounds = acc.pruned_by_bounds + s.pruned_by_bounds;
          degraded_candidates = acc.degraded_candidates + s.degraded_candidates;
          t_relax = Float.max acc.t_relax s.t_relax;
          t_structural = Float.max acc.t_structural s.t_structural;
          t_probabilistic = Float.max acc.t_probabilistic s.t_probabilistic;
          t_verification = Float.max acc.t_verification s.t_verification;
          t_verification_cpu = acc.t_verification_cpu +. s.t_verification_cpu;
          verify_domains = max acc.verify_domains s.verify_domains;
        })
      first rest

let merge_topk ~k per_shard =
  if k <= 0 then invalid_arg "Psst_shard.merge_topk: k must be positive";
  List.concat per_shard
  |> List.sort (fun (a : Topk.hit) (b : Topk.hit) ->
         match compare b.Topk.ssp a.Topk.ssp with
         | 0 -> compare a.Topk.graph b.Topk.graph
         | c -> c)
  |> List.filteri (fun i _ -> i < k)

(* --- persistence --- *)

let manifest_sections m =
  let e = Store.encoder () in
  Store.put_i64 e m.total;
  Store.put_i32 e m.corpus_fingerprint;
  Store.put_list e
    (fun e (s : entry) ->
      Store.put_i64 e s.sid;
      Store.put_i64 e s.base;
      Store.put_i64 e s.count;
      Store.put_string e s.path;
      Store.put_i32 e s.fingerprint)
    m.entries;
  [ Store.section "manifest" e ]

let validate_manifest m =
  let _ =
    List.fold_left
      (fun (sid, base) (s : entry) ->
        if s.sid <> sid then
          Store.error "manifest: shard ids not dense (found %d, expected %d)"
            s.sid sid;
        if s.base <> base then
          Store.error
            "manifest: shard %d starts at %d where %d was expected (ranges \
             must tile the corpus)"
            s.sid s.base base;
        if s.count < 1 then
          Store.error "manifest: shard %d holds %d graphs" s.sid s.count;
        if s.path = "" || Filename.is_relative s.path = false then
          Store.error "manifest: shard %d path %S must be relative" s.sid s.path;
        (sid + 1, base + s.count))
      (0, 0) m.entries
  in
  let sum = List.fold_left (fun a (s : entry) -> a + s.count) 0 m.entries in
  if sum <> m.total then
    Store.error "manifest: shard counts sum to %d, total says %d" sum m.total

let write_manifest path m =
  validate_manifest m;
  Store.write_file path ~kind:Store.Manifest (manifest_sections m)

let load_manifest path =
  let sections = Store.read_file path ~kind:Store.Manifest in
  let m =
    Store.decode_section sections "manifest" (fun d ->
        let total = Store.get_nat d in
        let corpus_fingerprint = Store.get_i32 d in
        let entries =
          Store.get_list d (fun d ->
              let sid = Store.get_nat d in
              let base = Store.get_nat d in
              let count = Store.get_nat d in
              let path = Store.get_string d in
              let fingerprint = Store.get_i32 d in
              { sid; base; count; path; fingerprint })
        in
        { total; corpus_fingerprint; entries })
  in
  validate_manifest m;
  m

let shard_file_name ~manifest_path sid =
  let stem = Filename.remove_extension (Filename.basename manifest_path) in
  Printf.sprintf "%s.shard%d" stem sid

let split_to_files ?(flat = false) ~manifest_path (db : Query.database) plan =
  if db.Query.base <> 0 then
    invalid_arg "Psst_shard.split_to_files: database must be monolithic (base 0)";
  if plan = [] then invalid_arg "Psst_shard.split_to_files: empty plan";
  Psst_obs.incr m_splits;
  let dir = Filename.dirname manifest_path in
  let entries =
    List.mapi
      (fun sid (base, count) ->
        let shard = sub_database db ~base ~count in
        let path = shard_file_name ~manifest_path sid in
        (* Each shard file is written atomically (tmp + rename); the
           manifest below goes last, so a crash at any point leaves the
           previous deployment — or no deployment — fully intact. *)
        Query.save_database ~flat (Filename.concat dir path) shard;
        {
          sid;
          base;
          count;
          path;
          fingerprint = Corpus.fingerprint shard.Query.graphs;
        })
      plan
  in
  let m =
    {
      total = Corpus.length db.Query.graphs;
      corpus_fingerprint = Corpus.fingerprint db.Query.graphs;
      entries;
    }
  in
  write_manifest manifest_path m;
  m

let find_entry m sid =
  match List.find_opt (fun (s : entry) -> s.sid = sid) m.entries with
  | Some s -> s
  | None -> Store.error "manifest names no shard %d (%d shards)" sid
              (List.length m.entries)

let load_shard ?(salvage = false) ?(mmap = false) ~manifest_path m sid =
  let s = find_entry m sid in
  let path = Filename.concat (Filename.dirname manifest_path) s.path in
  let db = Query.load_database ~salvage ~mmap path in
  Psst_obs.incr m_shard_loads;
  let n = Corpus.length db.Query.graphs in
  if n <> s.count then
    Store.error "shard %d file %s holds %d graphs, manifest says %d" sid s.path
      n s.count;
  if db.Query.base <> s.base then
    Store.error "shard %d file %s starts at global id %d, manifest says %d" sid
      s.path db.Query.base s.base;
  let fp = Corpus.fingerprint db.Query.graphs in
  if fp <> s.fingerprint then
    Store.error
      "shard %d file %s fingerprint %08lx does not match the manifest's %08lx \
       — stale or foreign shard file"
      sid s.path fp s.fingerprint;
  db

let load_all ?salvage ?mmap ~manifest_path m =
  List.map
    (fun (s : entry) -> load_shard ?salvage ?mmap ~manifest_path m s.sid)
    m.entries
