module Prng = Psst_util.Prng

let coin p v = Factor.create [| v |] [| 1. -. p; p |]

let test_factor_create_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "unsorted vars" true
    (bad (fun () -> Factor.create [| 2; 1 |] (Array.make 4 0.25)));
  Alcotest.(check bool) "duplicate vars" true
    (bad (fun () -> Factor.create [| 1; 1 |] (Array.make 4 0.25)));
  Alcotest.(check bool) "bad size" true
    (bad (fun () -> Factor.create [| 1 |] (Array.make 3 0.25)));
  Alcotest.(check bool) "negative entry" true
    (bad (fun () -> Factor.create [| 1 |] [| 0.5; -0.1 |]))

let test_factor_value () =
  (* Factor over vars {3,7}: index bit0 = var3, bit1 = var7. *)
  let f = Factor.create [| 3; 7 |] [| 0.1; 0.2; 0.3; 0.4 |] in
  Tgen.check_close "value 00" 0.1 (Factor.value f 0);
  Tgen.check_close "value var3=1" 0.2 (Factor.value f 1);
  Tgen.check_close "value var7=1" 0.3 (Factor.value f 2);
  Tgen.check_close "value_of" 0.4 (Factor.value_of f (fun _ -> true));
  Tgen.check_close "value_of mixed" 0.2 (Factor.value_of f (fun v -> v = 3))

let test_factor_multiply () =
  let a = coin 0.3 1 in
  let b = coin 0.6 2 in
  let p = Factor.multiply a b in
  Alcotest.(check (array int)) "merged scope" [| 1; 2 |] (Factor.vars p);
  Tgen.check_close "p(1=1,2=0)" (0.3 *. 0.4) (Factor.value p 1);
  Tgen.check_close "p(1=1,2=1)" (0.3 *. 0.6) (Factor.value p 3);
  (* Multiplying with overlap. *)
  let c = Factor.create [| 1; 2 |] [| 1.; 2.; 3.; 4. |] in
  let q = Factor.multiply a c in
  Tgen.check_close "overlap" (0.3 *. 2.) (Factor.value q 1)

let test_factor_sum_out () =
  let f = Factor.create [| 1; 2 |] [| 0.1; 0.2; 0.3; 0.4 |] in
  let g = Factor.sum_out f 1 in
  Alcotest.(check (array int)) "scope" [| 2 |] (Factor.vars g);
  Tgen.check_close "sum var2=0" 0.3 (Factor.value g 0);
  Tgen.check_close "sum var2=1" 0.7 (Factor.value g 1);
  (* Summing a non-scope variable is a no-op. *)
  let h = Factor.sum_out f 9 in
  Alcotest.(check (array int)) "noop" [| 1; 2 |] (Factor.vars h)

let test_factor_condition () =
  let f = Factor.create [| 1; 2 |] [| 0.1; 0.2; 0.3; 0.4 |] in
  let g = Factor.condition f 2 true in
  Alcotest.(check (array int)) "scope" [| 1 |] (Factor.vars g);
  Tgen.check_close "cond var1=0" 0.3 (Factor.value g 0);
  Tgen.check_close "cond var1=1" 0.4 (Factor.value g 1)

let test_factor_normalize_sample () =
  let f = Factor.create [| 0; 1 |] [| 0.; 1.; 0.; 3. |] in
  let n = Factor.normalize f in
  Tgen.check_close "total" 1.0 (Factor.total n);
  let rng = Prng.make 5 in
  for _ = 1 to 50 do
    let asg = Factor.sample rng n in
    (* var 0 must always be true (entries with var0=0 have weight 0). *)
    Alcotest.(check bool) "var0 true" true (List.assoc 0 asg)
  done

let test_scalar () =
  let s = Factor.scalar 0.25 in
  Alcotest.(check (array int)) "empty scope" [||] (Factor.vars s);
  Tgen.check_close "value" 0.25 (Factor.value s 0)

let prop_sum_out_preserves_total =
  QCheck.Test.make ~name:"sum_out preserves total mass" ~count:200
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, which) ->
      let rng = Prng.make (seed + 3) in
      let data = Array.init 8 (fun _ -> Prng.float rng 1.0) in
      let f = Factor.create [| 1; 4; 6 |] data in
      let v = [| 1; 4; 6 |].(which) in
      Tgen.close ~eps:1e-9 (Factor.total f) (Factor.total (Factor.sum_out f v)))

let prop_sum_out_commutes =
  QCheck.Test.make ~name:"sum_out order does not matter" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 17) in
      let data = Array.init 8 (fun _ -> Prng.float rng 1.0) in
      let f = Factor.create [| 0; 1; 2 |] data in
      let a = Factor.sum_out (Factor.sum_out f 0) 2 in
      let b = Factor.sum_out (Factor.sum_out f 2) 0 in
      Factor.equal_approx ~eps:1e-9 a b)

let prop_condition_then_sum =
  QCheck.Test.make ~name:"condition true + false = sum_out" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 19) in
      let data = Array.init 4 (fun _ -> Prng.float rng 1.0) in
      let f = Factor.create [| 2; 5 |] data in
      let t = Factor.condition f 5 true and fa = Factor.condition f 5 false in
      let sum =
        Factor.of_fun [| 2 |] (fun m -> Factor.value t m +. Factor.value fa m)
      in
      Factor.equal_approx ~eps:1e-9 sum (Factor.sum_out f 5))

let prop_multiply_commutes =
  QCheck.Test.make ~name:"multiply commutes" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 23) in
      let a = Factor.create [| 0; 2 |] (Array.init 4 (fun _ -> Prng.float rng 1.0)) in
      let b = Factor.create [| 1; 2 |] (Array.init 4 (fun _ -> Prng.float rng 1.0)) in
      Factor.equal_approx ~eps:1e-9 (Factor.multiply a b) (Factor.multiply b a))

(* --- Variable elimination --- *)

let chain3 () =
  (* P(a) P(b|a) P(c|b) over vars 0,1,2. *)
  let pa = coin 0.7 0 in
  let pb_a =
    (* vars [0;1]: bit0=a, bit1=b. b=1 w.p. 0.9 if a else 0.2. *)
    Factor.create [| 0; 1 |] [| 0.8; 0.1; 0.2; 0.9 |]
  in
  let pc_b = Factor.create [| 1; 2 |] [| 0.5; 0.3; 0.5; 0.7 |] in
  [ pa; pb_a; pc_b ]

let brute_joint factors vars f =
  let k = List.length vars in
  for mask = 0 to (1 lsl k) - 1 do
    let assign v =
      let rec idx i = function
        | [] -> invalid_arg "assign"
        | x :: rest -> if x = v then i else idx (i + 1) rest
      in
      mask land (1 lsl idx 0 vars) <> 0
    in
    let p = List.fold_left (fun acc fac -> acc *. Factor.value_of fac assign) 1. factors in
    f assign p
  done

let test_velim_partition () =
  Tgen.check_close ~eps:1e-9 "chain sums to 1" 1.0 (Velim.partition_value (chain3 ()))

let test_velim_marginal_vs_brute () =
  let factors = chain3 () in
  let m = Velim.marginal factors [ 2 ] in
  let brute = ref 0. in
  brute_joint factors [ 0; 1; 2 ] (fun assign p -> if assign 2 then brute := !brute +. p);
  Tgen.check_close ~eps:1e-9 "P(c=1)" !brute (Factor.value m 1)

let test_velim_prob_evidence () =
  let factors = chain3 () in
  let p = Velim.prob ~evidence:[ (0, true); (2, true) ] factors in
  let brute = ref 0. in
  brute_joint factors [ 0; 1; 2 ] (fun assign pr ->
      if assign 0 && assign 2 then brute := !brute +. pr);
  Tgen.check_close ~eps:1e-9 "P(a=1,c=1)" !brute p

let test_velim_prob_all_present () =
  let factors = chain3 () in
  let p = Velim.prob_all_present factors [ 0; 1 ] in
  Tgen.check_close ~eps:1e-9 "P(a,b)" (0.7 *. 0.9) p

let prop_velim_matches_bruteforce =
  QCheck.Test.make ~name:"velim marginal = brute force on random chains" ~count:100
    QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 61) in
      (* Random chain over 4 vars. *)
      let pa = coin (0.2 +. Prng.float rng 0.6) 0 in
      let cond v w =
        let p0 = 0.1 +. Prng.float rng 0.8 and p1 = 0.1 +. Prng.float rng 0.8 in
        Factor.create [| min v w; max v w |]
          (if v < w then [| 1. -. p0; 1. -. p1; p0; p1 |]
           else [| 1. -. p0; p0; 1. -. p1; p1 |])
      in
      (* cond builds P(w|v): careful with bit order; use v<w so bit0=v. *)
      let f1 = cond 0 1 and f2 = cond 1 2 and f3 = cond 2 3 in
      let factors = [ pa; f1; f2; f3 ] in
      let ev = [ (1, true); (3, false) ] in
      let velim_p = Velim.prob ~evidence:ev factors in
      let brute = ref 0. and z = ref 0. in
      brute_joint factors [ 0; 1; 2; 3 ] (fun assign p ->
          z := !z +. p;
          if assign 1 && not (assign 3) then brute := !brute +. p);
      Tgen.close ~eps:1e-9 velim_p (!brute /. !z))

(* --- Sampler --- *)

let test_sampler_chain_consistency () =
  Alcotest.(check bool) "chain3 consistent" true
    (Sampler.is_chain_consistent ~eps:1e-9 (chain3 ()));
  (* A non-normalised factor list is flagged. *)
  let bad = [ Factor.create [| 0 |] [| 0.5; 0.9 |] ] in
  Alcotest.(check bool) "bad chain flagged" false
    (Sampler.is_chain_consistent ~eps:1e-9 bad)

let test_sampler_frequencies () =
  let factors = chain3 () in
  let rng = Prng.make 99 in
  let n = 20000 in
  let count = ref 0 in
  for _ = 1 to n do
    let lookup, _ = Sampler.sample rng factors in
    if lookup 0 && lookup 1 then incr count
  done;
  let freq = float_of_int !count /. float_of_int n in
  let exact = Velim.prob_all_present factors [ 0; 1 ] in
  Alcotest.(check bool) "sampling frequency near exact" true
    (Float.abs (freq -. exact) < 0.02)

let test_sampler_conditioned () =
  let factors = chain3 () in
  let rng = Prng.make 7 in
  for _ = 1 to 100 do
    match Sampler.sample_conditioned rng factors [ (0, true) ] with
    | None -> Alcotest.fail "evidence has positive probability"
    | Some (lookup, _) -> Alcotest.(check bool) "evidence respected" true (lookup 0)
  done

let test_sampler_conditioned_impossible () =
  let factors = [ coin 1.0 0 ] in
  let rng = Prng.make 7 in
  (match Sampler.sample_conditioned rng factors [ (0, false) ] with
  | None -> ()
  | Some _ -> Alcotest.fail "impossible evidence must yield None")

(* --- Junction tree --- *)

let test_jtree_build_requires_rip () =
  (* Factor over {0,1}, then {2,3}, then one mentioning {1,2}: its covered
     vars {1,2} span two earlier factors -> rejected. *)
  let f01 = Factor.create [| 0; 1 |] (Array.make 4 0.25) in
  let f23 = Factor.create [| 2; 3 |] (Array.make 4 0.25) in
  let f12 = Factor.create [| 1; 2 |] (Array.make 4 0.25) in
  (try
     ignore (Jtree.build [ f01; f23; f12 ]);
     Alcotest.fail "RIP violation not detected"
   with Invalid_argument _ -> ());
  (* The same factors in a chain order are fine. *)
  ignore (Jtree.build [ f01; f12; f23 ])

let test_jtree_evidence_prob_matches_velim () =
  let factors = chain3 () in
  let jt = Jtree.build factors in
  let cases =
    [ []; [ (0, true) ]; [ (1, false) ]; [ (0, true); (2, true) ];
      [ (0, false); (1, true); (2, false) ] ]
  in
  List.iter
    (fun ev ->
      let via_jt = Jtree.evidence_prob jt ev in
      let via_velim = if ev = [] then 1. else Velim.prob ~evidence:ev factors in
      Tgen.check_close ~eps:1e-9 "evidence prob" via_velim via_jt)
    cases

let test_jtree_variables () =
  let jt = Jtree.build (chain3 ()) in
  Alcotest.(check (list int)) "variables" [ 0; 1; 2 ] (Jtree.variables jt)

let test_jtree_posterior_respects_evidence () =
  let factors = chain3 () in
  let jt = Jtree.build factors in
  let rng = Prng.make 5 in
  for _ = 1 to 200 do
    match Jtree.sample_posterior rng jt ~evidence:[ (0, true); (2, false) ] with
    | None -> Alcotest.fail "evidence has positive probability"
    | Some (lookup, _) ->
      Alcotest.(check bool) "var0" true (lookup 0);
      Alcotest.(check bool) "var2" false (lookup 2)
  done

let test_jtree_posterior_frequencies () =
  (* Empirical P(b=1 | c=1) from posterior samples vs exact. *)
  let factors = chain3 () in
  let jt = Jtree.build factors in
  let rng = Prng.make 17 in
  let n = 20000 in
  let count = ref 0 in
  for _ = 1 to n do
    match Jtree.sample_posterior rng jt ~evidence:[ (2, true) ] with
    | None -> Alcotest.fail "positive evidence"
    | Some (lookup, _) -> if lookup 1 then incr count
  done;
  let freq = float_of_int !count /. float_of_int n in
  let exact =
    Velim.prob ~evidence:[ (1, true); (2, true) ] factors
    /. Velim.prob ~evidence:[ (2, true) ] factors
  in
  Alcotest.(check bool)
    (Printf.sprintf "posterior freq %.3f vs exact %.3f" freq exact)
    true
    (Float.abs (freq -. exact) < 0.02)

let test_jtree_posterior_impossible () =
  let factors = [ Factor.create [| 0 |] [| 0.; 1. |] ] in
  let jt = Jtree.build factors in
  match Jtree.sample_posterior (Prng.make 1) jt ~evidence:[ (0, false) ] with
  | None -> ()
  | Some _ -> Alcotest.fail "impossible evidence must be None"

let prop_jtree_matches_velim_on_random_chains =
  QCheck.Test.make ~name:"jtree evidence prob = velim on random pgraph factors"
    ~count:50 QCheck.small_int
    (fun seed ->
      let rng = Prng.make (seed + 91) in
      let g = Tgen.random_pgraph rng ~n:5 ~extra:2 ~vl:2 ~el:1 in
      let factors = Pgraph.factors g in
      let jt = Jtree.build factors in
      let vars = List.concat_map (fun f -> Array.to_list (Factor.vars f)) factors
                 |> List.sort_uniq compare in
      let ev =
        List.filteri (fun i _ -> i mod 2 = 0) vars
        |> List.map (fun v -> (v, Prng.bernoulli rng 0.5))
      in
      ev = []
      || Tgen.close ~eps:1e-9 (Velim.prob ~evidence:ev factors)
           (Jtree.evidence_prob jt ev))

let suite =
  [
    Alcotest.test_case "factor create validation" `Quick test_factor_create_validation;
    Alcotest.test_case "factor value" `Quick test_factor_value;
    Alcotest.test_case "factor multiply" `Quick test_factor_multiply;
    Alcotest.test_case "factor sum_out" `Quick test_factor_sum_out;
    Alcotest.test_case "factor condition" `Quick test_factor_condition;
    Alcotest.test_case "factor normalize/sample" `Quick test_factor_normalize_sample;
    Alcotest.test_case "factor scalar" `Quick test_scalar;
    QCheck_alcotest.to_alcotest prop_sum_out_preserves_total;
    QCheck_alcotest.to_alcotest prop_sum_out_commutes;
    QCheck_alcotest.to_alcotest prop_condition_then_sum;
    QCheck_alcotest.to_alcotest prop_multiply_commutes;
    Alcotest.test_case "velim partition" `Quick test_velim_partition;
    Alcotest.test_case "velim marginal vs brute" `Quick test_velim_marginal_vs_brute;
    Alcotest.test_case "velim prob evidence" `Quick test_velim_prob_evidence;
    Alcotest.test_case "velim prob_all_present" `Quick test_velim_prob_all_present;
    QCheck_alcotest.to_alcotest prop_velim_matches_bruteforce;
    Alcotest.test_case "sampler chain consistency" `Quick test_sampler_chain_consistency;
    Alcotest.test_case "sampler frequencies" `Quick test_sampler_frequencies;
    Alcotest.test_case "sampler conditioned" `Quick test_sampler_conditioned;
    Alcotest.test_case "sampler impossible evidence" `Quick
      test_sampler_conditioned_impossible;
    Alcotest.test_case "jtree RIP validation" `Quick test_jtree_build_requires_rip;
    Alcotest.test_case "jtree evidence prob" `Quick test_jtree_evidence_prob_matches_velim;
    Alcotest.test_case "jtree variables" `Quick test_jtree_variables;
    Alcotest.test_case "jtree posterior respects evidence" `Quick
      test_jtree_posterior_respects_evidence;
    Alcotest.test_case "jtree posterior frequencies" `Slow
      test_jtree_posterior_frequencies;
    Alcotest.test_case "jtree impossible evidence" `Quick test_jtree_posterior_impossible;
    QCheck_alcotest.to_alcotest prop_jtree_matches_velim_on_random_chains;
  ]
