module Crc32 = Psst_util.Crc32

exception Store_error of string

(* Chaos coverage (DESIGN.md §12): the write site can abandon a partial
   temporary, corrupt a byte before the atomic rename, or stall with the
   temporary visible (the SIGKILL-mid-write window); the read site damages
   the bytes after they leave the kernel, which the CRCs must catch. *)
let fault_write = Psst_fault.site "store.write"
let fault_read = Psst_fault.site "store.read"
let m_tmp_cleaned = Psst_obs.counter "store.tmp_cleaned"

let injected site =
  raise
    (Psst_fault.Injected
       ("injected fault at site " ^ Psst_fault.site_name site))

let error fmt = Printf.ksprintf (fun s -> raise (Store_error s)) fmt

let checked f =
  try f () with
  | Invalid_argument msg | Failure msg -> error "invalid stored data: %s" msg

let magic = "PSSTSTR\x00"
let format_version = 1
let header_bytes = 24

type kind = Pgdb | Pmi_index | Dataset | Database | Manifest | Delta

let kind_tag = function
  | Pgdb -> 1
  | Pmi_index -> 2
  | Dataset -> 3
  | Database -> 4
  | Manifest -> 5
  | Delta -> 6

let kind_name = function
  | Pgdb -> "probabilistic graph database"
  | Pmi_index -> "PMI index"
  | Dataset -> "dataset"
  | Database -> "query database"
  | Manifest -> "shard manifest"
  | Delta -> "ingest delta batch"

let kind_of_tag = function
  | 1 -> Some Pgdb
  | 2 -> Some Pmi_index
  | 3 -> Some Dataset
  | 4 -> Some Database
  | 5 -> Some Manifest
  | 6 -> Some Delta
  | _ -> None

type section = { name : string; payload : string }

(* --- payload encoding --- *)

type enc = Buffer.t

let encoder () = Buffer.create 4096
let contents = Buffer.contents
let enc_length = Buffer.length
let put_raw = Buffer.add_string
let put_i64 e i = Buffer.add_int64_le e (Int64.of_int i)
let put_i32 e (i : int32) = Buffer.add_int32_le e i

let put_u16 e i =
  if i < 0 || i > 0xFFFF then invalid_arg "put_u16: out of range";
  Buffer.add_uint16_le e i
let put_f64 e f = Buffer.add_int64_le e (Int64.bits_of_float f)
let put_bool e b = Buffer.add_char e (if b then '\001' else '\000')

let put_string e s =
  put_i64 e (String.length s);
  Buffer.add_string e s

let put_list e f l =
  put_i64 e (List.length l);
  List.iter (f e) l

let put_array e f a =
  put_i64 e (Array.length a);
  Array.iter (f e) a

let put_int_list e l = put_list e put_i64 l

let put_option e f = function
  | None -> put_bool e false
  | Some x ->
    put_bool e true;
    f e x

let put_lgraph e g =
  put_i64 e (Lgraph.num_vertices g);
  Array.iter (put_i64 e) (Lgraph.vertex_labels g);
  let edges = Lgraph.edges g in
  put_i64 e (Array.length edges);
  Array.iter
    (fun (ed : Lgraph.edge) ->
      put_i64 e ed.u;
      put_i64 e ed.v;
      put_i64 e ed.label)
    edges

let section name e = { name; payload = contents e }

(* --- payload decoding --- *)

type dec = { data : string; mutable pos : int; ctx : string }

let decoder ?(name = "payload") payload = { data = payload; pos = 0; ctx = name }

let remaining d = String.length d.data - d.pos

let need d n =
  if n > remaining d then
    error "section %S: unexpected end of data (need %d bytes, have %d)" d.ctx n
      (remaining d)

let get_i64 d =
  need d 8;
  let v = Int64.to_int (String.get_int64_le d.data d.pos) in
  d.pos <- d.pos + 8;
  v

let get_nat d =
  let v = get_i64 d in
  if v < 0 then error "section %S: negative length %d" d.ctx v;
  v

(* Every codec in this library consumes at least one byte per element, so a
   count can never legitimately exceed the bytes left — checking up front
   keeps a corrupted count from triggering a huge allocation. *)
let get_count d =
  let v = get_nat d in
  if v > remaining d then
    error "section %S: count %d exceeds remaining %d bytes" d.ctx v (remaining d);
  v

let get_i32 d =
  need d 4;
  let v = String.get_int32_le d.data d.pos in
  d.pos <- d.pos + 4;
  v

let get_bytes d n =
  if n < 0 then error "section %S: negative byte count %d" d.ctx n;
  need d n;
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  s

let dec_remaining = remaining

let get_f64 d =
  need d 8;
  let v = Int64.float_of_bits (String.get_int64_le d.data d.pos) in
  d.pos <- d.pos + 8;
  v

let get_bool d =
  need d 1;
  let c = d.data.[d.pos] in
  d.pos <- d.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> error "section %S: invalid boolean byte 0x%02x" d.ctx (Char.code c)

let get_string d =
  let n = get_count d in
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  s

let get_list d f =
  let n = get_count d in
  let acc = ref [] in
  for _ = 1 to n do
    acc := f d :: !acc
  done;
  List.rev !acc

let get_array d f =
  let n = get_count d in
  if n = 0 then [||]
  else begin
    let first = f d in
    let a = Array.make n first in
    for i = 1 to n - 1 do
      a.(i) <- f d
    done;
    a
  end

let get_int_list d = get_list d get_i64

let get_option d f = if get_bool d then Some (f d) else None

let get_lgraph d =
  let n = get_count d in
  let vlabels = Array.init n (fun _ -> 0) in
  for i = 0 to n - 1 do
    vlabels.(i) <- get_i64 d
  done;
  let m = get_count d in
  let edges = ref [] in
  for _ = 1 to m do
    let u = get_i64 d in
    let v = get_i64 d in
    let label = get_i64 d in
    edges := (u, v, label) :: !edges
  done;
  checked (fun () -> Lgraph.create ~vlabels ~edges:(List.rev !edges))

let expect_end d =
  if remaining d <> 0 then
    error "section %S: %d trailing bytes after payload" d.ctx (remaining d)

(* --- varints (unsigned LEB128, used by the flat postings sections) --- *)

let put_varint e n =
  if n < 0 then invalid_arg "put_varint: negative value";
  let rec go n =
    if n < 0x80 then Buffer.add_char e (Char.chr n)
    else begin
      Buffer.add_char e (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let get_varint d =
  let acc = ref 0 and shift = ref 0 and cont = ref true in
  while !cont do
    if !shift > 56 then error "section %S: varint overflow" d.ctx;
    need d 1;
    let c = Char.code d.data.[d.pos] in
    d.pos <- d.pos + 1;
    acc := !acc lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    cont := c land 0x80 <> 0
  done;
  if !acc < 0 then error "section %S: varint overflow" d.ctx;
  !acc

let find_section sections name =
  match List.find_opt (fun s -> s.name = name) sections with
  | Some s -> s.payload
  | None -> error "missing section %S" name

let decode_section sections name f =
  let d = decoder ~name (find_section sections name) in
  let v = f d in
  expect_end d;
  v

(* --- file framing --- *)

let add_u32 buf (i : int32) =
  Buffer.add_int32_le buf i

let section_crc s =
  Crc32.update
    (Crc32.digest s.name)
    s.payload ~pos:0 ~len:(String.length s.payload)

let write_file ?(version = format_version) path ~kind sections =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  add_u32 buf (Int32.of_int version);
  add_u32 buf (Int32.of_int (kind_tag kind));
  add_u32 buf (Int32.of_int (List.length sections));
  add_u32 buf (Crc32.update 0l (Buffer.contents buf) ~pos:0 ~len:20);
  List.iter
    (fun s ->
      add_u32 buf (Int32.of_int (String.length s.name));
      Buffer.add_string buf s.name;
      Buffer.add_int64_le buf (Int64.of_int (String.length s.payload));
      add_u32 buf (section_crc s);
      Buffer.add_string buf s.payload)
    sections;
  let fault = Psst_fault.fire fault_write in
  if fault = Some Psst_fault.Fail then injected fault_write;
  let data =
    match fault with
    | Some Psst_fault.Bitflip when Buffer.length buf > 0 ->
      (* Complete the write and the rename, but with one damaged byte:
         the readers' checksums must refuse the file. *)
      let b = Buffer.to_bytes buf in
      let pos = Psst_fault.draw_int fault_write (Bytes.length b) in
      let bit = Psst_fault.draw_int fault_write 8 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      Bytes.unsafe_to_string b
    | _ -> Buffer.contents buf
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match fault with
  | Some Psst_fault.Partial_io ->
    (* A crash mid-write: a prefix lands in the temporary, the rename
       never happens, the orphan stays behind for the next reader to
       clean up. *)
    let cut =
      if String.length data = 0 then 0
      else Psst_fault.draw_int fault_write (String.length data)
    in
    output_substring oc data 0 cut;
    close_out oc;
    injected fault_write
  | Some (Psst_fault.Delay s) ->
    (* Stall with the temporary half-written and flushed: the window a
       SIGKILL-mid-write test aims at. *)
    let half = String.length data / 2 in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_substring oc data 0 half;
        flush oc;
        Unix.sleepf s;
        output_substring oc data half (String.length data - half));
    Sys.rename tmp path
  | _ ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc data);
    Sys.rename tmp path)

(* A raw cursor over the whole file, distinct from [dec] so framing errors
   talk about the file rather than a section. *)
type raw = { file : string; mutable at : int }

let raw_need r n what =
  if r.at + n > String.length r.file then
    error "truncated store: unexpected end of file in %s" what

let raw_u32 r what =
  raw_need r 4 what;
  let v = String.get_int32_le r.file r.at in
  r.at <- r.at + 4;
  v

let raw_u64 r what =
  raw_need r 8 what;
  let v = String.get_int64_le r.file r.at in
  r.at <- r.at + 8;
  v

let raw_bytes r n what =
  raw_need r n what;
  let s = String.sub r.file r.at n in
  r.at <- r.at + n;
  s

let max_section_name = 255

let read_header r ~kind =
  if String.length r.file < header_bytes then
    error "truncated store: %d bytes is shorter than the %d-byte header"
      (String.length r.file) header_bytes;
  let m = raw_bytes r 8 "header" in
  if m <> magic then error "bad magic: not a PSST store file";
  let version = Int32.to_int (raw_u32 r "header") in
  let ktag = Int32.to_int (raw_u32 r "header") in
  let count = Int32.to_int (raw_u32 r "header") in
  let stored_crc = raw_u32 r "header" in
  let actual_crc = Crc32.update 0l r.file ~pos:0 ~len:20 in
  if stored_crc <> actual_crc then error "header checksum mismatch";
  if version <> format_version then
    error "unsupported store format version %d (this build reads version %d)"
      version format_version;
  (match kind_of_tag ktag with
  | None -> error "unknown store kind tag %d" ktag
  | Some k ->
    if k <> kind then
      error "wrong store kind: expected a %s file, found a %s file"
        (kind_name kind) (kind_name k));
  if count < 0 then error "negative section count";
  count

(* Framing parse of one section, CRC left to the caller: [read_one_section]
   turns a mismatch into an error, the salvage reader skips the section and
   keeps going (the length field it already consumed tells it where the
   next section starts). *)
let read_one_section_raw r =
  let name_len = Int32.to_int (raw_u32 r "section header") in
  if name_len < 0 || name_len > max_section_name then
    error "implausible section name length %d" name_len;
  let name = raw_bytes r name_len "section name" in
  let ctx = if name = "" then "<unnamed>" else name in
  let payload_len = raw_u64 r (Printf.sprintf "section %S header" ctx) in
  if Int64.compare payload_len 0L < 0
     || Int64.compare payload_len (Int64.of_int (String.length r.file - r.at)) > 0
  then
    error "section %S: payload length %Ld exceeds the file" ctx payload_len;
  let stored_crc = raw_u32 r (Printf.sprintf "section %S header" ctx) in
  let len = Int64.to_int payload_len in
  let payload = raw_bytes r len (Printf.sprintf "section %S payload" ctx) in
  ({ name; payload }, stored_crc)

let read_one_section r =
  let s, stored_crc = read_one_section_raw r in
  if section_crc s <> stored_crc then
    error "section %S: checksum mismatch (corrupted payload)"
      (if s.name = "" then "<unnamed>" else s.name);
  s

let read_string file ~kind =
  let r = { file; at = 0 } in
  let count = read_header r ~kind in
  let sections = ref [] in
  for _ = 1 to count do
    let s = read_one_section r in
    if List.exists (fun s' -> s'.name = s.name) !sections then
      error "duplicate section %S" s.name;
    sections := s :: !sections
  done;
  if r.at <> String.length file then
    error "trailing garbage: %d bytes after the last section"
      (String.length file - r.at);
  List.rev !sections

let read_whole_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> error "cannot open store: %s" msg
  in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Psst_fault.fire fault_read with
  | None -> contents
  | Some Psst_fault.Fail -> injected fault_read
  | Some (Psst_fault.Delay s) ->
    Unix.sleepf s;
    contents
  | Some Psst_fault.Bitflip when String.length contents > 0 ->
    let b = Bytes.of_string contents in
    let pos = Psst_fault.draw_int fault_read (Bytes.length b) in
    let bit = Psst_fault.draw_int fault_read 8 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    Bytes.unsafe_to_string b
  | Some Psst_fault.Partial_io when String.length contents > 0 ->
    String.sub contents 0 (Psst_fault.draw_int fault_read (String.length contents))
  | Some (Psst_fault.Bitflip | Psst_fault.Partial_io) -> contents

(* Crash-safe cleanup: an interrupted [write_file] leaves [path ^ ".tmp"]
   behind (the rename never ran, so [path] itself is the intact previous
   version). The next open removes the orphan so it cannot accumulate or
   be mistaken for live data. *)
let clean_orphan_tmp path =
  let tmp = path ^ ".tmp" in
  if Sys.file_exists tmp then begin
    (try Sys.remove tmp with Sys_error _ -> ());
    Psst_obs.incr m_tmp_cleaned;
    Psst_obs.warn ~code:"store.tmp_cleaned"
      (Printf.sprintf
         "removed orphaned temporary %s left by an interrupted write" tmp)
  end

let read_file path ~kind =
  clean_orphan_tmp path;
  read_string (read_whole_file path) ~kind

(* Best-effort reader for self-healing loads: keeps every section whose
   checksum holds, lists the ones that do not. The header must be intact
   (nothing to salvage otherwise), and a destroyed section *framing* —
   a corrupted length or name length, or a truncated file — ends the scan,
   since the remaining byte positions cannot be trusted; sections expected
   but never reached simply come back neither intact nor damaged, which a
   caller must treat as damaged. *)
type salvage = { intact : section list; damaged : string list }

let read_string_salvage file ~kind =
  let r = { file; at = 0 } in
  let count = read_header r ~kind in
  let intact = ref [] in
  let damaged = ref [] in
  (try
     for _ = 1 to count do
       let s, stored_crc = read_one_section_raw r in
       if section_crc s <> stored_crc then damaged := s.name :: !damaged
       else if List.exists (fun s' -> s'.name = s.name) !intact then
         error "duplicate section %S" s.name
       else intact := s :: !intact
     done
   with Store_error msg ->
     damaged := Printf.sprintf "<unreadable tail: %s>" msg :: !damaged);
  { intact = List.rev !intact; damaged = List.rev !damaged }

let read_file_salvage path ~kind =
  clean_orphan_tmp path;
  read_string_salvage (read_whole_file path) ~kind

let section_spans file =
  let r = { file; at = 0 } in
  if String.length file < header_bytes then error "file shorter than header";
  if String.sub file 0 8 <> magic then error "bad magic";
  r.at <- 16;
  let count = Int32.to_int (raw_u32 r "header") in
  r.at <- header_bytes;
  List.init count (fun _ ->
      let start = r.at in
      let s = read_one_section r in
      (s.name, start, r.at))

let is_store_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        in_channel_length ic >= 8
        && really_input_string ic 8 = magic)

(* --- alignment pads for memory-mapped typed views --- *)

let framed_size s = 16 + String.length s.name + String.length s.payload

let pad_prefix = "pad."

let align_payloads ~targets sections =
  let out = ref [] in
  let off = ref header_bytes in
  List.iter
    (fun s ->
      if List.mem s.name targets then begin
        let pad_name = pad_prefix ^ s.name in
        (* With the pad in front, the target's payload starts at
           [off + (16 + |pad_name| + pad_len) + (16 + |s.name|)]; choose
           [pad_len] to land that on a multiple of 8. *)
        let base = !off + 16 + String.length pad_name + 16 + String.length s.name in
        let pad = { name = pad_name; payload = String.make ((8 - (base mod 8)) mod 8) '\000' } in
        out := pad :: !out;
        off := !off + framed_size pad
      end;
      out := s :: !out;
      off := !off + framed_size s)
    sections;
  List.rev !out

(* --- memory-mapped zero-copy access (DESIGN.md §15) ---

   [map_file] maps the whole file read-only and verifies the header CRC and
   every section CRC by streaming chunks through {!Crc32} — an O(file) scan
   with no per-entry allocation, so a flipped byte anywhere is caught at
   open time and the typed views handed out afterwards can be trusted.
   There is no salvage variant: salvage implies rebuilding heap structures,
   which is exactly what the mmap path exists to avoid. *)

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
type u16s = (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type mapped = {
  m_path : string;
  m_data : bigbytes;
  m_spans : (string * int * int * int32) list;
      (* name, payload start, payload end, stored CRC — payload checksums
         are verified on access, not at open, so mapping a file is O(header
         + directory) regardless of its size *)
  mutable m_fd : Unix.file_descr option;
}

(* The map site supports Fail and Delay; Bitflip/Partial_io cannot be
   simulated on a shared read-only mapping without copying (which would
   defeat the point), so they escalate to Fail. *)
let fault_map = Psst_fault.site "store.map"

let big_sub (b : bigbytes) pos len =
  let s = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set s i (Bigarray.Array1.unsafe_get b (pos + i))
  done;
  Bytes.unsafe_to_string s

let crc_chunk = 65536

let big_crc (b : bigbytes) init ~pos ~len =
  let crc = ref init in
  let at = ref pos and left = ref len in
  while !left > 0 do
    let n = min crc_chunk !left in
    let chunk = big_sub b !at n in
    crc := Crc32.update !crc chunk ~pos:0 ~len:n;
    at := !at + n;
    left := !left - n
  done;
  !crc

(* A raw cursor over the mapped bytes, mirroring [raw] over strings. *)
type braw = { bfile : bigbytes; blen : int; mutable bat : int }

let braw_need r n what =
  if r.bat + n > r.blen then
    error "truncated store: unexpected end of file in %s" what

let braw_bytes r n what =
  braw_need r n what;
  let s = big_sub r.bfile r.bat n in
  r.bat <- r.bat + n;
  s

let braw_u32 r what = String.get_int32_le (braw_bytes r 4 what) 0
let braw_u64 r what = String.get_int64_le (braw_bytes r 8 what) 0

let read_header_mapped r ~kind =
  if r.blen < header_bytes then
    error "truncated store: %d bytes is shorter than the %d-byte header"
      r.blen header_bytes;
  let m = braw_bytes r 8 "header" in
  if m <> magic then error "bad magic: not a PSST store file";
  let version = Int32.to_int (braw_u32 r "header") in
  let ktag = Int32.to_int (braw_u32 r "header") in
  let count = Int32.to_int (braw_u32 r "header") in
  let stored_crc = braw_u32 r "header" in
  let actual_crc = big_crc r.bfile 0l ~pos:0 ~len:20 in
  if stored_crc <> actual_crc then error "header checksum mismatch";
  if version <> format_version then
    error "unsupported store format version %d (this build reads version %d)"
      version format_version;
  (match kind_of_tag ktag with
  | None -> error "unknown store kind tag %d" ktag
  | Some k ->
    if k <> kind then
      error "wrong store kind: expected a %s file, found a %s file"
        (kind_name kind) (kind_name k));
  if count < 0 then error "negative section count";
  count

let read_one_span_mapped r =
  let name_len = Int32.to_int (braw_u32 r "section header") in
  if name_len < 0 || name_len > max_section_name then
    error "implausible section name length %d" name_len;
  let name = braw_bytes r name_len "section name" in
  let ctx = if name = "" then "<unnamed>" else name in
  let payload_len = braw_u64 r (Printf.sprintf "section %S header" ctx) in
  if Int64.compare payload_len 0L < 0
     || Int64.compare payload_len (Int64.of_int (r.blen - r.bat)) > 0
  then
    error "section %S: payload length %Ld exceeds the file" ctx payload_len;
  let stored_crc = braw_u32 r (Printf.sprintf "section %S header" ctx) in
  let len = Int64.to_int payload_len in
  let start = r.bat in
  braw_need r len (Printf.sprintf "section %S payload" ctx);
  r.bat <- r.bat + len;
  (* The payload CRC is recorded, not verified: open stays O(directory)
     so cold start is independent of the file size. Accessors that decode
     a payload verify it first; the raw [Bigarray] views do not (their
     consumers validate structurally, and the eager loader re-checks
     everything). *)
  (name, start, r.bat, stored_crc)

let map_file path ~kind =
  clean_orphan_tmp path;
  (match Psst_fault.fire fault_map with
  | None -> ()
  | Some (Psst_fault.Delay s) -> Unix.sleepf s
  | Some _ -> injected fault_map);
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      error "cannot open store: %s: %s" path (Unix.error_message e)
  in
  match
    (fun () ->
      let len64 = (Unix.LargeFile.fstat fd).Unix.LargeFile.st_size in
      if Int64.compare len64 (Int64.of_int max_int) > 0 then
        error "store %s is too large to map" path;
      let len = Int64.to_int len64 in
      if len < header_bytes then
        error "truncated store: %d bytes is shorter than the %d-byte header"
          len header_bytes;
      let data =
        try
          Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| len |])
        with Unix.Unix_error (e, _, _) ->
          error "cannot map store %s: %s" path (Unix.error_message e)
      in
      let r = { bfile = data; blen = len; bat = 0 } in
      let count = read_header_mapped r ~kind in
      let spans = ref [] in
      for _ = 1 to count do
        let ((name, _, _, _) as span) = read_one_span_mapped r in
        if List.exists (fun (n, _, _, _) -> n = name) !spans then
          error "duplicate section %S" name;
        spans := span :: !spans
      done;
      if r.bat <> len then
        error "trailing garbage: %d bytes after the last section" (len - r.bat);
      { m_path = path; m_data = data; m_spans = List.rev !spans; m_fd = Some fd })
      ()
  with
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e
  | m -> m

let mapped_path m = m.m_path
let mapped_names m = List.map (fun (n, _, _, _) -> n) m.m_spans
let mapped_has m name = List.exists (fun (n, _, _, _) -> n = name) m.m_spans

let mapped_span_crc m name =
  match List.find_opt (fun (n, _, _, _) -> n = name) m.m_spans with
  | Some (_, a, b, crc) -> (a, b, crc)
  | None -> error "missing section %S" name

let mapped_span m name =
  let a, b, _ = mapped_span_crc m name in
  (a, b)

let verify_span m name =
  let a, b, stored = mapped_span_crc m name in
  if big_crc m.m_data (Crc32.digest name) ~pos:a ~len:(b - a) <> stored then
    error "section %S: checksum mismatch (corrupted payload)" name;
  (a, b)

let mapped_section_string m name =
  let a, b = verify_span m name in
  big_sub m.m_data a (b - a)

let mapped_bytes m name : bigbytes =
  let a, b = verify_span m name in
  Bigarray.Array1.sub m.m_data a (b - a)

(* Raw view without the checksum pass — for payloads whose consumers
   validate lazily (per-record decode, per-lookup range checks). *)
let mapped_bytes_unverified m name : bigbytes =
  let a, b = mapped_span m name in
  Bigarray.Array1.sub m.m_data a (b - a)

(* CRC-32 over the raw payload with a zero seed — the same digest
   [Crc32.digest] yields on the payload string, so a caller can compare
   against fingerprints computed over encoded data without decoding or
   copying the section. *)
let mapped_payload_crc m name =
  let a, b = mapped_span m name in
  big_crc m.m_data 0l ~pos:a ~len:(b - a)

let require_fd m name =
  match m.m_fd with
  | Some fd -> fd
  | None ->
    error "store %s: typed view of %S requested after release" m.m_path name

(* [Unix.map_file] aligns the underlying mapping down to a page and offsets
   the data pointer, so the view's alignment equals [pos mod page]; the
   writer's pad sections ({!align_payloads}) guarantee [pos mod 8 = 0]. *)
let mapped_f64 m name : floats =
  let a, b = mapped_span m name in
  let len = b - a in
  if len mod 8 <> 0 then
    error "section %S: float payload length %d is not a multiple of 8" name len;
  if a mod 8 <> 0 then
    error "section %S: payload offset %d is not 8-byte aligned (missing pad section?)"
      name a;
  let n = len / 8 in
  if n = 0 then Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 0
  else
    try
      Bigarray.array1_of_genarray
        (Unix.map_file (require_fd m name) ~pos:(Int64.of_int a) Bigarray.float64
           Bigarray.c_layout false [| n |])
    with Unix.Unix_error (e, _, _) ->
      error "cannot map section %S: %s" name (Unix.error_message e)

let mapped_u16 m name : u16s =
  let a, b = mapped_span m name in
  let len = b - a in
  if len mod 2 <> 0 then
    error "section %S: u16 payload length %d is not a multiple of 2" name len;
  if a mod 8 <> 0 then
    error "section %S: payload offset %d is not 8-byte aligned (missing pad section?)"
      name a;
  let n = len / 2 in
  if n = 0 then Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout 0
  else
    try
      Bigarray.array1_of_genarray
        (Unix.map_file (require_fd m name) ~pos:(Int64.of_int a)
           Bigarray.int16_unsigned Bigarray.c_layout false [| n |])
    with Unix.Unix_error (e, _, _) ->
      error "cannot map section %S: %s" name (Unix.error_message e)

(* The initial mapping survives the [close]: views already created (and the
   whole-file view) stay valid until garbage-collected. *)
let mapped_release m =
  match m.m_fd with
  | None -> ()
  | Some fd ->
    m.m_fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())
