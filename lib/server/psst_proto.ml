(* Framed binary RPC protocol (DESIGN.md §11, §12). Payloads reuse the
   Psst_store codecs; the frame adds a magic/version/type header, a u32
   length and a CRC-32 over header and payload, so every byte on the wire
   is covered by the checksum.

   Version negotiation is per frame: a peer speaks by stamping its version
   into each frame, and readers accept any version in
   [min_proto_version .. proto_version]. Version 2 added the [degraded]
   flag on answers, the [Health] RPC and the [Unavailable] error code; a
   version-1 frame still decodes (the flag defaults to false) and replies
   to a version-1 peer are encoded in version 1 (with [Unavailable]
   mapped to the equally-retryable [Shutdown]), so old clients keep
   working against new servers and vice versa. Version 3 added the
   [adaptive] byte to SMP verifier configs in Run/Run_topk requests:
   v1/v2 frames decode with [adaptive = false], and a request encoded
   for an older peer drops the flag (Query.put_config ~adaptive_field).
   Version 4 added the per-worker roster to [Health_reply] (a router
   aggregates its workers' uptime/queue-depth/degraded counters): the
   roster is dropped when encoding for a pre-v4 peer and defaults to []
   when decoding a pre-v4 frame — a plain worker's roster is empty, so
   old peers lose nothing but the router fleet view.

   Version 5 added continuous ingest and multi-tenancy: the [Set_tenant]
   and [Add_graphs] requests, the [Ingest_ack] reply, and the ingest
   fields (epoch / queued graphs / applied graphs) on [Health_reply].
   The new tags are version-gated on decode — a pre-v5 frame carrying
   them is malformed, matching what a pre-v5 server would answer — and
   the health fields are dropped for pre-v5 peers and default to zero
   when decoding pre-v5 frames. Pre-v5 peers never emit the new tags, so
   plain query traffic is untouched.

   Version 6 added replication and failover: the [Subscribe] and
   [Replica_ack] requests and the [Delta_frame] reply carry a standby's
   delta-stream subscription (DESIGN.md §17), [Add_graphs] gains a
   client-chosen idempotency token (the writer dedups retries on it),
   and roster slots in [Health_reply] gain the replica id / ingest
   epoch / primary-flag triple a replica-aware router reports. All of it
   is gated both ways: the new tags decode only from v6 frames, the
   token is dropped when encoding for a pre-v6 peer and defaults to ""
   on pre-v6 decode, and the roster triple is dropped / defaulted the
   same way — pre-v6 peers keep their exact wire format. *)

module S = Psst_store
module Crc32 = Psst_util.Crc32

exception Proto_error of string
exception Timed_out

let error fmt = Printf.ksprintf (fun msg -> raise (Proto_error msg)) fmt
let proto_version = 6
let min_proto_version = 1
let magic = "PSSTRPC\x00"
let header_bytes = 24
let max_payload = 16 * 1024 * 1024

(* Chaos sites on the wire (DESIGN.md §12): Partial_io forces the fd IO
   into 1-byte reads/writes (the retry loops must reassemble the frame),
   Bitflip damages bytes the CRC must catch, Fail simulates a dead link. *)
let fault_read = Psst_fault.site "proto.read"
let fault_write = Psst_fault.site "proto.write"

let injected site =
  raise
    (Psst_fault.Injected
       ("injected fault at site " ^ Psst_fault.site_name site))

type endpoint = Unix_socket of string | Tcp of string * int

let endpoint_to_string = function
  | Unix_socket path -> Printf.sprintf "unix:%s" path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type error_code =
  | Malformed
  | Queue_full
  | Deadline
  | Shutdown
  | Internal
  | Unavailable

let error_code_name = function
  | Malformed -> "malformed"
  | Queue_full -> "queue_full"
  | Deadline -> "deadline"
  | Shutdown -> "shutdown"
  | Internal -> "internal"
  | Unavailable -> "unavailable"

let error_code_retryable = function
  | Queue_full | Shutdown | Unavailable -> true
  | Malformed | Deadline | Internal -> false

let error_code_tag = function
  | Malformed -> 0
  | Queue_full -> 1
  | Deadline -> 2
  | Shutdown -> 3
  | Internal -> 4
  | Unavailable -> 5

let error_code_of_tag = function
  | 0 -> Malformed
  | 1 -> Queue_full
  | 2 -> Deadline
  | 3 -> Shutdown
  | 4 -> Internal
  | 5 -> Unavailable
  | t -> error "unknown error code tag %d" t

type query_stats = {
  relaxed_truncated : bool;
  structural_candidates : int;
  prob_candidates : int;
  accepted_by_bounds : int;
  pruned_by_bounds : int;
  degraded : bool;
}

let stats_of_query (s : Query.stats) =
  {
    relaxed_truncated = s.relaxed_truncated;
    structural_candidates = s.structural_candidates;
    prob_candidates = s.prob_candidates;
    accepted_by_bounds = s.accepted_by_bounds;
    pruned_by_bounds = s.pruned_by_bounds;
    degraded = s.degraded_candidates > 0;
  }

(* One worker's slot in a router's aggregated health roster (v4+). The
   replica triple (v6+) defaults to "sole primary at epoch 0" when
   decoding older frames, which is exactly what a pre-v6 router's
   single-worker shards were. *)
type worker_health = {
  wid : int;  (* shard / worker index in the router's configuration *)
  reachable : bool;
  worker_uptime_s : float;
  worker_queue_depth : int;
  worker_degraded_answers : int;
  rid : int;  (* replica index within the shard's group (v6+; 0 before) *)
  worker_epoch : int;  (* the replica's applied ingest epoch (v6+) *)
  primary : bool;  (* currently the shard's serving replica (v6+) *)
}

type health = {
  uptime_s : float;
  queue_depth : int;
  served : int;
  degraded_answers : int;
  retryable_rejections : int;
  workers : worker_health list;
      (* router role: one slot per worker; empty for plain workers and
         when decoding pre-v4 frames *)
  epoch : int;  (* ingest batches applied since start (v5+; 0 before) *)
  ingest_queued : int;  (* graphs waiting in the ingest queue — the lag *)
  ingest_applied : int;  (* graphs applied to the live database *)
}

type request =
  | Ping
  | Run of { id : int; query : Lgraph.t; config : Query.config }
  | Run_topk of { id : int; query : Lgraph.t; k : int; config : Query.config }
  | Get_stats
  | Get_health
  | Set_tenant of string
  | Add_graphs of { id : int; token : string; graphs : Pgraph.t array }
  | Subscribe of { from_seq : int }
  | Replica_ack of { seq : int }

type reply =
  | Pong
  | Answer of { id : int; answers : int list; stats : query_stats }
  | Topk_answer of { id : int; hits : (int * float) list }
  | Stats_json of string
  | Health_reply of health
  | Error_reply of { id : int; code : error_code; message : string }
  | Ingest_ack of { id : int; epoch : int; base : int; count : int }
  | Delta_frame of { seq : int; bytes : string }

let request_id = function
  | Ping | Get_stats | Get_health | Set_tenant _ | Subscribe _
  | Replica_ack _ ->
    0
  | Run { id; _ } | Run_topk { id; _ } | Add_graphs { id; _ } -> id

(* --- message payloads (tag + Psst_store-encoded body) --- *)

let tag_ping = 1
and tag_run = 2
and tag_run_topk = 3
and tag_get_stats = 4
and tag_get_health = 5
and tag_set_tenant = 6
and tag_add_graphs = 7
and tag_subscribe = 8
and tag_replica_ack = 9

let tag_pong = 65
and tag_answer = 66
and tag_topk_answer = 67
and tag_stats_json = 68
and tag_error = 69
and tag_health = 70
and tag_ingest_ack = 71
and tag_delta_frame = 72

let encode_request_payload ~version = function
  | Ping -> (tag_ping, "")
  | Run { id; query; config } ->
    let e = S.encoder () in
    S.put_i64 e id;
    S.put_lgraph e query;
    (* Version 1–2 configs predate the adaptive flag; dropping it only
       loses the (off-by-default) sampling optimisation, never the
       answer. *)
    Query.put_config ~adaptive_field:(version >= 3) e config;
    (tag_run, S.contents e)
  | Run_topk { id; query; k; config } ->
    let e = S.encoder () in
    S.put_i64 e id;
    S.put_lgraph e query;
    S.put_i64 e k;
    Query.put_config ~adaptive_field:(version >= 3) e config;
    (tag_run_topk, S.contents e)
  | Get_stats -> (tag_get_stats, "")
  | Get_health -> (tag_get_health, "")
  | Set_tenant name ->
    let e = S.encoder () in
    S.put_string e name;
    (tag_set_tenant, S.contents e)
  | Add_graphs { id; token; graphs } ->
    let e = S.encoder () in
    S.put_i64 e id;
    (* Version 1–5 predate idempotency tokens; dropping one only loses
       dedup of the pre-v6 peer's retries, never the batch itself. *)
    if version >= 6 then S.put_string e token;
    S.put_array e Pgraph_io.encode_binary graphs;
    (tag_add_graphs, S.contents e)
  | Subscribe { from_seq } ->
    let e = S.encoder () in
    S.put_i64 e from_seq;
    (tag_subscribe, S.contents e)
  | Replica_ack { seq } ->
    let e = S.encoder () in
    S.put_i64 e seq;
    (tag_replica_ack, S.contents e)

let encode_reply_payload ~version = function
  | Pong -> (tag_pong, "")
  | Answer { id; answers; stats } ->
    let e = S.encoder () in
    S.put_i64 e id;
    S.put_int_list e answers;
    S.put_bool e stats.relaxed_truncated;
    S.put_i64 e stats.structural_candidates;
    S.put_i64 e stats.prob_candidates;
    S.put_i64 e stats.accepted_by_bounds;
    S.put_i64 e stats.pruned_by_bounds;
    (* Version 1 predates the degraded flag; a v1 peer decodes the same
       frame it always did (and treats every answer as exact, which only
       loses precision of reporting, not correctness of the id list). *)
    if version >= 2 then S.put_bool e stats.degraded;
    (tag_answer, S.contents e)
  | Topk_answer { id; hits } ->
    let e = S.encoder () in
    S.put_i64 e id;
    S.put_list e
      (fun e (g, ssp) ->
        S.put_i64 e g;
        S.put_f64 e ssp)
      hits;
    (tag_topk_answer, S.contents e)
  | Stats_json json ->
    let e = S.encoder () in
    S.put_string e json;
    (tag_stats_json, S.contents e)
  | Health_reply h ->
    let e = S.encoder () in
    S.put_f64 e h.uptime_s;
    S.put_i64 e h.queue_depth;
    S.put_i64 e h.served;
    S.put_i64 e h.degraded_answers;
    S.put_i64 e h.retryable_rejections;
    (* Version 1–3 predate the worker roster; dropping it loses only the
       router's fleet view, never the process-local counters. *)
    if version >= 4 then
      S.put_list e
        (fun e (w : worker_health) ->
          S.put_i64 e w.wid;
          S.put_bool e w.reachable;
          S.put_f64 e w.worker_uptime_s;
          S.put_i64 e w.worker_queue_depth;
          S.put_i64 e w.worker_degraded_answers;
          (* Version 4–5 predate replica groups; dropping the triple
             loses only the replica view, never the worker counters. *)
          if version >= 6 then begin
            S.put_i64 e w.rid;
            S.put_i64 e w.worker_epoch;
            S.put_bool e w.primary
          end)
        h.workers;
    (* Version 1–4 predate continuous ingest; dropping the epoch / lag
       fields loses only the ingest view, never the serving counters. *)
    if version >= 5 then begin
      S.put_i64 e h.epoch;
      S.put_i64 e h.ingest_queued;
      S.put_i64 e h.ingest_applied
    end;
    (tag_health, S.contents e)
  | Error_reply { id; code; message } ->
    (* [Unavailable] postdates v1; degrade it to the equally-retryable
       [Shutdown] so a v1 peer still backs off and retries. *)
    let code = if version < 2 && code = Unavailable then Shutdown else code in
    let e = S.encoder () in
    S.put_i64 e id;
    S.put_i64 e (error_code_tag code);
    S.put_string e message;
    (tag_error, S.contents e)
  | Ingest_ack { id; epoch; base; count } ->
    let e = S.encoder () in
    S.put_i64 e id;
    S.put_i64 e epoch;
    S.put_i64 e base;
    S.put_i64 e count;
    (tag_ingest_ack, S.contents e)
  | Delta_frame { seq; bytes } ->
    let e = S.encoder () in
    S.put_i64 e seq;
    S.put_string e bytes;
    (tag_delta_frame, S.contents e)

(* Payload decoders run under [decoding]: a Psst_store decode failure (or a
   validating constructor rejecting the data) surfaces as Proto_error. *)
let decoding name f =
  match f () with
  | v -> v
  | exception S.Store_error msg -> error "%s: %s" name msg

let decode_request ~version tag payload =
  decoding "request payload" (fun () ->
      let d = S.decoder ~name:"request" payload in
      let adaptive_field = version >= 3 in
      let req =
        if tag = tag_ping then Ping
        else if tag = tag_run then begin
          let id = S.get_i64 d in
          let query = S.get_lgraph d in
          let config = Query.get_config ~adaptive_field d in
          Run { id; query; config }
        end
        else if tag = tag_run_topk then begin
          let id = S.get_i64 d in
          let query = S.get_lgraph d in
          let k = S.get_i64 d in
          if k < 1 then S.error "top-k count %d must be >= 1" k;
          let config = Query.get_config ~adaptive_field d in
          Run_topk { id; query; k; config }
        end
        else if tag = tag_get_stats then Get_stats
        else if tag = tag_get_health then Get_health
        else if version >= 5 && tag = tag_set_tenant then begin
          let name = S.get_string d in
          if name = "" then S.error "tenant name must be non-empty";
          if String.length name > 128 then
            S.error "tenant name of %d bytes exceeds the 128-byte cap"
              (String.length name);
          Set_tenant name
        end
        else if version >= 5 && tag = tag_add_graphs then begin
          let id = S.get_i64 d in
          let token = if version >= 6 then S.get_string d else "" in
          if String.length token > 128 then
            S.error "ingest token of %d bytes exceeds the 128-byte cap"
              (String.length token);
          let graphs = S.get_array d Pgraph_io.decode_binary in
          Add_graphs { id; token; graphs }
        end
        else if version >= 6 && tag = tag_subscribe then begin
          let from_seq = S.get_i64 d in
          if from_seq < 1 then
            S.error "subscription start seq %d must be >= 1" from_seq;
          Subscribe { from_seq }
        end
        else if version >= 6 && tag = tag_replica_ack then begin
          let seq = S.get_i64 d in
          if seq < 1 then S.error "replica ack seq %d must be >= 1" seq;
          Replica_ack { seq }
        end
        else S.error "unknown request tag %d" tag
      in
      S.expect_end d;
      req)

let decode_reply ~version tag payload =
  decoding "reply payload" (fun () ->
      let d = S.decoder ~name:"reply" payload in
      let rep =
        if tag = tag_pong then Pong
        else if tag = tag_answer then begin
          let id = S.get_i64 d in
          let answers = S.get_int_list d in
          let relaxed_truncated = S.get_bool d in
          let structural_candidates = S.get_i64 d in
          let prob_candidates = S.get_i64 d in
          let accepted_by_bounds = S.get_i64 d in
          let pruned_by_bounds = S.get_i64 d in
          let degraded = if version >= 2 then S.get_bool d else false in
          Answer
            {
              id;
              answers;
              stats =
                {
                  relaxed_truncated;
                  structural_candidates;
                  prob_candidates;
                  accepted_by_bounds;
                  pruned_by_bounds;
                  degraded;
                };
            }
        end
        else if tag = tag_topk_answer then begin
          let id = S.get_i64 d in
          let hits =
            S.get_list d (fun d ->
                let g = S.get_i64 d in
                let ssp = S.get_f64 d in
                (g, ssp))
          in
          Topk_answer { id; hits }
        end
        else if tag = tag_stats_json then Stats_json (S.get_string d)
        else if tag = tag_health then begin
          let uptime_s = S.get_f64 d in
          let queue_depth = S.get_nat d in
          let served = S.get_nat d in
          let degraded_answers = S.get_nat d in
          let retryable_rejections = S.get_nat d in
          let workers =
            if version >= 4 then
              S.get_list d (fun d ->
                  let wid = S.get_nat d in
                  let reachable = S.get_bool d in
                  let worker_uptime_s = S.get_f64 d in
                  let worker_queue_depth = S.get_nat d in
                  let worker_degraded_answers = S.get_nat d in
                  let rid = if version >= 6 then S.get_nat d else 0 in
                  let worker_epoch = if version >= 6 then S.get_nat d else 0 in
                  let primary = if version >= 6 then S.get_bool d else true in
                  {
                    wid;
                    reachable;
                    worker_uptime_s;
                    worker_queue_depth;
                    worker_degraded_answers;
                    rid;
                    worker_epoch;
                    primary;
                  })
            else []
          in
          let epoch = if version >= 5 then S.get_nat d else 0 in
          let ingest_queued = if version >= 5 then S.get_nat d else 0 in
          let ingest_applied = if version >= 5 then S.get_nat d else 0 in
          Health_reply
            { uptime_s; queue_depth; served; degraded_answers;
              retryable_rejections; workers; epoch; ingest_queued;
              ingest_applied }
        end
        else if tag = tag_error then begin
          let id = S.get_i64 d in
          let code = error_code_of_tag (S.get_i64 d) in
          let message = S.get_string d in
          Error_reply { id; code; message }
        end
        else if version >= 5 && tag = tag_ingest_ack then begin
          let id = S.get_i64 d in
          let epoch = S.get_nat d in
          let base = S.get_nat d in
          let count = S.get_nat d in
          Ingest_ack { id; epoch; base; count }
        end
        else if version >= 6 && tag = tag_delta_frame then begin
          let seq = S.get_i64 d in
          if seq < 1 then S.error "delta frame seq %d must be >= 1" seq;
          let bytes = S.get_string d in
          Delta_frame { seq; bytes }
        end
        else S.error "unknown reply tag %d" tag
      in
      S.expect_end d;
      rep)

(* --- framing --- *)

let frame ~version ~tag payload =
  let len = String.length payload in
  if len > max_payload then error "payload of %d bytes exceeds frame cap" len;
  let head = Bytes.create 20 in
  Bytes.blit_string magic 0 head 0 8;
  Bytes.set_int32_le head 8 (Int32.of_int version);
  Bytes.set_int32_le head 12 (Int32.of_int tag);
  Bytes.set_int32_le head 16 (Int32.of_int len);
  let head = Bytes.unsafe_to_string head in
  let crc = Crc32.update (Crc32.digest head) payload ~pos:0 ~len in
  let b = Buffer.create (header_bytes + len) in
  Buffer.add_string b head;
  let crcb = Bytes.create 4 in
  Bytes.set_int32_le crcb 0 crc;
  Buffer.add_bytes b crcb;
  Buffer.add_string b payload;
  Buffer.contents b

let encode_request ?(version = proto_version) r =
  let tag, payload = encode_request_payload ~version r in
  frame ~version ~tag payload

let encode_reply ?(version = proto_version) r =
  let tag, payload = encode_reply_payload ~version r in
  frame ~version ~tag payload

(* Validate the 20 header bytes; returns (version, tag, payload_len). The
   length is range-checked here, before any caller allocates for the
   payload. *)
let check_header head =
  if String.length head <> 20 then
    error "internal: header slice of %d bytes" (String.length head);
  if String.sub head 0 8 <> magic then error "bad frame magic";
  let u32 pos =
    let v = Int32.to_int (String.get_int32_le head pos) in
    if v < 0 then v + 0x1_0000_0000 else v
  in
  let version = u32 8 in
  if version < min_proto_version || version > proto_version then
    error "unsupported protocol version %d (this build speaks %d..%d)" version
      min_proto_version proto_version;
  let tag = u32 12 in
  let len = u32 16 in
  if len > max_payload then
    error "frame payload length %d exceeds cap %d" len max_payload;
  (version, tag, len)

let check_crc head crc payload =
  let expect = Crc32.update (Crc32.digest head) payload ~pos:0 ~len:(String.length payload) in
  if crc <> expect then
    error "frame checksum mismatch (stored %08lx, computed %08lx)" crc expect

let decode_frame_string s =
  let total = String.length s in
  if total < header_bytes then
    error "truncated frame: %d bytes, header needs %d" total header_bytes;
  let head = String.sub s 0 20 in
  let version, tag, len = check_header head in
  let crc = String.get_int32_le s 20 in
  if total < header_bytes + len then
    error "truncated frame: payload needs %d bytes, have %d" len
      (total - header_bytes);
  if total > header_bytes + len then
    error "trailing bytes after frame (%d extra)" (total - header_bytes - len);
  let payload = String.sub s header_bytes len in
  check_crc head crc payload;
  (version, tag, payload)

let request_of_string s =
  let version, tag, payload = decode_frame_string s in
  decode_request ~version tag payload

let reply_of_string s =
  let version, tag, payload = decode_frame_string s in
  decode_reply ~version tag payload

(* Blocking channel reader. The first byte decides between a clean
   End_of_file and a truncated frame; everything after it must be
   complete. *)
let read_frame ic =
  let first = input_char ic (* End_of_file here = clean close *) in
  let rest =
    try really_input_string ic 23
    with End_of_file -> error "truncated frame header"
  in
  let head = String.make 1 first ^ String.sub rest 0 19 in
  let version, tag, len = check_header head in
  let crc = String.get_int32_le rest 19 in
  let payload =
    try really_input_string ic len
    with End_of_file -> error "truncated frame payload (expected %d bytes)" len
  in
  check_crc head crc payload;
  (version, tag, payload)

let read_request ic =
  let version, tag, payload = read_frame ic in
  decode_request ~version tag payload

let read_reply ic =
  let version, tag, payload = read_frame ic in
  decode_reply ~version tag payload

(* --- fd-level IO: EINTR- and short-IO-safe, with optional deadlines ---

   Sockets deliver short reads and writes and EINTR as a matter of course
   (the old channel-based path hid the read side and simply broke on the
   write side under signals); these loops retry until the full frame has
   moved or the deadline passes. [deadline] is absolute
   (Unix.gettimeofday-based); on expiry the call raises {!Timed_out} —
   the connection is then in an undefined mid-frame state and must be
   closed, which is exactly what the reconnecting client does. *)

let wait_io fd ~deadline ~for_read =
  match deadline with
  | None -> ()
  | Some dl ->
    let rec wait () =
      let left = dl -. Unix.gettimeofday () in
      if left <= 0. then raise Timed_out;
      let r, w, _ =
        try
          if for_read then Unix.select [ fd ] [] [] left
          else Unix.select [] [ fd ] [] left
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if r = [] && w = [] then
        if Unix.gettimeofday () >= dl then raise Timed_out else wait ()
    in
    wait ()

(* Read exactly [len] bytes into [buf] at [pos]. [eof_ok_at_start]: a
   clean EOF before the first byte raises End_of_file, EOF later is a
   truncation. [chunk] caps per-call read sizes (the Partial_io fault
   forces it to 1 to exercise this very loop). *)
let read_exact fd buf pos len ~deadline ~chunk ~eof_ok_at_start ~what =
  let got = ref 0 in
  while !got < len do
    wait_io fd ~deadline ~for_read:true;
    match
      Unix.read fd buf (pos + !got) (min chunk (len - !got))
    with
    | 0 ->
      if !got = 0 && eof_ok_at_start then raise End_of_file
      else error "truncated frame: EOF inside %s" what
    | n -> got := !got + n
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      ()
    | exception Unix.Unix_error (e, _, _) ->
      error "read failed inside %s: %s" what (Unix.error_message e)
  done

let read_frame_fd ?deadline fd =
  let chunk, bitflip =
    match Psst_fault.fire fault_read with
    | None -> (max_int, false)
    | Some Psst_fault.Partial_io -> (1, false)
    | Some Psst_fault.Bitflip -> (max_int, true)
    | Some Psst_fault.Fail -> injected fault_read
    | Some (Psst_fault.Delay s) ->
      Unix.sleepf s;
      (max_int, false)
  in
  let head = Bytes.create header_bytes in
  read_exact fd head 0 header_bytes ~deadline ~chunk ~eof_ok_at_start:true
    ~what:"frame header";
  let version, tag, len = check_header (Bytes.sub_string head 0 20) in
  let crc = Bytes.get_int32_le head 20 in
  let payload = Bytes.create len in
  read_exact fd payload 0 len ~deadline ~chunk ~eof_ok_at_start:false
    ~what:"frame payload";
  (* Wire corruption: damage a byte the CRC covers — the payload when
     there is one, a stored-CRC byte otherwise — so validation below must
     reject the frame exactly like a flipped byte on a real link. *)
  let crc, payload =
    if not bitflip then (crc, payload)
    else if len > 0 then begin
      let p = Psst_fault.draw_int fault_read len in
      Bytes.set payload p
        (Char.chr (Char.code (Bytes.get payload p) lxor (1 lsl Psst_fault.draw_int fault_read 8)));
      (crc, payload)
    end
    else (Int32.logxor crc 0x1l, payload)
  in
  let payload = Bytes.unsafe_to_string payload in
  check_crc (Bytes.sub_string head 0 20) crc payload;
  (version, tag, payload)

let read_request_fd ?deadline fd =
  let version, tag, payload = read_frame_fd ?deadline fd in
  (version, decode_request ~version tag payload)

let read_reply_fd ?deadline fd =
  let version, tag, payload = read_frame_fd ?deadline fd in
  decode_reply ~version tag payload

let write_frame_fd ?deadline fd data =
  let chunk, data =
    match Psst_fault.fire fault_write with
    | None -> (max_int, data)
    | Some Psst_fault.Partial_io -> (1, data)
    | Some Psst_fault.Fail -> injected fault_write
    | Some (Psst_fault.Delay s) ->
      Unix.sleepf s;
      (max_int, data)
    | Some Psst_fault.Bitflip when String.length data > 0 ->
      let b = Bytes.of_string data in
      let p = Psst_fault.draw_int fault_write (Bytes.length b) in
      Bytes.set b p
        (Char.chr (Char.code (Bytes.get b p) lxor (1 lsl Psst_fault.draw_int fault_write 8)));
      (max_int, Bytes.unsafe_to_string b)
    | Some Psst_fault.Bitflip -> (max_int, data)
  in
  let len = String.length data in
  let sent = ref 0 in
  while !sent < len do
    wait_io fd ~deadline ~for_read:false;
    match
      Unix.write_substring fd data !sent (min chunk (len - !sent))
    with
    | n -> sent := !sent + n
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
      ()
  done
