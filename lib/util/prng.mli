(** Deterministic pseudo-random helpers on top of [Random.State].

    All randomized algorithms in the library thread an explicit state so that
    experiments and property tests are reproducible. *)

type t = Random.State.t

(** [make seed] is a fresh state derived from [seed]. *)
val make : int -> t

(** [split t] derives an independent child state (for parallel workloads). *)
val split : t -> t

(** [stream ~seed i] is the [i]-th member of a family of statistically
    independent states derived from [seed] alone. Unlike {!split} it does
    not advance any parent state, so stream [i] is the same no matter how
    many other streams were drawn, in which order, or on which domain —
    the property that makes parallel query execution bit-identical to
    sequential (see DESIGN.md §8). *)
val stream : seed:int -> int -> t

val int : t -> int -> int
val float : t -> float -> float

(** [bernoulli t p] is [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [categorical t weights] samples an index proportionally to [weights].
    Raises [Invalid_argument] when all weights are [<= 0]. *)
val categorical : t -> float array -> int

(** [choice t arr] is a uniformly random element of [arr]. *)
val choice : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [sample_without_replacement t k n] draws [k] distinct ints from
    [0..n-1], in random order. *)
val sample_without_replacement : t -> int -> int -> int list

(** [beta t ~a ~b] samples a Beta(a,b) variate (Johnk/gamma method). *)
val beta : t -> a:float -> b:float -> float

(** [exponential t lambda] samples Exp(lambda). *)
val exponential : t -> float -> float

(** [gaussian t ~mu ~sigma] samples a normal variate (Box-Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float
