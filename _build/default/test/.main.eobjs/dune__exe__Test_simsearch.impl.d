test/test_simsearch.ml: Alcotest Array Distance Lgraph List Printf Psst_util QCheck QCheck_alcotest Relax Selection Structural Tgen Vf2
