let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let time_only f = snd (time f)

type stopwatch = { mutable acc : float; mutable started_at : float option }

let stopwatch () = { acc = 0.; started_at = None }

let start sw =
  match sw.started_at with
  | Some _ -> ()
  | None -> sw.started_at <- Some (now ())

let stop sw =
  match sw.started_at with
  | None -> ()
  | Some t0 ->
    sw.acc <- sw.acc +. (now () -. t0);
    sw.started_at <- None

let elapsed sw =
  match sw.started_at with
  | None -> sw.acc
  | Some t0 -> sw.acc +. (now () -. t0)
