(** Forward sampling over an ordered, chain-consistent factor list.

    Probabilistic graphs in this library (see [Psst_pgraph.Pgraph]) carry
    their JPTs as an ordered list where each factor is the conditional
    distribution of its new variables given the variables already covered by
    earlier factors (the root factor is a plain distribution). The product
    of such a list is a normalised joint — the paper's Eq 1 — and sampling
    is a single forward pass. *)

(** [sample rng factors] draws a full assignment; returns a lookup function
    and the list of (var, value) pairs.

    Exact for chain-consistent lists; for arbitrary factor lists the result
    is biased (use {!Velim} to calibrate first). *)
val sample : Psst_util.Prng.t -> Factor.t list -> (int -> bool) * (int * bool) list

(** [sample_conditioned rng factors evidence] forward-samples with some
    variables clamped. The result is a draw from the conditional
    distribution only when each clamped variable appears no later than its
    factor (true for clamping whole edge sets, as the verification sampler
    does); otherwise it is a heuristic proposal. Returns [None] when the
    evidence has probability 0 along the chain. *)
val sample_conditioned :
  Psst_util.Prng.t ->
  Factor.t list ->
  (int * bool) list ->
  ((int -> bool) * (int * bool) list) option

(** [is_chain_consistent ~eps factors] checks that, processed in order, each
    factor is a proper conditional of its new variables given its already
    covered ones (all conditional slices sum to 1). *)
val is_chain_consistent : eps:float -> Factor.t list -> bool
