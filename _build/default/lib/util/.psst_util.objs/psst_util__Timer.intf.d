lib/util/timer.mli:
