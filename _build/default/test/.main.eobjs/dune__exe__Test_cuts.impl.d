test/test_cuts.ml: Alcotest Embedding List Parallel_graph Psst_util QCheck QCheck_alcotest Transversal
