(** Weighted set cover — paper Algorithm 1 (tightest Usim).

    Classic greedy: repeatedly pick the set minimising
    weight / newly-covered-elements; ln|U|-approximate (paper §3.2.1). *)

type result = {
  chosen : int list;  (** indices into the input set array, pick order *)
  weight : float;  (** total weight of the chosen sets *)
  uncovered : Psst_util.Bitset.t;  (** elements no input set covers *)
}

(** [greedy ~universe sets] covers [0 .. universe-1] with the given
    [(members, weight)] sets. Elements contained in no set are reported in
    [uncovered] (the caller decides how to account for them — the pruning
    layer charges a trivial bound of 1.0 each). Weights must be
    non-negative. *)
val greedy : universe:int -> (Psst_util.Bitset.t * float) array -> result
