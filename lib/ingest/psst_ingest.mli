(** Continuous-ingest subsystem (DESIGN.md §16): the single-writer
    pipeline behind the server's [Add_graphs] RPC, and the incremental
    delta-file persistence it writes.

    {2 Epochs and snapshots}

    The live database is an immutable {!snapshot} behind an [Atomic.t]:
    readers capture the current snapshot at admission time and every
    query runs against exactly that value, while the single writer
    builds the next epoch with {!Query.add_graphs} (a pure function —
    it allocates fresh index rows and never mutates its input) and
    publishes it with one atomic swap. A query admitted at epoch [e] is
    therefore bit-identical to an offline [Query.run] against epoch
    [e]'s database, whatever ingest does concurrently — the
    snapshot-consistency contract the differential tests pin.

    {2 Incremental persistence}

    A database served from a store file persists each applied batch as a
    side file [BASE.delta.K] ([K] = 1, 2, ...), each written with the
    store's crash-atomic tmp+rename discipline. The base file is never
    rewritten — byte-identical before and after any number of batches —
    so a SIGKILL mid-append leaves the previous epoch loadable: either
    the delta file exists completely or not at all. Each delta carries
    the base corpus fingerprint and the graph count it chains onto;
    {!load} (and the CLI's index loader) replays the chain in order and
    stops with a warning at the first delta that does not chain — a
    stale or damaged delta can cost ingested graphs, never correctness
    of the ones before it. *)

(** One epoch of the served database. [epoch] counts applied ingest
    batches since process start; [db] is immutable. *)
type snapshot = { epoch : int; db : Query.database }

(** What an applied batch reports back: the new epoch and the global id
    range [base .. base + count - 1] of the inserted graphs. *)
type result = { epoch : int; base : int; count : int }

(** {1 Delta-file persistence} *)

(** [delta_path base k] = [base ^ ".delta.K"] — delta [k] (1-based) of
    the store file at [base]. *)
val delta_path : string -> int -> string

(** The delta chain bookkeeping for one base store file: [base_fp] is
    the fingerprint of the {e base file's} corpus (constant across the
    chain), [next_seq] the sequence number the next {!save_delta} should
    use. *)
type chain = { base : string; base_fp : int32; mutable next_seq : int }

(** [save_delta chain ~prev_count graphs] writes delta [chain.next_seq]
    (atomically, via tmp+rename — the ["store.write"] fault site
    applies) and advances [next_seq]. [prev_count] is the graph count of
    the database the delta chains onto. Raises [Psst_store.Store_error]
    / [Psst_fault.Injected] / [Sys_error] on failure, in which case no
    delta was added ([next_seq] is not advanced). *)
val save_delta : chain -> prev_count:int -> Pgraph.t array -> unit

(** [decode_delta chain ~seq ~prev_count bytes] decodes one delta from
    raw file contents with the full chain validation of a file read:
    checksums, sequence number, base fingerprint and the graph count it
    chains onto. [Psst_store.Store_error] on any anomaly. A replication
    subscriber runs this on every received frame {e before} persisting
    anything. *)
val decode_delta :
  chain -> seq:int -> prev_count:int -> string -> Pgraph.t array

(** [delta_bytes chain ~seq] — the raw on-disk bytes of delta [seq],
    checksum-verified before they leave (so local disk rot is caught
    here, not on the standby). [Psst_store.Store_error] when the file is
    missing, unreadable or damaged. The replication hub streams these:
    a subscriber persisting them verbatim ends up with a chain
    byte-identical to the primary's. *)
val delta_bytes : chain -> seq:int -> string

(** [apply_replicated chain db_ref ~seq ~bytes] — the standby's write
    path: validate [bytes] with {!decode_delta} against the current
    snapshot, persist them verbatim (tmp+rename; the ["store.write"]
    fault site applies), then publish the new epoch and advance the
    chain — the same persist-before-swap ordering as the primary's
    writer. [`Stale] when [seq] was already applied (a reconnect replay:
    harmless), [`Error] on a gap, damaged bytes or a failed persist — in
    which case nothing was persisted or published. The caller must be
    the process's only database mutator. *)
val apply_replicated :
  chain ->
  snapshot Atomic.t ->
  seq:int ->
  bytes:string ->
  [ `Applied of result | `Stale | `Error of string ]

(** [apply_deltas ~base db] replays the delta chain of [base] on top of
    [db] (the freshly-loaded base database): returns the extended
    database and the chain positioned after the last applied delta.
    A delta that is damaged or does not chain (wrong base fingerprint or
    graph count) stops the replay with an ["ingest.delta"] warning; the
    deltas before it are kept. *)
val apply_deltas : base:string -> Query.database -> Query.database * chain

(** [load ?salvage ?mmap path] — {!Query.load_database} followed by
    {!apply_deltas}: the post-ingest database an offline process agrees
    with the server on. With [~mmap:true] the base loads zero-copy; a
    non-empty chain then materialises the corpus on the first append
    (see {!Corpus.append}). *)
val load : ?salvage:bool -> ?mmap:bool -> string -> Query.database * chain

(** [clear_deltas path] unlinks the contiguous delta chain of [path]
    (used when the base index is rebuilt, making any existing chain
    stale). Returns how many files were removed. *)
val clear_deltas : string -> int

(** {1 The single-writer pipeline} *)

type t

(** The replication gate the writer consults before acking an applied
    batch: called with the seq the batch persisted as, after the epoch
    swap. [`Replicated] / [`No_standby] let the ack through;
    [`Lagging msg] turns it into a retryable error (the batch stays
    applied and persisted locally — the client's retry, carrying the
    same idempotency token, re-awaits the same seq). *)
type publish = seq:int -> [ `Replicated | `No_standby | `Lagging of string ]

(** [create ?chain ?publish ?tenant_quota ~queue_cap db_ref] spawns the
    writer thread. [db_ref] is the epoch-swapped database the server
    serves from; the writer is its only mutator. [queue_cap] bounds the
    total graphs queued across tenants (>= 1); [tenant_quota] (default
    0 = unlimited) bounds the graphs one tenant may have queued.
    [chain] arms delta persistence: every batch is persisted {e before}
    the epoch swap, so an acknowledged batch is always on disk and a
    failed write rejects the batch with the database unchanged.
    [publish] arms semi-synchronous replication (see {!publish}); it is
    only consulted when [chain] is armed too — without persistence
    there are no delta bytes to stream. *)
val create :
  ?chain:chain ->
  ?publish:publish ->
  ?tenant_quota:int ->
  queue_cap:int ->
  snapshot Atomic.t ->
  t

(** [submit ?token t ~tenant graphs ~ack] — enqueue one batch. [`Queued]
    hands the batch to the writer, which eventually calls [ack] (on the
    writer thread) with [Ok result] after the epoch swap or [Error msg]
    when applying or persisting failed (the database is unchanged; the
    condition is transient, so the caller should answer with a retryable
    error). [`Full]/[`Quota] reject without queueing — [ack] is never
    called — when the queue or the tenant's quota cannot take
    [Array.length graphs] more graphs; [`Stopped] likewise after
    {!stop} began. Empty batches are applied trivially (no epoch swap,
    [count = 0]).

    [token] (default [""] = disabled) is the batch's idempotency key:
    when the writer has already applied a batch with the same token, it
    answers with the remembered ack instead of ingesting again — the
    contract that makes retrying an unacked [Add_graphs] safe. The
    writer remembers the last {!token_cap} tokens. *)
val submit :
  ?token:string ->
  t ->
  tenant:string ->
  Pgraph.t array ->
  ack:((result, string) Result.t -> unit) ->
  [ `Queued | `Full | `Quota | `Stopped ]

(** Capacity of the writer's token-dedup memory (oldest evicted past
    it). *)
val token_cap : int

(** Graphs queued but not yet applied — the ingest lag. *)
val queued_graphs : t -> int

(** Graphs applied to the live database since {!create}. *)
val applied_graphs : t -> int

(** Closes admission ([`Stopped] from then on), drains every queued
    batch — each gets its [ack] — and joins the writer. Idempotent. *)
val stop : t -> unit
